/**
 * @file
 * Fault tolerance with copy-on-write snapshots (paper §IV-A):
 * training with periodic epoch checkpoints, a simulated worker
 * failure, and recovery from the latest snapshot. Shows that
 * unchanged parameters are deduplicated and snapshots cost no data
 * copies.
 *
 * Run: ./build/examples/checkpointing
 */

#include <cstdio>

#include "coarse/engine.hh"
#include "dl/model_zoo.hh"
#include "fabric/machine.hh"
#include "memdev/cow_store.hh"
#include "sim/simulation.hh"

int
main()
{
    // Train a small model functionally with checkpoints every 2
    // iterations.
    coarse::sim::Simulation sim;
    auto machine = coarse::fabric::makeSdscP100(sim);
    const auto model = coarse::dl::makeSynthetic(
        "ckpt_demo", {1 << 20, 4096, 2 << 20}, 2e9, 1 << 20);

    coarse::core::CoarseOptions options;
    options.functionalData = true;
    options.checkpointEveryIters = 2;
    coarse::core::CoarseEngine engine(*machine, model, 8, options);
    engine.run(6, 0);

    auto &store = engine.memoryDevice(0).store();
    std::printf("After 6 iterations with a checkpoint every 2:\n");
    std::printf("  checkpoints taken:   %u\n",
                engine.checkpointsTaken());
    std::printf("  tensor versions:     %llu\n",
                static_cast<unsigned long long>(
                    store.versionsCreated().value()));
    std::printf("  COW bytes copied:    %.1f MiB\n",
                double(store.bytesCopied().value()) / double(1 << 20));
    std::printf("  writes deduplicated: %llu\n",
                static_cast<unsigned long long>(
                    store.writesAbsorbed().value()));

    // Simulate a failure mid-epoch: the latest durable state is the
    // previous checkpoint (the one before the crash), so roll back
    // to it. Snapshot ids are 1-based and one is taken every
    // checkpoint interval.
    // Snapshot ids: 1 is the initial recovery floor, then one per
    // checkpoint interval; the latest durable state before a crash
    // at the end of training is snapshot checkpointsTaken().
    const auto beforeCrash = store.get(0);
    store.restore(engine.checkpointsTaken());
    const auto restored = store.get(0);
    std::printf("\nSimulated failure: restored tensor 0 from the "
                "previous checkpoint.\n");
    std::printf("  weight[0] at crash:   %.6f\n", (*beforeCrash)[0]);
    std::printf("  weight[0] restored:   %.6f (2 iterations earlier)"
                "\n",
                (*restored)[0]);

    // Snapshots share immutable versions: show the standalone store.
    coarse::memdev::CowStore demo;
    demo.put(42, std::vector<float>(1 << 20, 1.0f)); // 4 MiB tensor
    const auto copiedBefore = demo.bytesCopied().value();
    for (int epoch = 0; epoch < 100; ++epoch)
        demo.snapshot();
    std::printf("\n100 snapshots of a 4 MiB tensor copied %llu extra "
                "bytes (COW: snapshots are pointer swaps).\n",
                static_cast<unsigned long long>(
                    demo.bytesCopied().value() - copiedBefore));
    return 0;
}
