/**
 * @file
 * GPT-2 Medium pre-training: a decoder-LM workload heavier than the
 * paper's BERT fine-tuning, showing where each COARSE mechanism pays
 * off at larger scale — including fp16 wire compression and data
 * loading from the disaggregated pool.
 *
 * Run: ./build/examples/gpt2_pretrain
 */

#include <cstdio>
#include <memory>

#include "baselines/allreduce.hh"
#include "baselines/allreduce_overlap.hh"
#include "coarse/engine.hh"
#include "dl/dataset.hh"
#include "dl/model_zoo.hh"
#include "fabric/machine.hh"
#include "sim/simulation.hh"

namespace {

coarse::dl::TrainingReport
runCoarse(const coarse::core::CoarseOptions &options)
{
    coarse::sim::Simulation sim;
    auto machine = coarse::fabric::makeAwsV100(sim);
    coarse::core::CoarseEngine engine(
        *machine, coarse::dl::makeGpt2Medium(), 1, options);
    return engine.run(5, 1);
}

void
printRow(const char *label, const coarse::dl::TrainingReport &r)
{
    std::printf("%-26s %10.1f %14.1f %9.1f%%\n", label,
                r.iterationSeconds * 1e3, r.blockedCommSeconds * 1e3,
                r.gpuUtilization * 100.0);
}

} // namespace

int
main()
{
    const auto model = coarse::dl::makeGpt2Medium();
    std::printf("GPT-2 Medium (%0.0fM parameters), aws_v100, per-GPU "
                "batch 1\n\n",
                double(model.parameterCount()) / 1e6);
    std::printf("%-26s %10s %14s %10s\n", "scheme", "iter(ms)",
                "blocked(ms)", "util");

    {
        coarse::sim::Simulation sim;
        auto machine = coarse::fabric::makeAwsV100(sim);
        coarse::baselines::AllReduceTrainer trainer(*machine, model,
                                                    1);
        printRow("AllReduce", trainer.run(5, 1));
    }
    {
        coarse::sim::Simulation sim;
        auto machine = coarse::fabric::makeAwsV100(sim);
        coarse::baselines::OverlapAllReduceTrainer trainer(*machine,
                                                           model, 1);
        printRow("AllReduce (overlapped)", trainer.run(5, 1));
    }
    printRow("COARSE", runCoarse({}));
    {
        coarse::core::CoarseOptions options;
        options.compressGradients = true;
        printRow("COARSE + fp16 wire", runCoarse(options));
    }
    {
        coarse::core::CoarseOptions options;
        options.compressGradients = true;
        options.dataLoading = true;
        printRow("COARSE + fp16 + data pool", runCoarse(options));
    }

    const auto dataset = coarse::dl::datasetFor("gpt2_medium");
    const auto best = runCoarse({});
    std::printf("\ntoken-budget projection: %.1f hours over %llu "
                "sequences at the measured throughput\n",
                coarse::dl::timeToTrainSeconds(best, dataset) / 3600.0,
                static_cast<unsigned long long>(dataset.samples));
    return 0;
}
