/**
 * @file
 * Quickstart: simulate ResNet-50 data-parallel training on the SDSC
 * P100 machine under all four communication schemes and print a
 * comparison table.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>
#include <memory>

#include "baselines/allreduce.hh"
#include "baselines/cpu_ps.hh"
#include "baselines/dense.hh"
#include "coarse/engine.hh"
#include "dl/model_zoo.hh"
#include "fabric/machine.hh"
#include "sim/simulation.hh"

namespace {

void
printRow(const coarse::dl::TrainingReport &r)
{
    std::printf("%-10s %8.1f ms %10.1f ms %10.1f%% %12.1f\n",
                r.scheme.c_str(), r.iterationSeconds * 1e3,
                r.blockedCommSeconds * 1e3, r.gpuUtilization * 100.0,
                r.throughputSamplesPerSec);
}

template <typename MakeTrainer>
coarse::dl::TrainingReport
runScheme(MakeTrainer &&make)
{
    // Each scheme gets a fresh simulation and machine so runs are
    // fully independent.
    coarse::sim::Simulation sim;
    auto machine = coarse::fabric::makeSdscP100(sim);
    auto trainer = make(*machine);
    return trainer->run(8);
}

} // namespace

int
main()
{
    const auto model = coarse::dl::makeResNet50();
    const std::uint32_t batch = 64;

    std::printf("ResNet-50 / ImageNet, batch %u per GPU, machine "
                "sdsc_p100 (2 workers + 2 CCI memory devices)\n\n",
                batch);
    std::printf("%-10s %11s %13s %11s %12s\n", "scheme", "iter",
                "blocked-comm", "gpu-util", "samples/s");

    printRow(runScheme([&](coarse::fabric::Machine &m) {
        return std::make_unique<coarse::baselines::CpuPsTrainer>(
            m, model, batch);
    }));
    printRow(runScheme([&](coarse::fabric::Machine &m) {
        return std::make_unique<coarse::baselines::DenseTrainer>(
            m, model, batch);
    }));
    printRow(runScheme([&](coarse::fabric::Machine &m) {
        return std::make_unique<coarse::baselines::AllReduceTrainer>(
            m, model, batch);
    }));
    printRow(runScheme([&](coarse::fabric::Machine &m) {
        return std::make_unique<coarse::core::CoarseEngine>(m, model,
                                                            batch);
    }));
    return 0;
}
