/**
 * @file
 * BERT fine-tuning on SQuAD: the communication-bound workload where
 * COARSE shines. Demonstrates (1) scheme comparison on the
 * anti-local AWS V100 machine, (2) the batch-size headroom COARSE's
 * offloaded parameter state buys, and (3) multi-node scaling.
 *
 * Run: ./build/examples/bert_squad
 */

#include <cstdio>
#include <memory>

#include "baselines/allreduce.hh"
#include "baselines/dense.hh"
#include "coarse/engine.hh"
#include "dl/model_zoo.hh"
#include "fabric/machine.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace {

using coarse::dl::TrainingReport;
using coarse::fabric::MachineOptions;

TrainingReport
runCoarse(const coarse::dl::ModelSpec &model, std::uint32_t batch,
          MachineOptions mo = {})
{
    coarse::sim::Simulation sim;
    auto machine = coarse::fabric::makeAwsV100(sim, mo);
    coarse::core::CoarseEngine engine(*machine, model, batch);
    return engine.run(5, 1);
}

TrainingReport
runAllReduce(const coarse::dl::ModelSpec &model, std::uint32_t batch,
             MachineOptions mo = {})
{
    coarse::sim::Simulation sim;
    auto machine = coarse::fabric::makeAwsV100(sim, mo);
    coarse::baselines::AllReduceTrainer trainer(*machine, model,
                                                batch);
    return trainer.run(5, 1);
}

} // namespace

int
main()
{
    const auto base = coarse::dl::makeBertBase();
    const auto large = coarse::dl::makeBertLarge();

    std::printf("BERT-Base fine-tuning (SQuAD), aws_v100, per-GPU "
                "batch 2\n");
    std::printf("%-10s %10s %14s %10s\n", "scheme", "iter(ms)",
                "blocked(ms)", "util");
    {
        coarse::sim::Simulation sim;
        auto machine = coarse::fabric::makeAwsV100(sim);
        coarse::baselines::DenseTrainer dense(*machine, base, 2);
        const auto r = dense.run(5, 1);
        std::printf("%-10s %10.1f %14.1f %9.1f%%\n", "DENSE",
                    r.iterationSeconds * 1e3,
                    r.blockedCommSeconds * 1e3,
                    r.gpuUtilization * 100.0);
    }
    for (bool useCoarse : {false, true}) {
        const auto r =
            useCoarse ? runCoarse(base, 2) : runAllReduce(base, 2);
        std::printf("%-10s %10.1f %14.1f %9.1f%%\n",
                    useCoarse ? "COARSE" : "AllReduce",
                    r.iterationSeconds * 1e3,
                    r.blockedCommSeconds * 1e3,
                    r.gpuUtilization * 100.0);
    }

    std::printf("\nBERT-Large batch headroom on 16 GiB V100s:\n");
    const auto v100 = coarse::dl::gpuSpec("V100");
    std::printf("  resident optimizer state: max batch %u\n",
                coarse::dl::maxBatchSize(
                    large, v100.memBytes,
                    coarse::dl::residentStateModel()));
    std::printf("  COARSE offloaded state:   max batch %u\n",
                coarse::dl::maxBatchSize(
                    large, v100.memBytes,
                    coarse::dl::offloadedStateModel()));

    std::printf("\nBERT-Large throughput (samples/s/GPU):\n");
    const auto ar2 = runAllReduce(large, 2);
    std::printf("  AllReduce bs2: %6.2f\n",
                ar2.throughputSamplesPerSec / ar2.workers);
    try {
        runAllReduce(large, 4);
    } catch (const coarse::sim::FatalError &) {
        std::printf("  AllReduce bs4: OOM (as on the real 16 GiB "
                    "V100)\n");
    }
    for (std::uint32_t batch : {2u, 4u}) {
        const auto r = runCoarse(large, batch);
        std::printf("  COARSE    bs%u: %6.2f\n", batch,
                    r.throughputSamplesPerSec / r.workers);
    }

    std::printf("\nTwo-node cluster (100 Gb/s network):\n");
    MachineOptions twoNodes;
    twoNodes.nodes = 2;
    const auto ar = runAllReduce(large, 2, twoNodes);
    const auto co = runCoarse(large, 2, twoNodes);
    std::printf("  AllReduce: %5.2f samples/s/GPU, blocked %.1f ms\n",
                ar.throughputSamplesPerSec / ar.workers,
                ar.blockedCommSeconds * 1e3);
    std::printf("  COARSE:    %5.2f samples/s/GPU, blocked %.1f ms\n",
                co.throughputSamplesPerSec / co.workers,
                co.blockedCommSeconds * 1e3);
    return 0;
}
