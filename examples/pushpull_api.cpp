/**
 * @file
 * Using COARSE the way a training framework would: the raw push/pull
 * parameter-server API (paper §IV-B — the TensorFlow plugin wraps
 * exactly this). Two workers run a hand-written SGD loop on a toy
 * quadratic problem; the session handles routing, partitioning,
 * proxy synchronization, and the server-side optimizer.
 *
 * Run: ./build/examples/pushpull_api
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "coarse/session.hh"
#include "dl/model_zoo.hh"
#include "fabric/machine.hh"
#include "sim/simulation.hh"

namespace {

/**
 * Toy objective per worker: minimize sum_e (w[e] - target)^2 where
 * each worker sees a different target; the consensus optimum is the
 * mean of the targets.
 */
std::vector<float>
gradientFor(const std::vector<float> &weights, float target)
{
    std::vector<float> gradient(weights.size());
    for (std::size_t e = 0; e < weights.size(); ++e)
        gradient[e] = 2.0f * (weights[e] - target);
    return gradient;
}

} // namespace

int
main()
{
    coarse::sim::Simulation sim;
    auto machine = coarse::fabric::makeSdscP100(sim);

    // One 64k-element tensor; plain SGD at lr 0.1 on the server.
    const auto model = coarse::dl::makeSynthetic(
        "toy", {64 * 1024}, 1e9, 1 << 20);
    coarse::core::SessionOptions options;
    options.optimizer.learningRate = 0.1;
    coarse::core::CoarseSession session(*machine, model, options);

    const float targets[2] = {2.0f, 6.0f}; // consensus optimum: 4.0

    std::printf("push/pull API demo: 2 workers descending to the "
                "consensus optimum (4.0)\n\n");
    std::printf("%-8s %14s %16s\n", "round", "weights[0]",
                "sim time (us)");

    // Each round: every worker pulls the weights, computes its local
    // gradient, and pushes; the session synchronizes and applies.
    for (int round = 0; round < 12; ++round) {
        for (std::size_t w = 0; w < session.clientCount(); ++w) {
            session.client(w).pull(
                0, [&session, &targets, w](
                       const std::vector<float> &weights) {
                    session.client(w).push(
                        0, gradientFor(weights, targets[w]));
                });
        }
        sim.run();
        std::printf("%-8d %14.4f %16.1f\n", round,
                    session.weights(0)[0],
                    coarse::sim::toMicroseconds(sim.now()));
    }

    std::printf("\nfinal weights[0] = %.4f (optimum 4.0); every "
                "synchronization ran through the real routing, "
                "partitioning, and sync-core machinery\n",
                session.weights(0)[0]);
    return 0;
}
