/**
 * @file
 * ResNet-50 / ImageNet data-parallel training across all three
 * evaluation machines: the compute-bound workload from the paper's
 * evaluation. Prints per-machine scheme comparisons and the scaling
 * effect of the per-GPU batch size.
 *
 * Run: ./build/examples/resnet_imagenet
 */

#include <cstdio>
#include <memory>
#include <string>

#include "baselines/allreduce.hh"
#include "baselines/dense.hh"
#include "coarse/engine.hh"
#include "dl/dataset.hh"
#include "dl/model_zoo.hh"
#include "fabric/machine.hh"
#include "sim/simulation.hh"

namespace {

using coarse::dl::TrainingReport;

TrainingReport
run(const std::string &scheme, const std::string &machineName,
    std::uint32_t batch)
{
    coarse::sim::Simulation sim;
    auto machine = coarse::fabric::makeMachine(machineName, sim);
    const auto model = coarse::dl::makeResNet50();
    std::unique_ptr<coarse::dl::Trainer> trainer;
    if (scheme == "DENSE") {
        trainer = std::make_unique<coarse::baselines::DenseTrainer>(
            *machine, model, batch);
    } else if (scheme == "AllReduce") {
        trainer =
            std::make_unique<coarse::baselines::AllReduceTrainer>(
                *machine, model, batch);
    } else {
        trainer = std::make_unique<coarse::core::CoarseEngine>(
            *machine, model, batch);
    }
    return trainer->run(5, 1);
}

} // namespace

int
main()
{
    std::printf("ResNet-50 / ImageNet, data parallel, per-GPU batch "
                "64\n");
    for (const char *machine : {"aws_t4", "sdsc_p100", "aws_v100"}) {
        std::printf("\n--- %s ---\n", machine);
        std::printf("%-10s %10s %14s %10s %12s\n", "scheme",
                    "iter(ms)", "blocked(ms)", "util", "imgs/sec");
        for (const char *scheme : {"DENSE", "AllReduce", "COARSE"}) {
            const auto r = run(scheme, machine, 64);
            std::printf("%-10s %10.1f %14.1f %9.1f%% %12.1f\n", scheme,
                        r.iterationSeconds * 1e3,
                        r.blockedCommSeconds * 1e3,
                        r.gpuUtilization * 100.0,
                        r.throughputSamplesPerSec);
        }
    }

    std::printf("\nBatch-size scaling (COARSE on aws_v100):\n");
    std::printf("%-8s %12s %12s %10s\n", "batch", "iter(ms)",
                "imgs/sec", "util");
    for (std::uint32_t batch : {8u, 16u, 32u, 64u}) {
        const auto r = run("COARSE", "aws_v100", batch);
        std::printf("%-8u %12.1f %12.1f %9.1f%%\n", batch,
                    r.iterationSeconds * 1e3,
                    r.throughputSamplesPerSec,
                    r.gpuUtilization * 100.0);
    }
    std::printf("\nProjected ImageNet epoch time (COARSE vs DENSE, "
                "aws_v100, batch 64):\n");
    const auto dataset = coarse::dl::datasetFor("resnet50");
    for (const char *scheme : {"DENSE", "COARSE"}) {
        const auto r = run(scheme, "aws_v100", 64);
        std::printf("  %-8s %6.1f min/epoch (%0.1f h to %u epochs)\n",
                    scheme,
                    coarse::dl::epochSeconds(r, dataset) / 60.0,
                    coarse::dl::timeToTrainSeconds(r, dataset)
                        / 3600.0,
                    dataset.typicalEpochs);
    }

    std::printf("\nResNet-50 is compute-bound: all schemes sit close "
                "together, and the DENSE parameter server is the only "
                "outlier — compare with the BERT example.\n");
    return 0;
}
