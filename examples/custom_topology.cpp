/**
 * @file
 * Building a machine from scratch with the public fabric API: a
 * hypothetical CXL-pod with six workers, three shared memory
 * devices, and a deliberately lopsided fabric — then watching the
 * profiler discover it and COARSE adapt.
 *
 * Run: ./build/examples/custom_topology
 */

#include <cstdio>

#include "coarse/engine.hh"
#include "coarse/profiler.hh"
#include "dl/model_zoo.hh"
#include "fabric/machine.hh"
#include "sim/simulation.hh"

int
main()
{
    using namespace coarse::fabric;

    coarse::sim::Simulation sim;

    // A machine is a Topology plus role annotations. Build both by
    // hand: one CPU, two switches with very different uplinks, six
    // GPUs, three CCI memory devices shared 2:1.
    Machine machine(sim, "cxl_pod", "V100", /*p2pSupported=*/true);
    Topology &topo = machine.topology();

    const NodeId cpu = topo.addNode(NodeKind::HostCpu, "cpu");
    machine.addHostCpu(cpu, 0);

    LinkParams bus;
    bus.bandwidth = BandwidthCurve::ramp(gbps(13.0), 4 << 10, 2 << 20,
                                         0.12);
    bus.latency = coarse::sim::fromNanoseconds(600);

    LinkParams fatUplink = bus;
    fatUplink.bandwidth = bus.bandwidth.scaled(2.0);
    LinkParams thinUplink = bus;
    thinUplink.bandwidth = bus.bandwidth.scaled(0.5);

    const NodeId sw0 = topo.addNode(NodeKind::PcieSwitch, "sw0");
    const NodeId sw1 = topo.addNode(NodeKind::PcieSwitch, "sw1");
    topo.addLink(cpu, sw0, fatUplink);
    topo.addLink(cpu, sw1, thinUplink); // the lopsided part

    LinkParams cci;
    cci.kind = LinkKind::Cci;
    cci.bandwidth = BandwidthCurve::ramp(gbps(12.0), 4 << 10, 2 << 20,
                                         0.12);
    cci.latency = coarse::sim::fromNanoseconds(400);

    NodeId mems[3];
    for (int m = 0; m < 3; ++m) {
        mems[m] = topo.addNode(NodeKind::MemoryDevice,
                               "mem" + std::to_string(m));
        machine.addMemDevice(mems[m], 0);
        topo.addLink(mems[m], m < 2 ? sw0 : sw1, bus);
    }
    for (int m = 0; m < 3; ++m)
        topo.addLink(mems[m], mems[(m + 1) % 3], cci);

    for (int g = 0; g < 6; ++g) {
        const NodeId gpu = topo.addNode(NodeKind::Gpu,
                                        "gpu" + std::to_string(g));
        machine.addWorker(gpu, 0);
        topo.addLink(gpu, g < 3 ? sw0 : sw1, bus);
        machine.pair(gpu, mems[g / 2]);
    }

    // What does the profiler see from each side of the pod?
    coarse::core::Profiler profiler(topo);
    std::printf("Profiler view (64 MiB transfers):\n");
    std::printf("%-8s %-10s %-10s %12s\n", "client", "LatProxy",
                "BwProxy", "threshold");
    for (std::size_t w = 0; w < machine.workers().size(); ++w) {
        const auto profile = profiler.profileClient(
            machine.workers()[w],
            std::vector<NodeId>(machine.memDevices().begin(),
                                machine.memDevices().end()),
            machine.pairedMemDevice(machine.workers()[w]));
        std::printf("gpu%-5zu %-10s %-10s %9llu KiB\n", w,
                    topo.nodeName(profile.routing.latProxy).c_str(),
                    topo.nodeName(profile.routing.bwProxy).c_str(),
                    static_cast<unsigned long long>(
                        profile.routing.thresholdBytes >> 10));
    }

    // Train ResNet-50 on the pod with COARSE.
    coarse::core::CoarseEngine engine(
        machine, coarse::dl::makeResNet50(), 32);
    const auto report = engine.run(5, 1);
    std::printf("\nCOARSE on the pod: %.1f ms/iter, %.1f ms blocked, "
                "%.1f%% utilization, %.0f imgs/s\n",
                report.iterationSeconds * 1e3,
                report.blockedCommSeconds * 1e3,
                report.gpuUtilization * 100.0,
                report.throughputSamplesPerSec);
    std::printf("dual-sync plan: %llu MiB via proxies, %llu MiB via "
                "the GPU ring\n",
                static_cast<unsigned long long>(
                    engine.plan().proxyBytes >> 20),
                static_cast<unsigned long long>(
                    engine.plan().gpuBytes >> 20));
    return 0;
}
