file(REMOVE_RECURSE
  "CMakeFiles/resnet_imagenet.dir/resnet_imagenet.cpp.o"
  "CMakeFiles/resnet_imagenet.dir/resnet_imagenet.cpp.o.d"
  "resnet_imagenet"
  "resnet_imagenet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resnet_imagenet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
