# Empty compiler generated dependencies file for resnet_imagenet.
# This may be replaced when dependencies are built.
