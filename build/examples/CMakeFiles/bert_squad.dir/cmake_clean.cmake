file(REMOVE_RECURSE
  "CMakeFiles/bert_squad.dir/bert_squad.cpp.o"
  "CMakeFiles/bert_squad.dir/bert_squad.cpp.o.d"
  "bert_squad"
  "bert_squad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bert_squad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
