# Empty compiler generated dependencies file for bert_squad.
# This may be replaced when dependencies are built.
