# Empty compiler generated dependencies file for pushpull_api.
# This may be replaced when dependencies are built.
