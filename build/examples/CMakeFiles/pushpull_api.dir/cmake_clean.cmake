file(REMOVE_RECURSE
  "CMakeFiles/pushpull_api.dir/pushpull_api.cpp.o"
  "CMakeFiles/pushpull_api.dir/pushpull_api.cpp.o.d"
  "pushpull_api"
  "pushpull_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pushpull_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
