file(REMOVE_RECURSE
  "CMakeFiles/gpt2_pretrain.dir/gpt2_pretrain.cpp.o"
  "CMakeFiles/gpt2_pretrain.dir/gpt2_pretrain.cpp.o.d"
  "gpt2_pretrain"
  "gpt2_pretrain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpt2_pretrain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
