# Empty dependencies file for gpt2_pretrain.
# This may be replaced when dependencies are built.
