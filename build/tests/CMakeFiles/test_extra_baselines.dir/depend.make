# Empty dependencies file for test_extra_baselines.
# This may be replaced when dependencies are built.
