file(REMOVE_RECURSE
  "CMakeFiles/test_extra_baselines.dir/test_extra_baselines.cc.o"
  "CMakeFiles/test_extra_baselines.dir/test_extra_baselines.cc.o.d"
  "test_extra_baselines"
  "test_extra_baselines.pdb"
  "test_extra_baselines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_extra_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
