# Empty dependencies file for test_memdev.
# This may be replaced when dependencies are built.
