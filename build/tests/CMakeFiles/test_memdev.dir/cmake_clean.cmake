file(REMOVE_RECURSE
  "CMakeFiles/test_memdev.dir/test_memdev.cc.o"
  "CMakeFiles/test_memdev.dir/test_memdev.cc.o.d"
  "test_memdev"
  "test_memdev.pdb"
  "test_memdev[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memdev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
