# Empty dependencies file for test_coherent_cache.
# This may be replaced when dependencies are built.
