file(REMOVE_RECURSE
  "CMakeFiles/test_coherent_cache.dir/test_coherent_cache.cc.o"
  "CMakeFiles/test_coherent_cache.dir/test_coherent_cache.cc.o.d"
  "test_coherent_cache"
  "test_coherent_cache.pdb"
  "test_coherent_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coherent_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
