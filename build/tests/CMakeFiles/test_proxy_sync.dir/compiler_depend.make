# Empty compiler generated dependencies file for test_proxy_sync.
# This may be replaced when dependencies are built.
