file(REMOVE_RECURSE
  "CMakeFiles/test_proxy_sync.dir/test_proxy_sync.cc.o"
  "CMakeFiles/test_proxy_sync.dir/test_proxy_sync.cc.o.d"
  "test_proxy_sync"
  "test_proxy_sync.pdb"
  "test_proxy_sync[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_proxy_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
