file(REMOVE_RECURSE
  "CMakeFiles/test_allreduce_overlap.dir/test_allreduce_overlap.cc.o"
  "CMakeFiles/test_allreduce_overlap.dir/test_allreduce_overlap.cc.o.d"
  "test_allreduce_overlap"
  "test_allreduce_overlap.pdb"
  "test_allreduce_overlap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_allreduce_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
