file(REMOVE_RECURSE
  "CMakeFiles/test_cci.dir/test_cci.cc.o"
  "CMakeFiles/test_cci.dir/test_cci.cc.o.d"
  "test_cci"
  "test_cci.pdb"
  "test_cci[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
