# Empty compiler generated dependencies file for test_cci.
# This may be replaced when dependencies are built.
