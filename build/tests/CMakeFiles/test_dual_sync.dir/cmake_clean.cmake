file(REMOVE_RECURSE
  "CMakeFiles/test_dual_sync.dir/test_dual_sync.cc.o"
  "CMakeFiles/test_dual_sync.dir/test_dual_sync.cc.o.d"
  "test_dual_sync"
  "test_dual_sync.pdb"
  "test_dual_sync[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dual_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
