# Empty compiler generated dependencies file for test_dual_sync.
# This may be replaced when dependencies are built.
