# Empty dependencies file for test_coherence_fuzz.
# This may be replaced when dependencies are built.
