file(REMOVE_RECURSE
  "CMakeFiles/test_coherence_fuzz.dir/test_coherence_fuzz.cc.o"
  "CMakeFiles/test_coherence_fuzz.dir/test_coherence_fuzz.cc.o.d"
  "test_coherence_fuzz"
  "test_coherence_fuzz.pdb"
  "test_coherence_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coherence_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
