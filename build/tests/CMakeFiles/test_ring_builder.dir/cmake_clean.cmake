file(REMOVE_RECURSE
  "CMakeFiles/test_ring_builder.dir/test_ring_builder.cc.o"
  "CMakeFiles/test_ring_builder.dir/test_ring_builder.cc.o.d"
  "test_ring_builder"
  "test_ring_builder.pdb"
  "test_ring_builder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ring_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
