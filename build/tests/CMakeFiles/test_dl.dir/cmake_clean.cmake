file(REMOVE_RECURSE
  "CMakeFiles/test_dl.dir/test_dl.cc.o"
  "CMakeFiles/test_dl.dir/test_dl.cc.o.d"
  "test_dl"
  "test_dl.pdb"
  "test_dl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
