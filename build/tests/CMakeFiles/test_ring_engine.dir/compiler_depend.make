# Empty compiler generated dependencies file for test_ring_engine.
# This may be replaced when dependencies are built.
