file(REMOVE_RECURSE
  "CMakeFiles/test_ring_engine.dir/test_ring_engine.cc.o"
  "CMakeFiles/test_ring_engine.dir/test_ring_engine.cc.o.d"
  "test_ring_engine"
  "test_ring_engine.pdb"
  "test_ring_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ring_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
