# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_bandwidth[1]_include.cmake")
include("/root/repo/build/tests/test_fabric[1]_include.cmake")
include("/root/repo/build/tests/test_traffic[1]_include.cmake")
include("/root/repo/build/tests/test_machine[1]_include.cmake")
include("/root/repo/build/tests/test_cci[1]_include.cmake")
include("/root/repo/build/tests/test_coherent_cache[1]_include.cmake")
include("/root/repo/build/tests/test_coherence_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_collective[1]_include.cmake")
include("/root/repo/build/tests/test_hierarchical[1]_include.cmake")
include("/root/repo/build/tests/test_ring_builder[1]_include.cmake")
include("/root/repo/build/tests/test_memdev[1]_include.cmake")
include("/root/repo/build/tests/test_ring_engine[1]_include.cmake")
include("/root/repo/build/tests/test_dl[1]_include.cmake")
include("/root/repo/build/tests/test_optimizer[1]_include.cmake")
include("/root/repo/build/tests/test_profiler[1]_include.cmake")
include("/root/repo/build/tests/test_partition[1]_include.cmake")
include("/root/repo/build/tests/test_dual_sync[1]_include.cmake")
include("/root/repo/build/tests/test_proxy_sync[1]_include.cmake")
include("/root/repo/build/tests/test_session[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_extra_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_allreduce_overlap[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_app[1]_include.cmake")
