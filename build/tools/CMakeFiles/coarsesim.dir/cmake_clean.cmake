file(REMOVE_RECURSE
  "CMakeFiles/coarsesim.dir/coarsesim.cc.o"
  "CMakeFiles/coarsesim.dir/coarsesim.cc.o.d"
  "coarsesim"
  "coarsesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coarsesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
