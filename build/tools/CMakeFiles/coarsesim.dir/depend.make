# Empty dependencies file for coarsesim.
# This may be replaced when dependencies are built.
