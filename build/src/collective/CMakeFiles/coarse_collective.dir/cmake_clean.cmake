file(REMOVE_RECURSE
  "CMakeFiles/coarse_collective.dir/communicator.cc.o"
  "CMakeFiles/coarse_collective.dir/communicator.cc.o.d"
  "CMakeFiles/coarse_collective.dir/hierarchical.cc.o"
  "CMakeFiles/coarse_collective.dir/hierarchical.cc.o.d"
  "CMakeFiles/coarse_collective.dir/ring_builder.cc.o"
  "CMakeFiles/coarse_collective.dir/ring_builder.cc.o.d"
  "libcoarse_collective.a"
  "libcoarse_collective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coarse_collective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
