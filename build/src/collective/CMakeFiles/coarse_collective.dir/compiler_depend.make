# Empty compiler generated dependencies file for coarse_collective.
# This may be replaced when dependencies are built.
