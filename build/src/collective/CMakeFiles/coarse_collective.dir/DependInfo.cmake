
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/collective/communicator.cc" "src/collective/CMakeFiles/coarse_collective.dir/communicator.cc.o" "gcc" "src/collective/CMakeFiles/coarse_collective.dir/communicator.cc.o.d"
  "/root/repo/src/collective/hierarchical.cc" "src/collective/CMakeFiles/coarse_collective.dir/hierarchical.cc.o" "gcc" "src/collective/CMakeFiles/coarse_collective.dir/hierarchical.cc.o.d"
  "/root/repo/src/collective/ring_builder.cc" "src/collective/CMakeFiles/coarse_collective.dir/ring_builder.cc.o" "gcc" "src/collective/CMakeFiles/coarse_collective.dir/ring_builder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fabric/CMakeFiles/coarse_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/coarse_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
