file(REMOVE_RECURSE
  "libcoarse_collective.a"
)
