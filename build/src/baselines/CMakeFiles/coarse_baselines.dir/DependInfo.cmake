
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/allreduce.cc" "src/baselines/CMakeFiles/coarse_baselines.dir/allreduce.cc.o" "gcc" "src/baselines/CMakeFiles/coarse_baselines.dir/allreduce.cc.o.d"
  "/root/repo/src/baselines/allreduce_overlap.cc" "src/baselines/CMakeFiles/coarse_baselines.dir/allreduce_overlap.cc.o" "gcc" "src/baselines/CMakeFiles/coarse_baselines.dir/allreduce_overlap.cc.o.d"
  "/root/repo/src/baselines/async_ps.cc" "src/baselines/CMakeFiles/coarse_baselines.dir/async_ps.cc.o" "gcc" "src/baselines/CMakeFiles/coarse_baselines.dir/async_ps.cc.o.d"
  "/root/repo/src/baselines/cpu_ps.cc" "src/baselines/CMakeFiles/coarse_baselines.dir/cpu_ps.cc.o" "gcc" "src/baselines/CMakeFiles/coarse_baselines.dir/cpu_ps.cc.o.d"
  "/root/repo/src/baselines/dense.cc" "src/baselines/CMakeFiles/coarse_baselines.dir/dense.cc.o" "gcc" "src/baselines/CMakeFiles/coarse_baselines.dir/dense.cc.o.d"
  "/root/repo/src/baselines/phased_trainer.cc" "src/baselines/CMakeFiles/coarse_baselines.dir/phased_trainer.cc.o" "gcc" "src/baselines/CMakeFiles/coarse_baselines.dir/phased_trainer.cc.o.d"
  "/root/repo/src/baselines/sharded_ps.cc" "src/baselines/CMakeFiles/coarse_baselines.dir/sharded_ps.cc.o" "gcc" "src/baselines/CMakeFiles/coarse_baselines.dir/sharded_ps.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cci/CMakeFiles/coarse_cci.dir/DependInfo.cmake"
  "/root/repo/build/src/collective/CMakeFiles/coarse_collective.dir/DependInfo.cmake"
  "/root/repo/build/src/dl/CMakeFiles/coarse_dl.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/coarse_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/memdev/CMakeFiles/coarse_memdev.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/coarse_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
