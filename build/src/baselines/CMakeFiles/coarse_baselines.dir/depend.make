# Empty dependencies file for coarse_baselines.
# This may be replaced when dependencies are built.
