file(REMOVE_RECURSE
  "libcoarse_baselines.a"
)
