file(REMOVE_RECURSE
  "CMakeFiles/coarse_baselines.dir/allreduce.cc.o"
  "CMakeFiles/coarse_baselines.dir/allreduce.cc.o.d"
  "CMakeFiles/coarse_baselines.dir/allreduce_overlap.cc.o"
  "CMakeFiles/coarse_baselines.dir/allreduce_overlap.cc.o.d"
  "CMakeFiles/coarse_baselines.dir/async_ps.cc.o"
  "CMakeFiles/coarse_baselines.dir/async_ps.cc.o.d"
  "CMakeFiles/coarse_baselines.dir/cpu_ps.cc.o"
  "CMakeFiles/coarse_baselines.dir/cpu_ps.cc.o.d"
  "CMakeFiles/coarse_baselines.dir/dense.cc.o"
  "CMakeFiles/coarse_baselines.dir/dense.cc.o.d"
  "CMakeFiles/coarse_baselines.dir/phased_trainer.cc.o"
  "CMakeFiles/coarse_baselines.dir/phased_trainer.cc.o.d"
  "CMakeFiles/coarse_baselines.dir/sharded_ps.cc.o"
  "CMakeFiles/coarse_baselines.dir/sharded_ps.cc.o.d"
  "libcoarse_baselines.a"
  "libcoarse_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coarse_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
