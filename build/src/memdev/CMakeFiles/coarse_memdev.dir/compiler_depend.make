# Empty compiler generated dependencies file for coarse_memdev.
# This may be replaced when dependencies are built.
