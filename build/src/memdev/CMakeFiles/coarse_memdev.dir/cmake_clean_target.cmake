file(REMOVE_RECURSE
  "libcoarse_memdev.a"
)
