file(REMOVE_RECURSE
  "CMakeFiles/coarse_memdev.dir/cow_store.cc.o"
  "CMakeFiles/coarse_memdev.dir/cow_store.cc.o.d"
  "CMakeFiles/coarse_memdev.dir/memory_device.cc.o"
  "CMakeFiles/coarse_memdev.dir/memory_device.cc.o.d"
  "CMakeFiles/coarse_memdev.dir/ring_engine.cc.o"
  "CMakeFiles/coarse_memdev.dir/ring_engine.cc.o.d"
  "CMakeFiles/coarse_memdev.dir/sync_core.cc.o"
  "CMakeFiles/coarse_memdev.dir/sync_core.cc.o.d"
  "CMakeFiles/coarse_memdev.dir/sync_group.cc.o"
  "CMakeFiles/coarse_memdev.dir/sync_group.cc.o.d"
  "libcoarse_memdev.a"
  "libcoarse_memdev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coarse_memdev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
