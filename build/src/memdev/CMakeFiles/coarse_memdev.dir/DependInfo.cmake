
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memdev/cow_store.cc" "src/memdev/CMakeFiles/coarse_memdev.dir/cow_store.cc.o" "gcc" "src/memdev/CMakeFiles/coarse_memdev.dir/cow_store.cc.o.d"
  "/root/repo/src/memdev/memory_device.cc" "src/memdev/CMakeFiles/coarse_memdev.dir/memory_device.cc.o" "gcc" "src/memdev/CMakeFiles/coarse_memdev.dir/memory_device.cc.o.d"
  "/root/repo/src/memdev/ring_engine.cc" "src/memdev/CMakeFiles/coarse_memdev.dir/ring_engine.cc.o" "gcc" "src/memdev/CMakeFiles/coarse_memdev.dir/ring_engine.cc.o.d"
  "/root/repo/src/memdev/sync_core.cc" "src/memdev/CMakeFiles/coarse_memdev.dir/sync_core.cc.o" "gcc" "src/memdev/CMakeFiles/coarse_memdev.dir/sync_core.cc.o.d"
  "/root/repo/src/memdev/sync_group.cc" "src/memdev/CMakeFiles/coarse_memdev.dir/sync_group.cc.o" "gcc" "src/memdev/CMakeFiles/coarse_memdev.dir/sync_group.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cci/CMakeFiles/coarse_cci.dir/DependInfo.cmake"
  "/root/repo/build/src/collective/CMakeFiles/coarse_collective.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/coarse_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/coarse_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
