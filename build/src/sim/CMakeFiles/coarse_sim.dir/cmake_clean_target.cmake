file(REMOVE_RECURSE
  "libcoarse_sim.a"
)
