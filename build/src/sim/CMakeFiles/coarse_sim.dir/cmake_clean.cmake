file(REMOVE_RECURSE
  "CMakeFiles/coarse_sim.dir/event_queue.cc.o"
  "CMakeFiles/coarse_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/coarse_sim.dir/logging.cc.o"
  "CMakeFiles/coarse_sim.dir/logging.cc.o.d"
  "CMakeFiles/coarse_sim.dir/stats.cc.o"
  "CMakeFiles/coarse_sim.dir/stats.cc.o.d"
  "libcoarse_sim.a"
  "libcoarse_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coarse_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
