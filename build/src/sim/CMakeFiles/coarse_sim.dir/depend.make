# Empty dependencies file for coarse_sim.
# This may be replaced when dependencies are built.
