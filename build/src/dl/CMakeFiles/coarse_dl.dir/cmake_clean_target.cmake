file(REMOVE_RECURSE
  "libcoarse_dl.a"
)
