
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dl/dataset.cc" "src/dl/CMakeFiles/coarse_dl.dir/dataset.cc.o" "gcc" "src/dl/CMakeFiles/coarse_dl.dir/dataset.cc.o.d"
  "/root/repo/src/dl/gpu.cc" "src/dl/CMakeFiles/coarse_dl.dir/gpu.cc.o" "gcc" "src/dl/CMakeFiles/coarse_dl.dir/gpu.cc.o.d"
  "/root/repo/src/dl/iteration.cc" "src/dl/CMakeFiles/coarse_dl.dir/iteration.cc.o" "gcc" "src/dl/CMakeFiles/coarse_dl.dir/iteration.cc.o.d"
  "/root/repo/src/dl/model.cc" "src/dl/CMakeFiles/coarse_dl.dir/model.cc.o" "gcc" "src/dl/CMakeFiles/coarse_dl.dir/model.cc.o.d"
  "/root/repo/src/dl/model_zoo.cc" "src/dl/CMakeFiles/coarse_dl.dir/model_zoo.cc.o" "gcc" "src/dl/CMakeFiles/coarse_dl.dir/model_zoo.cc.o.d"
  "/root/repo/src/dl/optimizer.cc" "src/dl/CMakeFiles/coarse_dl.dir/optimizer.cc.o" "gcc" "src/dl/CMakeFiles/coarse_dl.dir/optimizer.cc.o.d"
  "/root/repo/src/dl/quantize.cc" "src/dl/CMakeFiles/coarse_dl.dir/quantize.cc.o" "gcc" "src/dl/CMakeFiles/coarse_dl.dir/quantize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/coarse_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
