# Empty dependencies file for coarse_dl.
# This may be replaced when dependencies are built.
