file(REMOVE_RECURSE
  "CMakeFiles/coarse_dl.dir/dataset.cc.o"
  "CMakeFiles/coarse_dl.dir/dataset.cc.o.d"
  "CMakeFiles/coarse_dl.dir/gpu.cc.o"
  "CMakeFiles/coarse_dl.dir/gpu.cc.o.d"
  "CMakeFiles/coarse_dl.dir/iteration.cc.o"
  "CMakeFiles/coarse_dl.dir/iteration.cc.o.d"
  "CMakeFiles/coarse_dl.dir/model.cc.o"
  "CMakeFiles/coarse_dl.dir/model.cc.o.d"
  "CMakeFiles/coarse_dl.dir/model_zoo.cc.o"
  "CMakeFiles/coarse_dl.dir/model_zoo.cc.o.d"
  "CMakeFiles/coarse_dl.dir/optimizer.cc.o"
  "CMakeFiles/coarse_dl.dir/optimizer.cc.o.d"
  "CMakeFiles/coarse_dl.dir/quantize.cc.o"
  "CMakeFiles/coarse_dl.dir/quantize.cc.o.d"
  "libcoarse_dl.a"
  "libcoarse_dl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coarse_dl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
