# Empty compiler generated dependencies file for coarse_cci.
# This may be replaced when dependencies are built.
