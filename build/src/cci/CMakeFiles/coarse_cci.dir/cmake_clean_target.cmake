file(REMOVE_RECURSE
  "libcoarse_cci.a"
)
