
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cci/address_space.cc" "src/cci/CMakeFiles/coarse_cci.dir/address_space.cc.o" "gcc" "src/cci/CMakeFiles/coarse_cci.dir/address_space.cc.o.d"
  "/root/repo/src/cci/coherent_cache.cc" "src/cci/CMakeFiles/coarse_cci.dir/coherent_cache.cc.o" "gcc" "src/cci/CMakeFiles/coarse_cci.dir/coherent_cache.cc.o.d"
  "/root/repo/src/cci/directory.cc" "src/cci/CMakeFiles/coarse_cci.dir/directory.cc.o" "gcc" "src/cci/CMakeFiles/coarse_cci.dir/directory.cc.o.d"
  "/root/repo/src/cci/port.cc" "src/cci/CMakeFiles/coarse_cci.dir/port.cc.o" "gcc" "src/cci/CMakeFiles/coarse_cci.dir/port.cc.o.d"
  "/root/repo/src/cci/prototype_model.cc" "src/cci/CMakeFiles/coarse_cci.dir/prototype_model.cc.o" "gcc" "src/cci/CMakeFiles/coarse_cci.dir/prototype_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fabric/CMakeFiles/coarse_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/coarse_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
