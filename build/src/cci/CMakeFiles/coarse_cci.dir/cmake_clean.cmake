file(REMOVE_RECURSE
  "CMakeFiles/coarse_cci.dir/address_space.cc.o"
  "CMakeFiles/coarse_cci.dir/address_space.cc.o.d"
  "CMakeFiles/coarse_cci.dir/coherent_cache.cc.o"
  "CMakeFiles/coarse_cci.dir/coherent_cache.cc.o.d"
  "CMakeFiles/coarse_cci.dir/directory.cc.o"
  "CMakeFiles/coarse_cci.dir/directory.cc.o.d"
  "CMakeFiles/coarse_cci.dir/port.cc.o"
  "CMakeFiles/coarse_cci.dir/port.cc.o.d"
  "CMakeFiles/coarse_cci.dir/prototype_model.cc.o"
  "CMakeFiles/coarse_cci.dir/prototype_model.cc.o.d"
  "libcoarse_cci.a"
  "libcoarse_cci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coarse_cci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
