# Empty compiler generated dependencies file for coarse_fabric.
# This may be replaced when dependencies are built.
