file(REMOVE_RECURSE
  "libcoarse_fabric.a"
)
