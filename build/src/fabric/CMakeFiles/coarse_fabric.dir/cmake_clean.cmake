file(REMOVE_RECURSE
  "CMakeFiles/coarse_fabric.dir/bandwidth.cc.o"
  "CMakeFiles/coarse_fabric.dir/bandwidth.cc.o.d"
  "CMakeFiles/coarse_fabric.dir/link.cc.o"
  "CMakeFiles/coarse_fabric.dir/link.cc.o.d"
  "CMakeFiles/coarse_fabric.dir/machine.cc.o"
  "CMakeFiles/coarse_fabric.dir/machine.cc.o.d"
  "CMakeFiles/coarse_fabric.dir/topology.cc.o"
  "CMakeFiles/coarse_fabric.dir/topology.cc.o.d"
  "CMakeFiles/coarse_fabric.dir/traffic.cc.o"
  "CMakeFiles/coarse_fabric.dir/traffic.cc.o.d"
  "libcoarse_fabric.a"
  "libcoarse_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coarse_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
