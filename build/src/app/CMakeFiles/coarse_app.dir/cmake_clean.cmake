file(REMOVE_RECURSE
  "CMakeFiles/coarse_app.dir/options.cc.o"
  "CMakeFiles/coarse_app.dir/options.cc.o.d"
  "CMakeFiles/coarse_app.dir/runner.cc.o"
  "CMakeFiles/coarse_app.dir/runner.cc.o.d"
  "libcoarse_app.a"
  "libcoarse_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coarse_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
