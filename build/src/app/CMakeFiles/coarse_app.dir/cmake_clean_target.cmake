file(REMOVE_RECURSE
  "libcoarse_app.a"
)
