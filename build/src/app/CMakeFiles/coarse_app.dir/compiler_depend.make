# Empty compiler generated dependencies file for coarse_app.
# This may be replaced when dependencies are built.
