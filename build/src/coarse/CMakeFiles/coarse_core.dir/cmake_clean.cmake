file(REMOVE_RECURSE
  "CMakeFiles/coarse_core.dir/dual_sync.cc.o"
  "CMakeFiles/coarse_core.dir/dual_sync.cc.o.d"
  "CMakeFiles/coarse_core.dir/engine.cc.o"
  "CMakeFiles/coarse_core.dir/engine.cc.o.d"
  "CMakeFiles/coarse_core.dir/partition.cc.o"
  "CMakeFiles/coarse_core.dir/partition.cc.o.d"
  "CMakeFiles/coarse_core.dir/profiler.cc.o"
  "CMakeFiles/coarse_core.dir/profiler.cc.o.d"
  "CMakeFiles/coarse_core.dir/proxy_sync.cc.o"
  "CMakeFiles/coarse_core.dir/proxy_sync.cc.o.d"
  "CMakeFiles/coarse_core.dir/session.cc.o"
  "CMakeFiles/coarse_core.dir/session.cc.o.d"
  "libcoarse_core.a"
  "libcoarse_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coarse_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
