# Empty compiler generated dependencies file for coarse_core.
# This may be replaced when dependencies are built.
