file(REMOVE_RECURSE
  "libcoarse_core.a"
)
