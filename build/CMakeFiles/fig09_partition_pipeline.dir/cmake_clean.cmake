file(REMOVE_RECURSE
  "CMakeFiles/fig09_partition_pipeline.dir/bench/fig09_partition_pipeline.cc.o"
  "CMakeFiles/fig09_partition_pipeline.dir/bench/fig09_partition_pipeline.cc.o.d"
  "bench/fig09_partition_pipeline"
  "bench/fig09_partition_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_partition_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
