file(REMOVE_RECURSE
  "CMakeFiles/fig17_comm_time.dir/bench/fig17_comm_time.cc.o"
  "CMakeFiles/fig17_comm_time.dir/bench/fig17_comm_time.cc.o.d"
  "bench/fig17_comm_time"
  "bench/fig17_comm_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_comm_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
