# Empty compiler generated dependencies file for fig17_comm_time.
# This may be replaced when dependencies are built.
