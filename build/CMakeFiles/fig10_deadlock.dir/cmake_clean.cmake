file(REMOVE_RECURSE
  "CMakeFiles/fig10_deadlock.dir/bench/fig10_deadlock.cc.o"
  "CMakeFiles/fig10_deadlock.dir/bench/fig10_deadlock.cc.o.d"
  "bench/fig10_deadlock"
  "bench/fig10_deadlock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_deadlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
