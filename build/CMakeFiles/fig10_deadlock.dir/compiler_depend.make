# Empty compiler generated dependencies file for fig10_deadlock.
# This may be replaced when dependencies are built.
