file(REMOVE_RECURSE
  "CMakeFiles/table1_machines.dir/bench/table1_machines.cc.o"
  "CMakeFiles/table1_machines.dir/bench/table1_machines.cc.o.d"
  "bench/table1_machines"
  "bench/table1_machines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_machines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
