
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/motivation_comm_fraction.cc" "CMakeFiles/motivation_comm_fraction.dir/bench/motivation_comm_fraction.cc.o" "gcc" "CMakeFiles/motivation_comm_fraction.dir/bench/motivation_comm_fraction.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/coarse_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/coarse/CMakeFiles/coarse_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dl/CMakeFiles/coarse_dl.dir/DependInfo.cmake"
  "/root/repo/build/src/memdev/CMakeFiles/coarse_memdev.dir/DependInfo.cmake"
  "/root/repo/build/src/cci/CMakeFiles/coarse_cci.dir/DependInfo.cmake"
  "/root/repo/build/src/collective/CMakeFiles/coarse_collective.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/coarse_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/coarse_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
