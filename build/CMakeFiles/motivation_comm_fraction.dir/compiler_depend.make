# Empty compiler generated dependencies file for motivation_comm_fraction.
# This may be replaced when dependencies are built.
