file(REMOVE_RECURSE
  "CMakeFiles/motivation_comm_fraction.dir/bench/motivation_comm_fraction.cc.o"
  "CMakeFiles/motivation_comm_fraction.dir/bench/motivation_comm_fraction.cc.o.d"
  "bench/motivation_comm_fraction"
  "bench/motivation_comm_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motivation_comm_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
