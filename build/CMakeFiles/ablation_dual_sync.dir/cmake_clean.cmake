file(REMOVE_RECURSE
  "CMakeFiles/ablation_dual_sync.dir/bench/ablation_dual_sync.cc.o"
  "CMakeFiles/ablation_dual_sync.dir/bench/ablation_dual_sync.cc.o.d"
  "bench/ablation_dual_sync"
  "bench/ablation_dual_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dual_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
