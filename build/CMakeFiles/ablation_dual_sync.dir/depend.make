# Empty dependencies file for ablation_dual_sync.
# This may be replaced when dependencies are built.
