file(REMOVE_RECURSE
  "CMakeFiles/ablation_hierarchical.dir/bench/ablation_hierarchical.cc.o"
  "CMakeFiles/ablation_hierarchical.dir/bench/ablation_hierarchical.cc.o.d"
  "bench/ablation_hierarchical"
  "bench/ablation_hierarchical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hierarchical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
