# Empty compiler generated dependencies file for fig08_bandwidth_matrix.
# This may be replaced when dependencies are built.
