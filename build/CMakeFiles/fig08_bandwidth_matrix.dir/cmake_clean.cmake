file(REMOVE_RECURSE
  "CMakeFiles/fig08_bandwidth_matrix.dir/bench/fig08_bandwidth_matrix.cc.o"
  "CMakeFiles/fig08_bandwidth_matrix.dir/bench/fig08_bandwidth_matrix.cc.o.d"
  "bench/fig08_bandwidth_matrix"
  "bench/fig08_bandwidth_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_bandwidth_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
