# Empty compiler generated dependencies file for fig15_routing_profile.
# This may be replaced when dependencies are built.
