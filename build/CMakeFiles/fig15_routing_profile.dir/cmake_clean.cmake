file(REMOVE_RECURSE
  "CMakeFiles/fig15_routing_profile.dir/bench/fig15_routing_profile.cc.o"
  "CMakeFiles/fig15_routing_profile.dir/bench/fig15_routing_profile.cc.o.d"
  "bench/fig15_routing_profile"
  "bench/fig15_routing_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_routing_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
