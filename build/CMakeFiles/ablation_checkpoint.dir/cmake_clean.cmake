file(REMOVE_RECURSE
  "CMakeFiles/ablation_checkpoint.dir/bench/ablation_checkpoint.cc.o"
  "CMakeFiles/ablation_checkpoint.dir/bench/ablation_checkpoint.cc.o.d"
  "bench/ablation_checkpoint"
  "bench/ablation_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
