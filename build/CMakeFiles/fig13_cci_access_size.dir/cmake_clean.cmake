file(REMOVE_RECURSE
  "CMakeFiles/fig13_cci_access_size.dir/bench/fig13_cci_access_size.cc.o"
  "CMakeFiles/fig13_cci_access_size.dir/bench/fig13_cci_access_size.cc.o.d"
  "bench/fig13_cci_access_size"
  "bench/fig13_cci_access_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_cci_access_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
