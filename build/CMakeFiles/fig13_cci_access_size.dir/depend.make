# Empty dependencies file for fig13_cci_access_size.
# This may be replaced when dependencies are built.
