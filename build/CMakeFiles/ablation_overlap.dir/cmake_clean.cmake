file(REMOVE_RECURSE
  "CMakeFiles/ablation_overlap.dir/bench/ablation_overlap.cc.o"
  "CMakeFiles/ablation_overlap.dir/bench/ablation_overlap.cc.o.d"
  "bench/ablation_overlap"
  "bench/ablation_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
