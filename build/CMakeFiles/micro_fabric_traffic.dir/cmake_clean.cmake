file(REMOVE_RECURSE
  "CMakeFiles/micro_fabric_traffic.dir/bench/micro_fabric_traffic.cc.o"
  "CMakeFiles/micro_fabric_traffic.dir/bench/micro_fabric_traffic.cc.o.d"
  "bench/micro_fabric_traffic"
  "bench/micro_fabric_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_fabric_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
