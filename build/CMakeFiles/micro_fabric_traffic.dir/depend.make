# Empty dependencies file for micro_fabric_traffic.
# This may be replaced when dependencies are built.
