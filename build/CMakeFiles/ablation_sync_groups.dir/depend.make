# Empty dependencies file for ablation_sync_groups.
# This may be replaced when dependencies are built.
