file(REMOVE_RECURSE
  "CMakeFiles/ablation_sync_groups.dir/bench/ablation_sync_groups.cc.o"
  "CMakeFiles/ablation_sync_groups.dir/bench/ablation_sync_groups.cc.o.d"
  "bench/ablation_sync_groups"
  "bench/ablation_sync_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sync_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
