file(REMOVE_RECURSE
  "CMakeFiles/ablation_routing.dir/bench/ablation_routing.cc.o"
  "CMakeFiles/ablation_routing.dir/bench/ablation_routing.cc.o.d"
  "bench/ablation_routing"
  "bench/ablation_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
