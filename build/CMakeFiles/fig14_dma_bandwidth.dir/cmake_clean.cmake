file(REMOVE_RECURSE
  "CMakeFiles/fig14_dma_bandwidth.dir/bench/fig14_dma_bandwidth.cc.o"
  "CMakeFiles/fig14_dma_bandwidth.dir/bench/fig14_dma_bandwidth.cc.o.d"
  "bench/fig14_dma_bandwidth"
  "bench/fig14_dma_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_dma_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
