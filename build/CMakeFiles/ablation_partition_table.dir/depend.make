# Empty dependencies file for ablation_partition_table.
# This may be replaced when dependencies are built.
