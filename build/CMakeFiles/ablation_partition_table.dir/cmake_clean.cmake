file(REMOVE_RECURSE
  "CMakeFiles/ablation_partition_table.dir/bench/ablation_partition_table.cc.o"
  "CMakeFiles/ablation_partition_table.dir/bench/ablation_partition_table.cc.o.d"
  "bench/ablation_partition_table"
  "bench/ablation_partition_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_partition_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
