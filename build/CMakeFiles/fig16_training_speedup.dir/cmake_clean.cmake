file(REMOVE_RECURSE
  "CMakeFiles/fig16_training_speedup.dir/bench/fig16_training_speedup.cc.o"
  "CMakeFiles/fig16_training_speedup.dir/bench/fig16_training_speedup.cc.o.d"
  "bench/fig16_training_speedup"
  "bench/fig16_training_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_training_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
