# Empty dependencies file for fig16_training_speedup.
# This may be replaced when dependencies are built.
