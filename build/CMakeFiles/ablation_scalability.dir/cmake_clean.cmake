file(REMOVE_RECURSE
  "CMakeFiles/ablation_scalability.dir/bench/ablation_scalability.cc.o"
  "CMakeFiles/ablation_scalability.dir/bench/ablation_scalability.cc.o.d"
  "bench/ablation_scalability"
  "bench/ablation_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
