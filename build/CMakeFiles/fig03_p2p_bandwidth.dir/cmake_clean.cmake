file(REMOVE_RECURSE
  "CMakeFiles/fig03_p2p_bandwidth.dir/bench/fig03_p2p_bandwidth.cc.o"
  "CMakeFiles/fig03_p2p_bandwidth.dir/bench/fig03_p2p_bandwidth.cc.o.d"
  "bench/fig03_p2p_bandwidth"
  "bench/fig03_p2p_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_p2p_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
