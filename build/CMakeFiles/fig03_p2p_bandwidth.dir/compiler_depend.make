# Empty compiler generated dependencies file for fig03_p2p_bandwidth.
# This may be replaced when dependencies are built.
