/**
 * @file
 * Figure 8: PCIe device-to-device bidirectional bandwidth matrices.
 *
 * Paper result: the SDSC P100 machine shows conventional locality
 * (same-switch pairs fastest); the AWS V100 machine shows
 * "anti-locality" — remote pairs are faster than local ones.
 *
 * Bandwidth is measured by actually driving simultaneous transfers
 * in both directions through the simulated fabric (NVLink disabled,
 * as the paper's profiler does).
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "fabric/machine.hh"
#include "sim/parallel.hh"
#include "sim/simulation.hh"

namespace {

using namespace coarse::fabric;

/**
 * All physical GPUs of the instance: in the paper's emulation half
 * the GPUs act as workers and half as CCI memory devices, so the
 * Fig. 8 matrix spans both.
 */
std::vector<NodeId>
allGpus(const Machine &machine)
{
    std::vector<NodeId> gpus = machine.workers();
    gpus.insert(gpus.end(), machine.memDevices().begin(),
                machine.memDevices().end());
    return gpus;
}

/** Measured bidirectional bandwidth between two GPUs (GB/s). */
double
bidirectionalGbps(const std::string &machineName, std::size_t i,
                  std::size_t j)
{
    coarse::sim::Simulation sim;
    auto machine = makeMachine(machineName, sim);
    const auto gpus = allGpus(*machine);
    const std::uint64_t bytes = 64 << 20;

    int remaining = 2;
    Message a;
    a.src = gpus[i];
    a.dst = gpus[j];
    a.bytes = bytes;
    a.onDelivered = [&] { --remaining; };
    machine->topology().send(std::move(a), kNoNvLink);
    Message b;
    b.src = gpus[j];
    b.dst = gpus[i];
    b.bytes = bytes;
    b.onDelivered = [&] { --remaining; };
    machine->topology().send(std::move(b), kNoNvLink);
    sim.run();

    const double seconds = coarse::sim::toSeconds(sim.now());
    return 2.0 * double(bytes) / seconds / 1e9;
}

void
printMatrix(coarse::sim::SweepRunner &runner,
            const std::string &machineName)
{
    coarse::sim::Simulation sim;
    auto machine = makeMachine(machineName, sim);
    const std::size_t n = allGpus(*machine).size();

    // Every matrix cell drives its own fresh simulation, so the whole
    // n*(n-1) grid fans across cores; cells land by index, keeping
    // the printed matrix identical at any --jobs.
    const auto cells = runner.map<double>(n * n, [&](std::size_t at) {
        const std::size_t i = at / n;
        const std::size_t j = at % n;
        return i == j ? 0.0 : bidirectionalGbps(machineName, i, j);
    });

    std::printf("\n%s: GPU-to-GPU bidirectional bandwidth (GB/s), "
                "PCIe path\n      ",
                machineName.c_str());
    for (std::size_t j = 0; j < n; ++j)
        std::printf("%8s%zu", "gpu", j);
    std::printf("\n");
    for (std::size_t i = 0; i < n; ++i) {
        std::printf("gpu%zu  ", i);
        for (std::size_t j = 0; j < n; ++j) {
            if (i == j)
                std::printf("%9s", "-");
            else
                std::printf("%9.1f", cells[i * n + j]);
        }
        std::printf("\n");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("Figure 8: PCIe device-to-device bidirectional "
                "bandwidth\n");
    coarse::sim::SweepRunner runner(
        coarse::bench::benchJobs(argc, argv));
    printMatrix(runner, "aws_v100");
    printMatrix(runner, "sdsc_p100");
    std::printf("\npaper: (a) V100/AWS remote > local "
                "(anti-locality); (b) P100/SDSC local > remote\n");
    return 0;
}
