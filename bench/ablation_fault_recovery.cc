/**
 * @file
 * Ablation: end-to-end recovery from *detected* proxy crashes (paper
 * §IV-A fault tolerance), in three parts:
 *
 *  1. Recovery time versus snapshot cadence. Sparser checkpoints do
 *     not change detection latency — only the replay window grows.
 *  2. Partial versus full rollback on the same single crash: partial
 *     restores only the dead proxy's owned shard, so rollback bytes
 *     (and the re-pull they price) shrink with the shard.
 *  3. A cascading double crash: the second proxy dies while the first
 *     episode is still re-pulling, and the recovery state machine
 *     extends the episode in place instead of dropping the detection.
 *
 * Each scenario also emits a machine-readable JSON line (prefixed
 * "JSON ") for plotting scripts.
 */

#include <algorithm>
#include <array>
#include <cstdio>

#include "bench_util.hh"
#include "coarse/engine.hh"
#include "dl/model_zoo.hh"
#include "fabric/machine.hh"
#include "fault/fault.hh"
#include "fault/injector.hh"
#include "sim/parallel.hh"
#include "sim/simulation.hh"

namespace {

constexpr std::uint32_t kIters = 12;

struct Outcome
{
    double totalSeconds = 0.0;
    std::uint32_t replayed = 0;
    std::uint32_t episodes = 0;
    double detectionMs = 0.0;
    double recoveryMs = 0.0;
    std::uint64_t rollbackBytes = 0;
    std::uint64_t cascades = 0;
    std::uint64_t pullRetries = 0;
    coarse::sim::Tick boundaryTick = 0;
    coarse::sim::Tick endTick = 0;
};

std::unique_ptr<coarse::fabric::Machine>
makeFleet(coarse::sim::Simulation &sim)
{
    using coarse::fabric::GpuRole;
    return coarse::fabric::makeAwsV100Partitioned(
        sim, {GpuRole::Worker, GpuRole::MemoryDevice, GpuRole::Worker,
              GpuRole::MemoryDevice, GpuRole::MemoryDevice,
              GpuRole::MemoryDevice});
}

coarse::fault::FaultSpec
proxyCrash(coarse::sim::Tick at, std::uint32_t target)
{
    coarse::fault::FaultSpec crash;
    crash.kind = coarse::fault::FaultKind::ProxyCrash;
    crash.at = at;
    crash.target = target;
    return crash;
}

/**
 * One training run under @p schedule (empty = fault-free). When
 * @p plannedBytes is given it receives each proxy's pre-run planned
 * allotment. @p fleet selects the 2-worker/4-proxy partitioned
 * machine instead of the aws_v100 preset.
 */
Outcome
runOne(const coarse::fault::FaultSchedule &schedule,
       coarse::core::CoarseOptions options, bool fleet = false,
       std::vector<std::uint64_t> *plannedBytes = nullptr)
{
    coarse::sim::Simulation sim;
    auto machine = fleet ? makeFleet(sim)
                         : coarse::fabric::makeAwsV100(sim);
    coarse::core::CoarseEngine engine(
        *machine, coarse::dl::makeBertBase(), 2, options);
    if (plannedBytes) {
        plannedBytes->clear();
        for (std::size_t i = 0; i < machine->memDevices().size(); ++i)
            plannedBytes->push_back(engine.plannedProxyBytes(i));
    }
    std::unique_ptr<coarse::fault::FaultInjector> injector;
    if (!schedule.faults.empty()) {
        injector = std::make_unique<coarse::fault::FaultInjector>(
            sim, schedule, engine.faultHooks());
        injector->arm();
    }

    engine.run(kIters, 0);

    Outcome out;
    out.totalSeconds = coarse::sim::toSeconds(sim.now());
    out.endTick = sim.now();
    out.replayed = engine.iterationsReplayed();
    out.episodes = engine.failuresRecovered();
    if (engine.detectionLatency().count() > 0)
        out.detectionMs = engine.detectionLatency().mean() * 1e3;
    if (engine.recoveryTime().count() > 0)
        out.recoveryMs = engine.recoveryTime().mean() * 1e3;
    const auto &recovery = engine.recovery();
    out.rollbackBytes = recovery.rollbackBytes().value();
    out.cascades = recovery.cascadeDetections().value();
    out.pullRetries = recovery.pullRetries().value();
    out.boundaryTick = recovery.lastBoundaryTick();
    return out;
}

coarse::core::CoarseOptions
faultyOptions(std::uint32_t checkpointEvery)
{
    coarse::core::CoarseOptions options;
    options.checkpointEveryIters = checkpointEvery;
    options.heartbeats = true;
    return options;
}

void
cadenceSection(coarse::sim::SweepRunner &runner)
{
    std::printf("1. Recovery time vs snapshot cadence\n");
    std::printf("%-18s %12s %12s %9s %14s %14s\n", "checkpoint every",
                "clean (s)", "faulty (s)", "replayed",
                "detection (ms)", "recovery (ms)");
    // Each cadence is a clean-then-faulty chain (the crash tick is
    // calibrated from the clean run), but the four cadences are
    // independent chains — fan the chains, print in cadence order.
    constexpr std::array<std::uint32_t, 4> kCadences{1u, 2u, 4u, 8u};
    struct CadenceResult
    {
        Outcome clean;
        Outcome faulty;
    };
    const auto results = runner.map<CadenceResult>(
        kCadences.size(), [&](std::size_t i) {
            const std::uint32_t every = kCadences[i];
            coarse::core::CoarseOptions cleanOptions;
            cleanOptions.checkpointEveryIters = every;
            CadenceResult result;
            result.clean = runOne({}, cleanOptions);
            coarse::fault::FaultSchedule schedule;
            schedule.faults.push_back(
                proxyCrash(result.clean.endTick / 2, 1));
            result.faulty = runOne(schedule, faultyOptions(every));
            return result;
        });
    for (std::size_t i = 0; i < kCadences.size(); ++i) {
        const std::uint32_t every = kCadences[i];
        const Outcome &clean = results[i].clean;
        const Outcome &out = results[i].faulty;
        std::printf("%-18u %12.3f %12.3f %9u %14.3f %14.3f\n", every,
                    clean.totalSeconds, out.totalSeconds, out.replayed,
                    out.detectionMs, out.recoveryMs);
        coarse::bench::JsonLine()
            .field("scenario", "cadence")
            .field("checkpoint_every", every)
            .field("clean_s", clean.totalSeconds)
            .field("faulty_s", out.totalSeconds)
            .field("replayed", out.replayed)
            .field("detection_ms", out.detectionMs)
            .field("recovery_ms", out.recoveryMs)
            .print();
    }
}

void
rollbackSection(coarse::sim::SweepRunner &runner)
{
    std::printf("\n2. Partial vs full rollback (2 workers + 4 "
                "proxies, single crash, checkpoint every 2)\n");
    std::printf("%-10s %16s %9s %14s %12s\n", "mode",
                "rollback (MB)", "replayed", "recovery (ms)",
                "faulty (s)");
    // The fleet splits ownership across four proxies, so one proxy's
    // shard is a strict subset of the model; the aws_v100 preset's
    // two-way routing makes every active proxy own everything.
    std::vector<std::uint64_t> planned;
    const Outcome clean =
        runOne({}, faultyOptions(2), /*fleet=*/true, &planned);
    const std::uint32_t target = static_cast<std::uint32_t>(
        std::max_element(planned.begin(), planned.end())
        - planned.begin());
    coarse::fault::FaultSchedule schedule;
    schedule.faults.push_back(proxyCrash(clean.endTick / 2, target));

    // The two rollback modes replay the same crash independently.
    constexpr std::array<bool, 2> kModes{true, false};
    const auto outcomes =
        runner.map<Outcome>(kModes.size(), [&](std::size_t i) {
            auto options = faultyOptions(2);
            options.recovery.partialRollback = kModes[i];
            return runOne(schedule, options, /*fleet=*/true);
        });
    for (std::size_t i = 0; i < kModes.size(); ++i) {
        const Outcome &out = outcomes[i];
        const char *mode = kModes[i] ? "partial" : "full";
        std::printf("%-10s %16.1f %9u %14.3f %12.3f\n", mode,
                    out.rollbackBytes / 1e6, out.replayed,
                    out.recoveryMs, out.totalSeconds);
        coarse::bench::JsonLine()
            .field("scenario", "rollback")
            .field("mode", mode)
            .field("rollback_bytes", out.rollbackBytes)
            .field("replayed", out.replayed)
            .field("recovery_ms", out.recoveryMs)
            .field("faulty_s", out.totalSeconds)
            .print();
    }
}

void
cascadeSection()
{
    std::printf("\n3. Cascading double crash (2 workers + 4 proxies, "
                "second crash lands mid-recovery)\n");

    // Fault-free reference; planned bytes choose the first casualty
    // (largest shard = longest re-pull window to cascade into).
    std::vector<std::uint64_t> planned;
    const Outcome clean = runOne({}, faultyOptions(2), /*fleet=*/true,
                                 &planned);
    const std::uint32_t firstTarget = static_cast<std::uint32_t>(
        std::max_element(planned.begin(), planned.end())
        - planned.begin());
    const std::uint32_t secondTarget = firstTarget == 0 ? 1 : 0;

    // Calibrate the first episode's boundary, then drop the second
    // crash just after its re-pulls launch; the detection (one probe
    // interval plus the ack timeout later) lands mid-Repulling.
    coarse::fault::FaultSchedule first;
    first.faults.push_back(proxyCrash(clean.endTick / 2, firstTarget));
    const Outcome calib =
        runOne(first, faultyOptions(2), /*fleet=*/true);

    coarse::fault::FaultSchedule both = first;
    both.faults.push_back(proxyCrash(
        calib.boundaryTick + coarse::sim::fromMicroseconds(1),
        secondTarget));
    const Outcome out = runOne(both, faultyOptions(2), /*fleet=*/true);

    std::printf("%-14s %12s %12s %9s %10s %16s\n", "run",
                "clean (s)", "faulty (s)", "replayed", "cascades",
                "rollback (MB)");
    std::printf("%-14s %12.3f %12.3f %9u %10llu %16.1f\n",
                "double crash", clean.totalSeconds, out.totalSeconds,
                out.replayed,
                static_cast<unsigned long long>(out.cascades),
                out.rollbackBytes / 1e6);
    coarse::bench::JsonLine()
        .field("scenario", "cascade")
        .field("clean_s", clean.totalSeconds)
        .field("faulty_s", out.totalSeconds)
        .field("replayed", out.replayed)
        .field("episodes", out.episodes)
        .field("cascade_detections", out.cascades)
        .field("rollback_bytes", out.rollbackBytes)
        .field("pull_retries", out.pullRetries)
        .print();
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("Ablation: proxy-crash recovery (bert_base, %u "
                "iterations, heartbeat detection\nat 500us cadence / "
                "250us timeout)\n\n",
                kIters);
    coarse::sim::SweepRunner runner(
        coarse::bench::benchJobs(argc, argv));
    cadenceSection(runner);
    rollbackSection(runner);
    cascadeSection();
    std::printf("\nDetection latency is set by the heartbeat cadence "
                "and rollback/re-pull cost by the\nfailed shard — "
                "neither depends on the snapshot interval. Sparser "
                "snapshots only\nlengthen the replay window, partial "
                "rollback shrinks the invalidated bytes to the\ndead "
                "proxy's allotment, and a crash landing mid-recovery "
                "extends the in-flight\nepisode instead of restarting "
                "or wedging it\n");
    return 0;
}
