/**
 * @file
 * Ablation: end-to-end recovery time from a *detected* proxy crash
 * versus snapshot cadence (paper §IV-A fault tolerance).
 *
 * Unlike ablation_checkpoint (which replays a known worker failure),
 * this drives the full detection-recovery loop: a memory device
 * fail-stops mid-training, the heartbeat monitor notices via missed
 * acks, the engine rebuilds the sync rings and routing tables around
 * the hole, rolls parameters back to the last CoW snapshot, and
 * replays. Sparser checkpoints do not change detection latency — only
 * the replay window grows.
 */

#include <cstdio>

#include "coarse/engine.hh"
#include "dl/model_zoo.hh"
#include "fabric/machine.hh"
#include "fault/fault.hh"
#include "fault/injector.hh"
#include "sim/simulation.hh"

namespace {

constexpr std::uint32_t kIters = 12;

struct Outcome
{
    double totalSeconds = 0.0;
    std::uint32_t replayed = 0;
    double detectionMs = 0.0;
    double recoveryMs = 0.0;
};

/** Fault-free run: measures the clean wall time and the crash tick. */
coarse::sim::Tick
cleanEndTick(std::uint32_t checkpointEvery, double *seconds)
{
    coarse::sim::Simulation sim;
    auto machine = coarse::fabric::makeAwsV100(sim);
    coarse::core::CoarseOptions options;
    options.checkpointEveryIters = checkpointEvery;
    coarse::core::CoarseEngine engine(
        *machine, coarse::dl::makeBertBase(), 2, options);
    engine.run(kIters, 0);
    *seconds = coarse::sim::toSeconds(sim.now());
    return sim.now();
}

Outcome
runWithCrash(std::uint32_t checkpointEvery, coarse::sim::Tick crashAt)
{
    coarse::sim::Simulation sim;
    auto machine = coarse::fabric::makeAwsV100(sim);
    coarse::core::CoarseOptions options;
    options.checkpointEveryIters = checkpointEvery;
    options.heartbeats = true;
    coarse::core::CoarseEngine engine(
        *machine, coarse::dl::makeBertBase(), 2, options);

    coarse::fault::FaultSchedule schedule;
    coarse::fault::FaultSpec crash;
    crash.kind = coarse::fault::FaultKind::ProxyCrash;
    crash.at = crashAt;
    crash.target = 1;
    schedule.faults.push_back(crash);
    coarse::fault::FaultInjector injector(sim, schedule,
                                          engine.faultHooks());
    injector.arm();

    engine.run(kIters, 0);

    Outcome out;
    out.totalSeconds = coarse::sim::toSeconds(sim.now());
    out.replayed = engine.iterationsReplayed();
    out.detectionMs = engine.detectionLatency().mean() * 1e3;
    out.recoveryMs = engine.recoveryTime().mean() * 1e3;
    return out;
}

} // namespace

int
main()
{
    std::printf("Ablation: proxy-crash recovery time vs snapshot "
                "cadence\n(bert_base on aws_v100, %u iterations, "
                "memory device 1 fail-stops mid-run,\n heartbeat "
                "detection at 500us cadence / 250us timeout)\n\n",
                kIters);
    std::printf("%-18s %12s %12s %9s %14s %14s\n", "checkpoint every",
                "clean (s)", "faulty (s)", "replayed",
                "detection (ms)", "recovery (ms)");
    for (std::uint32_t every : {1u, 2u, 4u, 8u}) {
        double cleanSeconds = 0.0;
        const auto end = cleanEndTick(every, &cleanSeconds);
        const auto out = runWithCrash(every, end / 2);
        std::printf("%-18u %12.3f %12.3f %9u %14.3f %14.3f\n", every,
                    cleanSeconds, out.totalSeconds, out.replayed,
                    out.detectionMs, out.recoveryMs);
    }
    std::printf("\nDetection latency is set by the heartbeat cadence "
                "and rollback/re-pull cost by the\nmodel size — "
                "neither depends on the snapshot interval. Sparser "
                "snapshots only\nlengthen the replay window (the "
                "faulty-run wall time), while CoW keeps the\n"
                "steady-state checkpoint cost flat\n");
    return 0;
}
