/**
 * @file
 * Ablation: fp16 gradient compression on the client-proxy wire
 * (a standard parameter-server extension; accumulation stays fp32
 * on the memory devices).
 */

#include <cstdio>

#include "bench_util.hh"

namespace {

void
runMachine(const char *machineName)
{
    const auto model = coarse::dl::makeBertBase();
    std::printf("\n%s (bert_base, batch 2):\n", machineName);
    std::printf("%-14s %12s %15s %10s\n", "wire", "iter (ms)",
                "blocked (ms)", "util");
    for (bool compress : {false, true}) {
        coarse::core::CoarseOptions options;
        options.compressGradients = compress;
        const auto r = coarse::bench::runScheme(
            "COARSE", machineName, model, 2, {}, options);
        std::printf("%-14s %12.2f %15.2f %9.1f%%\n",
                    compress ? "fp16" : "fp32",
                    r.report.iterationSeconds * 1e3,
                    r.report.blockedCommSeconds * 1e3,
                    r.report.gpuUtilization * 100.0);
    }
}

} // namespace

int
main()
{
    std::printf("Ablation: fp16 gradient compression on the "
                "client-proxy wire\n");
    for (const char *machine : {"aws_t4", "sdsc_p100", "aws_v100"})
        runMachine(machine);
    std::printf("\nhalving the wire bytes helps most where the "
                "client-proxy path is the bottleneck (the no-P2P T4); "
                "proxy rings still accumulate at fp32\n");
    return 0;
}
