/**
 * @file
 * Figure 16: end-to-end training speedup.
 *
 *  (a,b) ResNet-50 and BERT on the AWS T4 machine, speedup over
 *        DENSE, with 1:1 and 2:1 worker/memdev configurations.
 *  (c)   BERT on SDSC P100.
 *  (d)   BERT on AWS V100.
 *  (e)   BERT-Large single node: batch scaling unlocked by COARSE's
 *        offloaded parameter state (paper: 48.3% over AllReduce).
 *  (f)   BERT-Large two nodes (paper: up to 42.7% over AllReduce;
 *        one COARSE node at batch 4 beats two AllReduce nodes).
 */

#include <cstdio>
#include <string>

#include "bench_util.hh"

namespace {

using coarse::bench::printHeader;
using coarse::bench::runScheme;
using coarse::fabric::MachineOptions;

void
speedupPanel(const char *panel, const std::string &machine,
             const coarse::dl::ModelSpec &model, std::uint32_t batch)
{
    printHeader((std::string("Figure 16") + panel + ": " + model.name
                 + " on " + machine + " (speedup over DENSE)")
                    .c_str());

    const auto dense = runScheme("DENSE", machine, model, batch);
    const double base = dense.report.iterationSeconds;

    std::printf("%-22s %10s %10s\n", "scheme", "iter (ms)", "speedup");
    std::printf("%-22s %10.1f %9.2fx\n", "DENSE", base * 1e3, 1.0);

    const auto ar = runScheme("AllReduce", machine, model, batch);
    std::printf("%-22s %10.1f %9.2fx\n", "AllReduce",
                ar.report.iterationSeconds * 1e3,
                base / ar.report.iterationSeconds);

    const auto c11 = runScheme("COARSE", machine, model, batch);
    std::printf("%-22s %10.1f %9.2fx\n", "COARSE (1:1)",
                c11.report.iterationSeconds * 1e3,
                base / c11.report.iterationSeconds);

    MachineOptions shared;
    shared.workersPerMemDevice = 2;
    const auto c21 =
        runScheme("COARSE", machine, model, batch, shared);
    std::printf("%-22s %10.1f %9.2fx\n", "COARSE (2:1)",
                c21.report.iterationSeconds * 1e3,
                base / c21.report.iterationSeconds);
}

void
batchPanel()
{
    printHeader("Figure 16e: BERT-Large, single aws_v100 node, batch "
                "scaling (normalized to AllReduce bs2)");
    const auto model = coarse::dl::makeBertLarge();

    const auto ar2 = runScheme("AllReduce", "aws_v100", model, 2);
    const double basePerGpu =
        ar2.report.throughputSamplesPerSec / ar2.report.workers;

    std::printf("%-24s %14s %12s\n", "scheme", "samples/s/GPU",
                "vs AllReduce");
    std::printf("%-24s %14.2f %11.1f%%\n", "AllReduce bs2",
                basePerGpu, 0.0);

    const auto ar4 = runScheme("AllReduce", "aws_v100", model, 4);
    if (ar4.outOfMemory)
        std::printf("%-24s %14s %12s\n", "AllReduce bs4", "OOM", "-");

    for (std::uint32_t batch : {2u, 4u}) {
        const auto c = runScheme("COARSE", "aws_v100", model, batch);
        const double perGpu =
            c.report.throughputSamplesPerSec / c.report.workers;
        std::printf("%-24s %14.2f %+11.1f%%\n",
                    batch == 2 ? "COARSE bs2" : "COARSE bs4", perGpu,
                    100.0 * (perGpu / basePerGpu - 1.0));
    }
    std::printf("paper: COARSE bs4 trains 48.3%% faster than "
                "AllReduce bs2\n");
}

void
multiNodePanel()
{
    printHeader("Figure 16f: BERT-Large, two aws_v100 nodes "
                "(normalized to 2-node AllReduce bs2, per GPU)");
    const auto model = coarse::dl::makeBertLarge();
    MachineOptions twoNodes;
    twoNodes.nodes = 2;

    const auto ar = runScheme("AllReduce", "aws_v100", model, 2,
                              twoNodes);
    const double basePerGpu =
        ar.report.throughputSamplesPerSec / ar.report.workers;

    std::printf("%-24s %14s %12s\n", "scheme", "samples/s/GPU",
                "vs AllReduce");
    std::printf("%-24s %14.2f %11.1f%%\n", "AllReduce 2-node bs2",
                basePerGpu, 0.0);

    for (std::uint32_t batch : {2u, 4u}) {
        const auto c = runScheme("COARSE", "aws_v100", model, batch,
                                 twoNodes);
        const double perGpu =
            c.report.throughputSamplesPerSec / c.report.workers;
        std::printf("%-24s %14.2f %+11.1f%%\n",
                    batch == 2 ? "COARSE 2-node bs2"
                               : "COARSE 2-node bs4",
                    perGpu, 100.0 * (perGpu / basePerGpu - 1.0));
    }

    const auto c1 = runScheme("COARSE", "aws_v100", model, 4);
    const double perGpu =
        c1.report.throughputSamplesPerSec / c1.report.workers;
    std::printf("%-24s %14.2f %+11.1f%%\n", "COARSE 1-node bs4",
                perGpu, 100.0 * (perGpu / basePerGpu - 1.0));
    std::printf("paper: up to 42.7%% over 2-node AllReduce; a single "
                "COARSE node at bs4 is 38.6%% faster\n");
}

} // namespace

int
main()
{
    std::printf("Figure 16: DL training speedup\n");
    speedupPanel("a", "aws_t4", coarse::dl::makeResNet50(), 64);
    speedupPanel("b", "aws_t4", coarse::dl::makeBertBase(), 2);
    speedupPanel("c", "sdsc_p100", coarse::dl::makeBertBase(), 2);
    speedupPanel("d", "aws_v100", coarse::dl::makeBertBase(), 2);
    batchPanel();
    multiNodePanel();
    return 0;
}
