/**
 * @file
 * Figure 16: end-to-end training speedup.
 *
 *  (a,b) ResNet-50 and BERT on the AWS T4 machine, speedup over
 *        DENSE, with 1:1 and 2:1 worker/memdev configurations.
 *  (c)   BERT on SDSC P100.
 *  (d)   BERT on AWS V100.
 *  (e)   BERT-Large single node: batch scaling unlocked by COARSE's
 *        offloaded parameter state (paper: 48.3% over AllReduce).
 *  (f)   BERT-Large two nodes (paper: up to 42.7% over AllReduce;
 *        one COARSE node at batch 4 beats two AllReduce nodes).
 *
 * Every run is an independent (scheme, machine, model, batch, config)
 * replica, so the whole figure's worth of runs fans out across cores
 * via SweepRunner (--jobs=N, default all cores); the panels then
 * print from the index-ordered results, byte-identical at any
 * parallelism.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "sim/parallel.hh"

namespace {

using coarse::bench::printHeader;
using coarse::bench::runScheme;
using coarse::bench::SchemeResult;
using coarse::fabric::MachineOptions;

/** One scheduled run; results are read back by registration index. */
struct RunSpec
{
    std::string scheme;
    std::string machine;
    coarse::dl::ModelSpec model;
    std::uint32_t batch = 0;
    MachineOptions machineOptions;
};

class RunSet
{
  public:
    /** Register a run; returns the index its result will land in. */
    std::size_t
    add(std::string scheme, std::string machine,
        coarse::dl::ModelSpec model, std::uint32_t batch,
        MachineOptions machineOptions = {})
    {
        specs_.push_back(RunSpec{std::move(scheme), std::move(machine),
                                 std::move(model), batch,
                                 machineOptions});
        return specs_.size() - 1;
    }

    void
    runAll(unsigned jobs)
    {
        coarse::sim::SweepRunner runner(jobs);
        results_ = runner.map<SchemeResult>(
            specs_.size(), [this](std::size_t i) {
                const RunSpec &spec = specs_[i];
                return runScheme(spec.scheme, spec.machine, spec.model,
                                 spec.batch, spec.machineOptions);
            });
    }

    const SchemeResult &operator[](std::size_t i) const
    {
        return results_[i];
    }

  private:
    std::vector<RunSpec> specs_;
    std::vector<SchemeResult> results_;
};

struct PanelRuns
{
    const char *panel;
    std::string machine;
    std::string modelName;
    std::size_t dense, allReduce, coarse11, coarse21;
};

void
printSpeedupPanel(const RunSet &runs, const PanelRuns &p)
{
    printHeader((std::string("Figure 16") + p.panel + ": "
                 + p.modelName + " on " + p.machine
                 + " (speedup over DENSE)")
                    .c_str());
    const double base = runs[p.dense].report.iterationSeconds;

    std::printf("%-22s %10s %10s\n", "scheme", "iter (ms)", "speedup");
    std::printf("%-22s %10.1f %9.2fx\n", "DENSE", base * 1e3, 1.0);

    const auto row = [&](const char *name, std::size_t at) {
        const double iter = runs[at].report.iterationSeconds;
        std::printf("%-22s %10.1f %9.2fx\n", name, iter * 1e3,
                    base / iter);
    };
    row("AllReduce", p.allReduce);
    row("COARSE (1:1)", p.coarse11);
    row("COARSE (2:1)", p.coarse21);
}

double
perGpu(const SchemeResult &result)
{
    return result.report.throughputSamplesPerSec
        / result.report.workers;
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("Figure 16: DL training speedup\n");

    RunSet runs;
    MachineOptions shared;
    shared.workersPerMemDevice = 2;

    // Panels a-d: DENSE / AllReduce / COARSE 1:1 / COARSE 2:1.
    const struct
    {
        const char *panel;
        const char *machine;
        coarse::dl::ModelSpec model;
        std::uint32_t batch;
    } panels[] = {
        {"a", "aws_t4", coarse::dl::makeResNet50(), 64},
        {"b", "aws_t4", coarse::dl::makeBertBase(), 2},
        {"c", "sdsc_p100", coarse::dl::makeBertBase(), 2},
        {"d", "aws_v100", coarse::dl::makeBertBase(), 2},
    };
    std::vector<PanelRuns> panelRuns;
    for (const auto &p : panels) {
        PanelRuns at;
        at.panel = p.panel;
        at.machine = p.machine;
        at.modelName = p.model.name;
        at.dense = runs.add("DENSE", p.machine, p.model, p.batch);
        at.allReduce =
            runs.add("AllReduce", p.machine, p.model, p.batch);
        at.coarse11 = runs.add("COARSE", p.machine, p.model, p.batch);
        at.coarse21 =
            runs.add("COARSE", p.machine, p.model, p.batch, shared);
        panelRuns.push_back(at);
    }

    // Panel e: single-node BERT-Large batch scaling.
    const auto bertLarge = coarse::dl::makeBertLarge();
    const std::size_t e_ar2 =
        runs.add("AllReduce", "aws_v100", bertLarge, 2);
    const std::size_t e_ar4 =
        runs.add("AllReduce", "aws_v100", bertLarge, 4);
    const std::size_t e_c2 =
        runs.add("COARSE", "aws_v100", bertLarge, 2);
    const std::size_t e_c4 =
        runs.add("COARSE", "aws_v100", bertLarge, 4);

    // Panel f: two-node BERT-Large.
    MachineOptions twoNodes;
    twoNodes.nodes = 2;
    const std::size_t f_ar =
        runs.add("AllReduce", "aws_v100", bertLarge, 2, twoNodes);
    const std::size_t f_c2 =
        runs.add("COARSE", "aws_v100", bertLarge, 2, twoNodes);
    const std::size_t f_c4 =
        runs.add("COARSE", "aws_v100", bertLarge, 4, twoNodes);

    runs.runAll(coarse::bench::benchJobs(argc, argv));

    for (const PanelRuns &p : panelRuns)
        printSpeedupPanel(runs, p);

    printHeader("Figure 16e: BERT-Large, single aws_v100 node, batch "
                "scaling (normalized to AllReduce bs2)");
    const double eBase = perGpu(runs[e_ar2]);
    std::printf("%-24s %14s %12s\n", "scheme", "samples/s/GPU",
                "vs AllReduce");
    std::printf("%-24s %14.2f %11.1f%%\n", "AllReduce bs2", eBase,
                0.0);
    if (runs[e_ar4].outOfMemory)
        std::printf("%-24s %14s %12s\n", "AllReduce bs4", "OOM", "-");
    for (const auto &[name, at] :
         {std::pair<const char *, std::size_t>{"COARSE bs2", e_c2},
          {"COARSE bs4", e_c4}}) {
        std::printf("%-24s %14.2f %+11.1f%%\n", name,
                    perGpu(runs[at]),
                    100.0 * (perGpu(runs[at]) / eBase - 1.0));
    }
    std::printf("paper: COARSE bs4 trains 48.3%% faster than "
                "AllReduce bs2\n");

    printHeader("Figure 16f: BERT-Large, two aws_v100 nodes "
                "(normalized to 2-node AllReduce bs2, per GPU)");
    const double fBase = perGpu(runs[f_ar]);
    std::printf("%-24s %14s %12s\n", "scheme", "samples/s/GPU",
                "vs AllReduce");
    std::printf("%-24s %14.2f %11.1f%%\n", "AllReduce 2-node bs2",
                fBase, 0.0);
    for (const auto &[name, at] :
         {std::pair<const char *, std::size_t>{"COARSE 2-node bs2",
                                               f_c2},
          {"COARSE 2-node bs4", f_c4},
          {"COARSE 1-node bs4", e_c4}}) {
        std::printf("%-24s %14.2f %+11.1f%%\n", name,
                    perGpu(runs[at]),
                    100.0 * (perGpu(runs[at]) / fBase - 1.0));
    }
    std::printf("paper: up to 42.7%% over 2-node AllReduce; a single "
                "COARSE node at bs4 is 38.6%% faster\n");
    return 0;
}
