/**
 * @file
 * Ablation: bandwidth-aware tensor routing on/off.
 *
 * On the anti-local AWS V100 fabric, routing large tensors to the
 * remote bandwidth-optimal proxy should beat always-local routing;
 * on the conventional SDSC fabric the two coincide.
 */

#include <cstdio>

#include "bench_util.hh"

namespace {

using coarse::bench::runScheme;

void
runMachine(const char *machine)
{
    const auto model = coarse::dl::makeBertBase();
    std::printf("\n%s (bert_base, batch 2):\n", machine);
    std::printf("%-18s %12s %15s\n", "routing", "iter (ms)",
                "blocked (ms)");
    for (bool routing : {false, true}) {
        coarse::core::CoarseOptions options;
        options.tensorRouting = routing;
        const auto r =
            runScheme("COARSE", machine, model, 2, {}, options);
        std::printf("%-18s %12.2f %15.2f\n",
                    routing ? "Lat/Bw proxies" : "local only",
                    r.report.iterationSeconds * 1e3,
                    r.report.blockedCommSeconds * 1e3);
    }
}

} // namespace

int
main()
{
    std::printf("Ablation: tensor routing (paper (S)III-E)\n");
    runMachine("aws_v100");
    runMachine("sdsc_p100");
    return 0;
}
