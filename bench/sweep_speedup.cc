/**
 * @file
 * Parallel-harness baseline: wall-clock and speedup of a seed sweep
 * run through SweepRunner at --jobs=1 versus all cores.
 *
 * Runs the same 8-replica (config, seed) sweep twice — serially and
 * across the work-stealing pool — asserts the aggregated JSON is
 * byte-identical (the harness's core guarantee), and records the
 * timings into BENCH_sweep.json in the working directory so CI can
 * track the harness's scaling as a baseline alongside the table it
 * prints.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include "bench_util.hh"
#include "sim/parallel.hh"

namespace {

constexpr std::size_t kReplicas = 8;

struct SweepTiming
{
    std::string aggregate;
    double seconds = 0.0;
    std::uint64_t steals = 0;
    unsigned jobs = 0;
};

SweepTiming
timedSweep(unsigned jobs)
{
    using coarse::bench::JsonLine;
    coarse::sim::SweepRunner runner(jobs);
    const auto began = std::chrono::steady_clock::now();
    const auto lines = runner.map<std::string>(
        kReplicas, [](std::size_t i) {
            const std::uint64_t seed = i + 1;
            const auto result = coarse::bench::runScheme(
                "COARSE", "aws_v100", coarse::dl::makeBertBase(), 2,
                {}, {}, seed);
            return JsonLine()
                       .field("seed", seed)
                       .field("iter_ms",
                              result.report.iterationSeconds * 1e3)
                       .field("blocked_ms",
                              result.report.blockedCommSeconds * 1e3)
                       .field("samples_per_sec",
                              result.report.throughputSamplesPerSec)
                       .str()
                + "\n";
        });
    SweepTiming timing;
    timing.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now()
                                      - began)
            .count();
    for (const std::string &line : lines)
        timing.aggregate += line;
    timing.steals = runner.stealCount();
    timing.jobs = runner.jobs();
    return timing;
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("Sweep harness: %zu-replica COARSE seed sweep "
                "(bert_base, aws_v100), serial vs parallel\n\n",
                kReplicas);

    const SweepTiming serial = timedSweep(1);
    const SweepTiming parallel =
        timedSweep(coarse::bench::benchJobs(argc, argv));
    const bool identical = serial.aggregate == parallel.aggregate;
    const double speedup = parallel.seconds > 0.0
        ? serial.seconds / parallel.seconds
        : 0.0;

    std::printf("%-14s %8s %12s %10s\n", "mode", "jobs",
                "wall (s)", "steals");
    std::printf("%-14s %8u %12.3f %10llu\n", "serial", serial.jobs,
                serial.seconds,
                static_cast<unsigned long long>(serial.steals));
    std::printf("%-14s %8u %12.3f %10llu\n", "parallel",
                parallel.jobs, parallel.seconds,
                static_cast<unsigned long long>(parallel.steals));
    std::printf("\nspeedup: %.2fx on %u hardware threads, aggregate "
                "JSON %s\n",
                speedup, std::thread::hardware_concurrency(),
                identical ? "byte-identical" : "DIVERGED");

    coarse::bench::JsonLine baseline;
    baseline.field("replicas", kReplicas)
        .field("hardware_threads", std::thread::hardware_concurrency())
        .field("jobs", parallel.jobs)
        .field("serial_s", serial.seconds)
        .field("parallel_s", parallel.seconds)
        .field("speedup", speedup)
        .field("steals", parallel.steals)
        .field("identical", identical);
    baseline.print();
    std::ofstream out("BENCH_sweep.json");
    if (out)
        out << baseline.str() << "\n";

    // The aggregate must match whatever the parallelism; a divergence
    // is a thread-compatibility bug, so fail loudly.
    return identical ? 0 : 1;
}
