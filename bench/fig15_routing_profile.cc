/**
 * @file
 * Figure 15: the profiler's view of one client on each machine —
 * transfer time to the local proxy versus the best remote proxy as a
 * function of request size, plus the routing table it derives.
 */

#include <cstdio>
#include <string>

#include "coarse/profiler.hh"
#include "fabric/machine.hh"
#include "sim/simulation.hh"

namespace {

using namespace coarse::core;
using namespace coarse::fabric;

void
profileMachine(const std::string &name)
{
    coarse::sim::Simulation sim;
    auto machine = makeMachine(name, sim);
    auto &topo = machine->topology();
    Profiler profiler(topo);

    const NodeId client = machine->workers()[0];
    const NodeId local = machine->pairedMemDevice(client);
    const auto profile =
        profiler.profileClient(client, machine->memDevices());

    // Best remote proxy = highest-bandwidth non-local one.
    NodeId remote = kInvalidNode;
    double remoteBw = 0.0;
    for (const auto &path : profile.paths) {
        if (path.proxy != local && path.peakBytesPerSec > remoteBw) {
            remote = path.proxy;
            remoteBw = path.peakBytesPerSec;
        }
    }

    std::printf("\n%s: client gpu0 -> proxies (transfer time, us)\n",
                name.c_str());
    std::printf("%-10s %14s %14s\n", "size", "local proxy",
                "best remote");
    const auto localProfile = profiler.profilePath(client, local);
    const auto remoteProfile = profiler.profilePath(client, remote);
    for (std::size_t i = 0; i < localProfile.points.size(); i += 2) {
        const auto &lp = localProfile.points[i];
        const auto &rp = remoteProfile.points[i];
        char label[32];
        if (lp.bytes >= (1 << 20))
            std::snprintf(label, sizeof(label), "%lluMiB",
                          static_cast<unsigned long long>(lp.bytes
                                                          >> 20));
        else
            std::snprintf(label, sizeof(label), "%lluKiB",
                          static_cast<unsigned long long>(lp.bytes
                                                          >> 10));
        std::printf("%-10s %14.1f %14.1f\n", label, lp.seconds * 1e6,
                    rp.seconds * 1e6);
    }

    std::printf("routing table: LatProxy=%s BwProxy=%s threshold=%llu "
                "KiB, shard S'=%llu KiB\n",
                topo.nodeName(profile.routing.latProxy).c_str(),
                topo.nodeName(profile.routing.bwProxy).c_str(),
                static_cast<unsigned long long>(
                    profile.routing.thresholdBytes >> 10),
                static_cast<unsigned long long>(profile.shardBytes
                                                >> 10));
}

} // namespace

int
main()
{
    std::printf("Figure 15: client-to-proxy communication profile "
                "(PCIe path, NVLink disabled)\n");
    for (const char *machine : {"aws_t4", "sdsc_p100", "aws_v100"})
        profileMachine(machine);
    std::printf("\npaper: on the anti-local AWS V100 instance the "
                "remote proxy wins for large requests, so LatProxy != "
                "BwProxy and the threshold splits the traffic\n");
    return 0;
}
