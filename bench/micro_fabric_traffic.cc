/**
 * @file
 * Fabric characterization: synthetic traffic patterns over the three
 * evaluation machines (the interconnect-simulator staple). Shows how
 * each fabric degrades under hotspot pressure and how the AWS V100
 * anti-locality shapes uniform traffic.
 */

#include <cstdio>
#include <vector>

#include "fabric/machine.hh"
#include "fabric/traffic.hh"
#include "sim/simulation.hh"

int
main()
{
    using namespace coarse::fabric;

    std::printf("Synthetic fabric traffic (1 MiB messages, 8 per "
                "endpoint, burst injection)\n\n");
    std::printf("%-11s %-18s %14s %14s %14s\n", "machine", "pattern",
                "agg GB/s", "mean lat us", "max lat us");

    for (const char *name : {"aws_t4", "sdsc_p100", "aws_v100"}) {
        for (TrafficPattern pattern :
             {TrafficPattern::NearestNeighbor,
              TrafficPattern::UniformRandom,
              TrafficPattern::Transpose, TrafficPattern::Hotspot}) {
            coarse::sim::Simulation sim;
            auto machine = makeMachine(name, sim);
            std::vector<NodeId> gpus = machine->workers();
            gpus.insert(gpus.end(), machine->memDevices().begin(),
                        machine->memDevices().end());
            TrafficParams params;
            params.pattern = pattern;
            const auto result =
                runTraffic(machine->topology(), gpus, params);
            std::printf("%-11s %-18s %14.2f %14.1f %14.1f\n", name,
                        trafficPatternName(pattern),
                        result.aggregateBytesPerSec / 1e9,
                        result.meanLatencySeconds * 1e6,
                        result.maxLatencySeconds * 1e6);
        }
    }
    std::printf("\nhotspot pressure serializes on the victim's "
                "attachment — the same effect that caps the DENSE "
                "parameter server\n");
    return 0;
}
