/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself: event
 * queue throughput, fabric transfers, ring allreduce, and a full
 * COARSE iteration. These guard the simulator's own performance so
 * the figure benches stay fast.
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "coarse/engine.hh"
#include "collective/communicator.hh"
#include "dl/model_zoo.hh"
#include "fabric/machine.hh"
#include "sim/simulation.hh"

namespace {

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    const auto count = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        coarse::sim::EventQueue queue;
        std::uint64_t sum = 0;
        for (std::size_t i = 0; i < count; ++i) {
            queue.post(i * 10, [&sum, i] { sum += i; });
        }
        queue.run();
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * count));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(100000);

// The deprecated std::function shim, kept as a yardstick for the
// migration win.
void
BM_EventQueueScheduleRunShim(benchmark::State &state)
{
    const auto count = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        coarse::sim::EventQueue queue;
        std::uint64_t sum = 0;
        for (std::size_t i = 0; i < count; ++i) {
            queue.schedule(i * 10,
                           std::function<void()>([&sum, i] { sum += i; }));
        }
        queue.run();
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * count));
}
BENCHMARK(BM_EventQueueScheduleRunShim)->Arg(1000)->Arg(100000);

// Pure intrusive hot path: one pre-allocated event re-arming itself,
// the pattern trainers use for their per-iteration events.
void
BM_EventQueueIntrusiveRearm(benchmark::State &state)
{
    const auto count = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        coarse::sim::EventQueue queue;
        std::uint64_t fired = 0;
        coarse::sim::Event *self = nullptr;
        coarse::sim::LambdaEvent event{[&] {
            if (++fired < count)
                queue.scheduleIn(*self, 10);
        }};
        self = &event;
        queue.schedule(event, 10);
        queue.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * count));
}
BENCHMARK(BM_EventQueueIntrusiveRearm)->Arg(100000);

void
BM_FabricTransfer(benchmark::State &state)
{
    const std::uint64_t bytes = std::uint64_t(state.range(0)) << 20;
    for (auto _ : state) {
        coarse::sim::Simulation sim;
        auto machine = coarse::fabric::makeAwsV100(sim);
        coarse::fabric::Message msg;
        msg.src = machine->workers()[0];
        msg.dst = machine->workers()[1];
        msg.bytes = bytes;
        machine->topology().send(std::move(msg));
        sim.run();
        benchmark::DoNotOptimize(sim.now());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * bytes));
}
BENCHMARK(BM_FabricTransfer)->Arg(16)->Arg(256);

void
BM_RingAllReduceTimed(benchmark::State &state)
{
    const std::uint64_t bytes = std::uint64_t(state.range(0)) << 20;
    for (auto _ : state) {
        coarse::sim::Simulation sim;
        auto machine = coarse::fabric::makeAwsV100(sim);
        coarse::coll::Communicator comm(machine->topology(),
                                        machine->workers());
        comm.allReduceTimed(bytes, coarse::coll::RingOptions{}, [] {});
        sim.run();
        benchmark::DoNotOptimize(sim.now());
    }
}
BENCHMARK(BM_RingAllReduceTimed)->Arg(64)->Arg(512);

void
BM_RingAllReduceFunctional(benchmark::State &state)
{
    const std::size_t elems = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        coarse::sim::Simulation sim;
        auto machine = coarse::fabric::makeAwsV100(sim);
        coarse::coll::Communicator comm(machine->topology(),
                                        machine->workers());
        std::vector<std::vector<float>> buffers(
            machine->workers().size(), std::vector<float>(elems, 1.0f));
        std::vector<std::span<float>> spans;
        for (auto &b : buffers)
            spans.emplace_back(b);
        comm.allReduce(spans, coarse::coll::RingOptions{}, [] {});
        sim.run();
        benchmark::DoNotOptimize(buffers[0][0]);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * elems));
}
BENCHMARK(BM_RingAllReduceFunctional)->Arg(1 << 16)->Arg(1 << 20);

void
BM_CoarseIterationResnet(benchmark::State &state)
{
    const auto model = coarse::dl::makeResNet50();
    for (auto _ : state) {
        coarse::sim::Simulation sim;
        auto machine = coarse::fabric::makeAwsV100(sim);
        coarse::core::CoarseEngine engine(*machine, model, 64);
        const auto report = engine.run(2, 1);
        benchmark::DoNotOptimize(report.iterationSeconds);
    }
}
BENCHMARK(BM_CoarseIterationResnet)->Unit(benchmark::kMillisecond);

void
BM_CoarseIterationBertLarge(benchmark::State &state)
{
    const auto model = coarse::dl::makeBertLarge();
    for (auto _ : state) {
        coarse::sim::Simulation sim;
        auto machine = coarse::fabric::makeAwsV100(sim);
        coarse::core::CoarseEngine engine(*machine, model, 2);
        const auto report = engine.run(2, 1);
        benchmark::DoNotOptimize(report.iterationSeconds);
    }
}
BENCHMARK(BM_CoarseIterationBertLarge)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
