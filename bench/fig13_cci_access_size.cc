/**
 * @file
 * Figure 13: CCI prototype bandwidth versus access size for the
 * three access paths, reads (a) and writes (b).
 *
 * Paper shapes: CCI read flat across sizes; GPU Indirect read
 * indistinguishable from CCI; GPU Direct read 9x-17x and write
 * 1.25x-4x over CCI depending on access size.
 */

#include <cstdio>

#include "cci/prototype_model.hh"

namespace {

void
printDirection(const coarse::cci::PrototypeModel &model,
               coarse::cci::AccessDirection dir)
{
    using namespace coarse::cci;
    std::printf("\nFigure 13%s: %s bandwidth (GB/s) vs access size\n",
                dir == AccessDirection::Read ? "a" : "b",
                accessDirectionName(dir));
    std::printf("%-10s %10s %14s %12s %10s\n", "size", "CCI",
                "GPU Indirect", "GPU Direct", "direct-x");
    for (std::uint64_t size = 4 << 10; size <= (64 << 20); size *= 4) {
        const double cci =
            model.bandwidth(AccessPath::Cci, dir, size);
        const double indirect =
            model.bandwidth(AccessPath::GpuIndirect, dir, size);
        const double direct =
            model.bandwidth(AccessPath::GpuDirect, dir, size);
        char label[32];
        if (size >= (1 << 20))
            std::snprintf(label, sizeof(label), "%lluMiB",
                          static_cast<unsigned long long>(size >> 20));
        else
            std::snprintf(label, sizeof(label), "%lluKiB",
                          static_cast<unsigned long long>(size >> 10));
        std::printf("%-10s %10.2f %14.2f %12.2f %9.1fx\n", label,
                    cci / 1e9, indirect / 1e9, direct / 1e9,
                    direct / cci);
    }
}

} // namespace

int
main()
{
    coarse::cci::PrototypeModel model;
    std::printf("Figure 13: CCI bandwidth under different access "
                "sizes\n");
    printDirection(model, coarse::cci::AccessDirection::Read);
    printDirection(model, coarse::cci::AccessDirection::Write);
    std::printf("\npaper: reads 9x-17x, writes 1.25x-4x GPU Direct "
                "speedup; CCI read flat\n");
    return 0;
}
