/**
 * @file
 * Figure 17: blocked communication time — the time GPUs sit idle
 * waiting on parameter synchronization.
 *
 *  (a-d) normalized to the DENSE CCI parameter server; the paper
 *        reports AllReduce and COARSE below 10% of DENSE, with
 *        COARSE 20-46% below AllReduce on P2P machines and 18-20%
 *        above it on the no-P2P T4 machine.
 *  (e-f) single- and two-node BERT-Large, normalized to AllReduce.
 */

#include <cstdio>
#include <string>

#include "bench_util.hh"

namespace {

using coarse::bench::printHeader;
using coarse::bench::runScheme;
using coarse::fabric::MachineOptions;

void
densePanel(const char *panel, const std::string &machine,
           const coarse::dl::ModelSpec &model, std::uint32_t batch)
{
    printHeader((std::string("Figure 17") + panel + ": " + model.name
                 + " on " + machine
                 + " (blocked comm, normalized to DENSE)")
                    .c_str());

    const auto dense = runScheme("DENSE", machine, model, batch);
    const double base = dense.report.blockedCommSeconds;

    std::printf("%-14s %14s %12s\n", "scheme", "blocked (ms)",
                "vs DENSE");
    std::printf("%-14s %14.2f %11.1f%%\n", "DENSE", base * 1e3, 100.0);
    double arBlocked = 0.0;
    for (const char *scheme : {"AllReduce", "COARSE"}) {
        const auto r = runScheme(scheme, machine, model, batch);
        std::printf("%-14s %14.2f %11.1f%%\n", scheme,
                    r.report.blockedCommSeconds * 1e3,
                    100.0 * r.report.blockedCommSeconds / base);
        if (std::string(scheme) == "AllReduce")
            arBlocked = r.report.blockedCommSeconds;
        else if (arBlocked > 0.0) {
            std::printf("%-14s %14s %+11.1f%%\n", "  (vs AllReduce)",
                        "", 100.0
                            * (r.report.blockedCommSeconds / arBlocked
                               - 1.0));
        }
    }
}

void
allReducePanel(const char *panel, std::uint32_t nodes)
{
    printHeader((std::string("Figure 17") + panel + ": bert_large, "
                 + std::to_string(nodes)
                 + "-node aws_v100 (normalized to AllReduce)")
                    .c_str());
    const auto model = coarse::dl::makeBertLarge();
    MachineOptions mo;
    mo.nodes = nodes;

    const auto ar = runScheme("AllReduce", "aws_v100", model, 2, mo);
    const double base = ar.report.blockedCommSeconds;
    std::printf("%-14s %14s %12s\n", "scheme", "blocked (ms)",
                "vs AllReduce");
    std::printf("%-14s %14.2f %11.1f%%\n", "AllReduce", base * 1e3,
                100.0);
    const auto c = runScheme("COARSE", "aws_v100", model, 2, mo);
    std::printf("%-14s %14.2f %11.1f%%\n", "COARSE",
                c.report.blockedCommSeconds * 1e3,
                100.0 * c.report.blockedCommSeconds / base);
}

} // namespace

int
main()
{
    std::printf("Figure 17: blocked communication time\n");
    densePanel("a", "aws_t4", coarse::dl::makeResNet50(), 64);
    densePanel("b", "aws_t4", coarse::dl::makeBertBase(), 2);
    densePanel("c", "sdsc_p100", coarse::dl::makeBertBase(), 2);
    densePanel("d", "aws_v100", coarse::dl::makeBertBase(), 2);
    allReducePanel("e", 1);
    allReducePanel("f", 2);
    std::printf("\npaper: AllReduce and COARSE < 10%% of DENSE; "
                "COARSE -20%%..-46%% vs AllReduce with P2P, "
                "+18-20%% without\n");
    return 0;
}
