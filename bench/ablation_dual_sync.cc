/**
 * @file
 * Ablation: dual synchronization — planner-chosen split versus
 * all-proxy and (effectively) all-GPU synchronization.
 */

#include <cstdio>

#include "bench_util.hh"
#include "coarse/dual_sync.hh"

int
main()
{
    using coarse::bench::runScheme;

    const auto model = coarse::dl::makeBertLarge();
    std::printf("Ablation: dual synchronization split (bert_large, "
                "aws_v100, batch 2)\n\n");
    std::printf("%-22s %12s %15s\n", "strategy", "iter (ms)",
                "blocked (ms)");

    for (double share : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        coarse::core::CoarseOptions options;
        options.proxyShareOverride = share;
        const auto r =
            runScheme("COARSE", "aws_v100", model, 2, {}, options);
        char label[40];
        std::snprintf(label, sizeof(label), "fixed m = %.0f%% n",
                      share * 100.0);
        std::printf("%-22s %12.2f %15.2f\n", label,
                    r.report.iterationSeconds * 1e3,
                    r.report.blockedCommSeconds * 1e3);
    }
    {
        coarse::core::CoarseOptions options; // planner decides m
        const auto r =
            runScheme("COARSE", "aws_v100", model, 2, {}, options);
        std::printf("%-22s %12.2f %15.2f\n", "dual sync (planner)",
                    r.report.iterationSeconds * 1e3,
                    r.report.blockedCommSeconds * 1e3);
    }
    {
        // All-GPU synchronization is exactly the AllReduce baseline.
        const auto r = runScheme("AllReduce", "aws_v100", model, 2);
        std::printf("%-22s %12.2f %15.2f\n", "all-GPU (AllReduce)",
                    r.report.iterationSeconds * 1e3,
                    r.report.blockedCommSeconds * 1e3);
    }
    std::printf("\npaper (S)III-F: T_train = max(T_FP+T_BP+"
                "T_sync(GPU), T_FP+T_sync(proxy)); the planner picks "
                "m to minimize it\n");
    return 0;
}
