/**
 * @file
 * Ablation: sync-core group count and ring direction policy
 * (paper Fig. 11b) plus the ARM-core fallback (paper §IV-A).
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "fabric/machine.hh"
#include "memdev/sync_group.hh"
#include "sim/simulation.hh"

namespace {

double
syncSeconds(std::size_t groups, bool alternate, bool arm)
{
    coarse::sim::Simulation sim;
    auto machine = coarse::fabric::makeAwsV100(sim);
    std::vector<std::unique_ptr<coarse::memdev::MemoryDevice>> devices;
    std::vector<coarse::memdev::MemoryDevice *> raw;
    for (auto node : machine->memDevices()) {
        devices.push_back(
            std::make_unique<coarse::memdev::MemoryDevice>(node));
        raw.push_back(devices.back().get());
    }
    coarse::memdev::SyncScheduleOptions options;
    options.groups = groups;
    options.alternateDirections = alternate;
    options.useArmCore = arm;
    coarse::memdev::SyncGroupScheduler scheduler(machine->topology(),
                                                 raw, options);
    scheduler.allReduceTimed(std::uint64_t(438) << 20, [] {});
    sim.run();
    return coarse::sim::toSeconds(sim.now());
}

} // namespace

int
main()
{
    std::printf("Ablation: sync-core groups (438 MiB = bert_base "
                "gradients, 4 memory devices on aws_v100)\n\n");
    std::printf("%-10s %-16s %-10s %12s\n", "groups", "directions",
                "engine", "sync (ms)");
    for (std::size_t groups : {1u, 2u, 4u}) {
        for (bool alternate : {false, true}) {
            if (groups == 1 && alternate)
                continue;
            std::printf("%-10zu %-16s %-10s %12.2f\n", groups,
                        alternate ? "counter-rotating" : "same",
                        "sync-cores",
                        syncSeconds(groups, alternate, false) * 1e3);
        }
    }
    std::printf("%-10u %-16s %-10s %12.2f\n", 1, "-", "ARM core",
                syncSeconds(1, false, true) * 1e3);
    std::printf("\npaper: counter-rotating groups drive both "
                "directions of every CCI link; generalized ARM cores "
                "lack the ALU parallelism\n");
    return 0;
}
