/**
 * @file
 * Table I: the evaluation machine instances. Prints each preset's
 * configuration as built by the fabric layer.
 */

#include <cstdio>

#include "dl/gpu.hh"
#include "fabric/machine.hh"
#include "sim/simulation.hh"

int
main()
{
    std::printf("Table I: machine instances used for evaluation\n\n");
    std::printf("%-11s %-6s %8s %8s %6s %5s %7s %9s\n", "machine",
                "gpu", "workers", "memdevs", "cpus", "p2p", "nvlink",
                "nodes");

    for (const char *name : {"aws_t4", "sdsc_p100", "aws_v100"}) {
        coarse::sim::Simulation sim;
        auto m = coarse::fabric::makeMachine(name, sim);
        bool nvlink = false;
        for (std::size_t l = 0; l < m->topology().linkCount(); ++l) {
            if (m->topology().link(static_cast<coarse::fabric::LinkId>(l))
                    .kind()
                == coarse::fabric::LinkKind::NvLink)
                nvlink = true;
        }
        std::printf("%-11s %-6s %8zu %8zu %6zu %5s %7s %9u\n", name,
                    m->gpuModel().c_str(), m->workers().size(),
                    m->memDevices().size(), m->hostCpus().size(),
                    m->p2pSupported() ? "yes" : "no",
                    nvlink ? "yes" : "no", m->serverNodeCount());
    }

    std::printf("\nGPU specs (public):\n");
    std::printf("%-6s %12s %10s %12s\n", "gpu", "fp32-TFLOPs",
                "mem (GiB)", "mem-BW GB/s");
    for (const char *gpu : {"T4", "P100", "V100"}) {
        const auto spec = coarse::dl::gpuSpec(gpu);
        std::printf("%-6s %12.1f %10llu %12.0f\n", gpu,
                    spec.fp32Tflops,
                    static_cast<unsigned long long>(spec.memBytes >> 30),
                    spec.memBytesPerSec / 1e9);
    }

    std::printf("\nVariants exercised by the figure benches: 2:1 "
                "worker/memdev sharing (aws_v100), 2-node clusters "
                "with 100 Gb/s NICs.\n");
    return 0;
}
