/**
 * @file
 * Figure 3: peer-to-peer access speedup on the CCI prototype.
 *
 * Paper result: GPU Direct achieves ~17x read and ~4x write
 * bandwidth over host-mediated CCI access at saturating sizes.
 */

#include <cstdio>

#include "cci/prototype_model.hh"

int
main()
{
    using namespace coarse::cci;
    PrototypeModel model;
    const std::uint64_t size = 16 << 20; // saturating access

    std::printf("Figure 3: CCI prototype P2P bandwidth (access size "
                "16 MiB)\n\n");
    std::printf("%-14s %14s %14s %10s %10s\n", "path", "read GB/s",
                "write GB/s", "read-x", "write-x");

    const double cciRead =
        model.bandwidth(AccessPath::Cci, AccessDirection::Read, size);
    const double cciWrite =
        model.bandwidth(AccessPath::Cci, AccessDirection::Write, size);

    for (AccessPath path : {AccessPath::Cci, AccessPath::GpuIndirect,
                            AccessPath::GpuDirect}) {
        const double r =
            model.bandwidth(path, AccessDirection::Read, size);
        const double w =
            model.bandwidth(path, AccessDirection::Write, size);
        std::printf("%-14s %14.2f %14.2f %9.1fx %9.1fx\n",
                    accessPathName(path), r / 1e9, w / 1e9, r / cciRead,
                    w / cciWrite);
    }

    std::printf("\npaper: GPU Direct = 17x read / 4x write over CCI\n");
    return 0;
}
