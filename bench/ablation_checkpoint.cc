/**
 * @file
 * Ablation: checkpoint cadence versus failure-recovery cost
 * (paper §IV-A fault tolerance).
 *
 * COW snapshots make the steady-state checkpoint overhead nearly
 * free, so the trade is all on the recovery side: sparser
 * checkpoints replay more lost iterations after a failure.
 */

#include <cstdio>

#include "coarse/engine.hh"
#include "dl/model_zoo.hh"
#include "fabric/machine.hh"
#include "sim/simulation.hh"

namespace {

struct Outcome
{
    double totalSeconds;
    std::uint32_t replayed;
};

Outcome
runWith(std::uint32_t checkpointEvery, bool fail)
{
    coarse::sim::Simulation sim;
    auto machine = coarse::fabric::makeAwsV100(sim);
    coarse::core::CoarseOptions options;
    options.checkpointEveryIters = checkpointEvery;
    if (fail)
        options.failAtIteration = 9;
    coarse::core::CoarseEngine engine(
        *machine, coarse::dl::makeBertBase(), 2, options);
    const auto report = engine.run(12, 0);
    return Outcome{report.iterationSeconds * report.iterations
                       + 0.0 * report.computeSeconds,
                   engine.iterationsReplayed()};
}

} // namespace

int
main()
{
    std::printf("Ablation: checkpoint cadence vs recovery cost "
                "(bert_base on aws_v100, 12 iterations, worker "
                "failure after iteration 9)\n\n");
    std::printf("%-18s %16s %16s %10s\n", "checkpoint every",
                "no-failure (s)", "with failure (s)", "replayed");
    for (std::uint32_t every : {1u, 2u, 4u, 8u}) {
        const auto clean = runWith(every, false);
        const auto failed = runWith(every, true);
        std::printf("%-18u %16.3f %16.3f %10u\n", every,
                    clean.totalSeconds, failed.totalSeconds,
                    failed.replayed);
    }
    std::printf("\nCOW snapshots cost no data copies, so frequent "
                "checkpoints are nearly free while cutting the "
                "replay window\n");
    return 0;
}
