/**
 * @file
 * Figure 10: FCFS synchronization deadlock and COARSE's queue-based
 * avoidance.
 *
 * Reproduces the paper's scenario — two tensors pushed to two
 * proxies in conflicting orders — under both scheduling policies.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "coarse/proxy_sync.hh"
#include "fabric/machine.hh"
#include "memdev/memory_device.hh"
#include "sim/simulation.hh"

namespace {

using namespace coarse::core;

void
runPolicy(SchedulingPolicy policy)
{
    coarse::sim::Simulation sim;
    auto machine = coarse::fabric::makeSdscP100(sim);
    std::vector<std::unique_ptr<coarse::memdev::MemoryDevice>> devices;
    std::vector<coarse::memdev::MemoryDevice *> raw;
    for (auto node : machine->memDevices()) {
        devices.push_back(
            std::make_unique<coarse::memdev::MemoryDevice>(node));
        raw.push_back(devices.back().get());
    }
    ProxySyncService service(machine->topology(), raw, {}, policy,
                             /*functional=*/true);
    int synced = 0;
    service.setOnSynced(
        [&](const ShardKey &, const std::vector<float> &) {
            ++synced;
        });

    const auto &w = machine->workers();
    const auto &p = machine->memDevices();
    // Early arrivals: tensor1 at proxy0, tensor2 at proxy1; the
    // cross-ordered remainder lands later.
    service.push(w[0], p[0], ShardKey{0, 1, 0}, 8, {1.0f, 1.0f}, 2);
    service.push(w[1], p[1], ShardKey{0, 2, 0}, 8, {2.0f, 2.0f}, 2);
    sim.events().schedule(coarse::sim::fromSeconds(0.01), [&] {
        service.push(w[1], p[0], ShardKey{0, 2, 0}, 8, {3.0f, 3.0f},
                     2);
        service.push(w[0], p[1], ShardKey{0, 1, 0}, 8, {4.0f, 4.0f},
                     2);
    });
    sim.run();

    std::printf("%-22s %8d %10zu   %s\n",
                policy == SchedulingPolicy::Fcfs
                    ? "FCFS (strawman)"
                    : "per-client queues",
                synced, service.pendingCount(),
                service.idle() ? "completed" : "DEADLOCKED");
}

} // namespace

int
main()
{
    std::printf("Figure 10: deadlock avoidance — cross-ordered pushes "
                "of 2 tensors to 2 proxies\n\n");
    std::printf("%-22s %8s %10s   %s\n", "policy", "synced", "stuck",
                "outcome");
    runPolicy(SchedulingPolicy::Fcfs);
    runPolicy(SchedulingPolicy::Queued);
    std::printf("\npaper: FCFS wedges (proxy 0 waits on tensor 1, "
                "proxy 1 on tensor 2); COARSE's per-client queues "
                "synchronize all queues concurrently\n");
    return 0;
}
