/**
 * @file
 * Figure 14: FPGA DMA bandwidth versus access size.
 *
 * Paper result: DMA read and write reach max bandwidth at an access
 * size of 2 MB or higher.
 */

#include <cstdio>

#include "cci/prototype_model.hh"

int
main()
{
    coarse::cci::PrototypeModel model;
    const auto &dma = model.dmaCurve();

    std::printf("Figure 14: FPGA DMA bandwidth vs access size\n\n");
    std::printf("%-10s %12s %12s\n", "size", "GB/s", "frac-of-peak");
    for (std::uint64_t size = 4 << 10; size <= (64 << 20); size *= 2) {
        char label[32];
        if (size >= (1 << 20))
            std::snprintf(label, sizeof(label), "%lluMiB",
                          static_cast<unsigned long long>(size >> 20));
        else
            std::snprintf(label, sizeof(label), "%lluKiB",
                          static_cast<unsigned long long>(size >> 10));
        std::printf("%-10s %12.2f %11.0f%%\n", label,
                    dma.at(size) / 1e9,
                    100.0 * dma.at(size) / dma.peak());
    }
    std::printf("\nsaturation size (95%% of peak): %llu KiB "
                "(paper: 2 MiB)\n",
                static_cast<unsigned long long>(
                    dma.saturationSize(0.95) >> 10));
    return 0;
}
