/**
 * @file
 * Motivation (paper §II-B): the fraction of training time spent on
 * parameter communication under conventional schemes — the paper
 * cites overheads of up to 76% of total training time.
 *
 * Sweeps model x machine for the centralized baselines and reports
 * blocked-communication share.
 */

#include <cstdio>

#include "bench_util.hh"

int
main()
{
    using coarse::bench::runScheme;

    std::printf("Motivation: communication share of training time "
                "(paper (S)II-B: up to 76%%)\n\n");
    std::printf("%-12s %-11s %-8s %12s %12s\n", "model", "machine",
                "scheme", "iter (ms)", "comm share");

    struct Case
    {
        const char *model;
        std::uint32_t batch;
    };
    const Case cases[] = {{"resnet50", 64}, {"bert_base", 2}};

    for (const auto &c : cases) {
        const auto model = coarse::dl::makeModel(c.model);
        for (const char *machine :
             {"aws_t4", "sdsc_p100", "aws_v100"}) {
            for (const char *scheme : {"CPU-PS", "DENSE"}) {
                const auto r =
                    runScheme(scheme, machine, model, c.batch);
                std::printf("%-12s %-11s %-8s %12.1f %11.1f%%\n",
                            c.model, machine, scheme,
                            r.report.iterationSeconds * 1e3,
                            100.0 * r.report.blockedCommSeconds
                                / r.report.iterationSeconds);
            }
        }
    }
    std::printf("\ncommunication-bound BERT on centralized parameter "
                "servers loses most of its cycle to blocked "
                "communication, matching the paper's motivation\n");
    return 0;
}
