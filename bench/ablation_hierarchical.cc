/**
 * @file
 * Ablation: flat ring versus hierarchical allreduce across two
 * server nodes, sweeping the synchronization size.
 *
 * A flat ring is bandwidth-optimal (fewer bytes cross the NIC) but
 * pays 2(p-1) network round-trips; the three-phase hierarchical
 * schedule has ~2 network rounds but moves more data. The crossover
 * sits where latency stops dominating.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "collective/communicator.hh"
#include "collective/hierarchical.hh"
#include "fabric/machine.hh"
#include "sim/simulation.hh"

namespace {

using namespace coarse::coll;
using namespace coarse::fabric;

double
timedFlat(std::uint64_t bytes)
{
    coarse::sim::Simulation sim;
    MachineOptions mo;
    mo.nodes = 2;
    auto machine = makeAwsV100(sim, mo);
    Communicator comm(machine->topology(), machine->workers());
    comm.allReduceTimed(bytes, RingOptions{}, [] {});
    sim.run();
    return coarse::sim::toSeconds(sim.now());
}

double
timedHier(std::uint64_t bytes)
{
    coarse::sim::Simulation sim;
    MachineOptions mo;
    mo.nodes = 2;
    auto machine = makeAwsV100(sim, mo);
    std::vector<std::vector<NodeId>> groups(2);
    for (NodeId worker : machine->workers())
        groups[machine->serverNodeOf(worker)].push_back(worker);
    HierarchicalAllReduce hier(machine->topology(), groups);
    hier.allReduceTimed(bytes, HierarchicalOptions{}, [] {});
    sim.run();
    return coarse::sim::toSeconds(sim.now());
}

} // namespace

int
main()
{
    std::printf("Ablation: flat ring vs hierarchical allreduce "
                "(8 workers across 2 aws_v100 nodes)\n\n");
    std::printf("%-12s %14s %14s %10s\n", "bytes", "flat (us)",
                "hierarchical", "winner");
    for (std::uint64_t bytes = 1 << 12; bytes <= (256 << 20);
         bytes *= 8) {
        const double flat = timedFlat(bytes);
        const double hier = timedHier(bytes);
        char label[32];
        if (bytes >= (1 << 20))
            std::snprintf(label, sizeof(label), "%lluMiB",
                          static_cast<unsigned long long>(bytes >> 20));
        else
            std::snprintf(label, sizeof(label), "%lluKiB",
                          static_cast<unsigned long long>(bytes >> 10));
        std::printf("%-12s %14.1f %14.1f %10s\n", label, flat * 1e6,
                    hier * 1e6, hier < flat ? "hier" : "flat");
    }
    std::printf("\nflat rings are bandwidth-optimal; hierarchy wins "
                "only while network latency dominates — which is why "
                "the AllReduce baseline defaults to flat\n");
    return 0;
}
