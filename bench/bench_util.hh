/**
 * @file
 * Shared helpers for the figure/table reproduction benches: scheme
 * runners over fresh simulations and small table-printing utilities.
 */

#ifndef COARSE_BENCH_BENCH_UTIL_HH
#define COARSE_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <type_traits>

#include "baselines/allreduce.hh"
#include "baselines/cpu_ps.hh"
#include "baselines/dense.hh"
#include "coarse/engine.hh"
#include "dl/model_zoo.hh"
#include "dl/trainer.hh"
#include "fabric/machine.hh"
#include "sim/logging.hh"
#include "sim/parallel.hh"
#include "sim/simulation.hh"

namespace coarse::bench {

/**
 * Replica parallelism for a bench binary: `--jobs=N` (or `--jobs N`)
 * on its command line, defaulting to one job per hardware thread.
 * Benches aggregate results in job-index order, so their output is
 * identical at any value.
 */
inline unsigned
benchJobs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string value;
        if (arg.rfind("--jobs=", 0) == 0)
            value = arg.substr(7);
        else if (arg == "--jobs" && i + 1 < argc)
            value = argv[i + 1];
        else
            continue;
        const unsigned jobs =
            static_cast<unsigned>(std::strtoul(value.c_str(), nullptr,
                                               10));
        return sim::ThreadPool::resolveThreads(jobs);
    }
    return sim::ThreadPool::resolveThreads(0);
}

/** Iterations per measured run (plus 1 warmup). */
constexpr std::uint32_t kIterations = 5;

/** One fully isolated run of a communication scheme. */
struct SchemeResult
{
    dl::TrainingReport report;
    bool outOfMemory = false;
};

inline SchemeResult
runScheme(const std::string &scheme, const std::string &machineName,
          const dl::ModelSpec &model, std::uint32_t batch,
          fabric::MachineOptions machineOptions = {},
          core::CoarseOptions coarseOptions = {},
          std::uint64_t seed = 1)
{
    SchemeResult result;
    sim::Simulation simulation(seed);
    auto machine =
        fabric::makeMachine(machineName, simulation, machineOptions);
    try {
        std::unique_ptr<dl::Trainer> trainer;
        if (scheme == "DENSE") {
            trainer = std::make_unique<baselines::DenseTrainer>(
                *machine, model, batch);
        } else if (scheme == "AllReduce") {
            trainer = std::make_unique<baselines::AllReduceTrainer>(
                *machine, model, batch);
        } else if (scheme == "CPU-PS") {
            trainer = std::make_unique<baselines::CpuPsTrainer>(
                *machine, model, batch);
        } else if (scheme == "COARSE") {
            trainer = std::make_unique<core::CoarseEngine>(
                *machine, model, batch, coarseOptions);
        } else {
            sim::fatal("runScheme: unknown scheme ", scheme);
        }
        result.report = trainer->run(kIterations, 1);
    } catch (const sim::FatalError &e) {
        const std::string what = e.what();
        if (what.find("out of memory") == std::string::npos
            && what.find("needs") == std::string::npos)
            throw;
        result.outOfMemory = true;
    }
    return result;
}

/**
 * Builder for the machine-readable lines the benches emit for
 * plotting scripts: one `JSON {...}` line per datapoint, fields in
 * insertion order, doubles at fixed %.6f precision so output is
 * byte-stable across runs and parallelism levels.
 */
class JsonLine
{
  public:
    JsonLine &
    field(const char *key, const std::string &value)
    {
        addKey(key);
        body_ += '"';
        for (char c : value) {
            if (c == '"' || c == '\\')
                body_ += '\\';
            body_ += c;
        }
        body_ += '"';
        return *this;
    }

    JsonLine &
    field(const char *key, const char *value)
    {
        return field(key, std::string(value));
    }

    JsonLine &
    field(const char *key, double value)
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.6f", value);
        addKey(key);
        body_ += buf;
        return *this;
    }

    JsonLine &
    field(const char *key, bool value)
    {
        addKey(key);
        body_ += value ? "true" : "false";
        return *this;
    }

    template <class T,
              std::enable_if_t<std::is_integral_v<T>
                                   && !std::is_same_v<T, bool>,
                               int> = 0>
    JsonLine &
    field(const char *key, T value)
    {
        addKey(key);
        body_ += std::to_string(value);
        return *this;
    }

    std::string str() const { return body_ + '}'; }

    /** Emit as a "JSON {...}" stdout line. */
    void print() const { std::printf("JSON %s\n", str().c_str()); }

  private:
    void
    addKey(const char *key)
    {
        body_ += body_.size() == 1 ? "\"" : ",\"";
        body_ += key;
        body_ += "\":";
    }

    std::string body_ = "{";
};

inline void
printHeader(const char *title)
{
    std::printf("\n=== %s ===\n", title);
}

inline void
printRule()
{
    std::printf("------------------------------------------------------"
                "----------------\n");
}

} // namespace coarse::bench

#endif // COARSE_BENCH_BENCH_UTIL_HH
