/**
 * @file
 * Shared helpers for the figure/table reproduction benches: scheme
 * runners over fresh simulations and small table-printing utilities.
 */

#ifndef COARSE_BENCH_BENCH_UTIL_HH
#define COARSE_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <memory>
#include <string>

#include "baselines/allreduce.hh"
#include "baselines/cpu_ps.hh"
#include "baselines/dense.hh"
#include "coarse/engine.hh"
#include "dl/model_zoo.hh"
#include "dl/trainer.hh"
#include "fabric/machine.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace coarse::bench {

/** Iterations per measured run (plus 1 warmup). */
constexpr std::uint32_t kIterations = 5;

/** One fully isolated run of a communication scheme. */
struct SchemeResult
{
    dl::TrainingReport report;
    bool outOfMemory = false;
};

inline SchemeResult
runScheme(const std::string &scheme, const std::string &machineName,
          const dl::ModelSpec &model, std::uint32_t batch,
          fabric::MachineOptions machineOptions = {},
          core::CoarseOptions coarseOptions = {})
{
    SchemeResult result;
    sim::Simulation simulation;
    auto machine =
        fabric::makeMachine(machineName, simulation, machineOptions);
    try {
        std::unique_ptr<dl::Trainer> trainer;
        if (scheme == "DENSE") {
            trainer = std::make_unique<baselines::DenseTrainer>(
                *machine, model, batch);
        } else if (scheme == "AllReduce") {
            trainer = std::make_unique<baselines::AllReduceTrainer>(
                *machine, model, batch);
        } else if (scheme == "CPU-PS") {
            trainer = std::make_unique<baselines::CpuPsTrainer>(
                *machine, model, batch);
        } else if (scheme == "COARSE") {
            trainer = std::make_unique<core::CoarseEngine>(
                *machine, model, batch, coarseOptions);
        } else {
            sim::fatal("runScheme: unknown scheme ", scheme);
        }
        result.report = trainer->run(kIterations, 1);
    } catch (const sim::FatalError &e) {
        const std::string what = e.what();
        if (what.find("out of memory") == std::string::npos
            && what.find("needs") == std::string::npos)
            throw;
        result.outOfMemory = true;
    }
    return result;
}

inline void
printHeader(const char *title)
{
    std::printf("\n=== %s ===\n", title);
}

inline void
printRule()
{
    std::printf("------------------------------------------------------"
                "----------------\n");
}

} // namespace coarse::bench

#endif // COARSE_BENCH_BENCH_UTIL_HH
