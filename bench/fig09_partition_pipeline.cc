/**
 * @file
 * Figure 9: FIFO versus partitioned tensor synchronization.
 *
 * Paper result: partitioning tensors into equal bandwidth-saturating
 * shards fills the bidirectional push/pull pipeline, removing the
 * idle gaps of whole-tensor FIFO synchronization.
 *
 * The bench drives the real COARSE engine twice on the same
 * machine/model — once with partitioning disabled, once enabled —
 * and reports iteration time, blocked communication, and the link
 * utilization of the worker's switch attachment.
 */

#include <cstdio>

#include "bench_util.hh"

namespace {

using coarse::bench::runScheme;

coarse::dl::ModelSpec
mixedModel()
{
    // Unequal tensor mix, as in the figure: a few large tensors and
    // some small ones.
    return coarse::dl::makeSynthetic(
        "mixed",
        {24 << 20, 512, 16 << 20, 2048, 8 << 20, 1024, 12 << 20},
        20e9, 1 << 20);
}

void
runCase(bool partitioning)
{
    coarse::core::CoarseOptions options;
    options.tensorPartitioning = partitioning;
    const auto result = runScheme("COARSE", "sdsc_p100", mixedModel(),
                                  16, {}, options);
    std::printf("%-14s %10.2f ms %12.2f ms %10.1f%%\n",
                partitioning ? "partitioned" : "FIFO (whole)",
                result.report.iterationSeconds * 1e3,
                result.report.blockedCommSeconds * 1e3,
                result.report.gpuUtilization * 100.0);
}

/** Print the engine's phase timeline, the data behind the figure. */
void
printTimeline(bool partitioning)
{
    coarse::sim::Simulation sim;
    auto machine = coarse::fabric::makeSdscP100(sim);
    coarse::core::CoarseOptions options;
    options.tensorPartitioning = partitioning;
    coarse::core::CoarseEngine engine(*machine, mixedModel(), 16,
                                      options);
    engine.run(3, 1);
    const auto &t = engine.lastTimeline();
    auto ms = [&](coarse::sim::Tick tick) {
        return tick == 0
            ? -1.0
            : coarse::sim::toMilliseconds(tick - t.start);
    };
    std::printf("\n%s timeline (ms from iteration start):\n",
                partitioning ? "partitioned" : "FIFO");
    std::printf("  compute        [%8.2f .. %8.2f]\n", 0.0,
                ms(t.computeEnd));
    std::printf("  client pushes  [%8.2f .. %8.2f]\n", ms(t.firstPush),
                ms(t.lastPush));
    std::printf("  proxy syncs    [%8.2f .. %8.2f]\n",
                ms(t.firstShardSynced), ms(t.lastShardSynced));
    std::printf("  client pulls   [%8.2f .. %8.2f]\n", ms(t.firstPull),
                ms(t.lastPull));
    std::printf("  iteration end   %8.2f\n", ms(t.end));
}

} // namespace

int
main()
{
    std::printf("Figure 9: FIFO vs partitioned pipelined tensor "
                "synchronization\n(COARSE on sdsc_p100, synthetic "
                "mixed-size model, batch 16)\n\n");
    std::printf("%-14s %13s %15s %11s\n", "schedule", "iter",
                "blocked-comm", "gpu-util");
    runCase(false);
    runCase(true);
    printTimeline(false);
    printTimeline(true);
    std::printf("\npaper: partitioning fills both serial-bus "
                "directions; proxy sync starts at the first shard\n");
    return 0;
}
