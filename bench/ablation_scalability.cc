/**
 * @file
 * Scalability study (paper §III-D): as workers are added, the DENSE
 * design is bounded by one memory device's serial-bus attachment
 * while COARSE's disaggregated proxies scale with the fleet.
 *
 * Machines are built programmatically: N switch pairs, each hosting
 * one worker GPU and one CCI memory device, all CCI devices on a
 * dedicated ring.
 */

#include <array>
#include <cstdio>
#include <memory>
#include <string>

#include "baselines/allreduce.hh"
#include "baselines/dense.hh"
#include "bench_util.hh"
#include "coarse/engine.hh"
#include "dl/model_zoo.hh"
#include "fabric/machine.hh"
#include "sim/parallel.hh"
#include "sim/simulation.hh"

namespace {

using namespace coarse::fabric;

/** A symmetric machine with @p workers worker/memdev switch pairs. */
std::unique_ptr<Machine>
makeScaledMachine(coarse::sim::Simulation &sim, std::uint32_t workers)
{
    auto machine = std::make_unique<Machine>(
        sim, "scaled_" + std::to_string(workers), "V100", true);
    Topology &topo = machine->topology();

    const NodeId cpu = topo.addNode(NodeKind::HostCpu, "cpu");
    machine->addHostCpu(cpu, 0);

    LinkParams bus;
    bus.bandwidth =
        BandwidthCurve::ramp(gbps(13.0), 4 << 10, 2 << 20, 0.12);
    bus.latency = coarse::sim::fromNanoseconds(600);
    LinkParams uplink = bus;
    uplink.bandwidth = bus.bandwidth.scaled(2.0);
    LinkParams cci;
    cci.kind = LinkKind::Cci;
    cci.bandwidth =
        BandwidthCurve::ramp(gbps(12.0), 4 << 10, 2 << 20, 0.12);
    cci.latency = coarse::sim::fromNanoseconds(400);

    std::vector<NodeId> memDevs;
    for (std::uint32_t w = 0; w < workers; ++w) {
        const NodeId sw = topo.addNode(NodeKind::PcieSwitch,
                                       "sw" + std::to_string(w));
        topo.addLink(cpu, sw, uplink);
        const NodeId gpu = topo.addNode(NodeKind::Gpu,
                                        "gpu" + std::to_string(w));
        topo.addLink(gpu, sw, bus);
        machine->addWorker(gpu, 0);
        const NodeId dev = topo.addNode(NodeKind::MemoryDevice,
                                        "mem" + std::to_string(w));
        topo.addLink(dev, sw, bus);
        machine->addMemDevice(dev, 0);
        machine->pair(gpu, dev);
        memDevs.push_back(dev);
    }
    for (std::size_t m = 0; m + 1 < memDevs.size(); ++m)
        topo.addLink(memDevs[m], memDevs[m + 1], cci);
    if (memDevs.size() > 2)
        topo.addLink(memDevs.back(), memDevs.front(), cci);
    return machine;
}

double
iterMs(const char *scheme, std::uint32_t workers)
{
    coarse::sim::Simulation sim;
    auto machine = makeScaledMachine(sim, workers);
    const auto model = coarse::dl::makeBertBase();
    std::unique_ptr<coarse::dl::Trainer> trainer;
    if (std::string(scheme) == "DENSE") {
        trainer = std::make_unique<coarse::baselines::DenseTrainer>(
            *machine, model, 2);
    } else if (std::string(scheme) == "AllReduce") {
        trainer =
            std::make_unique<coarse::baselines::AllReduceTrainer>(
                *machine, model, 2);
    } else {
        trainer = std::make_unique<coarse::core::CoarseEngine>(
            *machine, model, 2);
    }
    return trainer->run(4, 1).iterationSeconds * 1e3;
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("Scalability: iteration time (ms) vs worker count "
                "(bert_base, batch 2, symmetric V100 fabric)\n\n");
    std::printf("%-10s %10s %12s %10s\n", "workers", "DENSE",
                "AllReduce", "COARSE");
    // Every (scheme, workers) cell is an independent replica; fan the
    // whole grid across cores and print it back in grid order.
    constexpr std::array<std::uint32_t, 4> kWorkers{2u, 4u, 8u, 12u};
    constexpr std::array<const char *, 3> kSchemes{"DENSE",
                                                   "AllReduce",
                                                   "COARSE"};
    coarse::sim::SweepRunner runner(
        coarse::bench::benchJobs(argc, argv));
    const auto cells = runner.map<double>(
        kWorkers.size() * kSchemes.size(), [&](std::size_t i) {
            return iterMs(kSchemes[i % kSchemes.size()],
                          kWorkers[i / kSchemes.size()]);
        });
    for (std::size_t w = 0; w < kWorkers.size(); ++w) {
        std::printf("%-10u %10.1f %12.1f %10.1f\n", kWorkers[w],
                    cells[w * kSchemes.size()],
                    cells[w * kSchemes.size() + 1],
                    cells[w * kSchemes.size() + 2]);
    }
    std::printf("\npaper (S)III-D: the centralized design's iteration "
                "time grows with every added worker (one bus serves "
                "all of them); COARSE stays nearly flat\n");
    return 0;
}
