/**
 * @file
 * Ablation: tensor partitioning with a sweep of shard sizes.
 *
 * The profiler picks the smallest bandwidth-saturating shard S'
 * (2 MiB on these fabrics); this sweep shows why — too small wastes
 * per-transfer efficiency, too large empties the pipeline.
 */

#include <cstdio>

#include "bench_util.hh"

int
main()
{
    using coarse::bench::runScheme;

    const auto model = coarse::dl::makeBertBase();
    std::printf("Ablation: tensor partition shard size (bert_base, "
                "sdsc_p100, batch 2)\n\n");
    std::printf("%-16s %12s %15s\n", "shard size", "iter (ms)",
                "blocked (ms)");

    {
        coarse::core::CoarseOptions options;
        options.tensorPartitioning = false;
        const auto r =
            runScheme("COARSE", "sdsc_p100", model, 2, {}, options);
        std::printf("%-16s %12.2f %15.2f\n", "off (whole)",
                    r.report.iterationSeconds * 1e3,
                    r.report.blockedCommSeconds * 1e3);
    }
    for (std::uint64_t kib : {64u, 256u, 1024u, 2048u, 8192u, 32768u}) {
        coarse::core::CoarseOptions options;
        options.shardBytesOverride = kib << 10;
        const auto r =
            runScheme("COARSE", "sdsc_p100", model, 2, {}, options);
        std::printf("%-13lluKiB %12.2f %15.2f\n",
                    static_cast<unsigned long long>(kib),
                    r.report.iterationSeconds * 1e3,
                    r.report.blockedCommSeconds * 1e3);
    }
    std::printf("\nprofiler's choice: 2048 KiB (the DMA saturation "
                "point, Fig. 14)\n");
    return 0;
}
