/**
 * @file
 * Ablation: blocking AllReduce vs Horovod-style overlapped AllReduce
 * vs COARSE. The overlapped baseline is stronger than the paper's
 * blocking model; this bench shows where COARSE's remaining margin
 * comes from (offload + routing + the memory-capacity headroom).
 */

#include <cstdio>
#include <memory>

#include "baselines/allreduce.hh"
#include "baselines/allreduce_overlap.hh"
#include "bench_util.hh"

namespace {

void
runMachine(const char *machineName, const coarse::dl::ModelSpec &model,
           std::uint32_t batch)
{
    std::printf("\n%s (%s, batch %u):\n", machineName,
                model.name.c_str(), batch);
    std::printf("%-16s %12s %15s %10s\n", "scheme", "iter (ms)",
                "blocked (ms)", "util");

    {
        coarse::sim::Simulation sim;
        auto machine = coarse::fabric::makeMachine(machineName, sim);
        coarse::baselines::AllReduceTrainer trainer(*machine, model,
                                                    batch);
        const auto r = trainer.run(5, 1);
        std::printf("%-16s %12.2f %15.2f %9.1f%%\n", "AllReduce",
                    r.iterationSeconds * 1e3,
                    r.blockedCommSeconds * 1e3,
                    r.gpuUtilization * 100.0);
    }
    {
        coarse::sim::Simulation sim;
        auto machine = coarse::fabric::makeMachine(machineName, sim);
        coarse::baselines::OverlapAllReduceTrainer trainer(*machine,
                                                           model,
                                                           batch);
        const auto r = trainer.run(5, 1);
        std::printf("%-16s %12.2f %15.2f %9.1f%%\n", "AllReduce-OL",
                    r.iterationSeconds * 1e3,
                    r.blockedCommSeconds * 1e3,
                    r.gpuUtilization * 100.0);
    }
    {
        const auto r = coarse::bench::runScheme("COARSE", machineName,
                                                model, batch);
        std::printf("%-16s %12.2f %15.2f %9.1f%%\n", "COARSE",
                    r.report.iterationSeconds * 1e3,
                    r.report.blockedCommSeconds * 1e3,
                    r.report.gpuUtilization * 100.0);
    }
}

} // namespace

int
main()
{
    std::printf("Ablation: blocking vs overlapped AllReduce vs "
                "COARSE\n");
    runMachine("aws_v100", coarse::dl::makeBertBase(), 2);
    runMachine("sdsc_p100", coarse::dl::makeBertBase(), 2);
    runMachine("aws_v100", coarse::dl::makeResNet50(), 64);
    std::printf("\neven against an overlapped baseline, COARSE keeps "
                "the memory-capacity headroom (Fig. 16e) and the "
                "non-uniform-bandwidth routing advantage\n");
    return 0;
}
