/**
 * @file
 * Ablation: the GPU partition table (paper §IV-B) — how many of the
 * 8 physical GPUs to spend on emulated CCI memory devices versus
 * workers. More workers means more compute but fewer proxies to
 * absorb synchronization; the paper's 1:1 and 2:1 configurations are
 * two points on this curve.
 */

#include <cstdio>
#include <vector>

#include "coarse/engine.hh"
#include "dl/model_zoo.hh"
#include "fabric/machine.hh"
#include "sim/simulation.hh"

namespace {

using coarse::fabric::GpuRole;

std::vector<GpuRole>
mix(std::uint32_t workers)
{
    // Spread the memory devices across the switch pairs.
    std::vector<GpuRole> roles(8, GpuRole::Worker);
    const std::uint32_t devices = 8 - workers;
    for (std::uint32_t d = 0; d < devices; ++d)
        roles[(d * 8) / devices + 1 < 8 ? (d * 8 / devices) + 1
                                        : 7] = GpuRole::MemoryDevice;
    // Ensure the exact count survived collisions.
    std::uint32_t have = 0;
    for (auto &r : roles)
        have += r == GpuRole::MemoryDevice ? 1 : 0;
    for (std::size_t g = 8; have < devices && g-- > 0;) {
        if (roles[g] == GpuRole::Worker) {
            roles[g] = GpuRole::MemoryDevice;
            ++have;
        }
    }
    return roles;
}

} // namespace

int
main()
{
    const auto model = coarse::dl::makeBertBase();
    std::printf("Ablation: GPU partition table on an 8-GPU V100 "
                "instance (bert_base, batch 2)\n\n");
    std::printf("%-18s %10s %12s %15s %14s\n", "partition",
                "workers", "iter (ms)", "blocked (ms)",
                "samples/s tot");

    for (std::uint32_t workers : {4u, 5u, 6u, 7u}) {
        coarse::sim::Simulation sim;
        auto machine =
            coarse::fabric::makeAwsV100Partitioned(sim, mix(workers));
        coarse::core::CoarseEngine engine(*machine, model, 2);
        const auto r = engine.run(4, 1);
        char label[32];
        std::snprintf(label, sizeof(label), "%u:%u", workers,
                      8 - workers);
        std::printf("%-18s %10u %12.2f %15.2f %14.1f\n", label,
                    r.workers, r.iterationSeconds * 1e3,
                    r.blockedCommSeconds * 1e3,
                    r.throughputSamplesPerSec);
    }
    std::printf("\nmore workers add compute but starve the proxy "
                "fleet; the sweet spot depends on how "
                "communication-bound the model is\n");
    return 0;
}
