/**
 * @file
 * coarsesim: the command-line driver. Parses flags, runs the
 * requested scheme(s) on the requested machine/model, prints a
 * comparison table.
 *
 *   coarsesim --machine aws_v100 --model bert_large --batch 4
 *   coarsesim --scheme COARSE --no-routing --stats
 */

#include <iostream>
#include <vector>

#include "app/options.hh"
#include "app/runner.hh"
#include "sim/logging.hh"

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    try {
        const auto options = coarse::app::parseOptions(args);
        return coarse::app::runCli(options, std::cout);
    } catch (const coarse::sim::FatalError &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
