#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite
# in the default configuration, then again under AddressSanitizer and
# UndefinedBehaviorSanitizer (COARSE_SANITIZE=address|undefined).
#
# Usage: tools/check.sh [--fast]
#   --fast  skip the sanitizer passes (default build + ctest only)
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc)
fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

run_suite() {
    local dir=$1
    shift
    echo "== ${dir}: configure ($*)"
    cmake -B "${dir}" -S . "$@"
    echo "== ${dir}: build"
    cmake --build "${dir}" -j "${jobs}"
    echo "== ${dir}: ctest"
    ctest --test-dir "${dir}" --output-on-failure -j "${jobs}" \
        --timeout 120
}

run_suite build

# Chaos fault-seed sweep: the seeded storm tests honour
# COARSE_CHAOS_SEED, so a handful of extra seeds exercises recovery
# orderings a single default seed would never hit. --timeout turns a
# recovery hang into a fast failure instead of a wedged pipeline.
echo "== build: chaos fault-seed sweep"
for seed in 3 5 7 11 13; do
    echo "== build: ctest -L chaos (COARSE_CHAOS_SEED=${seed})"
    COARSE_CHAOS_SEED="${seed}" ctest --test-dir build -L chaos \
        --output-on-failure -j "${jobs}" --timeout 120
done

if [[ "${fast}" == 0 ]]; then
    run_suite build-asan -DCOARSE_SANITIZE=address
    # The chaos storm tests allocate and roll back aggressively; run
    # them again explicitly under ASan so leaks in the recovery path
    # cannot hide behind a passing default build.
    echo "== build-asan: ctest -L chaos"
    ctest --test-dir build-asan -L chaos --output-on-failure \
        -j "${jobs}" --timeout 120
    run_suite build-ubsan -DCOARSE_SANITIZE=undefined
fi
echo "All checks passed."
