#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite
# in the default configuration, then again under AddressSanitizer and
# UndefinedBehaviorSanitizer (COARSE_SANITIZE=address|undefined).
#
# Usage: tools/check.sh [--fast] [--coverage]
#   --fast      skip the sanitizer passes (default build + ctest only)
#   --coverage  additionally build with COARSE_COVERAGE=ON, run the
#               suite, and print a per-subsystem line-coverage summary
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc)
fast=0
coverage=0
for arg in "$@"; do
    case "${arg}" in
      --fast) fast=1 ;;
      --coverage) coverage=1 ;;
      *) echo "unknown option: ${arg}" >&2; exit 2 ;;
    esac
done

run_suite() {
    local dir=$1
    shift
    echo "== ${dir}: configure ($*)"
    cmake -B "${dir}" -S . "$@"
    echo "== ${dir}: build"
    cmake --build "${dir}" -j "${jobs}"
    echo "== ${dir}: ctest"
    ctest --test-dir "${dir}" --output-on-failure -j "${jobs}" \
        --timeout 120
}

run_suite build

# Chaos fault-seed sweep: the seeded storm tests honour
# COARSE_CHAOS_SEED, so a handful of extra seeds exercises recovery
# orderings a single default seed would never hit. --timeout turns a
# recovery hang into a fast failure instead of a wedged pipeline.
# The seeds are independent replicas, so they fan out as background
# jobs (each writing its own log, printed back in seed order).
echo "== build: chaos fault-seed sweep (parallel)"
chaos_seeds=(3 5 7 11 13)
chaos_logdir=$(mktemp -d)
trap 'rm -rf "${chaos_logdir}"' EXIT
declare -A chaos_pids=()
for seed in "${chaos_seeds[@]}"; do
    COARSE_CHAOS_SEED="${seed}" ctest --test-dir build -L chaos \
        --output-on-failure --timeout 120 \
        > "${chaos_logdir}/seed-${seed}.log" 2>&1 &
    chaos_pids["${seed}"]=$!
done
chaos_failed=0
for seed in "${chaos_seeds[@]}"; do
    status=0
    wait "${chaos_pids[${seed}]}" || status=$?
    echo "== build: ctest -L chaos (COARSE_CHAOS_SEED=${seed})"
    cat "${chaos_logdir}/seed-${seed}.log"
    if [[ "${status}" != 0 ]]; then
        echo "== chaos seed ${seed} FAILED (exit ${status})" >&2
        chaos_failed=1
    fi
done
[[ "${chaos_failed}" == 0 ]] || exit 1

if [[ "${fast}" == 0 ]]; then
    run_suite build-asan -DCOARSE_SANITIZE=address
    # The chaos storm tests allocate and roll back aggressively; run
    # them again explicitly under ASan so leaks in the recovery path
    # cannot hide behind a passing default build.
    echo "== build-asan: ctest -L chaos"
    ctest --test-dir build-asan -L chaos --output-on-failure \
        -j "${jobs}" --timeout 120
    # The golden-trace suite captures full engine runs into the trace
    # ring; run it under ASan so a stale track handle or an
    # out-of-bounds ring write cannot hide behind the default build.
    echo "== build-asan: ctest -L trace"
    ctest --test-dir build-asan -L trace --output-on-failure \
        -j "${jobs}" --timeout 120
    run_suite build-ubsan -DCOARSE_SANITIZE=undefined
    # ThreadSanitizer lane for the parallel experiment harness: the
    # pool/sweep tests are the only ones that spawn threads, so TSan
    # runs just that label (the full suite is single-threaded and
    # already covered by the lanes above). A longer --timeout absorbs
    # TSan's ~10x slowdown on the sweep determinism tests.
    echo "== build-tsan: configure (-DCOARSE_SANITIZE=thread)"
    cmake -B build-tsan -S . -DCOARSE_SANITIZE=thread
    echo "== build-tsan: build test_parallel"
    cmake --build build-tsan -j "${jobs}" --target test_parallel
    echo "== build-tsan: ctest -L parallel"
    ctest --test-dir build-tsan -L parallel --output-on-failure \
        -j "${jobs}" --timeout 300
fi

if [[ "${coverage}" == 1 ]]; then
    run_suite build-cov -DCOARSE_COVERAGE=ON
    echo "== build-cov: line coverage by subsystem"
    # Aggregate raw gcov output (no gcovr in the image): run gcov over
    # every .gcda in the src/ object tree (-p keeps full path names so
    # same-named files in different subsystems cannot collide), then
    # sum executed/instrumented lines per top-level src/ directory.
    (
        cd build-cov
        rm -f -- *.gcov
        find src -name '*.gcda' -print0 \
            | xargs -0 -r gcov -p > /dev/null 2>&1 || true
        for gcov_file in *.gcov; do
            [[ -e "${gcov_file}" ]] || break
            src_path=$(head -1 "${gcov_file}" | sed 's/.*Source://')
            case "${src_path}" in
              */src/*) ;;
              *) continue ;;
            esac
            subsystem=${src_path##*/src/}
            subsystem=${subsystem%%/*}
            awk -v subsys="${subsystem}" -F: '
                {
                    count = $1; gsub(/[ \t]/, "", count)
                    if ($2 + 0 == 0 || count == "-")
                        next
                    total++
                    if (count !~ /^#+$|^=+$/)
                        hit++
                }
                END { printf "%s %d %d\n", subsys, hit, total }
            ' "${gcov_file}"
        done | awk '
            { hit[$1] += $2; total[$1] += $3 }
            END {
                for (s in total) {
                    if (total[s] > 0) {
                        printf "  %-12s %6.1f%%  (%d/%d lines)\n",
                            s, 100.0 * hit[s] / total[s], hit[s],
                            total[s]
                    }
                }
            }' | sort
        rm -f -- *.gcov
    )
fi
echo "All checks passed."
