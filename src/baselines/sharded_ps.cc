#include "sharded_ps.hh"

#include <memory>

#include "sim/logging.hh"

namespace coarse::baselines {

ShardedPsTrainer::ShardedPsTrainer(fabric::Machine &machine,
                                   dl::ModelSpec model,
                                   std::uint32_t batchSize,
                                   ShardedPsOptions options)
    : PhasedTrainer(machine, std::move(model), batchSize),
      options_(options)
{
    const auto &devices = machine.memDevices();
    if (devices.empty())
        sim::fatal("ShardedPsTrainer: machine has no memory devices");

    space_ = std::make_unique<cci::AddressSpace>();
    const std::uint64_t total = this->model().parameterBytes();
    const std::uint64_t per =
        (total + devices.size() - 1) / devices.size();
    for (std::size_t d = 0; d < devices.size(); ++d) {
        servers_.push_back(std::make_unique<memdev::MemoryDevice>(
            devices[d], options_.deviceParams));
        space_->addDevice(devices[d], options_.deviceParams.dramBytes);
        const std::uint64_t bytes =
            std::min<std::uint64_t>(per, total - d * per);
        if (bytes == 0)
            break;
        shards_.push_back(space_->allocate(
            devices[d], bytes,
            this->model().name + ".shard" + std::to_string(d)));
    }
    directory_ = std::make_unique<cci::Directory>(machine.topology(),
                                                  *space_);
    prototype_ =
        std::make_unique<cci::PrototypeModel>(options_.prototype);
    port_ = std::make_unique<cci::CciPort>(machine.topology(),
                                           *directory_, *space_,
                                           *prototype_);
}

std::uint64_t
ShardedPsTrainer::shardBytes(std::size_t i) const
{
    return space_->region(shards_.at(i)).bytes;
}

void
ShardedPsTrainer::synchronize(std::uint32_t iter,
                              std::function<void()> done)
{
    (void)iter;
    const auto &workers = machine().workers();
    auto &sim = machine().topology().sim();

    cci::AccessOptions access;
    access.path = options_.gpuDirect ? cci::AccessPath::GpuDirect
                                     : cci::AccessPath::Cci;
    access.coherent = true;

    auto doneShared =
        std::make_shared<std::function<void()>>(std::move(done));

    // Phase 3: every worker pulls every shard.
    auto pulls = std::make_shared<std::size_t>(workers.size()
                                               * shards_.size());
    auto pullAll = [this, &workers, access, pulls, doneShared] {
        for (fabric::NodeId worker : workers) {
            for (std::size_t s = 0; s < shards_.size(); ++s) {
                port_->read(worker, shards_[s], 0, shardBytes(s),
                            access, [pulls, doneShared] {
                                if (--*pulls == 0)
                                    (*doneShared)();
                            });
            }
        }
    };

    // Phase 2: each shard's home applies the update.
    auto applies = std::make_shared<std::size_t>(shards_.size());
    auto applyAll = [this, &sim, pullAll, applies] {
        for (std::size_t s = 0; s < shards_.size(); ++s) {
            const double sec = static_cast<double>(shardBytes(s))
                / servers_[s]->armReduceBytesPerSec();
            sim.events().postIn(sim::fromSeconds(sec),
                                [applies, pullAll] {
                                    if (--*applies == 0)
                                        pullAll();
                                });
        }
    };

    // Phase 1: every worker pushes every shard's slice.
    auto pushes = std::make_shared<std::size_t>(workers.size()
                                                * shards_.size());
    for (fabric::NodeId worker : workers) {
        for (std::size_t s = 0; s < shards_.size(); ++s) {
            port_->write(worker, shards_[s], 0, shardBytes(s), access,
                         [pushes, applyAll] {
                             if (--*pushes == 0)
                                 applyAll();
                         });
        }
    }
}

} // namespace coarse::baselines
