/**
 * @file
 * Sharded parameter server over the CCI memory pool: the halfway
 * design between DENSE and COARSE.
 *
 * Parameters are partitioned across all memory devices (a
 * distributed key-value store, as in classic parameter servers), so
 * no single device's serial-bus attachment carries all the traffic —
 * but there are no proxies and no collective synchronization: every
 * worker still pushes its full gradient set to, and pulls fresh
 * parameters from, every shard's home device. Useful for isolating
 * how much of COARSE's win comes from decentralizing *storage*
 * versus decentralizing *synchronization*.
 */

#ifndef COARSE_BASELINES_SHARDED_PS_HH
#define COARSE_BASELINES_SHARDED_PS_HH

#include <memory>
#include <vector>

#include "cci/address_space.hh"
#include "cci/directory.hh"
#include "cci/port.hh"
#include "cci/prototype_model.hh"
#include "memdev/memory_device.hh"
#include "phased_trainer.hh"

namespace coarse::baselines {

/** Tuning for the sharded parameter server. */
struct ShardedPsOptions
{
    memdev::MemoryDeviceParams deviceParams = {};
    cci::PrototypeParams prototype = {};
    /** Use GPU-direct DMA instead of the CCI load/store path. */
    bool gpuDirect = true;
};

class ShardedPsTrainer : public PhasedTrainer
{
  public:
    ShardedPsTrainer(fabric::Machine &machine, dl::ModelSpec model,
                     std::uint32_t batchSize,
                     ShardedPsOptions options = {});

    std::string name() const override { return "Sharded-PS"; }

    std::size_t shardCount() const { return shards_.size(); }
    std::uint64_t shardBytes(std::size_t i) const;

  protected:
    void synchronize(std::uint32_t iter,
                     std::function<void()> done) override;

  private:
    ShardedPsOptions options_;
    std::vector<std::unique_ptr<memdev::MemoryDevice>> servers_;
    std::unique_ptr<cci::AddressSpace> space_;
    std::unique_ptr<cci::Directory> directory_;
    std::unique_ptr<cci::PrototypeModel> prototype_;
    std::unique_ptr<cci::CciPort> port_;
    std::vector<cci::RegionId> shards_;
};

} // namespace coarse::baselines

#endif // COARSE_BASELINES_SHARDED_PS_HH
