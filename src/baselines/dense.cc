#include "dense.hh"

#include <memory>

#include "sim/logging.hh"

namespace coarse::baselines {

DenseTrainer::DenseTrainer(fabric::Machine &machine, dl::ModelSpec model,
                           std::uint32_t batchSize, DenseOptions options)
    : PhasedTrainer(machine, std::move(model), batchSize),
      options_(options)
{
    const auto &devices = machine.memDevices();
    if (options_.serverDevice >= devices.size())
        sim::fatal("DenseTrainer: no memory device ",
                   options_.serverDevice);
    const fabric::NodeId node = devices[options_.serverDevice];

    server_ = std::make_unique<memdev::MemoryDevice>(
        node, options_.deviceParams);
    space_ = std::make_unique<cci::AddressSpace>();
    space_->addDevice(node, options_.deviceParams.dramBytes);
    params_ = space_->allocate(node, this->model().parameterBytes(),
                               this->model().name + ".params");
    directory_ = std::make_unique<cci::Directory>(machine.topology(),
                                                  *space_);
    prototype_ =
        std::make_unique<cci::PrototypeModel>(options_.prototype);
    port_ = std::make_unique<cci::CciPort>(machine.topology(),
                                           *directory_, *space_,
                                           *prototype_);
    for (fabric::NodeId worker : machine.workers()) {
        caches_.push_back(std::make_unique<cci::CoherentCache>(
            worker, *directory_, *port_));
    }
}

void
DenseTrainer::synchronize(std::uint32_t iter, std::function<void()> done)
{
    (void)iter;
    const std::uint64_t bytes = model().parameterBytes();
    const auto &workers = machine().workers();
    auto &sim = machine().topology().sim();

    // Phase 1: every worker pushes its gradients coherently over the
    // CCI path; phase 2: the on-device ARM core applies the update;
    // phase 3: every worker pulls the fresh parameters back.
    auto doneShared =
        std::make_shared<std::function<void()>>(std::move(done));
    auto pulls = std::make_shared<std::size_t>(workers.size());
    auto pullAll = [this, bytes, &workers, pulls, doneShared] {
        for (std::size_t w = 0; w < workers.size(); ++w) {
            cci::AccessOptions read;
            read.path = cci::AccessPath::Cci;
            read.coherent = true;
            // Each worker pulls through its coherent parameter cache
            // (Fig. 5): granules the PS update invalidated refetch.
            caches_[w]->read(params_, 0, bytes, read,
                             [pulls, doneShared] {
                                 if (--*pulls == 0)
                                     (*doneShared)();
                             });
        }
    };

    auto pushes = std::make_shared<std::size_t>(workers.size());
    auto afterPushes = [this, bytes, &sim, pullAll] {
        // Gradient apply on the weak on-device processor; the update
        // write invalidates every worker's cached copy.
        const double sec = static_cast<double>(bytes)
            / server_->armReduceBytesPerSec();
        sim.events().postIn(sim::fromSeconds(sec), [this, bytes,
                                                    pullAll] {
            directory_->acquireWrite(server_->node(), params_, 0,
                                     bytes, pullAll);
        });
    };

    for (fabric::NodeId worker : workers) {
        cci::AccessOptions write;
        write.path = cci::AccessPath::Cci;
        write.coherent = true;
        port_->write(worker, params_, 0, bytes, write,
                     [pushes, afterPushes] {
                         if (--*pushes == 0)
                             afterPushes();
                     });
    }
}

} // namespace coarse::baselines
