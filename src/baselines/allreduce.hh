/**
 * @file
 * NCCL-style decentralized ring AllReduce baseline (paper §II-B).
 *
 * After each backward pass the workers ring-allreduce all gradients;
 * the GPUs are blocked for the duration (the synchronization runs on
 * their stream processors). Rings traverse NVLink where available,
 * but a ring is always gated by its slowest device-to-device hop.
 */

#ifndef COARSE_BASELINES_ALLREDUCE_HH
#define COARSE_BASELINES_ALLREDUCE_HH

#include <memory>

#include "collective/communicator.hh"
#include "collective/hierarchical.hh"
#include "phased_trainer.hh"

namespace coarse::baselines {

/**
 * Multi-node schedule selection. A flat ring is bandwidth-optimal
 * (it crosses the network fewer bytes than the three-phase schedule)
 * and is what NCCL rings do, so Auto resolves to Flat; the
 * hierarchical schedule wins only for latency-bound (small)
 * synchronizations — see bench/ablation_hierarchical.
 */
enum class AllReduceTopology
{
    Auto,         //!< Flat (the bandwidth-optimal default).
    Flat,         //!< One ring across every worker.
    Hierarchical, //!< Intra-node reduce, leader ring, broadcast.
};

/** Tuning for the AllReduce baseline. */
struct AllReduceOptions
{
    /** Parallel rings (NCCL channels); alternating directions. */
    std::size_t rings = 2;
    /** Allow the rings to use NVLink. */
    bool useNvlink = true;
    /** Flat vs hierarchical multi-node schedule. */
    AllReduceTopology topology = AllReduceTopology::Auto;
    /** Search for a bandwidth-optimal ring order (NCCL-style). */
    bool optimizeRingOrder = false;
};

class AllReduceTrainer : public PhasedTrainer
{
  public:
    AllReduceTrainer(fabric::Machine &machine, dl::ModelSpec model,
                     std::uint32_t batchSize,
                     AllReduceOptions options = {});

    std::string name() const override { return "AllReduce"; }

    coll::Communicator &communicator() { return *comm_; }

    /** True when the hierarchical multi-node schedule is active. */
    bool hierarchical() const { return hier_ != nullptr; }

  protected:
    void synchronize(std::uint32_t iter,
                     std::function<void()> done) override;

  private:
    AllReduceOptions options_;
    std::unique_ptr<coll::Communicator> comm_;
    std::unique_ptr<coll::HierarchicalAllReduce> hier_;
};

} // namespace coarse::baselines

#endif // COARSE_BASELINES_ALLREDUCE_HH
