#include "allreduce_overlap.hh"

#include <algorithm>
#include <memory>

#include "sim/logging.hh"

namespace coarse::baselines {

OverlapAllReduceTrainer::OverlapAllReduceTrainer(
    fabric::Machine &machine, dl::ModelSpec model,
    std::uint32_t batchSize, OverlapAllReduceOptions options)
    : machine_(machine), model_(std::move(model)), batch_(batchSize),
      options_(options), gpu_(dl::gpuSpec(machine.gpuModel())),
      iteration_(model_, gpu_, batchSize)
{
    if (options_.bucketBytes == 0)
        sim::fatal("OverlapAllReduceTrainer: zero bucket size");
    comm_ = std::make_unique<coll::Communicator>(machine.topology(),
                                                 machine.workers());

    // Fuse tensors into buckets in gradient-production order (output
    // side first). A bucket launches when its most input-side tensor
    // — the last to be produced — is ready.
    Bucket current;
    for (std::size_t t = model_.tensors.size(); t-- > 0;) {
        current.bytes += model_.tensors[t].bytes();
        current.readySeconds = iteration_.gradReadySeconds(t);
        if (current.bytes >= options_.bucketBytes) {
            buckets_.push_back(current);
            current = Bucket{};
        }
    }
    if (current.bytes > 0)
        buckets_.push_back(current);
}

void
OverlapAllReduceTrainer::startIteration(std::uint32_t iter)
{
    auto &sim = machine_.topology().sim();
    const sim::Tick start = sim.now();

    // Overlapping NCCL kernels steal compute; the backward pass
    // stretches by the configured slowdown.
    const double stretchedBwd = iteration_.backwardSeconds()
        * (1.0 + options_.computeSlowdown);
    const sim::Tick computeEnd = start
        + sim::fromSeconds(iteration_.forwardSeconds() + stretchedBwd);
    const sim::Tick fwdDone =
        start + sim::fromSeconds(iteration_.forwardSeconds());

    coll::RingOptions ring;
    ring.mask = options_.useNvlink ? fabric::kAllLinks
                                   : fabric::kNoNvLink;
    ring.rings = options_.rings;
    ring.reduceBytesPerSec = gpu_.reduceBytesPerSec();

    auto state = std::make_shared<std::pair<std::size_t, bool>>(
        buckets_.size(), false); // {buckets left, compute done}
    auto tryFinish = [this, iter, start, computeEnd, state] {
        if (state->first == 0 && state->second)
            finishIteration(iter, start, computeEnd);
    };

    for (const Bucket &bucket : buckets_) {
        const sim::Tick launch = fwdDone
            + sim::fromSeconds(bucket.readySeconds
                               * (1.0 + options_.computeSlowdown));
        sim.events().post(
            launch, [this, bytes = bucket.bytes, ring, state,
                     tryFinish] {
                comm_->allReduceTimed(bytes, ring,
                                      [state, tryFinish] {
                                          --state->first;
                                          tryFinish();
                                      });
            });
    }
    sim.events().post(computeEnd, [state, tryFinish] {
        state->second = true;
        tryFinish();
    });
}

void
OverlapAllReduceTrainer::finishIteration(std::uint32_t iter,
                                         sim::Tick start,
                                         sim::Tick computeEnd)
{
    auto &sim = machine_.topology().sim();
    (void)computeEnd;
    if (iter >= warmup_) {
        const double iterSeconds =
            sim::toSeconds(sim.now() - start);
        measuredSeconds_ += iterSeconds;
        // Blocked = anything beyond the pure compute time (stretch
        // plus tail).
        measuredBlocked_ += iterSeconds
            - (iteration_.forwardSeconds()
               + iteration_.backwardSeconds());
        ++measuredIters_;
    }
    if (iter + 1 < totalIterations_)
        startIteration(iter + 1);
}

dl::TrainingReport
OverlapAllReduceTrainer::run(std::uint32_t iterations,
                             std::uint32_t warmup)
{
    if (iterations == 0)
        sim::fatal("OverlapAllReduceTrainer: need >= 1 iteration");
    const auto needed = dl::gpuMemoryNeeded(model_, batch_,
                                            dl::residentStateModel());
    if (needed > gpu_.memBytes) {
        sim::fatal(name(), ": model ", model_.name, " at batch ",
                   batch_, " needs ", needed, " bytes on a ",
                   gpu_.memBytes, "-byte ", gpu_.name,
                   " GPU (out of memory)");
    }

    warmup_ = warmup;
    totalIterations_ = iterations + warmup;
    measuredSeconds_ = 0.0;
    measuredBlocked_ = 0.0;
    measuredIters_ = 0;

    auto &sim = machine_.topology().sim();
    startIteration(0);
    sim.run();

    if (measuredIters_ == 0)
        sim::fatal(name(), ": no measured iterations completed");

    dl::TrainingReport report;
    report.scheme = name();
    report.model = model_.name;
    report.machine = machine_.name();
    report.workers =
        static_cast<std::uint32_t>(machine_.workers().size());
    report.batchSize = batch_;
    report.iterations = measuredIters_;
    report.computeSeconds =
        iteration_.forwardSeconds() + iteration_.backwardSeconds();
    report.iterationSeconds = measuredSeconds_ / measuredIters_;
    report.blockedCommSeconds = measuredBlocked_ / measuredIters_;
    report.gpuUtilization =
        report.computeSeconds / report.iterationSeconds;
    report.throughputSamplesPerSec = static_cast<double>(batch_)
        * report.workers / report.iterationSeconds;
    return report;
}

} // namespace coarse::baselines
