#include "phased_trainer.hh"

#include "sim/logging.hh"

namespace coarse::baselines {

PhasedTrainer::PhasedTrainer(fabric::Machine &machine,
                             dl::ModelSpec model, std::uint32_t batchSize)
    : machine_(machine), model_(std::move(model)), batch_(batchSize),
      gpu_(dl::gpuSpec(machine.gpuModel())),
      iteration_(model_, gpu_, batchSize)
{
}

void
PhasedTrainer::startIteration(std::uint32_t iter)
{
    auto &sim = machine_.topology().sim();
    curIter_ = iter;
    iterStart_ = sim.now();
    iterComputeEnd_ = iterStart_
        + sim::fromSeconds(iteration_.forwardSeconds()
                           + iteration_.backwardSeconds());
    sim.events().schedule(computeEndEvent_, iterComputeEnd_);
}

void
PhasedTrainer::onComputeEnd()
{
    const std::uint32_t iter = curIter_;
    const sim::Tick start = iterStart_;
    const sim::Tick computeEnd = iterComputeEnd_;
    synchronize(iter, [this, iter, start, computeEnd] {
        finishIteration(iter, start, computeEnd);
    });
}

void
PhasedTrainer::finishIteration(std::uint32_t iter, sim::Tick start,
                               sim::Tick computeEnd)
{
    auto &sim = machine_.topology().sim();
    if (sim::traceEnabled(sim::TraceCategory::Iteration)) {
        auto track = [this] { return "baseline/" + name(); };
        sim::traceSpan(sim::TraceCategory::Iteration, traceTrack_,
                       track, "compute", start, computeEnd, iter);
        sim::traceSpan(sim::TraceCategory::Iteration, traceTrack_,
                       track, "sync", computeEnd, sim.now(), iter);
        sim::traceSpan(sim::TraceCategory::Iteration, traceTrack_,
                       track, "iteration", start, sim.now(), iter);
    }
    if (iter >= warmup_) {
        measuredSeconds_ += sim::toSeconds(sim.now() - start);
        measuredBlocked_ += sim::toSeconds(sim.now() - computeEnd);
        ++measuredIters_;
    }
    if (iter + 1 < totalIterations_)
        startIteration(iter + 1);
}

dl::TrainingReport
PhasedTrainer::run(std::uint32_t iterations, std::uint32_t warmup)
{
    if (iterations == 0)
        sim::fatal("PhasedTrainer: need at least one iteration");

    const auto needed =
        dl::gpuMemoryNeeded(model_, batch_, stateModel());
    if (needed > gpu_.memBytes) {
        sim::fatal(name(), ": model ", model_.name, " at batch ", batch_,
                   " needs ", needed, " bytes on a ", gpu_.memBytes,
                   "-byte ", gpu_.name, " GPU (out of memory)");
    }

    warmup_ = warmup;
    totalIterations_ = iterations + warmup;
    measuredSeconds_ = 0.0;
    measuredBlocked_ = 0.0;
    measuredIters_ = 0;

    auto &sim = machine_.topology().sim();
    startIteration(0);
    sim.run();

    if (measuredIters_ == 0)
        sim::fatal(name(), ": no measured iterations completed");

    dl::TrainingReport report;
    report.scheme = name();
    report.model = model_.name;
    report.machine = machine_.name();
    report.workers =
        static_cast<std::uint32_t>(machine_.workers().size());
    report.batchSize = batch_;
    report.iterations = measuredIters_;
    report.computeSeconds =
        iteration_.forwardSeconds() + iteration_.backwardSeconds();
    report.iterationSeconds = measuredSeconds_ / measuredIters_;
    report.blockedCommSeconds = measuredBlocked_ / measuredIters_;
    report.gpuUtilization =
        report.computeSeconds / report.iterationSeconds;
    report.throughputSamplesPerSec =
        static_cast<double>(batch_) * report.workers
        / report.iterationSeconds;
    return report;
}

} // namespace coarse::baselines
