/**
 * @file
 * Asynchronous bounded-staleness parameter server.
 *
 * The paper's related work contrasts COARSE (fully synchronous) with
 * Hop-style bounded-staleness designs: workers do not wait for a
 * global synchronization point; each pushes its gradients and pulls
 * whatever parameters the server currently has, subject to a bound
 * on how many iterations ahead of the slowest in-flight update it
 * may run. This trainer models that timing (statistical efficiency —
 * the accuracy cost of staleness — is out of scope, as it is in the
 * paper's comparison).
 */

#ifndef COARSE_BASELINES_ASYNC_PS_HH
#define COARSE_BASELINES_ASYNC_PS_HH

#include <cstdint>
#include <memory>

#include "cci/address_space.hh"
#include "cci/directory.hh"
#include "cci/port.hh"
#include "cci/prototype_model.hh"
#include "dl/gpu.hh"
#include "dl/iteration.hh"
#include "dl/trainer.hh"
#include "fabric/machine.hh"
#include "memdev/memory_device.hh"

namespace coarse::baselines {

/** Tuning for the asynchronous parameter server. */
struct AsyncPsOptions
{
    /**
     * Staleness bound s: a worker may start iteration k only when
     * its own update for iteration k - s has been applied at the
     * server. s = 1 degenerates to (per-worker) synchronous.
     */
    std::uint32_t stalenessBound = 2;
    memdev::MemoryDeviceParams deviceParams = {};
    cci::PrototypeParams prototype = {};
    /** Use GPU-direct DMA instead of the CCI load/store path. */
    bool gpuDirect = true;
};

class AsyncPsTrainer : public dl::Trainer
{
  public:
    AsyncPsTrainer(fabric::Machine &machine, dl::ModelSpec model,
                   std::uint32_t batchSize, AsyncPsOptions options = {});
    ~AsyncPsTrainer() override;

    std::string name() const override { return "Async-PS"; }

    dl::TrainingReport run(std::uint32_t iterations,
                           std::uint32_t warmup = 2) override;

    /** Largest observed gap between a worker and its acked update. */
    std::uint32_t maxObservedStaleness() const { return maxStale_; }

  private:
    struct WorkerLoop;

    void startIteration(WorkerLoop &loop);
    void maybeFinish();

    fabric::Machine &machine_;
    dl::ModelSpec model_;
    std::uint32_t batch_;
    AsyncPsOptions options_;
    dl::GpuSpec gpu_;
    dl::IterationModel iteration_;

    std::unique_ptr<memdev::MemoryDevice> server_;
    std::unique_ptr<cci::AddressSpace> space_;
    std::unique_ptr<cci::Directory> directory_;
    std::unique_ptr<cci::PrototypeModel> prototype_;
    std::unique_ptr<cci::CciPort> port_;
    cci::RegionId params_ = 0;

    std::vector<std::unique_ptr<WorkerLoop>> loops_;
    std::uint32_t totalIterations_ = 0;
    std::uint32_t warmup_ = 0;
    std::uint32_t maxStale_ = 0;
    std::function<void()> allDone_;
};

} // namespace coarse::baselines

#endif // COARSE_BASELINES_ASYNC_PS_HH
