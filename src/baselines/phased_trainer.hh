/**
 * @file
 * Skeleton for baseline trainers whose synchronization strictly
 * follows the compute phase (the model the paper uses for both the
 * centralized parameter server and MPI AllReduce: "a parameter
 * synchronization operation blocks all GPUs", §II-B).
 */

#ifndef COARSE_BASELINES_PHASED_TRAINER_HH
#define COARSE_BASELINES_PHASED_TRAINER_HH

#include <cstdint>
#include <functional>
#include <string>

#include "dl/gpu.hh"
#include "dl/iteration.hh"
#include "dl/model.hh"
#include "dl/trainer.hh"
#include "fabric/machine.hh"
#include "sim/event.hh"
#include "sim/trace.hh"

namespace coarse::baselines {

/**
 * Runs the compute/sync/repeat iteration loop; subclasses provide
 * the synchronization phase.
 */
class PhasedTrainer : public dl::Trainer
{
  public:
    PhasedTrainer(fabric::Machine &machine, dl::ModelSpec model,
                  std::uint32_t batchSize);

    dl::TrainingReport run(std::uint32_t iterations,
                           std::uint32_t warmup = 2) override;

    const dl::ModelSpec &model() const { return model_; }
    const dl::GpuSpec &gpu() const { return gpu_; }
    std::uint32_t batchSize() const { return batch_; }
    fabric::Machine &machine() { return machine_; }

  protected:
    /**
     * Perform one iteration's parameter synchronization; invoked at
     * the end of the backward pass. Must call @p done exactly once.
     */
    virtual void synchronize(std::uint32_t iter,
                             std::function<void()> done) = 0;

    /** Memory placement used for the batch-size fit check. */
    virtual dl::TrainingStateModel stateModel() const
    {
        return dl::residentStateModel();
    }

    dl::IterationModel &iterationModel() { return iteration_; }

  private:
    void startIteration(std::uint32_t iter);
    /** Fires at the end of the backward pass; starts synchronize(). */
    void onComputeEnd();
    void finishIteration(std::uint32_t iter, sim::Tick start,
                         sim::Tick computeEnd);

    fabric::Machine &machine_;
    dl::ModelSpec model_;
    std::uint32_t batch_;
    dl::GpuSpec gpu_;
    dl::IterationModel iteration_;

    std::uint32_t totalIterations_ = 0;
    std::uint32_t warmup_ = 0;
    double measuredSeconds_ = 0.0;
    double measuredBlocked_ = 0.0;
    std::uint32_t measuredIters_ = 0;

    // In-flight iteration context for the pre-allocated compute-end
    // event; valid while computeEndEvent_ is armed or synchronizing.
    std::uint32_t curIter_ = 0;
    sim::Tick iterStart_ = 0;
    sim::Tick iterComputeEnd_ = 0;
    sim::TraceTrackHandle traceTrack_;
    sim::MemberEvent<PhasedTrainer, &PhasedTrainer::onComputeEnd>
        computeEndEvent_{*this, "phased.compute_end"};
};

} // namespace coarse::baselines

#endif // COARSE_BASELINES_PHASED_TRAINER_HH
