#include "async_ps.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace coarse::baselines {

/** Per-worker asynchronous training loop state. */
struct AsyncPsTrainer::WorkerLoop
{
    fabric::NodeId node = fabric::kInvalidNode;
    std::uint32_t nextIter = 0;
    /** Own updates fully applied at the server. */
    std::uint32_t acked = 0;
    bool gated = false;
    sim::Tick gateStart = 0;
    bool finished = false;

    // Post-warmup measurement.
    double measuredSeconds = 0.0;
    double blockedSeconds = 0.0;
    std::uint32_t measuredIters = 0;
};

AsyncPsTrainer::AsyncPsTrainer(fabric::Machine &machine,
                               dl::ModelSpec model,
                               std::uint32_t batchSize,
                               AsyncPsOptions options)
    : machine_(machine), model_(std::move(model)), batch_(batchSize),
      options_(options), gpu_(dl::gpuSpec(machine.gpuModel())),
      iteration_(model_, gpu_, batchSize)
{
    if (options_.stalenessBound == 0)
        sim::fatal("AsyncPsTrainer: staleness bound must be >= 1");

    const fabric::NodeId node = machine.memDevices().front();
    server_ = std::make_unique<memdev::MemoryDevice>(
        node, options_.deviceParams);
    space_ = std::make_unique<cci::AddressSpace>();
    space_->addDevice(node, options_.deviceParams.dramBytes);
    params_ = space_->allocate(node, model_.parameterBytes(),
                               model_.name + ".params");
    directory_ = std::make_unique<cci::Directory>(machine.topology(),
                                                  *space_);
    prototype_ =
        std::make_unique<cci::PrototypeModel>(options_.prototype);
    port_ = std::make_unique<cci::CciPort>(machine.topology(),
                                           *directory_, *space_,
                                           *prototype_);

    for (fabric::NodeId worker : machine.workers()) {
        auto loop = std::make_unique<WorkerLoop>();
        loop->node = worker;
        loops_.push_back(std::move(loop));
    }
}

AsyncPsTrainer::~AsyncPsTrainer() = default;

void
AsyncPsTrainer::startIteration(WorkerLoop &loop)
{
    auto &sim = machine_.topology().sim();
    if (loop.nextIter >= totalIterations_) {
        loop.finished = true;
        maybeFinish();
        return;
    }

    // Staleness gate: may run iteration k only if the server has
    // applied this worker's update for iteration k - s.
    const std::uint32_t k = loop.nextIter;
    maxStale_ = std::max(maxStale_, k - loop.acked);
    if (k >= loop.acked + options_.stalenessBound) {
        if (!loop.gated) {
            loop.gated = true;
            loop.gateStart = sim.now();
        }
        return; // an ack will retry
    }
    double gateWait = 0.0;
    if (loop.gated) {
        loop.gated = false;
        gateWait = sim::toSeconds(sim.now() - loop.gateStart);
    }

    const sim::Tick iterStart = sim.now();
    ++loop.nextIter;

    cci::AccessOptions access;
    access.path = options_.gpuDirect ? cci::AccessPath::GpuDirect
                                     : cci::AccessPath::Cci;
    access.coherent = true;
    access.via = machine_.hostCpus().front();

    // Pull the current parameters, compute, then push the update
    // asynchronously: the worker moves on while the server applies.
    port_->read(loop.node, params_, 0, model_.parameterBytes(), access,
                [this, &loop, iterStart, gateWait, k, access] {
        auto &sim = machine_.topology().sim();
        const double pullSec =
            sim::toSeconds(sim.now() - iterStart);
        const sim::Tick compute =
            sim::fromSeconds(iteration_.forwardSeconds()
                             + iteration_.backwardSeconds());
        sim.events().postIn(compute, [this, &loop, iterStart,
                                      gateWait, pullSec, k,
                                      access] {
            auto &sim2 = machine_.topology().sim();
            // Measurement: the iteration is over for the worker.
            if (k >= warmup_) {
                loop.measuredSeconds +=
                    sim::toSeconds(sim2.now() - iterStart) + gateWait;
                loop.blockedSeconds += gateWait + pullSec;
                ++loop.measuredIters;
            }

            // Push in the background; the ack lifts the gate later.
            port_->write(loop.node, params_, 0,
                         model_.parameterBytes(), access,
                         [this, &loop] {
                const double applySec =
                    static_cast<double>(model_.parameterBytes())
                    / server_->armReduceBytesPerSec();
                machine_.topology().sim().events().postIn(
                    sim::fromSeconds(applySec), [this, &loop] {
                        ++loop.acked;
                        // Only a gated loop needs a kick; otherwise
                        // its own chain is already running.
                        if (loop.gated)
                            startIteration(loop);
                    });
            });

            // Next iteration proceeds immediately (subject to gate).
            startIteration(loop);
        });
    });
}

void
AsyncPsTrainer::maybeFinish()
{
    for (const auto &loop : loops_) {
        if (!loop->finished)
            return;
    }
    if (allDone_) {
        auto done = std::move(allDone_);
        allDone_ = nullptr;
        done();
    }
}

dl::TrainingReport
AsyncPsTrainer::run(std::uint32_t iterations, std::uint32_t warmup)
{
    if (iterations == 0)
        sim::fatal("AsyncPsTrainer: need at least one iteration");

    const auto needed = dl::gpuMemoryNeeded(model_, batch_,
                                            dl::residentStateModel());
    if (needed > gpu_.memBytes) {
        sim::fatal(name(), ": model ", model_.name, " at batch ",
                   batch_, " needs ", needed, " bytes on a ",
                   gpu_.memBytes, "-byte ", gpu_.name,
                   " GPU (out of memory)");
    }

    warmup_ = warmup;
    totalIterations_ = iterations + warmup;
    maxStale_ = 0;

    auto &sim = machine_.topology().sim();
    bool finished = false;
    allDone_ = [&finished] { finished = true; };
    for (auto &loop : loops_)
        startIteration(*loop);
    sim.run();

    double seconds = 0.0;
    double blocked = 0.0;
    std::uint32_t iters = 0;
    for (const auto &loop : loops_) {
        seconds += loop->measuredSeconds;
        blocked += loop->blockedSeconds;
        iters += loop->measuredIters;
    }
    if (iters == 0)
        sim::fatal(name(), ": no measured iterations completed");

    dl::TrainingReport report;
    report.scheme = name();
    report.model = model_.name;
    report.machine = machine_.name();
    report.workers = static_cast<std::uint32_t>(loops_.size());
    report.batchSize = batch_;
    report.iterations = iters / report.workers;
    report.computeSeconds =
        iteration_.forwardSeconds() + iteration_.backwardSeconds();
    report.iterationSeconds = seconds / iters;
    report.blockedCommSeconds = blocked / iters;
    report.gpuUtilization =
        report.computeSeconds / report.iterationSeconds;
    report.throughputSamplesPerSec = static_cast<double>(batch_)
        * report.workers / report.iterationSeconds;
    report.deadlocked = !finished;
    return report;
}

} // namespace coarse::baselines
