/**
 * @file
 * Overlapped (Horovod-style) ring AllReduce.
 *
 * The paper models MPI AllReduce as blocking after the backward pass
 * (§II-B). Modern frameworks do better: gradients are grouped into
 * fusion buckets and each bucket's allreduce launches as soon as its
 * gradients exist, overlapping communication with the rest of the
 * backward pass. Only the tail — whatever has not finished when the
 * backward pass ends — blocks the GPUs. This trainer implements that
 * stronger baseline so COARSE's margins can be judged against it.
 */

#ifndef COARSE_BASELINES_ALLREDUCE_OVERLAP_HH
#define COARSE_BASELINES_ALLREDUCE_OVERLAP_HH

#include <cstdint>
#include <memory>

#include "collective/communicator.hh"
#include "dl/gpu.hh"
#include "dl/iteration.hh"
#include "dl/trainer.hh"
#include "fabric/machine.hh"

namespace coarse::baselines {

/** Tuning for the overlapped AllReduce baseline. */
struct OverlapAllReduceOptions
{
    /** Gradient fusion bucket size (Horovod's default is 64 MiB). */
    std::uint64_t bucketBytes = 64 << 20;
    /** Parallel rings per bucket. */
    std::size_t rings = 2;
    bool useNvlink = true;
    /**
     * Fraction of compute throughput lost while an allreduce overlaps
     * the backward pass (NCCL kernels steal SMs and memory
     * bandwidth). 0 = free overlap.
     */
    double computeSlowdown = 0.10;
};

class OverlapAllReduceTrainer : public dl::Trainer
{
  public:
    OverlapAllReduceTrainer(fabric::Machine &machine,
                            dl::ModelSpec model, std::uint32_t batchSize,
                            OverlapAllReduceOptions options = {});

    std::string name() const override { return "AllReduce-OL"; }

    dl::TrainingReport run(std::uint32_t iterations,
                           std::uint32_t warmup = 2) override;

    /** Buckets the model's tensors were fused into. */
    std::size_t bucketCount() const { return buckets_.size(); }

  private:
    struct Bucket
    {
        std::uint64_t bytes = 0;
        /** Ready when the *last* (input-side) tensor in it is. */
        double readySeconds = 0.0;
    };

    void startIteration(std::uint32_t iter);
    void finishIteration(std::uint32_t iter, sim::Tick start,
                         sim::Tick computeEnd);

    fabric::Machine &machine_;
    dl::ModelSpec model_;
    std::uint32_t batch_;
    OverlapAllReduceOptions options_;
    dl::GpuSpec gpu_;
    dl::IterationModel iteration_;
    std::unique_ptr<coll::Communicator> comm_;
    std::vector<Bucket> buckets_;

    std::uint32_t totalIterations_ = 0;
    std::uint32_t warmup_ = 0;
    double measuredSeconds_ = 0.0;
    double measuredBlocked_ = 0.0;
    std::uint32_t measuredIters_ = 0;
};

} // namespace coarse::baselines

#endif // COARSE_BASELINES_ALLREDUCE_OVERLAP_HH
