#include "allreduce.hh"

#include "collective/ring_builder.hh"

namespace coarse::baselines {

AllReduceTrainer::AllReduceTrainer(fabric::Machine &machine,
                                   dl::ModelSpec model,
                                   std::uint32_t batchSize,
                                   AllReduceOptions options)
    : PhasedTrainer(machine, std::move(model), batchSize),
      options_(options)
{
    std::vector<fabric::NodeId> ranks = machine.workers();
    if (options_.optimizeRingOrder) {
        coll::RingBuildOptions build;
        build.mask = options_.useNvlink ? fabric::kAllLinks
                                        : fabric::kNoNvLink;
        ranks = coll::buildRing(machine.topology(), std::move(ranks),
                                build);
    }
    comm_ = std::make_unique<coll::Communicator>(machine.topology(),
                                                 std::move(ranks));

    const bool wantHier =
        options_.topology == AllReduceTopology::Hierarchical;
    if (wantHier && machine.serverNodeCount() > 1) {
        std::vector<std::vector<fabric::NodeId>> groups(
            machine.serverNodeCount());
        for (fabric::NodeId worker : machine.workers())
            groups[machine.serverNodeOf(worker)].push_back(worker);
        hier_ = std::make_unique<coll::HierarchicalAllReduce>(
            machine.topology(), std::move(groups));
    }
}

void
AllReduceTrainer::synchronize(std::uint32_t iter,
                              std::function<void()> done)
{
    (void)iter;
    coll::RingOptions ring;
    ring.mask = options_.useNvlink ? fabric::kAllLinks
                                   : fabric::kNoNvLink;
    ring.rings = options_.rings;
    ring.reduceBytesPerSec = gpu().reduceBytesPerSec();

    if (hier_ != nullptr) {
        coll::HierarchicalOptions options;
        options.intra = ring;
        options.inter = ring;
        options.inter.mask = fabric::kAllLinks;
        hier_->allReduceTimed(model().parameterBytes(), options,
                              std::move(done));
        return;
    }
    comm_->allReduceTimed(model().parameterBytes(), ring,
                          std::move(done));
}

} // namespace coarse::baselines
