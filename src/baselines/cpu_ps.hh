/**
 * @file
 * Centralized CPU parameter server baseline (paper §II-B, Fig. 2a).
 *
 * Workers push gradients to a parameter server running on the host
 * CPU and pull updated weights back. The CPU's limited serial-bus
 * lanes cap the aggregate service bandwidth, so concurrent worker
 * requests divide it — the scaling bottleneck that motivates
 * decentralized designs.
 */

#ifndef COARSE_BASELINES_CPU_PS_HH
#define COARSE_BASELINES_CPU_PS_HH

#include "phased_trainer.hh"

namespace coarse::baselines {

/** Tuning for the CPU parameter-server baseline. */
struct CpuPsOptions
{
    /** Aggregate serial-bus bandwidth the CPU's lanes provide. */
    double cpuLanesBytesPerSec = 16e9;
    /** Update-apply throughput of the host CPU. */
    double cpuReduceBytesPerSec = 6e9;
};

class CpuPsTrainer : public PhasedTrainer
{
  public:
    CpuPsTrainer(fabric::Machine &machine, dl::ModelSpec model,
                 std::uint32_t batchSize, CpuPsOptions options = {});

    std::string name() const override { return "CPU-PS"; }

  protected:
    void synchronize(std::uint32_t iter,
                     std::function<void()> done) override;

  private:
    CpuPsOptions options_;
};

} // namespace coarse::baselines

#endif // COARSE_BASELINES_CPU_PS_HH
