#include "cpu_ps.hh"

#include <memory>

#include "sim/logging.hh"

namespace coarse::baselines {

CpuPsTrainer::CpuPsTrainer(fabric::Machine &machine, dl::ModelSpec model,
                           std::uint32_t batchSize, CpuPsOptions options)
    : PhasedTrainer(machine, std::move(model), batchSize),
      options_(options)
{
    if (machine.hostCpus().empty())
        sim::fatal("CpuPsTrainer: machine has no host CPU");
}

void
CpuPsTrainer::synchronize(std::uint32_t iter, std::function<void()> done)
{
    (void)iter;
    const std::uint64_t bytes = model().parameterBytes();
    const auto &workers = machine().workers();
    auto &topo = machine().topology();
    auto &sim = topo.sim();

    // All workers push concurrently; the CPU's lanes split across
    // them, expressed as a per-transfer rate cap.
    const double perWorkerCap = options_.cpuLanesBytesPerSec
        / static_cast<double>(workers.size());

    auto doneShared =
        std::make_shared<std::function<void()>>(std::move(done));
    auto pulls = std::make_shared<std::size_t>(workers.size());
    auto pullAll = [this, bytes, &workers, &topo, perWorkerCap, pulls,
                    doneShared] {
        for (fabric::NodeId worker : workers) {
            const fabric::NodeId cpu =
                machine().hostCpus()[machine().serverNodeOf(worker)];
            fabric::Message msg;
            msg.src = cpu;
            msg.dst = worker;
            msg.bytes = bytes;
            msg.rateCap = perWorkerCap;
            msg.onDelivered = [pulls, doneShared] {
                if (--*pulls == 0)
                    (*doneShared)();
            };
            topo.send(std::move(msg), fabric::kNoNvLink);
        }
    };

    auto pushes = std::make_shared<std::size_t>(workers.size());
    auto afterPushes = [this, bytes, &sim, pullAll] {
        const double sec = static_cast<double>(bytes)
            / options_.cpuReduceBytesPerSec;
        sim.events().postIn(sim::fromSeconds(sec), pullAll);
    };

    for (fabric::NodeId worker : workers) {
        const fabric::NodeId cpu =
            machine().hostCpus()[machine().serverNodeOf(worker)];
        fabric::Message msg;
        msg.src = worker;
        msg.dst = cpu;
        msg.bytes = bytes;
        msg.rateCap = perWorkerCap;
        msg.onDelivered = [pushes, afterPushes] {
            if (--*pushes == 0)
                afterPushes();
        };
        topo.send(std::move(msg), fabric::kNoNvLink);
    }
}

} // namespace coarse::baselines
