/**
 * @file
 * DENSE: the naive CCI disaggregated parameter server (paper Fig. 5).
 *
 * One memory device runs the whole parameter server on its on-device
 * processor. Every worker pushes its full gradient set coherently
 * over the CCI path, the ARM-class core applies the update, and
 * every worker pulls the new parameters back — all over one device's
 * serial-bus attachment and the protocol-limited CCI load/store
 * rates, with invalidation traffic that grows with the number of
 * sharers. This is the baseline the paper normalizes Fig. 16 to.
 */

#ifndef COARSE_BASELINES_DENSE_HH
#define COARSE_BASELINES_DENSE_HH

#include <memory>

#include "cci/address_space.hh"
#include "cci/coherent_cache.hh"
#include "cci/directory.hh"
#include "cci/port.hh"
#include "cci/prototype_model.hh"
#include "memdev/memory_device.hh"
#include "phased_trainer.hh"

namespace coarse::baselines {

/** Tuning for the DENSE baseline. */
struct DenseOptions
{
    /** Index (into machine.memDevices()) of the PS device. */
    std::size_t serverDevice = 0;
    memdev::MemoryDeviceParams deviceParams = {};
    cci::PrototypeParams prototype = {};
};

class DenseTrainer : public PhasedTrainer
{
  public:
    DenseTrainer(fabric::Machine &machine, dl::ModelSpec model,
                 std::uint32_t batchSize, DenseOptions options = {});

    std::string name() const override { return "DENSE"; }

    cci::Directory &directory() { return *directory_; }

    /** The parameter cache of worker @p i (Fig. 5). */
    cci::CoherentCache &workerCache(std::size_t i)
    {
        return *caches_.at(i);
    }

  protected:
    void synchronize(std::uint32_t iter,
                     std::function<void()> done) override;

  private:
    DenseOptions options_;
    std::unique_ptr<memdev::MemoryDevice> server_;
    std::unique_ptr<cci::AddressSpace> space_;
    std::unique_ptr<cci::Directory> directory_;
    std::unique_ptr<cci::PrototypeModel> prototype_;
    std::unique_ptr<cci::CciPort> port_;
    std::vector<std::unique_ptr<cci::CoherentCache>> caches_;
    cci::RegionId params_ = 0;
};

} // namespace coarse::baselines

#endif // COARSE_BASELINES_DENSE_HH
