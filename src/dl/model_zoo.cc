#include "model_zoo.hh"

#include "sim/logging.hh"

namespace coarse::dl {

namespace {

void
addTensor(ModelSpec &model, std::string name, std::uint64_t elements)
{
    model.tensors.push_back(TensorSpec{std::move(name), elements});
}

/** One ResNet bottleneck block: 1x1 -> 3x3 -> 1x1 (+BN each). */
void
addBottleneck(ModelSpec &model, const std::string &prefix,
              std::uint64_t in, std::uint64_t mid, std::uint64_t out,
              bool downsample)
{
    addTensor(model, prefix + ".conv1", in * mid);
    addTensor(model, prefix + ".bn1", 2 * mid);
    addTensor(model, prefix + ".conv2", 9 * mid * mid);
    addTensor(model, prefix + ".bn2", 2 * mid);
    addTensor(model, prefix + ".conv3", mid * out);
    addTensor(model, prefix + ".bn3", 2 * out);
    if (downsample) {
        addTensor(model, prefix + ".downsample.conv", in * out);
        addTensor(model, prefix + ".downsample.bn", 2 * out);
    }
}

/** One transformer encoder layer of hidden size H. */
void
addEncoderLayer(ModelSpec &model, const std::string &prefix,
                std::uint64_t h)
{
    addTensor(model, prefix + ".attn.qkv.weight", 3 * h * h);
    addTensor(model, prefix + ".attn.qkv.bias", 3 * h);
    addTensor(model, prefix + ".attn.out.weight", h * h);
    addTensor(model, prefix + ".attn.out.bias", h);
    addTensor(model, prefix + ".attn.layernorm", 2 * h);
    addTensor(model, prefix + ".ffn.in.weight", 4 * h * h);
    addTensor(model, prefix + ".ffn.in.bias", 4 * h);
    addTensor(model, prefix + ".ffn.out.weight", 4 * h * h);
    addTensor(model, prefix + ".ffn.out.bias", h);
    addTensor(model, prefix + ".ffn.layernorm", 2 * h);
}

ModelSpec
makeBert(const std::string &name, std::uint64_t h, std::uint64_t layers,
         std::uint64_t seq, double activationGiB)
{
    ModelSpec model;
    model.name = name;

    const std::uint64_t vocab = 30522;
    addTensor(model, "embeddings.word", vocab * h);
    addTensor(model, "embeddings.position", 512 * h);
    addTensor(model, "embeddings.token_type", 2 * h);
    addTensor(model, "embeddings.layernorm", 2 * h);

    for (std::uint64_t l = 0; l < layers; ++l)
        addEncoderLayer(model, "encoder.layer" + std::to_string(l), h);

    addTensor(model, "pooler.weight", h * h);
    addTensor(model, "pooler.bias", h);
    addTensor(model, "qa_head.weight", 2 * h);
    addTensor(model, "qa_head.bias", 2);

    // Transformer forward FLOPs ~ 2 * params * tokens.
    model.flopsPerSampleFwd = 2.0
        * static_cast<double>(model.parameterCount())
        * static_cast<double>(seq);
    model.activationBytesPerSample =
        static_cast<std::uint64_t>(activationGiB * (std::uint64_t(1) << 30));
    model.sampleBytes = seq * 8; // token ids + masks
    return model;
}

} // namespace

ModelSpec
makeResNet50()
{
    ModelSpec model;
    model.name = "resnet50";

    addTensor(model, "conv1", 7 * 7 * 3 * 64);
    addTensor(model, "bn1", 2 * 64);

    const std::uint64_t blocks[4] = {3, 4, 6, 3};
    const std::uint64_t mids[4] = {64, 128, 256, 512};
    std::uint64_t in = 64;
    for (int stage = 0; stage < 4; ++stage) {
        const std::uint64_t mid = mids[stage];
        const std::uint64_t out = mid * 4;
        for (std::uint64_t b = 0; b < blocks[stage]; ++b) {
            const std::string prefix = "layer" + std::to_string(stage + 1)
                + ".block" + std::to_string(b);
            addBottleneck(model, prefix, in, mid, out, b == 0);
            in = out;
        }
    }

    addTensor(model, "fc.weight", 2048 * 1000);
    addTensor(model, "fc.bias", 1000);

    model.flopsPerSampleFwd = 4.1e9; // 224x224 single-crop
    model.activationBytesPerSample = std::uint64_t(140) << 20;
    model.sampleBytes = 224 * 224 * 3; // decoded uint8 image
    return model;
}

ModelSpec
makeBertBase()
{
    return makeBert("bert_base", 768, 12, 384, 0.7);
}

ModelSpec
makeBertLarge()
{
    return makeBert("bert_large", 1024, 24, 512, 2.5);
}

ModelSpec
makeVgg16()
{
    ModelSpec model;
    model.name = "vgg16";

    const std::uint64_t convs[13][2] = {
        {3, 64},   {64, 64},   {64, 128},  {128, 128}, {128, 256},
        {256, 256}, {256, 256}, {256, 512}, {512, 512}, {512, 512},
        {512, 512}, {512, 512}, {512, 512}};
    for (int c = 0; c < 13; ++c) {
        addTensor(model, "conv" + std::to_string(c) + ".weight",
                  9 * convs[c][0] * convs[c][1]);
        addTensor(model, "conv" + std::to_string(c) + ".bias",
                  convs[c][1]);
    }
    addTensor(model, "fc1.weight", std::uint64_t(25088) * 4096);
    addTensor(model, "fc1.bias", 4096);
    addTensor(model, "fc2.weight", std::uint64_t(4096) * 4096);
    addTensor(model, "fc2.bias", 4096);
    addTensor(model, "fc3.weight", std::uint64_t(4096) * 1000);
    addTensor(model, "fc3.bias", 1000);

    model.flopsPerSampleFwd = 15.5e9;
    model.activationBytesPerSample = std::uint64_t(110) << 20;
    model.sampleBytes = 224 * 224 * 3;
    return model;
}

ModelSpec
makeTransformerLm(std::uint64_t hidden, std::uint64_t layers,
                  std::uint64_t seq, std::uint64_t vocab)
{
    ModelSpec model;
    model.name = "transformer_lm_h" + std::to_string(hidden) + "_l"
        + std::to_string(layers);

    addTensor(model, "wte", vocab * hidden); // tied with the LM head
    addTensor(model, "wpe", seq * hidden);
    for (std::uint64_t l = 0; l < layers; ++l)
        addEncoderLayer(model, "decoder.layer" + std::to_string(l),
                        hidden);
    addTensor(model, "final_layernorm", 2 * hidden);

    model.flopsPerSampleFwd = 2.0
        * static_cast<double>(model.parameterCount())
        * static_cast<double>(seq);
    // Decoder activations scale with layers * seq * hidden; ~16
    // floats of state per activation element during training.
    model.activationBytesPerSample =
        layers * seq * hidden * 16 * sizeof(float);
    return model;
}

ModelSpec
makeGpt2Medium()
{
    ModelSpec model = makeTransformerLm(1024, 24, 1024);
    model.name = "gpt2_medium";
    return model;
}

ModelSpec
makeSynthetic(std::string name,
              std::vector<std::uint64_t> tensorElements,
              double flopsPerSampleFwd,
              std::uint64_t activationBytesPerSample)
{
    ModelSpec model;
    model.name = std::move(name);
    for (std::size_t i = 0; i < tensorElements.size(); ++i) {
        addTensor(model, model.name + ".t" + std::to_string(i),
                  tensorElements[i]);
    }
    model.flopsPerSampleFwd = flopsPerSampleFwd;
    model.activationBytesPerSample = activationBytesPerSample;
    model.workspaceBytes = 0;
    return model;
}

ModelSpec
makeModel(const std::string &name)
{
    if (name == "resnet50")
        return makeResNet50();
    if (name == "bert_base")
        return makeBertBase();
    if (name == "bert_large")
        return makeBertLarge();
    if (name == "vgg16")
        return makeVgg16();
    if (name == "gpt2_medium")
        return makeGpt2Medium();
    sim::fatal("makeModel: unknown model '", name, "'");
}

} // namespace coarse::dl
