/**
 * @file
 * Built-in model descriptions for the paper's workloads (ResNet-50 on
 * ImageNet, BERT fine-tuning on SQuAD) plus helpers for synthetic
 * models used in tests and microbenchmarks.
 */

#ifndef COARSE_DL_MODEL_ZOO_HH
#define COARSE_DL_MODEL_ZOO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "model.hh"

namespace coarse::dl {

/** ResNet-50 v1 (ImageNet, 224x224): ~25.6 M parameters. */
ModelSpec makeResNet50();

/** BERT-Base (SQuAD fine-tune, seq 384): ~110 M parameters. */
ModelSpec makeBertBase();

/** BERT-Large (SQuAD fine-tune, seq 512): ~335 M parameters. */
ModelSpec makeBertLarge();

/** VGG-16 (ImageNet): ~138 M parameters, fc-heavy. */
ModelSpec makeVgg16();

/**
 * A decoder-only transformer language model with tied embeddings.
 * "gpt2_medium" in the zoo is makeTransformerLm(1024, 24, 1024).
 */
ModelSpec makeTransformerLm(std::uint64_t hidden, std::uint64_t layers,
                            std::uint64_t seq,
                            std::uint64_t vocab = 50257);

/** GPT-2 Medium (~353 M parameters, seq 1024). */
ModelSpec makeGpt2Medium();

/**
 * A synthetic model with the given per-tensor element counts.
 * Deterministic; useful for property tests and ablations.
 */
ModelSpec makeSynthetic(std::string name,
                        std::vector<std::uint64_t> tensorElements,
                        double flopsPerSampleFwd = 1e9,
                        std::uint64_t activationBytesPerSample = 1 << 20);

/** Look up a model by name ("resnet50", "bert_base", "bert_large",
 *  "vgg16"). */
ModelSpec makeModel(const std::string &name);

} // namespace coarse::dl

#endif // COARSE_DL_MODEL_ZOO_HH
