/**
 * @file
 * DL model descriptions: parameter tensors in layer order plus the
 * aggregate compute and memory characteristics a communication study
 * needs. No numerics are simulated — training math is modelled by
 * tensor sizes, FLOP counts, and activation footprints.
 */

#ifndef COARSE_DL_MODEL_HH
#define COARSE_DL_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace coarse::dl {

/** One parameter tensor (weights of one layer component). */
struct TensorSpec
{
    std::string name;
    std::uint64_t elements = 0;

    std::uint64_t bytes() const { return elements * 4; }
};

/** A whole model, tensors ordered input-side first. */
struct ModelSpec
{
    std::string name;
    std::vector<TensorSpec> tensors;
    /** Forward-pass FLOPs for one sample. */
    double flopsPerSampleFwd = 0.0;
    /** Backward/forward FLOP ratio (classically ~2). */
    double backwardRatio = 2.0;
    /** Activation memory per sample held during training. */
    std::uint64_t activationBytesPerSample = 0;
    /** Bytes of input data per training sample (minibatch loading). */
    std::uint64_t sampleBytes = 0;
    /** Fixed per-GPU workspace (cuDNN buffers, fragmentation, ...). */
    std::uint64_t workspaceBytes = std::uint64_t(3) << 30;

    std::uint64_t parameterCount() const;
    std::uint64_t parameterBytes() const;

    /** Cumulative fraction of parameter bytes in tensors [0, i]. */
    double prefixBytesFraction(std::size_t i) const;
};

/** Precision/placement of the training state on the worker GPU. */
struct TrainingStateModel
{
    /** Bytes per parameter kept on the GPU for the weights. */
    double weightBytesPerParam = 4.0;
    /** Bytes per parameter for gradients. */
    double gradBytesPerParam = 4.0;
    /**
     * Bytes per parameter for optimizer state (Adam: m and v).
     * COARSE offloads this (and the master copy) to the CCI memory
     * device, which is what unlocks larger batch sizes (Fig. 16e).
     */
    double optimizerBytesPerParam = 8.0;
};

/** GPU memory needed to train @p model at @p batchSize. */
std::uint64_t gpuMemoryNeeded(const ModelSpec &model,
                              std::uint32_t batchSize,
                              const TrainingStateModel &state);

/** Largest batch that fits in @p gpuMemBytes (0 if none fits). */
std::uint32_t maxBatchSize(const ModelSpec &model,
                           std::uint64_t gpuMemBytes,
                           const TrainingStateModel &state);

/** State model when all training state lives on the GPU (baselines). */
TrainingStateModel residentStateModel();

/** State model with optimizer state offloaded to CCI memory (COARSE). */
TrainingStateModel offloadedStateModel();

} // namespace coarse::dl

#endif // COARSE_DL_MODEL_HH
