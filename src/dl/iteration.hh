/**
 * @file
 * Timing model of one data-parallel training iteration on one worker.
 *
 * The forward pass runs start to finish; the backward pass produces
 * gradient tensors in reverse layer order, each becoming ready when
 * the backward sweep has covered the layers behind it. Communication
 * layers subscribe to those ready times to overlap synchronization
 * with computation, as real frameworks do.
 */

#ifndef COARSE_DL_ITERATION_HH
#define COARSE_DL_ITERATION_HH

#include <cstdint>

#include "gpu.hh"
#include "model.hh"

namespace coarse::dl {

/**
 * Per-iteration timing for (model, GPU, batch).
 */
class IterationModel
{
  public:
    IterationModel(const ModelSpec &model, const GpuSpec &gpu,
                   std::uint32_t batchSize);

    const ModelSpec &model() const { return *model_; }
    const GpuSpec &gpu() const { return *gpu_; }
    std::uint32_t batchSize() const { return batch_; }

    /** Forward-pass wall time. */
    double forwardSeconds() const { return fwd_; }

    /** Backward-pass wall time. */
    double backwardSeconds() const { return bwd_; }

    /**
     * Offset from the start of the backward pass at which tensor
     * @p tensorIdx's gradient is complete. Output-side tensors (high
     * indices) come first; the input-side tensor finishes last.
     */
    double gradReadySeconds(std::size_t tensorIdx) const;

  private:
    const ModelSpec *model_;
    const GpuSpec *gpu_;
    std::uint32_t batch_;
    double fwd_;
    double bwd_;
};

} // namespace coarse::dl

#endif // COARSE_DL_ITERATION_HH
