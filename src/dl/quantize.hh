/**
 * @file
 * FP16 gradient quantization for compressed transport.
 *
 * A standard extension to parameter-server designs: gradients cross
 * the serial bus as IEEE half-precision (half the bytes), while
 * accumulation on the memory devices stays in full precision. The
 * round-trip here is bit-accurate to IEEE 754 binary16 with
 * round-to-nearest-even, so functional tests can bound the loss.
 */

#ifndef COARSE_DL_QUANTIZE_HH
#define COARSE_DL_QUANTIZE_HH

#include <cstdint>
#include <span>

namespace coarse::dl {

/** Convert one float to IEEE binary16 bits (round-to-nearest-even). */
std::uint16_t floatToHalf(float value);

/** Convert IEEE binary16 bits back to float. */
float halfToFloat(std::uint16_t bits);

/**
 * Quantize @p data through binary16 in place: every element becomes
 * exactly the value the receiver would reconstruct.
 */
void quantizeFp16(std::span<float> data);

/** Worst-case relative error of binary16 for normal values. */
constexpr double kFp16RelativeError = 1.0 / 1024.0;

} // namespace coarse::dl

#endif // COARSE_DL_QUANTIZE_HH
