#include "quantize.hh"

#include <bit>
#include <cstring>

namespace coarse::dl {

std::uint16_t
floatToHalf(float value)
{
    const std::uint32_t bits = std::bit_cast<std::uint32_t>(value);
    const std::uint32_t sign = (bits >> 16) & 0x8000u;
    const std::int32_t exponent =
        static_cast<std::int32_t>((bits >> 23) & 0xffu) - 127 + 15;
    std::uint32_t mantissa = bits & 0x007fffffu;

    if (exponent >= 0x1f) {
        // Overflow to infinity; NaN keeps a mantissa bit.
        const bool nan = ((bits >> 23) & 0xffu) == 0xffu
            && mantissa != 0;
        return static_cast<std::uint16_t>(sign | 0x7c00u
                                          | (nan ? 0x200u : 0u));
    }
    if (exponent <= 0) {
        if (exponent < -10)
            return static_cast<std::uint16_t>(sign); // underflow to 0
        // Subnormal: shift the implicit bit into the mantissa.
        mantissa |= 0x00800000u;
        const std::uint32_t shift =
            static_cast<std::uint32_t>(14 - exponent);
        std::uint32_t half = mantissa >> shift;
        // Round to nearest even.
        const std::uint32_t rest = mantissa & ((1u << shift) - 1u);
        const std::uint32_t halfway = 1u << (shift - 1);
        if (rest > halfway || (rest == halfway && (half & 1u)))
            ++half;
        return static_cast<std::uint16_t>(sign | half);
    }

    std::uint32_t half =
        static_cast<std::uint32_t>(exponent) << 10 | mantissa >> 13;
    // Round to nearest even on the truncated 13 bits.
    const std::uint32_t rest = mantissa & 0x1fffu;
    if (rest > 0x1000u || (rest == 0x1000u && (half & 1u)))
        ++half; // may carry into the exponent, which is correct
    return static_cast<std::uint16_t>(sign | half);
}

float
halfToFloat(std::uint16_t bits)
{
    const std::uint32_t sign = (std::uint32_t(bits) & 0x8000u) << 16;
    const std::uint32_t exponent = (bits >> 10) & 0x1fu;
    std::uint32_t mantissa = bits & 0x3ffu;

    std::uint32_t out;
    if (exponent == 0) {
        if (mantissa == 0) {
            out = sign; // signed zero
        } else {
            // Subnormal: renormalize.
            std::int32_t e = -1;
            do {
                ++e;
                mantissa <<= 1;
            } while ((mantissa & 0x400u) == 0);
            mantissa &= 0x3ffu;
            out = sign
                | static_cast<std::uint32_t>(127 - 15 - e) << 23
                | mantissa << 13;
        }
    } else if (exponent == 0x1f) {
        out = sign | 0x7f800000u | mantissa << 13; // inf / NaN
    } else {
        out = sign | (exponent - 15 + 127) << 23 | mantissa << 13;
    }
    return std::bit_cast<float>(out);
}

void
quantizeFp16(std::span<float> data)
{
    for (float &value : data)
        value = halfToFloat(floatToHalf(value));
}

} // namespace coarse::dl
