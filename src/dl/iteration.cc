#include "iteration.hh"

#include "sim/logging.hh"

namespace coarse::dl {

IterationModel::IterationModel(const ModelSpec &model, const GpuSpec &gpu,
                               std::uint32_t batchSize)
    : model_(&model), gpu_(&gpu), batch_(batchSize)
{
    if (batchSize == 0)
        sim::fatal("IterationModel: batch size must be positive");
    const double flops =
        model.flopsPerSampleFwd * static_cast<double>(batchSize);
    fwd_ = flops / gpu.effectiveFlops(batchSize);
    bwd_ = fwd_ * model.backwardRatio;
}

double
IterationModel::gradReadySeconds(std::size_t tensorIdx) const
{
    if (tensorIdx >= model_->tensors.size())
        sim::fatal("IterationModel: tensor index out of range");
    // Fraction of the backward sweep completed once this tensor's
    // gradient exists: everything from the output side down to and
    // including this tensor. Work is apportioned by parameter bytes.
    const double before = tensorIdx == 0
        ? 0.0
        : model_->prefixBytesFraction(tensorIdx - 1);
    const double suffix = 1.0 - before;
    return bwd_ * suffix;
}

} // namespace coarse::dl
