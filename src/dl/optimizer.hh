/**
 * @file
 * Optimizer models: the update rule the parameter server applies and
 * the per-parameter state it must store. COARSE offloads this state
 * (plus the master copy) to the CCI memory pool, which is what frees
 * GPU memory for larger batches (paper Fig. 16e).
 */

#ifndef COARSE_DL_OPTIMIZER_HH
#define COARSE_DL_OPTIMIZER_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "model.hh"

namespace coarse::dl {

/** Supported update rules. */
enum class OptimizerKind
{
    Sgd,      //!< w -= lr * g; no state.
    Momentum, //!< v = mu*v + g; w -= lr*v; one state slot.
    Adam,     //!< bias-corrected first/second moments; two slots.
};

const char *optimizerName(OptimizerKind kind);

/** Hyper-parameters (defaults are the common ones). */
struct OptimizerParams
{
    OptimizerKind kind = OptimizerKind::Sgd;
    double learningRate = 0.1;
    double momentum = 0.9;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
};

/** Bytes of optimizer state per parameter. */
std::uint64_t optimizerStateBytesPerParam(OptimizerKind kind);

/**
 * Training-state placement for a given optimizer: resident keeps
 * everything on the GPU; offloaded moves the optimizer state (and
 * master weights) to the memory devices.
 */
TrainingStateModel residentStateModel(OptimizerKind kind);
TrainingStateModel offloadedStateModel(OptimizerKind kind);

/**
 * One tensor's optimizer instance: owns the state slots and applies
 * updates in place.
 */
class Optimizer
{
  public:
    Optimizer(OptimizerParams params, std::size_t elements);

    const OptimizerParams &params() const { return params_; }
    std::uint64_t step() const { return step_; }

    /**
     * Apply one update: @p weights -= f(@p gradient) per the rule.
     * Spans must match the element count given at construction.
     */
    void apply(std::span<float> weights, std::span<const float> gradient);

    /** Snapshot of the optimizer state (for checkpointing). */
    struct State
    {
        std::uint64_t step = 0;
        std::vector<float> slot1;
        std::vector<float> slot2;
    };

    State saveState() const;
    void restoreState(const State &state);

  private:
    OptimizerParams params_;
    std::size_t elements_;
    std::uint64_t step_ = 0;
    std::vector<float> slot1_; //!< momentum / Adam m
    std::vector<float> slot2_; //!< Adam v
};

} // namespace coarse::dl

#endif // COARSE_DL_OPTIMIZER_HH
