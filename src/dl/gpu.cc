#include "gpu.hh"

#include "sim/logging.hh"

namespace coarse::dl {

GpuSpec
gpuSpec(const std::string &name)
{
    GpuSpec spec;
    spec.name = name;
    if (name == "T4") {
        spec.fp32Tflops = 8.1;
        spec.memBytes = std::uint64_t(16) << 30;
        spec.memBytesPerSec = 300e9;
        return spec;
    }
    if (name == "P100") {
        spec.fp32Tflops = 9.3;
        spec.memBytes = std::uint64_t(16) << 30;
        spec.memBytesPerSec = 720e9;
        return spec;
    }
    if (name == "V100") {
        spec.fp32Tflops = 15.7;
        spec.memBytes = std::uint64_t(16) << 30;
        spec.memBytesPerSec = 900e9;
        return spec;
    }
    sim::fatal("gpuSpec: unknown GPU '", name,
               "' (expected T4, P100, or V100)");
}

} // namespace coarse::dl
