/**
 * @file
 * Common interface for training-communication schemes (COARSE and the
 * baselines), plus the report they all produce.
 */

#ifndef COARSE_DL_TRAINER_HH
#define COARSE_DL_TRAINER_HH

#include <cstdint>
#include <string>

namespace coarse::dl {

/** Aggregate result of a simulated training run. */
struct TrainingReport
{
    std::string scheme;
    std::string model;
    std::string machine;
    std::uint32_t workers = 0;
    std::uint32_t batchSize = 0;
    std::uint32_t iterations = 0;

    /** Steady-state average time per iteration (seconds). */
    double iterationSeconds = 0.0;
    /** Per-iteration compute time (forward + backward). */
    double computeSeconds = 0.0;
    /**
     * Per-iteration time the GPUs sit idle waiting on parameter
     * synchronization (the paper's "blocked communication time").
     */
    double blockedCommSeconds = 0.0;
    /** computeSeconds / iterationSeconds. */
    double gpuUtilization = 0.0;
    /** Samples per second across all workers. */
    double throughputSamplesPerSec = 0.0;
    /** Total bytes moved on the fabric during the measured window. */
    std::uint64_t fabricBytes = 0;
    /** True when synchronization wedged (FCFS deadlock demo). */
    bool deadlocked = false;
};

/** A training-communication scheme driving the simulated cluster. */
class Trainer
{
  public:
    virtual ~Trainer() = default;

    /** Scheme name ("DENSE", "AllReduce", "COARSE", ...). */
    virtual std::string name() const = 0;

    /**
     * Simulate @p iterations training iterations (after @p warmup
     * unmeasured ones) and report steady-state metrics.
     */
    virtual TrainingReport run(std::uint32_t iterations,
                               std::uint32_t warmup = 2) = 0;
};

} // namespace coarse::dl

#endif // COARSE_DL_TRAINER_HH
