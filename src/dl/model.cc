#include "model.hh"

#include "sim/logging.hh"

namespace coarse::dl {

std::uint64_t
ModelSpec::parameterCount() const
{
    std::uint64_t total = 0;
    for (const auto &t : tensors)
        total += t.elements;
    return total;
}

std::uint64_t
ModelSpec::parameterBytes() const
{
    return parameterCount() * 4;
}

double
ModelSpec::prefixBytesFraction(std::size_t i) const
{
    if (i >= tensors.size())
        sim::fatal("ModelSpec: tensor index ", i, " out of range");
    const double total = static_cast<double>(parameterBytes());
    if (total == 0.0)
        return 0.0;
    std::uint64_t prefix = 0;
    for (std::size_t k = 0; k <= i; ++k)
        prefix += tensors[k].bytes();
    return static_cast<double>(prefix) / total;
}

std::uint64_t
gpuMemoryNeeded(const ModelSpec &model, std::uint32_t batchSize,
                const TrainingStateModel &state)
{
    const double perParam = state.weightBytesPerParam
        + state.gradBytesPerParam + state.optimizerBytesPerParam;
    const double stateBytes =
        perParam * static_cast<double>(model.parameterCount());
    return static_cast<std::uint64_t>(stateBytes)
        + std::uint64_t(batchSize) * model.activationBytesPerSample
        + model.workspaceBytes;
}

std::uint32_t
maxBatchSize(const ModelSpec &model, std::uint64_t gpuMemBytes,
             const TrainingStateModel &state)
{
    std::uint32_t batch = 0;
    while (batch < 65536
           && gpuMemoryNeeded(model, batch + 1, state) <= gpuMemBytes)
        ++batch;
    return batch;
}

TrainingStateModel
residentStateModel()
{
    return TrainingStateModel{4.0, 4.0, 8.0};
}

TrainingStateModel
offloadedStateModel()
{
    // Weights and gradients stay on the GPU; the optimizer state and
    // master copies live in the disaggregated memory pool.
    return TrainingStateModel{4.0, 4.0, 0.0};
}

} // namespace coarse::dl
