#include "optimizer.hh"

#include <cmath>

#include "sim/logging.hh"

namespace coarse::dl {

const char *
optimizerName(OptimizerKind kind)
{
    switch (kind) {
      case OptimizerKind::Sgd:
        return "sgd";
      case OptimizerKind::Momentum:
        return "momentum";
      case OptimizerKind::Adam:
        return "adam";
    }
    return "?";
}

std::uint64_t
optimizerStateBytesPerParam(OptimizerKind kind)
{
    switch (kind) {
      case OptimizerKind::Sgd:
        return 0;
      case OptimizerKind::Momentum:
        return 4;
      case OptimizerKind::Adam:
        return 8;
    }
    return 0;
}

TrainingStateModel
residentStateModel(OptimizerKind kind)
{
    TrainingStateModel model;
    model.weightBytesPerParam = 4.0;
    model.gradBytesPerParam = 4.0;
    model.optimizerBytesPerParam =
        static_cast<double>(optimizerStateBytesPerParam(kind));
    return model;
}

TrainingStateModel
offloadedStateModel(OptimizerKind kind)
{
    (void)kind; // state lives on the memory devices regardless
    TrainingStateModel model;
    model.weightBytesPerParam = 4.0;
    model.gradBytesPerParam = 4.0;
    model.optimizerBytesPerParam = 0.0;
    return model;
}

Optimizer::Optimizer(OptimizerParams params, std::size_t elements)
    : params_(params), elements_(elements)
{
    if (elements == 0)
        sim::fatal("Optimizer: zero elements");
    switch (params_.kind) {
      case OptimizerKind::Sgd:
        break;
      case OptimizerKind::Momentum:
        slot1_.assign(elements, 0.0f);
        break;
      case OptimizerKind::Adam:
        slot1_.assign(elements, 0.0f);
        slot2_.assign(elements, 0.0f);
        break;
    }
}

Optimizer::State
Optimizer::saveState() const
{
    return State{step_, slot1_, slot2_};
}

void
Optimizer::restoreState(const State &state)
{
    if (state.slot1.size() != slot1_.size()
        || state.slot2.size() != slot2_.size())
        sim::fatal("Optimizer: restoring mismatched state");
    step_ = state.step;
    slot1_ = state.slot1;
    slot2_ = state.slot2;
}

void
Optimizer::apply(std::span<float> weights,
                 std::span<const float> gradient)
{
    if (weights.size() != elements_ || gradient.size() != elements_)
        sim::fatal("Optimizer: span size mismatch");
    ++step_;
    const auto lr = static_cast<float>(params_.learningRate);

    switch (params_.kind) {
      case OptimizerKind::Sgd:
        for (std::size_t e = 0; e < elements_; ++e)
            weights[e] -= lr * gradient[e];
        return;

      case OptimizerKind::Momentum: {
        const auto mu = static_cast<float>(params_.momentum);
        for (std::size_t e = 0; e < elements_; ++e) {
            slot1_[e] = mu * slot1_[e] + gradient[e];
            weights[e] -= lr * slot1_[e];
        }
        return;
      }

      case OptimizerKind::Adam: {
        const auto b1 = static_cast<float>(params_.beta1);
        const auto b2 = static_cast<float>(params_.beta2);
        const auto eps = static_cast<float>(params_.epsilon);
        const auto t = static_cast<double>(step_);
        const auto correct1 =
            static_cast<float>(1.0 - std::pow(params_.beta1, t));
        const auto correct2 =
            static_cast<float>(1.0 - std::pow(params_.beta2, t));
        for (std::size_t e = 0; e < elements_; ++e) {
            const float g = gradient[e];
            slot1_[e] = b1 * slot1_[e] + (1.0f - b1) * g;
            slot2_[e] = b2 * slot2_[e] + (1.0f - b2) * g * g;
            const float mhat = slot1_[e] / correct1;
            const float vhat = slot2_[e] / correct2;
            weights[e] -= lr * mhat / (std::sqrt(vhat) + eps);
        }
        return;
      }
    }
}

} // namespace coarse::dl
