/**
 * @file
 * Dataset descriptors for the paper's workloads, used to convert
 * per-iteration throughput into epoch / time-to-train figures.
 */

#ifndef COARSE_DL_DATASET_HH
#define COARSE_DL_DATASET_HH

#include <cstdint>
#include <string>

#include "trainer.hh"

namespace coarse::dl {

/** A training dataset (size only — contents are out of scope). */
struct Dataset
{
    std::string name;
    /** Training examples per epoch. */
    std::uint64_t samples = 0;
    /** Typical epochs to convergence for the paper's workloads. */
    std::uint32_t typicalEpochs = 1;
};

/** ImageNet-1k classification training split. */
Dataset imagenet();

/** SQuAD v1.1 fine-tuning training split. */
Dataset squad();

/** Dataset the paper pairs with @p modelName. */
Dataset datasetFor(const std::string &modelName);

/** Seconds per epoch at a report's measured throughput. */
double epochSeconds(const TrainingReport &report,
                    const Dataset &dataset);

/** Seconds to the dataset's typical convergence point. */
double timeToTrainSeconds(const TrainingReport &report,
                          const Dataset &dataset);

} // namespace coarse::dl

#endif // COARSE_DL_DATASET_HH
