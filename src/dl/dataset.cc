#include "dataset.hh"

#include "sim/logging.hh"

namespace coarse::dl {

Dataset
imagenet()
{
    return Dataset{"imagenet", 1281167, 90};
}

Dataset
squad()
{
    return Dataset{"squad_v1.1", 87599, 2};
}

Dataset
datasetFor(const std::string &modelName)
{
    if (modelName == "resnet50" || modelName == "vgg16")
        return imagenet();
    if (modelName == "bert_base" || modelName == "bert_large")
        return squad();
    if (modelName == "gpt2_medium") {
        // WebText-scale token budget expressed as "samples".
        return Dataset{"webtext", 8000000, 1};
    }
    sim::fatal("datasetFor: no dataset mapping for model '", modelName,
               "'");
}

double
epochSeconds(const TrainingReport &report, const Dataset &dataset)
{
    if (report.throughputSamplesPerSec <= 0.0)
        sim::fatal("epochSeconds: report has no throughput");
    return static_cast<double>(dataset.samples)
        / report.throughputSamplesPerSec;
}

double
timeToTrainSeconds(const TrainingReport &report, const Dataset &dataset)
{
    return epochSeconds(report, dataset)
        * static_cast<double>(dataset.typicalEpochs);
}

} // namespace coarse::dl
