/**
 * @file
 * Worker GPU compute model.
 */

#ifndef COARSE_DL_GPU_HH
#define COARSE_DL_GPU_HH

#include <cstdint>
#include <string>

namespace coarse::dl {

/** Static GPU characteristics (public vendor specs). */
struct GpuSpec
{
    std::string name;
    /** Peak FP32 throughput. */
    double fp32Tflops = 0.0;
    /** On-device memory capacity. */
    std::uint64_t memBytes = 0;
    /** On-device memory bandwidth. */
    double memBytesPerSec = 0.0;
    /** Fraction of peak FLOPs training kernels sustain at large batch. */
    double computeEfficiency = 0.45;
    /**
     * Small batches under-fill the SMs; sustained throughput scales
     * as batch/(batch + batchHalfSaturation). This is why doubling
     * the per-GPU batch (Fig. 16e) buys more than constant-comm
     * amortization.
     */
    double batchHalfSaturation = 1.0;

    /**
     * Reduction throughput when the GPU itself sums gradients
     * (AllReduce baseline): memory-bandwidth bound at about a third
     * of the device bandwidth (two reads + one write per element).
     */
    double
    reduceBytesPerSec() const
    {
        return memBytesPerSec / 3.0;
    }

    /** Sustained training FLOPs at batch size @p batch. */
    double
    effectiveFlops(std::uint32_t batch) const
    {
        const double fill = static_cast<double>(batch)
            / (static_cast<double>(batch) + batchHalfSaturation);
        return fp32Tflops * 1e12 * computeEfficiency * fill;
    }
};

/** Look up a GPU by model name ("T4", "P100", "V100"). */
GpuSpec gpuSpec(const std::string &name);

} // namespace coarse::dl

#endif // COARSE_DL_GPU_HH
