/**
 * @file
 * Slab/free-list pool of one-shot events.
 *
 * The pool exists so dynamic one-shot work — "run this callable at
 * tick T" — costs no allocation on the steady state: a PooledEvent is
 * taken from the free list, the callable is constructed into the
 * event's embedded storage (callables up to kInlineBytes never touch
 * the heap), and the event returns to the free list the moment it
 * fires or is cancelled. Slabs only grow when the number of
 * *concurrently pending* one-shots exceeds every previous high-water
 * mark; a steady simulation reuses the same events forever.
 */

#ifndef COARSE_SIM_EVENT_POOL_HH
#define COARSE_SIM_EVENT_POOL_HH

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "event.hh"

namespace coarse::sim {

class EventPool;

/**
 * A pool-owned one-shot event. Do not create these directly — they
 * come from EventPool::acquire() and give themselves back when they
 * fire or are cancelled. The embedded storage means a scheduled
 * callable lives *inside* the event object, not behind a pointer.
 *
 * Layout is deliberate: the event is exactly two cache lines and
 * 64-byte aligned, with the Event header, the op pointer, and the
 * first 16 bytes of callable storage all in the first line. Pool
 * traffic, not instruction count, dominates the schedule path when
 * many one-shots are in flight, and a small capture (a this-pointer
 * and a word or two — the common case) makes the whole
 * acquire/schedule/fire/release cycle touch a single line per event.
 */
class alignas(64) PooledEvent final : public Event
{
  public:
    /** Callables at most this large are stored inline. */
    static constexpr std::size_t kInlineBytes = 80;

    PooledEvent() = default;
    ~PooledEvent() override;

    const char *name() const override { return "one-shot"; }

  protected:
    void fire() override;
    void recycle() override;

  private:
    friend class EventPool;

    /** What opAs() should do with the stored callable. */
    enum class Op { kRun, kDrop };

    template <class Fn>
    static constexpr bool kInlinable =
        sizeof(Fn) <= kInlineBytes
        && alignof(Fn) <= alignof(std::max_align_t);

    template <class F>
    void
    emplace(F &&fn)
    {
        using Fn = std::decay_t<F>;
        static_assert(
            alignof(Fn) <= __STDCPP_DEFAULT_NEW_ALIGNMENT__,
            "over-aligned callables are not supported by the event pool");
        if constexpr (kInlinable<Fn>) {
            new (static_cast<void *>(storage_)) Fn(std::forward<F>(fn));
        } else {
            // Oversized callable: heap block, pointer parked at the
            // front of the inline storage.
            Fn *mem = static_cast<Fn *>(::operator new(sizeof(Fn)));
            new (mem) Fn(std::forward<F>(fn));
            new (static_cast<void *>(storage_)) (Fn *)(mem);
        }
        op_ = &opAs<Fn>;
    }

    /**
     * Type-erased operation on the stored callable; a single pointer
     * covers both paths to keep the event small. kRun moves the
     * callable out and frees the slot *before* invoking, so the
     * callable may immediately re-post and reuse this very event.
     * kDrop destroys it in place without invoking.
     */
    template <class Fn>
    static void
    opAs(PooledEvent &self, Op op)
    {
        Fn *stored;
        if constexpr (kInlinable<Fn>) {
            stored = std::launder(reinterpret_cast<Fn *>(self.storage_));
        } else {
            stored = *std::launder(
                reinterpret_cast<Fn **>(self.storage_));
        }
        if (op == Op::kRun) {
            Fn fn(std::move(*stored));
            stored->~Fn();
            if constexpr (!kInlinable<Fn>)
                ::operator delete(stored);
            self.release();
            fn();
        } else {
            stored->~Fn();
            if constexpr (!kInlinable<Fn>)
                ::operator delete(stored);
        }
    }

    /** Forget the (already destroyed) callable, rejoin the free list. */
    void release();

    void (*op_)(PooledEvent &, Op) = nullptr;
    /**
     * The free-list link overlays the callable storage: an event on
     * the free list by definition holds no callable.
     */
    union {
        PooledEvent *nextFree_ = nullptr;
        alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
    };
};

/**
 * Grows in slabs, never shrinks, hands out events in LIFO order (the
 * hottest event is the one most recently returned — its lines are
 * still in cache). Slab memory is stable for the pool's lifetime, so
 * stale heap entries may safely inspect a recycled event's generation.
 */
class EventPool
{
  public:
    EventPool() = default;
    ~EventPool();

    EventPool(const EventPool &) = delete;
    EventPool &operator=(const EventPool &) = delete;

    /** Take an event and construct @p fn into it. */
    template <class F>
    PooledEvent *
    acquire(F &&fn)
    {
        PooledEvent *ev;
        if (freeList_ != nullptr) {
            ev = freeList_;
            freeList_ = ev->nextFree_;
        } else {
            // Slabs are raw memory; events are constructed on first
            // use, right before emplace() fills the same cache line.
            // Constructing a whole slab eagerly would write every
            // event's line long before its first acquire, paying the
            // cold-miss traffic twice.
            if (bump_ == bumpEnd_)
                grow();
            ev = new (static_cast<void *>(bump_)) PooledEvent;
            ++bump_;
        }
        ev->emplace(std::forward<F>(fn));
        ++inUse_;
        return ev;
    }

    /** Total events across all slabs (the high-water mark, rounded). */
    std::size_t capacity() const { return capacity_; }

    /** Events currently out of the free list. */
    std::size_t inUse() const { return inUse_; }

  private:
    friend class PooledEvent;

    static constexpr std::size_t kSlabEvents = 256;

    /** Frees a slab's raw storage (events destroyed by ~EventPool). */
    struct SlabDeleter
    {
        void
        operator()(PooledEvent *slab) const
        {
            ::operator delete(static_cast<void *>(slab),
                              std::align_val_t(alignof(PooledEvent)));
        }
    };

    void grow();

    /** Return @p ev to the free list (its callable is already gone). */
    void
    put(PooledEvent *ev)
    {
        ev->nextFree_ = freeList_;
        freeList_ = ev;
        --inUse_;
    }

    std::vector<std::unique_ptr<PooledEvent, SlabDeleter>> slabs_;
    PooledEvent *freeList_ = nullptr;
    /** Next never-constructed slot in the newest slab. */
    PooledEvent *bump_ = nullptr;
    PooledEvent *bumpEnd_ = nullptr;
    std::size_t capacity_ = 0;
    std::size_t inUse_ = 0;
};

} // namespace coarse::sim

#endif // COARSE_SIM_EVENT_POOL_HH
