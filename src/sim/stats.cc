#include "stats.hh"

#include "logging.hh"

namespace coarse::sim {

void
Distribution::sample(double value)
{
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    total_ += value;
    ++count_;
}

void
Distribution::reset()
{
    count_ = 0;
    total_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0)
{
    if (hi <= lo)
        fatal("Histogram: hi (", hi, ") must exceed lo (", lo, ")");
    if (buckets == 0)
        fatal("Histogram: need at least one bucket");
}

void
Histogram::sample(double value)
{
    ++samples_;
    if (value < lo_) {
        ++underflow_;
        return;
    }
    if (value >= hi_) {
        ++overflow_;
        return;
    }
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    auto index = static_cast<std::size_t>((value - lo_) / width);
    index = std::min(index, counts_.size() - 1);
    ++counts_[index];
}

double
Histogram::bucketLow(std::size_t i) const
{
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + width * static_cast<double>(i);
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    underflow_ = 0;
    overflow_ = 0;
    samples_ = 0;
}

StatGroup &
StatGroup::subgroup(const std::string &name)
{
    auto it = children_.find(name);
    if (it == children_.end()) {
        if (values_.count(name)) {
            panic("StatGroup ", name_, ": subgroup '", name,
                  "' collides with a registered stat");
        }
        it = children_.emplace(name, std::make_unique<StatGroup>(name))
                 .first;
    }
    return *it->second;
}

void
StatGroup::registerValue(const std::string &name,
                         std::function<double()> fn)
{
    if (values_.count(name) || children_.count(name)) {
        panic("StatGroup ", name_, ": duplicate stat name '", name,
              "'");
    }
    values_[name] = std::move(fn);
}

void
StatGroup::addCounter(const std::string &name, const Counter &counter)
{
    registerValue(name, [&counter] {
        return static_cast<double>(counter.value());
    });
}

void
StatGroup::addScalar(const std::string &name, const Scalar &scalar)
{
    registerValue(name, [&scalar] { return scalar.value(); });
}

void
StatGroup::addDistribution(const std::string &name, const Distribution &dist)
{
    registerValue(name + ".mean", [&dist] { return dist.mean(); });
    registerValue(name + ".min", [&dist] { return dist.min(); });
    registerValue(name + ".max", [&dist] { return dist.max(); });
    registerValue(name + ".count", [&dist] {
        return static_cast<double>(dist.count());
    });
    registerValue(name + ".total", [&dist] { return dist.total(); });
}

void
StatGroup::addFormula(const std::string &name, std::function<double()> fn)
{
    registerValue(name, std::move(fn));
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    const std::string path =
        prefix.empty() ? name_ : prefix + "." + name_;
    for (const auto &[name, fn] : values_)
        os << path << "." << name << " " << fn() << "\n";
    for (const auto &[name, child] : children_)
        child->dump(os, path);
}

double
StatGroup::lookup(const std::string &dottedPath) const
{
    const auto dot = dottedPath.find('.');
    if (dot == std::string::npos) {
        auto it = values_.find(dottedPath);
        if (it == values_.end())
            fatal("StatGroup ", name_, ": no stat named ", dottedPath);
        return it->second();
    }
    const std::string head = dottedPath.substr(0, dot);
    const std::string rest = dottedPath.substr(dot + 1);
    auto child = children_.find(head);
    if (child != children_.end())
        return child->second->lookup(rest);
    // Distributions register dotted leaf names (e.g. "lat.mean").
    auto it = values_.find(dottedPath);
    if (it == values_.end())
        fatal("StatGroup ", name_, ": no stat named ", dottedPath);
    return it->second();
}

} // namespace coarse::sim
