/**
 * @file
 * Logging and error reporting.
 *
 * Follows the gem5 convention: fatal() reports a condition caused by
 * the user (bad configuration, impossible request) and panic() reports
 * an internal invariant violation (a simulator bug). Both raise typed
 * exceptions so the conditions are testable; neither aborts the
 * process directly.
 */

#ifndef COARSE_SIM_LOGGING_HH
#define COARSE_SIM_LOGGING_HH

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace coarse::sim {

/** Raised by fatal(): a user error the simulation cannot recover from. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what)
        : std::runtime_error(what) {}
};

/** Raised by panic(): an internal invariant violation (a bug). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &what)
        : std::logic_error(what) {}
};

/** Verbosity levels for trace output. */
enum class LogLevel { None = 0, Warn = 1, Info = 2, Debug = 3, Trace = 4 };

/** Read the global log level (initialized from $COARSE_LOG). */
LogLevel logLevel();

/** Override the global log level. */
void setLogLevel(LogLevel level);

namespace detail {

void emitLog(LogLevel level, const std::string &component,
             const std::string &message);

template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

/** The event queue's current tick, or nullptr outside of event dispatch. */
const std::uint64_t *activeTick();
void setActiveTick(const std::uint64_t *tick);

/** Append " (at tick N)" to @p message while an event queue is active. */
std::string decorate(std::string message);

} // namespace detail

/**
 * RAII marker that an event queue is dispatching: fatal() and panic()
 * messages raised inside the scope carry the simulated tick, which
 * pinpoints *when* an error fired — essential once fault injection
 * makes errors time-dependent. Scopes nest; the innermost wins.
 */
class TickScope
{
  public:
    explicit TickScope(const std::uint64_t *tick)
        : previous_(detail::activeTick())
    {
        detail::setActiveTick(tick);
    }

    ~TickScope() { detail::setActiveTick(previous_); }

    TickScope(const TickScope &) = delete;
    TickScope &operator=(const TickScope &) = delete;

  private:
    const std::uint64_t *previous_;
};

/** Report an unrecoverable user error. Always throws FatalError. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    throw FatalError(
        detail::decorate(detail::concat(std::forward<Args>(args)...)));
}

/** Report an internal invariant violation. Always throws PanicError. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    throw PanicError(
        detail::decorate(detail::concat(std::forward<Args>(args)...)));
}

/**
 * Component-scoped logger. Cheap to construct; emits only when the
 * global level admits the message.
 */
class Logger
{
  public:
    explicit Logger(std::string component)
        : component_(std::move(component)) {}

    template <typename... Args>
    void
    warn(Args &&...args) const
    {
        log(LogLevel::Warn, std::forward<Args>(args)...);
    }

    template <typename... Args>
    void
    info(Args &&...args) const
    {
        log(LogLevel::Info, std::forward<Args>(args)...);
    }

    template <typename... Args>
    void
    debug(Args &&...args) const
    {
        log(LogLevel::Debug, std::forward<Args>(args)...);
    }

    template <typename... Args>
    void
    trace(Args &&...args) const
    {
        log(LogLevel::Trace, std::forward<Args>(args)...);
    }

    const std::string &component() const { return component_; }

  private:
    template <typename... Args>
    void
    log(LogLevel level, Args &&...args) const
    {
        if (static_cast<int>(level) <= static_cast<int>(logLevel())) {
            detail::emitLog(level, component_,
                            detail::concat(std::forward<Args>(args)...));
        }
    }

    std::string component_;
};

} // namespace coarse::sim

#endif // COARSE_SIM_LOGGING_HH
