#include "logging.hh"

#include <cstdlib>
#include <iostream>
#include <mutex>

namespace coarse::sim {

namespace {

LogLevel
initialLevel()
{
    const char *env = std::getenv("COARSE_LOG");
    if (env == nullptr)
        return LogLevel::Warn;
    const std::string value(env);
    if (value == "none")
        return LogLevel::None;
    if (value == "warn")
        return LogLevel::Warn;
    if (value == "info")
        return LogLevel::Info;
    if (value == "debug")
        return LogLevel::Debug;
    if (value == "trace")
        return LogLevel::Trace;
    return LogLevel::Warn;
}

LogLevel &
levelStorage()
{
    static LogLevel level = initialLevel();
    return level;
}

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::None:
        return "none";
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Info:
        return "info";
      case LogLevel::Debug:
        return "debug";
      case LogLevel::Trace:
        return "trace";
    }
    return "?";
}

} // namespace

LogLevel
logLevel()
{
    return levelStorage();
}

void
setLogLevel(LogLevel level)
{
    levelStorage() = level;
}

namespace detail {

namespace {

const std::uint64_t *&
activeTickStorage()
{
    thread_local const std::uint64_t *tick = nullptr;
    return tick;
}

} // namespace

const std::uint64_t *
activeTick()
{
    return activeTickStorage();
}

void
setActiveTick(const std::uint64_t *tick)
{
    activeTickStorage() = tick;
}

std::string
decorate(std::string message)
{
    if (const std::uint64_t *tick = activeTick()) {
        message += " (at tick ";
        message += std::to_string(*tick);
        message += ")";
    }
    return message;
}

void
emitLog(LogLevel level, const std::string &component,
        const std::string &message)
{
    static std::mutex mutex;
    std::lock_guard<std::mutex> guard(mutex);
    std::cerr << "[" << levelName(level) << "] " << component << ": "
              << message << "\n";
}

} // namespace detail

} // namespace coarse::sim
