#include "logging.hh"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace coarse::sim {

namespace {

LogLevel
initialLevel()
{
    const char *env = std::getenv("COARSE_LOG");
    if (env == nullptr)
        return LogLevel::Warn;
    const std::string value(env);
    if (value == "none")
        return LogLevel::None;
    if (value == "warn")
        return LogLevel::Warn;
    if (value == "info")
        return LogLevel::Info;
    if (value == "debug")
        return LogLevel::Debug;
    if (value == "trace")
        return LogLevel::Trace;
    return LogLevel::Warn;
}

// Atomic (relaxed) so sweep replicas on pool threads may read the
// level while a test on the main thread adjusts it; the level is
// process-wide policy, not per-simulation state.
std::atomic<LogLevel> &
levelStorage()
{
    static std::atomic<LogLevel> level{initialLevel()};
    return level;
}

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::None:
        return "none";
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Info:
        return "info";
      case LogLevel::Debug:
        return "debug";
      case LogLevel::Trace:
        return "trace";
    }
    return "?";
}

} // namespace

LogLevel
logLevel()
{
    return levelStorage().load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    levelStorage().store(level, std::memory_order_relaxed);
}

namespace detail {

namespace {

const std::uint64_t *&
activeTickStorage()
{
    thread_local const std::uint64_t *tick = nullptr;
    return tick;
}

} // namespace

const std::uint64_t *
activeTick()
{
    return activeTickStorage();
}

void
setActiveTick(const std::uint64_t *tick)
{
    activeTickStorage() = tick;
}

std::string
decorate(std::string message)
{
    if (const std::uint64_t *tick = activeTick()) {
        message += " (at tick ";
        message += std::to_string(*tick);
        message += ")";
    }
    return message;
}

void
emitLog(LogLevel level, const std::string &component,
        const std::string &message)
{
    static std::mutex mutex;
    std::lock_guard<std::mutex> guard(mutex);
    std::cerr << "[" << levelName(level) << "] " << component << ": "
              << message << "\n";
}

} // namespace detail

} // namespace coarse::sim
