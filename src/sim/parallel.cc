#include "parallel.hh"

#include "logging.hh"

namespace coarse::sim {

unsigned
ThreadPool::resolveThreads(unsigned requested)
{
    if (requested != 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned threads)
{
    threads = resolveThreads(threads);
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.push_back(std::make_unique<Worker>());
    threads_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> guard(stateMutex_);
        stop_ = true;
    }
    workCv_.notify_all();
    for (std::thread &thread : threads_)
        thread.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    if (!task)
        panic("ThreadPool::submit: empty task");
    pending_.fetch_add(1, std::memory_order_relaxed);
    // Deal round-robin: with K up-front submissions the deques start
    // balanced, and stealing evens out whatever skew the jobs' actual
    // runtimes introduce.
    const unsigned target = nextDeal_.fetch_add(
        1, std::memory_order_relaxed) % workers_.size();
    {
        Worker &worker = *workers_[target];
        std::lock_guard<std::mutex> guard(worker.mutex);
        worker.queue.push_back(std::move(task));
    }
    // The epoch bump under stateMutex_ closes the missed-wakeup race:
    // a worker that scanned every deque empty re-checks the epoch
    // under the same mutex before sleeping.
    {
        std::lock_guard<std::mutex> guard(stateMutex_);
        ++workEpoch_;
    }
    workCv_.notify_all();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(stateMutex_);
    idleCv_.wait(lock, [this] {
        return pending_.load(std::memory_order_acquire) == 0;
    });
}

bool
ThreadPool::tryPopOwn(unsigned self, std::function<void()> &task)
{
    Worker &worker = *workers_[self];
    std::lock_guard<std::mutex> guard(worker.mutex);
    if (worker.queue.empty())
        return false;
    task = std::move(worker.queue.front());
    worker.queue.pop_front();
    return true;
}

bool
ThreadPool::trySteal(unsigned self, std::function<void()> &task)
{
    const std::size_t n = workers_.size();
    // Scan victims starting just past ourselves so concurrent thieves
    // spread across different victims instead of convoying on worker 0.
    for (std::size_t offset = 1; offset < n; ++offset) {
        Worker &victim = *workers_[(self + offset) % n];
        std::lock_guard<std::mutex> guard(victim.mutex);
        if (victim.queue.empty())
            continue;
        task = std::move(victim.queue.back());
        victim.queue.pop_back();
        steals_.fetch_add(1, std::memory_order_relaxed);
        return true;
    }
    return false;
}

void
ThreadPool::runTask(std::function<void()> &task)
{
    task();
    task = nullptr;
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last task out: take the mutex so the notify cannot slip
        // between wait()'s predicate check and its sleep.
        std::lock_guard<std::mutex> guard(stateMutex_);
        idleCv_.notify_all();
    }
}

void
ThreadPool::workerLoop(unsigned self)
{
    std::function<void()> task;
    for (;;) {
        std::uint64_t epochSeen;
        {
            std::lock_guard<std::mutex> guard(stateMutex_);
            epochSeen = workEpoch_;
        }
        if (tryPopOwn(self, task) || trySteal(self, task)) {
            runTask(task);
            continue;
        }
        std::unique_lock<std::mutex> lock(stateMutex_);
        if (stop_)
            return;
        if (workEpoch_ != epochSeen)
            continue; // Work arrived between the scan and the lock.
        workCv_.wait(lock, [this, epochSeen] {
            return stop_ || workEpoch_ != epochSeen;
        });
        if (stop_)
            return;
    }
}

} // namespace coarse::sim
