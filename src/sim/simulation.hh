/**
 * @file
 * Simulation context shared by all simulated components.
 */

#ifndef COARSE_SIM_SIMULATION_HH
#define COARSE_SIM_SIMULATION_HH

#include <memory>
#include <string>

#include "event_queue.hh"
#include "random.hh"
#include "stats.hh"
#include "ticks.hh"

namespace coarse::sim {

/**
 * Owns the event queue, root stat group, and RNG for one simulated
 * system. Components keep a reference to the Simulation that created
 * them; the Simulation must outlive all components.
 */
class Simulation
{
  public:
    explicit Simulation(std::uint64_t seed = 1)
        : stats_("sim"), random_(seed) {}

    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    EventQueue &events() { return events_; }
    const EventQueue &events() const { return events_; }

    StatGroup &stats() { return stats_; }
    Random &random() { return random_; }

    /** Current simulated time. */
    Tick now() const { return events_.now(); }

    /** Run until the event queue drains or @p limit passes. */
    std::uint64_t run(Tick limit = kMaxTick) { return events_.run(limit); }

  private:
    EventQueue events_;
    StatGroup stats_;
    Random random_;
};

} // namespace coarse::sim

#endif // COARSE_SIM_SIMULATION_HH
