#include "event.hh"

#include "event_queue.hh"
#include "logging.hh"

namespace coarse::sim {

Event::~Event()
{
    // An armed event (or one with stale heap entries) is about to
    // leave dangling pointers inside its queue; scrub them. This is
    // O(pending) and only expected on teardown paths.
    if ((armed_ || heapRefs_ != 0) && queue_ != nullptr)
        queue_->purge(*this);
}

void
PeriodicEvent::bind(Callback callback, void *owner)
{
    if (scheduled())
        panic("PeriodicEvent: rebinding while armed");
    callback_ = callback;
    owner_ = owner;
}

void
PeriodicEvent::setInterval(Tick interval)
{
    if (interval == 0)
        panic("PeriodicEvent: interval must be positive");
    interval_ = interval;
}

void
PeriodicEvent::start(EventQueue &queue, EventPriority priority)
{
    startAt(queue, queue.now() + interval_, priority);
}

void
PeriodicEvent::startAt(EventQueue &queue, Tick first,
                       EventPriority priority)
{
    if (callback_ == nullptr)
        panic("PeriodicEvent: starting without a callback");
    if (interval_ == 0)
        panic("PeriodicEvent: starting with a zero interval");
    rearmPriority_ = priority;
    queue.schedule(*this, first, priority);
}

void
PeriodicEvent::stop()
{
    if (scheduled())
        queue()->deschedule(*this);
}

void
PeriodicEvent::fire()
{
    ++firings_;
    // Re-arm first so the callback may stop() or retune the period.
    queue()->schedule(*this, queue()->now() + interval_,
                      rearmPriority_);
    callback_(owner_);
}

} // namespace coarse::sim
