/**
 * @file
 * Intrusive simulation events.
 *
 * An Event is a reusable, caller-owned object the EventQueue schedules
 * by pointer: arming one costs a heap push and nothing else — no
 * std::function capture, no shared_ptr control block. The lifecycle is
 *
 *     armed --(fires)--> idle --(schedule)--> armed --> ...
 *
 * and a generation counter makes cancellation safe: descheduling bumps
 * the generation, so the entry still sitting in the queue's heap is
 * recognized as stale and dropped when it surfaces, in O(1), without
 * touching the heap's interior.
 *
 * Components pre-allocate their recurring events as members
 * (MemberEvent binds a method, LambdaEvent a callable fixed at
 * construction); dynamic one-shot work goes through the queue's
 * slab-backed EventPool (see event_pool.hh) via EventQueue::post().
 */

#ifndef COARSE_SIM_EVENT_HH
#define COARSE_SIM_EVENT_HH

#include <cstdint>
#include <utility>

#include "ticks.hh"

namespace coarse::sim {

/** Scheduling priority; lower values execute first within a tick. */
using EventPriority = std::int32_t;

constexpr EventPriority kDefaultPriority = 0;

class EventQueue;

/**
 * Base class for everything the EventQueue can schedule.
 *
 * Ownership rules: the scheduler never owns an Event. An Event must
 * outlive any arming; destroying one that is still armed (or still
 * referenced by a stale heap entry) purges it from its queue first,
 * which is safe but O(pending) — drain or deschedule explicitly on
 * hot teardown paths.
 */
class Event
{
  public:
    Event() = default;

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    virtual ~Event();

    /** True while armed (scheduled and not yet fired or cancelled). */
    bool scheduled() const { return armed_; }

    /** Tick this event is armed for (meaningful while scheduled()). */
    Tick when() const { return when_; }

    /** Priority of the current arming. */
    EventPriority priority() const { return priority_; }

    /** Short label for tracing. */
    virtual const char *name() const { return "event"; }

  protected:
    /** Invoked by the queue when the event's tick arrives. */
    virtual void fire() = 0;

    /**
     * Invoked by the queue after an external cancellation
     * (EventQueue::deschedule or EventHandle::cancel). Pool-owned
     * events override this to return themselves to their free list;
     * caller-owned events need not care.
     */
    virtual void recycle() {}

    /** Queue of the most recent arming (nullptr before the first). */
    EventQueue *queue() const { return queue_; }

  private:
    friend class EventQueue;
    friend class EventHandle;

    Tick when_ = 0;
    EventQueue *queue_ = nullptr;
    /**
     * Incremented whenever an arming ends (fire or deschedule). Heap
     * entries snapshot the generation at arm time; a mismatch marks
     * the entry stale. 32 bits suffice: a false match would need the
     * same event re-armed 2^32 times while a stale reference to it
     * still existed, which cannot happen because every arming adds a
     * heap entry of its own.
     */
    std::uint32_t generation_ = 0;
    EventPriority priority_ = kDefaultPriority;
    /** Heap entries (live or stale) still pointing at this event. */
    std::uint32_t heapRefs_ = 0;
    bool armed_ = false;
};

/**
 * Pre-allocatable member event: fires @c (owner.*MemFn)(). The
 * canonical hot-path pattern — declare one as a class member, then
 * re-arm it each cycle:
 *
 *     MemberEvent<Engine, &Engine::onComputeEnd> computeEnd_{*this};
 *     ...
 *     sim.events().schedule(computeEnd_, tick);
 */
template <class T, void (T::*MemFn)()>
class MemberEvent final : public Event
{
  public:
    explicit MemberEvent(T &owner, const char *label = "member")
        : owner_(&owner), label_(label) {}

    const char *name() const override { return label_; }

  protected:
    void fire() override { (owner_->*MemFn)(); }

  private:
    T *owner_;
    const char *label_;
};

/**
 * Event wrapping a callable fixed at construction time. The callable
 * is stored once, inside the event, for the event's whole lifetime —
 * re-arming is allocation free.
 */
template <class F>
class LambdaEvent final : public Event
{
  public:
    explicit LambdaEvent(F fn, const char *label = "lambda")
        : fn_(std::move(fn)), label_(label) {}

    const char *name() const override { return label_; }

  protected:
    void fire() override { fn_(); }

  private:
    F fn_;
    const char *label_;
};

template <class F>
LambdaEvent(F) -> LambdaEvent<F>;

/**
 * First-class repeating event: once started it re-arms itself every
 * interval() ticks until stop() (or the end of the run). The re-arm
 * happens before the callback runs, so the callback may stop() or
 * retune setInterval() for the following period.
 */
class PeriodicEvent final : public Event
{
  public:
    using Callback = void (*)(void *);

    PeriodicEvent() = default;

    PeriodicEvent(Callback callback, void *owner, Tick interval)
        : callback_(callback), owner_(owner), interval_(interval) {}

    /** (Re)bind the callback; only allowed while stopped. */
    void bind(Callback callback, void *owner);

    /** Change the period; takes effect from the next re-arm. */
    void setInterval(Tick interval);

    Tick interval() const { return interval_; }

    /** Times the event has fired since construction. */
    std::uint64_t firings() const { return firings_; }

    /**
     * Arm on @p queue with the first firing one interval from now.
     * The priority applies to every subsequent firing too.
     */
    void start(EventQueue &queue,
               EventPriority priority = kDefaultPriority);

    /** Arm on @p queue with the first firing at absolute @p first. */
    void startAt(EventQueue &queue, Tick first,
                 EventPriority priority = kDefaultPriority);

    /** Cancel the pending firing; idempotent. */
    void stop();

    const char *name() const override { return "periodic"; }

  protected:
    void fire() override;

  private:
    Callback callback_ = nullptr;
    void *owner_ = nullptr;
    Tick interval_ = 0;
    std::uint64_t firings_ = 0;
    EventPriority rearmPriority_ = kDefaultPriority;
};

} // namespace coarse::sim

#endif // COARSE_SIM_EVENT_HH
