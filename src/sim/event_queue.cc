#include "event_queue.hh"

#include "logging.hh"

namespace coarse::sim {

bool
EventHandle::pending() const
{
    return event_ != nullptr && event_->armed_
        && event_->generation_ == generation_;
}

void
EventHandle::cancel()
{
    if (pending())
        event_->queue_->deschedule(*event_);
}

void
EventQueue::failPast(Tick when) const
{
    panic("EventQueue: scheduling event at tick ", when,
          " in the past (now=", now_, ")");
}

void
EventQueue::schedule(Event &event, Tick when, EventPriority priority)
{
    if (event.armed_)
        panic("EventQueue: event '", event.name(),
              "' is already scheduled (tick ", event.when_,
              "); use reschedule()");
    if (event.queue_ != nullptr && event.queue_ != this)
        panic("EventQueue: event '", event.name(),
              "' belongs to another queue");

    armFresh(event, when, priority);
}

void
EventQueue::popHeap()
{
    const Entry last = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n == 0)
        return;
    // Sift the detached tail entry down from the root.
    std::size_t at = 0;
    for (;;) {
        const std::size_t first = kHeapArity * at + 1;
        if (first >= n)
            break;
        std::size_t best = first;
        const std::size_t end = std::min(first + kHeapArity, n);
        for (std::size_t c = first + 1; c < end; ++c) {
            if (earlier(heap_[c], heap_[best]))
                best = c;
        }
        if (!earlier(heap_[best], last))
            break;
        heap_[at] = heap_[best];
        at = best;
    }
    heap_[at] = last;
}

void
EventQueue::reschedule(Event &event, Tick when, EventPriority priority)
{
    if (event.armed_) {
        // Disarm in place: the old heap entry goes stale and is
        // dropped lazily when it surfaces.
        event.armed_ = false;
        ++event.generation_;
        --pending_;
    }
    schedule(event, when, priority);
}

void
EventQueue::deschedule(Event &event)
{
    if (!event.armed_)
        return;
    event.armed_ = false;
    ++event.generation_;
    --pending_;
    event.recycle();
}

void
EventQueue::purge(Event &event)
{
    if (event.armed_) {
        event.armed_ = false;
        ++event.generation_;
        --pending_;
    }
    if (event.heapRefs_ == 0)
        return;
    std::erase_if(heap_,
                  [&event](const Entry &e) { return e.event == &event; });
    // A fully sorted array is a valid d-ary heap; purge is a teardown
    // path so the O(n log n) rebuild is acceptable.
    std::sort(heap_.begin(), heap_.end(),
              [](const Entry &a, const Entry &b) {
                  return earlier(a, b);
              });
    event.heapRefs_ = 0;
}

EventHandle
EventQueue::schedule(Tick when, std::function<void()> action,
                     EventPriority priority)
{
    checkFuture(when);
    if (!action)
        panic("EventQueue: scheduling empty action");

    PooledEvent *ev = pool_.acquire(std::move(action));
    schedule(*ev, when, priority);
    return EventHandle(ev, ev->generation_);
}

bool
EventQueue::popRunnable(Entry &out, Tick limit)
{
    while (!heap_.empty()) {
        const Entry &top = heap_.front();
        if (top.generation != top.event->generation_) {
            // Cancelled or re-armed since this entry was pushed.
            --top.event->heapRefs_;
            popHeap();
            continue;
        }
        if (top.when > limit)
            return false;
        out = top;
        popHeap();
        return true;
    }
    return false;
}

std::uint64_t
EventQueue::run(Tick limit)
{
    TickScope tickScope(&now_);
    std::uint64_t count = 0;
    Entry entry;
    while (popRunnable(entry, limit)) {
        Event &ev = *entry.event;
        now_ = entry.when;
        // End this arming before firing so the event may re-arm (or,
        // for pool events, release) itself from inside fire().
        ev.armed_ = false;
        ++ev.generation_;
        --ev.heapRefs_;
        --pending_;
        ++executed_;
        ++count;
        ev.fire();
    }
    // Advance time to the limit only if it is a real horizon; draining
    // the queue leaves time at the last executed event.
    if (limit != kMaxTick && now_ < limit && pending_ == 0)
        now_ = limit;
    return count;
}

bool
EventQueue::step()
{
    TickScope tickScope(&now_);
    Entry entry;
    if (!popRunnable(entry, kMaxTick))
        return false;
    Event &ev = *entry.event;
    now_ = entry.when;
    ev.armed_ = false;
    ++ev.generation_;
    --ev.heapRefs_;
    --pending_;
    ++executed_;
    ev.fire();
    return true;
}

} // namespace coarse::sim
