#include "event_queue.hh"

#include "logging.hh"

namespace coarse::sim {

bool
EventHandle::pending() const
{
    return state_ != nullptr && !state_->cancelled && !state_->executed;
}

void
EventHandle::cancel()
{
    if (state_ != nullptr && !state_->executed)
        state_->cancelled = true;
}

EventHandle
EventQueue::schedule(Tick when, std::function<void()> action,
                     EventPriority priority)
{
    if (when < now_) {
        panic("EventQueue: scheduling event at tick ", when,
              " in the past (now=", now_, ")");
    }
    if (!action)
        panic("EventQueue: scheduling empty action");

    auto state = std::make_shared<EventHandle::State>();
    queue_.push(Entry{when, priority, nextSequence_++, std::move(action),
                      state});
    ++pending_;
    return EventHandle(std::move(state));
}

bool
EventQueue::popRunnable(Entry &out, Tick limit)
{
    while (!queue_.empty()) {
        const Entry &top = queue_.top();
        if (top.when > limit)
            return false;
        if (top.state->cancelled) {
            --pending_;
            queue_.pop();
            continue;
        }
        out = std::move(const_cast<Entry &>(top));
        queue_.pop();
        --pending_;
        return true;
    }
    return false;
}

std::uint64_t
EventQueue::run(Tick limit)
{
    std::uint64_t count = 0;
    Entry entry;
    while (popRunnable(entry, limit)) {
        now_ = entry.when;
        entry.state->executed = true;
        entry.action();
        ++executed_;
        ++count;
    }
    // Advance time to the limit only if it is a real horizon; draining
    // the queue leaves time at the last executed event.
    if (limit != kMaxTick && now_ < limit && queue_.empty())
        now_ = limit;
    return count;
}

bool
EventQueue::step()
{
    Entry entry;
    if (!popRunnable(entry, kMaxTick))
        return false;
    now_ = entry.when;
    entry.state->executed = true;
    entry.action();
    ++executed_;
    return true;
}

} // namespace coarse::sim
