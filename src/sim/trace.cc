#include "trace.hh"

#include <algorithm>
#include <array>
#include <cstdio>

namespace coarse::sim {

namespace detail {

thread_local constinit std::uint32_t g_traceMask = 0;
thread_local constinit TraceSession *g_traceSession = nullptr;

namespace {
// Session epochs start at 1 so a default TraceTrackHandle (epoch 0)
// never matches an active session. Thread-local like the session
// pointer: epochs only ever disambiguate sessions on one thread
// (handles are embedded in components, which are owned by exactly one
// thread's Simulation).
thread_local std::uint32_t g_nextEpoch = 1;
} // namespace

std::uint32_t
traceTrackSlow(TraceTrackHandle &handle, TraceCategory cat,
               std::string name)
{
    TraceSession *session = g_traceSession;
    if (!session)
        panic("traceTrack called with no active TraceSession");
    handle.id = session->registerTrack(cat, std::move(name));
    handle.epoch = session->epoch();
    return handle.id;
}

} // namespace detail

namespace {

constexpr std::array<const char *,
                     static_cast<std::size_t>(TraceCategory::kCount)>
    kCategoryNames = {
        "link", "cci", "synccore", "proxy",
        "iteration", "partition", "recovery",
    };

const char *
kindName(TraceEventKind kind)
{
    switch (kind) {
      case TraceEventKind::Span: return "span";
      case TraceEventKind::Instant: return "instant";
      case TraceEventKind::Counter: return "counter";
    }
    return "?";
}

// Minimal JSON string escaping: the strings we emit are track/event
// names built from node names and literals, but keep the output valid
// for any input.
void
writeJsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

// Chrome trace timestamps are microseconds; ticks are picoseconds.
// Emit fractional microseconds to keep full tick resolution.
void
writeMicros(std::ostream &os, Tick ticks)
{
    os << ticks / 1000000 << '.';
    char buf[8];
    std::snprintf(buf, sizeof(buf), "%06llu",
                  static_cast<unsigned long long>(ticks % 1000000));
    os << buf;
}

} // namespace

const char *
traceCategoryName(TraceCategory cat)
{
    auto idx = static_cast<std::size_t>(cat);
    if (idx >= kCategoryNames.size())
        panic("bad TraceCategory ", idx);
    return kCategoryNames[idx];
}

std::uint32_t
parseTraceCategories(const std::string &spec)
{
    std::uint32_t mask = 0;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string token = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (token.empty()) {
            fatal("empty trace category in '", spec,
                  "' (expected a comma-separated list like "
                  "'link,iteration' or 'all')");
        }
        if (token == "all") {
            mask |= kAllTraceCategories;
            continue;
        }
        bool found = false;
        for (std::size_t i = 0; i < kCategoryNames.size(); ++i) {
            if (token == kCategoryNames[i]) {
                mask |= traceBit(static_cast<TraceCategory>(i));
                found = true;
                break;
            }
        }
        if (!found) {
            fatal("unknown trace category '", token,
                  "' (expected one of: all, link, cci, synccore, "
                  "proxy, iteration, partition, recovery)");
        }
    }
    return mask;
}

TraceSession::TraceSession() : TraceSession(Options{}) {}

TraceSession::TraceSession(Options options)
    : categories_(options.categories),
      processName_(std::move(options.processName))
{
    if (detail::g_traceSession) {
        panic("a TraceSession is already active on this thread; "
              "only one may exist per thread");
    }
    if (options.capacity == 0)
        panic("TraceSession capacity must be > 0");
    ring_.resize(options.capacity);
    epoch_ = detail::g_nextEpoch++;
    if (detail::g_nextEpoch == 0)
        detail::g_nextEpoch = 1;
    detail::g_traceSession = this;
    detail::g_traceMask = categories_;
}

TraceSession::~TraceSession()
{
    detail::g_traceMask = 0;
    detail::g_traceSession = nullptr;
}

TraceSession *
TraceSession::active()
{
    return detail::g_traceSession;
}

std::uint32_t
TraceSession::registerTrack(TraceCategory cat, std::string name)
{
    // Same name, same track: components registering independently
    // (e.g. a span site and a counter site) share one timeline. The
    // scan is linear but runs only on the registration slow path.
    for (std::size_t id = 0; id < tracks_.size(); ++id) {
        if (tracks_[id].first == cat && tracks_[id].second == name)
            return static_cast<std::uint32_t>(id);
    }
    tracks_.emplace_back(cat, std::move(name));
    return static_cast<std::uint32_t>(tracks_.size() - 1);
}

const std::string &
TraceSession::trackName(std::uint32_t id) const
{
    if (id >= tracks_.size())
        panic("bad trace track id ", id);
    return tracks_[id].second;
}

TraceCategory
TraceSession::trackCategory(std::uint32_t id) const
{
    if (id >= tracks_.size())
        panic("bad trace track id ", id);
    return tracks_[id].first;
}

std::vector<TraceEvent>
TraceSession::snapshot() const
{
    std::vector<TraceEvent> out;
    out.reserve(count_);
    // Oldest event sits at head_ once the ring has wrapped, else at 0.
    std::size_t first = count_ == ring_.size() ? head_ : 0;
    for (std::size_t i = 0; i < count_; ++i)
        out.push_back(ring_[(first + i) % ring_.size()]);
    // Record order is already chronological for same-tick emission;
    // stable sort by start tick yields a deterministic timeline even
    // when spans are emitted at their end tick.
    std::stable_sort(out.begin(), out.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.start < b.start;
                     });
    return out;
}

void
TraceSession::writeChromeJson(std::ostream &os) const
{
    const std::vector<TraceEvent> events = snapshot();
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    os << "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
          "\"args\":{\"name\":";
    writeJsonString(os, processName_);
    os << "}}";
    // One Chrome "thread" per track; tid = track id + 1 (tid 0 is
    // reserved for process-scoped metadata in some viewers).
    for (std::size_t id = 0; id < tracks_.size(); ++id) {
        os << ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":" << id + 1
           << ",\"name\":\"thread_name\",\"args\":{\"name\":";
        writeJsonString(os, std::string(traceCategoryName(
                                tracks_[id].first)) +
                                "/" + tracks_[id].second);
        os << "}},\n{\"ph\":\"M\",\"pid\":1,\"tid\":" << id + 1
           << ",\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":"
           << id << "}}";
    }
    for (const TraceEvent &e : events) {
        os << ",\n{\"pid\":1,\"tid\":" << e.track + 1 << ",\"ts\":";
        writeMicros(os, e.start);
        os << ",\"cat\":\"" << traceCategoryName(e.category) << '"';
        switch (e.kind) {
          case TraceEventKind::Span:
            os << ",\"ph\":\"X\",\"dur\":";
            writeMicros(os, e.end - e.start);
            os << ",\"name\":";
            writeJsonString(os, e.name);
            os << ",\"args\":{\"arg0\":" << e.arg0
               << ",\"arg1\":" << e.arg1 << "}";
            break;
          case TraceEventKind::Instant:
            os << ",\"ph\":\"i\",\"s\":\"t\",\"name\":";
            writeJsonString(os, e.name);
            os << ",\"args\":{\"arg0\":" << e.arg0
               << ",\"arg1\":" << e.arg1 << "}";
            break;
          case TraceEventKind::Counter:
            // Counter events keyed by track name so multiple series
            // (e.g. recv/local/send occupancy) merge into one plot.
            os << ",\"ph\":\"C\",\"name\":";
            writeJsonString(os, trackName(e.track));
            os << ",\"args\":{";
            writeJsonString(os, e.name);
            os << ':' << e.arg0 << "}";
            break;
        }
        os << "}";
    }
    os << "\n]}\n";
}

void
TraceSession::writeCanonical(std::ostream &os) const
{
    os << "# coarse canonical trace v1\n";
    os << "# dropped " << dropped_ << "\n";
    for (std::size_t id = 0; id < tracks_.size(); ++id) {
        os << "track " << id << ' '
           << traceCategoryName(tracks_[id].first) << ' '
           << tracks_[id].second << '\n';
    }
    for (const TraceEvent &e : snapshot()) {
        os << kindName(e.kind) << ' ' << e.track << ' ' << e.name
           << ' ' << e.start << ' ' << e.end << ' ' << e.arg0 << ' '
           << e.arg1 << '\n';
    }
}

} // namespace coarse::sim
