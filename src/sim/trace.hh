/**
 * @file
 * Simulation-wide tracing: typed, tick-stamped spans, instants, and
 * counters recorded into a preallocated ring buffer.
 *
 * Design constraints (same discipline as the event kernel):
 *
 *  - **Near-zero cost when disabled.** Every recording site is gated
 *    on a single global mask load; with no active TraceSession the
 *    mask is zero and a site costs one predictable branch.
 *  - **No allocation on the hot path.** The ring buffer is sized at
 *    session creation; recording copies one fixed-size TraceEvent.
 *    Event names must be string literals (the buffer stores the
 *    pointer). Track registration may allocate, but happens at most
 *    once per track per session.
 *  - **Overwrite semantics.** When the ring fills, the oldest events
 *    are overwritten and counted in dropped(); tracing never stalls
 *    or unbounds the simulation.
 *
 * Exporters: writeChromeJson() emits a Chrome/Perfetto-loadable
 * trace.json; writeCanonical() emits a deterministic line-oriented
 * text form that golden-trace regression tests assert against.
 */

#ifndef COARSE_SIM_TRACE_HH
#define COARSE_SIM_TRACE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "logging.hh"
#include "ticks.hh"

namespace coarse::sim {

/** Subsystem a trace event belongs to; sessions filter by category. */
enum class TraceCategory : std::uint8_t
{
    Link,      //!< Fabric link-direction busy spans + utilization.
    Cci,       //!< CCI transactions (coherent reads/writes).
    SyncCore,  //!< Sync-core reductions and buffer occupancy.
    Proxy,     //!< Proxy service queue depths and arrivals.
    Iteration, //!< Per-GPU FP/BP/sync phases, iteration spans.
    Partition, //!< Shard lifetimes (push to synced).
    Recovery,  //!< Recovery-episode state transitions.
    kCount,
};

constexpr std::uint32_t
traceBit(TraceCategory cat)
{
    return std::uint32_t(1) << static_cast<std::uint32_t>(cat);
}

constexpr std::uint32_t kAllTraceCategories =
    (std::uint32_t(1) << static_cast<std::uint32_t>(TraceCategory::kCount))
    - 1;

const char *traceCategoryName(TraceCategory cat);

/**
 * Parse a comma-separated category list ("link,iteration", "all")
 * into a mask. Throws FatalError on unknown names.
 */
std::uint32_t parseTraceCategories(const std::string &spec);

/** What kind of mark a TraceEvent is. */
enum class TraceEventKind : std::uint8_t
{
    Span,    //!< [start, end] duration on a track.
    Instant, //!< A point event (end == start).
    Counter, //!< A sampled value (arg0) on a counter timeline.
};

/**
 * One recorded event. Fixed size, trivially copyable; @c name must
 * point at a string literal (the ring stores only the pointer).
 */
struct TraceEvent
{
    Tick start = 0;
    Tick end = 0;
    const char *name = "";
    std::uint64_t arg0 = 0;
    std::uint64_t arg1 = 0;
    std::uint32_t track = 0;
    TraceCategory category = TraceCategory::Link;
    TraceEventKind kind = TraceEventKind::Span;
};

/**
 * Cached track id a component embeds as a member. Handles survive
 * session turnover: the epoch stamp detects a stale id and triggers
 * (re)registration against the currently active session.
 */
struct TraceTrackHandle
{
    std::uint32_t id = 0;
    std::uint32_t epoch = 0; //!< 0 = never registered.
};

/**
 * An in-memory trace capture. At most one session is active per
 * thread; constructing one attaches it to the constructing thread
 * (enabling the recording fast path for its categories) and
 * destruction detaches it. A session must be destroyed on the thread
 * that created it, and all recording against it must happen on that
 * same thread — the contract a one-Simulation-per-thread sweep
 * replica satisfies by construction.
 */
class TraceSession
{
  public:
    struct Options
    {
        /** Ring capacity in events (preallocated up front). */
        std::size_t capacity = std::size_t(1) << 18;
        /** Categories to record (others stay disabled). */
        std::uint32_t categories = kAllTraceCategories;
        /** Process name stamped into the Chrome export. */
        std::string processName = "coarse";
    };

    TraceSession();
    explicit TraceSession(Options options);
    ~TraceSession();

    TraceSession(const TraceSession &) = delete;
    TraceSession &operator=(const TraceSession &) = delete;

    /** The calling thread's attached session, or nullptr. */
    static TraceSession *active();

    /** Session identity used to validate cached TraceTrackHandles. */
    std::uint32_t epoch() const { return epoch_; }

    std::uint32_t categories() const { return categories_; }

    /**
     * Register a named timeline. Allocates; call only from the slow
     * path (via sim::traceTrack) or at setup time.
     */
    std::uint32_t registerTrack(TraceCategory cat, std::string name);

    std::size_t trackCount() const { return tracks_.size(); }
    const std::string &trackName(std::uint32_t id) const;
    TraceCategory trackCategory(std::uint32_t id) const;

    /** Record one event (hot path: no allocation, ring overwrite). */
    void
    record(const TraceEvent &event)
    {
        if (count_ == ring_.size())
            ++dropped_;
        else
            ++count_;
        ring_[head_] = event;
        head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
    }

    /** Events currently held (<= capacity). */
    std::size_t size() const { return count_; }
    /** Events overwritten after the ring filled. */
    std::uint64_t dropped() const { return dropped_; }
    std::size_t capacity() const { return ring_.size(); }

    /**
     * Copy out the retained events, oldest first, stably ordered by
     * start tick (record order breaks ties, which is deterministic
     * for a deterministic simulation).
     */
    std::vector<TraceEvent> snapshot() const;

    /** Chrome/Perfetto trace-event JSON (load via ui.perfetto.dev). */
    void writeChromeJson(std::ostream &os) const;

    /**
     * Canonical deterministic text form: a track table followed by
     * one line per event, for golden-trace tests and diffing.
     */
    void writeCanonical(std::ostream &os) const;

  private:
    std::vector<TraceEvent> ring_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint32_t categories_ = 0;
    std::uint32_t epoch_ = 0;
    std::string processName_;
    std::vector<std::pair<TraceCategory, std::string>> tracks_;
};

namespace detail {

/**
 * Active categories; zero whenever no session is attached. Both are
 * thread_local: a TraceSession belongs to the thread that constructed
 * it, so parallel sweep replicas (one Simulation per thread, see
 * parallel.hh) each carry their own independent capture without any
 * cross-thread synchronization on the recording fast path.
 */
// constinit: guaranteed-constant init means access compiles to a
// plain TLS load instead of going through the dynamic-init wrapper
// (which would put a call in every traceEnabled() and trips a UBSan
// false positive under gcc).
extern thread_local constinit std::uint32_t g_traceMask;
extern thread_local constinit TraceSession *g_traceSession;

std::uint32_t traceTrackSlow(TraceTrackHandle &handle, TraceCategory cat,
                             std::string name);

} // namespace detail

/** True when an active session records @p cat. One load + branch. */
inline bool
traceEnabled(TraceCategory cat)
{
    return (detail::g_traceMask & traceBit(cat)) != 0;
}

/**
 * Resolve a cached track handle, registering it against the active
 * session on first use (or after a session change). @p nameFn is only
 * invoked on the slow registration path, so building the track name
 * costs nothing once the handle is warm. Only call while
 * traceEnabled() holds.
 */
template <typename NameFn>
inline std::uint32_t
traceTrack(TraceTrackHandle &handle, TraceCategory cat, NameFn &&nameFn)
{
    if (handle.epoch != detail::g_traceSession->epoch()) [[unlikely]] {
        return detail::traceTrackSlow(handle, cat,
                                      std::string(nameFn()));
    }
    return handle.id;
}

/** Record a [start, end] span. @p name must be a string literal. */
template <typename NameFn>
inline void
traceSpan(TraceCategory cat, TraceTrackHandle &handle, NameFn &&nameFn,
          const char *name, Tick start, Tick end, std::uint64_t arg0 = 0,
          std::uint64_t arg1 = 0)
{
    if (!traceEnabled(cat)) [[likely]]
        return;
    detail::g_traceSession->record(
        {start, end, name, arg0, arg1,
         traceTrack(handle, cat, std::forward<NameFn>(nameFn)), cat,
         TraceEventKind::Span});
}

/** Record a point event. @p name must be a string literal. */
template <typename NameFn>
inline void
traceInstant(TraceCategory cat, TraceTrackHandle &handle, NameFn &&nameFn,
             const char *name, Tick tick, std::uint64_t arg0 = 0,
             std::uint64_t arg1 = 0)
{
    if (!traceEnabled(cat)) [[likely]]
        return;
    detail::g_traceSession->record(
        {tick, tick, name, arg0, arg1,
         traceTrack(handle, cat, std::forward<NameFn>(nameFn)), cat,
         TraceEventKind::Instant});
}

/** Record a counter sample. @p name must be a string literal. */
template <typename NameFn>
inline void
traceCounter(TraceCategory cat, TraceTrackHandle &handle,
             NameFn &&nameFn, const char *name, Tick tick,
             std::uint64_t value)
{
    if (!traceEnabled(cat)) [[likely]]
        return;
    detail::g_traceSession->record(
        {tick, tick, name, value, 0,
         traceTrack(handle, cat, std::forward<NameFn>(nameFn)), cat,
         TraceEventKind::Counter});
}

/**
 * The tick of the event currently dispatching, or 0 outside event
 * dispatch. Lets components without a Simulation reference (e.g.
 * SyncCore) stamp their trace events.
 */
inline Tick
traceNow()
{
    const std::uint64_t *tick = detail::activeTick();
    return tick ? *tick : 0;
}

} // namespace coarse::sim

#endif // COARSE_SIM_TRACE_HH
