/**
 * @file
 * Discrete-event queue over intrusive events.
 *
 * The queue orders events by (tick, priority, sequence number); the
 * sequence number makes execution order fully deterministic for events
 * scheduled at the same tick with the same priority — including
 * across cancellations and re-arms, because every arming draws a
 * fresh sequence number.
 *
 * Three ways to schedule, fastest first:
 *
 *  1. schedule(Event &, Tick) — arm a caller-owned intrusive event
 *     (see event.hh). Allocation free; the hot-path API.
 *  2. post(Tick, callable) / postIn(Tick, callable) — one-shot work
 *     backed by the queue's slab EventPool. Allocation free once the
 *     pool is warm (callables up to PooledEvent::kInlineBytes live
 *     inside the event).
 *  3. schedule(Tick, std::function) — DEPRECATED shim kept for old
 *     call sites and tests. Routes through the pool but still pays
 *     the std::function indirection; do not use on hot paths.
 */

#ifndef COARSE_SIM_EVENT_QUEUE_HH
#define COARSE_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "event.hh"
#include "event_pool.hh"
#include "ticks.hh"

namespace coarse::sim {

/**
 * Handle to an event scheduled through the deprecated
 * std::function shim. A handle is a cheap two-word token
 * (event pointer + arming generation); cancelling an already-executed
 * or already-cancelled event is a no-op because the generation no
 * longer matches. Handles must not outlive the queue that issued
 * them.
 */
class EventHandle
{
  public:
    EventHandle() = default;

    /** True if the handle refers to an event (executed or not). */
    bool valid() const { return event_ != nullptr; }

    /** True if the event has neither executed nor been cancelled. */
    bool pending() const;

    /** Prevent the event from executing. Idempotent. */
    void cancel();

  private:
    friend class EventQueue;

    EventHandle(Event *event, std::uint32_t generation)
        : event_(event), generation_(generation) {}

    Event *event_ = nullptr;
    std::uint32_t generation_ = 0;
};

/**
 * A deterministic discrete-event queue.
 *
 * Not thread safe: the whole simulator is single threaded by design,
 * which is what makes runs exactly reproducible.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** @name Intrusive scheduling (allocation free) */
    ///@{
    /**
     * Arm @p event to fire at absolute time @p when. Panics if the
     * event is already armed (use reschedule() to move it) or if
     * @p when is in the past.
     */
    void schedule(Event &event, Tick when,
                  EventPriority priority = kDefaultPriority);

    /** Arm @p event to fire @p delay ticks from now. */
    void
    scheduleIn(Event &event, Tick delay,
               EventPriority priority = kDefaultPriority)
    {
        schedule(event, now_ + delay, priority);
    }

    /** Arm @p event at @p when, first disarming it if necessary. */
    void reschedule(Event &event, Tick when,
                    EventPriority priority = kDefaultPriority);

    /**
     * Cancel @p event's pending firing. No-op when not armed. A
     * cancelled pool event returns to the pool; caller-owned events
     * are merely disarmed and may be re-armed at will.
     */
    void deschedule(Event &event);
    ///@}

    /** @name Pooled one-shot scheduling */
    ///@{
    /**
     * Run @p fn once at absolute time @p when. The callable moves
     * into a pool-owned event: no allocation once the pool is warm
     * and the callable fits PooledEvent::kInlineBytes.
     */
    template <class F>
    void
    post(Tick when, F &&fn, EventPriority priority = kDefaultPriority)
    {
        PooledEvent *ev = pool_.acquire(std::forward<F>(fn));
        // A fresh pool event is idle by construction; arm it without
        // the already-armed / foreign-queue checks schedule() does.
        armFresh(*ev, when, priority);
    }

    /** Run @p fn once @p delay ticks from now. */
    template <class F>
    void
    postIn(Tick delay, F &&fn,
           EventPriority priority = kDefaultPriority)
    {
        post(now_ + delay, std::forward<F>(fn), priority);
    }
    ///@}

    /** @name Deprecated std::function shim */
    ///@{
    /**
     * Schedule @p action to run at absolute time @p when.
     *
     * @deprecated Old-style interface kept for migration; it pays a
     * std::function per call. New code should pre-allocate an
     * intrusive Event, or use post() for one-shot work.
     * @return A handle that can cancel the event.
     */
    EventHandle schedule(Tick when, std::function<void()> action,
                         EventPriority priority = kDefaultPriority);

    /** @deprecated Delay-relative variant of the shim above. */
    EventHandle
    scheduleIn(Tick delay, std::function<void()> action,
               EventPriority priority = kDefaultPriority)
    {
        return schedule(now_ + delay, std::move(action), priority);
    }
    ///@}

    /** Number of pending (armed, not cancelled) events. */
    std::size_t pendingCount() const { return pending_; }

    /** True when no pending events remain. */
    bool empty() const { return pending_ == 0; }

    /**
     * Execute events until the queue drains or @p limit is passed.
     *
     * @param limit Do not execute events scheduled after this tick.
     * @return Number of events executed.
     */
    std::uint64_t run(Tick limit = kMaxTick);

    /** Execute exactly one event if any is pending. @return true if so. */
    bool step();

    /** Total number of events executed over the queue's lifetime. */
    std::uint64_t executedCount() const { return executed_; }

    /** Size of the one-shot event pool (diagnostics). */
    std::size_t poolCapacity() const { return pool_.capacity(); }

    /** One-shot events currently checked out of the pool. */
    std::size_t poolInUse() const { return pool_.inUse(); }

  private:
    friend class Event;
    friend class PooledEvent;

    /**
     * One arming in the heap. Packed to 32 bytes (two per cache line)
     * because pop cost on large queues is dominated by memory
     * traffic.
     */
    struct Entry
    {
        Tick when;
        std::uint64_t sequence;
        Event *event;
        std::uint32_t generation;
        EventPriority priority;
    };

    /** Strict "a executes before b" total order. */
    static bool
    earlier(const Entry &a, const Entry &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        if (a.priority != b.priority)
            return a.priority < b.priority;
        return a.sequence < b.sequence;
    }

    /** Panic unless @p when is at or after now(). */
    void
    checkFuture(Tick when) const
    {
        if (when < now_) [[unlikely]]
            failPast(when);
    }

    [[noreturn]] void failPast(Tick when) const;

    /**
     * Arm an event known to be idle: the tail of schedule() with the
     * already-armed and foreign-queue panics hoisted out. Kept inline
     * because this — together with EventPool::acquire() — is the
     * whole per-post hot path.
     */
    void
    armFresh(Event &event, Tick when, EventPriority priority)
    {
        checkFuture(when);
        event.queue_ = this;
        event.when_ = when;
        event.priority_ = priority;
        event.armed_ = true;
        ++event.heapRefs_;
        heap_.push_back(
            Entry{when, nextSequence_++, &event, event.generation_,
                  priority});
        siftUp(heap_.size() - 1);
        ++pending_;
    }

    /** Pop entries until a live (current-generation) one is found. */
    bool popRunnable(Entry &out, Tick limit);

    /**
     * The heap is 8-ary rather than binary: a third of the levels of
     * a binary heap, so a pop on a large queue touches far fewer cold
     * cache lines, and each node's eight children are 256 contiguous
     * bytes that the hardware prefetcher streams in one go. Pop cost
     * is what dominates once the queue outgrows L2.
     */
    static constexpr std::size_t kHeapArity = 8;

    void
    siftUp(std::size_t at)
    {
        Entry entry = heap_[at];
        while (at > 0) {
            const std::size_t parent = (at - 1) / kHeapArity;
            if (!earlier(entry, heap_[parent]))
                break;
            heap_[at] = heap_[parent];
            at = parent;
        }
        heap_[at] = entry;
    }

    /** Drop the top heap entry. */
    void popHeap();

    /** Remove every heap entry referencing @p event (see ~Event). */
    void purge(Event &event);

    /**
     * Declaration order matters: pool_ sits after heap_ so pooled
     * events are destroyed while the heap (which their destructors
     * purge themselves from) is still alive.
     */
    std::vector<Entry> heap_;
    EventPool pool_;
    Tick now_ = 0;
    std::uint64_t nextSequence_ = 0;
    std::uint64_t executed_ = 0;
    std::size_t pending_ = 0;
};

} // namespace coarse::sim

#endif // COARSE_SIM_EVENT_QUEUE_HH
