/**
 * @file
 * Discrete-event queue.
 *
 * The queue orders events by (tick, priority, sequence number); the
 * sequence number makes execution order fully deterministic for events
 * scheduled at the same tick with the same priority.
 */

#ifndef COARSE_SIM_EVENT_QUEUE_HH
#define COARSE_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "ticks.hh"

namespace coarse::sim {

/** Scheduling priority; lower values execute first within a tick. */
using EventPriority = std::int32_t;

constexpr EventPriority kDefaultPriority = 0;

/**
 * Handle to a scheduled event, used for cancellation. Handles are
 * cheap copyable tokens; cancelling an already-executed or
 * already-cancelled event is a no-op.
 */
class EventHandle
{
  public:
    EventHandle() = default;

    /** True if the handle refers to an event (executed or not). */
    bool valid() const { return state_ != nullptr; }

    /** True if the event has neither executed nor been cancelled. */
    bool pending() const;

    /** Prevent the event from executing. Idempotent. */
    void cancel();

  private:
    friend class EventQueue;

    struct State
    {
        bool cancelled = false;
        bool executed = false;
    };

    explicit EventHandle(std::shared_ptr<State> state)
        : state_(std::move(state)) {}

    std::shared_ptr<State> state_;
};

/**
 * A deterministic discrete-event queue.
 *
 * Not thread safe: the whole simulator is single threaded by design,
 * which is what makes runs exactly reproducible.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p action to run at absolute time @p when.
     *
     * @param when Absolute tick; must be >= now().
     * @param action Callback executed when the event fires.
     * @param priority Tie-break among events at the same tick.
     * @return A handle that can cancel the event.
     */
    EventHandle schedule(Tick when, std::function<void()> action,
                         EventPriority priority = kDefaultPriority);

    /** Schedule @p action to run @p delay ticks from now. */
    EventHandle
    scheduleIn(Tick delay, std::function<void()> action,
               EventPriority priority = kDefaultPriority)
    {
        return schedule(now_ + delay, std::move(action), priority);
    }

    /** Number of pending (non-cancelled) events. */
    std::size_t pendingCount() const { return pending_; }

    /** True when no events remain. */
    bool empty() const { return pending_ == 0; }

    /**
     * Execute events until the queue drains or @p limit is passed.
     *
     * @param limit Do not execute events scheduled after this tick.
     * @return Number of events executed.
     */
    std::uint64_t run(Tick limit = kMaxTick);

    /** Execute exactly one event if any is pending. @return true if so. */
    bool step();

    /** Total number of events executed over the queue's lifetime. */
    std::uint64_t executedCount() const { return executed_; }

  private:
    struct Entry
    {
        Tick when;
        EventPriority priority;
        std::uint64_t sequence;
        std::function<void()> action;
        std::shared_ptr<EventHandle::State> state;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.sequence > b.sequence;
        }
    };

    /** Pop entries until a runnable (non-cancelled) one is found. */
    bool popRunnable(Entry &out, Tick limit);

    std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
    Tick now_ = 0;
    std::uint64_t nextSequence_ = 0;
    std::uint64_t executed_ = 0;
    std::size_t pending_ = 0;
};

} // namespace coarse::sim

#endif // COARSE_SIM_EVENT_QUEUE_HH
