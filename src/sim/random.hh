/**
 * @file
 * Deterministic random number generation.
 *
 * All stochastic behaviour in the simulator draws from an explicitly
 * seeded generator so runs are reproducible bit-for-bit.
 */

#ifndef COARSE_SIM_RANDOM_HH
#define COARSE_SIM_RANDOM_HH

#include <cstdint>
#include <random>

namespace coarse::sim {

/** Seeded pseudo-random source with convenience distributions. */
class Random
{
  public:
    explicit Random(std::uint64_t seed = 0x5eedc0a45eULL)
        : engine_(seed) {}

    /** Uniform integer in [lo, hi] (inclusive). */
    std::uint64_t
    uniformInt(std::uint64_t lo, std::uint64_t hi)
    {
        std::uniform_int_distribution<std::uint64_t> dist(lo, hi);
        return dist(engine_);
    }

    /** Uniform real in [lo, hi). */
    double
    uniformReal(double lo, double hi)
    {
        std::uniform_real_distribution<double> dist(lo, hi);
        return dist(engine_);
    }

    /** Normal with the given mean and standard deviation. */
    double
    normal(double mean, double stddev)
    {
        std::normal_distribution<double> dist(mean, stddev);
        return dist(engine_);
    }

    /** Bernoulli trial with probability @p p of returning true. */
    bool
    chance(double p)
    {
        std::bernoulli_distribution dist(p);
        return dist(engine_);
    }

    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace coarse::sim

#endif // COARSE_SIM_RANDOM_HH
