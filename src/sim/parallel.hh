/**
 * @file
 * Parallel experiment harness: a work-stealing thread pool plus a
 * SweepRunner that fans independent simulation replicas across cores.
 *
 * The simulator itself stays single threaded — one Simulation, one
 * EventQueue, one thread — which is what makes every run bit-exact
 * reproducible. What *is* parallel is the experiment surface around
 * it: bandwidth matrices, partition sweeps, seed sweeps, and
 * chaos/ablation suites all run many fully independent (config, seed)
 * replicas, and those replicas can occupy the machine's other N-1
 * cores without touching each other.
 *
 * Thread-compatibility contract (see DESIGN.md "Parallel harness"):
 *
 *  - **Per-Simulation state** (EventQueue, EventPool, StatGroup,
 *    Random, every component) is owned by exactly one replica and
 *    must be created, used, and destroyed on that replica's thread.
 *  - **Thread-local ambient state** — the active TraceSession
 *    (sim/trace.hh) and the active-tick pointer (sim/logging.hh) —
 *    means replicas on different threads can each trace and stamp
 *    errors independently.
 *  - **Immutable-shared state** (machine presets, model specs, parsed
 *    options) may be read concurrently but never written after the
 *    fan-out starts.
 *
 * Determinism: SweepRunner::forEach() collects nothing itself —
 * callers write results into slot @c index of a preallocated vector —
 * so aggregate output depends only on the job-index order, never on
 * the thread schedule. A sweep at --jobs=1 (inline, no threads) and
 * --jobs=N is byte-identical by construction.
 */

#ifndef COARSE_SIM_PARALLEL_HH
#define COARSE_SIM_PARALLEL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace coarse::sim {

/**
 * A work-stealing thread pool for coarse-grained jobs (whole
 * simulation replicas, not fine-grained tasks).
 *
 * Each worker owns a deque: submissions are dealt round-robin across
 * the deques, owners pop from the front of their own deque, and idle
 * workers steal from the *back* of a victim's deque — the classic
 * arrangement that keeps an owner working through its own backlog in
 * submission order while thieves drain the cold end. Deques are
 * mutex-guarded (jobs here run for milliseconds to seconds, so queue
 * overhead is irrelevant; what matters is that stealing keeps every
 * core busy when replica runtimes are skewed, e.g. a BERT-Large point
 * next to a ResNet point).
 */
class ThreadPool
{
  public:
    /** @param threads Worker count; 0 = one per hardware thread. */
    explicit ThreadPool(unsigned threads = 0);

    /** Joins all workers; pending tasks are completed first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned threadCount() const
    {
        return static_cast<unsigned>(threads_.size());
    }

    /**
     * Enqueue @p task. Tasks must not throw — wrap fallible work and
     * capture the exception (SweepRunner does exactly this).
     * Submitting from inside a pool task is allowed.
     */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished. */
    void wait();

    /** Tasks ever stolen from another worker's deque (diagnostics). */
    std::uint64_t stealCount() const
    {
        return steals_.load(std::memory_order_relaxed);
    }

    /** Resolve "0 = all cores", never returning less than 1. */
    static unsigned resolveThreads(unsigned requested);

  private:
    struct Worker
    {
        std::mutex mutex;
        std::deque<std::function<void()>> queue;
    };

    void workerLoop(unsigned self);
    bool tryPopOwn(unsigned self, std::function<void()> &task);
    bool trySteal(unsigned self, std::function<void()> &task);
    void runTask(std::function<void()> &task);

    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;

    /** Guards workEpoch_/stop_ and backs both condition variables. */
    std::mutex stateMutex_;
    std::condition_variable workCv_; //!< New work or shutdown.
    std::condition_variable idleCv_; //!< pending_ reached zero.
    std::uint64_t workEpoch_ = 0;    //!< Bumped on every submit.
    bool stop_ = false;

    std::atomic<std::size_t> pending_{0};
    std::atomic<unsigned> nextDeal_{0};
    std::atomic<std::uint64_t> steals_{0};
};

/**
 * Fans @c count independent jobs across a ThreadPool and makes the
 * caller's aggregation order schedule-independent: @c fn receives the
 * job index and writes its result into caller-owned slot @c index, so
 * whatever the interleaving, the aggregate reads back in index order.
 *
 * With jobs()==1 (or a single job) everything runs inline on the
 * calling thread — no pool, no threads — which doubles as the
 * reference ordering the determinism tests compare the parallel path
 * against.
 *
 * The first exception a job throws (lowest job index wins, so even
 * failures are deterministic) is rethrown from forEach() after all
 * jobs have settled.
 */
class SweepRunner
{
  public:
    /** @param jobs Replica parallelism; 0 = one per hardware thread. */
    explicit SweepRunner(unsigned jobs = 0)
        : jobs_(ThreadPool::resolveThreads(jobs)) {}

    unsigned jobs() const { return jobs_; }

    /** Pool steal counter (0 when running inline). */
    std::uint64_t
    stealCount() const
    {
        return pool_ ? pool_->stealCount() : 0;
    }

    /** Run fn(0) .. fn(count-1); see the class comment. */
    template <class Fn>
    void
    forEach(std::size_t count, Fn &&fn)
    {
        if (count == 0)
            return;
        if (jobs_ == 1 || count == 1) {
            for (std::size_t i = 0; i < count; ++i)
                fn(i);
            return;
        }
        if (!pool_)
            pool_ = std::make_unique<ThreadPool>(jobs_);
        std::vector<std::exception_ptr> errors(count);
        for (std::size_t i = 0; i < count; ++i) {
            pool_->submit([&fn, &errors, i] {
                try {
                    fn(i);
                } catch (...) {
                    errors[i] = std::current_exception();
                }
            });
        }
        pool_->wait();
        for (const std::exception_ptr &error : errors) {
            if (error)
                std::rethrow_exception(error);
        }
    }

    /**
     * Convenience for the common "each job produces one result"
     * shape: returns results[i] = fn(i), in index order.
     */
    template <class Result, class Fn>
    std::vector<Result>
    map(std::size_t count, Fn &&fn)
    {
        std::vector<Result> results(count);
        forEach(count, [&](std::size_t i) { results[i] = fn(i); });
        return results;
    }

  private:
    unsigned jobs_;
    std::unique_ptr<ThreadPool> pool_;
};

} // namespace coarse::sim

#endif // COARSE_SIM_PARALLEL_HH
