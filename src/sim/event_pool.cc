#include "event_pool.hh"

#include "event_queue.hh"

namespace coarse::sim {

// The event is sized and aligned to exactly two cache lines, with the
// header, op pointer, and the first words of callable storage all in
// the first line: a small capture makes the whole
// acquire/schedule/fire/release cycle touch one line per event.
static_assert(sizeof(PooledEvent) == 128
              && alignof(PooledEvent) == 64,
              "PooledEvent should be exactly two aligned cache lines");

PooledEvent::~PooledEvent()
{
    // A callable may still be stored if the simulation was torn down
    // with this event pending; destroy it without invoking.
    if (op_ != nullptr)
        op_(*this, Op::kDrop);
}

void
PooledEvent::fire()
{
    op_(*this, Op::kRun);
}

void
PooledEvent::recycle()
{
    // Cancelled before firing: discard the callable unrun.
    op_(*this, Op::kDrop);
    release();
}

void
PooledEvent::release()
{
    op_ = nullptr;
    // fire()/recycle() only ever run on the queue that armed the
    // event, which is the queue whose pool handed it out.
    queue()->pool_.put(this);
}

EventPool::~EventPool()
{
    // When every event is back on the free list, the per-event
    // destructors are no-ops (no callable stored, nothing armed; a
    // stale-entry purge would be irrelevant mid-teardown), so skip
    // the walk over what may be megabytes of cold slab memory.
    if (inUse_ == 0)
        return;
    // Only constructed events are destroyed: every slab is fully
    // constructed except the newest, which is built up to bump_.
    for (auto &slab : slabs_) {
        PooledEvent *const begin = slab.get();
        PooledEvent *const end =
            begin + kSlabEvents == bumpEnd_ ? bump_
                                            : begin + kSlabEvents;
        for (PooledEvent *ev = begin; ev != end; ++ev)
            ev->~PooledEvent();
    }
}

void
EventPool::grow()
{
    void *mem = ::operator new(kSlabEvents * sizeof(PooledEvent),
                               std::align_val_t(alignof(PooledEvent)));
    bump_ = static_cast<PooledEvent *>(mem);
    bumpEnd_ = bump_ + kSlabEvents;
    slabs_.emplace_back(bump_);
    capacity_ += kSlabEvents;
}

} // namespace coarse::sim
