/**
 * @file
 * Simulation time base.
 *
 * The simulator counts time in integer picoseconds. Picosecond
 * resolution keeps serialization delays of small (64-byte) messages on
 * fast (>100 GB/s) links exactly representable, while a 64-bit tick
 * still covers more than 200 days of simulated time.
 */

#ifndef COARSE_SIM_TICKS_HH
#define COARSE_SIM_TICKS_HH

#include <cstdint>

namespace coarse::sim {

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** Ticks per common time unit. */
constexpr Tick kTicksPerPs = 1;
constexpr Tick kTicksPerNs = 1000;
constexpr Tick kTicksPerUs = 1000 * kTicksPerNs;
constexpr Tick kTicksPerMs = 1000 * kTicksPerUs;
constexpr Tick kTicksPerSec = 1000 * kTicksPerMs;

/** A tick value that is never reached. */
constexpr Tick kMaxTick = ~Tick(0);

/** Convert a duration in seconds to ticks (rounds to nearest tick). */
constexpr Tick
fromSeconds(double seconds)
{
    return static_cast<Tick>(seconds * static_cast<double>(kTicksPerSec)
                             + 0.5);
}

/** Convert a duration in microseconds to ticks. */
constexpr Tick
fromMicroseconds(double us)
{
    return static_cast<Tick>(us * static_cast<double>(kTicksPerUs) + 0.5);
}

/** Convert a duration in nanoseconds to ticks. */
constexpr Tick
fromNanoseconds(double ns)
{
    return static_cast<Tick>(ns * static_cast<double>(kTicksPerNs) + 0.5);
}

/** Convert ticks to seconds. */
constexpr double
toSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerSec);
}

/** Convert ticks to milliseconds. */
constexpr double
toMilliseconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerMs);
}

/** Convert ticks to microseconds. */
constexpr double
toMicroseconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerUs);
}

/** Convert ticks to nanoseconds. */
constexpr double
toNanoseconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerNs);
}

} // namespace coarse::sim

#endif // COARSE_SIM_TICKS_HH
