/**
 * @file
 * Lightweight statistics framework.
 *
 * Components register named statistics with a StatGroup; groups nest
 * to form a tree that can be dumped as "path.name value" lines, in the
 * spirit of gem5's stats package but sized for this project.
 */

#ifndef COARSE_SIM_STATS_HH
#define COARSE_SIM_STATS_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace coarse::sim {

/** A monotonically increasing counter. */
class Counter
{
  public:
    Counter() = default;

    void inc(std::uint64_t by = 1) { value_ += by; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** A settable scalar value. */
class Scalar
{
  public:
    Scalar() = default;

    void set(double value) { value_ = value; }
    void add(double by) { value_ += by; }
    double value() const { return value_; }
    void reset() { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/** Running mean/min/max/total over samples. */
class Distribution
{
  public:
    Distribution() = default;

    void sample(double value);

    std::uint64_t count() const { return count_; }
    double total() const { return total_; }
    double mean() const { return count_ == 0 ? 0.0 : total_ / count_; }
    double min() const { return count_ == 0 ? 0.0 : min_; }
    double max() const { return count_ == 0 ? 0.0 : max_; }
    void reset();

  private:
    std::uint64_t count_ = 0;
    double total_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Fixed-bucket histogram over [lo, hi) with under/overflow buckets. */
class Histogram
{
  public:
    /**
     * @param lo Lower bound of the bucketed range.
     * @param hi Upper bound of the bucketed range; must be > lo.
     * @param buckets Number of equal-width buckets; must be >= 1.
     */
    Histogram(double lo, double hi, std::size_t buckets);

    void sample(double value);

    std::size_t bucketCount() const { return counts_.size(); }
    std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t samples() const { return samples_; }
    double bucketLow(std::size_t i) const;
    void reset();

  private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t samples_ = 0;
};

/**
 * A named collection of statistics. Groups own no stat storage; they
 * record accessors so components keep their stats as plain members.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &name() const { return name_; }

    /** Create (or fetch) a nested group. */
    StatGroup &subgroup(const std::string &name);

    /** Register stats; the referenced objects must outlive the group. */
    void addCounter(const std::string &name, const Counter &counter);
    void addScalar(const std::string &name, const Scalar &scalar);
    void addDistribution(const std::string &name, const Distribution &dist);

    /** Register a derived value computed at dump time. */
    void addFormula(const std::string &name, std::function<double()> fn);

    /** Write "prefix.name value" lines for this group and children. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    /** Look up a dumped value by dotted path relative to this group. */
    double lookup(const std::string &dottedPath) const;

  private:
    /** Register an accessor; panics if @p name is already taken. */
    void registerValue(const std::string &name,
                       std::function<double()> fn);

    std::string name_;
    std::map<std::string, std::function<double()>> values_;
    std::map<std::string, std::unique_ptr<StatGroup>> children_;
};

} // namespace coarse::sim

#endif // COARSE_SIM_STATS_HH
