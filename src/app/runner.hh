/**
 * @file
 * Experiment runner behind the coarsesim CLI: builds machines,
 * models, and trainers from parsed Options and renders reports.
 */

#ifndef COARSE_APP_RUNNER_HH
#define COARSE_APP_RUNNER_HH

#include <ostream>
#include <string>
#include <vector>

#include "dl/trainer.hh"
#include "options.hh"

namespace coarse::app {

/** Outcome of one scheme run. */
struct RunOutcome
{
    dl::TrainingReport report;
    bool outOfMemory = false;
    /** Fabric stats dump (only when options.dumpStats). */
    std::string statsDump;
};

/** Run one scheme per Options; scheme given explicitly. */
RunOutcome runOne(const Options &options, const std::string &scheme);

/** Schemes implied by options.scheme ("all" expands). */
std::vector<std::string> schemesFor(const Options &options);

/** Full CLI flow: parse-level decisions, runs, table output. */
int runCli(const Options &options, std::ostream &out);

} // namespace coarse::app

#endif // COARSE_APP_RUNNER_HH
