#include "options.hh"

#include <charconv>

#include "sim/logging.hh"

namespace coarse::app {

namespace {

std::uint32_t
parseUint(const std::string &flag, const std::string &value)
{
    std::uint32_t out = 0;
    const auto [ptr, ec] =
        std::from_chars(value.data(), value.data() + value.size(), out);
    if (ec != std::errc{} || ptr != value.data() + value.size())
        sim::fatal("coarsesim: ", flag, " expects a non-negative "
                   "integer, got '", value, "'");
    return out;
}

std::uint64_t
parseUint64(const std::string &flag, const std::string &value)
{
    std::uint64_t out = 0;
    const auto [ptr, ec] =
        std::from_chars(value.data(), value.data() + value.size(), out);
    if (ec != std::errc{} || ptr != value.data() + value.size())
        sim::fatal("coarsesim: ", flag, " expects a non-negative "
                   "integer, got '", value, "'");
    return out;
}

} // namespace

std::uint32_t
defaultBatch(const std::string &model)
{
    if (model == "resnet50" || model == "vgg16")
        return 64;
    return 2; // BERT-class fine-tuning batches
}

Options
parseOptions(const std::vector<std::string> &args)
{
    Options options;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        auto value = [&]() -> const std::string & {
            if (i + 1 >= args.size())
                sim::fatal("coarsesim: ", arg, " expects a value");
            return args[++i];
        };

        if (arg == "--machine") {
            options.machine = value();
        } else if (arg == "--model") {
            options.model = value();
        } else if (arg == "--scheme") {
            options.scheme = value();
        } else if (arg == "--batch") {
            options.batch = parseUint(arg, value());
        } else if (arg == "--iters") {
            options.iterations = parseUint(arg, value());
        } else if (arg == "--warmup") {
            options.warmup = parseUint(arg, value());
        } else if (arg == "--nodes") {
            options.nodes = parseUint(arg, value());
        } else if (arg == "--share") {
            options.workersPerMemDevice = parseUint(arg, value());
        } else if (arg == "--seed") {
            options.seed = parseUint64(arg, value());
        } else if (arg == "--sweep" || arg.rfind("--sweep=", 0) == 0) {
            options.sweep = arg == "--sweep" ? value() : arg.substr(8);
            if (options.sweep.empty())
                sim::fatal("coarsesim: --sweep expects a spec like "
                           "'seed=1..8;model=resnet50,bert_base'");
        } else if (arg == "--jobs" || arg.rfind("--jobs=", 0) == 0) {
            const std::string spec =
                arg == "--jobs" ? value() : arg.substr(7);
            options.jobs = parseUint("--jobs", spec);
        } else if (arg == "--checkpoint-every") {
            options.checkpointEvery = parseUint(arg, value());
        } else if (arg == "--fault-schedule") {
            options.faultSchedule = value();
        } else if (arg == "--fault-seed") {
            options.faultSeed = parseUint(arg, value());
            options.randomFaults = true;
        } else if (arg == "--fault-count") {
            options.faultCount = parseUint(arg, value());
        } else if (arg == "--full-rollback") {
            options.fullRollback = true;
        } else if (arg == "--trace" || arg.rfind("--trace=", 0) == 0) {
            // --trace FILE[:categories] or --trace=FILE[:categories]
            const std::string spec =
                arg == "--trace" ? value() : arg.substr(8);
            if (spec.empty())
                sim::fatal("coarsesim: --trace expects FILE[:categories]");
            const auto colon = spec.find(':');
            options.traceFile = spec.substr(0, colon);
            if (colon != std::string::npos)
                options.traceCategories = spec.substr(colon + 1);
            if (options.traceFile.empty())
                sim::fatal("coarsesim: --trace expects a file name");
        } else if (arg == "--no-routing") {
            options.routing = false;
        } else if (arg == "--no-partitioning") {
            options.partitioning = false;
        } else if (arg == "--no-dual-sync") {
            options.dualSync = false;
        } else if (arg == "--compress") {
            options.compressGradients = true;
        } else if (arg == "--data-loading") {
            options.dataLoading = true;
        } else if (arg == "--format") {
            options.format = value();
        } else if (arg == "--stats") {
            options.dumpStats = true;
        } else if (arg == "--list") {
            options.listPresets = true;
        } else if (arg == "--help" || arg == "-h") {
            options.showHelp = true;
        } else {
            sim::fatal("coarsesim: unknown argument '", arg,
                       "' (try --help)");
        }
    }
    if (options.iterations == 0)
        sim::fatal("coarsesim: --iters must be at least 1");
    if (options.nodes == 0)
        sim::fatal("coarsesim: --nodes must be at least 1");
    if (options.format != "table" && options.format != "csv")
        sim::fatal("coarsesim: --format must be table or csv");
    if (!options.faultSchedule.empty() && options.randomFaults) {
        sim::fatal("coarsesim: --fault-schedule and --fault-seed are "
                   "mutually exclusive");
    }
    if (!options.sweep.empty() && !options.traceFile.empty()) {
        sim::fatal("coarsesim: --trace and --sweep are mutually "
                   "exclusive (replicas would race on the trace file; "
                   "trace the interesting point as a single run)");
    }
    if (options.batch == 0)
        options.batch = defaultBatch(options.model);
    return options;
}

std::string
usageText()
{
    return R"(coarsesim — simulate distributed DL training with COARSE

usage: coarsesim [options]

  --machine NAME        aws_t4 | sdsc_p100 | aws_v100   (aws_v100)
  --model NAME          resnet50 | bert_base | bert_large | vgg16
                        (resnet50)
  --scheme NAME         DENSE | AllReduce | CPU-PS | COARSE | all
                        (all)
  --batch N             per-GPU batch size (model default)
  --iters N             measured iterations (5)
  --warmup N            unmeasured warmup iterations (1)
  --nodes N             server nodes (1)
  --share N             workers per memory device (1)
  --seed N              simulation seed / replica identity (1)
  --sweep SPEC          run a sweep instead of one experiment and
                        emit one JSON line per (point, scheme).
                        SPEC is ';'-separated axes `key=values`
                        whose cartesian product defines the points;
                        values are comma lists, integer keys also
                        take lo..hi[..step] ranges. Keys: machine,
                        model, scheme, batch, nodes, share, iters,
                        seed, fault-seed. Unlisted keys inherit the
                        base flags. E.g.
                        --sweep "seed=1..8;model=resnet50,bert_base"
  --jobs N              parallel sweep replicas; 0 = all cores (1).
                        Aggregate output is byte-identical for every
                        value of N
  --checkpoint-every N  snapshot parameters every N iterations (off)
  --fault-schedule S    inject faults (COARSE only), entries split
                        by ';': kind@TIME[+DUR][:key=val,...] with
                        kind in {link-degrade, link-flap, proxy-crash,
                        gpu-straggler}, keys target=N factor=F
                        period=TIME, units ns/us/ms/s, e.g.
                        "link-degrade@1ms+4ms:target=2,factor=0.25"
  --fault-seed N        inject a seeded random fault storm instead
  --fault-count N       faults in the random storm (8)
  --full-rollback       restore the whole model on proxy failure
                        instead of only the dead proxy's shard
  --trace FILE[:CATS]   capture a timeline trace; a .json extension
                        writes Chrome/Perfetto format (load it at
                        ui.perfetto.dev), otherwise the canonical
                        text form. CATS is a comma list of
                        link,cci,synccore,proxy,iteration,partition,
                        recovery (default all). Under --scheme all,
                        only the COARSE run is traced.
  --no-routing          disable Lat/Bw tensor routing
  --no-partitioning     disable tensor partitioning
  --no-dual-sync        synchronize everything through the proxies
  --compress            fp16 gradients on the client-proxy wire
  --data-loading        fetch minibatches from the memory pool
  --format FMT          table | csv                     (table)
  --stats               dump fabric statistics after the run
  --list                list machine and model presets
  --help                this text
)";
}

} // namespace coarse::app
