#include "sweep.hh"

#include <charconv>
#include <chrono>
#include <cstdio>

#include "dl/model_zoo.hh"
#include "sim/logging.hh"
#include "sim/parallel.hh"

namespace coarse::app {

namespace {

std::uint64_t
parseSweepInt(const std::string &key, const std::string &token)
{
    std::uint64_t out = 0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), out);
    if (ec != std::errc{} || ptr != token.data() + token.size()) {
        sim::fatal("coarsesim: sweep axis '", key,
                   "' expects non-negative integers, got '", token, "'");
    }
    return out;
}

/** Split on @p sep; empty tokens are an error (named for messages). */
std::vector<std::string>
splitStrict(const std::string &text, char sep, const std::string &what)
{
    std::vector<std::string> tokens;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        std::size_t next = text.find(sep, pos);
        if (next == std::string::npos)
            next = text.size();
        tokens.push_back(text.substr(pos, next - pos));
        if (tokens.back().empty())
            sim::fatal("coarsesim: empty ", what, " in sweep spec");
        pos = next + 1;
    }
    return tokens;
}

/** Expand "lo..hi[..step]" or return the single parsed value. */
std::vector<std::uint64_t>
expandIntValues(const std::string &key, const std::string &token)
{
    const std::size_t dots = token.find("..");
    if (dots == std::string::npos)
        return {parseSweepInt(key, token)};
    const std::string loText = token.substr(0, dots);
    std::string hiText = token.substr(dots + 2);
    std::uint64_t step = 1;
    if (const std::size_t more = hiText.find(".."); more
        != std::string::npos) {
        step = parseSweepInt(key, hiText.substr(more + 2));
        hiText = hiText.substr(0, more);
        if (step == 0)
            sim::fatal("coarsesim: sweep axis '", key,
                       "' has a zero range step");
    }
    const std::uint64_t lo = parseSweepInt(key, loText);
    const std::uint64_t hi = parseSweepInt(key, hiText);
    if (hi < lo) {
        sim::fatal("coarsesim: sweep axis '", key, "' range ", lo, "..",
                   hi, " is descending");
    }
    std::vector<std::uint64_t> values;
    for (std::uint64_t v = lo; v <= hi; v += step)
        values.push_back(v);
    return values;
}

/** One sweep axis: a key plus the value list it cycles through. */
struct Axis
{
    std::string key;
    std::vector<std::string> values;
};

void
applyAxis(Options &point, const std::string &key,
          const std::string &value)
{
    // String keys validate eagerly: a typo'd model name should fail
    // at spec parse, not hours into the sweep when its point runs.
    if (key == "machine") {
        point.machine = value;
    } else if (key == "model") {
        dl::makeModel(value);
        point.model = value;
    } else if (key == "scheme") {
        if (value != "DENSE" && value != "Sharded-PS"
            && value != "CPU-PS" && value != "Async-PS"
            && value != "AllReduce" && value != "COARSE")
            sim::fatal("coarsesim: unknown sweep scheme '", value, "'");
        point.scheme = value;
    } else if (key == "batch") {
        point.batch =
            static_cast<std::uint32_t>(parseSweepInt(key, value));
    } else if (key == "nodes") {
        point.nodes =
            static_cast<std::uint32_t>(parseSweepInt(key, value));
    } else if (key == "share") {
        point.workersPerMemDevice =
            static_cast<std::uint32_t>(parseSweepInt(key, value));
    } else if (key == "iters") {
        point.iterations =
            static_cast<std::uint32_t>(parseSweepInt(key, value));
    } else if (key == "seed") {
        point.seed = parseSweepInt(key, value);
    } else if (key == "fault-seed") {
        point.faultSeed =
            static_cast<std::uint32_t>(parseSweepInt(key, value));
        point.randomFaults = true;
    } else {
        sim::fatal("coarsesim: unknown sweep key '", key,
                   "' (expected machine, model, scheme, batch, nodes, "
                   "share, iters, seed, or fault-seed)");
    }
}

bool
isIntKey(const std::string &key)
{
    return key == "batch" || key == "nodes" || key == "share"
        || key == "iters" || key == "seed" || key == "fault-seed";
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

/** Fixed-precision double: identical text on every thread/run. */
std::string
jsonDouble(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", value);
    return buf;
}

} // namespace

std::vector<Options>
parseSweepSpec(const Options &base, const std::string &spec)
{
    std::vector<Axis> axes;
    for (const std::string &axisText :
         splitStrict(spec, ';', "axis")) {
        const std::size_t eq = axisText.find('=');
        if (eq == std::string::npos || eq == 0
            || eq + 1 >= axisText.size()) {
            sim::fatal("coarsesim: sweep axis '", axisText,
                       "' is not key=values");
        }
        Axis axis;
        axis.key = axisText.substr(0, eq);
        for (const std::string &token :
             splitStrict(axisText.substr(eq + 1), ',', "value")) {
            if (isIntKey(axis.key)) {
                for (std::uint64_t v : expandIntValues(axis.key, token))
                    axis.values.push_back(std::to_string(v));
            } else {
                axis.values.push_back(token);
            }
        }
        axes.push_back(std::move(axis));
    }

    // Cartesian product, leftmost axis slowest — the natural "outer
    // loop first" reading of the spec.
    std::vector<Options> points{base};
    for (const Axis &axis : axes) {
        std::vector<Options> next;
        next.reserve(points.size() * axis.values.size());
        for (const Options &point : points) {
            for (const std::string &value : axis.values) {
                Options expanded = point;
                applyAxis(expanded, axis.key, value);
                next.push_back(std::move(expanded));
            }
        }
        points = std::move(next);
    }
    // A swept model needs its own default batch unless the user
    // pinned one; parseOptions resolved the base model's default into
    // options.batch already, so recompute only for swept models.
    for (Options &point : points) {
        if (point.model != base.model
            && spec.find("batch") == std::string::npos)
            point.batch = defaultBatch(point.model);
    }
    return points;
}

std::string
sweepResultJson(std::size_t index, const Options &point,
                const std::string &scheme, const RunOutcome &outcome)
{
    const dl::TrainingReport &r = outcome.report;
    std::string line = "{\"point\":" + std::to_string(index);
    line += ",\"machine\":\"" + jsonEscape(point.machine) + '"';
    line += ",\"model\":\"" + jsonEscape(point.model) + '"';
    line += ",\"scheme\":\"" + jsonEscape(scheme) + '"';
    line += ",\"batch\":" + std::to_string(point.batch);
    line += ",\"nodes\":" + std::to_string(point.nodes);
    line += ",\"share\":" + std::to_string(point.workersPerMemDevice);
    line += ",\"iters\":" + std::to_string(point.iterations);
    line += ",\"seed\":" + std::to_string(point.seed);
    if (point.randomFaults)
        line += ",\"fault_seed\":" + std::to_string(point.faultSeed);
    if (outcome.outOfMemory) {
        line += ",\"oom\":true}";
        return line;
    }
    line += ",\"oom\":false";
    line += ",\"workers\":" + std::to_string(r.workers);
    line += ",\"iter_ms\":" + jsonDouble(r.iterationSeconds * 1e3);
    line += ",\"compute_ms\":" + jsonDouble(r.computeSeconds * 1e3);
    line += ",\"blocked_ms\":" + jsonDouble(r.blockedCommSeconds * 1e3);
    line += ",\"gpu_util\":" + jsonDouble(r.gpuUtilization);
    line += ",\"samples_per_sec\":"
        + jsonDouble(r.throughputSamplesPerSec);
    line += ",\"fabric_bytes\":" + std::to_string(r.fabricBytes);
    line += '}';
    return line;
}

int
runSweep(const Options &options, std::ostream &out, std::ostream &diag)
{
    const std::vector<Options> points =
        parseSweepSpec(options, options.sweep);

    const auto began = std::chrono::steady_clock::now();
    sim::SweepRunner runner(options.jobs);
    // One job per point: a point runs its schemes serially (they
    // share nothing), writes its lines into its own slot, and the
    // aggregation below reads the slots in point order.
    const std::vector<std::string> lines =
        runner.map<std::string>(points.size(), [&](std::size_t i) {
            std::string block;
            for (const std::string &scheme : schemesFor(points[i])) {
                const RunOutcome outcome = runOne(points[i], scheme);
                block += sweepResultJson(i, points[i], scheme, outcome);
                block += '\n';
            }
            return block;
        });
    for (const std::string &block : lines)
        out << block;
    out.flush();

    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now()
                                      - began)
            .count();
    diag << "sweep: " << points.size() << " points, jobs="
         << runner.jobs() << ", " << jsonDouble(seconds) << " s, "
         << runner.stealCount() << " steals\n";
    return 0;
}

} // namespace coarse::app
