/**
 * @file
 * Command-line options for the coarsesim driver.
 */

#ifndef COARSE_APP_OPTIONS_HH
#define COARSE_APP_OPTIONS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace coarse::app {

/** Parsed command line. */
struct Options
{
    std::string machine = "aws_v100";
    std::string model = "resnet50";
    /** DENSE | AllReduce | CPU-PS | COARSE | all. */
    std::string scheme = "all";
    std::uint32_t batch = 0; //!< 0 = model-specific default
    std::uint32_t iterations = 5;
    std::uint32_t warmup = 1;
    std::uint32_t nodes = 1;
    std::uint32_t workersPerMemDevice = 1;
    bool routing = true;
    bool partitioning = true;
    bool dualSync = true;
    bool compressGradients = false;
    bool dataLoading = false;
    std::uint32_t checkpointEvery = 0;
    /** Declarative fault schedule (see fault::parseFaultSchedule). */
    std::string faultSchedule;
    /** Draw a seeded random fault storm instead. */
    bool randomFaults = false;
    std::uint32_t faultSeed = 0;
    std::uint32_t faultCount = 8;
    /** Disable partial rollback: restore the full model on failure. */
    bool fullRollback = false;
    /** Simulation seed: replica identity in sweeps. */
    std::uint64_t seed = 1;
    /**
     * Sweep specification ("" = single run). Semicolon-separated
     * `key=values` axes whose cartesian product defines the sweep
     * points (see parseSweepSpec in sweep.hh).
     */
    std::string sweep;
    /** Parallel sweep replicas (0 = one per hardware thread). */
    std::uint32_t jobs = 1;
    /** Trace output path ("" = tracing off). ".json" selects the
     *  Chrome/Perfetto exporter, anything else the canonical form. */
    std::string traceFile;
    /** Comma-separated trace categories ("" = all). */
    std::string traceCategories;
    bool dumpStats = false;
    /** "table" (default) or "csv". */
    std::string format = "table";
    bool listPresets = false;
    bool showHelp = false;
};

/**
 * Parse argv. Throws sim::FatalError on unknown flags or malformed
 * values; the message names the offending argument.
 */
Options parseOptions(const std::vector<std::string> &args);

/** The --help text. */
std::string usageText();

/** Model-specific default batch size (ResNet 64, BERT 2, ...). */
std::uint32_t defaultBatch(const std::string &model);

} // namespace coarse::app

#endif // COARSE_APP_OPTIONS_HH
