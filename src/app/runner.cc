#include "runner.hh"

#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>

#include "baselines/allreduce.hh"
#include "baselines/async_ps.hh"
#include "baselines/cpu_ps.hh"
#include "baselines/dense.hh"
#include "baselines/sharded_ps.hh"
#include "coarse/engine.hh"
#include "dl/model_zoo.hh"
#include "fabric/machine.hh"
#include "fault/fault.hh"
#include "fault/injector.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"
#include "sim/trace.hh"
#include "sweep.hh"

namespace coarse::app {

namespace {

/** Under --scheme all only the COARSE run is traced. */
bool
shouldTrace(const Options &options, const std::string &scheme)
{
    return !options.traceFile.empty()
        && (options.scheme != "all" || scheme == "COARSE");
}

void
exportTrace(const sim::TraceSession &session, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        sim::fatal("coarsesim: cannot open trace file '", path, "'");
    const bool json = path.size() >= 5
        && path.compare(path.size() - 5, 5, ".json") == 0;
    if (json)
        session.writeChromeJson(out);
    else
        session.writeCanonical(out);
    if (session.dropped() > 0) {
        sim::Logger("trace").warn(
            "trace ring overflowed: ", session.dropped(),
            " oldest events overwritten (raise the capacity or narrow "
            "the categories)");
    }
}

} // namespace

std::vector<std::string>
schemesFor(const Options &options)
{
    if (options.scheme == "all")
        return {"DENSE", "Sharded-PS", "CPU-PS", "Async-PS",
                "AllReduce", "COARSE"};
    return {options.scheme};
}

RunOutcome
runOne(const Options &options, const std::string &scheme)
{
    RunOutcome outcome;
    sim::Simulation simulation(options.seed);

    // The session must exist before the machine/engine are built so
    // construction-time events (e.g. the recovery Idle marker) land
    // in the capture.
    std::unique_ptr<sim::TraceSession> trace;
    if (shouldTrace(options, scheme)) {
        sim::TraceSession::Options traceOptions;
        traceOptions.capacity = std::size_t(1) << 20;
        traceOptions.processName = scheme;
        if (!options.traceCategories.empty()) {
            traceOptions.categories =
                sim::parseTraceCategories(options.traceCategories);
        }
        trace = std::make_unique<sim::TraceSession>(traceOptions);
    }

    fabric::MachineOptions machineOptions;
    machineOptions.nodes = options.nodes;
    machineOptions.workersPerMemDevice = options.workersPerMemDevice;
    auto machine = fabric::makeMachine(options.machine, simulation,
                                       machineOptions);
    const auto model = dl::makeModel(options.model);

    const bool wantFaults =
        !options.faultSchedule.empty() || options.randomFaults;
    if (wantFaults && scheme != "COARSE") {
        sim::fatal("coarsesim: fault injection requires --scheme "
                   "COARSE (the baselines have no recovery path)");
    }

    std::unique_ptr<dl::Trainer> trainer;
    std::unique_ptr<fault::FaultInjector> injector;
    const core::CoarseEngine *coarseEngine = nullptr;
    if (scheme == "DENSE") {
        trainer = std::make_unique<baselines::DenseTrainer>(
            *machine, model, options.batch);
    } else if (scheme == "AllReduce") {
        trainer = std::make_unique<baselines::AllReduceTrainer>(
            *machine, model, options.batch);
    } else if (scheme == "CPU-PS") {
        trainer = std::make_unique<baselines::CpuPsTrainer>(
            *machine, model, options.batch);
    } else if (scheme == "Sharded-PS") {
        trainer = std::make_unique<baselines::ShardedPsTrainer>(
            *machine, model, options.batch);
    } else if (scheme == "Async-PS") {
        trainer = std::make_unique<baselines::AsyncPsTrainer>(
            *machine, model, options.batch);
    } else if (scheme == "COARSE") {
        core::CoarseOptions coarseOptions;
        coarseOptions.tensorRouting = options.routing;
        coarseOptions.tensorPartitioning = options.partitioning;
        coarseOptions.dualSync = options.dualSync;
        coarseOptions.compressGradients = options.compressGradients;
        coarseOptions.dataLoading = options.dataLoading;
        coarseOptions.checkpointEveryIters = options.checkpointEvery;
        coarseOptions.recovery.partialRollback = !options.fullRollback;
        if (wantFaults) {
            coarseOptions.heartbeats = true;
            // Recovery needs a rollback floor under the fault storm.
            if (coarseOptions.checkpointEveryIters == 0)
                coarseOptions.checkpointEveryIters = 1;
        }
        auto engine = std::make_unique<core::CoarseEngine>(
            *machine, model, options.batch, coarseOptions);
        if (wantFaults) {
            fault::FaultSchedule schedule;
            if (!options.faultSchedule.empty()) {
                schedule =
                    fault::parseFaultSchedule(options.faultSchedule);
            } else {
                sim::Random rng(options.faultSeed);
                fault::RandomFaultOptions rfo;
                rfo.faults = options.faultCount;
                rfo.links = static_cast<std::uint32_t>(
                    machine->topology().linkCount());
                rfo.proxies = static_cast<std::uint32_t>(
                    machine->memDevices().size());
                rfo.workers = static_cast<std::uint32_t>(
                    machine->workers().size());
                schedule = fault::randomFaultSchedule(rng, rfo);
            }
            injector = std::make_unique<fault::FaultInjector>(
                simulation, std::move(schedule), engine->faultHooks());
            injector->arm();
        }
        coarseEngine = engine.get();
        trainer = std::move(engine);
    } else {
        sim::fatal("coarsesim: unknown scheme '", scheme,
                   "' (expected DENSE, Sharded-PS, CPU-PS, Async-PS, "
                   "AllReduce, COARSE, or all)");
    }

    try {
        outcome.report =
            trainer->run(options.iterations, options.warmup);
    } catch (const sim::FatalError &e) {
        const std::string what = e.what();
        if (what.find("needs") == std::string::npos)
            throw;
        outcome.outOfMemory = true;
        return outcome;
    }

    if (trace)
        exportTrace(*trace, options.traceFile);

    if (options.dumpStats) {
        std::ostringstream oss;
        sim::StatGroup fabricStats("fabric");
        machine->topology().attachStats(fabricStats);
        fabricStats.dump(oss);
        if (coarseEngine) {
            sim::StatGroup engineStats("coarse");
            coarseEngine->attachStats(engineStats);
            engineStats.dump(oss);
        }
        if (injector) {
            sim::StatGroup faultStats("faults");
            injector->attachStats(faultStats);
            faultStats.dump(oss);
        }
        outcome.statsDump = oss.str();
    }
    return outcome;
}

int
runCli(const Options &options, std::ostream &out)
{
    if (options.showHelp) {
        out << usageText();
        return 0;
    }
    if (!options.sweep.empty())
        return runSweep(options, out, std::cerr);
    if (options.listPresets) {
        out << "machines: aws_t4 sdsc_p100 aws_v100\n"
            << "models:   resnet50 bert_base bert_large vgg16 "
               "gpt2_medium\n"
            << "schemes:  DENSE Sharded-PS CPU-PS Async-PS AllReduce "
               "COARSE all\n";
        return 0;
    }

    if (options.format == "csv") {
        out << "scheme,machine,model,batch,iter_ms,blocked_ms,"
               "utilization,samples_per_sec,oom\n";
    } else {
        out << options.model << " on " << options.machine
            << ", batch " << options.batch << ", "
            << options.iterations << " measured iterations";
        if (options.nodes > 1)
            out << ", " << options.nodes << " nodes";
        out << "\n\n";
        out << std::left << std::setw(11) << "scheme" << std::right
            << std::setw(12) << "iter (ms)" << std::setw(14)
            << "blocked (ms)" << std::setw(10) << "util %"
            << std::setw(13) << "samples/s" << "\n";
    }

    for (const std::string &scheme : schemesFor(options)) {
        const RunOutcome outcome = runOne(options, scheme);
        const auto &r = outcome.report;
        if (options.format == "csv") {
            out << scheme << ',' << options.machine << ','
                << options.model << ',' << options.batch << ',';
            if (outcome.outOfMemory) {
                out << ",,,," << "1\n";
            } else {
                out << std::fixed << std::setprecision(4)
                    << r.iterationSeconds * 1e3 << ','
                    << r.blockedCommSeconds * 1e3 << ','
                    << r.gpuUtilization << ','
                    << r.throughputSamplesPerSec << ",0\n";
            }
            continue;
        }
        if (outcome.outOfMemory) {
            out << std::left << std::setw(11) << scheme
                << "  out of GPU memory at this batch size\n";
            continue;
        }
        out << std::left << std::setw(11) << scheme << std::right
            << std::fixed << std::setprecision(2) << std::setw(12)
            << r.iterationSeconds * 1e3 << std::setw(14)
            << r.blockedCommSeconds * 1e3 << std::setw(10)
            << r.gpuUtilization * 100.0 << std::setw(13)
            << r.throughputSamplesPerSec << "\n";
        if (!outcome.statsDump.empty())
            out << "\n" << outcome.statsDump << "\n";
    }
    return 0;
}

} // namespace coarse::app
