/**
 * @file
 * Sweep expansion and the parallel sweep driver behind
 * `coarsesim --sweep=<spec> --jobs=N`.
 *
 * A sweep spec is a semicolon-separated list of axes, each
 * `key=values` where values are a comma list ("model=resnet50,vgg16")
 * or, for integer keys, an inclusive range "lo..hi" or "lo..hi..step"
 * ("seed=1..8", "batch=2..16..2"). The sweep points are the cartesian
 * product of all axes, leftmost axis varying slowest; every point
 * inherits the remaining fields from the base Options.
 *
 * Each (point, scheme) pair produces one JSON line. Lines are emitted
 * in point-index order whatever --jobs is, so aggregate output is
 * byte-identical at any parallelism (the determinism tests assert
 * exactly this).
 */

#ifndef COARSE_APP_SWEEP_HH
#define COARSE_APP_SWEEP_HH

#include <ostream>
#include <string>
#include <vector>

#include "options.hh"
#include "runner.hh"

namespace coarse::app {

/**
 * Expand @p spec against @p base into concrete per-point Options.
 * Throws sim::FatalError on malformed specs, unknown keys, or empty
 * axes. The result preserves cartesian-product order.
 */
std::vector<Options> parseSweepSpec(const Options &base,
                                    const std::string &spec);

/** The JSON line for one finished (point, scheme) run. */
std::string sweepResultJson(std::size_t index, const Options &point,
                            const std::string &scheme,
                            const RunOutcome &outcome);

/**
 * Run every point of options.sweep across options.jobs workers and
 * write the JSON lines to @p out in point order. Returns the process
 * exit code. Wall-clock/speedup diagnostics go to @p diag (pass
 * std::cerr from the CLI) so @p out stays byte-identical across runs
 * and parallelism levels.
 */
int runSweep(const Options &options, std::ostream &out,
             std::ostream &diag);

} // namespace coarse::app

#endif // COARSE_APP_SWEEP_HH
