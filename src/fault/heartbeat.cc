#include "heartbeat.hh"

#include "sim/logging.hh"

namespace coarse::fault {

HeartbeatMonitor::HeartbeatMonitor(
    fabric::Topology &topo, fabric::NodeId monitorNode,
    std::vector<fabric::NodeId> proxies, Params params,
    std::function<bool(std::size_t)> alive,
    std::function<void(std::size_t)> onDead)
    : topo_(topo), monitorNode_(monitorNode),
      proxies_(std::move(proxies)), params_(params),
      alive_(std::move(alive)), onDead_(std::move(onDead))
{
    if (proxies_.empty())
        sim::fatal("HeartbeatMonitor: no proxies to watch");
    if (params_.interval == 0 || params_.timeout == 0)
        sim::fatal("HeartbeatMonitor: interval and timeout must be "
                   "positive");
    if (!alive_ || !onDead_)
        sim::fatal("HeartbeatMonitor: alive and onDead callbacks are "
                   "required");
    // A deadline shorter than the probe round trip would declare
    // perfectly healthy proxies dead.
    for (fabric::NodeId proxy : proxies_) {
        const sim::Tick rtt =
            2 * topo_.pathLatency(monitorNode_, proxy, fabric::kNoNvLink);
        if (params_.timeout <= rtt) {
            sim::fatal("HeartbeatMonitor: timeout ", params_.timeout,
                       " <= round trip ", rtt, " to ",
                       topo_.nodeName(proxy),
                       " would false-positive on a healthy proxy");
        }
    }
    probes_.resize(proxies_.size());
}

void
HeartbeatMonitor::start()
{
    if (running_)
        sim::fatal("HeartbeatMonitor: already running");
    running_ = true;
    for (std::size_t i = 0; i < proxies_.size(); ++i)
        beat(i);
}

void
HeartbeatMonitor::stop()
{
    running_ = false;
}

void
HeartbeatMonitor::markDead(std::size_t i)
{
    // Clearing `watching` is the single kill switch: the in-flight
    // probe's ack is ignored, the armed timeout drains without firing
    // onDead, and no further beats are scheduled for this proxy.
    probes_.at(i).watching = false;
}

void
HeartbeatMonitor::beat(std::size_t i)
{
    if (!running_ || !probes_[i].watching)
        return;

    Probe &probe = probes_[i];
    ++probe.epoch;
    probe.acked = false;
    beatsSent_.inc();
    const std::uint64_t epoch = probe.epoch;

    // Zero-byte probe out; a live proxy immediately replies with a
    // zero-byte ack. Neither reserves link pipes (latency-only path).
    fabric::Message msg;
    msg.src = monitorNode_;
    msg.dst = proxies_[i];
    msg.bytes = 0;
    msg.onDelivered = [this, i, epoch] {
        if (!alive_(i))
            return; // a crashed proxy never acks
        fabric::Message ack;
        ack.src = proxies_[i];
        ack.dst = monitorNode_;
        ack.bytes = 0;
        ack.onDelivered = [this, i, epoch] {
            if (!running_ || !probes_[i].watching)
                return;
            if (probes_[i].epoch != epoch)
                return; // a later beat superseded this probe
            probes_[i].acked = true;
            acksReceived_.inc();
        };
        topo_.send(std::move(ack), fabric::kNoNvLink);
    };
    topo_.send(std::move(msg), fabric::kNoNvLink);

    auto &events = topo_.sim().events();
    events.postIn(params_.timeout, [this, i, epoch] {
        if (!running_ || !probes_[i].watching)
            return;
        if (probes_[i].epoch != epoch || probes_[i].acked)
            return;
        timeoutsFired_.inc();
        probes_[i].watching = false;
        onDead_(i);
    });
    events.postIn(params_.interval, [this, i] { beat(i); });
}

void
HeartbeatMonitor::attachStats(sim::StatGroup &group) const
{
    group.addCounter("beats_sent", beatsSent_);
    group.addCounter("acks_received", acksReceived_);
    group.addCounter("timeouts_fired", timeoutsFired_);
}

} // namespace coarse::fault
