#include "fault.hh"

#include <algorithm>
#include <cctype>

#include "sim/logging.hh"

namespace coarse::fault {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::LinkDegrade:
        return "link-degrade";
      case FaultKind::LinkFlap:
        return "link-flap";
      case FaultKind::ProxyCrash:
        return "proxy-crash";
      case FaultKind::GpuStraggler:
        return "gpu-straggler";
    }
    return "?";
}

namespace {

std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

FaultKind
parseKind(const std::string &entry, const std::string &name)
{
    for (FaultKind kind :
         {FaultKind::LinkDegrade, FaultKind::LinkFlap,
          FaultKind::ProxyCrash, FaultKind::GpuStraggler}) {
        if (name == faultKindName(kind))
            return kind;
    }
    sim::fatal("fault schedule: unknown fault kind '", name, "' in '",
               entry, "' (expected link-degrade, link-flap, "
               "proxy-crash, or gpu-straggler)");
}

sim::Tick
parseTime(const std::string &entry, const std::string &token)
{
    std::size_t pos = 0;
    double value = 0.0;
    try {
        value = std::stod(token, &pos);
    } catch (const std::exception &) {
        sim::fatal("fault schedule: bad time '", token, "' in '", entry,
                   "'");
    }
    if (value < 0.0)
        sim::fatal("fault schedule: negative time '", token, "' in '",
                   entry, "'");
    const std::string unit = token.substr(pos);
    double scale = 0.0;
    if (unit == "ns")
        scale = 1e-9;
    else if (unit == "us")
        scale = 1e-6;
    else if (unit == "ms")
        scale = 1e-3;
    else if (unit == "s")
        scale = 1.0;
    else
        sim::fatal("fault schedule: time '", token, "' in '", entry,
                   "' needs a unit (ns, us, ms, s)");
    return sim::fromSeconds(value * scale);
}

double
parseDouble(const std::string &entry, const std::string &token)
{
    std::size_t pos = 0;
    double value = 0.0;
    try {
        value = std::stod(token, &pos);
    } catch (const std::exception &) {
        pos = token.size() + 1; // force the error below
    }
    if (pos != token.size())
        sim::fatal("fault schedule: bad number '", token, "' in '",
                   entry, "'");
    return value;
}

std::uint32_t
parseTarget(const std::string &entry, const std::string &token)
{
    const double value = parseDouble(entry, token);
    const auto target = static_cast<std::uint32_t>(value);
    if (value < 0.0 || static_cast<double>(target) != value)
        sim::fatal("fault schedule: target '", token, "' in '", entry,
                   "' must be a non-negative integer");
    return target;
}

FaultSpec
parseEntry(const std::string &raw)
{
    const std::string entry = trim(raw);
    const auto at = entry.find('@');
    if (at == std::string::npos)
        sim::fatal("fault schedule: '", entry,
                   "' is missing '@TIME' (syntax: "
                   "kind@TIME[+DURATION][:key=value,...])");

    FaultSpec f;
    f.kind = parseKind(entry, entry.substr(0, at));
    if (f.kind == FaultKind::GpuStraggler)
        f.severity = 2.0;

    std::string rest = entry.substr(at + 1);
    std::string opts;
    if (const auto colon = rest.find(':'); colon != std::string::npos) {
        opts = rest.substr(colon + 1);
        rest = rest.substr(0, colon);
    }
    if (const auto plus = rest.find('+'); plus != std::string::npos) {
        f.duration = parseTime(entry, trim(rest.substr(plus + 1)));
        rest = rest.substr(0, plus);
    }
    f.at = parseTime(entry, trim(rest));

    bool haveTarget = false;
    std::size_t begin = 0;
    while (!opts.empty() && begin <= opts.size()) {
        auto end = opts.find(',', begin);
        if (end == std::string::npos)
            end = opts.size();
        const std::string pair = trim(opts.substr(begin, end - begin));
        begin = end + 1;
        if (pair.empty())
            continue;
        const auto eq = pair.find('=');
        if (eq == std::string::npos)
            sim::fatal("fault schedule: option '", pair, "' in '", entry,
                       "' is not key=value");
        const std::string key = pair.substr(0, eq);
        const std::string value = pair.substr(eq + 1);
        if (key == "target") {
            f.target = parseTarget(entry, value);
            haveTarget = true;
        } else if (key == "factor") {
            f.severity = parseDouble(entry, value);
        } else if (key == "period") {
            f.flapPeriod = parseTime(entry, value);
        } else {
            sim::fatal("fault schedule: unknown key '", key, "' in '",
                       entry, "' (expected target, factor, period)");
        }
    }
    if (!haveTarget)
        sim::fatal("fault schedule: '", entry,
                   "' needs a target=N option");
    validateFaultSpec(f);
    return f;
}

} // namespace

void
validateFaultSpec(const FaultSpec &f)
{
    switch (f.kind) {
      case FaultKind::LinkDegrade:
      case FaultKind::LinkFlap:
        if (f.severity <= 0.0 || f.severity >= 1.0)
            sim::fatal(faultKindName(f.kind),
                       ": factor must be in (0, 1), got ", f.severity);
        if (f.kind == FaultKind::LinkFlap && f.flapPeriod == 0)
            sim::fatal("link-flap needs a period=TIME option");
        if (f.kind == FaultKind::LinkFlap && f.duration == 0)
            sim::fatal("link-flap needs a +DURATION window");
        break;
      case FaultKind::ProxyCrash:
        if (f.duration != 0)
            sim::fatal("proxy-crash is fail-stop (permanent); "
                       "drop the +DURATION");
        break;
      case FaultKind::GpuStraggler:
        if (f.severity < 1.0)
            sim::fatal("gpu-straggler: factor must be >= 1, got ",
                       f.severity);
        break;
    }
}

FaultSchedule
parseFaultSchedule(const std::string &spec)
{
    FaultSchedule schedule;
    std::size_t begin = 0;
    while (begin <= spec.size()) {
        auto end = spec.find(';', begin);
        if (end == std::string::npos)
            end = spec.size();
        const std::string entry = trim(spec.substr(begin, end - begin));
        begin = end + 1;
        if (!entry.empty())
            schedule.faults.push_back(parseEntry(entry));
        if (end == spec.size())
            break;
    }
    if (schedule.empty())
        sim::fatal("fault schedule: '", spec, "' contains no faults");
    return schedule;
}

FaultSchedule
randomFaultSchedule(sim::Random &rng, const RandomFaultOptions &options)
{
    if (options.horizon == 0)
        sim::fatal("randomFaultSchedule: horizon must be positive");

    FaultSchedule out;
    const sim::Tick lo = std::max<sim::Tick>(1, options.horizon / 10);
    const sim::Tick span = options.horizon > lo
        ? options.horizon - lo : sim::Tick(1);

    std::vector<FaultKind> kinds;
    if (options.links > 0) {
        kinds.push_back(FaultKind::LinkDegrade);
        kinds.push_back(FaultKind::LinkFlap);
    }
    if (options.workers > 0)
        kinds.push_back(FaultKind::GpuStraggler);

    for (std::size_t i = 0; i < options.faults && !kinds.empty(); ++i) {
        FaultSpec f;
        f.kind = kinds[rng.uniformInt(0, kinds.size() - 1)];
        f.at = lo + rng.uniformInt(0, span - 1);
        f.duration = std::max<sim::Tick>(1, options.horizon / 50)
            + rng.uniformInt(0, options.horizon / 10);
        switch (f.kind) {
          case FaultKind::LinkDegrade:
            f.target = static_cast<std::uint32_t>(
                rng.uniformInt(0, options.links - 1));
            f.severity = rng.uniformReal(0.1, 0.9);
            break;
          case FaultKind::LinkFlap:
            f.target = static_cast<std::uint32_t>(
                rng.uniformInt(0, options.links - 1));
            f.severity = rng.uniformReal(0.1, 0.9);
            f.flapPeriod = std::max<sim::Tick>(
                2, f.duration / (2 + rng.uniformInt(0, 6)));
            break;
          case FaultKind::GpuStraggler:
            f.target = static_cast<std::uint32_t>(
                rng.uniformInt(0, options.workers - 1));
            f.severity = rng.uniformReal(1.1, 3.0);
            break;
          case FaultKind::ProxyCrash:
            break; // drawn separately below
        }
        validateFaultSpec(f);
        out.faults.push_back(f);
    }

    // Proxy crashes hit distinct targets and always leave at least one
    // device alive, so recovery stays possible.
    std::uint32_t crashes = options.proxies > 1
        ? std::min(options.maxProxyCrashes, options.proxies - 1)
        : 0;
    std::vector<std::uint32_t> targets(options.proxies);
    for (std::uint32_t i = 0; i < options.proxies; ++i)
        targets[i] = i;
    for (std::uint32_t c = 0; c < crashes; ++c) {
        const auto j =
            c + rng.uniformInt(0, options.proxies - 1 - c);
        std::swap(targets[c], targets[j]);
        FaultSpec f;
        f.kind = FaultKind::ProxyCrash;
        f.target = targets[c];
        f.at = lo + rng.uniformInt(0, span - 1);
        out.faults.push_back(f);
    }

    std::sort(out.faults.begin(), out.faults.end(),
              [](const FaultSpec &a, const FaultSpec &b) {
                  if (a.at != b.at)
                      return a.at < b.at;
                  if (a.kind != b.kind)
                      return static_cast<int>(a.kind)
                          < static_cast<int>(b.kind);
                  return a.target < b.target;
              });
    return out;
}

} // namespace coarse::fault
