/**
 * @file
 * Fault model: what can break, when, and how badly.
 *
 * The simulator's fault-tolerance story (paper §IV-A) needs failures
 * to recover from. A FaultSchedule is a deterministic list of fault
 * events — link degradation and flapping in the fabric, fail-stop
 * proxy (memory-device) crashes, straggling worker GPUs — either
 * written declaratively (CLI / file syntax) or drawn from a seeded
 * sim::Random so chaos runs are reproducible bit for bit.
 */

#ifndef COARSE_FAULT_FAULT_HH
#define COARSE_FAULT_FAULT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/random.hh"
#include "sim/ticks.hh"

namespace coarse::fault {

/** Kinds of injectable faults. */
enum class FaultKind
{
    /** A link's effective bandwidth drops to a fraction of nominal. */
    LinkDegrade,
    /** A link oscillates between degraded and healthy. */
    LinkFlap,
    /** A memory device / proxy fail-stops (permanent). */
    ProxyCrash,
    /** A worker GPU's compute slows by a multiplier. */
    GpuStraggler,
};

const char *faultKindName(FaultKind kind);

/** One scheduled fault. */
struct FaultSpec
{
    FaultKind kind = FaultKind::LinkDegrade;
    /** Injection time (absolute simulated tick). */
    sim::Tick at = 0;
    /** Active window for transient faults (0 = permanent). */
    sim::Tick duration = 0;
    /**
     * Severity. LinkDegrade/LinkFlap: remaining bandwidth fraction in
     * (0, 1). GpuStraggler: compute-time multiplier >= 1. Ignored for
     * ProxyCrash.
     */
    double severity = 0.5;
    /** Component index: link id, proxy index, or worker index. */
    std::uint32_t target = 0;
    /** LinkFlap only: length of one down/up cycle. */
    sim::Tick flapPeriod = 0;
};

/** A deterministic fault schedule. */
struct FaultSchedule
{
    std::vector<FaultSpec> faults;

    bool empty() const { return faults.empty(); }
    std::size_t size() const { return faults.size(); }
};

/**
 * Parse a declarative schedule.
 *
 * Grammar (entries separated by ';'):
 *
 *   kind@TIME[+DURATION][:key=value,...]
 *
 * with kind in {link-degrade, link-flap, proxy-crash, gpu-straggler},
 * TIME/DURATION as a float plus unit (ns | us | ms | s), and keys
 * target=N (required), factor=F (severity), period=TIME (flap cycle).
 *
 * Example:
 *   "link-degrade@1ms+4ms:target=2,factor=0.25;proxy-crash@6ms:target=1"
 *
 * Throws sim::FatalError naming the offending token on bad input.
 */
FaultSchedule parseFaultSchedule(const std::string &spec);

/**
 * Check a spec's invariants (factor ranges, flap window). Throws
 * sim::FatalError on violation. The parser runs this on every entry;
 * FaultInjector::arm() re-runs it on hand-built schedules.
 */
void validateFaultSpec(const FaultSpec &spec);

/** Knobs for randomFaultSchedule(). */
struct RandomFaultOptions
{
    /** Faults land uniformly in [horizon/10, horizon). */
    sim::Tick horizon = sim::fromSeconds(1.0);
    /** Transient faults (degrades, flaps, stragglers) to draw. */
    std::size_t faults = 8;
    /** Targetable component counts (0 disables that fault class). */
    std::uint32_t links = 0;
    std::uint32_t proxies = 0;
    std::uint32_t workers = 0;
    /** Proxy crashes to add on top (distinct targets). */
    std::uint32_t maxProxyCrashes = 1;
};

/**
 * Draw a seeded random fault storm. Deterministic: the same Random
 * state and options always produce the same schedule.
 */
FaultSchedule randomFaultSchedule(sim::Random &rng,
                                  const RandomFaultOptions &options);

} // namespace coarse::fault

#endif // COARSE_FAULT_FAULT_HH
