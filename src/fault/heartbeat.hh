/**
 * @file
 * Proxy liveness detection via periodic heartbeats (paper §IV-A).
 *
 * A monitor node (a host CPU when the machine has one) sends a
 * zero-byte probe to every proxy each interval; a live proxy replies
 * immediately and a missing reply past the timeout declares the proxy
 * dead — exactly once. Zero-byte messages ride the fabric's
 * latency-only path, so probing never perturbs the timing of training
 * transfers, and because everything runs on the deterministic event
 * queue, detection latency is reproducible bit for bit.
 */

#ifndef COARSE_FAULT_HEARTBEAT_HH
#define COARSE_FAULT_HEARTBEAT_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "fabric/topology.hh"
#include "sim/stats.hh"
#include "sim/ticks.hh"

namespace coarse::fault {

/**
 * Watches a proxy fleet and reports fail-stop crashes.
 */
class HeartbeatMonitor
{
  public:
    struct Params
    {
        /** Probe cadence per proxy. */
        sim::Tick interval = sim::fromMicroseconds(500);
        /** Reply deadline; must exceed the probe round trip. */
        sim::Tick timeout = sim::fromMicroseconds(250);
    };

    /**
     * @param topo Fabric shared with the rest of the system.
     * @param monitorNode Node the probes originate from.
     * @param proxies Proxy nodes to watch, in fleet order.
     * @param params Cadence and deadline.
     * @param alive Predicate: does proxy @p i's hardware still
     *        respond? Consulted at probe-delivery time.
     * @param onDead Fired exactly once per proxy, at the tick its
     *        timeout expires.
     */
    HeartbeatMonitor(fabric::Topology &topo, fabric::NodeId monitorNode,
                     std::vector<fabric::NodeId> proxies, Params params,
                     std::function<bool(std::size_t)> alive,
                     std::function<void(std::size_t)> onDead);

    /** Begin probing every watched proxy. */
    void start();

    /**
     * Stop probing. Probe and timeout events already in the queue
     * drain as no-ops, so the queue empties naturally after the last
     * armed interval.
     */
    void stop();

    bool running() const { return running_; }

    /** True while proxy @p i has not been declared dead. */
    bool watching(std::size_t i) const { return probes_.at(i).watching; }

    /**
     * Declare proxy @p i dead out of band (e.g. recovery already knows
     * from a failed transfer). Probes for it stop and its pending
     * timeout drains as a no-op, so onDead never fires for a proxy
     * that is already marked dead — detection stays once-only even
     * when the monitor and the recovery path race.
     */
    void markDead(std::size_t i);

    /** @name Stats */
    ///@{
    const sim::Counter &beatsSent() const { return beatsSent_; }
    const sim::Counter &acksReceived() const { return acksReceived_; }
    const sim::Counter &timeoutsFired() const { return timeoutsFired_; }
    void attachStats(sim::StatGroup &group) const;
    ///@}

  private:
    struct Probe
    {
        bool watching = true;
        std::uint64_t epoch = 0;
        bool acked = false;
    };

    void beat(std::size_t i);

    fabric::Topology &topo_;
    fabric::NodeId monitorNode_;
    std::vector<fabric::NodeId> proxies_;
    Params params_;
    std::function<bool(std::size_t)> alive_;
    std::function<void(std::size_t)> onDead_;

    bool running_ = false;
    std::vector<Probe> probes_;

    sim::Counter beatsSent_;
    sim::Counter acksReceived_;
    sim::Counter timeoutsFired_;
};

} // namespace coarse::fault

#endif // COARSE_FAULT_HEARTBEAT_HH
