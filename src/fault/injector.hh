/**
 * @file
 * FaultInjector: turns a FaultSchedule into event-queue activity.
 *
 * The injector owns no simulated component. Instead the embedding
 * system hands it a set of hooks — degrade/restore a fabric link,
 * fail-stop a proxy, slow down a worker GPU — and arm() posts one
 * event per scheduled fault transition. Everything is driven by the
 * deterministic event queue, so a fault storm replays identically
 * run after run.
 */

#ifndef COARSE_FAULT_INJECTOR_HH
#define COARSE_FAULT_INJECTOR_HH

#include <cstdint>
#include <functional>

#include "fault.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"

namespace coarse::fault {

/**
 * Per-component callbacks the injector drives. A hook may be left
 * empty only if no schedule entry needs it; arm() fails loudly
 * otherwise.
 */
struct FaultHooks
{
    /** Cut link @p link to @p factor of nominal bandwidth. */
    std::function<void(std::uint32_t link, double factor)> degradeLink;
    /** Heal link @p link back to nominal bandwidth. */
    std::function<void(std::uint32_t link)> restoreLink;
    /** Fail-stop memory device / proxy @p proxy (permanent). */
    std::function<void(std::uint32_t proxy)> crashProxy;
    /** Multiply worker @p worker's compute time by @p factor (>= 1). */
    std::function<void(std::uint32_t worker, double factor)> slowWorker;
    /** Return worker @p worker to nominal speed. */
    std::function<void(std::uint32_t worker)> restoreWorker;
};

/**
 * Posts a fault schedule into a simulation's event queue.
 */
class FaultInjector
{
  public:
    FaultInjector(sim::Simulation &sim, FaultSchedule schedule,
                  FaultHooks hooks);

    /**
     * Post every scheduled fault (and its restore transition) into
     * the event queue. Call once, before the run starts. Faults whose
     * time is already past fire at the current tick.
     */
    void arm();

    const FaultSchedule &schedule() const { return schedule_; }

    /** @name Stats (incremented when the fault fires, not at arm) */
    ///@{
    const sim::Counter &faultsInjected() const { return injected_; }
    const sim::Counter &linkDegrades() const { return linkDegrades_; }
    const sim::Counter &linkFlaps() const { return linkFlaps_; }
    const sim::Counter &proxyCrashes() const { return proxyCrashes_; }
    const sim::Counter &gpuStragglers() const { return stragglers_; }
    void attachStats(sim::StatGroup &group) const;
    ///@}

  private:
    void armOne(const FaultSpec &spec);
    void requireHook(const FaultSpec &spec, bool present) const;

    sim::Simulation &sim_;
    FaultSchedule schedule_;
    FaultHooks hooks_;
    bool armed_ = false;

    sim::Counter injected_;
    sim::Counter linkDegrades_;
    sim::Counter linkFlaps_;
    sim::Counter proxyCrashes_;
    sim::Counter stragglers_;
};

} // namespace coarse::fault

#endif // COARSE_FAULT_INJECTOR_HH
