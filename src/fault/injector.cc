#include "injector.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace coarse::fault {

FaultInjector::FaultInjector(sim::Simulation &sim, FaultSchedule schedule,
                             FaultHooks hooks)
    : sim_(sim), schedule_(std::move(schedule)), hooks_(std::move(hooks))
{
}

void
FaultInjector::requireHook(const FaultSpec &spec, bool present) const
{
    if (!present)
        sim::fatal("FaultInjector: schedule contains ",
                   faultKindName(spec.kind),
                   " but no matching hook is installed");
}

void
FaultInjector::arm()
{
    if (armed_)
        sim::fatal("FaultInjector: arm() called twice");
    armed_ = true;
    for (const FaultSpec &spec : schedule_.faults) {
        validateFaultSpec(spec);
        armOne(spec);
    }
}

void
FaultInjector::armOne(const FaultSpec &spec)
{
    auto &events = sim_.events();
    const sim::Tick at = std::max(sim_.now(), spec.at);
    const std::uint32_t target = spec.target;
    const double severity = spec.severity;

    switch (spec.kind) {
      case FaultKind::LinkDegrade: {
        requireHook(spec, bool(hooks_.degradeLink));
        if (spec.duration > 0)
            requireHook(spec, bool(hooks_.restoreLink));
        events.post(at, [this, target, severity] {
            injected_.inc();
            linkDegrades_.inc();
            hooks_.degradeLink(target, severity);
        });
        if (spec.duration > 0) {
            events.post(at + spec.duration, [this, target] {
                hooks_.restoreLink(target);
            });
        }
        break;
      }
      case FaultKind::LinkFlap: {
        requireHook(spec, bool(hooks_.degradeLink)
                              && bool(hooks_.restoreLink));
        // Down for half a period, up for the other half, ending
        // restored no later than the end of the fault window.
        const sim::Tick end = at + spec.duration;
        for (sim::Tick t = at; t < end; t += spec.flapPeriod) {
            const bool first = t == at;
            events.post(t, [this, target, severity, first] {
                if (first) {
                    injected_.inc();
                    linkFlaps_.inc();
                }
                hooks_.degradeLink(target, severity);
            });
            const sim::Tick up = std::min(t + spec.flapPeriod / 2, end);
            events.post(up, [this, target] {
                hooks_.restoreLink(target);
            });
        }
        break;
      }
      case FaultKind::ProxyCrash: {
        requireHook(spec, bool(hooks_.crashProxy));
        events.post(at, [this, target] {
            injected_.inc();
            proxyCrashes_.inc();
            hooks_.crashProxy(target);
        });
        break;
      }
      case FaultKind::GpuStraggler: {
        requireHook(spec, bool(hooks_.slowWorker));
        if (spec.duration > 0)
            requireHook(spec, bool(hooks_.restoreWorker));
        events.post(at, [this, target, severity] {
            injected_.inc();
            stragglers_.inc();
            hooks_.slowWorker(target, severity);
        });
        if (spec.duration > 0) {
            events.post(at + spec.duration, [this, target] {
                hooks_.restoreWorker(target);
            });
        }
        break;
      }
    }
}

void
FaultInjector::attachStats(sim::StatGroup &group) const
{
    group.addCounter("faults_injected", injected_);
    group.addCounter("link_degrades", linkDegrades_);
    group.addCounter("link_flaps", linkFlaps_);
    group.addCounter("proxy_crashes", proxyCrashes_);
    group.addCounter("gpu_stragglers", stragglers_);
}

} // namespace coarse::fault
