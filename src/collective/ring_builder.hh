/**
 * @file
 * Ring-order optimization, in the spirit of NCCL's topology search.
 *
 * A ring allreduce is gated by its slowest adjacent-pair hop, so the
 * *order* of the ranks matters: on a machine whose memory devices
 * form a physical CCI ring, a communicator constructed in shuffled
 * order would route every logical hop across multiple physical links.
 * buildRing() greedily chains ranks by path bandwidth and then
 * improves the order with 2-opt moves until the bottleneck stops
 * improving.
 */

#ifndef COARSE_COLL_RING_BUILDER_HH
#define COARSE_COLL_RING_BUILDER_HH

#include <cstdint>
#include <vector>

#include "fabric/topology.hh"

namespace coarse::coll {

/** Options for the ring search. */
struct RingBuildOptions
{
    /** Transfer size used for bandwidth lookups. */
    std::uint64_t referenceBytes = 4 << 20;
    fabric::LinkMask mask = fabric::kAllLinks;
    /** Maximum 2-opt improvement passes. */
    std::uint32_t maxPasses = 8;
};

/**
 * Bottleneck bandwidth of a ring in the given order: the minimum
 * adjacent-pair (including wrap-around) path bandwidth.
 */
double ringBottleneck(fabric::Topology &topo,
                      const std::vector<fabric::NodeId> &order,
                      const RingBuildOptions &options = {});

/**
 * Reorder @p ranks to maximize the ring bottleneck. Deterministic;
 * returns a rotation-normalized order starting at the input's first
 * rank.
 */
std::vector<fabric::NodeId>
buildRing(fabric::Topology &topo, std::vector<fabric::NodeId> ranks,
          const RingBuildOptions &options = {});

} // namespace coarse::coll

#endif // COARSE_COLL_RING_BUILDER_HH
