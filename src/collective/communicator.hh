/**
 * @file
 * MPI-like collective communication over the simulated fabric.
 *
 * Collectives are *functional*: they really move and reduce float
 * data, so tests can check numerical results, while the fabric
 * accounts for time. The ring allreduce follows the classic
 * reduce-scatter + allgather schedule whose cost is
 * 2(p-1)/p * n bytes per rank — the formula the paper uses in its
 * dual-synchronization planner (§III-F).
 */

#ifndef COARSE_COLL_COMMUNICATOR_HH
#define COARSE_COLL_COMMUNICATOR_HH

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "fabric/topology.hh"
#include "sim/stats.hh"

namespace coarse::coll {

/** Options controlling ring construction and timing. */
struct RingOptions
{
    /** Link kinds the rings may traverse. */
    fabric::LinkMask mask = fabric::kAllLinks;
    /** Per-rank reduction throughput (bytes/s of summed data). */
    double reduceBytesPerSec = 50e9;
    /**
     * Number of parallel rings. Data splits evenly across rings;
     * adjacent rings run in opposite directions so every link is
     * used bidirectionally (paper Fig. 11b).
     */
    std::size_t rings = 1;
    /** Alternate ring directions (disable to study the ablation). */
    bool alternateDirections = true;
};

/**
 * An ordered set of fabric endpoints that perform collectives
 * together.
 */
class Communicator
{
  public:
    Communicator(fabric::Topology &topo,
                 std::vector<fabric::NodeId> ranks);

    std::size_t size() const { return ranks_.size(); }
    fabric::NodeId rank(std::size_t i) const { return ranks_.at(i); }
    const std::vector<fabric::NodeId> &ranks() const { return ranks_; }
    fabric::Topology &topology() { return topo_; }

    /**
     * Ring allreduce (sum) across per-rank buffers of equal length.
     * @p buffers[i] is rank i's data, updated in place to the sum.
     * @p done fires when every rank holds the result.
     */
    void allReduce(std::vector<std::span<float>> buffers,
                   const RingOptions &options, std::function<void()> done);

    /** Broadcast rank @p root's buffer to all ranks (binomial tree). */
    void broadcast(std::size_t root,
                   std::vector<std::span<float>> buffers,
                   const RingOptions &options, std::function<void()> done);

    /** Reduce (sum) every rank's buffer into rank @p root's buffer. */
    void reduce(std::size_t root, std::vector<std::span<float>> buffers,
                const RingOptions &options, std::function<void()> done);

    /**
     * All-gather: rank i's segment buffers[i] is distributed so that
     * every rank's @p gathered span (size = sum of segments) holds
     * the concatenation.
     */
    void allGather(std::vector<std::span<const float>> segments,
                   std::vector<std::span<float>> gathered,
                   const RingOptions &options, std::function<void()> done);

    /**
     * Timing-only ring allreduce of @p bytes per rank: identical
     * schedule and fabric traffic to allReduce(), but no payloads are
     * allocated. Used for full-size model runs where materializing
     * gigabytes of floats would be wasteful.
     */
    void allReduceTimed(std::uint64_t bytes, const RingOptions &options,
                        std::function<void()> done);

    /** Barrier: control-message ring; @p done when all have passed. */
    void barrier(const RingOptions &options, std::function<void()> done);

    /**
     * Idle-fabric estimate of one allreduce of @p bytes: the
     * 2(p-1)/p volume over the slowest ring hop. Used by planners.
     */
    double estimateAllReduceSeconds(std::uint64_t bytes,
                                    const RingOptions &options);

    const sim::Counter &bytesMoved() const { return bytesMoved_; }

  private:
    void runRing(std::vector<std::span<float>> buffers,
                 const RingOptions &options, std::size_t ringIndex,
                 std::size_t ringCount, bool reversed,
                 std::function<void()> done);

    void runTimedRing(std::uint64_t sliceBytes, const RingOptions &options,
                      std::size_t ringIndex, bool reversed,
                      std::function<void()> done);

    fabric::Topology &topo_;
    std::vector<fabric::NodeId> ranks_;
    sim::Counter bytesMoved_;
};

} // namespace coarse::coll

#endif // COARSE_COLL_COMMUNICATOR_HH
