#include "communicator.hh"

#include <algorithm>
#include <limits>
#include <memory>

#include "sim/logging.hh"

namespace coarse::coll {

Communicator::Communicator(fabric::Topology &topo,
                           std::vector<fabric::NodeId> ranks)
    : topo_(topo), ranks_(std::move(ranks))
{
    if (ranks_.empty())
        sim::fatal("Communicator: need at least one rank");
    for (std::size_t i = 0; i < ranks_.size(); ++i) {
        for (std::size_t j = i + 1; j < ranks_.size(); ++j) {
            if (ranks_[i] == ranks_[j])
                sim::fatal("Communicator: duplicate rank node ",
                           ranks_[i]);
        }
    }
}

namespace {

/** Element range of segment @p s when @p n elements split @p p ways. */
std::pair<std::size_t, std::size_t>
segmentRange(std::size_t n, std::size_t p, std::size_t s)
{
    const std::size_t base = n / p;
    const std::size_t extra = n % p;
    const std::size_t begin = s * base + std::min(s, extra);
    const std::size_t len = base + (s < extra ? 1 : 0);
    return {begin, begin + len};
}

/** Shared state of one ring-allreduce instance. */
struct RingState
{
    std::vector<std::span<float>> buffers; //!< per-rank slice views
    std::size_t p = 0;
    std::size_t finished = 0;
    std::function<void()> done;
};

} // namespace

void
Communicator::runRing(std::vector<std::span<float>> buffers,
                      const RingOptions &options, std::size_t ringIndex,
                      std::size_t ringCount, bool reversed,
                      std::function<void()> done)
{
    (void)ringCount;
    const std::size_t p = ranks_.size();
    auto state = std::make_shared<RingState>();
    state->buffers = std::move(buffers);
    state->p = p;
    state->done = std::move(done);

    const std::size_t n = state->buffers.front().size();
    const std::size_t totalRounds = 2 * (p - 1);

    // Rank i's successor on this ring (odd rings run backwards so
    // every physical link carries traffic in both directions).
    auto next = [p, reversed](std::size_t i) {
        return reversed ? (i + p - 1) % p : (i + 1) % p;
    };

    // sendRound(i, k): rank i transmits its round-k segment. The
    // schedule is the classic reduce-scatter + allgather ring: at
    // round k rank i sends segment (i -+ k) mod p, the receiver
    // accumulates during the first p-1 rounds and copies afterwards.
    auto sendRound = std::make_shared<
        std::function<void(std::size_t, std::size_t)>>();
    *sendRound = [this, state, next, reversed, p, n, totalRounds,
                  options, ringIndex,
                  weakSend = std::weak_ptr(sendRound)](std::size_t i,
                                                       std::size_t k) {
        // The self-capture is weak so the closure does not own itself
        // (a strong capture leaks the whole ring state). Every caller
        // — the kickoff loop below or an in-flight continuation —
        // holds a strong reference, so the lock always succeeds.
        auto sendRound = weakSend.lock();
        const std::size_t seg =
            reversed ? (i + k) % p : (i + p - k % p) % p;
        const auto [begin, end] = segmentRange(n, p, seg);
        const std::size_t j = next(i);
        const std::uint64_t bytes = (end - begin) * sizeof(float);

        // Snapshot the payload at send time.
        auto payload = std::make_shared<std::vector<float>>(
            state->buffers[i].begin() + begin,
            state->buffers[i].begin() + end);
        bytesMoved_.inc(bytes);

        fabric::Message msg;
        msg.src = ranks_[i];
        msg.dst = ranks_[j];
        msg.bytes = std::max<std::uint64_t>(bytes, 1);
        msg.tag = (std::uint64_t(ringIndex) << 32) | k;
        msg.onDelivered = [this, state, payload, begin, end, j, k,
                           totalRounds, options, sendRound] {
            const bool reducePhase = k < state->p - 1;
            auto &dst = state->buffers[j];
            if (reducePhase) {
                for (std::size_t e = begin; e < end; ++e)
                    dst[e] += (*payload)[e - begin];
            } else {
                for (std::size_t e = begin; e < end; ++e)
                    dst[e] = (*payload)[e - begin];
            }
            auto proceed = [state, j, k, totalRounds, sendRound] {
                if (k + 1 < totalRounds) {
                    (*sendRound)(j, k + 1);
                } else if (++state->finished == state->p) {
                    state->done();
                }
            };
            if (reducePhase && options.reduceBytesPerSec > 0) {
                const double sec = static_cast<double>((end - begin)
                                                       * sizeof(float))
                    / options.reduceBytesPerSec;
                topo_.sim().events().postIn(sim::fromSeconds(sec),
                                                proceed);
            } else {
                proceed();
            }
        };
        topo_.send(std::move(msg), options.mask);
    };

    for (std::size_t i = 0; i < p; ++i)
        (*sendRound)(i, 0);
}

void
Communicator::allReduce(std::vector<std::span<float>> buffers,
                        const RingOptions &options,
                        std::function<void()> done)
{
    const std::size_t p = ranks_.size();
    if (buffers.size() != p)
        sim::fatal("allReduce: got ", buffers.size(), " buffers for ", p,
                   " ranks");
    const std::size_t n = buffers.front().size();
    for (const auto &b : buffers) {
        if (b.size() != n)
            sim::fatal("allReduce: buffers must have equal length");
    }

    if (p == 1 || n == 0) {
        topo_.sim().events().postIn(0, std::move(done));
        return;
    }

    const std::size_t rings = std::max<std::size_t>(
        1, std::min<std::size_t>(options.rings, n / p ? n / p : 1));
    auto remaining = std::make_shared<std::size_t>(rings);
    auto whenRingDone = [remaining, done = std::move(done)]() mutable {
        if (--*remaining == 0)
            done();
    };

    for (std::size_t r = 0; r < rings; ++r) {
        const auto [begin, end] = segmentRange(n, rings, r);
        std::vector<std::span<float>> slice;
        slice.reserve(p);
        for (auto &b : buffers)
            slice.push_back(b.subspan(begin, end - begin));
        const bool reversed = options.alternateDirections && (r % 2 == 1);
        runRing(std::move(slice), options, r, rings, reversed,
                whenRingDone);
    }
}

void
Communicator::runTimedRing(std::uint64_t sliceBytes,
                           const RingOptions &options,
                           std::size_t ringIndex, bool reversed,
                           std::function<void()> done)
{
    const std::size_t p = ranks_.size();
    const std::uint64_t segBytes =
        std::max<std::uint64_t>(1, sliceBytes / p);
    const std::size_t totalRounds = 2 * (p - 1);
    auto finished = std::make_shared<std::size_t>(0);
    auto doneShared =
        std::make_shared<std::function<void()>>(std::move(done));

    auto next = [p, reversed](std::size_t i) {
        return reversed ? (i + p - 1) % p : (i + 1) % p;
    };

    auto sendRound = std::make_shared<
        std::function<void(std::size_t, std::size_t)>>();
    *sendRound = [this, p, next, segBytes, totalRounds, options,
                  ringIndex, finished, doneShared,
                  weakSend = std::weak_ptr(sendRound)](std::size_t i,
                                                       std::size_t k) {
        // Weak self-capture: see runRing() above.
        auto sendRound = weakSend.lock();
        const std::size_t j = next(i);
        bytesMoved_.inc(segBytes);
        fabric::Message msg;
        msg.src = ranks_[i];
        msg.dst = ranks_[j];
        msg.bytes = segBytes;
        msg.tag = (std::uint64_t(ringIndex) << 32) | k;
        msg.onDelivered = [this, p, j, k, segBytes, totalRounds, options,
                           finished, doneShared, sendRound] {
            auto proceed = [p, j, k, totalRounds, finished, doneShared,
                            sendRound] {
                if (k + 1 < totalRounds) {
                    (*sendRound)(j, k + 1);
                } else if (++*finished == p) {
                    (*doneShared)();
                }
            };
            const bool reducePhase = k < p - 1;
            if (reducePhase && options.reduceBytesPerSec > 0) {
                const double sec = static_cast<double>(segBytes)
                    / options.reduceBytesPerSec;
                topo_.sim().events().postIn(sim::fromSeconds(sec),
                                                proceed);
            } else {
                proceed();
            }
        };
        topo_.send(std::move(msg), options.mask);
    };

    for (std::size_t i = 0; i < p; ++i)
        (*sendRound)(i, 0);
}

void
Communicator::allReduceTimed(std::uint64_t bytes,
                             const RingOptions &options,
                             std::function<void()> done)
{
    const std::size_t p = ranks_.size();
    if (p == 1 || bytes == 0) {
        topo_.sim().events().postIn(0, std::move(done));
        return;
    }
    const std::size_t rings = std::max<std::size_t>(1, options.rings);
    auto remaining = std::make_shared<std::size_t>(rings);
    auto whenRingDone = [remaining, done = std::move(done)]() mutable {
        if (--*remaining == 0)
            done();
    };
    for (std::size_t r = 0; r < rings; ++r) {
        const std::uint64_t slice =
            bytes / rings + (r < bytes % rings ? 1 : 0);
        const bool reversed = options.alternateDirections && (r % 2 == 1);
        runTimedRing(std::max<std::uint64_t>(1, slice), options, r,
                     reversed, whenRingDone);
    }
}

void
Communicator::broadcast(std::size_t root,
                        std::vector<std::span<float>> buffers,
                        const RingOptions &options,
                        std::function<void()> done)
{
    const std::size_t p = ranks_.size();
    if (root >= p || buffers.size() != p)
        sim::fatal("broadcast: bad root or buffer count");
    if (p == 1) {
        topo_.sim().events().postIn(0, std::move(done));
        return;
    }

    auto held = std::make_shared<std::vector<std::span<float>>>(
        std::move(buffers));
    auto remaining = std::make_shared<std::size_t>(p - 1);
    auto finish = [remaining, done = std::move(done)]() mutable {
        if (--*remaining == 0)
            done();
    };
    auto real = [p, root](std::size_t v) { return (v + root) % p; };

    // Binomial tree over virtual ranks v = (rank - root) mod p: node
    // v forwards to v + 2^k for strides below its own arrival stride.
    auto sendSubtree =
        std::make_shared<std::function<void(std::size_t)>>();
    *sendSubtree = [this, p, real, options, finish, held,
                    weakSend = std::weak_ptr(sendSubtree)](
                       std::size_t v) {
        // Weak self-capture: see runRing() above.
        auto sendSubtree = weakSend.lock();
        std::size_t limit = p;
        if (v != 0)
            limit = v & (~v + 1); // lowest set bit of v
        for (std::size_t stride = 1; stride < limit && v + stride < p;
             stride <<= 1) {
            const std::size_t child = v + stride;
            const std::size_t from = real(v);
            const std::size_t to = real(child);
            auto &bufs = *held;
            const std::uint64_t bytes = bufs[to].size() * sizeof(float);
            auto payload = std::make_shared<std::vector<float>>(
                bufs[from].begin(), bufs[from].end());
            bytesMoved_.inc(bytes);
            fabric::Message msg;
            msg.src = ranks_[from];
            msg.dst = ranks_[to];
            msg.bytes = std::max<std::uint64_t>(bytes, 1);
            msg.onDelivered = [payload, to, child, finish, sendSubtree,
                               held]() mutable {
                std::copy(payload->begin(), payload->end(),
                          (*held)[to].begin());
                (*sendSubtree)(child);
                finish();
            };
            topo_.send(std::move(msg), options.mask);
        }
    };
    (*sendSubtree)(0);
}

void
Communicator::reduce(std::size_t root,
                     std::vector<std::span<float>> buffers,
                     const RingOptions &options,
                     std::function<void()> done)
{
    const std::size_t p = ranks_.size();
    if (root >= p || buffers.size() != p)
        sim::fatal("reduce: bad root or buffer count");
    if (p == 1) {
        topo_.sim().events().postIn(0, std::move(done));
        return;
    }

    auto held = std::make_shared<std::vector<std::span<float>>>(
        std::move(buffers));
    auto remaining = std::make_shared<std::size_t>(p - 1);
    auto finish = [remaining, done = std::move(done)]() mutable {
        if (--*remaining == 0)
            done();
    };

    for (std::size_t i = 0; i < p; ++i) {
        if (i == root)
            continue;
        auto &bufs = *held;
        const std::uint64_t bytes = bufs[i].size() * sizeof(float);
        auto payload = std::make_shared<std::vector<float>>(
            bufs[i].begin(), bufs[i].end());
        bytesMoved_.inc(bytes);
        fabric::Message msg;
        msg.src = ranks_[i];
        msg.dst = ranks_[root];
        msg.bytes = std::max<std::uint64_t>(bytes, 1);
        msg.onDelivered = [this, payload, root, held, finish,
                           options]() mutable {
            auto apply = [payload, root, held, finish]() mutable {
                auto &dst = (*held)[root];
                for (std::size_t e = 0; e < dst.size(); ++e)
                    dst[e] += (*payload)[e];
                finish();
            };
            if (options.reduceBytesPerSec > 0) {
                const double sec =
                    static_cast<double>(payload->size() * sizeof(float))
                    / options.reduceBytesPerSec;
                topo_.sim().events().postIn(sim::fromSeconds(sec),
                                                apply);
            } else {
                apply();
            }
        };
        topo_.send(std::move(msg), options.mask);
    }
}

void
Communicator::allGather(std::vector<std::span<const float>> segments,
                        std::vector<std::span<float>> gathered,
                        const RingOptions &options,
                        std::function<void()> done)
{
    const std::size_t p = ranks_.size();
    if (segments.size() != p || gathered.size() != p)
        sim::fatal("allGather: need one segment and one output per rank");

    std::size_t total = 0;
    std::vector<std::size_t> offsets(p);
    for (std::size_t i = 0; i < p; ++i) {
        offsets[i] = total;
        total += segments[i].size();
    }
    for (const auto &g : gathered) {
        if (g.size() != total)
            sim::fatal("allGather: output spans must cover all segments");
    }

    for (std::size_t i = 0; i < p; ++i) {
        std::copy(segments[i].begin(), segments[i].end(),
                  gathered[i].begin()
                      + static_cast<std::ptrdiff_t>(offsets[i]));
    }
    if (p == 1) {
        topo_.sim().events().postIn(0, std::move(done));
        return;
    }

    auto held = std::make_shared<std::vector<std::span<float>>>(
        std::move(gathered));
    auto remaining = std::make_shared<std::size_t>(p * (p - 1));
    auto finish = [remaining, done = std::move(done)]() mutable {
        if (--*remaining == 0)
            done();
    };
    for (std::size_t i = 0; i < p; ++i) {
        auto payload = std::make_shared<std::vector<float>>(
            segments[i].begin(), segments[i].end());
        for (std::size_t j = 0; j < p; ++j) {
            if (j == i)
                continue;
            const std::uint64_t bytes = payload->size() * sizeof(float);
            bytesMoved_.inc(bytes);
            fabric::Message msg;
            msg.src = ranks_[i];
            msg.dst = ranks_[j];
            msg.bytes = std::max<std::uint64_t>(bytes, 1);
            msg.onDelivered = [payload, j, off = offsets[i], held,
                               finish]() mutable {
                std::copy(payload->begin(), payload->end(),
                          (*held)[j].begin()
                              + static_cast<std::ptrdiff_t>(off));
                finish();
            };
            topo_.send(std::move(msg), options.mask);
        }
    }
}

void
Communicator::barrier(const RingOptions &options,
                      std::function<void()> done)
{
    const std::size_t p = ranks_.size();
    if (p == 1) {
        topo_.sim().events().postIn(0, std::move(done));
        return;
    }
    // Two passes around a control-message ring.
    auto hop = std::make_shared<std::function<void(std::size_t)>>();
    auto total = std::make_shared<std::size_t>(0);
    *hop = [this, p, options, total, done = std::move(done),
            weakHop = std::weak_ptr(hop)](std::size_t i) mutable {
        // Weak self-capture: see runRing() above.
        auto hop = weakHop.lock();
        if (*total == 2 * p) {
            done();
            return;
        }
        ++*total;
        fabric::Message msg;
        msg.src = ranks_[i];
        msg.dst = ranks_[(i + 1) % p];
        msg.bytes = 64;
        msg.onDelivered = [hop, i, p] { (*hop)((i + 1) % p); };
        topo_.send(std::move(msg), options.mask);
    };
    (*hop)(0);
}

double
Communicator::estimateAllReduceSeconds(std::uint64_t bytes,
                                       const RingOptions &options)
{
    const std::size_t p = ranks_.size();
    if (p <= 1 || bytes == 0)
        return 0.0;

    const std::size_t rings = std::max<std::size_t>(1, options.rings);
    // Rings sharing a link direction split its bandwidth.
    const std::size_t perDirection =
        options.alternateDirections ? (rings + 1) / 2 : rings;

    const std::uint64_t sliceBytes = std::max<std::uint64_t>(
        1, bytes / rings);
    const std::uint64_t segBytes =
        std::max<std::uint64_t>(1, sliceBytes / p);

    double bmin = std::numeric_limits<double>::infinity();
    sim::Tick lmax = 0;
    for (std::size_t i = 0; i < p; ++i) {
        const auto a = ranks_[i];
        const auto b = ranks_[(i + 1) % p];
        bmin = std::min(
            bmin, topo_.pathBandwidth(a, b, segBytes, options.mask));
        lmax = std::max(lmax, topo_.pathLatency(a, b, options.mask));
    }

    // Reduction only happens during the p-1 reduce-scatter rounds —
    // half of the 2(p-1) total — so it contributes half per step.
    const double perStep =
        static_cast<double>(segBytes * perDirection) / bmin
        + sim::toSeconds(lmax)
        + (options.reduceBytesPerSec > 0
               ? 0.5 * static_cast<double>(segBytes)
                   / options.reduceBytesPerSec
               : 0.0);
    return 2.0 * static_cast<double>(p - 1) * perStep;
}

} // namespace coarse::coll
