/**
 * @file
 * Hierarchical allreduce for multi-node systems.
 *
 * Flat rings across a cluster push every byte through the slow
 * inter-node network 2(p-1)/p times. The hierarchical schedule
 * reduces within each server node first (fast intra-node fabric),
 * ring-allreduces only the node leaders across the network, then
 * broadcasts the result back inside each node — the standard
 * three-phase schedule NCCL and MPI implementations use for
 * multi-node topologies.
 */

#ifndef COARSE_COLL_HIERARCHICAL_HH
#define COARSE_COLL_HIERARCHICAL_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "communicator.hh"

namespace coarse::coll {

/** Options for the three phases. */
struct HierarchicalOptions
{
    /** Ring/link options within one server node. */
    RingOptions intra;
    /** Ring/link options across node leaders. */
    RingOptions inter;
};

/**
 * A fixed grouping of ranks (one group per server node) with the
 * three-phase allreduce schedule over it.
 */
class HierarchicalAllReduce
{
  public:
    /**
     * @param groups Non-empty rank groups; the first rank of each
     *        group acts as its leader.
     */
    HierarchicalAllReduce(fabric::Topology &topo,
                          std::vector<std::vector<fabric::NodeId>> groups);

    std::size_t groupCount() const { return groups_.size(); }
    std::size_t totalRanks() const { return totalRanks_; }

    /**
     * Functional allreduce. @p buffers follow group order: first all
     * of group 0's ranks, then group 1's, and so on.
     */
    void allReduce(std::vector<std::span<float>> buffers,
                   const HierarchicalOptions &options,
                   std::function<void()> done);

    /** Timing-only variant (same traffic, no payloads). */
    void allReduceTimed(std::uint64_t bytes,
                        const HierarchicalOptions &options,
                        std::function<void()> done);

    /** Planner estimate for @p bytes. */
    double estimateSeconds(std::uint64_t bytes,
                           const HierarchicalOptions &options);

  private:
    fabric::Topology &topo_;
    std::vector<std::vector<fabric::NodeId>> groups_;
    std::vector<std::unique_ptr<Communicator>> groupComms_;
    std::unique_ptr<Communicator> leaderComm_;
    std::size_t totalRanks_ = 0;
};

} // namespace coarse::coll

#endif // COARSE_COLL_HIERARCHICAL_HH
