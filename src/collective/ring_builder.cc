#include "ring_builder.hh"

#include <algorithm>
#include <limits>
#include <map>

#include "sim/logging.hh"

namespace coarse::coll {

double
ringBottleneck(fabric::Topology &topo,
               const std::vector<fabric::NodeId> &order,
               const RingBuildOptions &options)
{
    if (order.size() < 2)
        return std::numeric_limits<double>::infinity();

    // Congestion-aware: when several logical hops route over the
    // same physical link they share its bandwidth, so first count
    // per-link usage across the whole ring.
    std::map<fabric::LinkId, double> usage;
    for (std::size_t i = 0; i < order.size(); ++i) {
        for (fabric::LinkId lid :
             topo.route(order[i], order[(i + 1) % order.size()],
                        options.mask))
            usage[lid] += 1.0;
    }

    double bottleneck = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < order.size(); ++i) {
        const auto a = order[i];
        const auto b = order[(i + 1) % order.size()];
        const double pathBw = topo.pathBandwidth(
            a, b, options.referenceBytes, options.mask);
        double maxShare = 1.0;
        for (fabric::LinkId lid : topo.route(a, b, options.mask))
            maxShare = std::max(maxShare, usage[lid]);
        bottleneck = std::min(bottleneck, pathBw / maxShare);
    }
    return bottleneck;
}

std::vector<fabric::NodeId>
buildRing(fabric::Topology &topo, std::vector<fabric::NodeId> ranks,
          const RingBuildOptions &options)
{
    if (ranks.size() < 3)
        return ranks;

    // Greedy chain: always extend with the best-connected remaining
    // rank (ties resolve to the earliest remaining, deterministic).
    std::vector<fabric::NodeId> order;
    std::vector<fabric::NodeId> remaining = ranks;
    order.push_back(remaining.front());
    remaining.erase(remaining.begin());
    while (!remaining.empty()) {
        const fabric::NodeId at = order.back();
        std::size_t best = 0;
        double bestScore = -1.0;
        for (std::size_t i = 0; i < remaining.size(); ++i) {
            // Prefer high bandwidth over few physical hops: chaining
            // to a distant peer burns links the rest of the ring
            // will need.
            const double bw = topo.pathBandwidth(
                at, remaining[i], options.referenceBytes, options.mask);
            const double hops = static_cast<double>(
                topo.route(at, remaining[i], options.mask).size());
            const double score = bw / std::max(1.0, hops);
            if (score > bestScore * 1.0000001) {
                bestScore = score;
                best = i;
            }
        }
        order.push_back(remaining[best]);
        remaining.erase(remaining.begin()
                        + static_cast<std::ptrdiff_t>(best));
    }

    // 2-opt: reverse segments while the wrap-around bottleneck
    // improves.
    for (std::uint32_t pass = 0; pass < options.maxPasses; ++pass) {
        bool improved = false;
        for (std::size_t i = 1; i + 1 < order.size(); ++i) {
            for (std::size_t j = i + 1; j < order.size(); ++j) {
                const double before = ringBottleneck(topo, order,
                                                     options);
                std::reverse(order.begin()
                                 + static_cast<std::ptrdiff_t>(i),
                             order.begin()
                                 + static_cast<std::ptrdiff_t>(j + 1));
                const double after = ringBottleneck(topo, order,
                                                    options);
                if (after > before * 1.0000001) {
                    improved = true;
                } else {
                    std::reverse(
                        order.begin() + static_cast<std::ptrdiff_t>(i),
                        order.begin()
                            + static_cast<std::ptrdiff_t>(j + 1));
                }
            }
        }
        if (!improved)
            break;
    }
    return order;
}

} // namespace coarse::coll
