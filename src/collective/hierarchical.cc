#include "hierarchical.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace coarse::coll {

HierarchicalAllReduce::HierarchicalAllReduce(
    fabric::Topology &topo,
    std::vector<std::vector<fabric::NodeId>> groups)
    : topo_(topo), groups_(std::move(groups))
{
    if (groups_.empty())
        sim::fatal("HierarchicalAllReduce: need at least one group");
    std::vector<fabric::NodeId> leaders;
    for (const auto &group : groups_) {
        if (group.empty())
            sim::fatal("HierarchicalAllReduce: empty group");
        totalRanks_ += group.size();
        leaders.push_back(group.front());
        groupComms_.push_back(
            std::make_unique<Communicator>(topo_, group));
    }
    leaderComm_ = std::make_unique<Communicator>(topo_, leaders);
}

void
HierarchicalAllReduce::allReduce(std::vector<std::span<float>> buffers,
                                 const HierarchicalOptions &options,
                                 std::function<void()> done)
{
    if (buffers.size() != totalRanks_)
        sim::fatal("HierarchicalAllReduce: got ", buffers.size(),
                   " buffers for ", totalRanks_, " ranks");

    // Slice the flat buffer list back into groups.
    auto held = std::make_shared<std::vector<std::span<float>>>(
        std::move(buffers));
    auto groupSlices = std::make_shared<
        std::vector<std::vector<std::span<float>>>>();
    std::size_t offset = 0;
    for (const auto &group : groups_) {
        groupSlices->emplace_back(held->begin() + offset,
                                  held->begin() + offset
                                      + group.size());
        offset += group.size();
    }

    auto doneShared =
        std::make_shared<std::function<void()>>(std::move(done));
    auto optionsShared =
        std::make_shared<HierarchicalOptions>(options);

    // Phase 3: broadcast the result from each leader.
    auto phase3 = [this, held, groupSlices, doneShared,
                   optionsShared] {
        auto remaining = std::make_shared<std::size_t>(groups_.size());
        for (std::size_t g = 0; g < groups_.size(); ++g) {
            groupComms_[g]->broadcast(
                0, (*groupSlices)[g], optionsShared->intra,
                [remaining, doneShared] {
                    if (--*remaining == 0)
                        (*doneShared)();
                });
        }
    };

    // Phase 2: allreduce across the leaders.
    auto phase2 = [this, groupSlices, optionsShared, phase3] {
        std::vector<std::span<float>> leaderBuffers;
        leaderBuffers.reserve(groups_.size());
        for (auto &slice : *groupSlices)
            leaderBuffers.push_back(slice.front());
        leaderComm_->allReduce(std::move(leaderBuffers),
                               optionsShared->inter, phase3);
    };

    // Phase 1: reduce each group into its leader.
    auto remaining = std::make_shared<std::size_t>(groups_.size());
    for (std::size_t g = 0; g < groups_.size(); ++g) {
        groupComms_[g]->reduce(0, (*groupSlices)[g],
                               optionsShared->intra,
                               [remaining, phase2] {
                                   if (--*remaining == 0)
                                       phase2();
                               });
    }
}

void
HierarchicalAllReduce::allReduceTimed(std::uint64_t bytes,
                                      const HierarchicalOptions &options,
                                      std::function<void()> done)
{
    auto doneShared =
        std::make_shared<std::function<void()>>(std::move(done));
    auto optionsShared =
        std::make_shared<HierarchicalOptions>(options);

    auto phase3 = [this, bytes, optionsShared, doneShared] {
        auto remaining = std::make_shared<std::size_t>(0);
        for (const auto &group : groups_)
            *remaining += group.size() - 1;
        if (*remaining == 0) {
            (*doneShared)();
            return;
        }
        for (const auto &group : groups_) {
            for (std::size_t m = 1; m < group.size(); ++m) {
                fabric::Message msg;
                msg.src = group.front();
                msg.dst = group[m];
                msg.bytes = bytes;
                msg.onDelivered = [remaining, doneShared] {
                    if (--*remaining == 0)
                        (*doneShared)();
                };
                topo_.send(std::move(msg), optionsShared->intra.mask);
            }
        }
    };

    auto phase2 = [this, bytes, optionsShared, phase3] {
        leaderComm_->allReduceTimed(bytes, optionsShared->inter,
                                    phase3);
    };

    // Phase 1: members stream their gradients to the leader.
    auto remaining = std::make_shared<std::size_t>(0);
    for (const auto &group : groups_)
        *remaining += group.size() - 1;
    if (*remaining == 0) {
        phase2();
        return;
    }
    for (const auto &group : groups_) {
        for (std::size_t m = 1; m < group.size(); ++m) {
            fabric::Message msg;
            msg.src = group[m];
            msg.dst = group.front();
            msg.bytes = bytes;
            msg.onDelivered = [remaining, phase2] {
                if (--*remaining == 0)
                    phase2();
            };
            topo_.send(std::move(msg), optionsShared->intra.mask);
        }
    }
}

double
HierarchicalAllReduce::estimateSeconds(std::uint64_t bytes,
                                       const HierarchicalOptions &options)
{
    // Phase 1/3: the slowest member-to-leader path in any group.
    double memberSec = 0.0;
    for (const auto &group : groups_) {
        for (std::size_t m = 1; m < group.size(); ++m) {
            const double bw = topo_.pathBandwidth(
                group[m], group.front(), bytes, options.intra.mask);
            memberSec = std::max(
                memberSec, static_cast<double>(bytes) / bw);
        }
    }
    const double leaders =
        leaderComm_->estimateAllReduceSeconds(bytes, options.inter);
    return 2.0 * memberSec + leaders;
}

} // namespace coarse::coll
