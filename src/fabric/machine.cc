#include "machine.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace coarse::fabric {

Machine::Machine(sim::Simulation &sim, std::string name,
                 std::string gpuModel, bool p2pSupported)
    : topo_(std::make_unique<Topology>(sim)), name_(std::move(name)),
      gpuModel_(std::move(gpuModel)), p2p_(p2pSupported)
{
}

void
Machine::addWorker(NodeId id, std::uint32_t serverNode)
{
    workers_.push_back(id);
    serverNodeOf_.emplace_back(id, serverNode);
    serverNodes_ = std::max(serverNodes_, serverNode + 1);
}

void
Machine::addMemDevice(NodeId id, std::uint32_t serverNode)
{
    memDevices_.push_back(id);
    serverNodeOf_.emplace_back(id, serverNode);
    serverNodes_ = std::max(serverNodes_, serverNode + 1);
}

void
Machine::addHostCpu(NodeId id, std::uint32_t serverNode)
{
    cpus_.push_back(id);
    serverNodeOf_.emplace_back(id, serverNode);
    serverNodes_ = std::max(serverNodes_, serverNode + 1);
}

void
Machine::addNic(NodeId id, std::uint32_t serverNode)
{
    nics_.push_back(id);
    serverNodeOf_.emplace_back(id, serverNode);
    serverNodes_ = std::max(serverNodes_, serverNode + 1);
}

void
Machine::pair(NodeId worker, NodeId memDevice)
{
    pairs_.emplace_back(worker, memDevice);
}

NodeId
Machine::pairedMemDevice(NodeId worker) const
{
    for (const auto &[w, m] : pairs_) {
        if (w == worker)
            return m;
    }
    sim::fatal("Machine ", name_, ": worker ", worker,
               " has no paired memory device");
}

std::uint32_t
Machine::serverNodeOf(NodeId node) const
{
    for (const auto &[n, s] : serverNodeOf_) {
        if (n == node)
            return s;
    }
    return 0;
}

namespace {

/** Parameters describing one preset's intra-node fabric. */
struct FabricParams
{
    /** Per-direction serial-bus peak (bytes/s). */
    Bandwidth busPeak = gbps(13.0);
    /** Fraction of peak at a 4 KiB access. */
    double busMinFraction = 0.12;
    /** Per-hop serial-bus latency. */
    sim::Tick busLatency = sim::fromNanoseconds(600);
    /** Dedicated CCI link peak between memory devices (0 = none). */
    Bandwidth cciPeak = gbps(12.0);
    sim::Tick cciLatency = sim::fromNanoseconds(400);
    /** NVLink per-direction peak (used when options.nvlink). */
    Bandwidth nvlinkPeak = gbps(22.0);
    sim::Tick nvlinkLatency = sim::fromNanoseconds(700);
    /** Network peak between NICs. */
    Bandwidth netPeak = gbps(12.5);
    sim::Tick netLatency = sim::fromMicroseconds(2.5);
    /** PCIe switches per server node (0 = devices hang off the CPU). */
    std::uint32_t switches = 0;
    /**
     * Bandwidth multiplier on switch-to-CPU uplinks. Fan-out switch
     * complexes often have wider uplinks than device ports, which is
     * part of why remote paths can outrun local ones on the AWS
     * instance.
     */
    double uplinkMultiplier = 1.0;
    /** Worker GPUs per server node. */
    std::uint32_t workersPerNode = 4;
    /** Pair efficiency for same-switch endpoint pairs. */
    double localEfficiency = 1.0;
    /** Pair efficiency for cross-switch endpoint pairs. */
    double remoteEfficiency = 1.0;
    /** Extra efficiency applied to all P2P pairs (no-P2P bounce). */
    double p2pEfficiency = 1.0;
    /**
     * Additional penalty on pairs involving a memory device. On
     * machines without GPU P2P, a CCI device cannot be reached by
     * GPU-direct DMA at all, so those transfers pay a second bounce.
     */
    double memDevPenalty = 1.0;
    /** NVLink mesh is a ring with one missing segment (DGX-style). */
    bool brokenNvlinkRing = true;
};

BandwidthCurve
busCurve(const FabricParams &fp)
{
    // Saturates at 2 MiB, matching the paper's Fig. 14 DMA profile.
    return BandwidthCurve::ramp(fp.busPeak, 4 * 1024, 2 * 1024 * 1024,
                                fp.busMinFraction);
}

/**
 * Build one preset. The same skeleton serves all three machines; the
 * FabricParams select the structure and the bandwidth character.
 */
std::unique_ptr<Machine>
buildMachine(sim::Simulation &sim, const std::string &name,
             const std::string &gpuModel, bool p2p,
             const FabricParams &fp, const MachineOptions &options)
{
    if (options.workersPerMemDevice == 0)
        sim::fatal("Machine ", name, ": workersPerMemDevice must be >= 1");
    if (fp.workersPerNode % options.workersPerMemDevice != 0) {
        sim::fatal("Machine ", name, ": ", fp.workersPerNode,
                   " workers not divisible by sharing ratio ",
                   options.workersPerMemDevice);
    }

    auto machine = std::make_unique<Machine>(sim, name, gpuModel, p2p);
    Topology &topo = machine->topology();

    const std::uint32_t memDevsPerNode =
        fp.workersPerNode / options.workersPerMemDevice;

    const LinkParams bus{busCurve(fp), fp.busLatency,
                         LinkKind::SerialBus};
    // Machines without a dedicated CCI interconnect (fp.cciPeak == 0)
    // synchronize proxies over the serial-bus path instead.
    const LinkParams cci{
        BandwidthCurve::ramp(fp.cciPeak > 0.0 ? fp.cciPeak : gbps(1.0),
                             4 * 1024, 2 * 1024 * 1024,
                             fp.busMinFraction),
        fp.cciLatency, LinkKind::Cci};
    const LinkParams nvl{BandwidthCurve::ramp(fp.nvlinkPeak, 4 * 1024,
                                              1024 * 1024, 0.25),
                         fp.nvlinkLatency, LinkKind::NvLink};
    const LinkParams net{
        BandwidthCurve::ramp(fp.netPeak, 16 * 1024, 4 * 1024 * 1024,
                             0.05),
        fp.netLatency, LinkKind::Network};

    std::vector<NodeId> allNics;
    for (std::uint32_t sn = 0; sn < options.nodes; ++sn) {
        const std::string prefix =
            options.nodes == 1 ? "" : "n" + std::to_string(sn) + ".";

        const NodeId cpu = topo.addNode(NodeKind::HostCpu,
                                        prefix + "cpu");
        machine->addHostCpu(cpu, sn);

        // Attachment points: switches when present, else the CPU.
        std::vector<NodeId> attach;
        if (fp.switches == 0) {
            attach.assign(fp.workersPerNode, cpu);
        } else {
            LinkParams uplink = bus;
            uplink.bandwidth =
                uplink.bandwidth.scaled(fp.uplinkMultiplier);
            for (std::uint32_t s = 0; s < fp.switches; ++s) {
                const NodeId sw = topo.addNode(
                    NodeKind::PcieSwitch,
                    prefix + "sw" + std::to_string(s));
                topo.addLink(cpu, sw, uplink);
                attach.push_back(sw);
            }
        }

        auto attachPoint = [&](std::uint32_t i) {
            return fp.switches == 0
                ? cpu
                : attach[i * fp.switches / fp.workersPerNode];
        };

        std::vector<NodeId> workers;
        for (std::uint32_t w = 0; w < fp.workersPerNode; ++w) {
            const NodeId gpu = topo.addNode(
                NodeKind::Gpu, prefix + "gpu" + std::to_string(w));
            topo.addLink(gpu, attachPoint(w), bus);
            machine->addWorker(gpu, sn);
            workers.push_back(gpu);
        }

        std::vector<NodeId> memDevs;
        for (std::uint32_t m = 0; m < memDevsPerNode; ++m) {
            // Place each memory device under the switch of the first
            // worker it serves, mirroring the paper's deployment
            // (Fig. 4: one device per switch, full local bandwidth).
            const std::uint32_t firstWorker =
                m * options.workersPerMemDevice;
            const NodeId dev = topo.addNode(
                NodeKind::MemoryDevice,
                prefix + "mem" + std::to_string(m));
            topo.addLink(dev, attachPoint(firstWorker), bus);
            machine->addMemDevice(dev, sn);
            memDevs.push_back(dev);
            for (std::uint32_t k = 0; k < options.workersPerMemDevice;
                 ++k) {
                machine->pair(workers[firstWorker + k], dev);
            }
        }

        // Dedicated CCI interconnect among memory devices (ring).
        if (fp.cciPeak > 0.0 && memDevs.size() >= 2) {
            for (std::size_t m = 0; m < memDevs.size(); ++m) {
                const std::size_t next = (m + 1) % memDevs.size();
                if (memDevs.size() == 2 && m == 1)
                    break; // avoid a duplicate link on a 2-ring
                topo.addLink(memDevs[m], memDevs[next], cci);
            }
        }

        // NVLink ring among workers, with one segment missing: NCCL
        // rings then cross PCIe somewhere, which is the "lowest
        // device-to-device bandwidth" bottleneck the paper cites.
        if (options.nvlink && workers.size() >= 2) {
            const std::size_t segments = workers.size() == 2
                ? 1
                : workers.size() - (fp.brokenNvlinkRing ? 1 : 0);
            for (std::size_t w = 0; w < segments; ++w) {
                topo.addLink(workers[w],
                             workers[(w + 1) % workers.size()], nvl);
            }
        }

        // Pair efficiencies: locality (or anti-locality) and the
        // no-P2P bounce penalty, over all device pairs. A device's
        // attach point is the peer on its first (serial-bus) link.
        auto attachNodeOf = [&topo](NodeId dev) {
            return topo.link(topo.linksAt(dev).front()).peerOf(dev);
        };
        std::vector<NodeId> devices = workers;
        devices.insert(devices.end(), memDevs.begin(), memDevs.end());
        for (std::size_t i = 0; i < devices.size(); ++i) {
            for (std::size_t j = i + 1; j < devices.size(); ++j) {
                const bool local = fp.switches == 0
                    || attachNodeOf(devices[i])
                        == attachNodeOf(devices[j]);
                double eff = local ? fp.localEfficiency
                                   : fp.remoteEfficiency;
                eff *= fp.p2pEfficiency;
                const bool touchesMemDev = i >= workers.size()
                    || j >= workers.size();
                if (touchesMemDev)
                    eff *= fp.memDevPenalty;
                if (eff < 1.0)
                    topo.setPairEfficiency(devices[i], devices[j], eff);
            }
        }

        if (options.nodes > 1) {
            const NodeId nic = topo.addNode(NodeKind::Nic,
                                            prefix + "nic");
            topo.addLink(cpu, nic, bus);
            machine->addNic(nic, sn);
            allNics.push_back(nic);
        }
    }

    // Inter-node network: full mesh between NICs (a switch fabric).
    for (std::size_t i = 0; i < allNics.size(); ++i) {
        for (std::size_t j = i + 1; j < allNics.size(); ++j)
            topo.addLink(allNics[i], allNics[j], net);
    }

    return machine;
}

} // namespace

std::unique_ptr<Machine>
makeAwsT4(sim::Simulation &sim, MachineOptions options)
{
    // 8x T4 on host PCIe, no GPU P2P: every peer transfer bounces
    // through host memory, halving effective peer bandwidth.
    FabricParams fp;
    fp.busPeak = gbps(8.0);
    fp.busMinFraction = 0.10;
    fp.switches = 0;
    fp.workersPerNode = 4;
    fp.cciPeak = 0.0; // proxies sync over the host path too
    fp.p2pEfficiency = 0.55;
    fp.memDevPenalty = 0.7; // CCI devices unreachable by GPU-direct DMA
    options.nvlink = false;
    return buildMachine(sim, "aws_t4", "T4", /*p2p=*/false, fp, options);
}

std::unique_ptr<Machine>
makeSdscP100(sim::Simulation &sim, MachineOptions options)
{
    // 4x P100 under two PCIe switches; conventional locality: local
    // pairs reach full 13 GB/s, cross-root pairs about 72% of it
    // (Fig. 8b).
    FabricParams fp;
    fp.busPeak = gbps(13.0);
    fp.busMinFraction = 0.12;
    fp.switches = 2;
    fp.workersPerNode = 2;
    fp.localEfficiency = 1.0;
    fp.remoteEfficiency = 0.72;
    options.nvlink = false;
    return buildMachine(sim, "sdsc_p100", "P100", /*p2p=*/true, fp,
                        options);
}

std::unique_ptr<Machine>
makeAwsV100(sim::Simulation &sim, MachineOptions options)
{
    // 8x V100 under four PCIe switches with NVLink. The PCIe fabric
    // shows anti-locality (Fig. 8a): same-switch pairs reach only
    // ~65% of the bandwidth remote pairs do.
    FabricParams fp;
    fp.busPeak = gbps(13.0);
    fp.busMinFraction = 0.12;
    fp.switches = 4;
    fp.workersPerNode = 4;
    fp.localEfficiency = 0.65;
    fp.remoteEfficiency = 1.0;
    fp.uplinkMultiplier = 2.0;
    options.nvlink = true;
    return buildMachine(sim, "aws_v100", "V100", /*p2p=*/true, fp,
                        options);
}

std::unique_ptr<Machine>
makeAwsV100Partitioned(sim::Simulation &sim,
                       const std::vector<GpuRole> &roles)
{
    if (roles.size() < 2)
        sim::fatal("makeAwsV100Partitioned: need at least two GPUs");
    std::size_t workers = 0;
    for (GpuRole role : roles)
        workers += role == GpuRole::Worker ? 1 : 0;
    if (workers == 0 || workers == roles.size()) {
        sim::fatal("makeAwsV100Partitioned: the partition table needs "
                   "at least one Worker and one MemoryDevice");
    }

    auto machine =
        std::make_unique<Machine>(sim, "aws_v100_partitioned", "V100",
                                  /*p2pSupported=*/true);
    Topology &topo = machine->topology();

    // Same fabric character as the aws_v100 preset: 2 GPU slots per
    // switch, fat uplinks, anti-local PCIe pairs, CCI ring.
    FabricParams fp;
    fp.busPeak = gbps(13.0);
    fp.busMinFraction = 0.12;
    fp.localEfficiency = 0.65;
    fp.remoteEfficiency = 1.0;
    fp.uplinkMultiplier = 2.0;

    const LinkParams bus{busCurve(fp), fp.busLatency,
                         LinkKind::SerialBus};
    LinkParams uplink = bus;
    uplink.bandwidth = uplink.bandwidth.scaled(fp.uplinkMultiplier);
    const LinkParams cci{
        BandwidthCurve::ramp(fp.cciPeak, 4 * 1024, 2 * 1024 * 1024,
                             fp.busMinFraction),
        fp.cciLatency, LinkKind::Cci};
    const LinkParams nvl{BandwidthCurve::ramp(fp.nvlinkPeak, 4 * 1024,
                                              1024 * 1024, 0.25),
                         fp.nvlinkLatency, LinkKind::NvLink};

    const NodeId cpu = topo.addNode(NodeKind::HostCpu, "cpu");
    machine->addHostCpu(cpu, 0);

    const std::size_t switches = (roles.size() + 1) / 2;
    std::vector<NodeId> attach;
    for (std::size_t s = 0; s < switches; ++s) {
        const NodeId sw = topo.addNode(NodeKind::PcieSwitch,
                                       "sw" + std::to_string(s));
        topo.addLink(cpu, sw, uplink);
        attach.push_back(sw);
    }

    std::vector<NodeId> workerNodes;
    std::vector<NodeId> memNodes;
    std::vector<std::size_t> memSwitch;
    std::vector<std::size_t> workerSwitch;
    for (std::size_t g = 0; g < roles.size(); ++g) {
        const std::size_t sw = g / 2;
        if (roles[g] == GpuRole::Worker) {
            const NodeId gpu = topo.addNode(
                NodeKind::Gpu,
                "gpu" + std::to_string(workerNodes.size()));
            topo.addLink(gpu, attach[sw], bus);
            machine->addWorker(gpu, 0);
            workerNodes.push_back(gpu);
            workerSwitch.push_back(sw);
        } else {
            const NodeId dev = topo.addNode(
                NodeKind::MemoryDevice,
                "mem" + std::to_string(memNodes.size()));
            topo.addLink(dev, attach[sw], bus);
            machine->addMemDevice(dev, 0);
            memNodes.push_back(dev);
            memSwitch.push_back(sw);
        }
    }

    // Pair each worker with a same-switch device when present, else
    // the nearest device by switch distance (deterministic).
    for (std::size_t w = 0; w < workerNodes.size(); ++w) {
        std::size_t best = 0;
        std::size_t bestDist = SIZE_MAX;
        for (std::size_t m = 0; m < memNodes.size(); ++m) {
            const std::size_t dist =
                workerSwitch[w] > memSwitch[m]
                    ? workerSwitch[w] - memSwitch[m]
                    : memSwitch[m] - workerSwitch[w];
            if (dist < bestDist) {
                bestDist = dist;
                best = m;
            }
        }
        machine->pair(workerNodes[w], memNodes[best]);
    }

    // CCI ring among memory devices; NVLink ring (one segment short)
    // among the workers.
    if (memNodes.size() >= 2) {
        for (std::size_t m = 0; m < memNodes.size(); ++m) {
            if (memNodes.size() == 2 && m == 1)
                break;
            topo.addLink(memNodes[m],
                         memNodes[(m + 1) % memNodes.size()], cci);
        }
    }
    if (workerNodes.size() >= 2) {
        const std::size_t segments = workerNodes.size() == 2
            ? 1
            : workerNodes.size() - 1;
        for (std::size_t w = 0; w < segments; ++w) {
            topo.addLink(workerNodes[w],
                         workerNodes[(w + 1) % workerNodes.size()],
                         nvl);
        }
    }

    // Anti-local pair efficiencies over all GPU slots.
    std::vector<NodeId> devices = workerNodes;
    devices.insert(devices.end(), memNodes.begin(), memNodes.end());
    auto attachNodeOf = [&topo](NodeId dev) {
        return topo.link(topo.linksAt(dev).front()).peerOf(dev);
    };
    for (std::size_t i = 0; i < devices.size(); ++i) {
        for (std::size_t j = i + 1; j < devices.size(); ++j) {
            const bool local =
                attachNodeOf(devices[i]) == attachNodeOf(devices[j]);
            const double eff = local ? fp.localEfficiency
                                     : fp.remoteEfficiency;
            if (eff < 1.0)
                topo.setPairEfficiency(devices[i], devices[j], eff);
        }
    }
    return machine;
}

std::unique_ptr<Machine>
makeMachine(const std::string &name, sim::Simulation &sim,
            MachineOptions options)
{
    if (name == "aws_t4")
        return makeAwsT4(sim, options);
    if (name == "sdsc_p100")
        return makeSdscP100(sim, options);
    if (name == "aws_v100")
        return makeAwsV100(sim, options);
    sim::fatal("makeMachine: unknown machine '", name,
               "' (expected aws_t4, sdsc_p100, or aws_v100)");
}

} // namespace coarse::fabric
