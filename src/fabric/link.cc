#include "link.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace coarse::fabric {

const char *
nodeKindName(NodeKind kind)
{
    switch (kind) {
      case NodeKind::HostCpu:
        return "HostCpu";
      case NodeKind::PcieSwitch:
        return "PcieSwitch";
      case NodeKind::Gpu:
        return "Gpu";
      case NodeKind::MemoryDevice:
        return "MemoryDevice";
      case NodeKind::Nic:
        return "Nic";
    }
    return "?";
}

const char *
linkKindName(LinkKind kind)
{
    switch (kind) {
      case LinkKind::SerialBus:
        return "SerialBus";
      case LinkKind::Cci:
        return "Cci";
      case LinkKind::NvLink:
        return "NvLink";
      case LinkKind::Network:
        return "Network";
    }
    return "?";
}

sim::Tick
LinkDirection::transmit(sim::Tick now, std::uint64_t bytes,
                        std::uint64_t flowBytes,
                        const BandwidthCurve &curve, double efficiency,
                        double rateCap)
{
    if (efficiency <= 0.0 || efficiency > 1.0)
        sim::panic("LinkDirection: efficiency out of (0, 1]: ", efficiency);
    const std::uint64_t lookup = flowBytes == 0 ? bytes : flowBytes;
    // Efficiency and rate caps vary per transfer (degrade factor,
    // pair efficiency), so only the pure curve lookup is memoized.
    if (&curve != cachedCurve_ || lookup != cachedSize_) {
        cachedCurve_ = &curve;
        cachedSize_ = lookup;
        cachedRate_ = curve.at(lookup);
    }
    Bandwidth rate = cachedRate_ * efficiency;
    if (rateCap > 0.0)
        rate = std::min(rate, rateCap);
    const double seconds = static_cast<double>(bytes) / rate;
    const auto serialization =
        std::max<sim::Tick>(1, sim::fromSeconds(seconds));
    const sim::Tick start = std::max(now, busyUntil_);
    busyUntil_ = start + serialization;
    bytesCarried_ += bytes;
    busyTime_ += serialization;
    return busyUntil_;
}

Link::Link(LinkId id, NodeId a, NodeId b, LinkParams params)
    : id_(id), a_(a), b_(b), params_(std::move(params))
{
    if (a == b)
        sim::fatal("Link ", id, ": self-loop on node ", a);
}

void
Link::setDegradeFactor(double factor)
{
    if (factor <= 0.0 || factor > 1.0) {
        sim::fatal("Link ", id_, ": degrade factor out of (0, 1]: ",
                   factor);
    }
    degrade_ = factor;
}

NodeId
Link::peerOf(NodeId from) const
{
    if (from == a_)
        return b_;
    if (from == b_)
        return a_;
    sim::panic("Link ", id_, ": node ", from, " is not an endpoint");
}

LinkDirection &
Link::directionFrom(NodeId from)
{
    if (from == a_)
        return aToB_;
    if (from == b_)
        return bToA_;
    sim::panic("Link ", id_, ": node ", from, " is not an endpoint");
}

const LinkDirection &
Link::directionFrom(NodeId from) const
{
    return const_cast<Link *>(this)->directionFrom(from);
}

std::uint64_t
Link::totalBytes() const
{
    return aToB_.bytesCarried() + bToA_.bytesCarried();
}

double
Link::utilization(sim::Tick now) const
{
    if (now == 0)
        return 0.0;
    const sim::Tick busier = std::max(aToB_.busyTime(), bToA_.busyTime());
    return static_cast<double>(busier) / static_cast<double>(now);
}

} // namespace coarse::fabric
