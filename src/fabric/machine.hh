/**
 * @file
 * Evaluation machines (the paper's Table I), built as topologies with
 * role annotations: worker GPUs, CCI memory devices, host CPUs, NICs.
 */

#ifndef COARSE_FABRIC_MACHINE_HH
#define COARSE_FABRIC_MACHINE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "topology.hh"

namespace coarse::fabric {

/** Options shared by all machine presets. */
struct MachineOptions
{
    /** Worker GPUs per memory device (1 = paired, 2 = shared). */
    std::uint32_t workersPerMemDevice = 1;
    /** Number of server nodes (>=2 adds NICs and a network). */
    std::uint32_t nodes = 1;
    /** Whether the GPUs have an NVLink mesh (V100 machines). */
    bool nvlink = false;
};

/**
 * A built evaluation machine: topology plus the role of every node.
 */
class Machine
{
  public:
    Machine(sim::Simulation &sim, std::string name, std::string gpuModel,
            bool p2pSupported);

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    Topology &topology() { return *topo_; }
    const Topology &topology() const { return *topo_; }

    const std::string &name() const { return name_; }
    /** GPU model string understood by coarse::dl::gpuSpec(). */
    const std::string &gpuModel() const { return gpuModel_; }
    /** False on machines where GPUs cannot do peer-to-peer DMA. */
    bool p2pSupported() const { return p2p_; }

    const std::vector<NodeId> &workers() const { return workers_; }
    const std::vector<NodeId> &memDevices() const { return memDevices_; }
    const std::vector<NodeId> &hostCpus() const { return cpus_; }
    const std::vector<NodeId> &nics() const { return nics_; }

    /** Memory device serving @p worker (its local proxy's home). */
    NodeId pairedMemDevice(NodeId worker) const;

    /** Server-node index hosting @p node (0 on single-node machines). */
    std::uint32_t serverNodeOf(NodeId node) const;

    /** Number of server nodes. */
    std::uint32_t serverNodeCount() const { return serverNodes_; }

    /** @name Builder interface (used by the presets) */
    ///@{
    void addWorker(NodeId id, std::uint32_t serverNode);
    void addMemDevice(NodeId id, std::uint32_t serverNode);
    void addHostCpu(NodeId id, std::uint32_t serverNode);
    void addNic(NodeId id, std::uint32_t serverNode);
    void pair(NodeId worker, NodeId memDevice);
    ///@}

  private:
    std::unique_ptr<Topology> topo_;
    std::string name_;
    std::string gpuModel_;
    bool p2p_;
    std::uint32_t serverNodes_ = 1;
    std::vector<NodeId> workers_;
    std::vector<NodeId> memDevices_;
    std::vector<NodeId> cpus_;
    std::vector<NodeId> nics_;
    std::vector<std::pair<NodeId, NodeId>> pairs_;
    std::vector<std::pair<NodeId, std::uint32_t>> serverNodeOf_;
};

/**
 * @name Table I presets
 *
 * Bandwidth figures follow the paper's measurements: PCIe Gen3 x16
 * sustains ~13 GB/s per direction (26 GB/s bidirectional), NVLink
 * ~25 GB/s per link direction, and the inter-node network is a
 * 100 Gb/s fabric. The AWS V100 instance exhibits "anti-locality"
 * (remote PCIe pairs faster than local ones, Fig. 8a); the SDSC P100
 * instance is conventional (local > remote, Fig. 8b); the AWS T4
 * instance has no GPU P2P support at all, so every peer transfer
 * bounces through host memory.
 */
///@{
std::unique_ptr<Machine> makeAwsT4(sim::Simulation &sim,
                                   MachineOptions options = {});
std::unique_ptr<Machine> makeSdscP100(sim::Simulation &sim,
                                      MachineOptions options = {});
std::unique_ptr<Machine> makeAwsV100(sim::Simulation &sim,
                                     MachineOptions options = {});

/** Look up a preset by name ("aws_t4", "sdsc_p100", "aws_v100"). */
std::unique_ptr<Machine> makeMachine(const std::string &name,
                                     sim::Simulation &sim,
                                     MachineOptions options = {});
///@}

/** Role of one physical GPU in a partition table (paper §IV-B). */
enum class GpuRole
{
    Worker,       //!< Trains the model.
    MemoryDevice, //!< Emulates a CCI memory device.
};

/**
 * Build an AWS-V100-style instance from a user-defined GPU partition
 * table, the way the real prototype accepts one (§IV-B: "COARSE
 * accepts a user-defined GPU partition table that describes which
 * GPU acts as a worker and which acts as a memory device").
 *
 * @param roles One entry per physical GPU (2 GPUs per PCIe switch);
 *        must contain at least one Worker and one MemoryDevice.
 *        Each worker is paired with its same-switch memory device
 *        when one exists, else with the nearest one.
 */
std::unique_ptr<Machine>
makeAwsV100Partitioned(sim::Simulation &sim,
                       const std::vector<GpuRole> &roles);

} // namespace coarse::fabric

#endif // COARSE_FABRIC_MACHINE_HH
