#include "bandwidth.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace coarse::fabric {

BandwidthCurve::BandwidthCurve(
    std::vector<std::pair<std::uint64_t, Bandwidth>> points)
    : points_(std::move(points))
{
    if (points_.empty())
        sim::fatal("BandwidthCurve: need at least one control point");
    for (std::size_t i = 0; i < points_.size(); ++i) {
        if (points_[i].second <= 0.0)
            sim::fatal("BandwidthCurve: non-positive bandwidth at point ",
                       i);
        if (points_[i].first == 0)
            sim::fatal("BandwidthCurve: zero-size control point");
        if (i > 0 && points_[i].first <= points_[i - 1].first)
            sim::fatal("BandwidthCurve: control points must be strictly "
                       "increasing in size");
    }
}

BandwidthCurve
BandwidthCurve::flat(Bandwidth bw)
{
    return BandwidthCurve({{1, bw}});
}

BandwidthCurve
BandwidthCurve::ramp(Bandwidth peak, std::uint64_t rampStart,
                     std::uint64_t saturationSize, double minFraction)
{
    if (saturationSize <= rampStart)
        sim::fatal("BandwidthCurve::ramp: saturationSize must exceed "
                   "rampStart");
    std::vector<std::pair<std::uint64_t, Bandwidth>> points;
    points.emplace_back(rampStart, peak * minFraction);
    // Intermediate points every doubling keep the log-linear ramp
    // smooth for queries between the endpoints.
    for (std::uint64_t size = rampStart * 2; size < saturationSize;
         size *= 2) {
        const double t = std::log2(static_cast<double>(size) / rampStart)
            / std::log2(static_cast<double>(saturationSize) / rampStart);
        points.emplace_back(size, peak * (minFraction
                                          + t * (1.0 - minFraction)));
    }
    points.emplace_back(saturationSize, peak);
    return BandwidthCurve(std::move(points));
}

BandwidthCurve
BandwidthCurve::fromPoints(
    std::vector<std::pair<std::uint64_t, Bandwidth>> points)
{
    return BandwidthCurve(std::move(points));
}

Bandwidth
BandwidthCurve::at(std::uint64_t size) const
{
    if (size == 0)
        size = 1;
    if (size <= points_.front().first)
        return points_.front().second;
    if (size >= points_.back().first)
        return points_.back().second;
    auto hi = std::upper_bound(
        points_.begin(), points_.end(), size,
        [](std::uint64_t s, const auto &p) { return s < p.first; });
    auto lo = hi - 1;
    const double x0 = std::log2(static_cast<double>(lo->first));
    const double x1 = std::log2(static_cast<double>(hi->first));
    const double x = std::log2(static_cast<double>(size));
    const double t = (x - x0) / (x1 - x0);
    return lo->second + t * (hi->second - lo->second);
}

Bandwidth
BandwidthCurve::peak() const
{
    Bandwidth best = 0.0;
    for (const auto &[size, bw] : points_)
        best = std::max(best, bw);
    return best;
}

std::uint64_t
BandwidthCurve::saturationSize(double fraction) const
{
    const Bandwidth target = peak() * fraction;
    for (const auto &[size, bw] : points_) {
        if (bw >= target)
            return size;
    }
    return points_.back().first;
}

BandwidthCurve
BandwidthCurve::scaled(double factor) const
{
    if (factor <= 0.0)
        sim::fatal("BandwidthCurve::scaled: factor must be positive");
    auto points = points_;
    for (auto &[size, bw] : points)
        bw *= factor;
    return BandwidthCurve(std::move(points));
}

} // namespace coarse::fabric
