/**
 * @file
 * Fabric node identifiers and the message abstraction.
 */

#ifndef COARSE_FABRIC_MESSAGE_HH
#define COARSE_FABRIC_MESSAGE_HH

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>

#include "sim/ticks.hh"

namespace coarse::fabric {

/** Dense node index within one Topology. */
using NodeId = std::uint32_t;

constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/** Role of a node in the machine. */
enum class NodeKind
{
    HostCpu,      //!< Root complex / host processor.
    PcieSwitch,   //!< Serial-bus switch.
    Gpu,          //!< Worker accelerator.
    MemoryDevice, //!< CCI-attached disaggregated memory device.
    Nic,          //!< Network interface (multi-node systems).
};

const char *nodeKindName(NodeKind kind);

/**
 * A transfer request between two endpoints.
 *
 * Payloads are not carried here — functional data movement happens in
 * the layers above; the fabric only accounts for time. @c onDelivered
 * fires once, when the final byte arrives at @c dst.
 */
struct Message
{
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    std::uint64_t bytes = 0;
    /** Opaque tag for tracing/debugging. */
    std::uint64_t tag = 0;
    /** Invoked at delivery time (may be empty). */
    std::function<void()> onDelivered;
    /**
     * Size used for effective-bandwidth lookup. Zero means "use
     * @c bytes". Transports that pipeline a large logical transfer as
     * several messages set this to the logical size so each piece
     * moves at the large-transfer rate.
     */
    std::uint64_t flowBytes = 0;
    /**
     * Upper bound on the transfer rate in bytes/second (0 = none).
     * Protocol-limited paths (e.g. CCI load/store, which never
     * saturates the bus) use this to impose their own ceiling on top
     * of the links' curves.
     */
    double rateCap = 0.0;
};

} // namespace coarse::fabric

#endif // COARSE_FABRIC_MESSAGE_HH
