#include "topology.hh"

#include <algorithm>
#include <deque>
#include <limits>

#include "sim/logging.hh"

namespace coarse::fabric {

Topology::Topology(sim::Simulation &sim) : sim_(sim) {}

NodeId
Topology::addNode(NodeKind kind, std::string name)
{
    const auto id = static_cast<NodeId>(nodes_.size());
    nodes_.push_back(NodeInfo{kind, std::move(name), {}, nullptr});
    return id;
}

LinkId
Topology::addLink(NodeId a, NodeId b, LinkParams params)
{
    if (a >= nodes_.size() || b >= nodes_.size())
        sim::fatal("Topology::addLink: unknown node");
    const auto id = static_cast<LinkId>(links_.size());
    links_.push_back(std::make_unique<Link>(id, a, b, std::move(params)));
    nodes_[a].links.push_back(id);
    nodes_[b].links.push_back(id);
    routeCache_.clear();
    return id;
}

void
Topology::setPairEfficiency(NodeId a, NodeId b, double factor)
{
    if (factor <= 0.0 || factor > 1.0)
        sim::fatal("Topology::setPairEfficiency: factor must be in (0,1]");
    pairEfficiency_[std::minmax(a, b)] = factor;
}

double
Topology::pairEfficiency(NodeId a, NodeId b) const
{
    auto it = pairEfficiency_.find(std::minmax(a, b));
    return it == pairEfficiency_.end() ? 1.0 : it->second;
}

NodeKind
Topology::nodeKind(NodeId node) const
{
    return nodes_.at(node).kind;
}

const std::string &
Topology::nodeName(NodeId node) const
{
    return nodes_.at(node).name;
}

Link &
Topology::link(LinkId id)
{
    return *links_.at(id);
}

const Link &
Topology::link(LinkId id) const
{
    return *links_.at(id);
}

const std::vector<LinkId> &
Topology::linksAt(NodeId node) const
{
    return nodes_.at(node).links;
}

const std::vector<LinkId> &
Topology::route(NodeId src, NodeId dst, LinkMask mask)
{
    const RouteKey key{src, dst, mask};
    auto it = routeCache_.find(key);
    if (it == routeCache_.end())
        it = routeCache_.emplace(key, computeRoute(src, dst, mask)).first;
    return it->second;
}

std::vector<LinkId>
Topology::computeRoute(NodeId src, NodeId dst, LinkMask mask) const
{
    if (src >= nodes_.size() || dst >= nodes_.size())
        sim::fatal("Topology::route: unknown node");
    if (src == dst)
        return {};

    // BFS by hop count. For equal hop counts we keep the path whose
    // bottleneck peak bandwidth is higher; remaining ties resolve by
    // visiting links in id order, which is deterministic.
    struct Best
    {
        std::uint32_t hops = std::numeric_limits<std::uint32_t>::max();
        double bottleneck = 0.0;
        LinkId via = 0;
        NodeId prev = kInvalidNode;
    };

    std::vector<Best> best(nodes_.size());
    best[src].hops = 0;
    best[src].bottleneck = std::numeric_limits<double>::infinity();

    std::deque<NodeId> frontier{src};
    while (!frontier.empty()) {
        const NodeId at = frontier.front();
        frontier.pop_front();
        for (LinkId lid : nodes_[at].links) {
            const Link &l = *links_[lid];
            if ((mask & linkBit(l.kind())) == 0)
                continue;
            const NodeId peer = l.peerOf(at);
            const double bottleneck =
                std::min(best[at].bottleneck, l.bandwidth().peak());
            const std::uint32_t hops = best[at].hops + 1;
            Best &cand = best[peer];
            if (hops < cand.hops
                || (hops == cand.hops && bottleneck > cand.bottleneck)) {
                const bool first = cand.hops
                    == std::numeric_limits<std::uint32_t>::max();
                cand.hops = hops;
                cand.bottleneck = bottleneck;
                cand.via = lid;
                cand.prev = at;
                if (first)
                    frontier.push_back(peer);
            }
        }
    }

    if (best[dst].prev == kInvalidNode && best[dst].hops != 0) {
        sim::fatal("Topology::route: no path from ", nodes_[src].name,
                   " to ", nodes_[dst].name, " with mask ", mask);
    }

    std::vector<LinkId> path;
    for (NodeId at = dst; at != src; at = best[at].prev)
        path.push_back(best[at].via);
    std::reverse(path.begin(), path.end());
    return path;
}

sim::Tick
Topology::pathLatency(NodeId src, NodeId dst, LinkMask mask)
{
    sim::Tick total = 0;
    for (LinkId lid : route(src, dst, mask))
        total += links_[lid]->latency();
    return total;
}

Bandwidth
Topology::pathBandwidth(NodeId src, NodeId dst, std::uint64_t size,
                        LinkMask mask)
{
    const auto &path = route(src, dst, mask);
    if (path.empty())
        return std::numeric_limits<double>::infinity();
    double bottleneck = std::numeric_limits<double>::infinity();
    for (LinkId lid : path) {
        const Link &l = *links_[lid];
        bottleneck = std::min(bottleneck,
                              l.bandwidth().at(size) * l.degradeFactor());
    }
    return bottleneck * pairEfficiency(src, dst);
}

void
Topology::attachStats(sim::StatGroup &group) const
{
    for (const auto &link : links_) {
        const std::string name = nodes_[link->endpointA()].name + "__"
            + nodes_[link->endpointB()].name;
        sim::StatGroup &sub = group.subgroup(name);
        const Link *raw = link.get();
        sub.addFormula("bytes", [raw] {
            return static_cast<double>(raw->totalBytes());
        });
        sub.addFormula("utilization", [raw, this] {
            return raw->utilization(sim_.now());
        });
    }
}

void
Topology::setReceiver(NodeId node,
                      std::function<void(const Message &)> receiver)
{
    nodes_.at(node).receiver = std::move(receiver);
}

void
Topology::setChunkBytes(std::uint64_t bytes)
{
    if (bytes == 0)
        sim::fatal("Topology::setChunkBytes: chunk size must be positive");
    chunkBytes_ = bytes;
}

void
Topology::send(Message msg, LinkMask mask)
{
    if (msg.src >= nodes_.size() || msg.dst >= nodes_.size())
        sim::fatal("Topology::send: unknown endpoint");

    static const sim::Logger logger("fabric");
    logger.trace("send ", nodes_[msg.src].name, " -> ",
                 nodes_[msg.dst].name, " bytes=", msg.bytes,
                 " tag=", msg.tag, " t=", sim_.now());

    auto transfer = std::make_shared<Transfer>();
    transfer->msg = std::move(msg);
    transfer->path = route(transfer->msg.src, transfer->msg.dst, mask);
    transfer->totalBytes = transfer->msg.bytes;
    transfer->efficiency =
        pairEfficiency(transfer->msg.src, transfer->msg.dst);
    if (transfer->msg.flowBytes == 0)
        transfer->msg.flowBytes = transfer->msg.bytes;

    if (transfer->msg.src == transfer->msg.dst
        || transfer->totalBytes == 0) {
        // Local or zero-byte control message: latency only.
        const sim::Tick latency = transfer->path.empty()
            ? 0
            : pathLatency(transfer->msg.src, transfer->msg.dst, mask);
        sim_.events().postIn(latency, [this, transfer] {
            deliver(transfer, 0);
        });
        return;
    }

    // Launch every packet at the first hop now; FIFO link pipes
    // serialize them, and each packet advances independently so large
    // transfers pipeline across hops.
    std::uint64_t remaining = transfer->totalBytes;
    while (remaining > 0) {
        const std::uint64_t piece = std::min(remaining, chunkBytes_);
        forwardPacket(transfer, 0, transfer->msg.src, piece);
        remaining -= piece;
    }
}

void
Topology::forwardPacket(const std::shared_ptr<Transfer> &transfer,
                        std::size_t hop, NodeId at, std::uint64_t bytes)
{
    if (hop == transfer->path.size()) {
        deliver(transfer, bytes);
        return;
    }
    Link &l = *links_[transfer->path[hop]];
    LinkDirection &pipe = l.directionFrom(at);
    // Pair efficiency applies only to serial-bus hops; the degrade
    // factor (fault injection) applies to any hop kind.
    const double efficiency = l.degradeFactor()
        * (l.kind() == LinkKind::SerialBus ? transfer->efficiency : 1.0);
    const sim::Tick busyBefore = pipe.busyTime();
    const sim::Tick sent =
        pipe.transmit(sim_.now(), bytes, transfer->msg.flowBytes,
                      l.bandwidth(), efficiency, transfer->msg.rateCap);
    const sim::Tick arrival = sent + l.latency();
    const NodeId next = l.peerOf(at);
    if (sim::traceEnabled(sim::TraceCategory::Link)) {
        // The pipe is FIFO, so this packet occupied it for exactly the
        // busyTime it added, ending at `sent` — per-direction spans
        // can therefore never overlap, which the golden-trace tests
        // assert and the property test sums against stats counters.
        const sim::Tick dur = pipe.busyTime() - busyBefore;
        const auto trackName = [&] {
            return nodes_[at].name + "->" + nodes_[next].name + "#"
                + std::to_string(l.id());
        };
        sim::traceSpan(sim::TraceCategory::Link, pipe.traceHandle(),
                       trackName, "tx", sent - dur, sent, bytes,
                       transfer->msg.flowBytes);
        if (sent > 0) {
            sim::traceCounter(sim::TraceCategory::Link,
                              pipe.traceHandle(), trackName, "util_ppm",
                              sent, pipe.busyTime() * 1000000 / sent);
        }
    }
    sim_.events().post(arrival, [this, transfer, hop, next, bytes] {
        forwardPacket(transfer, hop + 1, next, bytes);
    });
}

void
Topology::deliver(const std::shared_ptr<Transfer> &transfer,
                  std::uint64_t bytes)
{
    transfer->bytesDelivered += bytes;
    if (transfer->bytesDelivered < transfer->totalBytes)
        return;
    const auto &receiver = nodes_[transfer->msg.dst].receiver;
    if (receiver)
        receiver(transfer->msg);
    if (transfer->msg.onDelivered)
        transfer->msg.onDelivered();
}

} // namespace coarse::fabric
