/**
 * @file
 * Interconnect topology: nodes, links, routing, and message transport.
 */

#ifndef COARSE_FABRIC_TOPOLOGY_HH
#define COARSE_FABRIC_TOPOLOGY_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "link.hh"
#include "message.hh"
#include "sim/simulation.hh"

namespace coarse::fabric {

/** Bitmask of link kinds a transfer may traverse. */
using LinkMask = std::uint32_t;

constexpr LinkMask
linkBit(LinkKind kind)
{
    return LinkMask(1) << static_cast<std::uint32_t>(kind);
}

constexpr LinkMask kSerialBusOnly = linkBit(LinkKind::SerialBus);
constexpr LinkMask kAllLinks =
    linkBit(LinkKind::SerialBus) | linkBit(LinkKind::Cci)
    | linkBit(LinkKind::NvLink) | linkBit(LinkKind::Network);
/** Everything except NVLink: what the COARSE profiler measures. */
constexpr LinkMask kNoNvLink = kAllLinks & ~linkBit(LinkKind::NvLink);
/** CCI fabric plus serial bus (proxy-to-proxy synchronization path). */
constexpr LinkMask kCciPath =
    linkBit(LinkKind::Cci) | linkBit(LinkKind::SerialBus)
    | linkBit(LinkKind::Network);

/**
 * The machine's interconnect graph plus a chunked, event-driven
 * message transport over it.
 *
 * Transfers are split into packets (default 512 KiB); each packet is
 * forwarded hop by hop, reserving each link direction FIFO at the
 * effective bandwidth for the *logical* transfer size. Opposite
 * directions of a link are independent, so the transport exhibits the
 * full-duplex behaviour the paper's partitioning scheme exploits.
 */
class Topology
{
  public:
    explicit Topology(sim::Simulation &sim);

    Topology(const Topology &) = delete;
    Topology &operator=(const Topology &) = delete;

    /** @name Construction */
    ///@{
    NodeId addNode(NodeKind kind, std::string name);
    LinkId addLink(NodeId a, NodeId b, LinkParams params);

    /**
     * Scale the effective bandwidth of all serial-bus hops for
     * transfers between endpoints @p a and @p b. This encodes the
     * measured per-pair non-uniformity (Fig. 8), including the AWS
     * "anti-locality" where remote pairs outrun local ones.
     */
    void setPairEfficiency(NodeId a, NodeId b, double factor);
    ///@}

    /** @name Introspection */
    ///@{
    std::size_t nodeCount() const { return nodes_.size(); }
    std::size_t linkCount() const { return links_.size(); }
    NodeKind nodeKind(NodeId node) const;
    const std::string &nodeName(NodeId node) const;
    Link &link(LinkId id);
    const Link &link(LinkId id) const;
    double pairEfficiency(NodeId a, NodeId b) const;

    /** Links incident to @p node. */
    const std::vector<LinkId> &linksAt(NodeId node) const;

    /**
     * Hop path from @p src to @p dst using only links in @p mask.
     * Fewest hops wins; ties break on higher bottleneck peak
     * bandwidth, then on link ids (deterministic).
     * @return Link ids in traversal order; empty if src == dst.
     */
    const std::vector<LinkId> &route(NodeId src, NodeId dst,
                                     LinkMask mask = kAllLinks);

    /** Sum of link latencies along the route (an idle-system RTT/2). */
    sim::Tick pathLatency(NodeId src, NodeId dst,
                          LinkMask mask = kAllLinks);

    /**
     * Idle-system effective bandwidth for a @p size byte transfer:
     * the bottleneck hop's curve value times the pair efficiency.
     */
    Bandwidth pathBandwidth(NodeId src, NodeId dst, std::uint64_t size,
                            LinkMask mask = kAllLinks);
    ///@}

    /** @name Transport */
    ///@{
    /**
     * Start an asynchronous transfer. Completion fires
     * @c msg.onDelivered and any receiver registered at @c msg.dst.
     * A zero-byte message still experiences path latency (it models a
     * control message of negligible size).
     */
    void send(Message msg, LinkMask mask = kAllLinks);

    /** Register a delivery handler for messages arriving at @p node. */
    void setReceiver(NodeId node,
                     std::function<void(const Message &)> receiver);

    /** Packet granularity used to pipeline large transfers. */
    void setChunkBytes(std::uint64_t bytes);
    std::uint64_t chunkBytes() const { return chunkBytes_; }
    ///@}

    sim::Simulation &sim() { return sim_; }

    /**
     * Register per-link statistics (bytes carried, utilization of
     * the busier direction) under @p group, one subgroup per link
     * named "<a>__<b>". Values are read live at dump time.
     */
    void attachStats(sim::StatGroup &group) const;

  private:
    struct NodeInfo
    {
        NodeKind kind;
        std::string name;
        std::vector<LinkId> links;
        std::function<void(const Message &)> receiver;
    };

    struct RouteKey
    {
        NodeId src;
        NodeId dst;
        LinkMask mask;

        bool
        operator<(const RouteKey &o) const
        {
            if (src != o.src)
                return src < o.src;
            if (dst != o.dst)
                return dst < o.dst;
            return mask < o.mask;
        }
    };

    struct Transfer
    {
        Message msg;
        std::vector<LinkId> path;
        std::uint64_t bytesDelivered = 0;
        std::uint64_t totalBytes = 0;
        double efficiency = 1.0;
    };

    std::vector<LinkId> computeRoute(NodeId src, NodeId dst,
                                     LinkMask mask) const;

    /** Advance one packet from hop @p hop; schedules the next hop. */
    void forwardPacket(const std::shared_ptr<Transfer> &transfer,
                       std::size_t hop, NodeId at, std::uint64_t bytes);

    void deliver(const std::shared_ptr<Transfer> &transfer,
                 std::uint64_t bytes);

    sim::Simulation &sim_;
    std::vector<NodeInfo> nodes_;
    std::vector<std::unique_ptr<Link>> links_;
    std::map<RouteKey, std::vector<LinkId>> routeCache_;
    std::map<std::pair<NodeId, NodeId>, double> pairEfficiency_;
    std::uint64_t chunkBytes_ = 512 * 1024;
};

} // namespace coarse::fabric

#endif // COARSE_FABRIC_TOPOLOGY_HH
