/**
 * @file
 * Size-dependent effective-bandwidth curves.
 *
 * Serial-bus transfers do not reach peak bandwidth at small access
 * sizes: per-transaction protocol overhead dominates until the access
 * is large enough (the paper's Fig. 13/14 measure exactly this on the
 * FPGA CCI prototype, with DMA saturating at 2 MB). A BandwidthCurve
 * maps transfer size to effective bandwidth via piecewise-linear
 * interpolation in log2(size).
 */

#ifndef COARSE_FABRIC_BANDWIDTH_HH
#define COARSE_FABRIC_BANDWIDTH_HH

#include <cstdint>
#include <utility>
#include <vector>

namespace coarse::fabric {

/** Bytes per second. */
using Bandwidth = double;

constexpr double kKiB = 1024.0;
constexpr double kMiB = 1024.0 * kKiB;
constexpr double kGiB = 1024.0 * kMiB;

/** Convert GB/s (decimal, as vendors quote) to bytes/second. */
constexpr Bandwidth
gbps(double gigabytesPerSecond)
{
    return gigabytesPerSecond * 1e9;
}

/**
 * Effective bandwidth as a function of transfer size.
 *
 * Curves are defined by (size, bandwidth) control points; queries
 * clamp below the first and above the last point and interpolate
 * linearly in log2(size) between points.
 */
class BandwidthCurve
{
  public:
    /** A flat curve: the same bandwidth at every size. */
    static BandwidthCurve flat(Bandwidth bw);

    /**
     * A saturating ramp: @p minFraction of peak at @p rampStart bytes,
     * rising to full @p peak at @p saturationSize bytes and flat after.
     */
    static BandwidthCurve ramp(Bandwidth peak, std::uint64_t rampStart,
                               std::uint64_t saturationSize,
                               double minFraction);

    /** Build from explicit (size, bandwidth) points, sorted by size. */
    static BandwidthCurve
    fromPoints(std::vector<std::pair<std::uint64_t, Bandwidth>> points);

    /** Effective bandwidth for a transfer of @p size bytes. */
    Bandwidth at(std::uint64_t size) const;

    /** Peak bandwidth anywhere on the curve. */
    Bandwidth peak() const;

    /**
     * Smallest control-point size whose bandwidth reaches
     * @p fraction of peak; returns the largest point size if none do.
     */
    std::uint64_t saturationSize(double fraction = 0.95) const;

    /** Return a copy with every bandwidth multiplied by @p factor. */
    BandwidthCurve scaled(double factor) const;

    const std::vector<std::pair<std::uint64_t, Bandwidth>> &
    points() const
    {
        return points_;
    }

  private:
    explicit BandwidthCurve(
        std::vector<std::pair<std::uint64_t, Bandwidth>> points);

    std::vector<std::pair<std::uint64_t, Bandwidth>> points_;
};

} // namespace coarse::fabric

#endif // COARSE_FABRIC_BANDWIDTH_HH
