/**
 * @file
 * A full-duplex serial-bus (or CCI / NVLink / network) link.
 *
 * Each direction has an independent transmission pipe, so concurrent
 * opposite-direction traffic achieves the 2x "bidirectional bandwidth"
 * the paper exploits (§III-E). Within one direction, packets are
 * serialized FIFO at the size-dependent effective bandwidth.
 */

#ifndef COARSE_FABRIC_LINK_HH
#define COARSE_FABRIC_LINK_HH

#include <cstdint>
#include <string>

#include "bandwidth.hh"
#include "message.hh"
#include "sim/stats.hh"
#include "sim/ticks.hh"
#include "sim/trace.hh"

namespace coarse::fabric {

/** Dense link index within one Topology. */
using LinkId = std::uint32_t;

/** Classifies links for routing policy and reporting. */
enum class LinkKind
{
    SerialBus, //!< PCIe-style serial bus (data path).
    Cci,       //!< Cache-coherent interconnect (coherence + proxy sync).
    NvLink,    //!< GPU-to-GPU NVLink.
    Network,   //!< Inter-node network.
};

const char *linkKindName(LinkKind kind);

/** Static link parameters. */
struct LinkParams
{
    BandwidthCurve bandwidth = BandwidthCurve::flat(gbps(12.0));
    sim::Tick latency = sim::fromNanoseconds(500);
    LinkKind kind = LinkKind::SerialBus;
};

/**
 * One direction of a link: a FIFO transmission pipe.
 */
class LinkDirection
{
  public:
    LinkDirection() = default;

    /**
     * Reserve the pipe for a packet of @p bytes arriving at @p now.
     *
     * @param now Time the packet is ready to transmit.
     * @param bytes Packet size.
     * @param flowBytes Logical transfer size for bandwidth lookup.
     * @param curve Effective-bandwidth curve of the link.
     * @param efficiency Extra multiplier (pair efficiency), in (0, 1].
     * @param rateCap Optional protocol rate ceiling (0 = none).
     * @return Time the last byte leaves the pipe (excludes
     *         propagation latency).
     */
    sim::Tick transmit(sim::Tick now, std::uint64_t bytes,
                       std::uint64_t flowBytes,
                       const BandwidthCurve &curve, double efficiency,
                       double rateCap = 0.0);

    sim::Tick busyUntil() const { return busyUntil_; }
    std::uint64_t bytesCarried() const { return bytesCarried_; }
    sim::Tick busyTime() const { return busyTime_; }

    /** Cached trace track for this direction's busy spans. */
    sim::TraceTrackHandle &traceHandle() { return traceHandle_; }

  private:
    sim::Tick busyUntil_ = 0;
    std::uint64_t bytesCarried_ = 0;
    sim::Tick busyTime_ = 0;
    sim::TraceTrackHandle traceHandle_;
    /**
     * Memoized last curve lookup. A pipelined shard push sends many
     * chunks with the same flowBytes through the same direction, so
     * the log2 piecewise interpolation in BandwidthCurve::at() would
     * otherwise be recomputed per chunk for an unchanged answer. The
     * curve pointer guards against a caller switching curves (tests
     * do; real links never rebuild theirs).
     */
    const BandwidthCurve *cachedCurve_ = nullptr;
    std::uint64_t cachedSize_ = 0;
    Bandwidth cachedRate_ = 0.0;
};

/**
 * A bidirectional link between two topology nodes.
 */
class Link
{
  public:
    Link(LinkId id, NodeId a, NodeId b, LinkParams params);

    LinkId id() const { return id_; }
    NodeId endpointA() const { return a_; }
    NodeId endpointB() const { return b_; }
    LinkKind kind() const { return params_.kind; }
    sim::Tick latency() const { return params_.latency; }
    const BandwidthCurve &bandwidth() const { return params_.bandwidth; }

    /** The node opposite @p from on this link. */
    NodeId peerOf(NodeId from) const;

    /**
     * Health multiplier applied to the effective bandwidth of both
     * directions. 1.0 is a healthy link; fault injection lowers it to
     * model partial degradation (and restores it afterwards). Must
     * stay in (0, 1] — a dead link is modelled as a proxy crash, not
     * a zero-bandwidth link.
     */
    void setDegradeFactor(double factor);
    double degradeFactor() const { return degrade_; }

    /** Direction pipe carrying traffic out of @p from. */
    LinkDirection &directionFrom(NodeId from);
    const LinkDirection &directionFrom(NodeId from) const;

    /** Total bytes carried in both directions. */
    std::uint64_t totalBytes() const;

    /** Utilization of the busier direction over [0, now]. */
    double utilization(sim::Tick now) const;

  private:
    LinkId id_;
    NodeId a_;
    NodeId b_;
    LinkParams params_;
    double degrade_ = 1.0;
    LinkDirection aToB_;
    LinkDirection bToA_;
};

} // namespace coarse::fabric

#endif // COARSE_FABRIC_LINK_HH
