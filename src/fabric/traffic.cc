#include "traffic.hh"

#include <algorithm>
#include <memory>

#include "sim/logging.hh"
#include "sim/random.hh"

namespace coarse::fabric {

const char *
trafficPatternName(TrafficPattern pattern)
{
    switch (pattern) {
      case TrafficPattern::UniformRandom:
        return "uniform-random";
      case TrafficPattern::Hotspot:
        return "hotspot";
      case TrafficPattern::Transpose:
        return "transpose";
      case TrafficPattern::NearestNeighbor:
        return "nearest-neighbor";
    }
    return "?";
}

TrafficResult
runTraffic(Topology &topo, const std::vector<NodeId> &endpoints,
           const TrafficParams &params)
{
    if (endpoints.size() < 2)
        sim::fatal("runTraffic: need at least two endpoints");
    if (params.messageBytes == 0 || params.messagesPerEndpoint == 0)
        sim::fatal("runTraffic: empty load");
    if (params.hotspot >= endpoints.size())
        sim::fatal("runTraffic: hotspot index out of range");

    sim::Random rng(params.seed);
    auto &sim = topo.sim();
    const sim::Tick startTick = sim.now();

    auto result = std::make_shared<TrafficResult>();
    auto latencySum = std::make_shared<double>(0.0);

    const std::size_t n = endpoints.size();
    for (std::size_t i = 0; i < n; ++i) {
        for (std::uint32_t m = 0; m < params.messagesPerEndpoint;
             ++m) {
            std::size_t dst = i;
            switch (params.pattern) {
              case TrafficPattern::UniformRandom:
                while (dst == i)
                    dst = rng.uniformInt(0, n - 1);
                break;
              case TrafficPattern::Hotspot:
                dst = params.hotspot;
                if (dst == i)
                    dst = (i + 1) % n;
                break;
              case TrafficPattern::Transpose:
                dst = n - 1 - i;
                if (dst == i)
                    dst = (i + 1) % n;
                break;
              case TrafficPattern::NearestNeighbor:
                dst = (i + 1) % n;
                break;
            }

            Message msg;
            msg.src = endpoints[i];
            msg.dst = endpoints[dst];
            msg.bytes = params.messageBytes;
            msg.tag = (std::uint64_t(i) << 32) | m;
            const sim::Tick injected = sim.now();
            msg.onDelivered = [result, latencySum, injected, &topo] {
                const double latency = sim::toSeconds(
                    topo.sim().now() - injected);
                *latencySum += latency;
                result->maxLatencySeconds =
                    std::max(result->maxLatencySeconds, latency);
                ++result->messages;
            };
            topo.send(std::move(msg), params.mask);
            result->bytes += params.messageBytes;
        }
    }

    sim.run();

    result->seconds = sim::toSeconds(sim.now() - startTick);
    result->aggregateBytesPerSec = result->seconds > 0
        ? static_cast<double>(result->bytes) / result->seconds
        : 0.0;
    result->meanLatencySeconds = result->messages > 0
        ? *latencySum / static_cast<double>(result->messages)
        : 0.0;
    return *result;
}

} // namespace coarse::fabric
