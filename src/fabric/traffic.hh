/**
 * @file
 * Synthetic traffic patterns for fabric characterization — the
 * interconnect-simulator staple (uniform random, hotspot, transpose,
 * nearest neighbour) applied to the machine topologies. Used by the
 * microbenchmarks and by tests that probe contention behaviour
 * independent of the DL stack.
 */

#ifndef COARSE_FABRIC_TRAFFIC_HH
#define COARSE_FABRIC_TRAFFIC_HH

#include <cstdint>
#include <vector>

#include "topology.hh"

namespace coarse::fabric {

/** Destination-selection patterns. */
enum class TrafficPattern
{
    UniformRandom,    //!< Every message picks a random peer.
    Hotspot,          //!< Everyone sends to one victim endpoint.
    Transpose,        //!< Endpoint i sends to endpoint (n-1)-i.
    NearestNeighbor,  //!< Endpoint i sends to endpoint (i+1) % n.
};

const char *trafficPatternName(TrafficPattern pattern);

/** Load description. */
struct TrafficParams
{
    TrafficPattern pattern = TrafficPattern::UniformRandom;
    std::uint64_t messageBytes = 1 << 20;
    std::uint32_t messagesPerEndpoint = 8;
    std::uint64_t seed = 1;
    fabric::LinkMask mask = kAllLinks;
    /** Victim index for Hotspot. */
    std::size_t hotspot = 0;
};

/** Aggregate results of one traffic run. */
struct TrafficResult
{
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    /** Makespan: first injection to last delivery. */
    double seconds = 0.0;
    /** bytes / seconds. */
    double aggregateBytesPerSec = 0.0;
    /** Mean per-message delivery latency. */
    double meanLatencySeconds = 0.0;
    double maxLatencySeconds = 0.0;
};

/**
 * Inject the load over @p endpoints and run the simulation to
 * completion. All messages are injected at the current simulated
 * time (a burst — the stress case).
 */
TrafficResult runTraffic(Topology &topo,
                         const std::vector<NodeId> &endpoints,
                         const TrafficParams &params);

} // namespace coarse::fabric

#endif // COARSE_FABRIC_TRAFFIC_HH
