/**
 * @file
 * The framework-facing push/pull interface (paper §III, §IV-B).
 *
 * COARSE integrates with training frameworks through a conventional
 * parameter-server API: each worker holds a ParameterClient with
 * push(tensor, gradient) and pull(tensor) calls, while routing,
 * partitioning, proxy synchronization, and the server-side optimizer
 * run behind the scenes. The CoarseEngine drives this machinery from
 * a simulated training loop; a CoarseSession exposes it directly, the
 * way the paper's TensorFlow distribution strategy does ("typically
 * requires 2 lines of code change").
 */

#ifndef COARSE_CORE_SESSION_HH
#define COARSE_CORE_SESSION_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "dl/model.hh"
#include "dl/optimizer.hh"
#include "fabric/machine.hh"
#include "memdev/memory_device.hh"
#include "partition.hh"
#include "profiler.hh"
#include "proxy_sync.hh"
#include "routing.hh"

namespace coarse::core {

/** Session configuration. */
struct SessionOptions
{
    bool tensorRouting = true;
    bool tensorPartitioning = true;
    dl::OptimizerParams optimizer = {};
    std::size_t syncGroups = 2;
    memdev::MemoryDeviceParams deviceParams = {};
};

/**
 * A live COARSE deployment on a machine: storage initialized with a
 * model's weights, proxies running, one client per worker.
 */
class CoarseSession
{
  public:
    /**
     * Per-worker handle. push() contributes this worker's gradient
     * for a tensor; once every worker has pushed the same round, the
     * proxies synchronize, the server-side optimizer updates the
     * master copy, and pending pull() callbacks resolve with the
     * fresh weights (after the simulated transfer back to the GPU).
     */
    class Client
    {
      public:
        /** Contribute a gradient; @p onSynced fires when this
         *  tensor's round has been applied at the storage. */
        void push(std::size_t tensorIdx, std::vector<float> gradient,
                  std::function<void()> onSynced = nullptr);

        /** Fetch the current weights of a tensor into this worker;
         *  the callback receives the data at delivery time. */
        void
        pull(std::size_t tensorIdx,
             std::function<void(const std::vector<float> &)> onData);

        /** This client's routing table (introspection). */
        const RoutingTable &routing() const;

        std::size_t index() const { return index_; }

      private:
        friend class CoarseSession;
        Client(CoarseSession &session, std::size_t index)
            : session_(&session), index_(index) {}

        CoarseSession *session_;
        std::size_t index_;
    };

    CoarseSession(fabric::Machine &machine, dl::ModelSpec model,
                  SessionOptions options = {});
    ~CoarseSession();

    std::size_t clientCount() const { return clients_.size(); }
    Client &client(std::size_t workerIdx);

    /** Current master weights of a tensor (storage-side view). */
    const std::vector<float> &weights(std::size_t tensorIdx) const;

    /** Completed synchronization rounds of a tensor. */
    std::uint32_t roundsCompleted(std::size_t tensorIdx) const;

    /** Snapshot all parameters (returns the checkpoint id). */
    memdev::SnapshotId checkpoint();

    ProxySyncService &proxyService() { return *service_; }

  private:
    struct TensorState;

    void doPush(std::size_t workerIdx, std::size_t tensorIdx,
                std::vector<float> gradient,
                std::function<void()> onSynced);
    void doPull(std::size_t workerIdx, std::size_t tensorIdx,
                std::function<void(const std::vector<float> &)> onData);
    void onShardSynced(const ShardKey &key,
                       const std::vector<float> &reduced);

    fabric::Machine &machine_;
    dl::ModelSpec model_;
    SessionOptions options_;

    std::vector<std::unique_ptr<memdev::MemoryDevice>> devices_;
    std::unique_ptr<ProxySyncService> service_;
    std::unique_ptr<Profiler> profiler_;
    std::unique_ptr<TensorPartitioner> partitioner_;
    std::vector<RoutingTable> routing_;
    std::vector<std::unique_ptr<Client>> clients_;

    std::vector<std::unique_ptr<TensorState>> tensors_;
};

} // namespace coarse::core

#endif // COARSE_CORE_SESSION_HH
