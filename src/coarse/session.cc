#include "session.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace coarse::core {

/** Per-tensor synchronization state. */
struct CoarseSession::TensorState
{
    std::vector<float> master;
    std::unique_ptr<dl::Optimizer> optimizer;
    std::uint32_t round = 0;
    /** Which clients contributed to the in-flight round. */
    std::vector<bool> pushed;
    std::uint32_t pushCount = 0;
    /** Assembled summed gradient of the in-flight round. */
    std::vector<float> assembly;
    std::uint32_t shardsLeft = 0;
    std::vector<std::function<void()>> onSynced;
};

CoarseSession::CoarseSession(fabric::Machine &machine,
                             dl::ModelSpec model, SessionOptions options)
    : machine_(machine), model_(std::move(model)), options_(options)
{
    const auto &nodes = machine_.memDevices();
    if (nodes.empty())
        sim::fatal("CoarseSession: machine has no memory devices");

    std::vector<memdev::MemoryDevice *> raw;
    for (fabric::NodeId node : nodes) {
        devices_.push_back(std::make_unique<memdev::MemoryDevice>(
            node, options_.deviceParams));
        raw.push_back(devices_.back().get());
    }

    memdev::SyncScheduleOptions schedule;
    schedule.groups = std::min<std::size_t>(
        options_.syncGroups, options_.deviceParams.syncCoreCount);
    service_ = std::make_unique<ProxySyncService>(
        machine_.topology(), std::move(raw), schedule,
        SchedulingPolicy::Queued, /*functional=*/true);
    service_->setOnSynced([this](const ShardKey &key,
                                 const std::vector<float> &reduced) {
        onShardSynced(key, reduced);
    });

    profiler_ = std::make_unique<Profiler>(machine_.topology());
    std::uint64_t shardBytes = 2 << 20;
    for (std::size_t w = 0; w < machine_.workers().size(); ++w) {
        const fabric::NodeId worker = machine_.workers()[w];
        if (options_.tensorRouting) {
            const auto profile = profiler_->profileClient(
                worker, nodes, machine_.pairedMemDevice(worker));
            routing_.push_back(profile.routing);
            shardBytes = profile.shardBytes;
        } else {
            RoutingTable table;
            table.latProxy = machine_.pairedMemDevice(worker);
            table.bwProxy = table.latProxy;
            routing_.push_back(table);
        }
        clients_.push_back(
            std::unique_ptr<Client>(new Client(*this, w)));
    }
    partitioner_ = std::make_unique<TensorPartitioner>(
        options_.tensorPartitioning ? shardBytes : 0);

    // Initialize the storage with the model's weights.
    for (std::size_t t = 0; t < model_.tensors.size(); ++t) {
        auto state = std::make_unique<TensorState>();
        state->master.resize(model_.tensors[t].elements);
        for (std::size_t e = 0; e < state->master.size(); ++e) {
            state->master[e] = 1.0f + 0.001f * static_cast<float>(t)
                + 1e-6f * static_cast<float>(e % 997);
        }
        state->optimizer = std::make_unique<dl::Optimizer>(
            options_.optimizer, state->master.size());
        state->pushed.assign(clients_.size(), false);
        tensors_.push_back(std::move(state));
        for (auto &device : devices_)
            device->store().put(t, tensors_.back()->master);
    }
}

CoarseSession::~CoarseSession() = default;

CoarseSession::Client &
CoarseSession::client(std::size_t workerIdx)
{
    return *clients_.at(workerIdx);
}

const std::vector<float> &
CoarseSession::weights(std::size_t tensorIdx) const
{
    return tensors_.at(tensorIdx)->master;
}

std::uint32_t
CoarseSession::roundsCompleted(std::size_t tensorIdx) const
{
    return tensors_.at(tensorIdx)->round;
}

memdev::SnapshotId
CoarseSession::checkpoint()
{
    memdev::SnapshotId id = 0;
    for (auto &device : devices_)
        id = device->store().snapshot();
    return id;
}

void
CoarseSession::Client::push(std::size_t tensorIdx,
                            std::vector<float> gradient,
                            std::function<void()> onSynced)
{
    session_->doPush(index_, tensorIdx, std::move(gradient),
                     std::move(onSynced));
}

void
CoarseSession::Client::pull(
    std::size_t tensorIdx,
    std::function<void(const std::vector<float> &)> onData)
{
    session_->doPull(index_, tensorIdx, std::move(onData));
}

const RoutingTable &
CoarseSession::Client::routing() const
{
    return session_->routing_.at(index_);
}

void
CoarseSession::doPush(std::size_t workerIdx, std::size_t tensorIdx,
                      std::vector<float> gradient,
                      std::function<void()> onSynced)
{
    if (tensorIdx >= tensors_.size())
        sim::fatal("CoarseSession: unknown tensor ", tensorIdx);
    TensorState &state = *tensors_[tensorIdx];
    if (gradient.size() != state.master.size()) {
        sim::fatal("CoarseSession: gradient for tensor ", tensorIdx,
                   " has ", gradient.size(), " elements, expected ",
                   state.master.size());
    }
    if (state.pushed[workerIdx]) {
        sim::fatal("CoarseSession: client ", workerIdx,
                   " pushed tensor ", tensorIdx,
                   " twice in one round (pull or await sync first)");
    }
    state.pushed[workerIdx] = true;
    ++state.pushCount;
    if (onSynced)
        state.onSynced.push_back(std::move(onSynced));

    const std::uint64_t tensorBytes =
        state.master.size() * sizeof(float);
    const fabric::NodeId proxy =
        routing_[workerIdx].route(tensorBytes);
    const auto shards =
        partitioner_->partition(tensorIdx, tensorBytes);
    if (state.pushCount == 1) {
        state.shardsLeft = static_cast<std::uint32_t>(shards.size());
        state.assembly.assign(state.master.size(), 0.0f);
    }

    for (const Shard &shard : shards) {
        const std::size_t begin = shard.offset / sizeof(float);
        const std::size_t len = shard.bytes / sizeof(float);
        std::vector<float> payload(gradient.begin() + begin,
                                   gradient.begin() + begin + len);
        service_->push(
            machine_.workers()[workerIdx], proxy,
            ShardKey{state.round,
                     static_cast<std::uint32_t>(tensorIdx),
                     shard.shardIndex},
            shard.bytes, std::move(payload),
            static_cast<std::uint32_t>(clients_.size()));
    }
}

void
CoarseSession::onShardSynced(const ShardKey &key,
                             const std::vector<float> &reduced)
{
    TensorState &state = *tensors_.at(key.tensor);
    const std::uint64_t tensorBytes =
        state.master.size() * sizeof(float);
    const auto shards =
        partitioner_->partition(key.tensor, tensorBytes);
    const Shard &shard = shards.at(key.shard);
    std::copy(reduced.begin(), reduced.end(),
              state.assembly.begin()
                  + static_cast<std::ptrdiff_t>(shard.offset
                                                / sizeof(float)));
    if (--state.shardsLeft != 0)
        return;

    // Round complete: average, apply the optimizer, publish.
    const float scale = 1.0f / static_cast<float>(clients_.size());
    for (auto &value : state.assembly)
        value *= scale;
    state.optimizer->apply(state.master, state.assembly);
    for (auto &device : devices_)
        device->store().put(key.tensor, state.master);

    ++state.round;
    state.pushed.assign(clients_.size(), false);
    state.pushCount = 0;
    auto callbacks = std::move(state.onSynced);
    state.onSynced.clear();
    for (auto &callback : callbacks)
        callback();
}

void
CoarseSession::doPull(
    std::size_t workerIdx, std::size_t tensorIdx,
    std::function<void(const std::vector<float> &)> onData)
{
    if (tensorIdx >= tensors_.size())
        sim::fatal("CoarseSession: unknown tensor ", tensorIdx);
    const std::uint64_t bytes =
        tensors_[tensorIdx]->master.size() * sizeof(float);
    fabric::Message msg;
    msg.src = routing_[workerIdx].route(bytes);
    msg.dst = machine_.workers()[workerIdx];
    msg.bytes = bytes;
    msg.onDelivered = [this, tensorIdx,
                       onData = std::move(onData)]() mutable {
        onData(tensors_[tensorIdx]->master);
    };
    machine_.topology().send(std::move(msg), fabric::kNoNvLink);
}

} // namespace coarse::core
