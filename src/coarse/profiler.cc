#include "profiler.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace coarse::core {

Profiler::Profiler(fabric::Topology &topo, ProfilerOptions options)
    : topo_(topo), options_(options)
{
    if (options_.minProbeBytes == 0
        || options_.maxProbeBytes <= options_.minProbeBytes)
        sim::fatal("Profiler: bad probe size range");
}

PathProfile
Profiler::profilePath(fabric::NodeId client, fabric::NodeId proxy)
{
    PathProfile profile;
    profile.proxy = proxy;
    profile.latencySeconds =
        sim::toSeconds(topo_.pathLatency(client, proxy, options_.mask));
    for (std::uint64_t size = options_.minProbeBytes;
         size <= options_.maxProbeBytes; size *= 2) {
        const double bw =
            topo_.pathBandwidth(client, proxy, size, options_.mask);
        ProbePoint point;
        point.bytes = size;
        point.bytesPerSec = bw;
        point.seconds =
            profile.latencySeconds + static_cast<double>(size) / bw;
        profile.points.push_back(point);
        profile.peakBytesPerSec =
            std::max(profile.peakBytesPerSec, bw);
    }
    return profile;
}

double
Profiler::transferSeconds(const PathProfile &path,
                          std::uint64_t bytes) const
{
    // Interpolate bandwidth between probe points (log-linear in size,
    // like the underlying curves), clamped at the ends.
    const auto &pts = path.points;
    double bw;
    if (bytes <= pts.front().bytes) {
        bw = pts.front().bytesPerSec;
    } else if (bytes >= pts.back().bytes) {
        bw = pts.back().bytesPerSec;
    } else {
        auto hi = std::upper_bound(
            pts.begin(), pts.end(), bytes,
            [](std::uint64_t b, const ProbePoint &p) {
                return b < p.bytes;
            });
        auto lo = hi - 1;
        const double t =
            (std::log2(static_cast<double>(bytes))
             - std::log2(static_cast<double>(lo->bytes)))
            / (std::log2(static_cast<double>(hi->bytes))
               - std::log2(static_cast<double>(lo->bytes)));
        bw = lo->bytesPerSec + t * (hi->bytesPerSec - lo->bytesPerSec);
    }
    return path.latencySeconds + static_cast<double>(bytes) / bw;
}

std::uint64_t
Profiler::crossoverBytes(const PathProfile &lat,
                         const PathProfile &bw) const
{
    // T_lat(S) < T_bw(S) for small S (lower latency) and the reverse
    // for large S (higher bandwidth); bisect for the crossing.
    std::uint64_t lo = options_.minProbeBytes;
    std::uint64_t hi = options_.maxProbeBytes;
    if (transferSeconds(lat, lo) >= transferSeconds(bw, lo))
        return 0; // bw path never loses: send everything there
    if (transferSeconds(lat, hi) <= transferSeconds(bw, hi))
        return hi + 1; // lat path never loses: route all small... all
    while (hi - lo > 64) {
        const std::uint64_t mid = lo + (hi - lo) / 2;
        if (transferSeconds(lat, mid) <= transferSeconds(bw, mid))
            lo = mid;
        else
            hi = mid;
    }
    return hi;
}

ClientProfile
Profiler::deriveProfile(fabric::NodeId client,
                        std::vector<PathProfile> paths,
                        fabric::NodeId preferred) const
{
    ClientProfile result;
    result.paths = std::move(paths);

    // Best latency / bandwidth. Measurement ties (within 1%) are
    // common on symmetric fabrics; they resolve to the client's
    // affinity proxy when it is among the tied set, and otherwise
    // rotate deterministically by client id, so clients spread across
    // equivalent proxies instead of piling onto the first one.
    auto pickBest = [&](auto metric, bool smaller) {
        double best = metric(result.paths.front());
        for (const auto &path : result.paths) {
            const double v = metric(path);
            if (smaller ? v < best : v > best)
                best = v;
        }
        std::vector<const PathProfile *> tied;
        for (const auto &path : result.paths) {
            const double v = metric(path);
            const bool tie =
                smaller ? v <= best * 1.01 : v >= best * 0.99;
            if (tie)
                tied.push_back(&path);
        }
        for (const PathProfile *path : tied) {
            if (path->proxy == preferred)
                return path;
        }
        return tied[client % tied.size()];
    };

    const PathProfile *lat = pickBest(
        [](const PathProfile &p) { return p.latencySeconds; }, true);
    const PathProfile *bw = pickBest(
        [](const PathProfile &p) { return p.peakBytesPerSec; }, false);

    result.routing.latProxy = lat->proxy;
    result.routing.bwProxy = bw->proxy;
    result.routing.thresholdBytes =
        lat->proxy == bw->proxy ? 0 : crossoverBytes(*lat, *bw);

    // Shard size S': smallest probe reaching saturationFraction of
    // the BwProxy path's peak.
    result.shardBytes = bw->points.back().bytes;
    for (const auto &point : bw->points) {
        if (point.bytesPerSec
            >= options_.saturationFraction * bw->peakBytesPerSec) {
            result.shardBytes = point.bytes;
            break;
        }
    }
    return result;
}

/** Degrade a measured profile by the fault-history factor. */
static void
applyPenalty(PathProfile &path, double factor)
{
    path.latencySeconds *= factor;
    path.peakBytesPerSec /= factor;
    for (ProbePoint &point : path.points) {
        point.bytesPerSec /= factor;
        point.seconds = path.latencySeconds
            + static_cast<double>(point.bytes) / point.bytesPerSec;
    }
}

ClientProfile
Profiler::profileClient(fabric::NodeId client,
                        const std::vector<fabric::NodeId> &proxies,
                        fabric::NodeId preferred,
                        const std::map<fabric::NodeId, double> &penalties)
{
    if (proxies.empty())
        sim::fatal("Profiler: no proxies to profile");
    std::vector<PathProfile> paths;
    for (fabric::NodeId proxy : proxies) {
        PathProfile path = profilePath(client, proxy);
        auto it = penalties.find(proxy);
        if (it != penalties.end()) {
            if (it->second < 1.0)
                sim::fatal("Profiler: penalty must be >= 1, got ",
                           it->second);
            applyPenalty(path, it->second);
        }
        paths.push_back(std::move(path));
    }
    return deriveProfile(client, std::move(paths), preferred);
}

void
Profiler::profilePathMeasured(fabric::NodeId client,
                              fabric::NodeId proxy,
                              std::function<void(PathProfile)> done)
{
    auto profile = std::make_shared<PathProfile>();
    profile->proxy = proxy;
    // Latency probe: a minimal control message, timed end to end.
    auto sizes = std::make_shared<std::vector<std::uint64_t>>();
    for (std::uint64_t size = options_.minProbeBytes;
         size <= options_.maxProbeBytes; size *= 2)
        sizes->push_back(size);

    auto doneShared = std::make_shared<std::function<void(PathProfile)>>(
        std::move(done));

    // Probe sizes strictly one after another so the probes do not
    // contend with themselves. Each size sends several back-to-back
    // transfers and times the batch, amortizing the pipeline skew a
    // single shot would see (real CUDA probes repeat for the same
    // reason).
    static constexpr std::uint32_t kRepeats = 8;
    auto next = std::make_shared<std::function<void(std::size_t)>>();
    *next = [this, client, proxy, profile, sizes, doneShared,
             weakNext = std::weak_ptr(next)](std::size_t index) {
        // The self-capture is weak so the closure does not own itself
        // (a strong capture leaks the probe state). Every caller
        // holds a strong reference, so the lock always succeeds.
        auto next = weakNext.lock();
        if (index == sizes->size()) {
            (*doneShared)(*profile);
            return;
        }
        const std::uint64_t size = (*sizes)[index];
        const sim::Tick started = topo_.sim().now();
        auto outstanding = std::make_shared<std::uint32_t>(kRepeats);
        for (std::uint32_t r = 0; r < kRepeats; ++r) {
            fabric::Message msg;
            msg.src = client;
            msg.dst = proxy;
            msg.bytes = size;
            msg.onDelivered = [this, profile, size, started, index,
                               next, outstanding] {
                if (--*outstanding != 0)
                    return;
                const double seconds =
                    sim::toSeconds(topo_.sim().now() - started);
                ProbePoint point;
                point.bytes = size;
                point.seconds = seconds / kRepeats;
                point.bytesPerSec =
                    static_cast<double>(size) * kRepeats
                    / std::max(seconds - profile->latencySeconds,
                               1e-12);
                profile->points.push_back(point);
                profile->peakBytesPerSec = std::max(
                    profile->peakBytesPerSec, point.bytesPerSec);
                (*next)(index + 1);
            };
            topo_.send(std::move(msg), options_.mask);
        }
    };

    // First measure latency with a 64-byte ping, then run the sweep.
    const sim::Tick pingStart = topo_.sim().now();
    fabric::Message ping;
    ping.src = client;
    ping.dst = proxy;
    ping.bytes = 64;
    ping.onDelivered = [this, profile, pingStart, next] {
        profile->latencySeconds =
            sim::toSeconds(topo_.sim().now() - pingStart);
        (*next)(0);
    };
    topo_.send(std::move(ping), options_.mask);
}

void
Profiler::profileClientMeasured(
    fabric::NodeId client, std::vector<fabric::NodeId> proxies,
    fabric::NodeId preferred, std::function<void(ClientProfile)> done)
{
    if (proxies.empty())
        sim::fatal("Profiler: no proxies to profile");
    auto paths = std::make_shared<std::vector<PathProfile>>();
    auto proxyList = std::make_shared<std::vector<fabric::NodeId>>(
        std::move(proxies));
    auto doneShared =
        std::make_shared<std::function<void(ClientProfile)>>(
            std::move(done));

    auto nextProxy =
        std::make_shared<std::function<void(std::size_t)>>();
    *nextProxy = [this, client, preferred, paths, proxyList,
                  doneShared,
                  weakNext = std::weak_ptr(nextProxy)](
                     std::size_t index) {
        // Weak self-capture: see profilePathMeasured() above.
        auto nextProxy = weakNext.lock();
        if (index == proxyList->size()) {
            (*doneShared)(
                deriveProfile(client, std::move(*paths), preferred));
            return;
        }
        profilePathMeasured(client, (*proxyList)[index],
                            [paths, nextProxy,
                             index](PathProfile profile) {
                                paths->push_back(std::move(profile));
                                (*nextProxy)(index + 1);
                            });
    };
    (*nextProxy)(0);
}

} // namespace coarse::core
