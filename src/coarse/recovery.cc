#include "recovery.hh"

#include <algorithm>
#include <cmath>

#include "engine.hh"
#include "sim/logging.hh"

namespace coarse::core {

void
FaultHistory::record(std::size_t idx, double weight)
{
    if (idx >= scores_.size())
        sim::fatal("FaultHistory: no proxy ", idx);
    if (weight <= 0.0)
        sim::fatal("FaultHistory: weight must be positive, got ", weight);
    scores_[idx] += weight;
    events_.inc();
}

void
FaultHistory::decay()
{
    for (double &score : scores_)
        score *= 0.5;
}

double
FaultHistory::penalty(std::size_t idx) const
{
    // One fresh link fault (score 1) yields 1.1x: enough to lose the
    // profiler's 1% tie window. The cap keeps a storm-battered proxy
    // reachable as a fallback rather than infinitely repulsive.
    static constexpr double kPerPoint = 0.1;
    static constexpr double kScoreCap = 10.0;
    return 1.0 + kPerPoint * std::min(scores_.at(idx), kScoreCap);
}

void
RecoveryManager::traceMark(const char *name, sim::Tick tick,
                           std::uint64_t arg0)
{
    sim::traceInstant(sim::TraceCategory::Recovery, traceTrack_,
                      [] { return "recovery/state"; }, name, tick,
                      arg0);
}

void
RecoveryManager::traceStateSpan(const char *name, sim::Tick start,
                                sim::Tick end)
{
    sim::traceSpan(sim::TraceCategory::Recovery, traceTrack_,
                   [] { return "recovery/state"; }, name, start, end);
}

RecoveryManager::RecoveryManager(CoarseEngine &engine,
                                 RecoveryOptions options)
    : eng_(engine), opt_(options)
{
    if (opt_.maxPullRetries > 100)
        sim::fatal("RecoveryManager: maxPullRetries ", opt_.maxPullRetries,
                   " is absurd");
    if (opt_.pullDeadlineMargin < 1.0 || opt_.pullBackoffFactor < 1.0) {
        sim::fatal("RecoveryManager: deadline margin and backoff factor "
                   "must be >= 1");
    }
    everDetected_.assign(eng_.devices_.size(), false);
    // Every trace carries the recovery track, even fault-free runs:
    // its absence would be indistinguishable from "not instrumented".
    traceMark("Idle", 0);
}

void
RecoveryManager::onProxyDead(std::size_t idx)
{
    auto &sim = eng_.machine_.topology().sim();
    if (eng_.proxyDeadSince_.at(idx) == 0) {
        sim::panic("RecoveryManager: proxy ", idx,
                   " declared dead while healthy");
    }
    if (everDetected_[idx]) {
        duplicates_.inc();
        return;
    }
    everDetected_[idx] = true;
    if (eng_.monitor_)
        eng_.monitor_->markDead(idx);
    detectionLatency_.sample(
        sim::toSeconds(sim.now() - eng_.proxyDeadSince_[idx]));
    eng_.faultHistory_.recordCrash(idx);
    traceMark("detect", sim.now(), idx);

    switch (state_) {
      case State::Idle:
        // First detection of an episode: recovery runs at the next
        // iteration boundary, where the sync service is idle.
        episodeStart_ = sim.now();
        state_ = State::Draining;
        traceMark("Draining", sim.now(), idx);
        pendingDead_.push_back(idx);
        break;
      case State::Draining:
        // Concurrent failure: fold into the queued episode.
        pendingDead_.push_back(idx);
        break;
      case State::Repulling:
        // Cascading failure: extend the in-flight episode. The sync
        // service is idle (no iteration runs while Repulling), so the
        // rebuild is immediate; outstanding pulls are invalidated and
        // re-issued over the shrunken fleet.
        cascades_.inc();
        pendingDead_.push_back(idx);
        processDetections();
        replayFrom_ = computeReplayFrom();
        startPulls();
        break;
    }
}

void
RecoveryManager::onIterationBoundary(std::uint32_t failedIter)
{
    if (state_ != State::Draining)
        sim::panic("RecoveryManager: boundary reached without pending "
                   "detections");
    ++eng_.failures_;
    failedIter_ = failedIter;
    boundaryTick_ = eng_.machine_.topology().sim().now();

    // Freeze who owned what under the routing the failed iteration
    // actually ran with — the replan below rewrites the tables, and a
    // cascade judged later must be charged against these, not the
    // post-recovery routing.
    ownedAtBoundary_.assign(eng_.devices_.size(), {});
    for (std::size_t d = 0; d < eng_.devices_.size(); ++d)
        ownedAtBoundary_[d] = eng_.proxyOwnedTensors(d);
    rolledBack_.assign(eng_.model_.tensors.size(), false);
    escalated_ = false;

    processDetections();
    replayFrom_ = computeReplayFrom();
    state_ = State::Repulling;
    traceStateSpan("Draining", episodeStart_, boundaryTick_);
    traceMark("Repulling", boundaryTick_, failedIter);
    startPulls();
}

void
RecoveryManager::processDetections()
{
    std::vector<bool> toRoll(eng_.model_.tensors.size(), false);
    for (const std::size_t idx : pendingDead_) {
        eng_.proxyAlive_[idx] = false;
        if (!opt_.partialRollback) {
            toRoll.assign(toRoll.size(), true);
        } else if (eng_.proxyDeadSince_[idx] <= boundaryTick_) {
            // The proxy died while the failed iteration was still
            // running: reductions it owned are suspect back to the
            // checkpoint. A proxy that died *after* the boundary
            // (mid-recovery) held no un-checkpointed state of its own
            // — every replica already matches — so rebuilding rings
            // and re-issuing pulls suffices.
            for (std::size_t t = 0; t < toRoll.size(); ++t) {
                if (ownedAtBoundary_[idx][t])
                    toRoll[t] = true;
            }
        }
    }
    pendingDead_.clear();

    if (eng_.aliveProxyCount() == 0)
        sim::fatal("CoarseEngine: every memory device has failed");

    // Rings, rollback, then the plan: the replan must see the
    // shrunken fleet and the fault scores the detections just added.
    eng_.rebuildSyncService();
    rollbackTensors(toRoll);
    eng_.profileAndPlan();
}

void
RecoveryManager::rollbackTensors(const std::vector<bool> &tensors)
{
    std::vector<std::size_t> fresh;
    std::uint64_t bytes = 0;
    for (std::size_t t = 0; t < tensors.size(); ++t) {
        if (!tensors[t] || rolledBack_[t])
            continue;
        rolledBack_[t] = true;
        fresh.push_back(t);
        bytes += eng_.model_.tensors[t].bytes();
    }
    if (fresh.empty())
        return;
    // Logical bytes, counted once per shard regardless of replica
    // count: the metric tracks how much training state the failure
    // invalidated, not fabric traffic.
    rollbackBytes_.inc(bytes);

    for (std::size_t d = 0; d < eng_.devices_.size(); ++d) {
        if (!eng_.proxyAlive_[d])
            continue;
        auto &store = eng_.devices_[d]->store();
        for (const std::size_t t : fresh)
            store.restoreTensor(eng_.latestSnapshot_, t);
    }
    for (const std::size_t t : fresh) {
        if (t < eng_.optimizers_.size())
            eng_.optimizers_[t]->restoreState(
                eng_.checkpointedOptimizers_[t]);
        eng_.appliedThrough_[t] = eng_.checkpointAppliedThrough_[t];
    }
    if (eng_.options_.functionalData) {
        auto &store = eng_.firstAliveDevice().store();
        for (auto &worker : eng_.workers_) {
            for (const std::size_t t : fresh)
                worker->weights[t] = *store.get(t);
        }
    }
}

void
RecoveryManager::escalate()
{
    escalations_.inc();
    traceMark("escalate", eng_.machine_.topology().sim().now());
    if (!escalated_) {
        // Deepen the rollback to the whole model: whatever partial
        // state the flapping pulls left behind is discarded and the
        // episode restarts from the checkpoint floor.
        escalated_ = true;
        rollbackTensors(
            std::vector<bool>(eng_.model_.tensors.size(), true));
        replayFrom_ = computeReplayFrom();
    }
    // Already full: nothing deeper exists, so re-issue the pulls with
    // deadlines recomputed from the fabric's *current* state (a link
    // that degraded mid-flight now prices in honestly).
    startPulls();
}

std::uint32_t
RecoveryManager::computeReplayFrom() const
{
    std::uint32_t from = failedIter_ + 1;
    for (std::size_t t = 0; t < rolledBack_.size(); ++t) {
        if (rolledBack_[t])
            from = std::min(from, eng_.checkpointAppliedThrough_[t]);
    }
    return from;
}

std::uint64_t
RecoveryManager::rolledBackBytes() const
{
    std::uint64_t bytes = 0;
    for (std::size_t t = 0; t < rolledBack_.size(); ++t) {
        if (rolledBack_[t])
            bytes += eng_.model_.tensors[t].bytes();
    }
    return bytes;
}

void
RecoveryManager::startPulls()
{
    ++pullEpoch_;
    pullDone_.assign(eng_.workers_.size(), false);
    for (std::size_t w = 0; w < eng_.workers_.size(); ++w)
        sendPull(pullEpoch_, w, 0);
}

void
RecoveryManager::sendPull(std::uint64_t epoch, std::size_t workerIdx,
                          std::uint32_t attempt)
{
    if (epoch != pullEpoch_ || pullDone_[workerIdx])
        return;
    auto &topo = eng_.machine_.topology();
    const fabric::NodeId dst = eng_.workers_[workerIdx]->node;
    const fabric::NodeId src = eng_.proxyFor(dst);
    const std::uint64_t bytes = rolledBackBytes();

    fabric::Message msg;
    msg.src = src;
    msg.dst = dst;
    msg.bytes = bytes;
    msg.onDelivered = [this, epoch, workerIdx] {
        if (epoch != pullEpoch_ || pullDone_[workerIdx])
            return; // superseded by a cascade, retry, or escalation
        pullDone_[workerIdx] = true;
        for (const bool done : pullDone_) {
            if (!done)
                return;
        }
        finishEpisode();
    };

    // Deadline: the fabric's own expectation at send time, padded by
    // the margin and per-attempt exponential backoff. Pricing from
    // current link state means only a fault landing *after* the send
    // can miss it — exactly the flapping-link case retries exist for.
    double expected =
        sim::toSeconds(topo.pathLatency(src, dst, fabric::kNoNvLink));
    if (bytes > 0) {
        expected += static_cast<double>(bytes)
            / topo.pathBandwidth(src, dst, bytes, fabric::kNoNvLink);
    }
    const double deadline = expected * opt_.pullDeadlineMargin
        * std::pow(opt_.pullBackoffFactor, attempt);

    std::size_t srcIdx = 0;
    for (std::size_t d = 0; d < eng_.machine_.memDevices().size(); ++d) {
        if (eng_.machine_.memDevices()[d] == src)
            srcIdx = d;
    }
    topo.sim().events().postIn(
        sim::fromSeconds(deadline),
        [this, epoch, workerIdx, attempt, srcIdx] {
            if (epoch != pullEpoch_ || pullDone_[workerIdx])
                return;
            eng_.faultHistory_.recordPullTimeout(srcIdx);
            if (attempt >= opt_.maxPullRetries) {
                escalate();
                return;
            }
            pullRetries_.inc();
            sendPull(epoch, workerIdx, attempt + 1);
        });
    topo.send(std::move(msg), fabric::kNoNvLink);
}

void
RecoveryManager::finishEpisode()
{
    auto &sim = eng_.machine_.topology().sim();
    if (escalated_ || !opt_.partialRollback
        || rolledBackBytes() == eng_.model_.parameterBytes()) {
        full_.inc();
    } else {
        partial_.inc();
    }
    recoveryTime_.sample(sim::toSeconds(sim.now() - episodeStart_));
    eng_.replayed_ += failedIter_ + 1 - replayFrom_;
    ++pullEpoch_; // straggling deadline events drain as no-ops
    state_ = State::Idle;
    traceStateSpan("Repulling", boundaryTick_, sim.now());
    traceMark("Idle", sim.now(), replayFrom_);

    if (replayFrom_ < eng_.totalIterations_) {
        eng_.startIteration(replayFrom_);
    } else if (eng_.monitor_ && eng_.monitor_->running()) {
        // The failure struck the final iteration and nothing needed
        // replaying: training is complete.
        eng_.monitor_->stop();
    }
}

void
RecoveryManager::attachStats(sim::StatGroup &group) const
{
    group.addDistribution("detection_latency_seconds", detectionLatency_);
    group.addDistribution("recovery_seconds", recoveryTime_);
    group.addCounter("rollback_bytes", rollbackBytes_);
    group.addCounter("partial_rollbacks", partial_);
    group.addCounter("full_rollbacks", full_);
    group.addCounter("escalations", escalations_);
    group.addCounter("pull_retries", pullRetries_);
    group.addCounter("cascade_detections", cascades_);
    group.addCounter("duplicate_detections", duplicates_);
}

} // namespace coarse::core
