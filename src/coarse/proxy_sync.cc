#include "proxy_sync.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace coarse::core {

namespace {

std::vector<memdev::MemoryDevice *>
checkDevices(std::vector<memdev::MemoryDevice *> devices)
{
    if (devices.empty())
        sim::fatal("ProxySyncService: need at least one proxy device");
    return devices;
}

} // namespace

ProxySyncService::ProxySyncService(
    fabric::Topology &topo, std::vector<memdev::MemoryDevice *> devices,
    memdev::SyncScheduleOptions schedule, SchedulingPolicy policy,
    bool functional, std::uint32_t wireBytesPerElement)
    : topo_(topo), devices_(checkDevices(std::move(devices))),
      scheduler_(topo, devices_, schedule), policy_(policy),
      functional_(functional),
      wireBytesPerElement_(wireBytesPerElement),
      arrivalQueues_(devices_.size()), proxyTracks_(devices_.size())
{
    if (wireBytesPerElement_ != 2 && wireBytesPerElement_ != 4)
        sim::fatal("ProxySyncService: wire bytes per element must be "
                   "2 or 4");
}

void
ProxySyncService::traceQueueDepth(std::size_t proxyIdx)
{
    sim::traceCounter(
        sim::TraceCategory::Proxy, proxyTracks_[proxyIdx],
        [&] {
            return "proxy/" + topo_.nodeName(devices_[proxyIdx]->node());
        },
        "queued", topo_.sim().now(), arrivalQueues_[proxyIdx].size());
}

void
ProxySyncService::traceClientInflight(std::size_t proxyIdx,
                                      fabric::NodeId worker,
                                      std::int64_t delta)
{
    const auto key = std::make_pair(proxyIdx, worker);
    const std::int64_t depth = (clientInflight_[key] += delta);
    sim::traceCounter(
        sim::TraceCategory::Proxy, clientTracks_[key],
        [&] {
            return "proxy/" + topo_.nodeName(devices_[proxyIdx]->node())
                + "/" + topo_.nodeName(worker);
        },
        "inflight", topo_.sim().now(),
        static_cast<std::uint64_t>(depth < 0 ? 0 : depth));
}

std::size_t
ProxySyncService::proxyIndexOf(fabric::NodeId node) const
{
    for (std::size_t i = 0; i < devices_.size(); ++i) {
        if (devices_[i]->node() == node)
            return i;
    }
    sim::fatal("ProxySyncService: node ", node, " is not a proxy");
}

void
ProxySyncService::push(fabric::NodeId worker, fabric::NodeId proxyNode,
                       const ShardKey &key, std::uint64_t bytes,
                       std::vector<float> data,
                       std::uint32_t totalContributions)
{
    if (bytes == 0)
        sim::fatal("ProxySyncService: zero-byte push");
    if (functional_ && data.size() * wireBytesPerElement_ != bytes)
        sim::fatal("ProxySyncService: payload size mismatch for "
                   "functional push");

    const std::size_t proxyIdx = proxyIndexOf(proxyNode);

    auto [it, inserted] = pending_.try_emplace(key);
    ShardState &state = it->second;
    if (inserted) {
        state.bytes = bytes;
        state.expected = totalContributions;
        state.firstPushTick = topo_.sim().now();
        state.accum.resize(devices_.size());
        state.touched.assign(devices_.size(), false);
    } else if (state.bytes != bytes || state.expected
               != totalContributions) {
        sim::fatal("ProxySyncService: inconsistent pushes for one shard");
    }

    bytesPushed_.inc(bytes);
    auto payload = std::make_shared<std::vector<float>>(std::move(data));

    if (sim::traceEnabled(sim::TraceCategory::Proxy))
        traceClientInflight(proxyIdx, worker, +1);

    fabric::Message msg;
    msg.src = worker;
    msg.dst = proxyNode;
    msg.bytes = bytes;
    msg.onDelivered = [this, proxyIdx, worker, key, payload] {
        onShardArrived(proxyIdx, worker, key, std::move(*payload));
    };
    topo_.send(std::move(msg), fabric::kNoNvLink);
}

void
ProxySyncService::onShardArrived(std::size_t proxyIdx,
                                 fabric::NodeId worker,
                                 const ShardKey &key,
                                 std::vector<float> data)
{
    auto it = pending_.find(key);
    if (it == pending_.end())
        sim::panic("ProxySyncService: arrival for unknown shard");
    ShardState &state = it->second;

    if (functional_) {
        auto &accum = state.accum[proxyIdx];
        if (accum.empty()) {
            accum = std::move(data);
        } else {
            for (std::size_t e = 0; e < accum.size(); ++e)
                accum[e] += data[e];
        }
    }
    if (!state.touched[proxyIdx]) {
        state.touched[proxyIdx] = true;
        arrivalQueues_[proxyIdx].push_back(key);
    }
    ++state.arrived;
    if (sim::traceEnabled(sim::TraceCategory::Proxy)) {
        traceClientInflight(proxyIdx, worker, -1);
        traceQueueDepth(proxyIdx);
    }
    tryLaunch();
}

bool
ProxySyncService::proxyReady(std::size_t proxyIdx,
                             const ShardKey &key) const
{
    if (policy_ == SchedulingPolicy::Queued)
        return true;
    // FCFS: the proxy only joins a collective for the shard at the
    // head of its arrival queue. Proxies that never received a
    // contribution have nothing queued and join freely.
    const auto &queue = arrivalQueues_[proxyIdx];
    const ShardState &state = pending_.at(key);
    if (!state.touched[proxyIdx])
        return true;
    return !queue.empty() && queue.front() == key;
}

void
ProxySyncService::tryLaunch()
{
    for (auto &[key, state] : pending_) {
        if (state.syncing || state.arrived < state.expected)
            continue;
        bool allReady = true;
        for (std::size_t p = 0; p < devices_.size() && allReady; ++p)
            allReady = proxyReady(p, key);
        if (!allReady)
            continue;
        launch(key, state);
    }
}

void
ProxySyncService::launch(const ShardKey &key, ShardState &state)
{
    state.syncing = true;
    auto done = [this, key] { onShardSynced(key); };
    // Proxy-to-proxy accumulation runs at full precision even when
    // the wire to the clients is compressed.
    const std::size_t elements = state.bytes / wireBytesPerElement_;
    if (!functional_) {
        scheduler_.allReduceTimed(elements * sizeof(float),
                                  std::move(done));
        return;
    }
    std::vector<std::span<float>> buffers;
    buffers.reserve(devices_.size());
    for (auto &accum : state.accum) {
        accum.resize(elements, 0.0f); // untouched proxies contribute 0
        buffers.emplace_back(accum);
    }
    scheduler_.allReduce(std::move(buffers), std::move(done));
}

void
ProxySyncService::onShardSynced(const ShardKey &key)
{
    auto it = pending_.find(key);
    if (it == pending_.end())
        sim::panic("ProxySyncService: completion for unknown shard");

    // Remove the shard from every arrival queue (FCFS heads advance).
    for (auto &queue : arrivalQueues_) {
        auto pos = std::find(queue.begin(), queue.end(), key);
        if (pos != queue.end())
            queue.erase(pos);
    }

    if (sim::traceEnabled(sim::TraceCategory::Partition)) {
        sim::traceSpan(
            sim::TraceCategory::Partition, tensorTracks_[key.tensor],
            [&] {
                return "partition/t" + std::to_string(key.tensor);
            },
            "shard", it->second.firstPushTick, topo_.sim().now(),
            key.shard, key.iteration);
    }
    if (sim::traceEnabled(sim::TraceCategory::Proxy)) {
        for (std::size_t p = 0; p < devices_.size(); ++p)
            traceQueueDepth(p);
    }

    synced_.inc();
    std::vector<float> reduced;
    if (functional_ && !it->second.accum.empty())
        reduced = std::move(it->second.accum.front());
    pending_.erase(it);

    if (onSynced_)
        onSynced_(key, reduced);
    tryLaunch();
}

} // namespace coarse::core
