#include "engine.hh"

#include <algorithm>

#include "dl/gpu.hh"
#include "dl/quantize.hh"
#include "sim/logging.hh"

namespace coarse::core {

/** Book-keeping for the iteration in flight. */
struct CoarseEngine::IterationState
{
    std::uint32_t iter = 0;
    sim::Tick start = 0;
    sim::Tick computeEnd = 0;
    /** Shard syncs still outstanding at the proxies. */
    std::size_t outstandingSyncs = 0;
    /** Pull transfers still in flight to workers. */
    std::size_t outstandingPulls = 0;
    bool gpuSyncDone = false;
    bool finishScheduled = false;
    IterationTimeline timeline;
    /** Functional: per-tensor assembled summed gradients. */
    std::map<std::size_t, std::vector<float>> assembly;
    /** Remaining shards per tensor (functional assembly). */
    std::map<std::size_t, std::uint32_t> shardsLeft;
};

CoarseEngine::CoarseEngine(fabric::Machine &machine, dl::ModelSpec model,
                           std::uint32_t batchSize, CoarseOptions options)
    : machine_(machine), model_(std::move(model)), batch_(batchSize),
      options_(options), gpu_(dl::gpuSpec(machine.gpuModel())),
      iteration_(model_, gpu_, batchSize)
{
    // COARSE offloads optimizer state to the memory pool; check the
    // batch actually fits the GPU under that placement.
    const auto needed = dl::gpuMemoryNeeded(model_, batch_,
                                            dl::offloadedStateModel());
    if (needed > gpu_.memBytes) {
        sim::fatal("CoarseEngine: model ", model_.name, " at batch ",
                   batch_, " needs ", needed, " bytes on a ",
                   gpu_.memBytes, "-byte ", gpu_.name, " GPU");
    }

    buildDevices();

    workerComm_ = std::make_unique<coll::Communicator>(
        machine_.topology(), machine_.workers());
    profiler_ = std::make_unique<Profiler>(machine_.topology());
    partitioner_ = std::make_unique<TensorPartitioner>(
        options_.shardBytesOverride != 0 ? options_.shardBytesOverride
                                         : (std::uint64_t(2) << 20));

    workers_.reserve(machine_.workers().size());
    for (fabric::NodeId node : machine_.workers()) {
        auto state = std::make_unique<WorkerState>();
        state->node = node;
        if (options_.functionalData) {
            state->weights.reserve(model_.tensors.size());
            for (std::size_t t = 0; t < model_.tensors.size(); ++t) {
                std::vector<float> w(model_.tensors[t].elements);
                for (std::size_t e = 0; e < w.size(); ++e) {
                    w[e] = 1.0f + 0.001f * static_cast<float>(t)
                        + 1e-6f * static_cast<float>(e % 997);
                }
                state->weights.push_back(std::move(w));
            }
        }
        workers_.push_back(std::move(state));
    }
    workerSlowdown_.assign(workers_.size(), 1.0);

    if (options_.heartbeats) {
        const fabric::NodeId monitorNode = machine_.hostCpus().empty()
            ? machine_.workers().front()
            : machine_.hostCpus().front();
        fault::HeartbeatMonitor::Params params;
        params.interval =
            sim::fromSeconds(options_.heartbeatIntervalSeconds);
        params.timeout =
            sim::fromSeconds(options_.heartbeatTimeoutSeconds);
        monitor_ = std::make_unique<fault::HeartbeatMonitor>(
            machine_.topology(), monitorNode, machine_.memDevices(),
            params,
            [this](std::size_t i) { return proxyDeadSince_[i] == 0; },
            [this](std::size_t i) { onProxyDead(i); });
    }

    if (options_.functionalData) {
        for (auto &device : devices_) {
            for (std::size_t t = 0; t < model_.tensors.size(); ++t)
                device->store().put(t, workers_.front()->weights[t]);
        }
        auto optimizerParams = options_.optimizer;
        optimizerParams.learningRate = options_.learningRate;
        for (std::size_t t = 0; t < model_.tensors.size(); ++t) {
            optimizers_.push_back(std::make_unique<dl::Optimizer>(
                optimizerParams, model_.tensors[t].elements));
        }
    }
    // Initial checkpoint: the recovery floor when a failure strikes
    // before the first periodic snapshot.
    for (auto &device : devices_)
        latestSnapshot_ = device->store().snapshot();
    lastCheckpointIteration_ = 0;
    checkpointedOptimizers_.clear();
    for (const auto &optimizer : optimizers_)
        checkpointedOptimizers_.push_back(optimizer->saveState());
    appliedThrough_.assign(model_.tensors.size(), 0);
    checkpointAppliedThrough_.assign(model_.tensors.size(), 0);

    recovery_ = std::make_unique<RecoveryManager>(*this,
                                                  options_.recovery);

    profileAndPlan();
}

CoarseEngine::~CoarseEngine() = default;

void
CoarseEngine::buildDevices()
{
    const auto &nodes = machine_.memDevices();
    if (nodes.empty())
        sim::fatal("CoarseEngine: machine has no memory devices");

    space_ = std::make_unique<cci::AddressSpace>();
    for (fabric::NodeId node : nodes) {
        devices_.push_back(std::make_unique<memdev::MemoryDevice>(
            node, options_.deviceParams));
        space_->addDevice(node, options_.deviceParams.dramBytes);
        // Each proxy hosts a full parameter replica plus the offloaded
        // optimizer state (master copy + Adam moments).
        space_->allocate(node, model_.parameterBytes(),
                         model_.name + ".params");
        space_->allocate(node, model_.parameterBytes() * 2,
                         model_.name + ".optimizer");
    }

    proxyAlive_.assign(devices_.size(), true);
    proxyDeadSince_.assign(devices_.size(), 0);
    faultHistory_.reset(devices_.size());

    rebuildSyncService();
}

void
CoarseEngine::rebuildSyncService()
{
    if (service_ && !service_->idle()) {
        sim::panic("CoarseEngine: rebuilding the sync service with "
                   "shards still in flight");
    }

    std::vector<memdev::MemoryDevice *> raw;
    raw.reserve(devices_.size());
    for (std::size_t d = 0; d < devices_.size(); ++d) {
        if (proxyAlive_[d])
            raw.push_back(devices_[d].get());
    }

    memdev::SyncScheduleOptions schedule;
    schedule.groups = std::min<std::size_t>(
        options_.syncGroups, options_.deviceParams.syncCoreCount);
    schedule.alternateDirections = options_.alternateRingDirections;
    schedule.detailedCores =
        options_.detailedSyncCores && options_.functionalData;
    service_ = std::make_unique<ProxySyncService>(
        machine_.topology(), std::move(raw), schedule,
        options_.schedulingPolicy, options_.functionalData,
        options_.compressGradients ? 2 : 4);
    service_->setOnSynced([this](const ShardKey &key,
                                 const std::vector<float> &reduced) {
        onShardSynced(key, reduced);
    });
}

std::vector<fabric::NodeId>
CoarseEngine::aliveProxies() const
{
    std::vector<fabric::NodeId> nodes;
    for (std::size_t d = 0; d < devices_.size(); ++d) {
        if (proxyAlive_[d])
            nodes.push_back(machine_.memDevices()[d]);
    }
    return nodes;
}

std::size_t
CoarseEngine::aliveProxyCount() const
{
    std::size_t count = 0;
    for (const bool alive : proxyAlive_)
        count += alive ? 1 : 0;
    return count;
}

memdev::MemoryDevice &
CoarseEngine::firstAliveDevice()
{
    for (std::size_t d = 0; d < devices_.size(); ++d) {
        if (proxyAlive_[d])
            return *devices_[d];
    }
    sim::fatal("CoarseEngine: every memory device has failed");
}

fabric::NodeId
CoarseEngine::proxyFor(fabric::NodeId workerNode)
{
    const auto &proxies = machine_.memDevices();
    const fabric::NodeId paired = machine_.pairedMemDevice(workerNode);
    for (std::size_t d = 0; d < proxies.size(); ++d) {
        if (proxies[d] == paired && proxyAlive_[d])
            return paired;
    }
    // The paired device is gone: fall back to the closest alive one
    // (lowest index breaks latency ties deterministically).
    auto &topo = machine_.topology();
    fabric::NodeId best = fabric::kInvalidNode;
    sim::Tick bestLatency = 0;
    for (std::size_t d = 0; d < proxies.size(); ++d) {
        if (!proxyAlive_[d])
            continue;
        const sim::Tick latency =
            topo.pathLatency(workerNode, proxies[d], fabric::kNoNvLink);
        if (best == fabric::kInvalidNode || latency < bestLatency) {
            best = proxies[d];
            bestLatency = latency;
        }
    }
    if (best == fabric::kInvalidNode)
        sim::fatal("CoarseEngine: every memory device has failed");
    return best;
}

void
CoarseEngine::profileAndPlan()
{
    ++profileRuns_;
    routing_.clear();

    // Dead proxies are excluded wholesale: the profiler never probes
    // them, so the rebuilt routing tables cannot select them. Alive
    // proxies with a fault history (crashes nearby, flapping links,
    // missed pull deadlines) are penalized rather than excluded: the
    // profiler sees their paths as slower, so ties — and eventually
    // outright wins — resolve away from them *before* they fail.
    const std::vector<fabric::NodeId> proxies = aliveProxies();
    std::map<fabric::NodeId, double> penalties;
    for (std::size_t d = 0; d < devices_.size(); ++d) {
        const double penalty = faultHistory_.penalty(d);
        if (proxyAlive_[d] && penalty > 1.0)
            penalties[machine_.memDevices()[d]] = penalty;
    }
    std::uint64_t shardBytes = 2 << 20;
    for (std::size_t w = 0; w < machine_.workers().size(); ++w) {
        const fabric::NodeId worker = machine_.workers()[w];
        if (options_.tensorRouting) {
            ClientProfile profile = profiler_->profileClient(
                worker, proxies, proxyFor(worker), penalties);
            routing_.push_back(profile.routing);
            shardBytes = profile.shardBytes;
        } else {
            RoutingTable table;
            table.latProxy = proxyFor(worker);
            table.bwProxy = table.latProxy;
            table.thresholdBytes = 0;
            routing_.push_back(table);
        }
    }
    if (options_.shardBytesOverride != 0)
        shardBytes = options_.shardBytesOverride;
    partitioner_->setShardBytes(options_.tensorPartitioning ? shardBytes
                                                            : 0);

    // Dual-sync planning: measure both rings' effective bandwidth on
    // the model's own volume, then solve for the split.
    const std::uint64_t n = model_.parameterBytes();
    const std::uint32_t p =
        static_cast<std::uint32_t>(machine_.workers().size());

    DualSyncInputs in;
    in.forwardSeconds = iteration_.forwardSeconds();
    in.backwardSeconds = iteration_.backwardSeconds();
    in.totalBytes = n;
    in.workers = p;

    const double c =
        p > 1 ? 2.0 * double(p - 1) / double(p) : 1.0;
    coll::RingOptions gpuRing;
    gpuRing.reduceBytesPerSec = gpu_.reduceBytesPerSec();
    gpuRing.rings = 2;
    const double gpuEst =
        workerComm_->estimateAllReduceSeconds(n, gpuRing);
    in.gpuRingBytesPerSec =
        gpuEst > 0 ? c * double(n) / gpuEst : 1e12;
    const double proxyEst = service_->scheduler().estimateSeconds(n);
    double proxyRing = proxyEst > 0 ? c * double(n) / proxyEst : 1e12;

    // The proxy path is a pipeline: client push, ring, client pull.
    // Its throughput is the bottleneck stage. On machines without a
    // dedicated CCI interconnect the ring shares the host serial
    // links with the pushes and pulls, halving the effective rate.
    auto &topo = machine_.topology();
    bool dedicatedCci = false;
    for (std::size_t l = 0; l < topo.linkCount(); ++l) {
        if (topo.link(static_cast<fabric::LinkId>(l)).kind()
            == fabric::LinkKind::Cci)
            dedicatedCci = true;
    }
    if (!dedicatedCci)
        proxyRing *= 0.5;
    double pushBw = 1e12;
    for (std::size_t w = 0; w < machine_.workers().size(); ++w) {
        pushBw = std::min(
            pushBw, topo.pathBandwidth(machine_.workers()[w],
                                       routing_[w].bwProxy, n,
                                       fabric::kNoNvLink));
    }
    in.proxyRingBytesPerSec = std::min(proxyRing, pushBw);

    if (options_.proxyShareOverride >= 0.0) {
        const double share =
            std::min(options_.proxyShareOverride, 1.0);
        plan_.proxyBytes =
            static_cast<std::uint64_t>(share * double(n));
        plan_.gpuBytes = n - plan_.proxyBytes;
        plan_.predictedIterationSeconds =
            predictedIterationSeconds(in, plan_.proxyBytes);
    } else if (options_.dualSync && p > 1) {
        plan_ = planDualSync(in);
    } else {
        plan_.proxyBytes = n;
        plan_.gpuBytes = 0;
        plan_.predictedIterationSeconds =
            predictedIterationSeconds(in, n);
    }
    plan_.splitTensor = assignTensors(model_, plan_.proxyBytes);
    // Recompute the byte split from the tensor boundary.
    std::uint64_t proxyBytes = 0;
    for (std::size_t t = plan_.splitTensor; t < model_.tensors.size();
         ++t)
        proxyBytes += model_.tensors[t].bytes();
    plan_.proxyBytes = proxyBytes;
    plan_.gpuBytes = n - proxyBytes;

    // This plan consumed the fault scores; halve them so a proxy that
    // stays healthy earns its traffic back over subsequent re-plans.
    faultHistory_.decay();
}

std::vector<bool>
CoarseEngine::proxyOwnedTensors(std::size_t idx) const
{
    std::vector<bool> owned(model_.tensors.size(), false);
    const fabric::NodeId node = machine_.memDevices().at(idx);
    for (std::size_t t = plan_.splitTensor; t < model_.tensors.size();
         ++t) {
        const std::uint64_t bytes = model_.tensors[t].bytes();
        for (const RoutingTable &table : routing_) {
            if (table.route(bytes) == node) {
                owned[t] = true;
                break;
            }
        }
    }
    return owned;
}

std::uint64_t
CoarseEngine::plannedProxyBytes(std::size_t idx) const
{
    const std::vector<bool> owned = proxyOwnedTensors(idx);
    std::uint64_t total = 0;
    for (std::size_t t = 0; t < owned.size(); ++t) {
        if (owned[t])
            total += model_.tensors[t].bytes();
    }
    return total;
}

const RoutingTable &
CoarseEngine::routingTableOf(std::size_t workerIdx) const
{
    return routing_.at(workerIdx);
}

const std::vector<float> &
CoarseEngine::weights(std::size_t workerIdx, std::size_t tensorIdx) const
{
    if (!options_.functionalData)
        sim::fatal("CoarseEngine: weights only exist in functional mode");
    return workers_.at(workerIdx)->weights.at(tensorIdx);
}

memdev::MemoryDevice &
CoarseEngine::memoryDevice(std::size_t i)
{
    return *devices_.at(i);
}

std::vector<float>
CoarseEngine::makeGradient(std::size_t workerIdx, std::size_t tensorIdx,
                           std::uint32_t iter) const
{
    std::vector<float> grad(model_.tensors[tensorIdx].elements);
    const float base = 0.01f * static_cast<float>(workerIdx + 1)
        + 0.001f * static_cast<float>(tensorIdx % 31)
        + 0.0001f * static_cast<float>(iter % 17);
    for (std::size_t e = 0; e < grad.size(); ++e)
        grad[e] = base + 1e-7f * static_cast<float>(e % 101);
    return grad;
}

void
CoarseEngine::applyUpdate(std::uint32_t iter, std::size_t tensorIdx,
                          const std::vector<float> &summedGrad)
{
    // Replay catch-up: a tensor that survived a partial rollback
    // already holds this update, and re-applying it would diverge
    // from the fault-free trajectory. Skips are exact because the
    // whole pipeline is deterministic per (worker, tensor, iter).
    if (iter < appliedThrough_[tensorIdx])
        return;
    if (iter != appliedThrough_[tensorIdx]) {
        sim::panic("CoarseEngine: tensor ", tensorIdx, " jumped from "
                   "iteration ", appliedThrough_[tensorIdx], " to ",
                   iter);
    }
    appliedThrough_[tensorIdx] = iter + 1;
    // Average the summed gradient, then let the server-side
    // optimizer apply its rule to the master copy.
    const float scale = 1.0f / static_cast<float>(workers_.size());
    std::vector<float> avg(summedGrad.size());
    for (std::size_t e = 0; e < avg.size(); ++e)
        avg[e] = scale * summedGrad[e];
    std::vector<float> updated = workers_.front()->weights[tensorIdx];
    optimizers_[tensorIdx]->apply(updated, avg);
    for (auto &worker : workers_)
        worker->weights[tensorIdx] = updated;
    for (std::size_t d = 0; d < devices_.size(); ++d) {
        if (proxyAlive_[d])
            devices_[d]->store().put(tensorIdx, updated);
    }
}

void
CoarseEngine::fetchBatch(std::function<void()> done)
{
    const std::uint64_t batchBytes =
        std::uint64_t(batch_) * model_.sampleBytes;
    auto &topo = machine_.topology();
    auto pending = std::make_shared<std::size_t>(workers_.size());
    auto doneShared =
        std::make_shared<std::function<void()>>(std::move(done));
    for (auto &worker : workers_) {
        batchesFetched_.inc();
        batchBytesFetched_.inc(batchBytes);
        fabric::Message msg;
        msg.src = proxyFor(worker->node);
        msg.dst = worker->node;
        msg.bytes = batchBytes;
        msg.onDelivered = [pending, doneShared] {
            if (--*pending == 0)
                (*doneShared)();
        };
        topo.send(std::move(msg), fabric::kNoNvLink);
    }
}

void
CoarseEngine::startIteration(std::uint32_t iter)
{
    const bool periodic = options_.reprofileEveryIters != 0 && iter != 0
        && iter % options_.reprofileEveryIters == 0;
    if (periodic || reprofilePending_) {
        reprofilePending_ = false;
        profileAndPlan();
    }

    iterationAnchor_ = machine_.topology().sim().now();

    // Input pipeline: the iteration body may only run once its
    // minibatch is resident on the GPUs. With prefetch, iteration
    // i's batch was requested at the start of iteration i-1 and
    // normally hides under it; without, the fetch serializes.
    const std::uint64_t batchBytes =
        std::uint64_t(batch_) * model_.sampleBytes;
    if (options_.dataLoading && batchBytes > 0) {
        if (!options_.dataPrefetch) {
            fetchBatch([this, iter] { runIterationBody(iter); });
            return;
        }
        if (iter == 0) {
            fetchBatch([this, iter] {
                batchReady_ = false;
                fetchBatch([this] { // prefetch for iteration 1
                    batchReady_ = true;
                    if (pendingIteration_) {
                        auto run = std::move(pendingIteration_);
                        pendingIteration_ = nullptr;
                        run();
                    }
                });
                runIterationBody(iter);
            });
            return;
        }
        auto proceed = [this, iter] {
            batchReady_ = false;
            fetchBatch([this] { // prefetch for the next iteration
                batchReady_ = true;
                if (pendingIteration_) {
                    auto run = std::move(pendingIteration_);
                    pendingIteration_ = nullptr;
                    run();
                }
            });
            runIterationBody(iter);
        };
        if (batchReady_) {
            proceed();
        } else {
            pendingIteration_ = proceed;
        }
        return;
    }

    runIterationBody(iter);
}

void
CoarseEngine::runIterationBody(std::uint32_t iter)
{
    auto &sim = machine_.topology().sim();
    iter_ = std::make_unique<IterationState>();
    iter_->iter = iter;
    // The anchor was taken before any input-batch fetch, so a
    // blocking fetch counts against this iteration's time.
    iter_->start = iterationAnchor_;
    // Data-parallel training paces at the slowest worker: a straggler
    // stretches the whole step's compute phase.
    const double slowdown = computeSlowdown();
    const sim::Tick fwdTicks =
        sim::fromSeconds(iteration_.forwardSeconds() * slowdown);
    const sim::Tick bwdTicks =
        sim::fromSeconds(iteration_.backwardSeconds() * slowdown);
    const sim::Tick computeStart = sim.now();
    iter_->computeEnd = computeStart + fwdTicks + bwdTicks;
    iter_->timeline.start = iter_->start;
    iter_->timeline.computeEnd = iter_->computeEnd;

    if (sim::traceEnabled(sim::TraceCategory::Iteration)) {
        // Compute phases are analytic (straggler-stretched FP then
        // BP), so both spans are known at iteration start.
        if (workerTraceTracks_.size() != workers_.size())
            workerTraceTracks_.resize(workers_.size());
        auto &topo = machine_.topology();
        for (std::size_t w = 0; w < workers_.size(); ++w) {
            auto name = [&] {
                return "gpu/" + topo.nodeName(workers_[w]->node);
            };
            sim::traceSpan(sim::TraceCategory::Iteration,
                           workerTraceTracks_[w], name, "fp",
                           computeStart, computeStart + fwdTicks, iter);
            sim::traceSpan(sim::TraceCategory::Iteration,
                           workerTraceTracks_[w], name, "bp",
                           computeStart + fwdTicks, iter_->computeEnd,
                           iter);
        }
    }

    // Proxy-synced tensors: push at gradient-ready times.
    for (std::size_t t = plan_.splitTensor; t < model_.tensors.size();
         ++t) {
        const auto shards =
            partitioner_->partition(t, model_.tensors[t].bytes());
        iter_->outstandingSyncs += shards.size();
        iter_->shardsLeft[t] = static_cast<std::uint32_t>(shards.size());
        const sim::Tick ready = computeStart + fwdTicks
            + sim::fromSeconds(iteration_.gradReadySeconds(t) * slowdown);
        for (std::size_t w = 0; w < workers_.size(); ++w) {
            sim.events().post(ready, [this, iter, w, t] {
                pushTensor(iter, w, t);
            });
        }
    }

    // GPU-synced tensors: a blocking worker-ring allreduce at the end
    // of the backward pass.
    sim.events().schedule(gpuSyncEvent_, iter_->computeEnd);
}

void
CoarseEngine::startGpuSync()
{
    const std::uint32_t iter = iter_->iter;
    if (plan_.gpuBytes == 0 || workers_.size() == 1) {
        iter_->gpuSyncDone = true;
        onWorkerPathDone(iter);
        return;
    }
    coll::RingOptions ring;
    ring.reduceBytesPerSec = gpu_.reduceBytesPerSec();
    ring.rings = 2;
    const sim::Tick gpuSyncStart = machine_.topology().sim().now();
    auto done = [this, iter, gpuSyncStart] {
        iter_->gpuSyncDone = true;
        iter_->timeline.gpuSyncEnd =
            machine_.topology().sim().now();
        if (sim::traceEnabled(sim::TraceCategory::Iteration)) {
            if (workerTraceTracks_.size() != workers_.size())
                workerTraceTracks_.resize(workers_.size());
            auto &topo = machine_.topology();
            for (std::size_t w = 0; w < workers_.size(); ++w) {
                sim::traceSpan(
                    sim::TraceCategory::Iteration, workerTraceTracks_[w],
                    [&] {
                        return "gpu/" + topo.nodeName(workers_[w]->node);
                    },
                    "gpu_sync", gpuSyncStart,
                    iter_->timeline.gpuSyncEnd, iter, plan_.gpuBytes);
            }
        }
        onWorkerPathDone(iter);
    };
    if (!options_.functionalData) {
        workerComm_->allReduceTimed(plan_.gpuBytes, ring,
                                    std::move(done));
        return;
    }
    // Functional: fuse the GPU-set gradients into one buffer per
    // worker, allreduce, then apply the updates.
    auto fused = std::make_shared<std::vector<std::vector<float>>>();
    fused->resize(workers_.size());
    for (std::size_t w = 0; w < workers_.size(); ++w) {
        for (std::size_t t = 0; t < plan_.splitTensor; ++t) {
            const auto grad = makeGradient(w, t, iter);
            (*fused)[w].insert((*fused)[w].end(), grad.begin(),
                               grad.end());
        }
    }
    std::vector<std::span<float>> buffers;
    buffers.reserve(workers_.size());
    for (auto &buf : *fused)
        buffers.emplace_back(buf);
    auto apply = [this, iter, fused, done] {
        std::size_t offset = 0;
        for (std::size_t t = 0; t < plan_.splitTensor; ++t) {
            const std::size_t len = model_.tensors[t].elements;
            std::vector<float> sum(
                fused->front().begin() + offset,
                fused->front().begin() + offset + len);
            applyUpdate(iter, t, sum);
            offset += len;
        }
        done();
    };
    workerComm_->allReduce(std::move(buffers), ring,
                           std::move(apply));
}

void
CoarseEngine::pushTensor(std::uint32_t iter, std::size_t workerIdx,
                         std::size_t tensorIdx)
{
    const std::uint64_t tensorBytes = model_.tensors[tensorIdx].bytes();
    const sim::Tick now = machine_.topology().sim().now();
    if (iter_->timeline.firstPush == 0)
        iter_->timeline.firstPush = now;
    iter_->timeline.lastPush = now;
    const fabric::NodeId proxy = routing_[workerIdx].route(tensorBytes);
    const auto shards = partitioner_->partition(tensorIdx, tensorBytes);

    std::vector<float> grad;
    if (options_.functionalData) {
        grad = makeGradient(workerIdx, tensorIdx, iter);
        // Compressed transport: what the proxy reconstructs is the
        // fp16 round-trip of the gradient.
        if (options_.compressGradients)
            dl::quantizeFp16(grad);
    }

    const std::uint32_t wire = options_.compressGradients ? 2 : 4;
    for (const Shard &shard : shards) {
        ShardKey key{iter, static_cast<std::uint32_t>(tensorIdx),
                     shard.shardIndex};
        std::vector<float> payload;
        if (options_.functionalData) {
            const std::size_t begin = shard.offset / sizeof(float);
            const std::size_t len = shard.bytes / sizeof(float);
            payload.assign(grad.begin() + begin,
                           grad.begin() + begin + len);
        }
        service_->push(workers_[workerIdx]->node, proxy, key,
                       shard.bytes / 4 * wire, std::move(payload),
                       static_cast<std::uint32_t>(workers_.size()));
    }
}

void
CoarseEngine::onShardSynced(const ShardKey &key,
                            const std::vector<float> &reduced)
{
    if (key.iteration != iter_->iter)
        sim::panic("CoarseEngine: shard from a different iteration");
    --iter_->outstandingSyncs;
    {
        const sim::Tick now = machine_.topology().sim().now();
        if (iter_->timeline.firstShardSynced == 0)
            iter_->timeline.firstShardSynced = now;
        iter_->timeline.lastShardSynced = now;
    }

    // Functional assembly: collect shards into the full tensor sum.
    if (options_.functionalData) {
        const std::size_t t = key.tensor;
        auto &assembly = iter_->assembly[t];
        if (assembly.empty())
            assembly.resize(model_.tensors[t].elements, 0.0f);
        const auto shards =
            partitioner_->partition(t, model_.tensors[t].bytes());
        const Shard &shard = shards.at(key.shard);
        std::copy(reduced.begin(), reduced.end(),
                  assembly.begin()
                      + static_cast<std::ptrdiff_t>(shard.offset
                                                    / sizeof(float)));
        if (--iter_->shardsLeft[t] == 0) {
            applyUpdate(key.iteration, t, assembly);
            iter_->assembly.erase(t);
        }
    }

    // Every worker pulls the updated shard from its routed proxy.
    auto &topo = machine_.topology();
    const std::uint64_t tensorBytes =
        model_.tensors[key.tensor].bytes();
    const auto shards =
        partitioner_->partition(key.tensor, tensorBytes);
    const std::uint32_t wire = options_.compressGradients ? 2 : 4;
    const std::uint64_t bytes = shards.at(key.shard).bytes / 4 * wire;
    for (std::size_t w = 0; w < workers_.size(); ++w) {
        ++iter_->outstandingPulls;
        fabric::Message msg;
        msg.src = routing_[w].route(tensorBytes);
        msg.dst = workers_[w]->node;
        msg.bytes = bytes;
        msg.onDelivered = [this, iter = key.iteration] {
            --iter_->outstandingPulls;
            const sim::Tick now = machine_.topology().sim().now();
            if (iter_->timeline.firstPull == 0)
                iter_->timeline.firstPull = now;
            iter_->timeline.lastPull = now;
            onWorkerPathDone(iter);
        };
        topo.send(std::move(msg), fabric::kNoNvLink);
    }
}

void
CoarseEngine::onWorkerPathDone(std::uint32_t iter)
{
    if (iter_ == nullptr || iter_->iter != iter)
        return;
    if (iter_->outstandingSyncs != 0 || iter_->outstandingPulls != 0
        || !iter_->gpuSyncDone || iter_->finishScheduled)
        return;

    auto &sim = machine_.topology().sim();
    iter_->finishScheduled = true;
    const sim::Tick end = std::max(sim.now(), iter_->computeEnd);
    sim.events().schedule(finishEvent_, end);
}

void
CoarseEngine::finishCurrentIteration()
{
    finishIteration(iter_->iter);
}

void
CoarseEngine::finishIteration(std::uint32_t iter)
{
    auto &sim = machine_.topology().sim();
    iter_->timeline.end = sim.now();
    timeline_ = iter_->timeline;
    if (sim::traceEnabled(sim::TraceCategory::Iteration)) {
        // Proxy-path phases come from the recorded timeline; emit
        // them here (even for iterations recovery will discard) so a
        // trace shows exactly what the simulator measured.
        const IterationTimeline &tl = timeline_;
        auto name = [] { return "coarse/engine"; };
        sim::traceSpan(sim::TraceCategory::Iteration, engineTraceTrack_,
                       name, "iteration", tl.start, tl.end, iter);
        if (tl.firstPush != 0) {
            sim::traceSpan(sim::TraceCategory::Iteration,
                           engineTraceTrack_, name, "push",
                           tl.firstPush, tl.lastPush, iter);
        }
        if (tl.firstShardSynced != 0) {
            sim::traceSpan(sim::TraceCategory::Iteration,
                           engineTraceTrack_, name, "sync",
                           tl.firstShardSynced, tl.lastShardSynced,
                           iter);
        }
        if (tl.firstPull != 0) {
            sim::traceSpan(sim::TraceCategory::Iteration,
                           engineTraceTrack_, name, "pull",
                           tl.firstPull, tl.lastPull, iter);
        }
    }
    const double iterSeconds = sim::toSeconds(sim.now() - iter_->start);
    const double blocked = sim.now() > iter_->computeEnd
        ? sim::toSeconds(sim.now() - iter_->computeEnd)
        : 0.0;

    if (iter >= warmup_) {
        measuredSeconds_ += iterSeconds;
        measuredBlocked_ += blocked;
        ++measuredIters_;
    }

    // Timed mode has no per-tensor updates; progress is uniform.
    if (!options_.functionalData) {
        for (auto &applied : appliedThrough_)
            applied = std::max(applied, iter + 1);
    }

    // Proxy deaths detected during this iteration trigger recovery at
    // the boundary, where the sync service is guaranteed idle. The
    // iteration's own results are discarded by the rollback, so it is
    // neither checkpointed nor treated as progress.
    if (recovery_->detectionsPending()) {
        recovery_->onIterationBoundary(iter);
        return;
    }

    if (options_.checkpointEveryIters != 0
        && (iter + 1) % options_.checkpointEveryIters == 0) {
        for (std::size_t d = 0; d < devices_.size(); ++d) {
            if (proxyAlive_[d])
                latestSnapshot_ = devices_[d]->store().snapshot();
        }
        lastCheckpointIteration_ = iter + 1;
        checkpointedOptimizers_.clear();
        for (const auto &optimizer : optimizers_)
            checkpointedOptimizers_.push_back(optimizer->saveState());
        checkpointAppliedThrough_ = appliedThrough_;
        ++checkpoints_;
        sim::traceInstant(sim::TraceCategory::Iteration,
                          engineTraceTrack_,
                          [] { return "coarse/engine"; }, "checkpoint",
                          sim.now(), iter + 1);
    }

    if (iter == options_.failAtIteration && failures_ == 0) {
        recoverFromFailure(iter);
        return;
    }

    if (iter + 1 < totalIterations_) {
        startIteration(iter + 1);
    } else if (monitor_ && monitor_->running()) {
        // Training is done; stop probing so the event queue drains.
        monitor_->stop();
    }
}

void
CoarseEngine::recoverFromFailure(std::uint32_t failedIter)
{
    ++failures_;
    replayed_ += failedIter + 1 - lastCheckpointIteration_;

    // Roll every live replica back to the latest durable checkpoint —
    // parameters and server-side optimizer state together. A worker
    // loss invalidates the whole model (every in-flight gradient came
    // from the lost rank), so this path is always a full rollback.
    recovery_->rollbackBytes_.inc(model_.parameterBytes());
    recovery_->full_.inc();
    for (std::size_t d = 0; d < devices_.size(); ++d) {
        if (!proxyAlive_[d])
            continue;
        devices_[d]->store().restore(latestSnapshot_);
    }
    for (std::size_t t = 0; t < optimizers_.size(); ++t)
        optimizers_[t]->restoreState(checkpointedOptimizers_[t]);
    appliedThrough_ = checkpointAppliedThrough_;
    if (options_.functionalData) {
        auto &store = firstAliveDevice().store();
        for (auto &worker : workers_) {
            for (std::size_t t = 0; t < model_.tensors.size(); ++t)
                worker->weights[t] = *store.get(t);
        }
    }

    // The restarted workers re-pull the full parameter set from
    // their proxies before resuming.
    auto &topo = machine_.topology();
    auto pending = std::make_shared<std::size_t>(workers_.size());
    for (auto &worker : workers_) {
        fabric::Message msg;
        msg.src = proxyFor(worker->node);
        msg.dst = worker->node;
        msg.bytes = model_.parameterBytes();
        msg.onDelivered = [this, pending] {
            if (--*pending == 0)
                startIteration(lastCheckpointIteration_);
        };
        topo.send(std::move(msg), fabric::kNoNvLink);
    }
}

void
CoarseEngine::crashProxy(std::size_t idx)
{
    if (idx >= devices_.size())
        sim::fatal("CoarseEngine: crashProxy: no memory device ", idx);
    if (!options_.heartbeats) {
        sim::fatal("CoarseEngine: a proxy crash was injected but "
                   "heartbeats are disabled, so the failure would "
                   "never be detected (set CoarseOptions::heartbeats)");
    }
    if (!proxyAlive_[idx] || proxyDeadSince_[idx] != 0)
        return; // already dead
    std::size_t survivors = 0;
    for (std::size_t d = 0; d < devices_.size(); ++d) {
        if (proxyAlive_[d] && proxyDeadSince_[d] == 0)
            ++survivors;
    }
    if (survivors <= 1) {
        sim::fatal("CoarseEngine: crashing memory device ", idx,
                   " would kill the last alive proxy; training cannot "
                   "recover from total parameter loss");
    }
    // Tick 0 means "healthy"; a crash at tick 0 is clamped to tick 1.
    proxyDeadSince_[idx] =
        std::max<sim::Tick>(1, machine_.topology().sim().now());
}

void
CoarseEngine::setWorkerSlowdown(std::size_t idx, double factor)
{
    if (idx >= workerSlowdown_.size())
        sim::fatal("CoarseEngine: setWorkerSlowdown: no worker ", idx);
    if (factor < 1.0) {
        sim::fatal("CoarseEngine: straggler factor must be >= 1.0, "
                   "got ", factor);
    }
    workerSlowdown_[idx] = factor;
}

double
CoarseEngine::computeSlowdown() const
{
    double slowdown = 1.0;
    for (const double factor : workerSlowdown_)
        slowdown = std::max(slowdown, factor);
    return slowdown;
}

fault::FaultHooks
CoarseEngine::faultHooks()
{
    fault::FaultHooks hooks;
    auto &topo = machine_.topology();
    hooks.degradeLink = [this, &topo](std::uint32_t link,
                                      double factor) {
        if (link >= topo.linkCount())
            sim::fatal("CoarseEngine: degradeLink: no link ", link);
        fabric::Link &l = topo.link(link);
        l.setDegradeFactor(factor);
        // Suspicion accrues to the proxies touching the flapping
        // link, so the re-profile this fault triggers already routes
        // around them.
        for (std::size_t d = 0; d < devices_.size(); ++d) {
            const fabric::NodeId node = machine_.memDevices()[d];
            if (l.endpointA() == node || l.endpointB() == node)
                faultHistory_.recordLinkFault(d);
        }
        noteFabricFault();
    };
    hooks.restoreLink = [this, &topo](std::uint32_t link) {
        if (link >= topo.linkCount())
            sim::fatal("CoarseEngine: restoreLink: no link ", link);
        topo.link(link).setDegradeFactor(1.0);
        noteFabricFault();
    };
    hooks.crashProxy = [this](std::uint32_t idx) { crashProxy(idx); };
    hooks.slowWorker = [this](std::uint32_t idx, double factor) {
        setWorkerSlowdown(idx, factor);
    };
    hooks.restoreWorker = [this](std::uint32_t idx) {
        setWorkerSlowdown(idx, 1.0);
    };
    return hooks;
}

void
CoarseEngine::onProxyDead(std::size_t idx)
{
    recovery_->onProxyDead(idx);
}

void
CoarseEngine::attachStats(sim::StatGroup &group) const
{
    group.addCounter("shards_synced", service_->shardsSynced());
    group.addCounter("bytes_pushed", service_->bytesPushed());
    group.addCounter("batches_fetched", batchesFetched_);
    group.addCounter("batch_bytes_fetched", batchBytesFetched_);
    group.addFormula("profile_runs", [this] {
        return static_cast<double>(profileRuns_);
    });
    group.addFormula("checkpoints", [this] {
        return static_cast<double>(checkpoints_);
    });
    group.addFormula("failures_recovered", [this] {
        return static_cast<double>(failures_);
    });
    devices_.front()->store().attachStats(group.subgroup("store"));

    sim::StatGroup &recovery = group.subgroup("recovery");
    recovery_->attachStats(recovery);
    recovery.addCounter("fault_history_events",
                        faultHistory_.eventsRecorded());
    recovery.addFormula("alive_proxies", [this] {
        return static_cast<double>(aliveProxyCount());
    });
    if (monitor_)
        monitor_->attachStats(group.subgroup("heartbeat"));
}

dl::TrainingReport
CoarseEngine::run(std::uint32_t iterations, std::uint32_t warmup)
{
    if (iterations == 0)
        sim::fatal("CoarseEngine: need at least one iteration");
    warmup_ = warmup;
    totalIterations_ = iterations + warmup;
    measuredSeconds_ = 0.0;
    measuredBlocked_ = 0.0;
    measuredIters_ = 0;

    auto &sim = machine_.topology().sim();
    if (monitor_ && !monitor_->running())
        monitor_->start();
    startIteration(0);
    sim.run();

    dl::TrainingReport report;
    report.scheme = name();
    report.model = model_.name;
    report.machine = machine_.name();
    report.workers = static_cast<std::uint32_t>(workers_.size());
    report.batchSize = batch_;
    report.iterations = measuredIters_;
    report.computeSeconds =
        iteration_.forwardSeconds() + iteration_.backwardSeconds();
    if (!service_->idle()) {
        report.deadlocked = true;
        return report;
    }
    if (measuredIters_ == 0)
        sim::fatal("CoarseEngine: no measured iterations completed");
    report.iterationSeconds = measuredSeconds_ / measuredIters_;
    report.blockedCommSeconds = measuredBlocked_ / measuredIters_;
    report.gpuUtilization =
        report.computeSeconds / report.iterationSeconds;
    report.throughputSamplesPerSec =
        static_cast<double>(batch_) * workers_.size()
        / report.iterationSeconds;
    return report;
}

} // namespace coarse::core
