#include "dual_sync.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace coarse::core {

namespace {

double
ringFactor(std::uint32_t p)
{
    if (p <= 1)
        return 0.0;
    return 2.0 * static_cast<double>(p - 1) / static_cast<double>(p);
}

} // namespace

double
predictedIterationSeconds(const DualSyncInputs &in,
                          std::uint64_t proxyBytes)
{
    if (proxyBytes > in.totalBytes)
        sim::fatal("predictedIterationSeconds: m exceeds n");
    const double c = ringFactor(in.workers);
    const double gpuSync = in.gpuRingBytesPerSec > 0
        ? c * static_cast<double>(in.totalBytes - proxyBytes)
            / in.gpuRingBytesPerSec
        : 0.0;
    const double proxySync = in.proxyRingBytesPerSec > 0
        ? c * static_cast<double>(proxyBytes) / in.proxyRingBytesPerSec
        : 0.0;
    const double gpuPath =
        in.forwardSeconds + in.backwardSeconds + gpuSync;
    const double proxyPath = in.forwardSeconds + proxySync;
    return std::max(gpuPath, proxyPath);
}

DualSyncPlan
planDualSync(const DualSyncInputs &in)
{
    if (in.workers == 0)
        sim::fatal("planDualSync: zero workers");
    if (in.gpuRingBytesPerSec <= 0 || in.proxyRingBytesPerSec <= 0)
        sim::fatal("planDualSync: ring bandwidths must be positive");

    DualSyncPlan plan;
    const double c = ringFactor(in.workers);
    const double n = static_cast<double>(in.totalBytes);

    std::uint64_t m;
    if (c == 0.0) {
        m = in.totalBytes; // single worker: nothing to synchronize
    } else {
        // The GPU path decreases in m, the proxy path increases;
        // the optimum is their intersection (clamped to [0, n]):
        //   T_BP + c*(n-m)/Bg = c*m/Bp
        const double bg = in.gpuRingBytesPerSec;
        const double bp = in.proxyRingBytesPerSec;
        const double ideal =
            (in.backwardSeconds + c * n / bg) / (c / bp + c / bg);
        m = static_cast<std::uint64_t>(
            std::clamp(ideal, 0.0, n));
    }

    // The intersection may be interior or clamped; evaluate the
    // candidates and keep the best (the function is piecewise convex).
    const std::uint64_t candidates[] = {0, m, in.totalBytes};
    plan.proxyBytes = 0;
    plan.predictedIterationSeconds =
        predictedIterationSeconds(in, 0);
    for (std::uint64_t candidate : candidates) {
        const double t = predictedIterationSeconds(in, candidate);
        if (t < plan.predictedIterationSeconds) {
            plan.predictedIterationSeconds = t;
            plan.proxyBytes = candidate;
        }
    }
    plan.gpuBytes = in.totalBytes - plan.proxyBytes;
    return plan;
}

std::size_t
assignTensors(const dl::ModelSpec &model, std::uint64_t proxyBytes)
{
    // Walk from the output side accumulating proxy bytes; stop once
    // covered. Everything before the stopping point is GPU-synced.
    std::uint64_t accumulated = 0;
    std::size_t split = model.tensors.size();
    while (split > 0 && accumulated < proxyBytes) {
        accumulated += model.tensors[split - 1].bytes();
        --split;
    }
    return split;
}

} // namespace coarse::core
