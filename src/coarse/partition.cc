#include "partition.hh"

#include "sim/logging.hh"

namespace coarse::core {

std::vector<Shard>
TensorPartitioner::partition(std::size_t tensorIndex,
                             std::uint64_t tensorBytes) const
{
    if (tensorBytes == 0)
        sim::fatal("TensorPartitioner: zero-byte tensor");

    std::vector<Shard> shards;
    // Shards must cut on element (float) boundaries.
    const std::uint64_t target = shardBytes_ & ~std::uint64_t(3);
    if (target == 0 || tensorBytes < 2 * target) {
        shards.push_back(Shard{tensorIndex, 0, 1, 0, tensorBytes});
        return shards;
    }

    const auto count =
        static_cast<std::uint32_t>(tensorBytes / target);
    const std::uint64_t remainder = tensorBytes - count * target;
    shards.reserve(count);
    std::uint64_t offset = 0;
    for (std::uint32_t s = 0; s < count; ++s) {
        // The final shard absorbs the remainder so no shard is ever
        // below the bandwidth-saturating size.
        const std::uint64_t bytes =
            (s == count - 1) ? target + remainder : target;
        shards.push_back(Shard{tensorIndex, s, count, offset, bytes});
        offset += bytes;
    }
    return shards;
}

} // namespace coarse::core
