/**
 * @file
 * The proxy-side synchronization service (paper §III-D, §III-F).
 *
 * Workers push gradient shards to proxies running on the memory
 * devices; once a shard has collected every worker's contribution,
 * the proxies allreduce it over the CCI interconnect using the sync
 * cores. Two scheduling policies are provided:
 *
 *  - Queued (the COARSE design): each proxy keeps one queue per
 *    client and drains all queues concurrently, so a shard runs as
 *    soon as its contributions are complete. Deadlock-free.
 *  - Fcfs (the strawman of Fig. 10): each proxy synchronizes its
 *    arrivals strictly in order. Cross-ordered pushes from multiple
 *    clients then deadlock, because a collective needs every proxy
 *    at the head of its queue on the same shard.
 */

#ifndef COARSE_CORE_PROXY_SYNC_HH
#define COARSE_CORE_PROXY_SYNC_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "fabric/topology.hh"
#include "memdev/sync_group.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"

namespace coarse::core {

/** Identifies one shard-synchronization job. */
struct ShardKey
{
    std::uint32_t iteration = 0;
    std::uint32_t tensor = 0;
    std::uint32_t shard = 0;

    auto operator<=>(const ShardKey &) const = default;
};

/** Proxy scheduling policy. */
enum class SchedulingPolicy
{
    Queued, //!< Per-client queues drained concurrently (COARSE).
    Fcfs,   //!< Strict arrival order (deadlocks; Fig. 10 strawman).
};

/**
 * Runs the proxy fleet of one COARSE deployment.
 */
class ProxySyncService
{
  public:
    /** Fired once per shard when its reduction completes everywhere.
     *  @p reduced holds the summed data in functional mode (empty
     *  otherwise). */
    using SyncedFn =
        std::function<void(const ShardKey &, const std::vector<float> &)>;

    /**
     * @param topo Fabric shared with the rest of the system.
     * @param devices One memory device per proxy, in rank order.
     * @param schedule Sync-core group configuration.
     * @param policy Queued (COARSE) or Fcfs (strawman).
     * @param functional Move real float payloads when true.
     * @param wireBytesPerElement Bytes each gradient element occupies
     *        on the client-proxy wire (4 = fp32, 2 = compressed
     *        fp16). Proxy-to-proxy accumulation always runs at fp32.
     */
    ProxySyncService(fabric::Topology &topo,
                     std::vector<memdev::MemoryDevice *> devices,
                     memdev::SyncScheduleOptions schedule,
                     SchedulingPolicy policy, bool functional,
                     std::uint32_t wireBytesPerElement = 4);

    void setOnSynced(SyncedFn fn) { onSynced_ = std::move(fn); }

    /**
     * Push one shard from @p worker to @p proxyNode.
     *
     * @param totalContributions Worker pushes this shard will receive
     *        across all proxies; the reduction launches when the
     *        last one lands.
     * @param data Gradient payload (functional mode only; pass {}).
     */
    void push(fabric::NodeId worker, fabric::NodeId proxyNode,
              const ShardKey &key, std::uint64_t bytes,
              std::vector<float> data,
              std::uint32_t totalContributions);

    /** Shards pushed but not yet fully synchronized. */
    std::size_t pendingCount() const { return pending_.size(); }

    /** True when nothing is in flight (deadlock probe). */
    bool idle() const { return pending_.empty(); }

    SchedulingPolicy policy() const { return policy_; }
    memdev::SyncGroupScheduler &scheduler() { return scheduler_; }

    /** @name Stats */
    ///@{
    const sim::Counter &shardsSynced() const { return synced_; }
    const sim::Counter &bytesPushed() const { return bytesPushed_; }
    ///@}

  private:
    struct ShardState
    {
        std::uint64_t bytes = 0;
        std::uint32_t expected = 0;
        std::uint32_t arrived = 0;
        bool syncing = false;
        /** Tick of the first worker push (shard-lifetime trace). */
        sim::Tick firstPushTick = 0;
        /** Per-proxy accumulation buffers (functional mode). */
        std::vector<std::vector<float>> accum;
        /** Which proxies received at least one contribution. */
        std::vector<bool> touched;
    };

    std::size_t proxyIndexOf(fabric::NodeId node) const;
    void onShardArrived(std::size_t proxyIdx, fabric::NodeId worker,
                        const ShardKey &key, std::vector<float> data);
    void tryLaunch();
    /** Sample per-proxy queue depth / per-client in-flight pushes. */
    void traceQueueDepth(std::size_t proxyIdx);
    void traceClientInflight(std::size_t proxyIdx, fabric::NodeId worker,
                             std::int64_t delta);
    bool proxyReady(std::size_t proxyIdx, const ShardKey &key) const;
    void launch(const ShardKey &key, ShardState &state);
    void onShardSynced(const ShardKey &key);

    fabric::Topology &topo_;
    std::vector<memdev::MemoryDevice *> devices_;
    memdev::SyncGroupScheduler scheduler_;
    SchedulingPolicy policy_;
    bool functional_;
    std::uint32_t wireBytesPerElement_;
    SyncedFn onSynced_;

    std::map<ShardKey, ShardState> pending_;
    /** Per-proxy arrival-ordered queues (FCFS policy uses heads). */
    std::vector<std::deque<ShardKey>> arrivalQueues_;

    sim::Counter synced_;
    sim::Counter bytesPushed_;

    /** @name Trace state (only touched while tracing is enabled) */
    ///@{
    std::vector<sim::TraceTrackHandle> proxyTracks_;
    std::map<std::pair<std::size_t, fabric::NodeId>,
             sim::TraceTrackHandle> clientTracks_;
    std::map<std::pair<std::size_t, fabric::NodeId>, std::int64_t>
        clientInflight_;
    std::map<std::uint32_t, sim::TraceTrackHandle> tensorTracks_;
    ///@}
};

} // namespace coarse::core

#endif // COARSE_CORE_PROXY_SYNC_HH
