/**
 * @file
 * The COARSE training engine: ties the profiler, routing,
 * partitioning, dual synchronization, proxy service, and parameter
 * storage together behind the dl::Trainer interface (paper §III).
 */

#ifndef COARSE_CORE_ENGINE_HH
#define COARSE_CORE_ENGINE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "cci/address_space.hh"
#include "collective/communicator.hh"
#include "dl/iteration.hh"
#include "dl/model.hh"
#include "dl/optimizer.hh"
#include "dl/trainer.hh"
#include "dual_sync.hh"
#include "fabric/machine.hh"
#include "fault/heartbeat.hh"
#include "fault/injector.hh"
#include "memdev/memory_device.hh"
#include "partition.hh"
#include "profiler.hh"
#include "proxy_sync.hh"
#include "recovery.hh"
#include "routing.hh"
#include "sim/event.hh"

namespace coarse::core {

/**
 * Phase timestamps of one training iteration, for pipeline
 * introspection (all in simulated ticks). Zero means the phase never
 * occurred (e.g. no GPU-synced tensors).
 */
struct IterationTimeline
{
    sim::Tick start = 0;
    sim::Tick computeEnd = 0;
    sim::Tick firstPush = 0;
    sim::Tick lastPush = 0;
    sim::Tick firstShardSynced = 0;
    sim::Tick lastShardSynced = 0;
    sim::Tick firstPull = 0;
    sim::Tick lastPull = 0;
    sim::Tick gpuSyncEnd = 0;
    sim::Tick end = 0;
};

/** Feature switches and tuning for one COARSE run. */
struct CoarseOptions
{
    /** Use the profiler's Lat/Bw routing (off = always local proxy). */
    bool tensorRouting = true;
    /** Split large tensors into pipelined shards. */
    bool tensorPartitioning = true;
    /** Enable the dual GPU/proxy synchronization split. */
    bool dualSync = true;
    /**
     * Force the fraction of parameter bytes synchronized by the
     * proxies (ablations): negative = let the planner decide.
     */
    double proxyShareOverride = -1.0;
    /** Proxy scheduling policy (Fcfs reproduces the Fig. 10 bug). */
    SchedulingPolicy schedulingPolicy = SchedulingPolicy::Queued;
    /** Concurrent sync-core groups (counter-rotating rings). */
    std::size_t syncGroups = 2;
    /**
     * Drive proxy reductions through the Fig. 11c RingEngine state
     * machine (explicit chunk staging + per-entry ring steps).
     * Functional-data mode only; timed transfers keep the flow model.
     */
    bool detailedSyncCores = false;
    /** Counter-rotate adjacent sync groups. */
    bool alternateRingDirections = true;
    /**
     * Move real float gradients (tests) instead of timing-only
     * transfers (full-size benchmarks).
     */
    bool functionalData = false;
    /**
     * Compress gradients to fp16 on the client-proxy wire (half the
     * push/pull bytes); proxies accumulate at fp32. In functional
     * mode, payloads are genuinely quantized through binary16.
     */
    bool compressGradients = false;
    /** SGD learning rate used in functional mode. */
    double learningRate = 0.1;
    /**
     * Update rule the proxies apply (functional mode). The optimizer
     * state lives on the memory devices either way — that is the
     * offloading that frees GPU memory for larger batches.
     */
    dl::OptimizerParams optimizer = {};
    /** Re-run the profiler every N iterations (0 = only at start). */
    std::uint32_t reprofileEveryIters = 0;
    /** Override the profiled shard size S' (0 = use profiler). */
    std::uint64_t shardBytesOverride = 0;
    /** Snapshot parameters every N iterations (0 = never). */
    std::uint32_t checkpointEveryIters = 0;
    /**
     * Fault injection: kill a worker right after this iteration
     * completes (absolute index; UINT32_MAX = never). The engine
     * restores all parameters from the latest checkpoint, re-pulls
     * them to every GPU, and replays the lost iterations — the
     * recovery path of §IV-A.
     */
    std::uint32_t failAtIteration = 0xffffffff;
    /**
     * Minibatch loading from the disaggregated pool (the abstract's
     * "access to training data and model parameters"): each worker
     * fetches its batch from its paired memory device. Prefetched
     * batches overlap the previous iteration; disable prefetch to
     * expose the fetch on the critical path.
     */
    bool dataLoading = false;
    bool dataPrefetch = true;
    /** Memory-device hardware configuration. */
    memdev::MemoryDeviceParams deviceParams = {};
    /**
     * Run a heartbeat monitor over the proxy fleet so fail-stop proxy
     * crashes are *detected* (via missed acks) rather than known by
     * construction. Required when fault injection may crash a proxy.
     */
    bool heartbeats = false;
    /** Probe cadence of the heartbeat monitor. */
    double heartbeatIntervalSeconds = 500e-6;
    /** Missed-ack deadline before a proxy is declared dead. */
    double heartbeatTimeoutSeconds = 250e-6;
    /** Recovery state-machine tuning (partial rollback, retries). */
    RecoveryOptions recovery = {};
};

/**
 * COARSE end to end, as a Trainer.
 */
class CoarseEngine : public dl::Trainer
{
  public:
    CoarseEngine(fabric::Machine &machine, dl::ModelSpec model,
                 std::uint32_t batchSize, CoarseOptions options = {});
    ~CoarseEngine() override;

    std::string name() const override { return "COARSE"; }

    dl::TrainingReport run(std::uint32_t iterations,
                           std::uint32_t warmup = 2) override;

    /** @name Introspection (tests, benches) */
    ///@{
    const RoutingTable &routingTableOf(std::size_t workerIdx) const;
    const DualSyncPlan &plan() const { return plan_; }
    std::uint64_t shardBytes() const { return partitioner_->shardBytes(); }
    /** Functional-mode weights of worker @p w, tensor @p t. */
    const std::vector<float> &weights(std::size_t workerIdx,
                                      std::size_t tensorIdx) const;
    ProxySyncService &proxyService() { return *service_; }
    memdev::MemoryDevice &memoryDevice(std::size_t i);
    std::uint32_t profileRuns() const { return profileRuns_; }
    std::uint32_t checkpointsTaken() const { return checkpoints_; }
    std::uint32_t failuresRecovered() const { return failures_; }
    /** Iterations re-executed due to failure recovery. */
    std::uint32_t iterationsReplayed() const { return replayed_; }
    /** Phase timestamps of the most recently completed iteration. */
    const IterationTimeline &lastTimeline() const { return timeline_; }

    /** Register the engine's counters under @p group. */
    void attachStats(sim::StatGroup &group) const;
    ///@}

    /** @name Fault injection & recovery */
    ///@{
    /**
     * Hooks a FaultInjector drives against this engine: link
     * degradation feeds the fabric (and flags a re-profile), proxy
     * crashes feed the heartbeat detector, stragglers stretch worker
     * compute. The hooks are valid for the engine's lifetime.
     */
    fault::FaultHooks faultHooks();

    /**
     * Fail-stop memory device @p idx at the current tick. The crash
     * is silent: only the heartbeat monitor's missed acks reveal it,
     * so CoarseOptions::heartbeats must be enabled.
     */
    void crashProxy(std::size_t idx);

    /** Multiply worker @p idx's compute time by @p factor (>= 1). */
    void setWorkerSlowdown(std::size_t idx, double factor);

    /** Flag that the fabric changed: re-profile before next iteration. */
    void noteFabricFault() { reprofilePending_ = true; }

    std::size_t aliveProxyCount() const;
    bool proxyAlive(std::size_t idx) const { return proxyAlive_.at(idx); }

    /** The recovery state machine (stats, episode introspection). */
    const RecoveryManager &recovery() const { return *recovery_; }

    /**
     * Per-proxy fault scores consumed by failure-aware planning.
     * Non-const so external monitors (and tests) can inject
     * suspicion directly via record().
     */
    FaultHistory &faultHistory() { return faultHistory_; }

    /**
     * Parameter bytes the current plan routes to memory device
     * @p idx: the union of proxy-synced tensors any worker's routing
     * table sends there. A proxy with a fault history receives a
     * smaller allotment on the next re-profile.
     */
    std::uint64_t plannedProxyBytes(std::size_t idx) const;

    /** Crash-to-detection latency samples (seconds). */
    const sim::Distribution &detectionLatency() const
    {
        return recovery_->detectionLatency();
    }
    /** Detection-to-resume recovery time samples (seconds). */
    const sim::Distribution &recoveryTime() const
    {
        return recovery_->recoveryTime();
    }
    /**
     * Logical parameter bytes invalidated by failures: each
     * rolled-back shard counts once, regardless of how many replicas
     * restore it, so the metric scales with the failed shard.
     */
    const sim::Counter &rollbackBytes() const
    {
        return recovery_->rollbackBytes();
    }
    ///@}

  private:
    friend class RecoveryManager;

    /** Per-worker functional state. */
    struct WorkerState
    {
        fabric::NodeId node = fabric::kInvalidNode;
        /** Functional-mode weights, one vector per tensor. */
        std::vector<std::vector<float>> weights;
    };
    struct IterationState;

    void buildDevices();
    void profileAndPlan();
    void startIteration(std::uint32_t iter);
    /** The body of an iteration once its input batch is resident. */
    void runIterationBody(std::uint32_t iter);
    /** Fetch one minibatch per worker from its paired device. */
    void fetchBatch(std::function<void()> done);
    void pushTensor(std::uint32_t iter, std::size_t workerIdx,
                    std::size_t tensorIdx);
    void onShardSynced(const ShardKey &key,
                       const std::vector<float> &reduced);
    void onWorkerPathDone(std::uint32_t iter);
    /** Fires at computeEnd: launch the GPU-ring sync of this iteration. */
    void startGpuSync();
    /** Fires when every sync path has drained: close the iteration. */
    void finishCurrentIteration();
    void finishIteration(std::uint32_t iter);
    /** Restore from the latest checkpoint and replay. */
    void recoverFromFailure(std::uint32_t failedIter);
    /** (Re)create the proxy sync service over the alive devices. */
    void rebuildSyncService();
    /** Nodes of the memory devices still alive, in fleet order. */
    std::vector<fabric::NodeId> aliveProxies() const;
    /** First alive memory device (authoritative parameter replica). */
    memdev::MemoryDevice &firstAliveDevice();
    /**
     * The proxy worker @p workerNode pairs with: its locality-paired
     * device while that is alive, else the closest alive device.
     */
    fabric::NodeId proxyFor(fabric::NodeId workerNode);
    /** Heartbeat verdict: proxy @p idx stopped acking. */
    void onProxyDead(std::size_t idx);
    /**
     * Proxy-synced tensors the current routing sends to memory
     * device @p idx (any worker). Index is per-tensor.
     */
    std::vector<bool> proxyOwnedTensors(std::size_t idx) const;
    /** Effective compute-time multiplier (slowest worker wins). */
    double computeSlowdown() const;
    std::vector<float> makeGradient(std::size_t workerIdx,
                                    std::size_t tensorIdx,
                                    std::uint32_t iter) const;
    void applyUpdate(std::uint32_t iter, std::size_t tensorIdx,
                     const std::vector<float> &summedGrad);

    fabric::Machine &machine_;
    dl::ModelSpec model_;
    std::uint32_t batch_;
    CoarseOptions options_;
    dl::GpuSpec gpu_;
    dl::IterationModel iteration_;

    std::vector<std::unique_ptr<memdev::MemoryDevice>> devices_;
    std::unique_ptr<cci::AddressSpace> space_;
    std::unique_ptr<ProxySyncService> service_;
    std::unique_ptr<coll::Communicator> workerComm_;
    std::unique_ptr<Profiler> profiler_;
    std::unique_ptr<TensorPartitioner> partitioner_;

    std::vector<RoutingTable> routing_; // per worker
    DualSyncPlan plan_;
    /** Per-tensor server-side optimizers (functional mode). */
    std::vector<std::unique_ptr<dl::Optimizer>> optimizers_;

    std::unique_ptr<IterationState> iter_;
    std::vector<std::unique_ptr<WorkerState>> workers_;
    IterationTimeline timeline_;

    /** Trace tracks: engine-level phases and one per worker GPU. */
    sim::TraceTrackHandle engineTraceTrack_;
    std::vector<sim::TraceTrackHandle> workerTraceTracks_;

    /** Pre-allocated per-iteration events; re-armed every cycle. */
    sim::MemberEvent<CoarseEngine, &CoarseEngine::startGpuSync>
        gpuSyncEvent_{*this, "coarse.gpu_sync"};
    sim::MemberEvent<CoarseEngine, &CoarseEngine::finishCurrentIteration>
        finishEvent_{*this, "coarse.finish_iteration"};

    std::uint32_t totalIterations_ = 0;
    std::uint32_t warmup_ = 0;
    std::uint32_t profileRuns_ = 0;
    std::uint32_t checkpoints_ = 0;
    std::uint32_t failures_ = 0;
    std::uint32_t replayed_ = 0;
    /** Iteration the newest checkpoint covers (exclusive). */
    std::uint32_t lastCheckpointIteration_ = 0;
    memdev::SnapshotId latestSnapshot_ = 0;
    /** Optimizer state captured with the latest checkpoint. */
    std::vector<dl::Optimizer::State> checkpointedOptimizers_;
    /**
     * Per tensor: the iteration whose update is already applied
     * (exclusive). Partial rollback resets only the failed shard's
     * entries, and replay skips updates a tensor already holds —
     * that is what keeps mixed-age replicas bit-identical.
     */
    std::vector<std::uint32_t> appliedThrough_;
    /** appliedThrough_ as of the latest checkpoint. */
    std::vector<std::uint32_t> checkpointAppliedThrough_;

    // Fault-tolerance state.
    std::unique_ptr<fault::HeartbeatMonitor> monitor_;
    std::unique_ptr<RecoveryManager> recovery_;
    FaultHistory faultHistory_;
    /** Per memory device: has recovery excluded it yet? */
    std::vector<bool> proxyAlive_;
    /** Tick the device fail-stopped (0 = healthy). */
    std::vector<sim::Tick> proxyDeadSince_;
    /** A fabric fault invalidated the routing tables. */
    bool reprofilePending_ = false;
    /** Per-worker compute-time multiplier (straggler injection). */
    std::vector<double> workerSlowdown_;

    // Input-pipeline state (options_.dataLoading).
    /** Wall anchor of the iteration being started (set before any
     *  input fetch, so fetch stalls count against the iteration). */
    sim::Tick iterationAnchor_ = 0;
    bool batchReady_ = false;
    std::function<void()> pendingIteration_;
    sim::Counter batchesFetched_;
    sim::Counter batchBytesFetched_;

    // Measurement accumulators (post-warmup).
    double measuredSeconds_ = 0.0;
    double measuredBlocked_ = 0.0;
    std::uint32_t measuredIters_ = 0;
};

} // namespace coarse::core

#endif // COARSE_CORE_ENGINE_HH
