/**
 * @file
 * Dual-synchronization planner (paper §III-F).
 *
 * Splits the model's n parameter bytes so that m bytes are pushed to
 * the proxies (overlapping the backward pass) and n-m bytes — the
 * input-side layers whose gradients arrive last but are needed first
 * — are ring-allreduced directly by the worker GPUs. The split
 * minimizes
 *
 *   T_train = max( T_FP + T_BP + T_sync(GPU),
 *                  T_FP + T_sync(proxy) )
 *
 * with T_sync(X) = 2(p-1)/p * bytes / B_X.
 */

#ifndef COARSE_CORE_DUAL_SYNC_HH
#define COARSE_CORE_DUAL_SYNC_HH

#include <cstdint>

#include "dl/model.hh"

namespace coarse::core {

/** Inputs the planner needs; all are profiler/model measurements. */
struct DualSyncInputs
{
    /** Forward-pass time per iteration (seconds). */
    double forwardSeconds = 0.0;
    /** Backward-pass time per iteration (seconds). */
    double backwardSeconds = 0.0;
    /** Total parameter bytes n. */
    std::uint64_t totalBytes = 0;
    /** Worker count p. */
    std::uint32_t workers = 0;
    /** Ring bandwidth between worker GPUs (bytes/s). */
    double gpuRingBytesPerSec = 0.0;
    /** Ring bandwidth between proxies (bytes/s). */
    double proxyRingBytesPerSec = 0.0;
};

/** The planner's decision. */
struct DualSyncPlan
{
    /** Bytes synchronized by the proxies (m). */
    std::uint64_t proxyBytes = 0;
    /** Bytes synchronized by the worker GPUs (n - m). */
    std::uint64_t gpuBytes = 0;
    /** Predicted iteration time at the chosen split. */
    double predictedIterationSeconds = 0.0;
    /**
     * First proxy-synced tensor index: tensors [splitTensor, N) — the
     * output side, whose gradients are produced first — go to the
     * proxies; tensors [0, splitTensor) — the input-side layers the
     * next forward pass needs first — are GPU-synced.
     */
    std::size_t splitTensor = 0;
};

/** Predicted iteration time for a given proxy-bytes split m. */
double predictedIterationSeconds(const DualSyncInputs &in,
                                 std::uint64_t proxyBytes);

/**
 * Choose m minimizing the predicted iteration time.
 */
DualSyncPlan planDualSync(const DualSyncInputs &in);

/**
 * Map a byte split onto tensor indices: walk the model from the
 * output side (gradients produced first) assigning tensors to the
 * proxies until ~m bytes are covered; the remaining input-side
 * tensors are GPU-synced. Returns the first proxy-synced index, so
 * tensors [result, N) go to proxies and [0, result) to the GPUs.
 */
std::size_t assignTensors(const dl::ModelSpec &model,
                          std::uint64_t proxyBytes);

} // namespace coarse::core

#endif // COARSE_CORE_DUAL_SYNC_HH
