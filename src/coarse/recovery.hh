/**
 * @file
 * Re-entrant recovery orchestration for the COARSE engine (§IV-A).
 *
 * PR 2's recovery was single-shot and all-or-nothing: one detection
 * window collapsed into one full-model rollback, and a crash landing
 * mid-recovery was unhandled. This module replaces it with an
 * explicit state machine:
 *
 *   Idle ──detection──▶ Draining ──iteration boundary──▶ Repulling
 *     ▲                     │  (more detections queue here)   │
 *     └── all pulls done ◀──┴── detections mid-repull extend ─┘
 *
 * - **Partial rollback**: only the tensors the dead proxy owned
 *   (routed to it during the failed iteration) are restored from the
 *   checkpoint, so `rollback_bytes` scales with the failed shard.
 * - **Cascading failures**: a detection during Repulling extends the
 *   in-flight episode — mark dead, rebuild rings, widen the rollback
 *   set if the proxy died before the boundary, re-plan, re-issue the
 *   pulls — instead of being dropped.
 * - **Retry + backoff**: every re-pull carries a deadline derived
 *   from the fabric's expected transfer time; a missed deadline
 *   resends with exponential backoff, and exhausting the retries
 *   escalates to a full rollback. A flapping link during recovery
 *   therefore degrades to a deeper rollback, never a hang.
 * - **Failure-aware planning**: FaultHistory scores each proxy's
 *   crashes, adjacent link faults, and pull timeouts; the scores
 *   become profiler penalties that bias routing away from suspect
 *   proxies before the next failure.
 *
 * The invariant is unchanged: faults cost time, never correctness.
 * Replay skips per-tensor updates that survived the partial rollback
 * (CoarseEngine tracks applied-through iterations per tensor), so
 * storms converge bit-identically to the fault-free weights.
 */

#ifndef COARSE_CORE_RECOVERY_HH
#define COARSE_CORE_RECOVERY_HH

#include <cstdint>
#include <vector>

#include "sim/stats.hh"
#include "sim/ticks.hh"
#include "sim/trace.hh"

namespace coarse::core {

class CoarseEngine;

/** Tuning for the recovery state machine. */
struct RecoveryOptions
{
    /**
     * Restore only the dead proxy's owned tensors (plus optimizer
     * state) instead of the whole model. Off = PR 2's full rollback.
     */
    bool partialRollback = true;
    /** Re-pull retries before escalating to a full rollback. */
    std::uint32_t maxPullRetries = 3;
    /** Deadline = expected transfer time x this margin. */
    double pullDeadlineMargin = 4.0;
    /** Each retry multiplies the deadline by this factor. */
    double pullBackoffFactor = 2.0;
};

/**
 * Per-proxy fault history feeding failure-aware planning.
 *
 * Scores decay by half on every re-profile, so a proxy that stays
 * healthy gradually earns its traffic back. The penalty multiplier
 * (>= 1) is applied to the profiler's measured path quality; one
 * recorded event is enough to break the profiler's 1% tie window, so
 * a suspect proxy loses symmetric-fabric ties immediately.
 */
class FaultHistory
{
  public:
    void reset(std::size_t proxies) { scores_.assign(proxies, 0.0); }

    /** A link adjacent to this proxy degraded or flapped. */
    void recordLinkFault(std::size_t idx) { record(idx, 1.0); }
    /** A recovery re-pull sourced from this proxy missed its deadline. */
    void recordPullTimeout(std::size_t idx) { record(idx, 2.0); }
    /** The proxy fail-stopped. */
    void recordCrash(std::size_t idx) { record(idx, 4.0); }
    /** Direct injection (tests, external monitors). */
    void record(std::size_t idx, double weight);

    /** Halve every score (called on each re-profile). */
    void decay();

    double score(std::size_t idx) const { return scores_.at(idx); }

    /** Path-quality multiplier >= 1 for the profiler. */
    double penalty(std::size_t idx) const;

    const sim::Counter &eventsRecorded() const { return events_; }

  private:
    std::vector<double> scores_;
    sim::Counter events_;
};

/**
 * The recovery state machine. Owns all recovery bookkeeping and
 * stats; CoarseEngine delegates detections and boundary checks here.
 */
class RecoveryManager
{
  public:
    enum class State
    {
        /** No failure in sight. */
        Idle,
        /** Detections queued; waiting for the iteration boundary. */
        Draining,
        /** Rolled back; re-pull transfers (with deadlines) in flight. */
        Repulling,
    };

    RecoveryManager(CoarseEngine &engine, RecoveryOptions options);

    /** Heartbeat verdict: proxy @p idx stopped acking. */
    void onProxyDead(std::size_t idx);

    /** Detections waiting for the iteration boundary? */
    bool detectionsPending() const { return !pendingDead_.empty(); }

    /**
     * The iteration boundary reached with detections pending: start
     * (or restart) an episode — mark dead, rebuild, roll back the
     * owned shards, re-plan, issue the re-pulls.
     */
    void onIterationBoundary(std::uint32_t failedIter);

    State state() const { return state_; }

    /** @name Introspection (tests, benches, stats) */
    ///@{
    const sim::Distribution &detectionLatency() const
    {
        return detectionLatency_;
    }
    const sim::Distribution &recoveryTime() const { return recoveryTime_; }
    /** Logical parameter bytes rolled back (counted once per shard). */
    const sim::Counter &rollbackBytes() const { return rollbackBytes_; }
    const sim::Counter &partialRollbacks() const { return partial_; }
    const sim::Counter &fullRollbacks() const { return full_; }
    /** Episodes escalated from partial to full by pull failures. */
    const sim::Counter &escalations() const { return escalations_; }
    const sim::Counter &pullRetries() const { return pullRetries_; }
    /** Detections that landed while an episode was already Repulling. */
    const sim::Counter &cascadeDetections() const { return cascades_; }
    /** Detections for proxies already declared dead (dropped). */
    const sim::Counter &duplicateDetections() const { return duplicates_; }
    /** Boundary tick of the most recent episode (0 = none yet). */
    sim::Tick lastBoundaryTick() const { return boundaryTick_; }
    void attachStats(sim::StatGroup &group) const;
    ///@}

  private:
    friend class CoarseEngine;

    /** Mark the queued detections dead and widen the rollback set. */
    void processDetections();
    /** Restore @p tensors (per-tensor) on every surviving store. */
    void rollbackTensors(const std::vector<bool> &tensors);
    /** Pull retries exhausted: widen to a full rollback and re-pull. */
    void escalate();
    /** (Re)issue the re-pull transfer for every worker. */
    void startPulls();
    void sendPull(std::uint64_t epoch, std::size_t workerIdx,
                  std::uint32_t attempt);
    /** Earliest iteration any rolled-back tensor must replay from. */
    std::uint32_t computeReplayFrom() const;
    /** Bytes a worker must re-pull this episode. */
    std::uint64_t rolledBackBytes() const;
    /** All pulls delivered: close the episode and resume training. */
    void finishEpisode();

    /** Mark a state transition / recovery milestone on the trace. */
    void traceMark(const char *name, sim::Tick tick,
                   std::uint64_t arg0 = 0);
    void traceStateSpan(const char *name, sim::Tick start,
                        sim::Tick end);

    CoarseEngine &eng_;
    RecoveryOptions opt_;
    State state_ = State::Idle;

    /** Detections not yet folded into an episode. */
    std::vector<std::size_t> pendingDead_;
    /** Dedup: proxies a detection has ever fired for. */
    std::vector<bool> everDetected_;

    // Episode state (valid while state_ != Idle).
    std::uint32_t failedIter_ = 0;
    sim::Tick episodeStart_ = 0;
    sim::Tick boundaryTick_ = 0;
    /** Routing ownership frozen at the boundary: [proxy][tensor]. */
    std::vector<std::vector<bool>> ownedAtBoundary_;
    /** Tensors rolled back so far this episode. */
    std::vector<bool> rolledBack_;
    std::uint32_t replayFrom_ = 0;
    bool escalated_ = false;
    /** Bumped whenever outstanding pulls/deadlines become stale. */
    std::uint64_t pullEpoch_ = 0;
    std::vector<bool> pullDone_;

    sim::Distribution detectionLatency_;
    sim::Distribution recoveryTime_;
    sim::Counter rollbackBytes_;
    sim::Counter partial_;
    sim::Counter full_;
    sim::Counter escalations_;
    sim::Counter pullRetries_;
    sim::Counter cascades_;
    sim::Counter duplicates_;

    sim::TraceTrackHandle traceTrack_;
};

} // namespace coarse::core

#endif // COARSE_CORE_RECOVERY_HH
