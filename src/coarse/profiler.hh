/**
 * @file
 * Communication profiler (paper §III-E, "Dynamic Partitioning").
 *
 * Before training, COARSE measures each client's latency and
 * bandwidth to every proxy, picks LatProxy and BwProxy, finds the
 * size S at which their transfer times cross, and finds the smallest
 * shard size S' that saturates the bandwidth-optimal path. During
 * training the measurements are refreshed periodically.
 *
 * The profiler measures on an idle fabric, mirroring the CUDA
 * micro-benchmarks the real system runs: it queries the topology's
 * analytic path latency/bandwidth, which is exactly what those
 * probes would observe. NVLink is excluded, as the real profiler
 * disables it to measure the PCIe path (§IV-B).
 */

#ifndef COARSE_CORE_PROFILER_HH
#define COARSE_CORE_PROFILER_HH

#include <cstdint>
#include <map>
#include <vector>

#include "fabric/topology.hh"
#include "routing.hh"

namespace coarse::core {

/** One measured (size, seconds, bandwidth) probe point. */
struct ProbePoint
{
    std::uint64_t bytes = 0;
    double seconds = 0.0;
    double bytesPerSec = 0.0;
};

/** Full profile of one client-proxy path. */
struct PathProfile
{
    fabric::NodeId proxy = fabric::kInvalidNode;
    double latencySeconds = 0.0;
    double peakBytesPerSec = 0.0;
    std::vector<ProbePoint> points;
};

/** Profiler configuration. */
struct ProfilerOptions
{
    std::uint64_t minProbeBytes = 1 << 10;
    std::uint64_t maxProbeBytes = 64 << 20;
    /** Fraction of peak that counts as "full bandwidth" for S'. */
    double saturationFraction = 0.95;
    fabric::LinkMask mask = fabric::kNoNvLink;
};

/** Result of profiling one client. */
struct ClientProfile
{
    RoutingTable routing;
    /** Partition shard size S' (saturates the BwProxy path). */
    std::uint64_t shardBytes = 2 << 20;
    std::vector<PathProfile> paths;
};

/**
 * Measures client-to-proxy communication and builds routing tables.
 */
class Profiler
{
  public:
    Profiler(fabric::Topology &topo, ProfilerOptions options = {});

    /** Profile one path (used by Fig. 15's bench directly). */
    PathProfile profilePath(fabric::NodeId client, fabric::NodeId proxy);

    /**
     * Build the client's routing table + shard size over @p proxies.
     *
     * @param preferred Affinity proxy (the client's paired device):
     *        measurement ties — common on symmetric fabrics — resolve
     *        to it, so clients spread across proxies instead of all
     *        piling onto the first one.
     * @param penalties Failure-aware planning: per-proxy path-quality
     *        multipliers (>= 1) from the engine's fault history. A
     *        penalized proxy's measured latency is scaled up and its
     *        bandwidth down before routing derivation, so routing
     *        biases away from suspect proxies without excluding them.
     */
    ClientProfile
    profileClient(fabric::NodeId client,
                  const std::vector<fabric::NodeId> &proxies,
                  fabric::NodeId preferred = fabric::kInvalidNode,
                  const std::map<fabric::NodeId, double> &penalties = {});

    /**
     * Measure one path by actually sending probe transfers through
     * the live fabric, one size at a time — the analogue of the real
     * system's CUDA probe kernels. Takes simulated time and observes
     * whatever contention exists; @p done receives the profile.
     */
    void profilePathMeasured(fabric::NodeId client,
                             fabric::NodeId proxy,
                             std::function<void(PathProfile)> done);

    /**
     * Measured variant of profileClient(): probes every proxy
     * sequentially, then derives the routing table exactly as the
     * analytic version does.
     */
    void
    profileClientMeasured(fabric::NodeId client,
                          std::vector<fabric::NodeId> proxies,
                          fabric::NodeId preferred,
                          std::function<void(ClientProfile)> done);

    const ProfilerOptions &options() const { return options_; }

  private:
    /** Transfer time of @p bytes on a path. */
    double transferSeconds(const PathProfile &path,
                           std::uint64_t bytes) const;

    /** Find S with T_lat(S) == T_bw(S) by bisection on probe sizes. */
    std::uint64_t crossoverBytes(const PathProfile &lat,
                                 const PathProfile &bw) const;

    /** Routing-table derivation shared by both profiling modes. */
    ClientProfile deriveProfile(fabric::NodeId client,
                                std::vector<PathProfile> paths,
                                fabric::NodeId preferred) const;

    fabric::Topology &topo_;
    ProfilerOptions options_;
};

} // namespace coarse::core

#endif // COARSE_CORE_PROFILER_HH
