/**
 * @file
 * Per-client tensor routing table (paper §III-E).
 *
 * Three entries: a size threshold, a latency-optimal proxy for small
 * tensors, and a bandwidth-optimal proxy for large tensors. On
 * machines with "anti-local" bandwidth the two differ, and routing
 * large tensors to a remote proxy wins.
 */

#ifndef COARSE_CORE_ROUTING_HH
#define COARSE_CORE_ROUTING_HH

#include <cstdint>

#include "fabric/message.hh"

namespace coarse::core {

/** The routing table the profiler builds for one client. */
struct RoutingTable
{
    /** Proxy with the lowest measured latency (usually local). */
    fabric::NodeId latProxy = fabric::kInvalidNode;
    /** Proxy with the highest measured large-transfer bandwidth. */
    fabric::NodeId bwProxy = fabric::kInvalidNode;
    /**
     * Requests of at least this many bytes go to bwProxy, smaller
     * ones to latProxy. Zero sends everything to bwProxy.
     */
    std::uint64_t thresholdBytes = 0;

    /** Destination proxy for a request of @p bytes. */
    fabric::NodeId
    route(std::uint64_t bytes) const
    {
        return bytes >= thresholdBytes ? bwProxy : latProxy;
    }
};

} // namespace coarse::core

#endif // COARSE_CORE_ROUTING_HH
