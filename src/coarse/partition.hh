/**
 * @file
 * Tensor partitioning (paper §III-E).
 *
 * Large tensors are split into equal-sized shards of the profiled
 * size S' so the push/pull pipeline stays full and the serial bus is
 * driven in both directions at once. Shards are never smaller than
 * S' ("equal to or larger than the threshold to maximize bandwidth
 * utilization"), so a tensor slightly above S' produces one shard.
 */

#ifndef COARSE_CORE_PARTITION_HH
#define COARSE_CORE_PARTITION_HH

#include <cstdint>
#include <vector>

namespace coarse::core {

/** One shard of a partitioned tensor. */
struct Shard
{
    /** Index of the source tensor in the model. */
    std::size_t tensorIndex = 0;
    /** Shard ordinal within the tensor. */
    std::uint32_t shardIndex = 0;
    /** Shards the tensor was split into. */
    std::uint32_t shardCount = 1;
    /** Byte offset of this shard within the tensor. */
    std::uint64_t offset = 0;
    std::uint64_t bytes = 0;
};

/**
 * Splits tensors into shards and remembers enough to reassemble.
 */
class TensorPartitioner
{
  public:
    /**
     * @param shardBytes Target shard size S' (0 disables splitting).
     */
    explicit TensorPartitioner(std::uint64_t shardBytes)
        : shardBytes_(shardBytes) {}

    std::uint64_t shardBytes() const { return shardBytes_; }
    void setShardBytes(std::uint64_t bytes) { shardBytes_ = bytes; }

    /**
     * Partition a tensor of @p tensorBytes bytes. Every shard is at
     * least S' bytes (the last absorbs the remainder), so a tensor
     * below 2*S' stays whole.
     */
    std::vector<Shard> partition(std::size_t tensorIndex,
                                 std::uint64_t tensorBytes) const;

  private:
    std::uint64_t shardBytes_;
};

} // namespace coarse::core

#endif // COARSE_CORE_PARTITION_HH
