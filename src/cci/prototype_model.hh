/**
 * @file
 * Performance model of the FPGA-based CCI disaggregated-memory
 * prototype (paper §IV-C / §V-B).
 *
 * The paper profiles the prototype under three access paths and then
 * drives every training evaluation from the resulting
 * bandwidth-versus-size model. This class is that model, calibrated
 * to the published curve shapes:
 *
 *  - CCI (host load/store): read bandwidth flat across access sizes;
 *    write a few times faster than read but also protocol-limited.
 *  - GPU Indirect (bounce through host memory): read bounded by the
 *    CCI path ("the difference is not visible in Fig. 13a").
 *  - GPU Direct (peer-to-peer DMA): 9-17x read and 1.25-4x write
 *    speedup over CCI, saturating at a 2 MB access size (Fig. 14).
 */

#ifndef COARSE_CCI_PROTOTYPE_MODEL_HH
#define COARSE_CCI_PROTOTYPE_MODEL_HH

#include <cstdint>

#include "fabric/bandwidth.hh"

namespace coarse::cci {

/** How an agent reaches CCI memory (paper Fig. 3 / Fig. 13). */
enum class AccessPath
{
    Cci,         //!< Host CPU load/store over the CCI protocol.
    GpuIndirect, //!< GPU <-> host memory <-> CCI memory.
    GpuDirect,   //!< GPU peer-to-peer DMA straight to CCI memory.
};

/** Transfer direction relative to the CCI memory device. */
enum class AccessDirection
{
    Read, //!< Data flows out of CCI memory.
    Write //!< Data flows into CCI memory.
};

const char *accessPathName(AccessPath path);
const char *accessDirectionName(AccessDirection dir);

/** Calibration knobs; the defaults reproduce the paper's shapes. */
struct PrototypeParams
{
    /** Flat CCI load/store read bandwidth. */
    fabric::Bandwidth cciRead = fabric::gbps(0.9);
    /** Flat CCI load/store write bandwidth. */
    fabric::Bandwidth cciWrite = fabric::gbps(4.0);
    /** GPU Direct read speedup over CCI at small / saturated sizes. */
    double directReadSpeedupMin = 9.0;
    double directReadSpeedupMax = 17.0;
    /** GPU Direct write speedup over CCI at small / saturated sizes. */
    double directWriteSpeedupMin = 1.25;
    double directWriteSpeedupMax = 4.0;
    /** DMA saturates at this access size (Fig. 14). */
    std::uint64_t dmaSaturationBytes = 2 * 1024 * 1024;
    /** Smallest profiled access size. */
    std::uint64_t minAccessBytes = 4 * 1024;
    /** Indirect path pays a host bounce: fraction of the CCI rate. */
    double indirectWriteFraction = 0.9;
};

/**
 * Bandwidth-versus-size model for every (path, direction) pair.
 */
class PrototypeModel
{
  public:
    explicit PrototypeModel(PrototypeParams params = {});

    /** Effective bandwidth for one access. */
    fabric::Bandwidth bandwidth(AccessPath path, AccessDirection dir,
                                std::uint64_t accessBytes) const;

    /** Full curve for one (path, direction). */
    const fabric::BandwidthCurve &curve(AccessPath path,
                                        AccessDirection dir) const;

    /** Raw DMA engine curve (Fig. 14), direction-independent. */
    const fabric::BandwidthCurve &dmaCurve() const { return dma_; }

    const PrototypeParams &params() const { return params_; }

  private:
    PrototypeParams params_;
    fabric::BandwidthCurve cciRead_;
    fabric::BandwidthCurve cciWrite_;
    fabric::BandwidthCurve indirectRead_;
    fabric::BandwidthCurve indirectWrite_;
    fabric::BandwidthCurve directRead_;
    fabric::BandwidthCurve directWrite_;
    fabric::BandwidthCurve dma_;
};

} // namespace coarse::cci

#endif // COARSE_CCI_PROTOTYPE_MODEL_HH
