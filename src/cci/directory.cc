#include "directory.hh"

#include <memory>

#include "sim/logging.hh"

namespace coarse::cci {

Directory::Directory(fabric::Topology &topo, const AddressSpace &space,
                     CoherenceParams params)
    : topo_(topo), space_(space), params_(params)
{
    if (params_.granuleBytes == 0)
        sim::fatal("Directory: granule size must be positive");
}

std::vector<std::uint64_t>
Directory::granulesOf(RegionId region, std::uint64_t offset,
                      std::uint64_t bytes) const
{
    const Region &r = space_.region(region);
    if (offset + bytes > r.bytes) {
        sim::fatal("Directory: access [", offset, ", ", offset + bytes,
                   ") beyond region '", r.name, "' of ", r.bytes,
                   " bytes");
    }
    const std::uint64_t first = offset / params_.granuleBytes;
    const std::uint64_t last =
        bytes == 0 ? first : (offset + bytes - 1) / params_.granuleBytes;
    std::vector<std::uint64_t> out;
    out.reserve(last - first + 1);
    for (std::uint64_t g = first; g <= last; ++g)
        out.push_back(g);
    return out;
}

void
Directory::control(fabric::NodeId from, fabric::NodeId to,
                   std::function<void()> next)
{
    controlMsgs_.inc();
    controlBytes_.inc(params_.controlBytes);
    if (from == to) {
        topo_.sim().events().postIn(0, std::move(next));
        return;
    }
    fabric::Message msg;
    msg.src = from;
    msg.dst = to;
    msg.bytes = params_.controlBytes;
    msg.onDelivered = std::move(next);
    topo_.send(std::move(msg), fabric::kCciPath);
}

void
Directory::acquireRead(fabric::NodeId requester, RegionId region,
                       std::uint64_t offset, std::uint64_t bytes,
                       std::function<void()> done)
{
    const fabric::NodeId home = space_.region(region).home;
    const auto granules = granulesOf(region, offset, bytes);

    // Collect remote owners that must be downgraded.
    std::vector<fabric::NodeId> downgrades;
    for (std::uint64_t g : granules) {
        GranuleState &state = granules_[GranuleKey{region, g}];
        if (state.owner != fabric::kInvalidNode
            && state.owner != requester) {
            downgrades.push_back(state.owner);
            state.sharers.insert(state.owner);
            state.owner = fabric::kInvalidNode;
        }
        state.sharers.insert(requester);
    }

    auto pending = std::make_shared<std::size_t>(downgrades.size());
    auto doneShared =
        std::make_shared<std::function<void()>>(std::move(done));
    auto finish = [this, requester, home, doneShared, pending] {
        if (*pending > 0)
            return;
        // Grant: home tells the requester it may proceed.
        control(home, requester, std::move(*doneShared));
    };

    // Request travels requester -> home first.
    control(requester, home, [this, home, downgrades, pending, finish] {
        if (downgrades.empty()) {
            finish();
            return;
        }
        for (fabric::NodeId target : downgrades) {
            invalidations_.inc();
            control(home, target, [this, target, home, pending, finish] {
                // Ack flows back to the home.
                control(target, home, [pending, finish] {
                    --*pending;
                    finish();
                });
            });
        }
    });
}

void
Directory::acquireWrite(fabric::NodeId requester, RegionId region,
                        std::uint64_t offset, std::uint64_t bytes,
                        std::function<void()> done)
{
    const fabric::NodeId home = space_.region(region).home;
    const auto granules = granulesOf(region, offset, bytes);

    std::set<fabric::NodeId> targets;
    for (std::uint64_t g : granules) {
        GranuleState &state = granules_[GranuleKey{region, g}];
        for (fabric::NodeId sharer : state.sharers) {
            if (sharer != requester)
                targets.insert(sharer);
        }
        if (state.owner != fabric::kInvalidNode
            && state.owner != requester)
            targets.insert(state.owner);
        state.sharers.clear();
        state.owner = requester;
    }

    auto pending = std::make_shared<std::size_t>(targets.size());
    auto doneShared =
        std::make_shared<std::function<void()>>(std::move(done));
    auto finish = [this, requester, home, doneShared, pending] {
        if (*pending > 0)
            return;
        control(home, requester, std::move(*doneShared));
    };

    control(requester, home, [this, home, targets, pending, finish] {
        if (targets.empty()) {
            finish();
            return;
        }
        for (fabric::NodeId target : targets) {
            invalidations_.inc();
            control(home, target, [this, target, home, pending, finish] {
                control(target, home, [pending, finish] {
                    --*pending;
                    finish();
                });
            });
        }
    });
}

void
Directory::evict(fabric::NodeId node, RegionId region)
{
    const Region &r = space_.region(region);
    const std::uint64_t count =
        (r.bytes + params_.granuleBytes - 1) / params_.granuleBytes;
    for (std::uint64_t g = 0; g < count; ++g) {
        auto it = granules_.find(GranuleKey{region, g});
        if (it == granules_.end())
            continue;
        it->second.sharers.erase(node);
        if (it->second.owner == node)
            it->second.owner = fabric::kInvalidNode;
    }
}

void
Directory::evictGranule(fabric::NodeId node, RegionId region,
                        std::uint64_t granuleIndex)
{
    auto it = granules_.find(GranuleKey{region, granuleIndex});
    if (it == granules_.end())
        return;
    it->second.sharers.erase(node);
    if (it->second.owner == node)
        it->second.owner = fabric::kInvalidNode;
}

bool
Directory::isSharer(fabric::NodeId node, RegionId region,
                    std::uint64_t offset) const
{
    const std::uint64_t g = offset / params_.granuleBytes;
    auto it = granules_.find(GranuleKey{region, g});
    if (it == granules_.end())
        return false;
    return it->second.owner == node
        || it->second.sharers.find(node) != it->second.sharers.end();
}

std::size_t
Directory::sharerCount(RegionId region, std::uint64_t offset) const
{
    const std::uint64_t g = offset / params_.granuleBytes;
    auto it = granules_.find(GranuleKey{region, g});
    if (it == granules_.end())
        return 0;
    std::size_t n = it->second.sharers.size();
    if (it->second.owner != fabric::kInvalidNode
        && it->second.sharers.find(it->second.owner)
            == it->second.sharers.end())
        ++n;
    return n;
}

void
Directory::attachStats(sim::StatGroup &group) const
{
    group.addCounter("invalidations", invalidations_);
    group.addCounter("control_messages", controlMsgs_);
    group.addCounter("control_bytes", controlBytes_);
}

} // namespace coarse::cci
