/**
 * @file
 * Access port to CCI memory: coherence acquisition plus data movement
 * along one of the three access paths of the prototype model.
 */

#ifndef COARSE_CCI_PORT_HH
#define COARSE_CCI_PORT_HH

#include <cstdint>
#include <functional>
#include <map>

#include "address_space.hh"
#include "directory.hh"
#include "fabric/topology.hh"
#include "prototype_model.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"

namespace coarse::cci {

/** Options for one CCI access. */
struct AccessOptions
{
    AccessPath path = AccessPath::GpuDirect;
    /** Acquire directory permission before moving data. */
    bool coherent = true;
    /** Bounce node for AccessPath::GpuIndirect (usually the host). */
    fabric::NodeId via = fabric::kInvalidNode;
    /** Logical flow size for bandwidth lookup (0 = access size). */
    std::uint64_t flowBytes = 0;
};

/**
 * Issues reads and writes against CCI regions.
 *
 * A read moves data home -> requester; a write moves data
 * requester -> home. The GPU-Direct path runs at the serial-bus
 * curve; the CCI load/store path is capped at the prototype's
 * protocol-limited rate; the indirect path adds a bounce through
 * @c via with the CCI cap on the memory-device leg.
 */
class CciPort
{
  public:
    CciPort(fabric::Topology &topo, Directory &directory,
            const AddressSpace &space, const PrototypeModel &model);

    /** Read @p bytes of a region into @p requester, then @p done. */
    void read(fabric::NodeId requester, RegionId region,
              std::uint64_t offset, std::uint64_t bytes,
              AccessOptions options, std::function<void()> done);

    /** Write @p bytes from @p requester into a region, then @p done. */
    void write(fabric::NodeId requester, RegionId region,
               std::uint64_t offset, std::uint64_t bytes,
               AccessOptions options, std::function<void()> done);

    const sim::Counter &bytesRead() const { return bytesRead_; }
    const sim::Counter &bytesWritten() const { return bytesWritten_; }
    void attachStats(sim::StatGroup &group) const;

  private:
    void transfer(fabric::NodeId from, fabric::NodeId to,
                  std::uint64_t bytes, AccessDirection dir,
                  const AccessOptions &options,
                  std::function<void()> done);

    /** Wrap @p done to close a "read"/"write" span at completion. */
    std::function<void()> traceAccess(fabric::NodeId requester,
                                      const char *name,
                                      std::uint64_t bytes,
                                      std::function<void()> done);

    fabric::Topology &topo_;
    Directory &directory_;
    const AddressSpace &space_;
    const PrototypeModel &model_;
    sim::Counter bytesRead_;
    sim::Counter bytesWritten_;
    std::map<fabric::NodeId, sim::TraceTrackHandle> traceTracks_;
};

} // namespace coarse::cci

#endif // COARSE_CCI_PORT_HH
