#include "port.hh"

#include "sim/logging.hh"

namespace coarse::cci {

CciPort::CciPort(fabric::Topology &topo, Directory &directory,
                 const AddressSpace &space, const PrototypeModel &model)
    : topo_(topo), directory_(directory), space_(space), model_(model)
{
}

void
CciPort::read(fabric::NodeId requester, RegionId region,
              std::uint64_t offset, std::uint64_t bytes,
              AccessOptions options, std::function<void()> done)
{
    const fabric::NodeId home = space_.region(region).home;
    bytesRead_.inc(bytes);
    done = traceAccess(requester, "read", bytes, std::move(done));
    auto move = [this, requester, home, bytes, options,
                 done = std::move(done)]() mutable {
        transfer(home, requester, bytes, AccessDirection::Read, options,
                 std::move(done));
    };
    if (options.coherent) {
        directory_.acquireRead(requester, region, offset, bytes,
                               std::move(move));
    } else {
        move();
    }
}

void
CciPort::write(fabric::NodeId requester, RegionId region,
               std::uint64_t offset, std::uint64_t bytes,
               AccessOptions options, std::function<void()> done)
{
    const fabric::NodeId home = space_.region(region).home;
    bytesWritten_.inc(bytes);
    done = traceAccess(requester, "write", bytes, std::move(done));
    auto move = [this, requester, home, bytes, options,
                 done = std::move(done)]() mutable {
        transfer(requester, home, bytes, AccessDirection::Write, options,
                 std::move(done));
    };
    if (options.coherent) {
        directory_.acquireWrite(requester, region, offset, bytes,
                                std::move(move));
    } else {
        move();
    }
}

std::function<void()>
CciPort::traceAccess(fabric::NodeId requester, const char *name,
                     std::uint64_t bytes, std::function<void()> done)
{
    if (!sim::traceEnabled(sim::TraceCategory::Cci))
        return done;
    const sim::Tick start = topo_.sim().now();
    return [this, requester, name, bytes, start,
            done = std::move(done)]() mutable {
        sim::traceSpan(
            sim::TraceCategory::Cci, traceTracks_[requester],
            [&] { return "cci/" + topo_.nodeName(requester); }, name,
            start, topo_.sim().now(), bytes);
        if (done)
            done();
    };
}

void
CciPort::attachStats(sim::StatGroup &group) const
{
    group.addCounter("bytes_read", bytesRead_);
    group.addCounter("bytes_written", bytesWritten_);
}

void
CciPort::transfer(fabric::NodeId from, fabric::NodeId to,
                  std::uint64_t bytes, AccessDirection dir,
                  const AccessOptions &options,
                  std::function<void()> done)
{
    const std::uint64_t lookup =
        options.flowBytes == 0 ? bytes : options.flowBytes;

    if (options.path == AccessPath::GpuIndirect) {
        if (options.via == fabric::kInvalidNode)
            sim::fatal("CciPort: indirect access needs a via node");
        // The leg touching the memory device is protocol-limited; the
        // other leg is an ordinary bus DMA.
        const fabric::NodeId memLeg =
            dir == AccessDirection::Read ? from : to;
        const fabric::NodeId first =
            dir == AccessDirection::Read ? from : to;
        (void)first;
        fabric::Message leg1;
        leg1.src = from;
        leg1.dst = options.via;
        leg1.bytes = bytes;
        leg1.flowBytes = lookup;
        if (memLeg == from) {
            leg1.rateCap = model_.bandwidth(AccessPath::Cci, dir, lookup);
        }
        leg1.onDelivered = [this, to, bytes, dir, lookup, memLeg,
                            via = options.via,
                            done = std::move(done)]() mutable {
            fabric::Message leg2;
            leg2.src = via;
            leg2.dst = to;
            leg2.bytes = bytes;
            leg2.flowBytes = lookup;
            if (memLeg == to) {
                leg2.rateCap =
                    model_.bandwidth(AccessPath::Cci, dir, lookup);
            }
            leg2.onDelivered = std::move(done);
            topo_.send(std::move(leg2), fabric::kNoNvLink);
        };
        topo_.send(std::move(leg1), fabric::kNoNvLink);
        return;
    }

    fabric::Message msg;
    msg.src = from;
    msg.dst = to;
    msg.bytes = bytes;
    msg.flowBytes = lookup;
    if (options.path == AccessPath::Cci)
        msg.rateCap = model_.bandwidth(AccessPath::Cci, dir, lookup);
    msg.onDelivered = std::move(done);
    topo_.send(std::move(msg), fabric::kNoNvLink);
}

} // namespace coarse::cci
