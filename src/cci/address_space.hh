/**
 * @file
 * The CCI-unified memory address space.
 *
 * Memory devices map their on-device DRAM into a single shared
 * address space (paper §II-C); regions are the allocation unit and
 * each region has a home device that hosts its directory state.
 */

#ifndef COARSE_CCI_ADDRESS_SPACE_HH
#define COARSE_CCI_ADDRESS_SPACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fabric/message.hh"

namespace coarse::cci {

/** Identifier of an allocated region. */
using RegionId = std::uint32_t;

/** A contiguous allocation in the unified address space. */
struct Region
{
    RegionId id = 0;
    fabric::NodeId home = fabric::kInvalidNode;
    std::uint64_t base = 0;
    std::uint64_t bytes = 0;
    std::string name;
};

/**
 * Tracks device capacities and region allocations.
 */
class AddressSpace
{
  public:
    AddressSpace() = default;

    /** Declare @p device as a CCI memory home with @p bytes capacity. */
    void addDevice(fabric::NodeId device, std::uint64_t bytes);

    /** True if @p device was registered with addDevice(). */
    bool hasDevice(fabric::NodeId device) const;

    /** Bytes still unallocated on @p device. */
    std::uint64_t freeBytes(fabric::NodeId device) const;

    /** Total capacity registered for @p device. */
    std::uint64_t capacity(fabric::NodeId device) const;

    /**
     * Allocate a region on @p device. Throws FatalError when the
     * device is unknown or lacks capacity.
     */
    RegionId allocate(fabric::NodeId device, std::uint64_t bytes,
                      std::string name);

    /** Release a region (capacity returns to its home device). */
    void release(RegionId region);

    const Region &region(RegionId id) const;
    std::size_t regionCount() const { return live_; }

  private:
    struct DeviceState
    {
        fabric::NodeId node;
        std::uint64_t capacity;
        std::uint64_t used = 0;
        std::uint64_t nextBase = 0;
    };

    DeviceState *findDevice(fabric::NodeId device);
    const DeviceState *findDevice(fabric::NodeId device) const;

    std::vector<DeviceState> devices_;
    std::vector<Region> regions_;
    std::vector<bool> released_;
    std::size_t live_ = 0;
};

} // namespace coarse::cci

#endif // COARSE_CCI_ADDRESS_SPACE_HH
