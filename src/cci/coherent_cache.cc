#include "coherent_cache.hh"
#include <algorithm>

#include <vector>

#include "sim/logging.hh"

namespace coarse::cci {

CoherentCache::CoherentCache(fabric::NodeId owner, Directory &directory,
                             CciPort &port, CacheParams params)
    : owner_(owner), directory_(directory), port_(port), params_(params)
{
}

void
CoherentCache::insert(const GranuleKey &key, std::uint64_t bytes)
{
    auto it = entries_.find(key);
    if (it != entries_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second.first);
        return;
    }
    lru_.push_front(key);
    entries_[key] = {lru_.begin(), bytes};
    resident_ += bytes;

    while (params_.capacityBytes != 0
           && resident_ > params_.capacityBytes && lru_.size() > 1) {
        const GranuleKey victim = lru_.back();
        lru_.pop_back();
        auto vit = entries_.find(victim);
        resident_ -= vit->second.second;
        entries_.erase(vit);
        directory_.evictGranule(owner_, victim.region, victim.index);
        evictions_.inc();
    }
}

void
CoherentCache::read(RegionId region, std::uint64_t offset,
                    std::uint64_t bytes, AccessOptions options,
                    std::function<void()> done)
{
    const std::uint64_t granule = directory_.granuleBytes();
    const std::uint64_t first = offset / granule;
    const std::uint64_t last =
        bytes == 0 ? first : (offset + bytes - 1) / granule;

    // Classify granules. A granule is a hit only if both the
    // directory still lists us as a sharer (no remote writer
    // invalidated it) and the data is locally resident.
    std::uint64_t missBytes = 0;
    std::uint64_t missFirst = 0;
    bool haveMiss = false;
    for (std::uint64_t g = first; g <= last; ++g) {
        const GranuleKey key{region, g};
        const bool residentHere =
            entries_.find(key) != entries_.end();
        const bool valid =
            directory_.isSharer(owner_, region, g * granule);
        if (residentHere && valid) {
            hits_.inc();
            insert(key, granule); // LRU touch
        } else {
            misses_.inc();
            if (!haveMiss) {
                missFirst = g;
                haveMiss = true;
            }
            missBytes += granule;
            insert(key, granule);
        }
    }

    if (!haveMiss) {
        // Pure hit: local access, no fabric traffic.
        directory_.acquireRead(owner_, region, offset, bytes,
                               std::move(done));
        return;
    }

    bytesFetched_.inc(missBytes);
    // One batched coherent fetch covering the missing granules,
    // clamped to the requested range so we never run past the
    // region's end. The fetch registers the whole range as shared,
    // so afterwards drop directory entries for anything the LRU
    // evicted during this access — the directory must mirror what is
    // actually resident.
    const std::uint64_t fetchOffset = missFirst * granule;
    const std::uint64_t fetchBytes =
        std::min(missBytes, offset + bytes - fetchOffset);
    auto reconcile = [this, region, first, last,
                      done = std::move(done)]() mutable {
        for (std::uint64_t g = first; g <= last; ++g) {
            if (entries_.find(GranuleKey{region, g}) == entries_.end())
                directory_.evictGranule(owner_, region, g);
        }
        done();
    };
    port_.read(owner_, region, fetchOffset, fetchBytes, options,
               std::move(reconcile));
}

void
CoherentCache::flush(RegionId region)
{
    for (auto it = entries_.begin(); it != entries_.end();) {
        if (it->first.region == region) {
            resident_ -= it->second.second;
            lru_.erase(it->second.first);
            it = entries_.erase(it);
        } else {
            ++it;
        }
    }
    directory_.evict(owner_, region);
}

void
CoherentCache::attachStats(sim::StatGroup &group) const
{
    group.addCounter("hits", hits_);
    group.addCounter("misses", misses_);
    group.addCounter("bytes_fetched", bytesFetched_);
    group.addCounter("evictions", evictions_);
}

} // namespace coarse::cci
