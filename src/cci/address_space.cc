#include "address_space.hh"

#include "sim/logging.hh"

namespace coarse::cci {

void
AddressSpace::addDevice(fabric::NodeId device, std::uint64_t bytes)
{
    if (findDevice(device) != nullptr)
        sim::fatal("AddressSpace: device ", device, " already added");
    if (bytes == 0)
        sim::fatal("AddressSpace: device ", device, " has zero capacity");
    // Devices get disjoint base addresses: a simple 1 TiB stride per
    // device keeps regions from different homes visibly apart.
    const std::uint64_t stride = std::uint64_t(1) << 40;
    DeviceState state{device, bytes, 0,
                      stride * (devices_.size() + 1)};
    devices_.push_back(state);
}

bool
AddressSpace::hasDevice(fabric::NodeId device) const
{
    return findDevice(device) != nullptr;
}

std::uint64_t
AddressSpace::freeBytes(fabric::NodeId device) const
{
    const DeviceState *state = findDevice(device);
    if (state == nullptr)
        sim::fatal("AddressSpace: unknown device ", device);
    return state->capacity - state->used;
}

std::uint64_t
AddressSpace::capacity(fabric::NodeId device) const
{
    const DeviceState *state = findDevice(device);
    if (state == nullptr)
        sim::fatal("AddressSpace: unknown device ", device);
    return state->capacity;
}

RegionId
AddressSpace::allocate(fabric::NodeId device, std::uint64_t bytes,
                       std::string name)
{
    DeviceState *state = findDevice(device);
    if (state == nullptr)
        sim::fatal("AddressSpace: unknown device ", device);
    if (bytes == 0)
        sim::fatal("AddressSpace: zero-byte allocation '", name, "'");
    if (state->used + bytes > state->capacity) {
        sim::fatal("AddressSpace: device ", device, " out of memory: ",
                   "need ", bytes, " bytes, have ",
                   state->capacity - state->used, " ('", name, "')");
    }

    const auto id = static_cast<RegionId>(regions_.size());
    regions_.push_back(
        Region{id, device, state->nextBase, bytes, std::move(name)});
    released_.push_back(false);
    state->used += bytes;
    state->nextBase += bytes;
    ++live_;
    return id;
}

void
AddressSpace::release(RegionId region)
{
    if (region >= regions_.size() || released_[region])
        sim::fatal("AddressSpace: bad release of region ", region);
    released_[region] = true;
    DeviceState *state = findDevice(regions_[region].home);
    state->used -= regions_[region].bytes;
    --live_;
}

const Region &
AddressSpace::region(RegionId id) const
{
    if (id >= regions_.size() || released_[id])
        sim::fatal("AddressSpace: unknown region ", id);
    return regions_[id];
}

AddressSpace::DeviceState *
AddressSpace::findDevice(fabric::NodeId device)
{
    for (auto &state : devices_) {
        if (state.node == device)
            return &state;
    }
    return nullptr;
}

const AddressSpace::DeviceState *
AddressSpace::findDevice(fabric::NodeId device) const
{
    return const_cast<AddressSpace *>(this)->findDevice(device);
}

} // namespace coarse::cci
