/**
 * @file
 * Directory-based coherence for CCI regions.
 *
 * Each region's home device tracks, per granule, which nodes hold a
 * cached copy. Writes invalidate remote sharers; the resulting
 * control traffic rides the fabric, so coherence overhead grows with
 * the number of sharers — the scalability limit the paper cites for
 * the naive DENSE design (§III-D).
 */

#ifndef COARSE_CCI_DIRECTORY_HH
#define COARSE_CCI_DIRECTORY_HH

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "address_space.hh"
#include "fabric/topology.hh"
#include "sim/stats.hh"

namespace coarse::cci {

/** Coherence protocol parameters. */
struct CoherenceParams
{
    /** Directory tracking granule. */
    std::uint64_t granuleBytes = 2 * 1024 * 1024;
    /** Size of one control message (request/invalidate/ack). */
    std::uint64_t controlBytes = 128;
};

/**
 * One directory serving every region of one AddressSpace.
 *
 * The protocol is an MSI skeleton: a granule is either uncached,
 * shared by a set of readers, or owned by one writer. Transitions
 * cost control messages between the home and the affected caches.
 */
class Directory
{
  public:
    Directory(fabric::Topology &topo, const AddressSpace &space,
              CoherenceParams params = {});

    /**
     * Acquire read permission on [offset, offset+bytes) of a region
     * for @p requester, then invoke @p done. Any granule owned by a
     * remote writer is downgraded first (one control round trip per
     * granule).
     */
    void acquireRead(fabric::NodeId requester, RegionId region,
                     std::uint64_t offset, std::uint64_t bytes,
                     std::function<void()> done);

    /**
     * Acquire write ownership; every remote sharer of each touched
     * granule receives an invalidation and must ack before @p done.
     */
    void acquireWrite(fabric::NodeId requester, RegionId region,
                      std::uint64_t offset, std::uint64_t bytes,
                      std::function<void()> done);

    /** Drop @p node's cached copies of an entire region. */
    void evict(fabric::NodeId node, RegionId region);

    /** Drop @p node's copy of one granule (capacity eviction). */
    void evictGranule(fabric::NodeId node, RegionId region,
                      std::uint64_t granuleIndex);

    /** Number of sharers currently tracked for a granule. */
    std::size_t sharerCount(RegionId region, std::uint64_t offset) const;

    /** True while @p node holds a valid copy of the granule at
     *  @p offset (as reader or owner). */
    bool isSharer(fabric::NodeId node, RegionId region,
                  std::uint64_t offset) const;

    /** Directory tracking granule size. */
    std::uint64_t granuleBytes() const { return params_.granuleBytes; }

    /** @name Stats */
    ///@{
    const sim::Counter &invalidations() const { return invalidations_; }
    const sim::Counter &controlMessages() const { return controlMsgs_; }
    const sim::Counter &controlBytes() const { return controlBytes_; }
    void attachStats(sim::StatGroup &group) const;
    ///@}

  private:
    struct GranuleKey
    {
        RegionId region;
        std::uint64_t index;

        bool
        operator<(const GranuleKey &o) const
        {
            if (region != o.region)
                return region < o.region;
            return index < o.index;
        }
    };

    struct GranuleState
    {
        std::set<fabric::NodeId> sharers;
        fabric::NodeId owner = fabric::kInvalidNode;
    };

    /** Granule indices covering [offset, offset+bytes). */
    std::vector<std::uint64_t> granulesOf(RegionId region,
                                          std::uint64_t offset,
                                          std::uint64_t bytes) const;

    /** Send one control message and run @p next on delivery. */
    void control(fabric::NodeId from, fabric::NodeId to,
                 std::function<void()> next);

    fabric::Topology &topo_;
    const AddressSpace &space_;
    CoherenceParams params_;
    std::map<GranuleKey, GranuleState> granules_;

    sim::Counter invalidations_;
    sim::Counter controlMsgs_;
    sim::Counter controlBytes_;
};

} // namespace coarse::cci

#endif // COARSE_CCI_DIRECTORY_HH
