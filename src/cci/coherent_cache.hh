/**
 * @file
 * A coherent parameter cache (paper Fig. 5).
 *
 * In the DENSE baseline every GPU keeps a CCI-backed cache of the
 * global parameters: reads hit locally while the directory still
 * lists the GPU as a sharer, and refetch granules that a writer
 * invalidated. The directory is the single source of coherence
 * truth; the cache asks it for residency and registers itself by
 * performing coherent reads.
 */

#ifndef COARSE_CCI_COHERENT_CACHE_HH
#define COARSE_CCI_COHERENT_CACHE_HH

#include <cstdint>
#include <functional>
#include <list>
#include <map>

#include "directory.hh"
#include "port.hh"
#include "sim/stats.hh"

namespace coarse::cci {

/** Static cache parameters. */
struct CacheParams
{
    /** Capacity; 0 = unbounded. */
    std::uint64_t capacityBytes = 0;
};

/**
 * Per-node coherent cache over CCI regions.
 */
class CoherentCache
{
  public:
    CoherentCache(fabric::NodeId owner, Directory &directory,
                  CciPort &port, CacheParams params = {});

    fabric::NodeId owner() const { return owner_; }

    /**
     * Read [offset, offset+bytes) of @p region through the cache:
     * granules the directory still shows this node sharing are hits;
     * the rest are fetched coherently in one batched transfer, then
     * @p done fires.
     */
    void read(RegionId region, std::uint64_t offset,
              std::uint64_t bytes, AccessOptions options,
              std::function<void()> done);

    /** Drop everything (also informs the directory). */
    void flush(RegionId region);

    /** Bytes currently resident (by granule accounting). */
    std::uint64_t residentBytes() const { return resident_; }

    /** @name Stats */
    ///@{
    const sim::Counter &hits() const { return hits_; }
    const sim::Counter &misses() const { return misses_; }
    const sim::Counter &bytesFetched() const { return bytesFetched_; }
    const sim::Counter &evictions() const { return evictions_; }
    void attachStats(sim::StatGroup &group) const;
    ///@}

  private:
    struct GranuleKey
    {
        RegionId region;
        std::uint64_t index;

        bool
        operator<(const GranuleKey &o) const
        {
            if (region != o.region)
                return region < o.region;
            return index < o.index;
        }
    };

    /** Insert a granule and evict LRU past capacity. */
    void insert(const GranuleKey &key, std::uint64_t bytes);

    fabric::NodeId owner_;
    Directory &directory_;
    CciPort &port_;
    CacheParams params_;

    /** LRU list, most recent at the front; map points into it. */
    std::list<GranuleKey> lru_;
    std::map<GranuleKey,
             std::pair<std::list<GranuleKey>::iterator, std::uint64_t>>
        entries_;
    std::uint64_t resident_ = 0;

    sim::Counter hits_;
    sim::Counter misses_;
    sim::Counter bytesFetched_;
    sim::Counter evictions_;
};

} // namespace coarse::cci

#endif // COARSE_CCI_COHERENT_CACHE_HH
