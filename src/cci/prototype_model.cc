#include "prototype_model.hh"

#include "sim/logging.hh"

namespace coarse::cci {

const char *
accessPathName(AccessPath path)
{
    switch (path) {
      case AccessPath::Cci:
        return "CCI";
      case AccessPath::GpuIndirect:
        return "GPU Indirect";
      case AccessPath::GpuDirect:
        return "GPU Direct";
    }
    return "?";
}

const char *
accessDirectionName(AccessDirection dir)
{
    return dir == AccessDirection::Read ? "read" : "write";
}

namespace {

fabric::BandwidthCurve
speedupRamp(fabric::Bandwidth base, double minSpeedup, double maxSpeedup,
            std::uint64_t rampStart, std::uint64_t saturation)
{
    return fabric::BandwidthCurve::ramp(base * maxSpeedup, rampStart,
                                        saturation,
                                        minSpeedup / maxSpeedup);
}

} // namespace

PrototypeModel::PrototypeModel(PrototypeParams params)
    : params_(params),
      cciRead_(fabric::BandwidthCurve::flat(params.cciRead)),
      cciWrite_(fabric::BandwidthCurve::flat(params.cciWrite)),
      // Indirect read is experimentally indistinguishable from CCI
      // (Fig. 13a): the host bounce is bounded by the CCI leg.
      indirectRead_(fabric::BandwidthCurve::flat(params.cciRead)),
      indirectWrite_(fabric::BandwidthCurve::flat(
          params.cciWrite * params.indirectWriteFraction)),
      directRead_(speedupRamp(params.cciRead, params.directReadSpeedupMin,
                              params.directReadSpeedupMax,
                              params.minAccessBytes,
                              params.dmaSaturationBytes)),
      directWrite_(speedupRamp(params.cciWrite,
                               params.directWriteSpeedupMin,
                               params.directWriteSpeedupMax,
                               params.minAccessBytes,
                               params.dmaSaturationBytes)),
      dma_(fabric::BandwidthCurve::ramp(
          params.cciRead * params.directReadSpeedupMax,
          params.minAccessBytes, params.dmaSaturationBytes, 0.12))
{
    if (params.directReadSpeedupMin > params.directReadSpeedupMax
        || params.directWriteSpeedupMin > params.directWriteSpeedupMax)
        sim::fatal("PrototypeModel: min speedup exceeds max speedup");
}

fabric::Bandwidth
PrototypeModel::bandwidth(AccessPath path, AccessDirection dir,
                          std::uint64_t accessBytes) const
{
    return curve(path, dir).at(accessBytes);
}

const fabric::BandwidthCurve &
PrototypeModel::curve(AccessPath path, AccessDirection dir) const
{
    switch (path) {
      case AccessPath::Cci:
        return dir == AccessDirection::Read ? cciRead_ : cciWrite_;
      case AccessPath::GpuIndirect:
        return dir == AccessDirection::Read ? indirectRead_
                                            : indirectWrite_;
      case AccessPath::GpuDirect:
        return dir == AccessDirection::Read ? directRead_ : directWrite_;
    }
    sim::panic("PrototypeModel: bad access path");
}

} // namespace coarse::cci
