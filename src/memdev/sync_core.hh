/**
 * @file
 * Near-memory sync cores (paper §IV-A, Fig. 11a).
 *
 * A sync core is a specialized reduction engine on the memory device:
 * three buffers (RecvBuf, LocalBuf, SendBuf) plus an ALU array. It
 * processes tensors chunk by chunk: load a chunk from DRAM into
 * LocalBuf, run the ring iterations combining RecvBuf entries with
 * LocalBuf into SendBuf, and write results back to DRAM.
 */

#ifndef COARSE_MEMDEV_SYNC_CORE_HH
#define COARSE_MEMDEV_SYNC_CORE_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sim/trace.hh"

namespace coarse::memdev {

/** Static sync-core parameters. */
struct SyncCoreParams
{
    /** Elements each of RecvBuf / LocalBuf / SendBuf holds. */
    std::size_t bufferElements = 256 * 1024;
    /** ALU lanes operating in parallel. */
    std::size_t aluLanes = 64;
    /** Element operations per lane per second. */
    double opsPerLanePerSec = 250e6;
    /** On-device DRAM bandwidth available to this core. */
    double dramBytesPerSec = 8e9;
};

/**
 * Functional + timed model of one sync core.
 */
class SyncCore
{
  public:
    explicit SyncCore(SyncCoreParams params = {});

    const SyncCoreParams &params() const { return params_; }

    /** Reduction throughput in bytes/second (ALU array aggregate). */
    double reduceBytesPerSec() const;

    /** Seconds to move @p bytes between DRAM and a core buffer. */
    double dramSeconds(std::uint64_t bytes) const;

    /** Load a chunk from (modelled) DRAM into LocalBuf. */
    void loadLocal(std::span<const float> chunk);

    /** Deposit data into RecvBuf (a remote core's CCI write lands here). */
    void receive(std::span<const float> data);

    /**
     * Combine RecvBuf with LocalBuf element-wise into SendBuf
     * (the paper's ALU step). Returns a view of SendBuf.
     */
    std::span<const float> combine();

    /** Copy SendBuf entries back over LocalBuf (end-of-round commit). */
    void commitToLocal();

    /** Current LocalBuf contents. */
    std::span<const float> local() const { return localBuf_; }

    /** Current SendBuf contents. */
    std::span<const float> sendBuf() const { return sendBuf_; }

    /** @name Stats */
    ///@{
    const sim::Counter &elementsReduced() const { return reduced_; }
    const sim::Counter &bytesFromDram() const { return dramBytes_; }
    ///@}

    /** Label this core's trace track (e.g. "mem0.core2"). */
    void setTraceName(std::string name) { traceName_ = std::move(name); }

  private:
    /** Sample all three buffer occupancies onto the trace. */
    void traceOccupancy();

    SyncCoreParams params_;
    std::vector<float> recvBuf_;
    std::vector<float> localBuf_;
    std::vector<float> sendBuf_;
    sim::Counter reduced_;
    sim::Counter dramBytes_;
    std::string traceName_ = "core";
    sim::TraceTrackHandle traceHandle_;
};

} // namespace coarse::memdev

#endif // COARSE_MEMDEV_SYNC_CORE_HH
