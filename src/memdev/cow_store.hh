/**
 * @file
 * Copy-on-write versioned parameter store with epoch snapshots.
 *
 * Implements the paper's fault-tolerance design (§IV-A): each write
 * that actually changes a parameter creates a new version; unchanged
 * writes are deduplicated; a snapshot freezes the current version of
 * every parameter as a checkpoint at near-zero cost because versions
 * are immutable and shared.
 */

#ifndef COARSE_MEMDEV_COW_STORE_HH
#define COARSE_MEMDEV_COW_STORE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/stats.hh"

namespace coarse::memdev {

/** Key identifying one stored tensor. */
using TensorKey = std::uint64_t;

/** Snapshot (checkpoint) identifier. */
using SnapshotId = std::uint64_t;

/** An immutable tensor version. */
using TensorVersion = std::shared_ptr<const std::vector<float>>;

/**
 * Versioned key-value store for parameters.
 */
class CowStore
{
  public:
    CowStore() = default;

    /**
     * Store @p data under @p key. If the current version is
     * byte-identical the write is absorbed (no copy, no new version);
     * otherwise a new immutable version is created.
     * @return true when a new version was created.
     */
    bool put(TensorKey key, std::vector<float> data);

    bool contains(TensorKey key) const;

    /** Current version of @p key; throws FatalError if absent. */
    TensorVersion get(TensorKey key) const;

    /** Number of live (current) tensors. */
    std::size_t size() const { return current_.size(); }

    /** Total bytes across current tensor versions. */
    std::uint64_t liveBytes() const;

    /**
     * Freeze the current version of every tensor as a checkpoint.
     * O(#tensors) pointer copies — no data is duplicated.
     */
    SnapshotId snapshot();

    /** Tensors captured by a checkpoint. */
    const std::map<TensorKey, TensorVersion> &
    checkpoint(SnapshotId id) const;

    /** Restore all tensors to the versions in checkpoint @p id. */
    void restore(SnapshotId id);

    /**
     * Restore only @p key to its version in checkpoint @p id, leaving
     * every other tensor at its current version (shard-scoped
     * rollback). A key born after the snapshot is dropped, matching
     * restore()'s semantics for the full store.
     * @return bytes of the version now current (0 when dropped).
     */
    std::uint64_t restoreTensor(SnapshotId id, TensorKey key);

    /** Drop a checkpoint (its versions free once unreferenced). */
    void dropCheckpoint(SnapshotId id);

    std::size_t checkpointCount() const { return checkpoints_.size(); }

    /** @name Stats */
    ///@{
    const sim::Counter &versionsCreated() const { return versions_; }
    const sim::Counter &bytesCopied() const { return bytesCopied_; }
    const sim::Counter &writesAbsorbed() const { return absorbed_; }
    void attachStats(sim::StatGroup &group) const;
    ///@}

  private:
    std::map<TensorKey, TensorVersion> current_;
    std::map<SnapshotId, std::map<TensorKey, TensorVersion>> checkpoints_;
    SnapshotId nextSnapshot_ = 1;
    sim::Counter versions_;
    sim::Counter bytesCopied_;
    sim::Counter absorbed_;
};

} // namespace coarse::memdev

#endif // COARSE_MEMDEV_COW_STORE_HH
