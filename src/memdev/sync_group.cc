#include "sync_group.hh"

#include <algorithm>

#include "collective/ring_builder.hh"
#include "sim/logging.hh"

namespace coarse::memdev {

namespace {

std::vector<fabric::NodeId>
nodesOf(const std::vector<MemoryDevice *> &devices)
{
    std::vector<fabric::NodeId> nodes;
    nodes.reserve(devices.size());
    for (const MemoryDevice *dev : devices) {
        if (dev == nullptr)
            sim::fatal("SyncGroupScheduler: null device");
        nodes.push_back(dev->node());
    }
    return nodes;
}

std::vector<MemoryDevice *>
orderDevices(fabric::Topology &topo, std::vector<MemoryDevice *> devices,
             const SyncScheduleOptions &options)
{
    if (!options.optimizeRingOrder || devices.size() < 3)
        return devices;
    coll::RingBuildOptions build;
    build.mask = options.mask;
    const auto ring = coll::buildRing(topo, nodesOf(devices), build);
    std::vector<MemoryDevice *> ordered;
    ordered.reserve(devices.size());
    for (fabric::NodeId node : ring) {
        for (MemoryDevice *dev : devices) {
            if (dev->node() == node)
                ordered.push_back(dev);
        }
    }
    return ordered;
}

} // namespace

SyncGroupScheduler::SyncGroupScheduler(fabric::Topology &topo,
                                       std::vector<MemoryDevice *> devices,
                                       SyncScheduleOptions options)
    : topo_(topo), devices_(orderDevices(topo, std::move(devices), options)),
      options_(options), comm_(topo, nodesOf(devices_)),
      traceTracks_(devices_.size())
{
    if (devices_.empty())
        sim::fatal("SyncGroupScheduler: need at least one device");
    std::size_t minCores = devices_.front()->syncCoreCount();
    for (const MemoryDevice *dev : devices_)
        minCores = std::min(minCores, dev->syncCoreCount());
    if (options_.groups == 0)
        sim::fatal("SyncGroupScheduler: need at least one group");
    if (options_.groups > minCores) {
        sim::fatal("SyncGroupScheduler: ", options_.groups,
                   " groups need ", options_.groups,
                   " sync cores per device, but a device has only ",
                   minCores);
    }
    if (options_.detailedCores) {
        for (std::size_t g = 0; g < options_.groups; ++g) {
            RingEngineOptions engineOptions;
            engineOptions.coreIndex = g;
            engineOptions.reversed =
                options_.alternateDirections && (g % 2 == 1);
            engineOptions.mask = options_.mask;
            engines_.push_back(std::make_unique<RingEngine>(
                topo, devices_, engineOptions));
        }
    }
}

RingEngine &
SyncGroupScheduler::ringEngine(std::size_t group)
{
    if (engines_.empty())
        sim::fatal("SyncGroupScheduler: detailed cores not enabled");
    return *engines_.at(group);
}

coll::RingOptions
SyncGroupScheduler::ringOptions() const
{
    coll::RingOptions ring;
    ring.mask = options_.mask;
    ring.rings = options_.groups;
    ring.alternateDirections = options_.alternateDirections;
    // Each ring is served by one sync core per device (or shares the
    // single ARM core when the ablation disables sync cores).
    if (options_.useArmCore) {
        ring.reduceBytesPerSec =
            devices_.front()->armReduceBytesPerSec()
            / static_cast<double>(options_.groups);
    } else {
        ring.reduceBytesPerSec =
            devices_.front()->effectiveCoreBytesPerSec();
    }
    return ring;
}

std::function<void()>
SyncGroupScheduler::traceReduce(std::uint64_t bytes,
                                std::function<void()> done)
{
    if (!sim::traceEnabled(sim::TraceCategory::SyncCore))
        return done;
    const sim::Tick start = topo_.sim().now();
    // Each device holds the full tensor while the ring reduces it;
    // a core stages at most bufferElements of it at a time.
    for (std::size_t i = 0; i < devices_.size(); ++i) {
        const std::uint64_t staged =
            std::min<std::uint64_t>(bytes / sizeof(float),
                                    devices_[i]->syncCore(0).params()
                                        .bufferElements);
        sim::traceCounter(
            sim::TraceCategory::SyncCore, traceTracks_[i],
            [&] {
                return "synccore/" + topo_.nodeName(devices_[i]->node());
            },
            "local", start, staged);
    }
    return [this, bytes, start, done = std::move(done)]() mutable {
        const sim::Tick end = topo_.sim().now();
        for (std::size_t i = 0; i < devices_.size(); ++i) {
            auto name = [&] {
                return "synccore/" + topo_.nodeName(devices_[i]->node());
            };
            sim::traceSpan(sim::TraceCategory::SyncCore,
                           traceTracks_[i], name, "reduce", start, end,
                           bytes);
            sim::traceCounter(sim::TraceCategory::SyncCore,
                              traceTracks_[i], name, "local", end, 0);
        }
        if (done)
            done();
    };
}

void
SyncGroupScheduler::allReduce(std::vector<std::span<float>> buffers,
                              std::function<void()> done)
{
    if (buffers.size() != devices_.size())
        sim::fatal("SyncGroupScheduler: got ", buffers.size(),
                   " buffers for ", devices_.size(), " devices");
    done = traceReduce(buffers.front().size() * sizeof(float),
                       std::move(done));
    if (!options_.detailedCores) {
        comm_.allReduce(std::move(buffers), ringOptions(),
                        std::move(done));
        return;
    }

    // Detailed mode: slice the data across the counter-rotating
    // groups and let each group's RingEngine chew through its slice.
    const std::size_t n = buffers.front().size();
    const std::size_t groups = std::max<std::size_t>(
        1, std::min<std::size_t>(engines_.size(), n ? n : 1));
    auto remaining = std::make_shared<std::size_t>(groups);
    auto doneShared =
        std::make_shared<std::function<void()>>(std::move(done));
    std::size_t offset = 0;
    for (std::size_t g = 0; g < groups; ++g) {
        const std::size_t len = n / groups + (g < n % groups ? 1 : 0);
        std::vector<std::span<float>> slice;
        slice.reserve(buffers.size());
        for (auto &b : buffers)
            slice.push_back(b.subspan(offset, len));
        offset += len;
        engines_[g]->allReduce(std::move(slice),
                               [remaining, doneShared] {
                                   if (--*remaining == 0)
                                       (*doneShared)();
                               });
    }
}

void
SyncGroupScheduler::allReduceTimed(std::uint64_t bytes,
                                   std::function<void()> done)
{
    comm_.allReduceTimed(bytes, ringOptions(),
                         traceReduce(bytes, std::move(done)));
}

double
SyncGroupScheduler::estimateSeconds(std::uint64_t bytes)
{
    return comm_.estimateAllReduceSeconds(bytes, ringOptions());
}

} // namespace coarse::memdev
