#include "memory_device.hh"

#include "sim/logging.hh"

namespace coarse::memdev {

MemoryDevice::MemoryDevice(fabric::NodeId node, MemoryDeviceParams params)
    : node_(node), params_(params)
{
    if (params_.syncCoreCount == 0)
        sim::fatal("MemoryDevice: need at least one sync core");
    if (params_.dramBytes == 0 || params_.dramBytesPerSec <= 0)
        sim::fatal("MemoryDevice: invalid DRAM configuration");
    auto coreParams = params_.syncCore;
    // Each core sees its fair share of DRAM bandwidth.
    coreParams.dramBytesPerSec = params_.dramBytesPerSec
        / static_cast<double>(params_.syncCoreCount);
    for (std::size_t i = 0; i < params_.syncCoreCount; ++i) {
        cores_.push_back(std::make_unique<SyncCore>(coreParams));
        cores_.back()->setTraceName("n" + std::to_string(node_)
                                    + ".core" + std::to_string(i));
    }
}

double
MemoryDevice::effectiveCoreBytesPerSec() const
{
    const SyncCore &core = *cores_.front();
    const double alu = core.reduceBytesPerSec();
    const double dram = core.params().dramBytesPerSec;
    // One reduced byte costs one ALU pass plus a DRAM load and a
    // DRAM writeback; the stages pipeline, so the bottleneck governs.
    return std::min(alu, dram / 2.0);
}

double
MemoryDevice::aggregateReduceBytesPerSec() const
{
    return effectiveCoreBytesPerSec()
        * static_cast<double>(cores_.size());
}

} // namespace coarse::memdev
