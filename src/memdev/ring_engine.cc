#include "ring_engine.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace coarse::memdev {

namespace {

/** Element range of entry @p s when @p n elements split @p p ways. */
std::pair<std::size_t, std::size_t>
entryRange(std::size_t n, std::size_t p, std::size_t s)
{
    const std::size_t base = n / p;
    const std::size_t extra = n % p;
    const std::size_t begin = s * base + std::min(s, extra);
    const std::size_t len = base + (s < extra ? 1 : 0);
    return {begin, begin + len};
}

} // namespace

/** One allreduce in flight. */
struct RingEngine::Job
{
    std::vector<std::span<float>> buffers;
    std::size_t elements = 0;
    std::size_t chunkElems = 0;
    std::size_t chunkBegin = 0;
    std::size_t chunkLen = 0;
    /**
     * Per-device working copy of the current chunk: the engine-level
     * mirror of each core's LocalBuf/SendBuf contents at entry
     * granularity.
     */
    std::vector<std::vector<float>> work;
    std::size_t devicesDone = 0;
    std::function<void()> done;
};

RingEngine::RingEngine(fabric::Topology &topo,
                       std::vector<MemoryDevice *> devices,
                       RingEngineOptions options)
    : topo_(topo), devices_(std::move(devices)), options_(options)
{
    if (devices_.empty())
        sim::fatal("RingEngine: need at least one device");
    for (MemoryDevice *dev : devices_) {
        if (dev == nullptr)
            sim::fatal("RingEngine: null device");
        if (options_.coreIndex >= dev->syncCoreCount())
            sim::fatal("RingEngine: device lacks sync core ",
                       options_.coreIndex);
    }
}

void
RingEngine::allReduce(std::vector<std::span<float>> buffers,
                      std::function<void()> done)
{
    const std::size_t p = devices_.size();
    if (buffers.size() != p)
        sim::fatal("RingEngine: got ", buffers.size(), " buffers for ",
                   p, " devices");
    const std::size_t n = buffers.front().size();
    for (const auto &b : buffers) {
        if (b.size() != n)
            sim::fatal("RingEngine: buffers must have equal length");
    }
    if (p == 1 || n == 0) {
        topo_.sim().events().postIn(0, std::move(done));
        return;
    }

    auto job = std::make_shared<Job>();
    job->buffers = std::move(buffers);
    job->elements = n;
    std::size_t capacity = SIZE_MAX;
    for (MemoryDevice *dev : devices_) {
        capacity = std::min(
            capacity,
            dev->syncCore(options_.coreIndex).params().bufferElements);
    }
    job->chunkElems = std::min(capacity, n);
    job->chunkBegin = 0;
    job->done = std::move(done);
    startChunk(job);
}

void
RingEngine::startChunk(const std::shared_ptr<Job> &job)
{
    const std::size_t p = devices_.size();
    job->chunkLen =
        std::min(job->chunkElems, job->elements - job->chunkBegin);
    job->devicesDone = 0;
    job->work.assign(p, {});

    // Stage the chunk from DRAM into every core's LocalBuf. The
    // cores load in parallel; the slowest staging gates round 0.
    double maxStage = 0.0;
    for (std::size_t i = 0; i < p; ++i) {
        SyncCore &core = devices_[i]->syncCore(options_.coreIndex);
        const auto chunk = job->buffers[i].subspan(job->chunkBegin,
                                                   job->chunkLen);
        core.loadLocal(chunk);
        job->work[i].assign(chunk.begin(), chunk.end());
        maxStage = std::max(maxStage,
                            core.dramSeconds(job->chunkLen
                                             * sizeof(float)));
    }
    ++chunks_;

    topo_.sim().events().postIn(
        sim::fromSeconds(maxStage), [this, job] {
            for (std::size_t i = 0; i < devices_.size(); ++i)
                startRound(job, i * (2 * (devices_.size() - 1) + 1));
        });
}

/**
 * Rounds are encoded per device as round = device * stride + k so a
 * single dispatch entry point can carry both; k runs 0..2p-3.
 */
void
RingEngine::startRound(const std::shared_ptr<Job> &job,
                       std::size_t encoded)
{
    const std::size_t p = devices_.size();
    const std::size_t stride = 2 * (p - 1) + 1;
    const std::size_t i = encoded / stride;
    const std::size_t k = encoded % stride;
    const std::size_t totalRounds = 2 * (p - 1);

    if (k == totalRounds) {
        finishChunk(job);
        return;
    }

    const bool reversed = options_.reversed;
    const std::size_t seg =
        reversed ? (i + k) % p : (i + p - k % p) % p;
    const auto [begin, end] = entryRange(job->chunkLen, p, seg);
    const std::size_t j = reversed ? (i + p - 1) % p : (i + 1) % p;
    const std::uint64_t bytes = (end - begin) * sizeof(float);

    // SendBuf -> successor's RecvBuf over the CCI path.
    auto payload = std::make_shared<std::vector<float>>(
        job->work[i].begin() + begin, job->work[i].begin() + end);
    ++steps_;

    fabric::Message msg;
    msg.src = devices_[i]->node();
    msg.dst = devices_[j]->node();
    msg.bytes = std::max<std::uint64_t>(bytes, 1);
    msg.onDelivered = [this, job, payload, begin, end, j, k, stride,
                       totalRounds, p] {
        SyncCore &core = devices_[j]->syncCore(options_.coreIndex);
        const bool reducePhase = k < p - 1;
        auto &work = job->work[j];
        // RecvBuf <- payload; ALU combines with the LocalBuf entry.
        core.receive(*payload);
        if (reducePhase) {
            for (std::size_t e = begin; e < end; ++e)
                work[e] += (*payload)[e - begin];
        } else {
            for (std::size_t e = begin; e < end; ++e)
                work[e] = (*payload)[e - begin];
        }
        auto proceed = [this, job, j, k, stride] {
            startRound(job, j * stride + (k + 1));
        };
        if (reducePhase) {
            const double sec =
                static_cast<double>((end - begin) * sizeof(float))
                / core.reduceBytesPerSec();
            topo_.sim().events().postIn(sim::fromSeconds(sec),
                                        proceed);
        } else {
            proceed();
        }
    };
    topo_.send(std::move(msg), options_.mask);
}

void
RingEngine::finishChunk(const std::shared_ptr<Job> &job)
{
    if (++job->devicesDone < devices_.size())
        return;

    // All devices hold the synchronized chunk: write it back to DRAM
    // and move on. The writeback of the slowest device gates the
    // next chunk, per the paper's sequential-chunk schedule.
    double maxWriteback = 0.0;
    for (std::size_t i = 0; i < devices_.size(); ++i) {
        SyncCore &core = devices_[i]->syncCore(options_.coreIndex);
        std::copy(job->work[i].begin(), job->work[i].end(),
                  job->buffers[i].begin()
                      + static_cast<std::ptrdiff_t>(job->chunkBegin));
        maxWriteback = std::max(
            maxWriteback,
            core.dramSeconds(job->chunkLen * sizeof(float)));
    }

    topo_.sim().events().postIn(
        sim::fromSeconds(maxWriteback), [this, job] {
            job->chunkBegin += job->chunkLen;
            if (job->chunkBegin < job->elements) {
                startChunk(job);
            } else {
                job->done();
            }
        });
}

} // namespace coarse::memdev
