/**
 * @file
 * A CCI-attached disaggregated memory device.
 *
 * Combines large-capacity on-device DRAM, a weak general-purpose
 * on-device processor (ARM-class), an array of sync cores, and a
 * copy-on-write parameter store (paper §II-C, §IV-A).
 */

#ifndef COARSE_MEMDEV_MEMORY_DEVICE_HH
#define COARSE_MEMDEV_MEMORY_DEVICE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cow_store.hh"
#include "fabric/message.hh"
#include "sync_core.hh"

namespace coarse::memdev {

/** Static memory-device parameters. */
struct MemoryDeviceParams
{
    /** On-device DRAM capacity. */
    std::uint64_t dramBytes = std::uint64_t(64) << 30;
    /** Aggregate on-device DRAM bandwidth. */
    double dramBytesPerSec = 20e9;
    /**
     * Reduction throughput of the general-purpose on-device core
     * (e.g. ARM Cortex-A53): the slow path the paper rejects in
     * favour of sync cores.
     */
    double armReduceBytesPerSec = 1.5e9;
    /** Number of sync cores. */
    std::size_t syncCoreCount = 4;
    /** Per-core configuration. */
    SyncCoreParams syncCore = {};
};

/**
 * One memory device: identity, storage, and compute resources.
 */
class MemoryDevice
{
  public:
    MemoryDevice(fabric::NodeId node, MemoryDeviceParams params = {});

    fabric::NodeId node() const { return node_; }
    const MemoryDeviceParams &params() const { return params_; }

    CowStore &store() { return store_; }
    const CowStore &store() const { return store_; }

    std::size_t syncCoreCount() const { return cores_.size(); }
    SyncCore &syncCore(std::size_t i) { return *cores_.at(i); }

    /**
     * Effective reduction throughput of one sync core, including the
     * DRAM traffic each reduced byte implies (load + writeback).
     */
    double effectiveCoreBytesPerSec() const;

    /** Aggregate reduction throughput across all sync cores. */
    double aggregateReduceBytesPerSec() const;

    /** Throughput when falling back to the ARM core (the ablation). */
    double armReduceBytesPerSec() const
    {
        return params_.armReduceBytesPerSec;
    }

  private:
    fabric::NodeId node_;
    MemoryDeviceParams params_;
    CowStore store_;
    std::vector<std::unique_ptr<SyncCore>> cores_;
};

} // namespace coarse::memdev

#endif // COARSE_MEMDEV_MEMORY_DEVICE_HH
