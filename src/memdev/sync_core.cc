#include "sync_core.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace coarse::memdev {

SyncCore::SyncCore(SyncCoreParams params) : params_(params)
{
    if (params_.bufferElements == 0)
        sim::fatal("SyncCore: zero buffer size");
    if (params_.aluLanes == 0 || params_.opsPerLanePerSec <= 0)
        sim::fatal("SyncCore: invalid ALU configuration");
    recvBuf_.reserve(params_.bufferElements);
    localBuf_.reserve(params_.bufferElements);
    sendBuf_.reserve(params_.bufferElements);
}

double
SyncCore::reduceBytesPerSec() const
{
    return static_cast<double>(params_.aluLanes)
        * params_.opsPerLanePerSec * sizeof(float);
}

double
SyncCore::dramSeconds(std::uint64_t bytes) const
{
    return static_cast<double>(bytes) / params_.dramBytesPerSec;
}

void
SyncCore::traceOccupancy()
{
    if (!sim::traceEnabled(sim::TraceCategory::SyncCore)) [[likely]]
        return;
    const sim::Tick now = sim::traceNow();
    auto name = [this] { return "synccore/" + traceName_; };
    sim::traceCounter(sim::TraceCategory::SyncCore, traceHandle_, name,
                      "recv", now, recvBuf_.size());
    sim::traceCounter(sim::TraceCategory::SyncCore, traceHandle_, name,
                      "local", now, localBuf_.size());
    sim::traceCounter(sim::TraceCategory::SyncCore, traceHandle_, name,
                      "send", now, sendBuf_.size());
}

void
SyncCore::loadLocal(std::span<const float> chunk)
{
    if (chunk.size() > params_.bufferElements)
        sim::fatal("SyncCore: chunk of ", chunk.size(),
                   " elements exceeds LocalBuf capacity ",
                   params_.bufferElements);
    localBuf_.assign(chunk.begin(), chunk.end());
    dramBytes_.inc(chunk.size() * sizeof(float));
    traceOccupancy();
}

void
SyncCore::receive(std::span<const float> data)
{
    if (data.size() > params_.bufferElements)
        sim::fatal("SyncCore: receive of ", data.size(),
                   " elements exceeds RecvBuf capacity ",
                   params_.bufferElements);
    recvBuf_.assign(data.begin(), data.end());
    traceOccupancy();
}

std::span<const float>
SyncCore::combine()
{
    if (recvBuf_.size() != localBuf_.size())
        sim::fatal("SyncCore: RecvBuf (", recvBuf_.size(),
                   ") and LocalBuf (", localBuf_.size(),
                   ") sizes differ");
    sendBuf_.resize(localBuf_.size());
    for (std::size_t i = 0; i < localBuf_.size(); ++i)
        sendBuf_[i] = localBuf_[i] + recvBuf_[i];
    reduced_.inc(localBuf_.size());
    traceOccupancy();
    return sendBuf_;
}

void
SyncCore::commitToLocal()
{
    localBuf_ = sendBuf_;
    dramBytes_.inc(sendBuf_.size() * sizeof(float));
    traceOccupancy();
}

} // namespace coarse::memdev
