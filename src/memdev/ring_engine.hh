/**
 * @file
 * Cycle-approximate sync-core ring engine (paper Fig. 11c).
 *
 * Where SyncGroupScheduler models a group's ring allreduce at flow
 * level, the RingEngine executes the paper's actual state machine:
 * for each chunk of the tensor, every core stages the chunk from
 * DRAM into LocalBuf, then runs 2(p-1) ring iterations — send an
 * entry from SendBuf to the successor's RecvBuf, combine the
 * received entry with the LocalBuf entry on the ALU array, store
 * into SendBuf — and finally writes the synchronized chunk back to
 * DRAM before starting the next chunk.
 *
 * The engine is functional (real float data flows through the core
 * buffers) and produces byte-identical results to the flow-level
 * collective, which the tests assert.
 */

#ifndef COARSE_MEMDEV_RING_ENGINE_HH
#define COARSE_MEMDEV_RING_ENGINE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "fabric/topology.hh"
#include "memory_device.hh"

namespace coarse::memdev {

/** Options for one ring-engine group. */
struct RingEngineOptions
{
    /** Which sync core of each device this group occupies. */
    std::size_t coreIndex = 0;
    /** Rotate the ring backwards (counter-rotating groups). */
    bool reversed = false;
    /** Link kinds the ring may traverse. */
    fabric::LinkMask mask = fabric::kCciPath;
};

/**
 * Executes chunked ring allreduces across one sync core per device.
 */
class RingEngine
{
  public:
    RingEngine(fabric::Topology &topo,
               std::vector<MemoryDevice *> devices,
               RingEngineOptions options = {});

    /**
     * Sum-allreduce @p buffers (one per device, equal length) through
     * the sync cores. Buffers are updated in place.
     */
    void allReduce(std::vector<std::span<float>> buffers,
                   std::function<void()> done);

    /** Chunks processed since construction. */
    std::uint64_t chunksProcessed() const { return chunks_; }

    /** Ring iterations (entry send/combine steps) executed. */
    std::uint64_t ringSteps() const { return steps_; }

  private:
    struct Job;

    void startChunk(const std::shared_ptr<Job> &job);
    void startRound(const std::shared_ptr<Job> &job, std::size_t round);
    void finishChunk(const std::shared_ptr<Job> &job);

    fabric::Topology &topo_;
    std::vector<MemoryDevice *> devices_;
    RingEngineOptions options_;
    std::uint64_t chunks_ = 0;
    std::uint64_t steps_ = 0;
};

} // namespace coarse::memdev

#endif // COARSE_MEMDEV_RING_ENGINE_HH
