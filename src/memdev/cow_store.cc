#include "cow_store.hh"

#include "sim/logging.hh"

namespace coarse::memdev {

bool
CowStore::put(TensorKey key, std::vector<float> data)
{
    auto it = current_.find(key);
    if (it != current_.end() && *it->second == data) {
        absorbed_.inc();
        return false;
    }
    versions_.inc();
    bytesCopied_.inc(data.size() * sizeof(float));
    current_[key] =
        std::make_shared<const std::vector<float>>(std::move(data));
    return true;
}

bool
CowStore::contains(TensorKey key) const
{
    return current_.find(key) != current_.end();
}

TensorVersion
CowStore::get(TensorKey key) const
{
    auto it = current_.find(key);
    if (it == current_.end())
        sim::fatal("CowStore: no tensor with key ", key);
    return it->second;
}

std::uint64_t
CowStore::liveBytes() const
{
    std::uint64_t total = 0;
    for (const auto &[key, version] : current_)
        total += version->size() * sizeof(float);
    return total;
}

SnapshotId
CowStore::snapshot()
{
    const SnapshotId id = nextSnapshot_++;
    checkpoints_[id] = current_;
    return id;
}

const std::map<TensorKey, TensorVersion> &
CowStore::checkpoint(SnapshotId id) const
{
    auto it = checkpoints_.find(id);
    if (it == checkpoints_.end())
        sim::fatal("CowStore: no checkpoint ", id);
    return it->second;
}

void
CowStore::restore(SnapshotId id)
{
    current_ = checkpoint(id);
}

std::uint64_t
CowStore::restoreTensor(SnapshotId id, TensorKey key)
{
    const auto &frozen = checkpoint(id);
    auto it = frozen.find(key);
    if (it == frozen.end()) {
        current_.erase(key);
        return 0;
    }
    current_[key] = it->second;
    return it->second->size() * sizeof(float);
}

void
CowStore::dropCheckpoint(SnapshotId id)
{
    if (checkpoints_.erase(id) == 0)
        sim::fatal("CowStore: no checkpoint ", id);
}

void
CowStore::attachStats(sim::StatGroup &group) const
{
    group.addCounter("versions_created", versions_);
    group.addCounter("bytes_copied", bytesCopied_);
    group.addCounter("writes_absorbed", absorbed_);
}

} // namespace coarse::memdev
