/**
 * @file
 * Group-based collective synchronization across memory devices
 * (paper §IV-A, Fig. 11b/c).
 *
 * Sync cores from each memory device form groups; each group runs a
 * ring over the CCI interconnect, and adjacent groups rotate in
 * opposite directions so every CCI link is driven bidirectionally.
 */

#ifndef COARSE_MEMDEV_SYNC_GROUP_HH
#define COARSE_MEMDEV_SYNC_GROUP_HH

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "collective/communicator.hh"
#include "memory_device.hh"
#include "ring_engine.hh"

namespace coarse::memdev {

/** Scheduling options for group synchronization. */
struct SyncScheduleOptions
{
    /** Number of concurrent sync-core groups (rings). */
    std::size_t groups = 2;
    /** Counter-rotate adjacent groups (disable for the ablation). */
    bool alternateDirections = true;
    /** Run reductions on the ARM core instead of sync cores. */
    bool useArmCore = false;
    /** Link kinds the rings may traverse. */
    fabric::LinkMask mask = fabric::kCciPath;
    /**
     * Reorder the devices with the NCCL-style ring search so logical
     * ring neighbours are physical neighbours.
     */
    bool optimizeRingOrder = false;
    /**
     * Execute the paper's Fig. 11c state machine (RingEngine) with
     * explicit chunk staging and per-entry ring steps, instead of the
     * flow-level collective. Functional allReduce() only.
     */
    bool detailedCores = false;
};

/**
 * Orchestrates parameter synchronization across a fixed set of
 * memory devices.
 */
class SyncGroupScheduler
{
  public:
    /**
     * @param topo The fabric the devices live on.
     * @param devices Participating devices (not owned); their nodes
     *        become the communicator ranks, in order.
     */
    SyncGroupScheduler(fabric::Topology &topo,
                       std::vector<MemoryDevice *> devices,
                       SyncScheduleOptions options = {});

    std::size_t deviceCount() const { return devices_.size(); }
    const SyncScheduleOptions &options() const { return options_; }

    /**
     * Sum-allreduce @p buffers (one per device, equal length) across
     * the devices. Buffers are updated in place; @p done fires when
     * every device holds the reduced data.
     */
    void allReduce(std::vector<std::span<float>> buffers,
                   std::function<void()> done);

    /** Timing-only variant: same traffic, no payload allocation. */
    void allReduceTimed(std::uint64_t bytes, std::function<void()> done);

    /** Planner estimate for synchronizing @p bytes. */
    double estimateSeconds(std::uint64_t bytes);

    coll::Communicator &communicator() { return comm_; }

    /** Detailed engines (present when options.detailedCores). */
    RingEngine &ringEngine(std::size_t group);

  private:
    coll::RingOptions ringOptions() const;

    /**
     * Wrap @p done to trace the collective: a "reduce" span per
     * device plus modelled LocalBuf occupancy (the flow-level path
     * never touches SyncCore buffers, so occupancy is synthesized
     * from the per-device slice size at the span boundaries).
     */
    std::function<void()> traceReduce(std::uint64_t bytes,
                                      std::function<void()> done);

    fabric::Topology &topo_;
    std::vector<MemoryDevice *> devices_;
    SyncScheduleOptions options_;
    coll::Communicator comm_;
    std::vector<std::unique_ptr<RingEngine>> engines_;
    std::vector<sim::TraceTrackHandle> traceTracks_;
};

} // namespace coarse::memdev

#endif // COARSE_MEMDEV_SYNC_GROUP_HH
