/**
 * @file
 * Unit tests for the tracing subsystem: session lifecycle, category
 * masks, the ring buffer's overwrite semantics, epoch-validated track
 * handles, and both exporters. Also covers the StatGroup
 * duplicate-name panic (a silent aliasing bug until this PR).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"

namespace {

using namespace coarse::sim;

TEST(TraceCategories, ParseAllAndLists)
{
    EXPECT_EQ(parseTraceCategories("all"), kAllTraceCategories);
    EXPECT_EQ(parseTraceCategories("link"),
              traceBit(TraceCategory::Link));
    EXPECT_EQ(parseTraceCategories("link,iteration"),
              traceBit(TraceCategory::Link)
                  | traceBit(TraceCategory::Iteration));
    EXPECT_EQ(parseTraceCategories("recovery,proxy,synccore"),
              traceBit(TraceCategory::Recovery)
                  | traceBit(TraceCategory::Proxy)
                  | traceBit(TraceCategory::SyncCore));
}

TEST(TraceCategories, UnknownNameIsFatal)
{
    EXPECT_THROW(parseTraceCategories("links"), FatalError);
    EXPECT_THROW(parseTraceCategories("link,"), FatalError);
    EXPECT_THROW(parseTraceCategories(""), FatalError);
}

TEST(TraceCategories, EveryCategoryHasAParsableName)
{
    for (std::uint32_t c = 0;
         c < static_cast<std::uint32_t>(TraceCategory::kCount); ++c) {
        const auto cat = static_cast<TraceCategory>(c);
        EXPECT_EQ(parseTraceCategories(traceCategoryName(cat)),
                  traceBit(cat));
    }
}

TEST(TraceSession, AttachesAndDetachesGlobally)
{
    EXPECT_EQ(TraceSession::active(), nullptr);
    EXPECT_FALSE(traceEnabled(TraceCategory::Link));
    {
        TraceSession session;
        EXPECT_EQ(TraceSession::active(), &session);
        EXPECT_TRUE(traceEnabled(TraceCategory::Link));
        EXPECT_TRUE(traceEnabled(TraceCategory::Recovery));
    }
    EXPECT_EQ(TraceSession::active(), nullptr);
    EXPECT_FALSE(traceEnabled(TraceCategory::Link));
}

TEST(TraceSession, SecondConcurrentSessionPanics)
{
    TraceSession session;
    EXPECT_THROW(TraceSession second, PanicError);
}

TEST(TraceSession, ZeroCapacityPanics)
{
    TraceSession::Options options;
    options.capacity = 0;
    EXPECT_THROW(TraceSession bad(options), PanicError);
}

TEST(TraceSession, CategoryMaskGatesRecording)
{
    TraceSession::Options options;
    options.categories = traceBit(TraceCategory::Iteration);
    TraceSession session(options);

    EXPECT_TRUE(traceEnabled(TraceCategory::Iteration));
    EXPECT_FALSE(traceEnabled(TraceCategory::Link));

    TraceTrackHandle links;
    TraceTrackHandle iters;
    traceSpan(TraceCategory::Link, links, [] { return "l"; }, "tx", 0,
              10);
    traceSpan(TraceCategory::Iteration, iters, [] { return "i"; },
              "iteration", 0, 10);
    EXPECT_EQ(session.size(), 1u);
    EXPECT_EQ(session.trackCount(), 1u);
    EXPECT_EQ(session.snapshot().front().name,
              std::string("iteration"));
}

TEST(TraceSession, RingOverwritesOldestAndCountsDropped)
{
    TraceSession::Options options;
    options.capacity = 4;
    TraceSession session(options);

    TraceTrackHandle track;
    for (Tick t = 1; t <= 7; ++t) {
        traceInstant(TraceCategory::Link, track, [] { return "t"; },
                     "tick", t, t);
    }
    EXPECT_EQ(session.size(), 4u);
    EXPECT_EQ(session.capacity(), 4u);
    EXPECT_EQ(session.dropped(), 3u);

    const auto events = session.snapshot();
    ASSERT_EQ(events.size(), 4u);
    // The three oldest events (ticks 1..3) were overwritten.
    for (std::size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(events[i].start, Tick(4 + i));
}

TEST(TraceSession, SnapshotIsStablySortedByStartTick)
{
    TraceSession session;
    TraceTrackHandle track;
    auto name = [] { return "t"; };
    traceSpan(TraceCategory::Link, track, name, "late", 50, 60);
    traceSpan(TraceCategory::Link, track, name, "early", 10, 90);
    traceSpan(TraceCategory::Link, track, name, "tie_a", 10, 20, 1);
    traceSpan(TraceCategory::Link, track, name, "tie_b", 10, 20, 2);

    const auto events = session.snapshot();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events[0].name, std::string("early"));
    EXPECT_EQ(events[1].name, std::string("tie_a"));
    EXPECT_EQ(events[2].name, std::string("tie_b"));
    EXPECT_EQ(events[3].name, std::string("late"));
}

TEST(TraceSession, HandlesReregisterAcrossSessions)
{
    TraceTrackHandle track;
    std::uint32_t firstEpoch = 0;
    {
        TraceSession first;
        firstEpoch = first.epoch();
        traceInstant(TraceCategory::Proxy, track, [] { return "p"; },
                     "mark", 1);
        EXPECT_EQ(track.epoch, firstEpoch);
        EXPECT_EQ(first.trackCount(), 1u);
    }
    {
        TraceSession second;
        EXPECT_NE(second.epoch(), firstEpoch);
        // The cached id from the dead session must not be trusted.
        traceInstant(TraceCategory::Proxy, track, [] { return "p2"; },
                     "mark", 2);
        EXPECT_EQ(track.epoch, second.epoch());
        ASSERT_EQ(second.trackCount(), 1u);
        EXPECT_EQ(second.trackName(track.id), "p2");
        EXPECT_EQ(second.trackCategory(track.id),
                  TraceCategory::Proxy);
    }
}

TEST(TraceSession, SameTrackNameSharesOneTrack)
{
    TraceSession session;
    TraceTrackHandle a;
    TraceTrackHandle b;
    traceInstant(TraceCategory::Link, a, [] { return "shared"; }, "x",
                 1);
    traceInstant(TraceCategory::Link, b, [] { return "shared"; }, "y",
                 2);
    EXPECT_EQ(session.trackCount(), 1u);
    EXPECT_EQ(a.id, b.id);
}

TEST(TraceSession, RecordingOutsideDispatchStampsTickZero)
{
    // No event is dispatching in a unit test, so the fallback clock
    // components like SyncCore use must read zero, not garbage.
    EXPECT_EQ(traceNow(), Tick(0));
}

TEST(TraceExport, CanonicalFormIsDeterministic)
{
    auto capture = [] {
        TraceSession session;
        TraceTrackHandle track;
        auto name = [] { return "fab/a->b"; };
        traceSpan(TraceCategory::Link, track, name, "tx", 100, 250, 64,
                  128);
        traceInstant(TraceCategory::Recovery, track, name, "detect",
                     300, 1);
        traceCounter(TraceCategory::Proxy, track, name, "queued", 400,
                     7);
        std::ostringstream os;
        session.writeCanonical(os);
        return os.str();
    };
    const std::string first = capture();
    EXPECT_EQ(first, capture());

    EXPECT_NE(first.find("# coarse canonical trace v1"),
              std::string::npos);
    EXPECT_NE(first.find("# dropped 0"), std::string::npos);
    EXPECT_NE(first.find("track 0 link fab/a->b"), std::string::npos);
    EXPECT_NE(first.find("span 0 tx 100 250 64 128"),
              std::string::npos);
    EXPECT_NE(first.find("instant 0 detect 300 300 1 0"),
              std::string::npos);
    EXPECT_NE(first.find("counter 0 queued 400 400 7 0"),
              std::string::npos);
}

TEST(TraceExport, ChromeJsonIsWellFormedAndNamesTracks)
{
    TraceSession::Options options;
    options.processName = "COARSE";
    TraceSession session(options);
    TraceTrackHandle track;
    auto name = [] { return "gpu/\"w0\""; };
    traceSpan(TraceCategory::Iteration, track, name, "fp", 1000000,
              3000000, 5);
    traceCounter(TraceCategory::SyncCore, track, name, "recv", 2000000,
                 9);

    std::ostringstream os;
    session.writeChromeJson(os);
    const std::string json = os.str();

    // Structurally balanced and loadable: every brace/bracket pairs.
    int braces = 0;
    int brackets = 0;
    bool inString = false;
    for (std::size_t i = 0; i < json.size(); ++i) {
        const char c = json[i];
        if (inString) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                inString = false;
            continue;
        }
        if (c == '"')
            inString = true;
        else if (c == '{')
            ++braces;
        else if (c == '}')
            --braces;
        else if (c == '[')
            ++brackets;
        else if (c == ']')
            --brackets;
        EXPECT_GE(braces, 0);
        EXPECT_GE(brackets, 0);
    }
    EXPECT_FALSE(inString);
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);

    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("\"COARSE\""), std::string::npos);
    // The embedded quote in the track name must be escaped.
    EXPECT_NE(json.find("gpu/\\\"w0\\\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    // Ticks are picoseconds; 1000000 ticks = 1 microsecond.
    EXPECT_NE(json.find("\"ts\":1.000000"), std::string::npos);
    EXPECT_NE(json.find("\"dur\":2.000000"), std::string::npos);
}

TEST(TraceDisabled, SitesAreInertWithoutASession)
{
    // No session: recording sites must not crash, allocate a track, or
    // invoke the name builder.
    bool named = false;
    TraceTrackHandle track;
    auto name = [&named] {
        named = true;
        return "never";
    };
    traceSpan(TraceCategory::Link, track, name, "tx", 0, 1);
    traceInstant(TraceCategory::Recovery, track, name, "mark", 0);
    traceCounter(TraceCategory::Proxy, track, name, "depth", 0, 1);
    EXPECT_FALSE(named);
    EXPECT_EQ(track.epoch, 0u);
}

// ---------------------------------------------------------------------
// StatGroup duplicate-name registration (satellite fix): aliasing two
// stats under one name silently dropped one of them from dumps.

TEST(Stats, DuplicateCounterNamePanics)
{
    StatGroup group("g");
    Counter a;
    Counter b;
    group.addCounter("n", a);
    EXPECT_THROW(group.addCounter("n", b), PanicError);
}

TEST(Stats, DuplicateAcrossStatKindsPanics)
{
    StatGroup group("g");
    Counter counter;
    Scalar scalar;
    group.addCounter("n", counter);
    EXPECT_THROW(group.addScalar("n", scalar), PanicError);
}

TEST(Stats, DistributionLeafCollisionPanics)
{
    StatGroup group("g");
    Counter counter;
    Distribution dist;
    // Distributions expand to <name>.mean/.min/.max/...; colliding
    // with an existing leaf must panic too.
    group.addCounter("lat.mean", counter);
    EXPECT_THROW(group.addDistribution("lat", dist),
                 PanicError);
}

TEST(Stats, ValueVersusSubgroupCollisionPanics)
{
    StatGroup group("g");
    Counter counter;
    group.addCounter("fabric", counter);
    EXPECT_THROW(group.subgroup("fabric"), PanicError);

    StatGroup other("h");
    other.subgroup("fabric");
    Counter counter2;
    EXPECT_THROW(other.addCounter("fabric", counter2),
                 PanicError);
}

TEST(Stats, DistinctNamesStillRegister)
{
    StatGroup group("g");
    Counter a;
    Counter b;
    group.addCounter("x", a);
    group.addCounter("y", b);
    auto &sub = group.subgroup("z");
    Counter c;
    sub.addCounter("x", c);
    std::ostringstream os;
    group.dump(os);
    EXPECT_NE(os.str().find("g.x"), std::string::npos);
    EXPECT_NE(os.str().find("g.z.x"), std::string::npos);
}

} // namespace
