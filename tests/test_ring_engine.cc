/**
 * @file
 * Tests for the Fig. 11c sync-core RingEngine: numerical equivalence
 * with the flow-level collective, chunking behaviour, timing sanity.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "coarse/engine.hh"
#include "dl/model_zoo.hh"
#include "fabric/machine.hh"
#include "memdev/ring_engine.hh"
#include "memdev/sync_group.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace {

using namespace coarse::memdev;
using coarse::sim::FatalError;
using coarse::sim::Simulation;

struct EngineFixture
{
    explicit EngineFixture(std::size_t bufferElements = 4096)
        : machine(coarse::fabric::makeAwsV100(sim))
    {
        MemoryDeviceParams params;
        params.syncCore.bufferElements = bufferElements;
        for (auto node : machine->memDevices()) {
            devices.push_back(
                std::make_unique<MemoryDevice>(node, params));
            raw.push_back(devices.back().get());
        }
    }

    Simulation sim;
    std::unique_ptr<coarse::fabric::Machine> machine;
    std::vector<std::unique_ptr<MemoryDevice>> devices;
    std::vector<MemoryDevice *> raw;
};

std::vector<std::vector<float>>
makeBuffers(std::size_t p, std::size_t n)
{
    std::vector<std::vector<float>> buffers(p);
    for (std::size_t i = 0; i < p; ++i) {
        buffers[i].resize(n);
        for (std::size_t e = 0; e < n; ++e) {
            buffers[i][e] = static_cast<float>(i + 1)
                + 0.001f * static_cast<float>(e % 57);
        }
    }
    return buffers;
}

/** Sweep (elements, reversed): the engine must produce exact sums. */
struct RingCase
{
    std::size_t elements;
    bool reversed;
};

class RingEngineSweep : public ::testing::TestWithParam<RingCase>
{
};

TEST_P(RingEngineSweep, ProducesExactSums)
{
    const auto [n, reversed] = GetParam();
    EngineFixture f;
    RingEngineOptions options;
    options.reversed = reversed;
    RingEngine engine(f.machine->topology(), f.raw, options);

    auto buffers = makeBuffers(f.raw.size(), n);
    std::vector<float> expected(n, 0.0f);
    for (const auto &b : buffers) {
        for (std::size_t e = 0; e < n; ++e)
            expected[e] += b[e];
    }
    std::vector<std::span<float>> spans;
    for (auto &b : buffers)
        spans.emplace_back(b);

    bool done = false;
    engine.allReduce(spans, [&] { done = true; });
    f.sim.run();
    ASSERT_TRUE(done);
    for (const auto &b : buffers) {
        for (std::size_t e = 0; e < n; ++e)
            ASSERT_NEAR(b[e], expected[e], 1e-3) << "elem " << e;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RingEngineSweep,
    ::testing::Values(RingCase{16, false}, RingCase{4096, false},
                      RingCase{4097, false}, RingCase{20000, false},
                      RingCase{20000, true}, RingCase{1, false},
                      RingCase{12289, true}));

TEST(RingEngine, ChunksFollowBufferCapacity)
{
    EngineFixture f(/*bufferElements=*/1000);
    RingEngine engine(f.machine->topology(), f.raw, {});
    auto buffers = makeBuffers(f.raw.size(), 3500);
    std::vector<std::span<float>> spans;
    for (auto &b : buffers)
        spans.emplace_back(b);
    engine.allReduce(spans, [] {});
    f.sim.run();
    EXPECT_EQ(engine.chunksProcessed(), 4u); // ceil(3500/1000)
    // 2(p-1) sends per device per chunk.
    const std::size_t p = f.raw.size();
    EXPECT_EQ(engine.ringSteps(), 4u * p * 2 * (p - 1));
}

TEST(RingEngine, MatchesFlowLevelCollectiveResults)
{
    const std::size_t n = 10000;

    // Flow-level scheduler result.
    EngineFixture flow;
    auto flowBuffers = makeBuffers(flow.raw.size(), n);
    {
        SyncGroupScheduler scheduler(flow.machine->topology(),
                                     flow.raw);
        std::vector<std::span<float>> spans;
        for (auto &b : flowBuffers)
            spans.emplace_back(b);
        scheduler.allReduce(spans, [] {});
        flow.sim.run();
    }

    // Detailed RingEngine result via the scheduler dispatch.
    EngineFixture detailed;
    auto detailedBuffers = makeBuffers(detailed.raw.size(), n);
    {
        SyncScheduleOptions options;
        options.detailedCores = true;
        SyncGroupScheduler scheduler(detailed.machine->topology(),
                                     detailed.raw, options);
        std::vector<std::span<float>> spans;
        for (auto &b : detailedBuffers)
            spans.emplace_back(b);
        scheduler.allReduce(spans, [] {});
        detailed.sim.run();
    }

    for (std::size_t i = 0; i < flowBuffers.size(); ++i) {
        for (std::size_t e = 0; e < n; e += 131) {
            ASSERT_NEAR(flowBuffers[i][e], detailedBuffers[i][e], 1e-3)
                << "device " << i << " elem " << e;
        }
    }
}

TEST(RingEngine, TimingWithinFactorOfFlowModel)
{
    const std::size_t n = 1 << 20;
    auto timeFor = [&](bool detailedMode) {
        EngineFixture f(/*bufferElements=*/256 * 1024);
        auto buffers = makeBuffers(f.raw.size(), n);
        SyncScheduleOptions options;
        options.detailedCores = detailedMode;
        SyncGroupScheduler scheduler(f.machine->topology(), f.raw,
                                     options);
        std::vector<std::span<float>> spans;
        for (auto &b : buffers)
            spans.emplace_back(b);
        scheduler.allReduce(spans, [] {});
        f.sim.run();
        return coarse::sim::toSeconds(f.sim.now());
    };
    const double flow = timeFor(false);
    const double detailed = timeFor(true);
    // The detailed engine adds DRAM staging and chunk barriers, so it
    // is slower than the flow model, but by a bounded factor.
    EXPECT_GT(detailed, flow);
    EXPECT_LT(detailed, flow * 6.0);
}

TEST(RingEngine, SingleDeviceIsImmediate)
{
    Simulation sim;
    auto machine = coarse::fabric::makeSdscP100(sim);
    auto device = std::make_unique<MemoryDevice>(
        machine->memDevices()[0]);
    RingEngine engine(machine->topology(), {device.get()}, {});
    std::vector<float> data(64, 3.0f);
    std::vector<std::span<float>> spans{std::span<float>(data)};
    bool done = false;
    engine.allReduce(spans, [&] { done = true; });
    sim.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(data[0], 3.0f);
}

TEST(RingEngine, RejectsBadConfiguration)
{
    EngineFixture f;
    RingEngineOptions options;
    options.coreIndex = 1000;
    EXPECT_THROW(RingEngine(f.machine->topology(), f.raw, options),
                 FatalError);

    RingEngine engine(f.machine->topology(), f.raw, {});
    std::vector<float> a(8), b(9);
    std::vector<std::span<float>> bad{std::span<float>(a),
                                      std::span<float>(b)};
    EXPECT_THROW(engine.allReduce(bad, [] {}), FatalError);
}

TEST(RingEngine, EngineIntegration)
{
    // The COARSE engine trains correctly with detailed sync cores.
    Simulation sim;
    auto machine = coarse::fabric::makeSdscP100(sim);
    coarse::core::CoarseOptions options;
    options.functionalData = true;
    options.detailedSyncCores = true;
    const auto model = coarse::dl::makeSynthetic(
        "tiny", {512, 1 << 18, 2048}, 2e9, 1 << 20);
    coarse::core::CoarseEngine engine(*machine, model, 4, options);
    const auto report = engine.run(2, 0);
    EXPECT_FALSE(report.deadlocked);
    // Workers converge identically, as with the flow model.
    EXPECT_EQ(engine.weights(0, 1), engine.weights(1, 1));
}

} // namespace
