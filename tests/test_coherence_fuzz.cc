/**
 * @file
 * Randomized coherence-protocol stress: arbitrary interleavings of
 * reads, writes, and evictions must preserve the directory's
 * single-writer / multi-reader invariants.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cci/address_space.hh"
#include "cci/directory.hh"
#include "fabric/machine.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"

namespace {

using namespace coarse::cci;
using namespace coarse::fabric;
using coarse::sim::Random;
using coarse::sim::Simulation;

class CoherenceFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CoherenceFuzz, InvariantsHoldUnderRandomTraffic)
{
    Simulation sim;
    auto machine = makeAwsV100(sim);
    AddressSpace space;
    const NodeId home = machine->memDevices()[0];
    space.addDevice(home, std::uint64_t(1) << 30);
    const std::uint64_t granule = 1 << 20;
    const std::uint64_t regionBytes = 16 << 20;
    const RegionId region = space.allocate(home, regionBytes, "fuzz");
    Directory directory(machine->topology(), space,
                        CoherenceParams{granule, 128});

    // Agents: all workers plus the home itself.
    std::vector<NodeId> agents = machine->workers();
    agents.push_back(home);

    Random rng(GetParam());
    // Track the expected logical state per granule: the last writer
    // (if any write happened after the last read set formed).
    const std::uint64_t granules = regionBytes / granule;
    std::vector<NodeId> lastWriter(granules, kInvalidNode);

    for (int op = 0; op < 300; ++op) {
        const NodeId agent =
            agents[rng.uniformInt(0, agents.size() - 1)];
        const std::uint64_t g = rng.uniformInt(0, granules - 1);
        const std::uint64_t offset = g * granule;
        const std::uint64_t bytes =
            rng.uniformInt(1, granule);
        const int kind = static_cast<int>(rng.uniformInt(0, 2));
        if (kind == 0) {
            directory.acquireRead(agent, region, offset, bytes, [] {});
        } else if (kind == 1) {
            directory.acquireWrite(agent, region, offset, bytes,
                                   [] {});
            lastWriter[g] = agent;
        } else {
            directory.evictGranule(agent, region, g);
        }
        sim.run();

        // Invariant: immediately after a write completes, the writer
        // is the only sharer of the touched granule.
        if (kind == 1) {
            EXPECT_EQ(directory.sharerCount(region, offset), 1u)
                << "seed " << GetParam() << " op " << op;
            EXPECT_TRUE(directory.isSharer(agent, region, offset));
        }
        // General invariant: sharer counts never exceed agent count.
        EXPECT_LE(directory.sharerCount(region, offset),
                  agents.size());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoherenceFuzz,
                         ::testing::Values(7, 11, 23, 37, 53, 71));

} // namespace
