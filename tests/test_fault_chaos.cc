/**
 * @file
 * Deterministic chaos testing: a seeded random fault storm — link
 * degradation, flapping, stragglers, and a proxy crash — over a full
 * functional training run must (a) complete, (b) converge to exactly
 * the fault-free parameter state, and (c) replay byte-identically when
 * the same seed is used again.
 *
 * Registered under the `chaos` ctest label; tools/check.sh runs the
 * label under AddressSanitizer.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <vector>

#include "coarse/engine.hh"
#include "dl/model_zoo.hh"
#include "fabric/machine.hh"
#include "fault/fault.hh"
#include "fault/injector.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"

namespace {

using namespace coarse;
using coarse::sim::Simulation;

coarse::dl::ModelSpec
tinyModel()
{
    return coarse::dl::makeSynthetic(
        "tiny", {512, 1 << 20, 2048, (3 << 20) / 4, 256}, 2e9,
        1 << 20);
}

core::CoarseOptions
chaosOptions(bool heartbeats)
{
    core::CoarseOptions options;
    options.functionalData = true;
    options.learningRate = 0.5;
    options.checkpointEveryIters = 2;
    if (heartbeats) {
        options.heartbeats = true;
        options.heartbeatIntervalSeconds = 20e-6;
        options.heartbeatTimeoutSeconds = 10e-6;
    }
    return options;
}

constexpr std::uint32_t kIters = 6;

/** Recovery-machine counters captured after a run. */
struct RecoveryStats
{
    std::uint64_t rollbackBytes = 0;
    std::uint64_t partialRollbacks = 0;
    std::uint64_t fullRollbacks = 0;
    std::uint64_t escalations = 0;
    std::uint64_t pullRetries = 0;
    std::uint64_t cascadeDetections = 0;
    sim::Tick boundaryTick = 0;
    std::size_t aliveProxies = 0;
};

/** Everything a chaos run produces that determinism must cover. */
struct ChaosOutcome
{
    std::vector<std::vector<float>> weights; // worker 0, per tensor
    sim::Tick endTick = 0;
    std::uint32_t failures = 0;
    std::uint32_t replayed = 0;
    std::uint64_t faultsInjected = 0;
    bool deadlocked = false;
    RecoveryStats recovery;
};

void
captureRecovery(const core::CoarseEngine &engine, ChaosOutcome &out)
{
    const auto &r = engine.recovery();
    out.recovery.rollbackBytes = r.rollbackBytes().value();
    out.recovery.partialRollbacks = r.partialRollbacks().value();
    out.recovery.fullRollbacks = r.fullRollbacks().value();
    out.recovery.escalations = r.escalations().value();
    out.recovery.pullRetries = r.pullRetries().value();
    out.recovery.cascadeDetections = r.cascadeDetections().value();
    out.recovery.boundaryTick = r.lastBoundaryTick();
    out.recovery.aliveProxies = engine.aliveProxyCount();
}

/**
 * Run @p kIters iterations on the machine @p make builds, under an
 * optional explicit fault schedule. @p plannedBytes, when given,
 * receives each proxy's pre-run planned byte allotment (the expected
 * partial-rollback cost of crashing it).
 */
template <typename MakeMachine>
ChaosOutcome
runWithSchedule(MakeMachine make, const fault::FaultSchedule *schedule,
                core::CoarseOptions options,
                std::vector<std::uint64_t> *plannedBytes = nullptr)
{
    Simulation sim;
    auto machine = make(sim);
    core::CoarseEngine engine(*machine, tinyModel(), 4, options);
    if (plannedBytes) {
        plannedBytes->clear();
        for (std::size_t i = 0; i < machine->memDevices().size(); ++i)
            plannedBytes->push_back(engine.plannedProxyBytes(i));
    }
    std::unique_ptr<fault::FaultInjector> injector;
    if (schedule) {
        injector = std::make_unique<fault::FaultInjector>(
            sim, *schedule, engine.faultHooks());
        injector->arm();
    }

    ChaosOutcome out;
    const auto report = engine.run(kIters, 0);
    out.deadlocked = report.deadlocked;
    out.endTick = sim.now();
    out.failures = engine.failuresRecovered();
    out.replayed = engine.iterationsReplayed();
    out.faultsInjected =
        injector ? injector->faultsInjected().value() : 0;
    captureRecovery(engine, out);

    const auto model = tinyModel();
    for (std::size_t t = 0; t < model.tensors.size(); ++t)
        out.weights.push_back(engine.weights(0, t));
    return out;
}

std::unique_ptr<fabric::Machine>
makeSdsc(Simulation &sim)
{
    return fabric::makeSdscP100(sim);
}

/**
 * A disaggregated fleet: two workers (bit-identity needs exactly two,
 * so every gradient sum is one commutative float add) and four memory
 * devices, so multi-proxy crashes still leave survivors.
 */
std::unique_ptr<fabric::Machine>
makeFleet(Simulation &sim)
{
    using fabric::GpuRole;
    return fabric::makeAwsV100Partitioned(
        sim, {GpuRole::Worker, GpuRole::MemoryDevice, GpuRole::Worker,
              GpuRole::MemoryDevice, GpuRole::MemoryDevice,
              GpuRole::MemoryDevice});
}

fault::FaultSpec
proxyCrash(sim::Tick at, std::uint32_t target)
{
    fault::FaultSpec spec;
    spec.kind = fault::FaultKind::ProxyCrash;
    spec.at = at;
    spec.target = target;
    return spec;
}

fault::FaultSpec
linkDegrade(sim::Tick at, sim::Tick duration, double factor,
            std::uint32_t target)
{
    fault::FaultSpec spec;
    spec.kind = fault::FaultKind::LinkDegrade;
    spec.at = at;
    spec.duration = duration;
    spec.severity = factor;
    spec.target = target;
    return spec;
}

/** Degrade every fabric link, so any re-pull path is hit. */
void
degradeAllLinks(fault::FaultSchedule &schedule, sim::Tick at,
                sim::Tick duration, double factor)
{
    Simulation scratch;
    const auto links = makeSdsc(scratch)->topology().linkCount();
    for (std::size_t l = 0; l < links; ++l) {
        schedule.faults.push_back(linkDegrade(
            at, duration, factor, static_cast<std::uint32_t>(l)));
    }
}

void
expectSameWeights(const ChaosOutcome &a, const ChaosOutcome &b,
                  std::size_t stride = 1)
{
    ASSERT_EQ(a.weights.size(), b.weights.size());
    for (std::size_t t = 0; t < a.weights.size(); ++t) {
        ASSERT_EQ(a.weights[t].size(), b.weights[t].size()) << t;
        for (std::size_t e = 0; e < a.weights[t].size(); e += stride)
            ASSERT_EQ(a.weights[t][e], b.weights[t][e])
                << "tensor " << t << " elem " << e;
    }
}

ChaosOutcome
runStorm(std::uint64_t seed)
{
    Simulation sim;
    auto machine = fabric::makeSdscP100(sim);
    core::CoarseEngine engine(*machine, tinyModel(), 4,
                              chaosOptions(/*heartbeats=*/true));

    // The storm spans the whole (fault-free) training window, so any
    // iteration may be hit.
    fault::RandomFaultOptions rfo;
    rfo.horizon = sim::fromSeconds(1.5e-3);
    rfo.faults = 6;
    rfo.links = static_cast<std::uint32_t>(
        machine->topology().linkCount());
    rfo.proxies =
        static_cast<std::uint32_t>(machine->memDevices().size());
    rfo.workers =
        static_cast<std::uint32_t>(machine->workers().size());
    rfo.maxProxyCrashes = 1;

    sim::Random rng(seed);
    fault::FaultInjector injector(
        sim, fault::randomFaultSchedule(rng, rfo),
        engine.faultHooks());
    injector.arm();

    ChaosOutcome out;
    const auto report = engine.run(kIters, 0);
    out.deadlocked = report.deadlocked;
    out.endTick = sim.now();
    out.failures = engine.failuresRecovered();
    out.replayed = engine.iterationsReplayed();
    out.faultsInjected = injector.faultsInjected().value();

    const auto model = tinyModel();
    for (std::size_t t = 0; t < model.tensors.size(); ++t)
        out.weights.push_back(engine.weights(0, t));
    return out;
}

TEST(FaultChaos, StormConvergesToTheFaultFreeState)
{
    // Fault-free reference.
    Simulation cleanSim;
    auto cleanMachine = fabric::makeSdscP100(cleanSim);
    core::CoarseEngine clean(*cleanMachine, tinyModel(), 4,
                             chaosOptions(/*heartbeats=*/false));
    const auto cleanReport = clean.run(kIters, 0);
    ASSERT_FALSE(cleanReport.deadlocked);

    const ChaosOutcome storm = runStorm(/*seed=*/7);
    ASSERT_FALSE(storm.deadlocked);
    EXPECT_GT(storm.faultsInjected, 0u);

    // Faults cost time, never correctness: with two workers every
    // gradient sum is a single commutative float add, so the final
    // weights must match the clean run bit for bit — even across a
    // rollback-and-replay recovery.
    const auto model = tinyModel();
    ASSERT_EQ(storm.weights.size(), model.tensors.size());
    for (std::size_t t = 0; t < model.tensors.size(); ++t) {
        const auto &expect = clean.weights(0, t);
        const auto &got = storm.weights[t];
        ASSERT_EQ(expect.size(), got.size());
        for (std::size_t e = 0; e < expect.size(); ++e)
            ASSERT_EQ(expect[e], got[e])
                << "tensor " << t << " elem " << e;
    }
}

TEST(FaultChaos, SameSeedReplaysByteIdentically)
{
    const ChaosOutcome a = runStorm(/*seed=*/7);
    const ChaosOutcome b = runStorm(/*seed=*/7);

    ASSERT_FALSE(a.deadlocked);
    ASSERT_FALSE(b.deadlocked);
    EXPECT_EQ(a.endTick, b.endTick);
    EXPECT_EQ(a.failures, b.failures);
    EXPECT_EQ(a.replayed, b.replayed);
    EXPECT_EQ(a.faultsInjected, b.faultsInjected);
    ASSERT_EQ(a.weights.size(), b.weights.size());
    for (std::size_t t = 0; t < a.weights.size(); ++t) {
        ASSERT_EQ(a.weights[t].size(), b.weights[t].size());
        for (std::size_t e = 0; e < a.weights[t].size(); ++e)
            ASSERT_EQ(a.weights[t][e], b.weights[t][e])
                << "tensor " << t << " elem " << e;
    }
}

TEST(FaultChaos, OtherSeedsConvergeToo)
{
    Simulation cleanSim;
    auto cleanMachine = fabric::makeSdscP100(cleanSim);
    core::CoarseEngine clean(*cleanMachine, tinyModel(), 4,
                             chaosOptions(/*heartbeats=*/false));
    clean.run(kIters, 0);

    const ChaosOutcome storm = runStorm(/*seed=*/1234);
    ASSERT_FALSE(storm.deadlocked);
    for (std::size_t t = 0; t < storm.weights.size(); ++t) {
        const auto &expect = clean.weights(0, t);
        for (std::size_t e = 0; e < expect.size(); e += 31)
            ASSERT_EQ(expect[e], storm.weights[t][e])
                << "tensor " << t << " elem " << e;
    }
}

TEST(FaultChaos, ConcurrentProxyCrashesFoldIntoOneEpisode)
{
    const ChaosOutcome clean = runWithSchedule(
        makeFleet, nullptr, chaosOptions(/*heartbeats=*/false));
    ASSERT_FALSE(clean.deadlocked);

    // Two proxies fail-stop one microsecond apart mid-training. Both
    // detections land in the same drain window, so recovery folds
    // them into a single episode whose rollback set is the union of
    // the two owned shards.
    const sim::Tick at = clean.endTick * 2 / 5;
    fault::FaultSchedule schedule;
    schedule.faults.push_back(proxyCrash(at, 0));
    schedule.faults.push_back(
        proxyCrash(at + sim::fromMicroseconds(1), 1));

    std::vector<std::uint64_t> planned;
    const ChaosOutcome storm = runWithSchedule(
        makeFleet, &schedule, chaosOptions(/*heartbeats=*/true),
        &planned);
    ASSERT_FALSE(storm.deadlocked);
    EXPECT_EQ(storm.failures, 1u);
    EXPECT_EQ(storm.recovery.aliveProxies, 2u);
    EXPECT_EQ(storm.recovery.partialRollbacks
                  + storm.recovery.fullRollbacks,
              1u);

    // Union accounting: at least the larger shard, at most the sum
    // (shared tensors count once), never more than the model.
    ASSERT_EQ(planned.size(), 4u);
    EXPECT_GE(storm.recovery.rollbackBytes,
              std::max(planned[0], planned[1]));
    EXPECT_LE(storm.recovery.rollbackBytes, planned[0] + planned[1]);
    EXPECT_LE(storm.recovery.rollbackBytes,
              tinyModel().parameterBytes());

    expectSameWeights(clean, storm);
}

TEST(FaultChaos, CrashDuringRecoveryCascades)
{
    std::vector<std::uint64_t> planned;
    const ChaosOutcome clean = runWithSchedule(
        makeFleet, nullptr, chaosOptions(/*heartbeats=*/false),
        &planned);
    ASSERT_FALSE(clean.deadlocked);

    // Kill the proxy with the largest planned allotment first: its
    // re-pull window is the longest, leaving room for the second
    // detection (one probe interval plus the ack timeout after the
    // crash) to land while the episode is still Repulling.
    ASSERT_EQ(planned.size(), 4u);
    const std::uint32_t firstTarget = static_cast<std::uint32_t>(
        std::max_element(planned.begin(), planned.end())
        - planned.begin());
    const std::uint32_t secondTarget = firstTarget == 0 ? 1 : 0;

    // Calibration run with only the first crash, to learn the tick
    // its recovery episode crosses the iteration boundary and starts
    // re-pulling (the sim is deterministic, so the same prefix of the
    // schedule reproduces the same boundary).
    fault::FaultSchedule first;
    first.faults.push_back(
        proxyCrash(clean.endTick * 2 / 5, firstTarget));
    const ChaosOutcome calib = runWithSchedule(
        makeFleet, &first, chaosOptions(/*heartbeats=*/true));
    ASSERT_FALSE(calib.deadlocked);
    ASSERT_GT(calib.recovery.boundaryTick, 0u);

    // The second proxy dies just after the re-pulls launch; its
    // detection arrives while the episode is still Repulling and must
    // extend it in place rather than be dropped.
    fault::FaultSchedule schedule = first;
    schedule.faults.push_back(proxyCrash(
        calib.recovery.boundaryTick + sim::fromMicroseconds(1),
        secondTarget));
    const ChaosOutcome storm = runWithSchedule(
        makeFleet, &schedule, chaosOptions(/*heartbeats=*/true));
    ASSERT_FALSE(storm.deadlocked);
    EXPECT_GE(storm.recovery.cascadeDetections, 1u);
    EXPECT_EQ(storm.recovery.aliveProxies, 2u);

    expectSameWeights(clean, storm);
}

TEST(FaultChaos, PartialRollbackScalesWithTheOwnedShard)
{
    // Force a GPU-synced share so the dead proxy's shard is a strict
    // subset of the model, then crash proxy 1 and compare partial
    // against full rollback on the identical schedule.
    auto cleanOptions = chaosOptions(/*heartbeats=*/false);
    cleanOptions.proxyShareOverride = 0.6;
    const ChaosOutcome clean =
        runWithSchedule(makeSdsc, nullptr, cleanOptions);
    ASSERT_FALSE(clean.deadlocked);

    fault::FaultSchedule schedule;
    schedule.faults.push_back(proxyCrash(clean.endTick * 2 / 5, 1));

    auto options = chaosOptions(/*heartbeats=*/true);
    options.proxyShareOverride = 0.6;
    std::vector<std::uint64_t> planned;
    const ChaosOutcome partial = runWithSchedule(
        makeSdsc, &schedule, options, &planned);
    ASSERT_FALSE(partial.deadlocked);

    // rollback_bytes equals the dead proxy's planned allotment — not
    // the model size.
    ASSERT_EQ(planned.size(), 2u);
    ASSERT_GT(planned[1], 0u);
    EXPECT_LT(planned[1], tinyModel().parameterBytes());
    EXPECT_EQ(partial.recovery.rollbackBytes, planned[1]);
    EXPECT_EQ(partial.recovery.partialRollbacks, 1u);
    EXPECT_EQ(partial.recovery.fullRollbacks, 0u);
    EXPECT_EQ(partial.recovery.escalations, 0u);

    // PR 2 behaviour, for contrast: full rollback restores the whole
    // model on the same crash.
    options.recovery.partialRollback = false;
    const ChaosOutcome full =
        runWithSchedule(makeSdsc, &schedule, options);
    ASSERT_FALSE(full.deadlocked);
    EXPECT_EQ(full.recovery.rollbackBytes,
              tinyModel().parameterBytes());
    EXPECT_EQ(full.recovery.fullRollbacks, 1u);
    EXPECT_EQ(full.recovery.partialRollbacks, 0u);
    EXPECT_LT(partial.recovery.rollbackBytes,
              full.recovery.rollbackBytes);

    // Both flavours converge to the fault-free weights.
    expectSameWeights(clean, partial);
    expectSameWeights(clean, full);
}

TEST(FaultChaos, DegradedLinksDuringRecoveryRetryAndConverge)
{
    const ChaosOutcome clean = runWithSchedule(
        makeSdsc, nullptr, chaosOptions(/*heartbeats=*/false));
    ASSERT_FALSE(clean.deadlocked);

    fault::FaultSchedule first;
    first.faults.push_back(proxyCrash(clean.endTick * 2 / 5, 1));
    const ChaosOutcome calib = runWithSchedule(
        makeSdsc, &first, chaosOptions(/*heartbeats=*/true));
    ASSERT_FALSE(calib.deadlocked);
    ASSERT_GT(calib.recovery.boundaryTick, 0u);

    // The whole fabric collapses to 5% bandwidth just after the
    // re-pulls launch: the in-flight pulls blow their deadlines
    // (priced from the healthy fabric) and recovery must retry with
    // backoff instead of hanging. Heartbeats ride the latency-only
    // path, so the degrade cannot fake a proxy death.
    fault::FaultSchedule schedule = first;
    degradeAllLinks(schedule,
                    calib.recovery.boundaryTick
                        + sim::fromMicroseconds(5),
                    sim::fromSeconds(4e-3), 0.05);
    const ChaosOutcome storm = runWithSchedule(
        makeSdsc, &schedule, chaosOptions(/*heartbeats=*/true));
    ASSERT_FALSE(storm.deadlocked);
    EXPECT_GE(storm.recovery.pullRetries, 1u);

    expectSameWeights(clean, storm);
}

TEST(FaultChaos, ExhaustedRetriesEscalateToFullRollback)
{
    const ChaosOutcome clean = runWithSchedule(
        makeSdsc, nullptr, chaosOptions(/*heartbeats=*/false));
    ASSERT_FALSE(clean.deadlocked);

    auto options = chaosOptions(/*heartbeats=*/true);
    options.recovery.maxPullRetries = 0;

    fault::FaultSchedule first;
    first.faults.push_back(proxyCrash(clean.endTick * 2 / 5, 1));
    const ChaosOutcome calib =
        runWithSchedule(makeSdsc, &first, options);
    ASSERT_FALSE(calib.deadlocked);
    ASSERT_GT(calib.recovery.boundaryTick, 0u);

    // With zero retries allowed, the first missed deadline widens the
    // episode to a full rollback: flapping fabric degrades to deeper
    // rollback, never a hang or a wrong answer.
    fault::FaultSchedule schedule = first;
    degradeAllLinks(schedule,
                    calib.recovery.boundaryTick
                        + sim::fromMicroseconds(5),
                    sim::fromSeconds(4e-3), 0.05);
    const ChaosOutcome storm =
        runWithSchedule(makeSdsc, &schedule, options);
    ASSERT_FALSE(storm.deadlocked);
    EXPECT_GE(storm.recovery.escalations, 1u);
    EXPECT_EQ(storm.recovery.fullRollbacks, 1u);
    EXPECT_EQ(storm.recovery.rollbackBytes,
              tinyModel().parameterBytes());

    expectSameWeights(clean, storm);
}

TEST(FaultChaos, StormFromEnvSeedConverges)
{
    // tools/check.sh sweeps COARSE_CHAOS_SEED over several seeds so
    // CI explores recovery orderings a fixed seed never hits.
    std::uint64_t seed = 7;
    if (const char *env = std::getenv("COARSE_CHAOS_SEED"))
        seed = std::strtoull(env, nullptr, 10);

    Simulation cleanSim;
    auto cleanMachine = fabric::makeSdscP100(cleanSim);
    core::CoarseEngine clean(*cleanMachine, tinyModel(), 4,
                             chaosOptions(/*heartbeats=*/false));
    clean.run(kIters, 0);

    const ChaosOutcome storm = runStorm(seed);
    ASSERT_FALSE(storm.deadlocked) << "seed " << seed;
    for (std::size_t t = 0; t < storm.weights.size(); ++t) {
        const auto &expect = clean.weights(0, t);
        for (std::size_t e = 0; e < expect.size(); e += 31)
            ASSERT_EQ(expect[e], storm.weights[t][e])
                << "seed " << seed << " tensor " << t << " elem " << e;
    }
}

} // namespace
