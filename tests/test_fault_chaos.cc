/**
 * @file
 * Deterministic chaos testing: a seeded random fault storm — link
 * degradation, flapping, stragglers, and a proxy crash — over a full
 * functional training run must (a) complete, (b) converge to exactly
 * the fault-free parameter state, and (c) replay byte-identically when
 * the same seed is used again.
 *
 * Registered under the `chaos` ctest label; tools/check.sh runs the
 * label under AddressSanitizer.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "coarse/engine.hh"
#include "dl/model_zoo.hh"
#include "fabric/machine.hh"
#include "fault/fault.hh"
#include "fault/injector.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"

namespace {

using namespace coarse;
using coarse::sim::Simulation;

coarse::dl::ModelSpec
tinyModel()
{
    return coarse::dl::makeSynthetic(
        "tiny", {512, 1 << 20, 2048, (3 << 20) / 4, 256}, 2e9,
        1 << 20);
}

core::CoarseOptions
chaosOptions(bool heartbeats)
{
    core::CoarseOptions options;
    options.functionalData = true;
    options.learningRate = 0.5;
    options.checkpointEveryIters = 2;
    if (heartbeats) {
        options.heartbeats = true;
        options.heartbeatIntervalSeconds = 20e-6;
        options.heartbeatTimeoutSeconds = 10e-6;
    }
    return options;
}

constexpr std::uint32_t kIters = 6;

/** Everything a chaos run produces that determinism must cover. */
struct ChaosOutcome
{
    std::vector<std::vector<float>> weights; // worker 0, per tensor
    sim::Tick endTick = 0;
    std::uint32_t failures = 0;
    std::uint32_t replayed = 0;
    std::uint64_t faultsInjected = 0;
    bool deadlocked = false;
};

ChaosOutcome
runStorm(std::uint64_t seed)
{
    Simulation sim;
    auto machine = fabric::makeSdscP100(sim);
    core::CoarseEngine engine(*machine, tinyModel(), 4,
                              chaosOptions(/*heartbeats=*/true));

    // The storm spans the whole (fault-free) training window, so any
    // iteration may be hit.
    fault::RandomFaultOptions rfo;
    rfo.horizon = sim::fromSeconds(1.5e-3);
    rfo.faults = 6;
    rfo.links = static_cast<std::uint32_t>(
        machine->topology().linkCount());
    rfo.proxies =
        static_cast<std::uint32_t>(machine->memDevices().size());
    rfo.workers =
        static_cast<std::uint32_t>(machine->workers().size());
    rfo.maxProxyCrashes = 1;

    sim::Random rng(seed);
    fault::FaultInjector injector(
        sim, fault::randomFaultSchedule(rng, rfo),
        engine.faultHooks());
    injector.arm();

    ChaosOutcome out;
    const auto report = engine.run(kIters, 0);
    out.deadlocked = report.deadlocked;
    out.endTick = sim.now();
    out.failures = engine.failuresRecovered();
    out.replayed = engine.iterationsReplayed();
    out.faultsInjected = injector.faultsInjected().value();

    const auto model = tinyModel();
    for (std::size_t t = 0; t < model.tensors.size(); ++t)
        out.weights.push_back(engine.weights(0, t));
    return out;
}

TEST(FaultChaos, StormConvergesToTheFaultFreeState)
{
    // Fault-free reference.
    Simulation cleanSim;
    auto cleanMachine = fabric::makeSdscP100(cleanSim);
    core::CoarseEngine clean(*cleanMachine, tinyModel(), 4,
                             chaosOptions(/*heartbeats=*/false));
    const auto cleanReport = clean.run(kIters, 0);
    ASSERT_FALSE(cleanReport.deadlocked);

    const ChaosOutcome storm = runStorm(/*seed=*/7);
    ASSERT_FALSE(storm.deadlocked);
    EXPECT_GT(storm.faultsInjected, 0u);

    // Faults cost time, never correctness: with two workers every
    // gradient sum is a single commutative float add, so the final
    // weights must match the clean run bit for bit — even across a
    // rollback-and-replay recovery.
    const auto model = tinyModel();
    ASSERT_EQ(storm.weights.size(), model.tensors.size());
    for (std::size_t t = 0; t < model.tensors.size(); ++t) {
        const auto &expect = clean.weights(0, t);
        const auto &got = storm.weights[t];
        ASSERT_EQ(expect.size(), got.size());
        for (std::size_t e = 0; e < expect.size(); ++e)
            ASSERT_EQ(expect[e], got[e])
                << "tensor " << t << " elem " << e;
    }
}

TEST(FaultChaos, SameSeedReplaysByteIdentically)
{
    const ChaosOutcome a = runStorm(/*seed=*/7);
    const ChaosOutcome b = runStorm(/*seed=*/7);

    ASSERT_FALSE(a.deadlocked);
    ASSERT_FALSE(b.deadlocked);
    EXPECT_EQ(a.endTick, b.endTick);
    EXPECT_EQ(a.failures, b.failures);
    EXPECT_EQ(a.replayed, b.replayed);
    EXPECT_EQ(a.faultsInjected, b.faultsInjected);
    ASSERT_EQ(a.weights.size(), b.weights.size());
    for (std::size_t t = 0; t < a.weights.size(); ++t) {
        ASSERT_EQ(a.weights[t].size(), b.weights[t].size());
        for (std::size_t e = 0; e < a.weights[t].size(); ++e)
            ASSERT_EQ(a.weights[t][e], b.weights[t][e])
                << "tensor " << t << " elem " << e;
    }
}

TEST(FaultChaos, OtherSeedsConvergeToo)
{
    Simulation cleanSim;
    auto cleanMachine = fabric::makeSdscP100(cleanSim);
    core::CoarseEngine clean(*cleanMachine, tinyModel(), 4,
                             chaosOptions(/*heartbeats=*/false));
    clean.run(kIters, 0);

    const ChaosOutcome storm = runStorm(/*seed=*/1234);
    ASSERT_FALSE(storm.deadlocked);
    for (std::size_t t = 0; t < storm.weights.size(); ++t) {
        const auto &expect = clean.weights(0, t);
        for (std::size_t e = 0; e < expect.size(); e += 31)
            ASSERT_EQ(expect[e], storm.weights[t][e])
                << "tensor " << t << " elem " << e;
    }
}

} // namespace
