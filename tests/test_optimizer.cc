/**
 * @file
 * Tests for the optimizer models, including their role in the engine
 * (server-side updates, state offloading, checkpointed recovery).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "coarse/engine.hh"
#include "dl/model_zoo.hh"
#include "dl/optimizer.hh"
#include "fabric/machine.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace {

using namespace coarse::dl;
using coarse::sim::FatalError;
using coarse::sim::Simulation;

TEST(Optimizer, SgdMatchesReference)
{
    OptimizerParams params;
    params.kind = OptimizerKind::Sgd;
    params.learningRate = 0.5;
    Optimizer opt(params, 3);
    std::vector<float> w{1.0f, 2.0f, 3.0f};
    std::vector<float> g{0.2f, 0.4f, -0.2f};
    opt.apply(w, g);
    EXPECT_FLOAT_EQ(w[0], 0.9f);
    EXPECT_FLOAT_EQ(w[1], 1.8f);
    EXPECT_FLOAT_EQ(w[2], 3.1f);
}

TEST(Optimizer, MomentumAccumulatesVelocity)
{
    OptimizerParams params;
    params.kind = OptimizerKind::Momentum;
    params.learningRate = 1.0;
    params.momentum = 0.5;
    Optimizer opt(params, 1);
    std::vector<float> w{0.0f};
    std::vector<float> g{1.0f};
    opt.apply(w, g); // v=1, w=-1
    EXPECT_FLOAT_EQ(w[0], -1.0f);
    opt.apply(w, g); // v=1.5, w=-2.5
    EXPECT_FLOAT_EQ(w[0], -2.5f);
}

TEST(Optimizer, AdamMatchesReference)
{
    OptimizerParams params;
    params.kind = OptimizerKind::Adam;
    params.learningRate = 0.1;
    Optimizer opt(params, 1);
    std::vector<float> w{1.0f};
    std::vector<float> g{0.5f};
    opt.apply(w, g);
    // First Adam step moves by ~lr regardless of gradient scale
    // (bias correction makes mhat/sqrt(vhat) ~ sign(g)).
    EXPECT_NEAR(w[0], 1.0f - 0.1f, 1e-4);
}

TEST(Optimizer, AdamStepIsBoundedByLr)
{
    OptimizerParams params;
    params.kind = OptimizerKind::Adam;
    params.learningRate = 0.01;
    Optimizer opt(params, 4);
    std::vector<float> w{1.0f, 1.0f, 1.0f, 1.0f};
    std::vector<float> g{100.0f, -100.0f, 0.001f, -0.001f};
    opt.apply(w, g);
    for (float v : w)
        EXPECT_NEAR(std::abs(v - 1.0f), 0.01f, 2e-3);
}

TEST(Optimizer, StateBytesMatchKind)
{
    EXPECT_EQ(optimizerStateBytesPerParam(OptimizerKind::Sgd), 0u);
    EXPECT_EQ(optimizerStateBytesPerParam(OptimizerKind::Momentum),
              4u);
    EXPECT_EQ(optimizerStateBytesPerParam(OptimizerKind::Adam), 8u);
}

TEST(Optimizer, ResidentFootprintGrowsWithState)
{
    const auto model = makeBertLarge();
    const auto sgd =
        gpuMemoryNeeded(model, 2, residentStateModel(OptimizerKind::Sgd));
    const auto adam = gpuMemoryNeeded(
        model, 2, residentStateModel(OptimizerKind::Adam));
    EXPECT_GT(adam, sgd);
    // Offloaded footprint is optimizer-independent.
    EXPECT_EQ(gpuMemoryNeeded(model, 2,
                              offloadedStateModel(OptimizerKind::Sgd)),
              gpuMemoryNeeded(model, 2,
                              offloadedStateModel(OptimizerKind::Adam)));
}

TEST(Optimizer, SaveRestoreRoundTrips)
{
    OptimizerParams params;
    params.kind = OptimizerKind::Adam;
    Optimizer opt(params, 2);
    std::vector<float> w{1.0f, 1.0f};
    std::vector<float> g{0.1f, -0.1f};
    opt.apply(w, g);
    const auto saved = opt.saveState();
    auto w2 = w;
    opt.apply(w, g);
    opt.restoreState(saved);
    opt.apply(w2, g);
    EXPECT_EQ(w, w2); // replay after restore matches original path
}

TEST(Optimizer, RejectsBadUsage)
{
    OptimizerParams params;
    EXPECT_THROW(Optimizer(params, 0), FatalError);
    Optimizer opt(params, 2);
    std::vector<float> w{1.0f};
    std::vector<float> g{1.0f, 2.0f};
    EXPECT_THROW(opt.apply(w, g), FatalError);
}

coarse::core::CoarseOptions
engineOptions(OptimizerKind kind)
{
    coarse::core::CoarseOptions options;
    options.functionalData = true;
    options.learningRate = 0.2;
    options.optimizer.kind = kind;
    return options;
}

class OptimizerEngineSweep
    : public ::testing::TestWithParam<OptimizerKind>
{
};

TEST_P(OptimizerEngineSweep, WorkersConvergeIdentically)
{
    Simulation sim;
    auto machine = coarse::fabric::makeSdscP100(sim);
    const auto model = coarse::dl::makeSynthetic(
        "opt", {2048, 1 << 18}, 2e9, 1 << 20);
    coarse::core::CoarseEngine engine(*machine, model, 4,
                                      engineOptions(GetParam()));
    engine.run(3, 0);
    for (std::size_t t = 0; t < model.tensors.size(); ++t)
        EXPECT_EQ(engine.weights(0, t), engine.weights(1, t));
}

TEST_P(OptimizerEngineSweep, FailureRecoveryStillMatchesCleanRun)
{
    const auto model = coarse::dl::makeSynthetic(
        "opt", {2048, 1 << 16}, 2e9, 1 << 20);

    Simulation simA;
    auto machineA = coarse::fabric::makeSdscP100(simA);
    auto optionsA = engineOptions(GetParam());
    optionsA.checkpointEveryIters = 2;
    coarse::core::CoarseEngine clean(*machineA, model, 4, optionsA);
    clean.run(5, 0);

    Simulation simB;
    auto machineB = coarse::fabric::makeSdscP100(simB);
    auto optionsB = engineOptions(GetParam());
    optionsB.checkpointEveryIters = 2;
    optionsB.failAtIteration = 3;
    coarse::core::CoarseEngine failed(*machineB, model, 4, optionsB);
    failed.run(5, 0);
    EXPECT_EQ(failed.failuresRecovered(), 1u);

    // Stateful optimizers only match if their state was part of the
    // checkpoint — which it is.
    for (std::size_t t = 0; t < model.tensors.size(); ++t)
        EXPECT_EQ(clean.weights(0, t), failed.weights(0, t));
}

INSTANTIATE_TEST_SUITE_P(Kinds, OptimizerEngineSweep,
                         ::testing::Values(OptimizerKind::Sgd,
                                           OptimizerKind::Momentum,
                                           OptimizerKind::Adam));

} // namespace
