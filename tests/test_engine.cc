/**
 * @file
 * End-to-end tests of the COARSE engine: functional training
 * correctness, feature switches, sharing configs, checkpoints.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "coarse/engine.hh"
#include "dl/model_zoo.hh"
#include "fabric/machine.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace {

using namespace coarse::core;
using coarse::sim::FatalError;
using coarse::sim::Simulation;

coarse::dl::ModelSpec
tinyModel()
{
    // A few tensors spanning small (latency-routed) and large
    // (bandwidth-routed, partitioned) sizes. Sized so a functional
    // run stays fast.
    return coarse::dl::makeSynthetic(
        "tiny", {512, 1 << 20, 2048, (3 << 20) / 4, 256}, 2e9,
        1 << 20);
}

CoarseOptions
functionalOptions()
{
    CoarseOptions options;
    options.functionalData = true;
    options.learningRate = 0.5;
    return options;
}

/** Expected weight after @p iters synchronous SGD iterations. */
float
expectedWeight(float initial, std::size_t tensorIdx,
               std::size_t element, std::uint32_t iters,
               std::uint32_t workers, double lr)
{
    float w = initial;
    for (std::uint32_t iter = 0; iter < iters; ++iter) {
        float avg = 0.0f;
        for (std::uint32_t wk = 0; wk < workers; ++wk) {
            const float base = 0.01f * float(wk + 1)
                + 0.001f * float(tensorIdx % 31)
                + 0.0001f * float(iter % 17);
            avg += base + 1e-7f * float(element % 101);
        }
        avg /= float(workers);
        w -= float(lr) * avg;
    }
    return w;
}

TEST(Engine, FunctionalTrainingMatchesSynchronousSgd)
{
    Simulation sim;
    auto machine = coarse::fabric::makeSdscP100(sim);
    CoarseEngine engine(*machine, tinyModel(), 4, functionalOptions());

    const std::uint32_t iters = 3;
    const auto report = engine.run(iters, /*warmup=*/0);
    EXPECT_FALSE(report.deadlocked);
    EXPECT_EQ(report.iterations, iters);

    const auto model = tinyModel();
    const std::uint32_t workers = 2;
    for (std::size_t t = 0; t < model.tensors.size(); ++t) {
        const auto &w0 = engine.weights(0, t);
        for (std::size_t e : {std::size_t(0), w0.size() / 2,
                              w0.size() - 1}) {
            const float initial = 1.0f + 0.001f * float(t)
                + 1e-6f * float(e % 997);
            const float expected =
                expectedWeight(initial, t, e, iters, workers, 0.5);
            ASSERT_NEAR(w0[e], expected, 5e-4)
                << "tensor " << t << " elem " << e;
        }
    }
}

TEST(Engine, AllWorkersConverge)
{
    Simulation sim;
    auto machine = coarse::fabric::makeAwsV100(sim);
    CoarseEngine engine(*machine, tinyModel(), 4, functionalOptions());
    engine.run(2, 0);

    const auto model = tinyModel();
    for (std::size_t t = 0; t < model.tensors.size(); ++t) {
        const auto &w0 = engine.weights(0, t);
        for (std::size_t w = 1; w < machine->workers().size(); ++w) {
            const auto &ww = engine.weights(w, t);
            ASSERT_EQ(w0.size(), ww.size());
            for (std::size_t e = 0; e < w0.size(); e += 97)
                ASSERT_EQ(w0[e], ww[e])
                    << "worker " << w << " tensor " << t;
        }
    }
}

TEST(Engine, StoresMatchWorkerWeights)
{
    Simulation sim;
    auto machine = coarse::fabric::makeSdscP100(sim);
    CoarseEngine engine(*machine, tinyModel(), 4, functionalOptions());
    engine.run(2, 0);
    const auto model = tinyModel();
    for (std::size_t t = 0; t < model.tensors.size(); ++t) {
        const auto stored = engine.memoryDevice(0).store().get(t);
        EXPECT_EQ(*stored, engine.weights(0, t));
    }
}

TEST(Engine, RoutingDisabledUsesPairedProxy)
{
    Simulation sim;
    auto machine = coarse::fabric::makeAwsV100(sim);
    auto options = functionalOptions();
    options.tensorRouting = false;
    CoarseEngine engine(*machine, tinyModel(), 4, options);
    for (std::size_t w = 0; w < machine->workers().size(); ++w) {
        const auto &table = engine.routingTableOf(w);
        EXPECT_EQ(table.latProxy,
                  machine->pairedMemDevice(machine->workers()[w]));
        EXPECT_EQ(table.bwProxy, table.latProxy);
    }
    engine.run(1, 0); // still trains correctly
}

TEST(Engine, RoutingEnabledSplitsOnAntiLocalMachine)
{
    Simulation sim;
    auto machine = coarse::fabric::makeAwsV100(sim);
    CoarseEngine engine(*machine, tinyModel(), 4, functionalOptions());
    const auto &table = engine.routingTableOf(0);
    EXPECT_NE(table.latProxy, table.bwProxy);
    EXPECT_GT(table.thresholdBytes, 0u);
}

TEST(Engine, PartitioningTogglesShardSize)
{
    Simulation sim;
    auto machine = coarse::fabric::makeSdscP100(sim);
    auto options = functionalOptions();
    options.tensorPartitioning = false;
    CoarseEngine whole(*machine, tinyModel(), 4, options);
    EXPECT_EQ(whole.shardBytes(), 0u);

    Simulation sim2;
    auto machine2 = coarse::fabric::makeSdscP100(sim2);
    CoarseEngine sharded(*machine2, tinyModel(), 4,
                         functionalOptions());
    EXPECT_GT(sharded.shardBytes(), 0u);
}

TEST(Engine, DualSyncDisabledSendsEverythingToProxies)
{
    Simulation sim;
    auto machine = coarse::fabric::makeSdscP100(sim);
    auto options = functionalOptions();
    options.dualSync = false;
    CoarseEngine engine(*machine, tinyModel(), 4, options);
    EXPECT_EQ(engine.plan().gpuBytes, 0u);
    EXPECT_EQ(engine.plan().splitTensor, 0u);
    engine.run(1, 0);
}

TEST(Engine, SharedMemDeviceConfigTrainsCorrectly)
{
    Simulation sim;
    coarse::fabric::MachineOptions mo;
    mo.workersPerMemDevice = 2;
    auto machine = coarse::fabric::makeAwsV100(sim, mo);
    CoarseEngine engine(*machine, tinyModel(), 4, functionalOptions());
    const auto report = engine.run(2, 0);
    EXPECT_FALSE(report.deadlocked);

    const auto model = tinyModel();
    const std::uint32_t workers = 4;
    const auto &w0 = engine.weights(0, 1);
    const float initial = 1.0f + 0.001f + 1e-6f * 0.0f;
    EXPECT_NEAR(w0[0], expectedWeight(initial, 1, 0, 2, workers, 0.5),
                5e-4);
    (void)model;
}

TEST(Engine, MultiNodeRuns)
{
    Simulation sim;
    coarse::fabric::MachineOptions mo;
    mo.nodes = 2;
    auto machine = coarse::fabric::makeAwsV100(sim, mo);
    CoarseEngine engine(*machine, tinyModel(), 4, functionalOptions());
    const auto report = engine.run(2, 0);
    EXPECT_FALSE(report.deadlocked);
    EXPECT_EQ(report.workers, 8u);
    // All eight workers converge to identical weights.
    const auto &w0 = engine.weights(0, 1);
    const auto &w7 = engine.weights(7, 1);
    EXPECT_EQ(w0, w7);
}

TEST(Engine, CheckpointsAreTaken)
{
    Simulation sim;
    auto machine = coarse::fabric::makeSdscP100(sim);
    auto options = functionalOptions();
    options.checkpointEveryIters = 2;
    CoarseEngine engine(*machine, tinyModel(), 4, options);
    engine.run(4, 0);
    EXPECT_EQ(engine.checkpointsTaken(), 2u);
    // Two periodic checkpoints plus the initial recovery floor.
    EXPECT_EQ(engine.memoryDevice(0).store().checkpointCount(), 3u);
}

TEST(Engine, ReprofilingRuns)
{
    Simulation sim;
    auto machine = coarse::fabric::makeSdscP100(sim);
    auto options = functionalOptions();
    options.reprofileEveryIters = 2;
    CoarseEngine engine(*machine, tinyModel(), 4, options);
    EXPECT_EQ(engine.profileRuns(), 1u);
    engine.run(5, 0);
    EXPECT_EQ(engine.profileRuns(), 3u); // at iters 2 and 4
}

TEST(Engine, ReportFieldsAreConsistent)
{
    Simulation sim;
    auto machine = coarse::fabric::makeSdscP100(sim);
    CoarseEngine engine(*machine, tinyModel(), 8, functionalOptions());
    const auto report = engine.run(3, 1);
    EXPECT_EQ(report.scheme, "COARSE");
    EXPECT_EQ(report.machine, "sdsc_p100");
    EXPECT_EQ(report.batchSize, 8u);
    EXPECT_EQ(report.iterations, 3u);
    EXPECT_GT(report.iterationSeconds, 0.0);
    EXPECT_GE(report.iterationSeconds,
              report.computeSeconds - 1e-12);
    EXPECT_GT(report.gpuUtilization, 0.0);
    EXPECT_LE(report.gpuUtilization, 1.0 + 1e-9);
    EXPECT_NEAR(report.throughputSamplesPerSec,
                8.0 * 2 / report.iterationSeconds, 1e-6);
}

TEST(Engine, TimelineShowsPipelinedPhases)
{
    Simulation sim;
    auto machine = coarse::fabric::makeSdscP100(sim);
    CoarseEngine engine(*machine, tinyModel(), 4, functionalOptions());
    engine.run(2, 0);
    const auto &t = engine.lastTimeline();

    // Basic ordering.
    EXPECT_GT(t.computeEnd, t.start);
    EXPECT_GE(t.end, t.computeEnd);
    ASSERT_GT(t.firstPush, 0u);
    EXPECT_GE(t.lastPush, t.firstPush);
    ASSERT_GT(t.firstShardSynced, 0u);
    EXPECT_GT(t.firstShardSynced, t.firstPush);
    EXPECT_GE(t.lastShardSynced, t.firstShardSynced);
    ASSERT_GT(t.firstPull, 0u);
    EXPECT_GE(t.firstPull, t.firstShardSynced);
    EXPECT_GE(t.end, t.lastPull);

    // The COARSE pipeline overlaps synchronization with the backward
    // pass: pushes (and even some proxy syncs) start before compute
    // finishes.
    EXPECT_LT(t.firstPush, t.computeEnd);
    EXPECT_LT(t.firstShardSynced, t.computeEnd);
}

TEST(Engine, ReportsDeadlockUnderFcfsSharedProxies)
{
    // On the 2:1 configuration two clients share each proxy and push
    // tensors in reverse-ready order; the FCFS strawman can wedge
    // exactly as Fig. 10 describes. The engine must detect the wedge
    // and report it rather than spinning.
    Simulation sim;
    coarse::fabric::MachineOptions mo;
    mo.workersPerMemDevice = 2;
    auto machine = coarse::fabric::makeAwsV100(sim, mo);
    auto options = functionalOptions();
    options.schedulingPolicy = SchedulingPolicy::Fcfs;
    // Force routing so clients spray shards across both proxies.
    options.tensorPartitioning = true;
    CoarseEngine engine(*machine, tinyModel(), 4, options);
    const auto report = engine.run(3, 0);
    // FCFS may or may not wedge depending on arrival order; what the
    // engine guarantees is a truthful report: either it completed
    // all iterations or it flagged the deadlock.
    if (report.deadlocked) {
        EXPECT_GT(engine.proxyService().pendingCount(), 0u);
    } else {
        EXPECT_EQ(report.iterations, 3u);
    }
}

TEST(Engine, OversizedBatchIsFatal)
{
    Simulation sim;
    auto machine = coarse::fabric::makeAwsV100(sim);
    EXPECT_THROW(CoarseEngine(*machine, coarse::dl::makeBertLarge(),
                              64, CoarseOptions{}),
                 FatalError);
}

TEST(Engine, FailureRecoveryReplaysFromCheckpoint)
{
    // Run 6 iterations with checkpoints every 2 and a failure after
    // iteration 4. The engine must roll back to the iteration-4
    // checkpoint and replay; final weights must equal the
    // failure-free run (deterministic gradients).
    // Two separate simulations; compare end states.
    Simulation simA;
    auto machineA = coarse::fabric::makeSdscP100(simA);
    auto optionsA = functionalOptions();
    optionsA.checkpointEveryIters = 2;
    CoarseEngine clean(*machineA, tinyModel(), 4, optionsA);
    clean.run(6, 0);
    EXPECT_EQ(clean.failuresRecovered(), 0u);

    Simulation simB;
    auto machineB = coarse::fabric::makeSdscP100(simB);
    auto optionsB = functionalOptions();
    optionsB.checkpointEveryIters = 2;
    optionsB.failAtIteration = 4;
    CoarseEngine failed(*machineB, tinyModel(), 4, optionsB);
    const auto report = failed.run(6, 0);
    EXPECT_FALSE(report.deadlocked);
    EXPECT_EQ(failed.failuresRecovered(), 1u);
    // Failure right after iteration 4 with checkpoint at 4: the
    // engine replays iteration 4 only... checkpoint cadence 2 means
    // the latest checkpoint covers iterations [0,4), so iteration 4
    // is replayed.
    EXPECT_GE(failed.iterationsReplayed(), 1u);

    const auto model = tinyModel();
    for (std::size_t t = 0; t < model.tensors.size(); ++t)
        EXPECT_EQ(clean.weights(0, t), failed.weights(0, t))
            << "tensor " << t;
}

TEST(Engine, FailureWithoutCheckpointsRestartsFromInitial)
{
    Simulation sim;
    auto machine = coarse::fabric::makeSdscP100(sim);
    auto options = functionalOptions();
    options.failAtIteration = 2;
    CoarseEngine engine(*machine, tinyModel(), 4, options);
    const auto report = engine.run(4, 0);
    EXPECT_FALSE(report.deadlocked);
    EXPECT_EQ(engine.failuresRecovered(), 1u);
    EXPECT_EQ(engine.iterationsReplayed(), 3u); // iterations 0..2
}

TEST(Engine, DataLoadingPrefetchHidesTheFetch)
{
    // ResNet-style minibatches fetched from the memory pool: with
    // prefetch they hide under compute; without they serialize.
    auto model = tinyModel();
    model.sampleBytes = 224 * 224 * 3;
    auto iterFor = [&](bool loading, bool prefetch) {
        Simulation sim;
        auto machine = coarse::fabric::makeSdscP100(sim);
        auto options = functionalOptions();
        options.dataLoading = loading;
        options.dataPrefetch = prefetch;
        CoarseEngine engine(*machine, model, 64, options);
        return engine.run(4, 1).iterationSeconds;
    };
    const double off = iterFor(false, true);
    const double prefetched = iterFor(true, true);
    const double blocking = iterFor(true, false);
    // Prefetch keeps the fetch off the critical path.
    EXPECT_NEAR(prefetched, off, off * 0.02);
    EXPECT_GT(blocking, prefetched);
}

TEST(Engine, StatsAttachExposesCounters)
{
    Simulation sim;
    auto machine = coarse::fabric::makeSdscP100(sim);
    auto options = functionalOptions();
    options.checkpointEveryIters = 2;
    CoarseEngine engine(*machine, tinyModel(), 4, options);
    coarse::sim::StatGroup group("coarse");
    engine.attachStats(group);
    engine.run(2, 0);
    EXPECT_GT(group.lookup("shards_synced"), 0.0);
    EXPECT_GT(group.lookup("bytes_pushed"), 0.0);
    EXPECT_EQ(group.lookup("checkpoints"), 1.0);
    EXPECT_GT(group.lookup("store.versions_created"), 0.0);
}

TEST(Engine, DeterministicAcrossRuns)
{
    auto once = [] {
        Simulation sim;
        auto machine = coarse::fabric::makeAwsV100(sim);
        CoarseEngine engine(*machine, tinyModel(), 4,
                            functionalOptions());
        return engine.run(3, 1).iterationSeconds;
    };
    EXPECT_DOUBLE_EQ(once(), once());
}

} // namespace
