/**
 * @file
 * Unit tests for size-dependent bandwidth curves.
 */

#include <gtest/gtest.h>

#include "fabric/bandwidth.hh"
#include "sim/logging.hh"

namespace {

using namespace coarse::fabric;

TEST(BandwidthCurve, FlatIsSizeIndependent)
{
    const auto curve = BandwidthCurve::flat(gbps(10.0));
    EXPECT_DOUBLE_EQ(curve.at(1), gbps(10.0));
    EXPECT_DOUBLE_EQ(curve.at(1 << 20), gbps(10.0));
    EXPECT_DOUBLE_EQ(curve.at(std::uint64_t(1) << 40), gbps(10.0));
    EXPECT_DOUBLE_EQ(curve.peak(), gbps(10.0));
}

TEST(BandwidthCurve, RampEndsAtPeak)
{
    const auto curve =
        BandwidthCurve::ramp(gbps(12.0), 4096, 2 << 20, 0.1);
    EXPECT_NEAR(curve.at(4096), gbps(1.2), gbps(0.01));
    EXPECT_DOUBLE_EQ(curve.at(2 << 20), gbps(12.0));
    EXPECT_DOUBLE_EQ(curve.at(64 << 20), gbps(12.0));
}

TEST(BandwidthCurve, RampIsMonotonic)
{
    const auto curve =
        BandwidthCurve::ramp(gbps(13.0), 4096, 2 << 20, 0.12);
    double last = 0.0;
    for (std::uint64_t size = 1024; size <= (8 << 20); size *= 2) {
        const double bw = curve.at(size);
        EXPECT_GE(bw, last);
        last = bw;
    }
}

TEST(BandwidthCurve, ClampsBelowFirstPoint)
{
    const auto curve =
        BandwidthCurve::ramp(gbps(10.0), 4096, 1 << 20, 0.2);
    EXPECT_DOUBLE_EQ(curve.at(1), curve.at(4096));
    EXPECT_DOUBLE_EQ(curve.at(0), curve.at(4096));
}

TEST(BandwidthCurve, InterpolatesBetweenPoints)
{
    const auto curve = BandwidthCurve::fromPoints(
        {{1024, gbps(1.0)}, {4096, gbps(3.0)}});
    // Halfway in log2 space between 1 KiB and 4 KiB is 2 KiB.
    EXPECT_NEAR(curve.at(2048), gbps(2.0), gbps(0.001));
}

TEST(BandwidthCurve, SaturationSizeFindsKnee)
{
    const auto curve =
        BandwidthCurve::ramp(gbps(12.0), 4096, 2 << 20, 0.1);
    EXPECT_EQ(curve.saturationSize(1.0), std::uint64_t(2 << 20));
    EXPECT_LE(curve.saturationSize(0.5), std::uint64_t(2 << 20));
}

TEST(BandwidthCurve, ScaledMultipliesEverywhere)
{
    const auto curve =
        BandwidthCurve::ramp(gbps(10.0), 4096, 1 << 20, 0.5);
    const auto half = curve.scaled(0.5);
    for (std::uint64_t size = 1024; size <= (4 << 20); size *= 4)
        EXPECT_DOUBLE_EQ(half.at(size), 0.5 * curve.at(size));
}

TEST(BandwidthCurve, RejectsInvalidConstruction)
{
    EXPECT_THROW(BandwidthCurve::fromPoints({}),
                 coarse::sim::FatalError);
    EXPECT_THROW(BandwidthCurve::fromPoints({{1024, -1.0}}),
                 coarse::sim::FatalError);
    EXPECT_THROW(
        BandwidthCurve::fromPoints({{4096, gbps(1.0)},
                                    {1024, gbps(2.0)}}),
        coarse::sim::FatalError);
    EXPECT_THROW(BandwidthCurve::ramp(gbps(1.0), 4096, 4096, 0.5),
                 coarse::sim::FatalError);
    const auto curve = BandwidthCurve::flat(gbps(1.0));
    EXPECT_THROW(curve.scaled(0.0), coarse::sim::FatalError);
}

/** Property sweep: curves never return non-positive bandwidth. */
class CurveSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CurveSweep, AlwaysPositive)
{
    const auto curve =
        BandwidthCurve::ramp(gbps(13.0), 4096, 2 << 20, 0.12);
    EXPECT_GT(curve.at(GetParam()), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, CurveSweep,
    ::testing::Values(1, 64, 4095, 4096, 4097, 65536, 1 << 20,
                      (2 << 20) - 1, 2 << 20, 1 << 30));

} // namespace
