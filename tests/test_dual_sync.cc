/**
 * @file
 * Tests for the dual-synchronization planner.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "coarse/dual_sync.hh"
#include "coarse/engine.hh"
#include "coarse/routing.hh"
#include "dl/model_zoo.hh"
#include "fabric/machine.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace {

using namespace coarse::core;
using coarse::sim::FatalError;

DualSyncInputs
baseInputs()
{
    DualSyncInputs in;
    in.forwardSeconds = 0.030;
    in.backwardSeconds = 0.060;
    in.totalBytes = 400 << 20;
    in.workers = 4;
    in.gpuRingBytesPerSec = 10e9;
    in.proxyRingBytesPerSec = 12e9;
    return in;
}

TEST(DualSync, PredictionMatchesFormula)
{
    const auto in = baseInputs();
    const double c = 2.0 * 3.0 / 4.0;
    const std::uint64_t m = 100 << 20;
    const double gpuPath = in.forwardSeconds + in.backwardSeconds
        + c * double(in.totalBytes - m) / in.gpuRingBytesPerSec;
    const double proxyPath =
        in.forwardSeconds + c * double(m) / in.proxyRingBytesPerSec;
    EXPECT_DOUBLE_EQ(predictedIterationSeconds(in, m),
                     std::max(gpuPath, proxyPath));
}

TEST(DualSync, PlanIsNoWorseThanBruteForce)
{
    const auto in = baseInputs();
    const auto plan = planDualSync(in);
    // Scan m densely; the planner's prediction must be within a hair
    // of the best scanned value.
    double best = 1e30;
    for (std::uint64_t m = 0; m <= in.totalBytes;
         m += in.totalBytes / 1000) {
        best = std::min(best, predictedIterationSeconds(in, m));
    }
    EXPECT_LE(plan.predictedIterationSeconds, best * 1.0001);
    EXPECT_EQ(plan.proxyBytes + plan.gpuBytes, in.totalBytes);
}

TEST(DualSync, FastProxiesTakeEverything)
{
    auto in = baseInputs();
    in.proxyRingBytesPerSec = 1e13; // near-free proxy sync
    const auto plan = planDualSync(in);
    EXPECT_EQ(plan.proxyBytes, in.totalBytes);
    EXPECT_EQ(plan.gpuBytes, 0u);
}

TEST(DualSync, SlowProxiesStillOffloadWhatHidesUnderBackward)
{
    // Even slow proxies take the bytes whose sync hides under the
    // backward pass; only beyond that does GPU sync win.
    auto in = baseInputs();
    in.proxyRingBytesPerSec = 1e9;
    in.gpuRingBytesPerSec = 50e9;
    const auto plan = planDualSync(in);
    EXPECT_GT(plan.gpuBytes, 0u);
    EXPECT_GT(plan.proxyBytes, 0u);
    // And the split beats both extremes.
    EXPECT_LT(plan.predictedIterationSeconds,
              predictedIterationSeconds(in, in.totalBytes));
    EXPECT_LT(plan.predictedIterationSeconds,
              predictedIterationSeconds(in, 0));
}

TEST(DualSync, SingleWorkerNeedsNoSync)
{
    auto in = baseInputs();
    in.workers = 1;
    const auto plan = planDualSync(in);
    EXPECT_DOUBLE_EQ(plan.predictedIterationSeconds,
                     in.forwardSeconds + in.backwardSeconds);
}

TEST(DualSync, RejectsBadInputs)
{
    auto in = baseInputs();
    in.workers = 0;
    EXPECT_THROW(planDualSync(in), FatalError);
    in = baseInputs();
    in.gpuRingBytesPerSec = 0.0;
    EXPECT_THROW(planDualSync(in), FatalError);
    in = baseInputs();
    EXPECT_THROW(predictedIterationSeconds(in, in.totalBytes + 1),
                 FatalError);
}

TEST(DualSync, AssignTensorsCoversRequestedBytes)
{
    const auto model = coarse::dl::makeResNet50();
    const std::uint64_t n = model.parameterBytes();

    EXPECT_EQ(assignTensors(model, 0), model.tensors.size());
    EXPECT_EQ(assignTensors(model, n), 0u);

    const std::size_t split = assignTensors(model, n / 2);
    std::uint64_t proxyBytes = 0;
    for (std::size_t t = split; t < model.tensors.size(); ++t)
        proxyBytes += model.tensors[t].bytes();
    EXPECT_GE(proxyBytes, n / 2);
    // Removing the boundary tensor drops below the target: minimal
    // cover.
    if (split < model.tensors.size()) {
        EXPECT_LT(proxyBytes - model.tensors[split].bytes(), n / 2);
    }
}

// ---------------------------------------------------------------------
// Coverage gaps: the split degenerating to one path (m = 0 and
// m = num_layers) and the routing size-threshold boundary.

TEST(DualSync, DegenerateSplitsStillTrainToIdenticalWeights)
{
    // proxyShareOverride pins m at either extreme: 0.0 disables the
    // proxy path entirely (pure GPU ring), 1.0 the GPU ring (pure
    // proxy sync). Both must still converge bit-identically.
    for (const double share : {0.0, 1.0}) {
        coarse::sim::Simulation sim;
        auto machine = coarse::fabric::makeSdscP100(sim);
        const auto model = coarse::dl::makeSynthetic(
            "degenerate", {1024, 1 << 18, 4096, 1 << 16}, 1e9,
            1 << 20);

        coarse::core::CoarseOptions options;
        options.functionalData = true;
        options.proxyShareOverride = share;
        coarse::core::CoarseEngine engine(*machine, model, 4, options);
        const auto report = engine.run(2, 0);
        ASSERT_FALSE(report.deadlocked) << "share " << share;

        // The tensor assignment matches the extreme: everything on
        // one path, nothing on the other.
        if (share == 0.0) {
            EXPECT_EQ(engine.plan().proxyBytes, 0u);
            EXPECT_EQ(engine.plan().splitTensor,
                      model.tensors.size());
            EXPECT_EQ(engine.plan().gpuBytes,
                      model.parameterBytes());
        } else {
            EXPECT_EQ(engine.plan().gpuBytes, 0u);
            EXPECT_EQ(engine.plan().splitTensor, 0u);
            EXPECT_EQ(engine.plan().proxyBytes,
                      model.parameterBytes());
        }

        for (std::size_t t = 0; t < model.tensors.size(); ++t) {
            const auto &w0 = engine.weights(0, t);
            EXPECT_FALSE(w0.empty());
            for (std::size_t w = 1;
                 w < machine->workers().size(); ++w) {
                ASSERT_EQ(w0, engine.weights(w, t))
                    << "share " << share << " tensor " << t;
            }
        }
    }
}

TEST(DualSync, PredictionAtDegenerateSplitsMatchesFormula)
{
    const auto in = baseInputs();
    const double c =
        2.0 * (in.workers - 1) / double(in.workers);
    // m = 0: everything rides the GPU ring after the backward pass.
    EXPECT_DOUBLE_EQ(
        predictedIterationSeconds(in, 0),
        in.forwardSeconds + in.backwardSeconds
            + c * double(in.totalBytes) / in.gpuRingBytesPerSec);
    // m = n: the GPU term vanishes; only the slower of BP and the
    // proxy pipeline remains after FP.
    EXPECT_DOUBLE_EQ(
        predictedIterationSeconds(in, in.totalBytes),
        in.forwardSeconds
            + std::max(in.backwardSeconds,
                       c * double(in.totalBytes)
                           / in.proxyRingBytesPerSec));
}

TEST(Routing, ExactlyAtThresholdRoutesToBandwidthProxy)
{
    RoutingTable table;
    table.latProxy = 7;
    table.bwProxy = 9;
    table.thresholdBytes = 4096;

    // The threshold is inclusive: exactly S goes to the bandwidth
    // proxy, one byte less to the latency proxy.
    EXPECT_EQ(table.route(4096), table.bwProxy);
    EXPECT_EQ(table.route(4095), table.latProxy);
    EXPECT_EQ(table.route(4097), table.bwProxy);
    EXPECT_EQ(table.route(0), table.latProxy);
}

TEST(Routing, ZeroThresholdSendsEverythingToBandwidthProxy)
{
    RoutingTable table;
    table.latProxy = 7;
    table.bwProxy = 9;
    table.thresholdBytes = 0;
    EXPECT_EQ(table.route(0), table.bwProxy);
    EXPECT_EQ(table.route(1), table.bwProxy);
    EXPECT_EQ(table.route(1 << 30), table.bwProxy);
}

/** Property sweep over worker counts. */
class WorkerSweep : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(WorkerSweep, PlanBeatsExtremes)
{
    auto in = baseInputs();
    in.workers = GetParam();
    const auto plan = planDualSync(in);
    EXPECT_LE(plan.predictedIterationSeconds,
              predictedIterationSeconds(in, 0) + 1e-12);
    EXPECT_LE(plan.predictedIterationSeconds,
              predictedIterationSeconds(in, in.totalBytes) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Workers, WorkerSweep,
                         ::testing::Values(2, 3, 4, 8, 16));

} // namespace
