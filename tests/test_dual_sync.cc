/**
 * @file
 * Tests for the dual-synchronization planner.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "coarse/dual_sync.hh"
#include "dl/model_zoo.hh"
#include "sim/logging.hh"

namespace {

using namespace coarse::core;
using coarse::sim::FatalError;

DualSyncInputs
baseInputs()
{
    DualSyncInputs in;
    in.forwardSeconds = 0.030;
    in.backwardSeconds = 0.060;
    in.totalBytes = 400 << 20;
    in.workers = 4;
    in.gpuRingBytesPerSec = 10e9;
    in.proxyRingBytesPerSec = 12e9;
    return in;
}

TEST(DualSync, PredictionMatchesFormula)
{
    const auto in = baseInputs();
    const double c = 2.0 * 3.0 / 4.0;
    const std::uint64_t m = 100 << 20;
    const double gpuPath = in.forwardSeconds + in.backwardSeconds
        + c * double(in.totalBytes - m) / in.gpuRingBytesPerSec;
    const double proxyPath =
        in.forwardSeconds + c * double(m) / in.proxyRingBytesPerSec;
    EXPECT_DOUBLE_EQ(predictedIterationSeconds(in, m),
                     std::max(gpuPath, proxyPath));
}

TEST(DualSync, PlanIsNoWorseThanBruteForce)
{
    const auto in = baseInputs();
    const auto plan = planDualSync(in);
    // Scan m densely; the planner's prediction must be within a hair
    // of the best scanned value.
    double best = 1e30;
    for (std::uint64_t m = 0; m <= in.totalBytes;
         m += in.totalBytes / 1000) {
        best = std::min(best, predictedIterationSeconds(in, m));
    }
    EXPECT_LE(plan.predictedIterationSeconds, best * 1.0001);
    EXPECT_EQ(plan.proxyBytes + plan.gpuBytes, in.totalBytes);
}

TEST(DualSync, FastProxiesTakeEverything)
{
    auto in = baseInputs();
    in.proxyRingBytesPerSec = 1e13; // near-free proxy sync
    const auto plan = planDualSync(in);
    EXPECT_EQ(plan.proxyBytes, in.totalBytes);
    EXPECT_EQ(plan.gpuBytes, 0u);
}

TEST(DualSync, SlowProxiesStillOffloadWhatHidesUnderBackward)
{
    // Even slow proxies take the bytes whose sync hides under the
    // backward pass; only beyond that does GPU sync win.
    auto in = baseInputs();
    in.proxyRingBytesPerSec = 1e9;
    in.gpuRingBytesPerSec = 50e9;
    const auto plan = planDualSync(in);
    EXPECT_GT(plan.gpuBytes, 0u);
    EXPECT_GT(plan.proxyBytes, 0u);
    // And the split beats both extremes.
    EXPECT_LT(plan.predictedIterationSeconds,
              predictedIterationSeconds(in, in.totalBytes));
    EXPECT_LT(plan.predictedIterationSeconds,
              predictedIterationSeconds(in, 0));
}

TEST(DualSync, SingleWorkerNeedsNoSync)
{
    auto in = baseInputs();
    in.workers = 1;
    const auto plan = planDualSync(in);
    EXPECT_DOUBLE_EQ(plan.predictedIterationSeconds,
                     in.forwardSeconds + in.backwardSeconds);
}

TEST(DualSync, RejectsBadInputs)
{
    auto in = baseInputs();
    in.workers = 0;
    EXPECT_THROW(planDualSync(in), FatalError);
    in = baseInputs();
    in.gpuRingBytesPerSec = 0.0;
    EXPECT_THROW(planDualSync(in), FatalError);
    in = baseInputs();
    EXPECT_THROW(predictedIterationSeconds(in, in.totalBytes + 1),
                 FatalError);
}

TEST(DualSync, AssignTensorsCoversRequestedBytes)
{
    const auto model = coarse::dl::makeResNet50();
    const std::uint64_t n = model.parameterBytes();

    EXPECT_EQ(assignTensors(model, 0), model.tensors.size());
    EXPECT_EQ(assignTensors(model, n), 0u);

    const std::size_t split = assignTensors(model, n / 2);
    std::uint64_t proxyBytes = 0;
    for (std::size_t t = split; t < model.tensors.size(); ++t)
        proxyBytes += model.tensors[t].bytes();
    EXPECT_GE(proxyBytes, n / 2);
    // Removing the boundary tensor drops below the target: minimal
    // cover.
    if (split < model.tensors.size()) {
        EXPECT_LT(proxyBytes - model.tensors[split].bytes(), n / 2);
    }
}

/** Property sweep over worker counts. */
class WorkerSweep : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(WorkerSweep, PlanBeatsExtremes)
{
    auto in = baseInputs();
    in.workers = GetParam();
    const auto plan = planDualSync(in);
    EXPECT_LE(plan.predictedIterationSeconds,
              predictedIterationSeconds(in, 0) + 1e-12);
    EXPECT_LE(plan.predictedIterationSeconds,
              predictedIterationSeconds(in, in.totalBytes) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Workers, WorkerSweep,
                         ::testing::Values(2, 3, 4, 8, 16));

} // namespace
