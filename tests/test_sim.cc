/**
 * @file
 * Unit tests for the simulation kernel: event queue, ticks, stats,
 * logging, RNG.
 */

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <sstream>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"
#include "sim/ticks.hh"

namespace {

using namespace coarse::sim;

TEST(Ticks, RoundTripConversions)
{
    EXPECT_EQ(fromSeconds(1.0), kTicksPerSec);
    EXPECT_EQ(fromMicroseconds(1.0), kTicksPerUs);
    EXPECT_EQ(fromNanoseconds(1.0), kTicksPerNs);
    EXPECT_DOUBLE_EQ(toSeconds(kTicksPerSec), 1.0);
    EXPECT_DOUBLE_EQ(toMilliseconds(kTicksPerMs), 1.0);
    EXPECT_DOUBLE_EQ(toNanoseconds(kTicksPerNs), 1.0);
}

TEST(Ticks, FromSecondsRounds)
{
    // 1.5 ticks rounds to 2.
    EXPECT_EQ(fromSeconds(1.5e-12), 2u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue queue;
    std::vector<int> order;
    queue.schedule(30, [&] { order.push_back(3); });
    queue.schedule(10, [&] { order.push_back(1); });
    queue.schedule(20, [&] { order.push_back(2); });
    queue.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(queue.now(), 30u);
}

TEST(EventQueue, SameTickUsesPriorityThenFifo)
{
    EventQueue queue;
    std::vector<int> order;
    queue.schedule(10, [&] { order.push_back(1); });
    queue.schedule(10, [&] { order.push_back(2); });
    queue.schedule(10, [&] { order.push_back(0); }, -1);
    queue.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, FatalInsideRunCarriesTheTick)
{
    EventQueue queue;
    queue.schedule(1234, [] { fatal("boom"); });
    try {
        queue.run();
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("boom"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("(at tick 1234)"),
                  std::string::npos);
    }
}

TEST(EventQueue, PanicInsideStepCarriesTheTick)
{
    EventQueue queue;
    queue.schedule(77, [] { panic("bug"); });
    try {
        queue.step();
        FAIL() << "expected PanicError";
    } catch (const PanicError &e) {
        EXPECT_NE(std::string(e.what()).find("(at tick 77)"),
                  std::string::npos);
    }
}

TEST(Logging, FatalOutsideAnyRunHasNoTickStamp)
{
    try {
        fatal("standalone");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_EQ(std::string(e.what()), "standalone");
    }
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue queue;
    bool ran = false;
    auto handle = queue.schedule(10, [&] { ran = true; });
    EXPECT_TRUE(handle.pending());
    handle.cancel();
    EXPECT_FALSE(handle.pending());
    queue.run();
    EXPECT_FALSE(ran);
    EXPECT_EQ(queue.executedCount(), 0u);
}

TEST(EventQueue, CancelAfterRunIsNoop)
{
    EventQueue queue;
    auto handle = queue.schedule(10, [] {});
    queue.run();
    EXPECT_FALSE(handle.pending());
    handle.cancel(); // must not crash or corrupt anything
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue queue;
    int fired = 0;
    queue.schedule(10, [&] {
        ++fired;
        queue.scheduleIn(5, [&] { ++fired; });
    });
    queue.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(queue.now(), 15u);
}

TEST(EventQueue, RunRespectsLimit)
{
    EventQueue queue;
    int fired = 0;
    queue.schedule(10, [&] { ++fired; });
    queue.schedule(100, [&] { ++fired; });
    EXPECT_EQ(queue.run(50), 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(queue.now(), 10u);
    EXPECT_EQ(queue.run(), 1u);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, SchedulingInPastPanics)
{
    EventQueue queue;
    queue.schedule(10, [] {});
    queue.run();
    EXPECT_THROW(queue.schedule(5, [] {}), PanicError);
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue queue;
    int fired = 0;
    queue.schedule(1, [&] { ++fired; });
    queue.schedule(2, [&] { ++fired; });
    EXPECT_TRUE(queue.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(queue.step());
    EXPECT_FALSE(queue.step());
}

TEST(EventQueue, PendingCountTracksCancellations)
{
    EventQueue queue;
    auto a = queue.schedule(1, [] {});
    auto b = queue.schedule(2, [] {});
    (void)b;
    EXPECT_EQ(queue.pendingCount(), 2u);
    EXPECT_FALSE(queue.empty());
    a.cancel();
    EXPECT_EQ(queue.pendingCount(), 1u); // cancel decrements eagerly
    EXPECT_FALSE(queue.empty());
    a.cancel(); // idempotent
    EXPECT_EQ(queue.pendingCount(), 1u);
    EXPECT_EQ(queue.run(), 1u);
    EXPECT_EQ(queue.pendingCount(), 0u);
    EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, EmptyReflectsCancelledQueue)
{
    // A queue whose every event was cancelled must report empty even
    // though stale heap entries have not surfaced yet.
    EventQueue queue;
    auto a = queue.schedule(5, [] {});
    auto b = queue.schedule(6, [] {});
    a.cancel();
    b.cancel();
    EXPECT_TRUE(queue.empty());
    EXPECT_EQ(queue.pendingCount(), 0u);
    EXPECT_EQ(queue.run(), 0u);
}

struct FireCounter
{
    int fires = 0;
    void bump() { ++fires; }
};

TEST(EventQueue, MemberEventFiresAndRearms)
{
    EventQueue queue;
    FireCounter counter;
    MemberEvent<FireCounter, &FireCounter::bump> event{counter, "bump"};
    EXPECT_FALSE(event.scheduled());
    queue.schedule(event, 10);
    EXPECT_TRUE(event.scheduled());
    EXPECT_EQ(event.when(), 10u);
    EXPECT_STREQ(event.name(), "bump");
    queue.run();
    EXPECT_EQ(counter.fires, 1);
    EXPECT_FALSE(event.scheduled());
    // Same object re-arms with no allocation or reconstruction.
    queue.schedule(event, 20);
    queue.run();
    EXPECT_EQ(counter.fires, 2);
}

TEST(EventQueue, ScheduleArmedEventPanics)
{
    EventQueue queue;
    FireCounter counter;
    MemberEvent<FireCounter, &FireCounter::bump> event{counter};
    queue.schedule(event, 10);
    EXPECT_THROW(queue.schedule(event, 20), PanicError);
    queue.run();
    EXPECT_EQ(counter.fires, 1);
}

TEST(EventQueue, RescheduleMovesPendingEvent)
{
    EventQueue queue;
    std::vector<int> order;
    LambdaEvent moved{[&] { order.push_back(1); }};
    LambdaEvent fixed{[&] { order.push_back(2); }};
    queue.schedule(moved, 10);
    queue.schedule(fixed, 20);
    queue.reschedule(moved, 30); // 10 -> 30: now fires after `fixed`
    EXPECT_EQ(queue.pendingCount(), 2u);
    queue.run();
    EXPECT_EQ(order, (std::vector<int>{2, 1}));
    EXPECT_EQ(queue.executedCount(), 2u);
}

TEST(EventQueue, DescheduleDisarmsIntrusiveEvent)
{
    EventQueue queue;
    FireCounter counter;
    MemberEvent<FireCounter, &FireCounter::bump> event{counter};
    queue.schedule(event, 10);
    queue.deschedule(event);
    EXPECT_FALSE(event.scheduled());
    EXPECT_EQ(queue.pendingCount(), 0u);
    queue.deschedule(event); // idempotent
    queue.run();
    EXPECT_EQ(counter.fires, 0);
    // The disarmed event is immediately reusable.
    queue.schedule(event, 20);
    queue.run();
    EXPECT_EQ(counter.fires, 1);
}

TEST(EventQueue, EventMayRearmItselfFromFire)
{
    EventQueue queue;
    int fires = 0;
    Event *self = nullptr;
    LambdaEvent event{[&] {
        if (++fires < 3)
            queue.scheduleIn(*self, 5);
    }};
    self = &event;
    queue.schedule(event, 10);
    queue.run();
    EXPECT_EQ(fires, 3);
    EXPECT_EQ(queue.now(), 20u);
}

TEST(EventQueue, DestroyingArmedEventPurgesQueue)
{
    EventQueue queue;
    int fires = 0;
    {
        LambdaEvent doomed{[&] { ++fires; }};
        queue.schedule(doomed, 10);
        EXPECT_EQ(queue.pendingCount(), 1u);
    } // armed event destroyed: must scrub its heap entry
    EXPECT_EQ(queue.pendingCount(), 0u);
    EXPECT_EQ(queue.run(), 0u);
    EXPECT_EQ(fires, 0);
}

TEST(EventQueue, PeriodicEventFiresUntilStopped)
{
    EventQueue queue;
    struct Ctx
    {
        EventQueue *queue;
        PeriodicEvent *event;
        int ticks = 0;
    } ctx;
    PeriodicEvent heartbeat([](void *opaque) {
        auto *c = static_cast<Ctx *>(opaque);
        if (++c->ticks == 4)
            c->event->stop();
    }, &ctx, 100);
    ctx.queue = &queue;
    ctx.event = &heartbeat;
    heartbeat.start(queue);
    queue.run();
    EXPECT_EQ(ctx.ticks, 4);
    EXPECT_EQ(heartbeat.firings(), 4u);
    EXPECT_EQ(queue.now(), 400u);
    EXPECT_FALSE(heartbeat.scheduled());
}

TEST(EventQueue, PeriodicEventRetunesInterval)
{
    EventQueue queue;
    struct Ctx
    {
        PeriodicEvent *event;
        std::vector<Tick> at;
        EventQueue *queue;
    } ctx;
    PeriodicEvent event;
    event.bind([](void *opaque) {
        auto *c = static_cast<Ctx *>(opaque);
        c->at.push_back(c->queue->now());
        if (c->at.size() == 2)
            c->event->setInterval(50); // from the next re-arm on
        if (c->at.size() == 4)
            c->event->stop();
    }, &ctx);
    event.setInterval(100);
    ctx.event = &event;
    ctx.queue = &queue;
    event.startAt(queue, 10);
    queue.run();
    // 10, 110 (interval 100), then the retune: 110+100 was already
    // armed before the callback ran, so 210, then 210+50.
    EXPECT_EQ(ctx.at, (std::vector<Tick>{10, 110, 210, 260}));
}

TEST(EventQueue, PostedCallablesRecycleThroughPool)
{
    EventQueue queue;
    int fired = 0;
    // Sequential one-shots reuse the same pool slot: capacity stays
    // at a single slab no matter how many are posted over time.
    for (int i = 0; i < 1000; ++i) {
        queue.postIn(1, [&fired] { ++fired; });
        queue.run();
    }
    EXPECT_EQ(fired, 1000);
    EXPECT_EQ(queue.poolInUse(), 0u);
    EXPECT_LE(queue.poolCapacity(), 256u);
}

TEST(EventQueue, CancelledHandleReturnsEventToPool)
{
    EventQueue queue;
    auto handle = queue.schedule(10, [] { FAIL() << "cancelled"; });
    EXPECT_EQ(queue.poolInUse(), 1u);
    handle.cancel();
    EXPECT_EQ(queue.poolInUse(), 0u);
    queue.run();
}

TEST(EventQueue, PostedEventMayPostFromCallback)
{
    EventQueue queue;
    std::vector<int> order;
    queue.post(10, [&] {
        order.push_back(1);
        queue.postIn(5, [&] { order.push_back(2); });
    });
    queue.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(queue.now(), 15u);
}

TEST(EventQueue, LargeCallablesFallBackToHeapStorage)
{
    EventQueue queue;
    // Capture well past PooledEvent::kInlineBytes.
    std::array<std::uint64_t, 32> payload{};
    payload.fill(7);
    std::uint64_t sum = 0;
    queue.post(1, [payload, &sum] {
        for (auto v : payload)
            sum += v;
    });
    queue.run();
    EXPECT_EQ(sum, 7u * 32u);
    EXPECT_EQ(queue.poolInUse(), 0u);
}

/**
 * Determinism stress: thousands of schedule/cancel/re-arm operations
 * at heavily colliding (tick, priority) keys must execute in exactly
 * the same order on every run.
 */
std::vector<std::uint64_t>
stressRun()
{
    EventQueue queue;
    Random rng(0xc0a45e);
    std::vector<std::uint64_t> order;
    std::vector<EventHandle> handles;
    handles.reserve(10000);

    // Interleaved one-shots: collide on 16 ticks x 3 priorities, and
    // cancel a random earlier handle every fourth schedule.
    for (std::uint64_t i = 0; i < 10000; ++i) {
        const Tick when = 1000 + 10 * rng.uniformInt(0, 15);
        const auto prio =
            static_cast<EventPriority>(rng.uniformInt(0, 2)) - 1;
        handles.push_back(queue.schedule(
            when, [&order, i] { order.push_back(i); }, prio));
        if (i % 4 == 0)
            handles[rng.uniformInt(0, i)].cancel();
    }

    // Intrusive events re-armed (moved) several times before firing,
    // landing on the same colliding ticks.
    FireCounter counter;
    std::vector<
        std::unique_ptr<MemberEvent<FireCounter, &FireCounter::bump>>>
        members;
    for (int m = 0; m < 64; ++m) {
        members.push_back(std::make_unique<
                          MemberEvent<FireCounter, &FireCounter::bump>>(
            counter));
        queue.schedule(*members.back(),
                       1000 + 10 * rng.uniformInt(0, 15));
    }
    for (int moves = 0; moves < 256; ++moves) {
        auto &event = *members[rng.uniformInt(0, members.size() - 1)];
        queue.reschedule(event, 1000 + 10 * rng.uniformInt(0, 15));
    }

    queue.run();
    order.push_back(queue.executedCount());
    order.push_back(counter.fires);
    order.push_back(queue.now());
    return order;
}

TEST(EventQueue, DeterministicUnderScheduleCancelRearmStress)
{
    const auto first = stressRun();
    const auto second = stressRun();
    EXPECT_EQ(first, second);
    // ~1/4 of 10000 one-shots were cancelled; all members fired.
    EXPECT_GT(first.size(), 7000u);
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad user input: ", 42), FatalError);
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("bug ", 1, " detected"), PanicError);
}

TEST(Logging, LevelFilterSuppressesBelowThreshold)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::None);
    // No crash and no way to observe output; exercise the paths.
    Logger logger("test");
    logger.warn("suppressed");
    logger.trace("suppressed");
    setLogLevel(LogLevel::Trace);
    logger.debug("emitted");
    setLogLevel(before);
    EXPECT_EQ(logger.component(), "test");
}

TEST(Logging, MessagesAreConcatenated)
{
    try {
        fatal("a", 1, "b", 2.5);
        FAIL() << "fatal must throw";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "a1b2.5");
    }
}

TEST(Stats, CounterAndScalar)
{
    Counter c;
    c.inc();
    c.inc(4);
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);

    Scalar s;
    s.set(2.0);
    s.add(0.5);
    EXPECT_DOUBLE_EQ(s.value(), 2.5);
}

TEST(Stats, DistributionTracksMoments)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    d.sample(1.0);
    d.sample(3.0);
    d.sample(2.0);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 2.0);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 3.0);
    EXPECT_DOUBLE_EQ(d.total(), 6.0);
}

TEST(Stats, HistogramBucketsAndOverflow)
{
    Histogram h(0.0, 10.0, 5);
    h.sample(-1.0);
    h.sample(0.0);
    h.sample(9.999);
    h.sample(10.0);
    h.sample(5.0);
    EXPECT_EQ(h.samples(), 5u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(4), 1u);
    EXPECT_EQ(h.bucket(2), 1u);
    EXPECT_DOUBLE_EQ(h.bucketLow(1), 2.0);
}

TEST(Stats, HistogramRejectsBadRange)
{
    EXPECT_THROW(Histogram(1.0, 1.0, 4), FatalError);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), FatalError);
}

TEST(Stats, GroupDumpAndLookup)
{
    StatGroup root("root");
    Counter c;
    c.inc(7);
    root.addCounter("events", c);
    Scalar s;
    s.set(1.5);
    root.subgroup("child").addScalar("value", s);
    root.addFormula("twice", [&] { return 2.0 * s.value(); });

    EXPECT_DOUBLE_EQ(root.lookup("events"), 7.0);
    EXPECT_DOUBLE_EQ(root.lookup("child.value"), 1.5);
    EXPECT_DOUBLE_EQ(root.lookup("twice"), 3.0);
    EXPECT_THROW(root.lookup("missing"), FatalError);

    std::ostringstream oss;
    root.dump(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("root.events 7"), std::string::npos);
    EXPECT_NE(out.find("root.child.value 1.5"), std::string::npos);
}

TEST(Stats, DistributionRegistersDottedLeaves)
{
    StatGroup root("root");
    Distribution d;
    d.sample(4.0);
    root.addDistribution("lat", d);
    EXPECT_DOUBLE_EQ(root.lookup("lat.mean"), 4.0);
    EXPECT_DOUBLE_EQ(root.lookup("lat.count"), 1.0);
}

TEST(Random, DeterministicForSameSeed)
{
    Random a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.uniformInt(0, 1000000), b.uniformInt(0, 1000000));
}

TEST(Random, DiffersAcrossSeeds)
{
    Random a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.uniformInt(0, 1000000) == b.uniformInt(0, 1000000))
            ++same;
    }
    EXPECT_LT(same, 5);
}

TEST(Random, UniformRealInRange)
{
    Random r(7);
    for (int i = 0; i < 1000; ++i) {
        const double v = r.uniformReal(2.0, 3.0);
        EXPECT_GE(v, 2.0);
        EXPECT_LT(v, 3.0);
    }
}

TEST(Simulation, RunsEventsAndTracksTime)
{
    Simulation sim;
    int fired = 0;
    sim.events().schedule(fromSeconds(1e-6), [&] { ++fired; });
    EXPECT_EQ(sim.run(), 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.now(), fromSeconds(1e-6));
}

} // namespace
