/**
 * @file
 * Unit tests for the simulation kernel: event queue, ticks, stats,
 * logging, RNG.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"
#include "sim/ticks.hh"

namespace {

using namespace coarse::sim;

TEST(Ticks, RoundTripConversions)
{
    EXPECT_EQ(fromSeconds(1.0), kTicksPerSec);
    EXPECT_EQ(fromMicroseconds(1.0), kTicksPerUs);
    EXPECT_EQ(fromNanoseconds(1.0), kTicksPerNs);
    EXPECT_DOUBLE_EQ(toSeconds(kTicksPerSec), 1.0);
    EXPECT_DOUBLE_EQ(toMilliseconds(kTicksPerMs), 1.0);
    EXPECT_DOUBLE_EQ(toNanoseconds(kTicksPerNs), 1.0);
}

TEST(Ticks, FromSecondsRounds)
{
    // 1.5 ticks rounds to 2.
    EXPECT_EQ(fromSeconds(1.5e-12), 2u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue queue;
    std::vector<int> order;
    queue.schedule(30, [&] { order.push_back(3); });
    queue.schedule(10, [&] { order.push_back(1); });
    queue.schedule(20, [&] { order.push_back(2); });
    queue.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(queue.now(), 30u);
}

TEST(EventQueue, SameTickUsesPriorityThenFifo)
{
    EventQueue queue;
    std::vector<int> order;
    queue.schedule(10, [&] { order.push_back(1); });
    queue.schedule(10, [&] { order.push_back(2); });
    queue.schedule(10, [&] { order.push_back(0); }, -1);
    queue.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue queue;
    bool ran = false;
    auto handle = queue.schedule(10, [&] { ran = true; });
    EXPECT_TRUE(handle.pending());
    handle.cancel();
    EXPECT_FALSE(handle.pending());
    queue.run();
    EXPECT_FALSE(ran);
    EXPECT_EQ(queue.executedCount(), 0u);
}

TEST(EventQueue, CancelAfterRunIsNoop)
{
    EventQueue queue;
    auto handle = queue.schedule(10, [] {});
    queue.run();
    EXPECT_FALSE(handle.pending());
    handle.cancel(); // must not crash or corrupt anything
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue queue;
    int fired = 0;
    queue.schedule(10, [&] {
        ++fired;
        queue.scheduleIn(5, [&] { ++fired; });
    });
    queue.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(queue.now(), 15u);
}

TEST(EventQueue, RunRespectsLimit)
{
    EventQueue queue;
    int fired = 0;
    queue.schedule(10, [&] { ++fired; });
    queue.schedule(100, [&] { ++fired; });
    EXPECT_EQ(queue.run(50), 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(queue.now(), 10u);
    EXPECT_EQ(queue.run(), 1u);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, SchedulingInPastPanics)
{
    EventQueue queue;
    queue.schedule(10, [] {});
    queue.run();
    EXPECT_THROW(queue.schedule(5, [] {}), PanicError);
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue queue;
    int fired = 0;
    queue.schedule(1, [&] { ++fired; });
    queue.schedule(2, [&] { ++fired; });
    EXPECT_TRUE(queue.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(queue.step());
    EXPECT_FALSE(queue.step());
}

TEST(EventQueue, PendingCountTracksCancellations)
{
    EventQueue queue;
    auto a = queue.schedule(1, [] {});
    auto b = queue.schedule(2, [] {});
    (void)b;
    EXPECT_EQ(queue.pendingCount(), 2u);
    a.cancel();
    EXPECT_EQ(queue.pendingCount(), 2u); // lazily reaped
    queue.run();
    EXPECT_EQ(queue.pendingCount(), 0u);
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad user input: ", 42), FatalError);
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("bug ", 1, " detected"), PanicError);
}

TEST(Logging, LevelFilterSuppressesBelowThreshold)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::None);
    // No crash and no way to observe output; exercise the paths.
    Logger logger("test");
    logger.warn("suppressed");
    logger.trace("suppressed");
    setLogLevel(LogLevel::Trace);
    logger.debug("emitted");
    setLogLevel(before);
    EXPECT_EQ(logger.component(), "test");
}

TEST(Logging, MessagesAreConcatenated)
{
    try {
        fatal("a", 1, "b", 2.5);
        FAIL() << "fatal must throw";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "a1b2.5");
    }
}

TEST(Stats, CounterAndScalar)
{
    Counter c;
    c.inc();
    c.inc(4);
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);

    Scalar s;
    s.set(2.0);
    s.add(0.5);
    EXPECT_DOUBLE_EQ(s.value(), 2.5);
}

TEST(Stats, DistributionTracksMoments)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    d.sample(1.0);
    d.sample(3.0);
    d.sample(2.0);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 2.0);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 3.0);
    EXPECT_DOUBLE_EQ(d.total(), 6.0);
}

TEST(Stats, HistogramBucketsAndOverflow)
{
    Histogram h(0.0, 10.0, 5);
    h.sample(-1.0);
    h.sample(0.0);
    h.sample(9.999);
    h.sample(10.0);
    h.sample(5.0);
    EXPECT_EQ(h.samples(), 5u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(4), 1u);
    EXPECT_EQ(h.bucket(2), 1u);
    EXPECT_DOUBLE_EQ(h.bucketLow(1), 2.0);
}

TEST(Stats, HistogramRejectsBadRange)
{
    EXPECT_THROW(Histogram(1.0, 1.0, 4), FatalError);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), FatalError);
}

TEST(Stats, GroupDumpAndLookup)
{
    StatGroup root("root");
    Counter c;
    c.inc(7);
    root.addCounter("events", c);
    Scalar s;
    s.set(1.5);
    root.subgroup("child").addScalar("value", s);
    root.addFormula("twice", [&] { return 2.0 * s.value(); });

    EXPECT_DOUBLE_EQ(root.lookup("events"), 7.0);
    EXPECT_DOUBLE_EQ(root.lookup("child.value"), 1.5);
    EXPECT_DOUBLE_EQ(root.lookup("twice"), 3.0);
    EXPECT_THROW(root.lookup("missing"), FatalError);

    std::ostringstream oss;
    root.dump(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("root.events 7"), std::string::npos);
    EXPECT_NE(out.find("root.child.value 1.5"), std::string::npos);
}

TEST(Stats, DistributionRegistersDottedLeaves)
{
    StatGroup root("root");
    Distribution d;
    d.sample(4.0);
    root.addDistribution("lat", d);
    EXPECT_DOUBLE_EQ(root.lookup("lat.mean"), 4.0);
    EXPECT_DOUBLE_EQ(root.lookup("lat.count"), 1.0);
}

TEST(Random, DeterministicForSameSeed)
{
    Random a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.uniformInt(0, 1000000), b.uniformInt(0, 1000000));
}

TEST(Random, DiffersAcrossSeeds)
{
    Random a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.uniformInt(0, 1000000) == b.uniformInt(0, 1000000))
            ++same;
    }
    EXPECT_LT(same, 5);
}

TEST(Random, UniformRealInRange)
{
    Random r(7);
    for (int i = 0; i < 1000; ++i) {
        const double v = r.uniformReal(2.0, 3.0);
        EXPECT_GE(v, 2.0);
        EXPECT_LT(v, 3.0);
    }
}

TEST(Simulation, RunsEventsAndTracksTime)
{
    Simulation sim;
    int fired = 0;
    sim.events().schedule(fromSeconds(1e-6), [&] { ++fired; });
    EXPECT_EQ(sim.run(), 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.now(), fromSeconds(1e-6));
}

} // namespace
