/**
 * @file
 * Tests for the Table I machine presets: structure, pairing,
 * locality/anti-locality bandwidth character, multi-node variants.
 */

#include <gtest/gtest.h>

#include "coarse/engine.hh"
#include "dl/model_zoo.hh"
#include "fabric/machine.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace {

using namespace coarse::fabric;
using coarse::sim::FatalError;
using coarse::sim::Simulation;

TEST(Machine, AwsT4Structure)
{
    Simulation sim;
    auto m = makeAwsT4(sim);
    EXPECT_EQ(m->name(), "aws_t4");
    EXPECT_EQ(m->gpuModel(), "T4");
    EXPECT_FALSE(m->p2pSupported());
    EXPECT_EQ(m->workers().size(), 4u);
    EXPECT_EQ(m->memDevices().size(), 4u);
    EXPECT_EQ(m->hostCpus().size(), 1u);
    EXPECT_EQ(m->serverNodeCount(), 1u);
}

TEST(Machine, SdscP100Structure)
{
    Simulation sim;
    auto m = makeSdscP100(sim);
    EXPECT_EQ(m->gpuModel(), "P100");
    EXPECT_TRUE(m->p2pSupported());
    EXPECT_EQ(m->workers().size(), 2u);
    EXPECT_EQ(m->memDevices().size(), 2u);
}

TEST(Machine, AwsV100Structure)
{
    Simulation sim;
    auto m = makeAwsV100(sim);
    EXPECT_EQ(m->gpuModel(), "V100");
    EXPECT_EQ(m->workers().size(), 4u);
    EXPECT_EQ(m->memDevices().size(), 4u);
}

TEST(Machine, PairingIsLocal)
{
    Simulation sim;
    auto m = makeSdscP100(sim);
    for (NodeId worker : m->workers()) {
        const NodeId dev = m->pairedMemDevice(worker);
        // Paired devices share a switch: two hops apart.
        EXPECT_EQ(m->topology().route(worker, dev).size(), 2u);
    }
}

TEST(Machine, SdscHasConventionalLocality)
{
    Simulation sim;
    auto m = makeSdscP100(sim);
    Topology &topo = m->topology();
    const NodeId w0 = m->workers()[0];
    const NodeId localDev = m->pairedMemDevice(w0);
    const NodeId remoteDev = m->pairedMemDevice(m->workers()[1]);
    const std::uint64_t size = 16 << 20;
    EXPECT_GT(topo.pathBandwidth(w0, localDev, size),
              topo.pathBandwidth(w0, remoteDev, size));
}

TEST(Machine, AwsV100HasAntiLocality)
{
    Simulation sim;
    auto m = makeAwsV100(sim);
    Topology &topo = m->topology();
    const NodeId w0 = m->workers()[0];
    const NodeId localDev = m->pairedMemDevice(w0);
    const NodeId remoteDev = m->pairedMemDevice(m->workers()[2]);
    const std::uint64_t size = 16 << 20;
    // Remote beats local on the PCIe path (Fig. 8a).
    EXPECT_LT(topo.pathBandwidth(w0, localDev, size, kNoNvLink),
              topo.pathBandwidth(w0, remoteDev, size, kNoNvLink));
}

TEST(Machine, V100NvlinkFasterThanPcieForWorkers)
{
    Simulation sim;
    auto m = makeAwsV100(sim);
    Topology &topo = m->topology();
    const NodeId w0 = m->workers()[0];
    const NodeId w1 = m->workers()[1];
    const std::uint64_t size = 16 << 20;
    EXPECT_GT(topo.pathBandwidth(w0, w1, size, kAllLinks),
              topo.pathBandwidth(w0, w1, size, kNoNvLink));
}

TEST(Machine, V100NvlinkRingHasAMissingSegment)
{
    Simulation sim;
    auto m = makeAwsV100(sim);
    Topology &topo = m->topology();
    const auto &w = m->workers();
    // Adjacent pairs are NVLink-connected except the wrap-around.
    EXPECT_EQ(topo.route(w[0], w[1], kAllLinks).size(), 1u);
    EXPECT_EQ(topo.route(w[1], w[2], kAllLinks).size(), 1u);
    EXPECT_EQ(topo.route(w[2], w[3], kAllLinks).size(), 1u);
    EXPECT_GT(topo.route(w[3], w[0], kAllLinks).size(), 1u);
}

TEST(Machine, T4PeersArePenalized)
{
    Simulation sim;
    auto m = makeAwsT4(sim);
    Topology &topo = m->topology();
    const NodeId w0 = m->workers()[0];
    const NodeId w1 = m->workers()[1];
    const NodeId cpu = m->hostCpus()[0];
    const std::uint64_t size = 16 << 20;
    // Peer transfers bounce through host memory and run slower than
    // the direct GPU<->CPU path.
    EXPECT_LT(topo.pathBandwidth(w0, w1, size),
              topo.pathBandwidth(w0, cpu, size));
}

TEST(Machine, SharedMemDeviceConfig)
{
    Simulation sim;
    MachineOptions options;
    options.workersPerMemDevice = 2;
    auto m = makeAwsV100(sim, options);
    EXPECT_EQ(m->workers().size(), 4u);
    EXPECT_EQ(m->memDevices().size(), 2u);
    // Both workers of a pair share one device.
    EXPECT_EQ(m->pairedMemDevice(m->workers()[0]),
              m->pairedMemDevice(m->workers()[1]));
    EXPECT_NE(m->pairedMemDevice(m->workers()[0]),
              m->pairedMemDevice(m->workers()[2]));
}

TEST(Machine, MultiNodeAddsNicsAndNetwork)
{
    Simulation sim;
    MachineOptions options;
    options.nodes = 2;
    auto m = makeAwsV100(sim, options);
    EXPECT_EQ(m->serverNodeCount(), 2u);
    EXPECT_EQ(m->workers().size(), 8u);
    EXPECT_EQ(m->memDevices().size(), 8u);
    EXPECT_EQ(m->nics().size(), 2u);
    EXPECT_EQ(m->hostCpus().size(), 2u);

    // Cross-node path exists and crosses the NICs.
    const NodeId w0 = m->workers()[0];
    const NodeId w4 = m->workers()[4];
    EXPECT_EQ(m->serverNodeOf(w0), 0u);
    EXPECT_EQ(m->serverNodeOf(w4), 1u);
    EXPECT_GE(m->topology().route(w0, w4).size(), 4u);

    // Intra-node bandwidth beats cross-node bandwidth.
    const std::uint64_t size = 16 << 20;
    EXPECT_GT(m->topology().pathBandwidth(w0, m->workers()[2], size),
              m->topology().pathBandwidth(w0, w4, size));
}

TEST(Machine, LookupByName)
{
    Simulation sim;
    EXPECT_EQ(makeMachine("aws_t4", sim)->name(), "aws_t4");
    EXPECT_EQ(makeMachine("sdsc_p100", sim)->name(), "sdsc_p100");
    EXPECT_EQ(makeMachine("aws_v100", sim)->name(), "aws_v100");
    EXPECT_THROW(makeMachine("dgx_a100", sim), FatalError);
}

TEST(Machine, RejectsBadSharingRatio)
{
    Simulation sim;
    MachineOptions options;
    options.workersPerMemDevice = 3; // 4 workers not divisible by 3
    EXPECT_THROW(makeAwsV100(sim, options), FatalError);
    options.workersPerMemDevice = 0;
    EXPECT_THROW(makeAwsV100(sim, options), FatalError);
}

TEST(Machine, PartitionTableAssignsRoles)
{
    Simulation sim;
    using R = GpuRole;
    // 8 GPUs: 5 workers, 3 memory devices (the paper's 2:1-ish mix).
    auto m = makeAwsV100Partitioned(
        sim, {R::Worker, R::MemoryDevice, R::Worker, R::Worker,
              R::Worker, R::MemoryDevice, R::Worker,
              R::MemoryDevice});
    EXPECT_EQ(m->workers().size(), 5u);
    EXPECT_EQ(m->memDevices().size(), 3u);
    // First worker pairs with its same-switch device.
    EXPECT_EQ(m->pairedMemDevice(m->workers()[0]),
              m->memDevices()[0]);
    EXPECT_EQ(m->topology()
                  .route(m->workers()[0], m->memDevices()[0])
                  .size(),
              2u);
}

TEST(Machine, PartitionTableKeepsAntiLocality)
{
    Simulation sim;
    using R = GpuRole;
    auto m = makeAwsV100Partitioned(
        sim, {R::Worker, R::MemoryDevice, R::Worker, R::MemoryDevice,
              R::Worker, R::MemoryDevice, R::Worker,
              R::MemoryDevice});
    auto &topo = m->topology();
    const std::uint64_t size = 16 << 20;
    const NodeId w0 = m->workers()[0];
    EXPECT_LT(topo.pathBandwidth(w0, m->memDevices()[0], size,
                                 kNoNvLink),
              topo.pathBandwidth(w0, m->memDevices()[1], size,
                                 kNoNvLink));
}

TEST(Machine, PartitionTableRejectsDegenerateMixes)
{
    Simulation sim;
    using R = GpuRole;
    EXPECT_THROW(makeAwsV100Partitioned(sim, {R::Worker, R::Worker}),
                 FatalError);
    EXPECT_THROW(makeAwsV100Partitioned(
                     sim, {R::MemoryDevice, R::MemoryDevice}),
                 FatalError);
    EXPECT_THROW(makeAwsV100Partitioned(sim, {R::Worker}),
                 FatalError);
}

TEST(Machine, PartitionedMachineTrainsWithCoarse)
{
    Simulation sim;
    using R = GpuRole;
    auto m = makeAwsV100Partitioned(
        sim, {R::Worker, R::Worker, R::Worker, R::MemoryDevice,
              R::Worker, R::Worker, R::MemoryDevice,
              R::MemoryDevice});
    coarse::core::CoarseOptions options;
    options.functionalData = true;
    const auto model = coarse::dl::makeSynthetic(
        "pt", {2048, 1 << 17}, 1e9, 1 << 20);
    coarse::core::CoarseEngine engine(*m, model, 4, options);
    const auto report = engine.run(2, 0);
    EXPECT_FALSE(report.deadlocked);
    EXPECT_EQ(report.workers, 5u);
    EXPECT_EQ(engine.weights(0, 1), engine.weights(4, 1));
}

TEST(Machine, UnpairedWorkerLookupFails)
{
    Simulation sim;
    auto m = makeAwsT4(sim);
    EXPECT_THROW(m->pairedMemDevice(m->hostCpus()[0]), FatalError);
}

} // namespace
