/**
 * @file
 * Property tests for the tensor partitioner.
 */

#include <gtest/gtest.h>

#include "coarse/partition.hh"
#include "sim/logging.hh"

namespace {

using namespace coarse::core;
using coarse::sim::FatalError;

TEST(Partitioner, SmallTensorStaysWhole)
{
    TensorPartitioner partitioner(2 << 20);
    const auto shards = partitioner.partition(3, 1 << 20);
    ASSERT_EQ(shards.size(), 1u);
    EXPECT_EQ(shards[0].tensorIndex, 3u);
    EXPECT_EQ(shards[0].bytes, std::uint64_t(1 << 20));
    EXPECT_EQ(shards[0].shardCount, 1u);
}

TEST(Partitioner, JustBelowTwoShardsStaysWhole)
{
    TensorPartitioner partitioner(2 << 20);
    const auto shards = partitioner.partition(0, (4 << 20) - 1);
    EXPECT_EQ(shards.size(), 1u);
}

TEST(Partitioner, ExactMultipleSplitsEvenly)
{
    TensorPartitioner partitioner(1 << 20);
    const auto shards = partitioner.partition(0, 4 << 20);
    ASSERT_EQ(shards.size(), 4u);
    for (const auto &s : shards)
        EXPECT_EQ(s.bytes, std::uint64_t(1 << 20));
}

TEST(Partitioner, ZeroShardSizeDisablesSplitting)
{
    TensorPartitioner partitioner(0);
    const auto shards = partitioner.partition(0, 100 << 20);
    EXPECT_EQ(shards.size(), 1u);
}

TEST(Partitioner, ZeroByteTensorIsFatal)
{
    TensorPartitioner partitioner(1 << 20);
    EXPECT_THROW(partitioner.partition(0, 0), FatalError);
}

TEST(Partitioner, UnalignedShardSizeIsRoundedToElements)
{
    // A shard target that is not a multiple of the element size must
    // still cut on float boundaries.
    TensorPartitioner partitioner((1 << 20) + 3);
    const auto shards = partitioner.partition(0, 8 << 20);
    for (const auto &s : shards) {
        EXPECT_EQ(s.offset % 4, 0u);
        EXPECT_EQ(s.bytes % 4, 0u);
    }
}

/** Exhaustive property sweep over tensor sizes. */
class PartitionSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PartitionSweep, Invariants)
{
    const std::uint64_t shardSize = 2 << 20;
    TensorPartitioner partitioner(shardSize);
    const std::uint64_t bytes = GetParam();
    const auto shards = partitioner.partition(7, bytes);

    ASSERT_FALSE(shards.empty());
    // Contiguous, complete coverage.
    std::uint64_t offset = 0;
    for (std::size_t i = 0; i < shards.size(); ++i) {
        EXPECT_EQ(shards[i].tensorIndex, 7u);
        EXPECT_EQ(shards[i].shardIndex, i);
        EXPECT_EQ(shards[i].shardCount, shards.size());
        EXPECT_EQ(shards[i].offset, offset);
        offset += shards[i].bytes;
    }
    EXPECT_EQ(offset, bytes);

    // No shard below the saturating size (unless the whole tensor is).
    if (bytes >= shardSize) {
        for (const auto &s : shards)
            EXPECT_GE(s.bytes, shardSize);
    }
    // The last shard absorbs the remainder but stays below 2x.
    if (shards.size() > 1) {
        EXPECT_LT(shards.back().bytes, 2 * shardSize);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, PartitionSweep,
    ::testing::Values(1, 4096, (2 << 20) - 1, 2 << 20, (2 << 20) + 1,
                      (4 << 20) - 1, 4 << 20, (4 << 20) + 1, 10 << 20,
                      (10 << 20) + 12345, 100 << 20, 102760448));

} // namespace
