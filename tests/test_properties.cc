/**
 * @file
 * Randomized property tests: invariants that must hold on arbitrary
 * connected topologies and arbitrary engine configurations. All
 * randomness is seeded, so failures are reproducible.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "coarse/engine.hh"
#include "collective/communicator.hh"
#include "dl/model_zoo.hh"
#include "fabric/machine.hh"
#include "fabric/topology.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"
#include "sim/trace.hh"

namespace {

using namespace coarse::fabric;
using coarse::sim::Random;
using coarse::sim::Simulation;

/** A random connected topology: a tree plus extra random edges. */
struct RandomTopo
{
    RandomTopo(Simulation &sim, std::uint64_t seed, std::size_t nodes)
        : topo(sim)
    {
        Random rng(seed);
        for (std::size_t i = 0; i < nodes; ++i) {
            const auto kind = i == 0 ? NodeKind::HostCpu
                                     : (i % 2 ? NodeKind::Gpu
                                              : NodeKind::PcieSwitch);
            ids.push_back(
                topo.addNode(kind, "n" + std::to_string(i)));
        }
        auto params = [&rng] {
            LinkParams p;
            p.bandwidth = BandwidthCurve::flat(
                gbps(rng.uniformReal(2.0, 25.0)));
            p.latency = coarse::sim::fromNanoseconds(
                rng.uniformReal(100.0, 2000.0));
            return p;
        };
        // Spanning tree keeps it connected.
        for (std::size_t i = 1; i < nodes; ++i)
            topo.addLink(ids[i], ids[rng.uniformInt(0, i - 1)],
                         params());
        // Extra shortcuts.
        for (std::size_t e = 0; e < nodes / 2; ++e) {
            const auto a = rng.uniformInt(0, nodes - 1);
            const auto b = rng.uniformInt(0, nodes - 1);
            if (a != b)
                topo.addLink(ids[a], ids[b], params());
        }
    }

    Topology topo;
    std::vector<NodeId> ids;
};

class TopoSeeds : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TopoSeeds, EveryPairIsRoutable)
{
    Simulation sim;
    RandomTopo random(sim, GetParam(), 12);
    for (NodeId a : random.ids) {
        for (NodeId b : random.ids) {
            if (a == b)
                continue;
            const auto &path = random.topo.route(a, b);
            EXPECT_FALSE(path.empty());
            // Path actually connects a to b.
            NodeId at = a;
            for (LinkId l : path)
                at = random.topo.link(l).peerOf(at);
            EXPECT_EQ(at, b);
        }
    }
}

TEST_P(TopoSeeds, RouteLengthIsSymmetric)
{
    Simulation sim;
    RandomTopo random(sim, GetParam(), 10);
    for (NodeId a : random.ids) {
        for (NodeId b : random.ids) {
            EXPECT_EQ(random.topo.route(a, b).size(),
                      random.topo.route(b, a).size());
        }
    }
}

TEST_P(TopoSeeds, TransfersAlwaysDeliverExactly)
{
    Simulation sim;
    RandomTopo random(sim, GetParam(), 10);
    Random rng(GetParam() ^ 0xabcdef);
    int delivered = 0;
    const int transfers = 20;
    for (int t = 0; t < transfers; ++t) {
        Message msg;
        msg.src = random.ids[rng.uniformInt(0, random.ids.size() - 1)];
        do {
            msg.dst =
                random.ids[rng.uniformInt(0, random.ids.size() - 1)];
        } while (msg.dst == msg.src);
        msg.bytes = rng.uniformInt(1, 8 << 20);
        msg.onDelivered = [&] { ++delivered; };
        random.topo.send(std::move(msg));
    }
    sim.run();
    EXPECT_EQ(delivered, transfers);
}

TEST_P(TopoSeeds, AllReduceCorrectOnRandomGraph)
{
    Simulation sim;
    RandomTopo random(sim, GetParam(), 9);
    // Use the GPU nodes as ranks.
    std::vector<NodeId> ranks;
    for (NodeId id : random.ids) {
        if (random.topo.nodeKind(id) == NodeKind::Gpu)
            ranks.push_back(id);
    }
    ASSERT_GE(ranks.size(), 2u);
    coarse::coll::Communicator comm(random.topo, ranks);

    Random rng(GetParam() + 17);
    const std::size_t n = rng.uniformInt(3, 5000);
    std::vector<std::vector<float>> buffers(ranks.size());
    std::vector<float> expected(n, 0.0f);
    for (auto &b : buffers) {
        b.resize(n);
        for (std::size_t e = 0; e < n; ++e) {
            b[e] = static_cast<float>(
                rng.uniformReal(-1.0, 1.0));
            expected[e] += b[e];
        }
    }
    std::vector<std::span<float>> spans;
    for (auto &b : buffers)
        spans.emplace_back(b);
    comm.allReduce(spans, coarse::coll::RingOptions{}, [] {});
    sim.run();
    for (const auto &b : buffers) {
        for (std::size_t e = 0; e < n; e += 7)
            ASSERT_NEAR(b[e], expected[e], 1e-3);
    }
}

/**
 * Tracing is an observer: on any topology and traffic pattern, the
 * per-link-direction busy time and byte totals derived from the trace
 * must equal the stats counters the fabric keeps independently.
 */
TEST_P(TopoSeeds, TraceLinkSpansMatchStatsCounters)
{
    coarse::sim::TraceSession::Options traceOptions;
    traceOptions.capacity = std::size_t(1) << 20;
    traceOptions.categories =
        coarse::sim::traceBit(coarse::sim::TraceCategory::Link);
    coarse::sim::TraceSession session(traceOptions);

    Simulation sim;
    RandomTopo random(sim, GetParam(), 10);
    Random rng(GetParam() ^ 0x7ace);
    int delivered = 0;
    const int transfers = 25;
    for (int t = 0; t < transfers; ++t) {
        Message msg;
        msg.src = random.ids[rng.uniformInt(0, random.ids.size() - 1)];
        do {
            msg.dst =
                random.ids[rng.uniformInt(0, random.ids.size() - 1)];
        } while (msg.dst == msg.src);
        msg.bytes = rng.uniformInt(1, 4 << 20);
        msg.onDelivered = [&] { ++delivered; };
        random.topo.send(std::move(msg));
    }
    sim.run();
    ASSERT_EQ(delivered, transfers);
    ASSERT_EQ(session.dropped(), 0u)
        << "raise the capacity: a lossy capture cannot be summed";

    // Sum busy time and bytes per track from the trace.
    std::map<std::uint32_t, coarse::sim::Tick> busyByTrack;
    std::map<std::uint32_t, std::uint64_t> bytesByTrack;
    for (const auto &e : session.snapshot()) {
        if (e.kind != coarse::sim::TraceEventKind::Span)
            continue;
        ASSERT_LE(e.start, e.end);
        busyByTrack[e.track] += e.end - e.start;
        bytesByTrack[e.track] += e.arg0;
    }
    std::map<std::string, std::uint32_t> trackIds;
    for (std::uint32_t t = 0; t < session.trackCount(); ++t)
        trackIds[session.trackName(t)] = t;

    // Every direction that carried traffic must reconcile exactly.
    std::size_t busyDirections = 0;
    for (std::size_t l = 0; l < random.topo.linkCount(); ++l) {
        const auto &link =
            random.topo.link(static_cast<LinkId>(l));
        for (const NodeId src : {link.endpointA(), link.endpointB()}) {
            const auto &pipe = link.directionFrom(src);
            const std::string track =
                random.topo.nodeName(src) + "->"
                + random.topo.nodeName(link.peerOf(src)) + "#"
                + std::to_string(l);
            const auto it = trackIds.find(track);
            if (pipe.bytesCarried() == 0) {
                EXPECT_EQ(it, trackIds.end())
                    << "trace has spans for idle direction " << track;
                continue;
            }
            ++busyDirections;
            ASSERT_NE(it, trackIds.end()) << track;
            EXPECT_EQ(busyByTrack[it->second], pipe.busyTime())
                << track;
            EXPECT_EQ(bytesByTrack[it->second], pipe.bytesCarried())
                << track;
        }
    }
    EXPECT_GT(busyDirections, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopoSeeds,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 42));

/** Random COARSE configurations must still train to identical
 *  weights across workers. */
class EngineSeeds : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(EngineSeeds, RandomConfigConverges)
{
    Random rng(GetParam());
    Simulation sim;
    const char *machines[] = {"aws_t4", "sdsc_p100", "aws_v100"};
    MachineOptions mo;
    mo.workersPerMemDevice = rng.chance(0.3) ? 2 : 1;
    auto machine = makeMachine(machines[rng.uniformInt(0, 2)], sim,
                               mo);

    // Random small model.
    std::vector<std::uint64_t> tensors;
    const auto count = rng.uniformInt(2, 6);
    for (std::uint64_t t = 0; t < count; ++t)
        tensors.push_back(rng.uniformInt(16, 1 << 19));
    const auto model = coarse::dl::makeSynthetic("rand", tensors, 1e9,
                                                 1 << 20);

    coarse::core::CoarseOptions options;
    options.functionalData = true;
    options.tensorRouting = rng.chance(0.5);
    options.tensorPartitioning = rng.chance(0.5);
    options.dualSync = rng.chance(0.5);
    options.detailedSyncCores = rng.chance(0.3);
    options.syncGroups = rng.uniformInt(1, 2);
    options.shardBytesOverride = rng.chance(0.5)
        ? rng.uniformInt(16 << 10, 1 << 20)
        : 0;

    coarse::core::CoarseEngine engine(
        *machine, model,
        static_cast<std::uint32_t>(rng.uniformInt(1, 8)), options);
    const auto report = engine.run(2, 0);
    ASSERT_FALSE(report.deadlocked);
    for (std::size_t t = 0; t < model.tensors.size(); ++t) {
        const auto &w0 = engine.weights(0, t);
        for (std::size_t w = 1; w < machine->workers().size(); ++w)
            ASSERT_EQ(w0, engine.weights(w, t))
                << "seed " << GetParam() << " tensor " << t
                << " worker " << w;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineSeeds,
                         ::testing::Values(101, 202, 303, 404, 505,
                                           606, 707, 808, 909, 1010));

} // namespace
