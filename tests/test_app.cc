/**
 * @file
 * Tests for the coarsesim CLI layer: option parsing and the runner.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "app/options.hh"
#include "app/runner.hh"
#include "sim/logging.hh"

namespace {

using namespace coarse::app;
using coarse::sim::FatalError;

TEST(Options, DefaultsAreSane)
{
    const auto options = parseOptions({});
    EXPECT_EQ(options.machine, "aws_v100");
    EXPECT_EQ(options.model, "resnet50");
    EXPECT_EQ(options.scheme, "all");
    EXPECT_EQ(options.batch, 64u); // resnet default
    EXPECT_TRUE(options.routing);
    EXPECT_TRUE(options.partitioning);
    EXPECT_TRUE(options.dualSync);
}

TEST(Options, ParsesEveryFlag)
{
    const auto options = parseOptions(
        {"--machine", "sdsc_p100", "--model", "bert_large", "--scheme",
         "COARSE", "--batch", "4", "--iters", "7", "--warmup", "2",
         "--nodes", "2", "--share", "2", "--checkpoint-every", "3",
         "--no-routing", "--no-partitioning", "--no-dual-sync",
         "--stats"});
    EXPECT_EQ(options.machine, "sdsc_p100");
    EXPECT_EQ(options.model, "bert_large");
    EXPECT_EQ(options.scheme, "COARSE");
    EXPECT_EQ(options.batch, 4u);
    EXPECT_EQ(options.iterations, 7u);
    EXPECT_EQ(options.warmup, 2u);
    EXPECT_EQ(options.nodes, 2u);
    EXPECT_EQ(options.workersPerMemDevice, 2u);
    EXPECT_EQ(options.checkpointEvery, 3u);
    EXPECT_FALSE(options.routing);
    EXPECT_FALSE(options.partitioning);
    EXPECT_FALSE(options.dualSync);
    EXPECT_TRUE(options.dumpStats);
}

TEST(Options, BertDefaultsToBatchTwo)
{
    const auto options = parseOptions({"--model", "bert_base"});
    EXPECT_EQ(options.batch, 2u);
}

TEST(Options, RejectsBadInput)
{
    EXPECT_THROW(parseOptions({"--bogus"}), FatalError);
    EXPECT_THROW(parseOptions({"--batch"}), FatalError);
    EXPECT_THROW(parseOptions({"--batch", "abc"}), FatalError);
    EXPECT_THROW(parseOptions({"--batch", "-3"}), FatalError);
    EXPECT_THROW(parseOptions({"--iters", "0"}), FatalError);
    EXPECT_THROW(parseOptions({"--nodes", "0"}), FatalError);
}

TEST(Options, HelpAndList)
{
    EXPECT_TRUE(parseOptions({"--help"}).showHelp);
    EXPECT_TRUE(parseOptions({"-h"}).showHelp);
    EXPECT_TRUE(parseOptions({"--list"}).listPresets);
    EXPECT_NE(usageText().find("--machine"), std::string::npos);
}

TEST(Runner, SchemesForExpandsAll)
{
    Options options;
    options.scheme = "all";
    EXPECT_EQ(schemesFor(options).size(), 6u);
    options.scheme = "COARSE";
    EXPECT_EQ(schemesFor(options),
              (std::vector<std::string>{"COARSE"}));
}

TEST(Options, CompressFlag)
{
    EXPECT_FALSE(parseOptions({}).compressGradients);
    EXPECT_TRUE(parseOptions({"--compress"}).compressGradients);
}

TEST(Options, FullRollbackFlag)
{
    EXPECT_FALSE(parseOptions({}).fullRollback);
    EXPECT_TRUE(parseOptions({"--full-rollback"}).fullRollback);
}

TEST(Options, DataLoadingFlag)
{
    EXPECT_FALSE(parseOptions({}).dataLoading);
    EXPECT_TRUE(parseOptions({"--data-loading"}).dataLoading);
}

TEST(Options, FormatValidation)
{
    EXPECT_EQ(parseOptions({"--format", "csv"}).format, "csv");
    EXPECT_EQ(parseOptions({}).format, "table");
    EXPECT_THROW(parseOptions({"--format", "json"}), FatalError);
}

TEST(Runner, CsvOutputIsMachineReadable)
{
    Options options;
    options.machine = "sdsc_p100";
    options.model = "resnet50";
    options.scheme = "COARSE";
    options.batch = 16;
    options.iterations = 1;
    options.format = "csv";
    std::ostringstream out;
    EXPECT_EQ(runCli(options, out), 0);
    const std::string text = out.str();
    EXPECT_NE(text.find("scheme,machine,model,batch"),
              std::string::npos);
    EXPECT_NE(text.find("COARSE,sdsc_p100,resnet50,16,"),
              std::string::npos);
    EXPECT_EQ(text.find("samples/s"), std::string::npos); // no table
}

TEST(Runner, RunsShardedAndAsyncSchemes)
{
    Options options;
    options.machine = "sdsc_p100";
    options.model = "resnet50";
    options.batch = 16;
    options.iterations = 1;
    EXPECT_EQ(runOne(options, "Sharded-PS").report.scheme,
              "Sharded-PS");
    EXPECT_EQ(runOne(options, "Async-PS").report.scheme, "Async-PS");
}

TEST(Runner, RunsOneScheme)
{
    Options options;
    options.machine = "sdsc_p100";
    options.model = "resnet50";
    options.batch = 16;
    options.iterations = 2;
    const auto outcome = runOne(options, "COARSE");
    EXPECT_FALSE(outcome.outOfMemory);
    EXPECT_EQ(outcome.report.scheme, "COARSE");
    EXPECT_GT(outcome.report.iterationSeconds, 0.0);
}

TEST(Runner, ReportsOutOfMemory)
{
    Options options;
    options.machine = "aws_v100";
    options.model = "bert_large";
    options.batch = 4;
    options.iterations = 1;
    EXPECT_TRUE(runOne(options, "AllReduce").outOfMemory);
    EXPECT_FALSE(runOne(options, "COARSE").outOfMemory);
}

TEST(Runner, UnknownSchemeIsFatal)
{
    Options options;
    EXPECT_THROW(runOne(options, "Ring2000"), FatalError);
}

TEST(Runner, StatsDumpContainsLinks)
{
    Options options;
    options.machine = "sdsc_p100";
    options.model = "resnet50";
    options.batch = 16;
    options.iterations = 1;
    options.dumpStats = true;
    const auto outcome = runOne(options, "AllReduce");
    EXPECT_NE(outcome.statsDump.find("bytes"), std::string::npos);
    EXPECT_NE(outcome.statsDump.find("utilization"),
              std::string::npos);
    EXPECT_NE(outcome.statsDump.find("gpu0"), std::string::npos);
}

TEST(Runner, CliRendersTable)
{
    Options options;
    options.machine = "sdsc_p100";
    options.model = "resnet50";
    options.scheme = "COARSE";
    options.batch = 16;
    options.iterations = 1;
    std::ostringstream out;
    EXPECT_EQ(runCli(options, out), 0);
    EXPECT_NE(out.str().find("COARSE"), std::string::npos);
    EXPECT_NE(out.str().find("samples/s"), std::string::npos);
}

TEST(Runner, CliHelpAndList)
{
    Options help;
    help.showHelp = true;
    std::ostringstream h;
    EXPECT_EQ(runCli(help, h), 0);
    EXPECT_NE(h.str().find("usage"), std::string::npos);

    Options list;
    list.listPresets = true;
    std::ostringstream l;
    EXPECT_EQ(runCli(list, l), 0);
    EXPECT_NE(l.str().find("aws_v100"), std::string::npos);
}

} // namespace
