/**
 * @file
 * Tests for the overlapped (Horovod-style) AllReduce baseline.
 */

#include <gtest/gtest.h>

#include <memory>

#include "baselines/allreduce.hh"
#include "baselines/allreduce_overlap.hh"
#include "coarse/engine.hh"
#include "dl/model_zoo.hh"
#include "fabric/machine.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace {

using namespace coarse::baselines;
using coarse::sim::FatalError;
using coarse::sim::Simulation;

TEST(OverlapAllReduce, BucketsCoverTheModel)
{
    Simulation sim;
    auto machine = coarse::fabric::makeAwsV100(sim);
    OverlapAllReduceOptions options;
    options.bucketBytes = 16 << 20;
    OverlapAllReduceTrainer trainer(
        *machine, coarse::dl::makeBertBase(), 2, options);
    // ~438 MiB of gradients in 16 MiB buckets.
    EXPECT_GE(trainer.bucketCount(), 18u);
    EXPECT_LE(trainer.bucketCount(), 32u);
}

TEST(OverlapAllReduce, BeatsBlockingAllReduce)
{
    const auto model = coarse::dl::makeBertBase();

    Simulation simA;
    auto machineA = coarse::fabric::makeAwsV100(simA);
    AllReduceTrainer blocking(*machineA, model, 2);
    const auto blockingReport = blocking.run(4, 1);

    Simulation simB;
    auto machineB = coarse::fabric::makeAwsV100(simB);
    OverlapAllReduceTrainer overlapped(*machineB, model, 2);
    const auto overlappedReport = overlapped.run(4, 1);

    EXPECT_LT(overlappedReport.iterationSeconds,
              blockingReport.iterationSeconds);
    EXPECT_LT(overlappedReport.blockedCommSeconds,
              blockingReport.blockedCommSeconds);
}

TEST(OverlapAllReduce, CoarseStillCompetitive)
{
    // The overlapped baseline is the strongest non-COARSE scheme;
    // COARSE should remain at least comparable on the anti-local
    // machine (its extra tricks: routing + memory-device offload).
    const auto model = coarse::dl::makeBertBase();

    Simulation simA;
    auto machineA = coarse::fabric::makeAwsV100(simA);
    OverlapAllReduceTrainer overlapped(*machineA, model, 2);
    const auto ol = overlapped.run(4, 1);

    Simulation simB;
    auto machineB = coarse::fabric::makeAwsV100(simB);
    coarse::core::CoarseEngine engine(*machineB, model, 2);
    const auto c = engine.run(4, 1);

    EXPECT_LT(c.iterationSeconds, ol.iterationSeconds * 1.15);
}

TEST(OverlapAllReduce, SlowdownKnobCosts)
{
    const auto model = coarse::dl::makeBertBase();
    auto iterFor = [&](double slowdown) {
        Simulation sim;
        auto machine = coarse::fabric::makeAwsV100(sim);
        OverlapAllReduceOptions options;
        options.computeSlowdown = slowdown;
        OverlapAllReduceTrainer trainer(*machine, model, 2, options);
        return trainer.run(3, 1).iterationSeconds;
    };
    EXPECT_LT(iterFor(0.0), iterFor(0.3));
}

TEST(OverlapAllReduce, RejectsBadConfig)
{
    Simulation sim;
    auto machine = coarse::fabric::makeSdscP100(sim);
    OverlapAllReduceOptions options;
    options.bucketBytes = 0;
    EXPECT_THROW(OverlapAllReduceTrainer(
                     *machine, coarse::dl::makeResNet50(), 8, options),
                 FatalError);
}

TEST(OverlapAllReduce, OomBatchIsFatal)
{
    Simulation sim;
    auto machine = coarse::fabric::makeAwsV100(sim);
    OverlapAllReduceTrainer trainer(*machine,
                                    coarse::dl::makeBertLarge(), 4);
    EXPECT_THROW(trainer.run(1), FatalError);
}

} // namespace
