/**
 * @file
 * Tests for the memory-device layer: COW store, sync cores, sync
 * group scheduler.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fabric/machine.hh"
#include "memdev/cow_store.hh"
#include "memdev/memory_device.hh"
#include "memdev/sync_core.hh"
#include "memdev/sync_group.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace {

using namespace coarse::memdev;
using coarse::sim::FatalError;
using coarse::sim::Simulation;

TEST(CowStore, PutGetRoundTrip)
{
    CowStore store;
    EXPECT_FALSE(store.contains(1));
    EXPECT_TRUE(store.put(1, {1.0f, 2.0f}));
    EXPECT_TRUE(store.contains(1));
    EXPECT_EQ(*store.get(1), (std::vector<float>{1.0f, 2.0f}));
    EXPECT_EQ(store.size(), 1u);
    EXPECT_EQ(store.liveBytes(), 8u);
    EXPECT_THROW(store.get(9), FatalError);
}

TEST(CowStore, IdenticalWriteIsAbsorbed)
{
    CowStore store;
    store.put(1, {1.0f, 2.0f});
    const auto copied = store.bytesCopied().value();
    EXPECT_FALSE(store.put(1, {1.0f, 2.0f}));
    EXPECT_EQ(store.bytesCopied().value(), copied);
    EXPECT_EQ(store.writesAbsorbed().value(), 1u);
    EXPECT_TRUE(store.put(1, {1.0f, 3.0f}));
    EXPECT_EQ(store.versionsCreated().value(), 2u);
}

TEST(CowStore, SnapshotFreezesVersions)
{
    CowStore store;
    store.put(1, {1.0f});
    const SnapshotId snap = store.snapshot();
    store.put(1, {2.0f});
    EXPECT_EQ((*store.get(1))[0], 2.0f);
    EXPECT_EQ((*store.checkpoint(snap).at(1))[0], 1.0f);
}

TEST(CowStore, SnapshotSharesDataWithoutCopying)
{
    CowStore store;
    std::vector<float> big(1 << 20, 1.0f);
    store.put(1, big);
    const auto copied = store.bytesCopied().value();
    store.snapshot(); // O(#tensors) pointer copies only
    EXPECT_EQ(store.bytesCopied().value(), copied);
}

TEST(CowStore, RestoreRewindsToCheckpoint)
{
    CowStore store;
    store.put(1, {1.0f});
    store.put(2, {5.0f});
    const SnapshotId snap = store.snapshot();
    store.put(1, {9.0f});
    store.restore(snap);
    EXPECT_EQ((*store.get(1))[0], 1.0f);
    EXPECT_EQ((*store.get(2))[0], 5.0f);
}

TEST(CowStore, DropCheckpoint)
{
    CowStore store;
    store.put(1, {1.0f});
    const SnapshotId snap = store.snapshot();
    EXPECT_EQ(store.checkpointCount(), 1u);
    store.dropCheckpoint(snap);
    EXPECT_EQ(store.checkpointCount(), 0u);
    EXPECT_THROW(store.checkpoint(snap), FatalError);
    EXPECT_THROW(store.dropCheckpoint(snap), FatalError);
}

TEST(CowStore, RestoreToPreWriteSnapshotDropsLaterKeys)
{
    // A snapshot taken before a key existed must not resurrect it:
    // restore replaces the live set wholesale.
    CowStore store;
    store.put(1, {1.0f});
    const SnapshotId snap = store.snapshot();
    store.put(2, {7.0f}); // written only after the snapshot
    ASSERT_TRUE(store.contains(2));
    store.restore(snap);
    EXPECT_TRUE(store.contains(1));
    EXPECT_FALSE(store.contains(2));
    EXPECT_THROW(store.get(2), FatalError);
}

TEST(CowStore, DoubleRestoreIsIdempotent)
{
    CowStore store;
    store.put(1, {1.0f});
    const SnapshotId snap = store.snapshot();
    store.put(1, {9.0f});
    store.restore(snap);
    const auto copiedAfterFirst = store.bytesCopied().value();
    store.restore(snap); // same checkpoint again
    EXPECT_EQ((*store.get(1))[0], 1.0f);
    // Restoring is pointer rewiring, never a data copy.
    EXPECT_EQ(store.bytesCopied().value(), copiedAfterFirst);
}

TEST(CowStore, SnapshotAfterRestoreForksTheLineage)
{
    // checkpoint A -> diverge -> restore A -> diverge differently ->
    // checkpoint B. Both checkpoints stay readable and distinct, so a
    // recovery can itself be checkpointed (crash during replay).
    CowStore store;
    store.put(1, {1.0f});
    const SnapshotId snapA = store.snapshot();
    store.put(1, {2.0f});
    store.restore(snapA);
    store.put(1, {3.0f});
    const SnapshotId snapB = store.snapshot();
    EXPECT_NE(snapA, snapB);
    EXPECT_EQ((*store.checkpoint(snapA).at(1))[0], 1.0f);
    EXPECT_EQ((*store.checkpoint(snapB).at(1))[0], 3.0f);
    store.restore(snapA);
    EXPECT_EQ((*store.get(1))[0], 1.0f);
    store.restore(snapB);
    EXPECT_EQ((*store.get(1))[0], 3.0f);
}

TEST(CowStore, RewriteAfterRestoreDedupsAgainstRestoredVersion)
{
    // After a rollback, the replayed iteration recomputes the same
    // updates; writing a value identical to the restored one must be
    // absorbed, not copied — that is the CoW dedup the paper's
    // fault-tolerance cost argument rests on.
    CowStore store;
    store.put(1, {4.0f, 5.0f});
    const SnapshotId snap = store.snapshot();
    store.put(1, {6.0f, 7.0f});
    store.restore(snap);
    const auto absorbed = store.writesAbsorbed().value();
    const auto versions = store.versionsCreated().value();
    EXPECT_FALSE(store.put(1, {4.0f, 5.0f})); // identical to restored
    EXPECT_EQ(store.writesAbsorbed().value(), absorbed + 1);
    EXPECT_EQ(store.versionsCreated().value(), versions);
}

TEST(CowStore, RestoreTensorRewindsOnlyThatKey)
{
    // Shard-scoped rollback: partial recovery restores the dead
    // proxy's tensors and leaves every other tensor at its current
    // (newer) version.
    CowStore store;
    store.put(1, {1.0f});
    store.put(2, {2.0f});
    const SnapshotId snap = store.snapshot();
    store.put(1, {10.0f});
    store.put(2, {20.0f});

    const auto bytes = store.restoreTensor(snap, 1);
    EXPECT_EQ(bytes, sizeof(float));
    EXPECT_EQ((*store.get(1))[0], 1.0f);
    EXPECT_EQ((*store.get(2))[0], 20.0f); // untouched
}

TEST(CowStore, RestoreTensorDropsAKeyBornAfterTheSnapshot)
{
    CowStore store;
    store.put(1, {1.0f});
    const SnapshotId snap = store.snapshot();
    store.put(2, {7.0f}); // written only after the snapshot
    ASSERT_TRUE(store.contains(2));

    EXPECT_EQ(store.restoreTensor(snap, 2), 0u);
    EXPECT_FALSE(store.contains(2));
    EXPECT_TRUE(store.contains(1)); // untouched
}

TEST(CowStore, RestoreTensorSharesDataWithoutCopying)
{
    CowStore store;
    store.put(1, {1.0f, 2.0f, 3.0f});
    const SnapshotId snap = store.snapshot();
    store.put(1, {4.0f, 5.0f, 6.0f});

    const auto copied = store.bytesCopied().value();
    EXPECT_EQ(store.restoreTensor(snap, 1), 3 * sizeof(float));
    EXPECT_EQ(store.bytesCopied().value(), copied);
    EXPECT_EQ(store.get(1), store.checkpoint(snap).at(1));
}

TEST(SyncCore, CombineAddsBuffers)
{
    SyncCore core;
    std::vector<float> local{1.0f, 2.0f, 3.0f};
    std::vector<float> recv{10.0f, 20.0f, 30.0f};
    core.loadLocal(local);
    core.receive(recv);
    const auto out = core.combine();
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0], 11.0f);
    EXPECT_EQ(out[2], 33.0f);
    core.commitToLocal();
    EXPECT_EQ(core.local()[1], 22.0f);
    EXPECT_EQ(core.elementsReduced().value(), 3u);
}

TEST(SyncCore, MismatchedBuffersAreFatal)
{
    SyncCore core;
    std::vector<float> local{1.0f, 2.0f};
    std::vector<float> recv{1.0f};
    core.loadLocal(local);
    core.receive(recv);
    EXPECT_THROW(core.combine(), FatalError);
}

TEST(SyncCore, CapacityIsEnforced)
{
    SyncCoreParams params;
    params.bufferElements = 4;
    SyncCore core(params);
    std::vector<float> tooBig(5, 1.0f);
    EXPECT_THROW(core.loadLocal(tooBig), FatalError);
    EXPECT_THROW(core.receive(tooBig), FatalError);
}

TEST(SyncCore, ThroughputFollowsAluConfig)
{
    SyncCoreParams params;
    params.aluLanes = 32;
    params.opsPerLanePerSec = 1e9;
    SyncCore core(params);
    EXPECT_DOUBLE_EQ(core.reduceBytesPerSec(), 32.0 * 1e9 * 4);
}

TEST(MemoryDevice, SyncCoresBeatArmCore)
{
    Simulation sim;
    MemoryDevice dev(0);
    EXPECT_GT(dev.aggregateReduceBytesPerSec(),
              dev.armReduceBytesPerSec() * 4);
}

TEST(MemoryDevice, DramSharedAcrossCores)
{
    MemoryDeviceParams params;
    params.syncCoreCount = 4;
    params.dramBytesPerSec = 20e9;
    MemoryDevice dev(0, params);
    EXPECT_DOUBLE_EQ(dev.syncCore(0).params().dramBytesPerSec, 5e9);
}

struct SchedulerFixture : public ::testing::Test
{
    SchedulerFixture() : machine(coarse::fabric::makeAwsV100(sim))
    {
        for (auto node : machine->memDevices())
            devices.push_back(std::make_unique<MemoryDevice>(node));
        for (auto &d : devices)
            raw.push_back(d.get());
    }

    Simulation sim;
    std::unique_ptr<coarse::fabric::Machine> machine;
    std::vector<std::unique_ptr<MemoryDevice>> devices;
    std::vector<MemoryDevice *> raw;
};

TEST_F(SchedulerFixture, AllReduceSumsAcrossDevices)
{
    SyncGroupScheduler scheduler(machine->topology(), raw);
    const std::size_t n = 10000;
    std::vector<std::vector<float>> buffers(raw.size());
    float expected = 0.0f;
    for (std::size_t i = 0; i < raw.size(); ++i) {
        buffers[i].assign(n, static_cast<float>(i + 1));
        expected += static_cast<float>(i + 1);
    }
    std::vector<std::span<float>> spans;
    for (auto &b : buffers)
        spans.emplace_back(b);
    bool done = false;
    scheduler.allReduce(spans, [&] { done = true; });
    sim.run();
    ASSERT_TRUE(done);
    for (const auto &b : buffers) {
        EXPECT_NEAR(b.front(), expected, 1e-3);
        EXPECT_NEAR(b.back(), expected, 1e-3);
    }
}

TEST_F(SchedulerFixture, ArmCoreSlowerThanSyncCores)
{
    auto timeFor = [&](bool arm) {
        Simulation s;
        auto m = coarse::fabric::makeAwsV100(s);
        std::vector<std::unique_ptr<MemoryDevice>> devs;
        std::vector<MemoryDevice *> ptrs;
        for (auto node : m->memDevices()) {
            devs.push_back(std::make_unique<MemoryDevice>(node));
            ptrs.push_back(devs.back().get());
        }
        SyncScheduleOptions options;
        options.useArmCore = arm;
        SyncGroupScheduler scheduler(m->topology(), ptrs, options);
        scheduler.allReduceTimed(64 << 20, [] {});
        s.run();
        return coarse::sim::toSeconds(s.now());
    };
    EXPECT_GT(timeFor(true), timeFor(false) * 1.5);
}

TEST_F(SchedulerFixture, EstimateIsReasonable)
{
    SyncGroupScheduler scheduler(machine->topology(), raw);
    const std::uint64_t bytes = 32 << 20;
    const double estimate = scheduler.estimateSeconds(bytes);
    scheduler.allReduceTimed(bytes, [] {});
    sim.run();
    const double measured = coarse::sim::toSeconds(sim.now());
    EXPECT_NEAR(estimate, measured, measured * 0.5);
}

TEST_F(SchedulerFixture, GroupCountBoundedBySyncCores)
{
    SyncScheduleOptions options;
    options.groups = 100;
    EXPECT_THROW(
        SyncGroupScheduler(machine->topology(), raw, options),
        FatalError);
    options.groups = 0;
    EXPECT_THROW(
        SyncGroupScheduler(machine->topology(), raw, options),
        FatalError);
}

} // namespace
