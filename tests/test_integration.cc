/**
 * @file
 * Cross-scheme integration tests: the qualitative results the paper
 * reports must hold on the simulated machines (see DESIGN.md §6).
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "baselines/allreduce.hh"
#include "baselines/dense.hh"
#include "coarse/engine.hh"
#include "dl/model_zoo.hh"
#include "fabric/machine.hh"
#include "sim/simulation.hh"

namespace {

using coarse::dl::TrainingReport;
using coarse::fabric::MachineOptions;
using coarse::sim::Simulation;

TrainingReport
runDense(const std::string &machineName, const coarse::dl::ModelSpec &m,
         std::uint32_t batch, MachineOptions mo = {})
{
    Simulation sim;
    auto machine = coarse::fabric::makeMachine(machineName, sim, mo);
    coarse::baselines::DenseTrainer trainer(*machine, m, batch);
    return trainer.run(3, 1);
}

TrainingReport
runAllReduce(const std::string &machineName,
             const coarse::dl::ModelSpec &m, std::uint32_t batch,
             MachineOptions mo = {})
{
    Simulation sim;
    auto machine = coarse::fabric::makeMachine(machineName, sim, mo);
    coarse::baselines::AllReduceTrainer trainer(*machine, m, batch);
    return trainer.run(3, 1);
}

TrainingReport
runCoarse(const std::string &machineName, const coarse::dl::ModelSpec &m,
          std::uint32_t batch, MachineOptions mo = {})
{
    Simulation sim;
    auto machine = coarse::fabric::makeMachine(machineName, sim, mo);
    coarse::core::CoarseEngine engine(*machine, m, batch);
    return engine.run(3, 1);
}

TEST(Integration, DenseIsAlwaysSlowest)
{
    const auto model = coarse::dl::makeBertBase();
    for (const char *machine : {"aws_t4", "sdsc_p100", "aws_v100"}) {
        const auto dense = runDense(machine, model, 2);
        const auto ar = runAllReduce(machine, model, 2);
        const auto coarseR = runCoarse(machine, model, 2);
        EXPECT_GT(dense.iterationSeconds, ar.iterationSeconds)
            << machine;
        EXPECT_GT(dense.iterationSeconds, coarseR.iterationSeconds)
            << machine;
    }
}

TEST(Integration, CoarseBeatsAllReduceOnAntiLocalV100)
{
    const auto model = coarse::dl::makeBertBase();
    const auto ar = runAllReduce("aws_v100", model, 2);
    const auto c = runCoarse("aws_v100", model, 2);
    EXPECT_LT(c.iterationSeconds, ar.iterationSeconds);
    EXPECT_LT(c.blockedCommSeconds, ar.blockedCommSeconds);
}

TEST(Integration, CoarseBeatsAllReduceOnP100)
{
    const auto model = coarse::dl::makeBertBase();
    const auto ar = runAllReduce("sdsc_p100", model, 2);
    const auto c = runCoarse("sdsc_p100", model, 2);
    EXPECT_LT(c.blockedCommSeconds, ar.blockedCommSeconds);
}

TEST(Integration, AllReduceCompetitiveOnT4)
{
    // Without P2P support COARSE loses its edge (paper: "COARSE does
    // not work efficiently on this platform"); AllReduce is at least
    // as good there.
    const auto model = coarse::dl::makeBertBase();
    const auto ar = runAllReduce("aws_t4", model, 2);
    const auto c = runCoarse("aws_t4", model, 2);
    EXPECT_LE(ar.iterationSeconds, c.iterationSeconds * 1.05);
}

TEST(Integration, BertGainsExceedResNetGains)
{
    // BERT is communication-bound, ResNet compute-bound; COARSE's
    // speedup over DENSE must be larger for BERT (Fig. 16).
    const auto resnet = coarse::dl::makeResNet50();
    const auto bert = coarse::dl::makeBertBase();

    const double resnetSpeedup =
        runDense("aws_v100", resnet, 64).iterationSeconds
        / runCoarse("aws_v100", resnet, 64).iterationSeconds;
    const double bertSpeedup =
        runDense("aws_v100", bert, 2).iterationSeconds
        / runCoarse("aws_v100", bert, 2).iterationSeconds;
    EXPECT_GT(bertSpeedup, resnetSpeedup);
    EXPECT_GT(resnetSpeedup, 1.5);
}

TEST(Integration, LargerBatchBeatsSmallOnThroughput)
{
    // Fig. 16e: COARSE's offloaded state fits batch 4 of BERT-Large
    // where AllReduce tops out at 2; the bigger batch wins on
    // samples/sec.
    const auto model = coarse::dl::makeBertLarge();
    const auto coarse2 = runCoarse("aws_v100", model, 2);
    const auto coarse4 = runCoarse("aws_v100", model, 4);
    EXPECT_GT(coarse4.throughputSamplesPerSec,
              coarse2.throughputSamplesPerSec);

    const auto ar2 = runAllReduce("aws_v100", model, 2);
    EXPECT_GT(coarse4.throughputSamplesPerSec,
              ar2.throughputSamplesPerSec);
}

TEST(Integration, MultiNodeStillConvergesAndWins)
{
    const auto model = coarse::dl::makeBertLarge();
    MachineOptions mo;
    mo.nodes = 2;
    const auto ar = runAllReduce("aws_v100", model, 2, mo);
    const auto c = runCoarse("aws_v100", model, 2, mo);
    EXPECT_EQ(ar.workers, 8u);
    EXPECT_EQ(c.workers, 8u);
    EXPECT_LT(c.blockedCommSeconds, ar.blockedCommSeconds);
}

TEST(Integration, SingleNodeBigBatchBeatsTwoNodeAllReduce)
{
    // Fig. 16f's headline: one COARSE node at batch 4 out-trains a
    // two-node AllReduce cluster at batch 2 per GPU... per *samples
    // per second per GPU* (the cluster has twice the GPUs).
    const auto model = coarse::dl::makeBertLarge();
    MachineOptions twoNodes;
    twoNodes.nodes = 2;
    const auto ar2node = runAllReduce("aws_v100", model, 2, twoNodes);
    const auto coarse1node = runCoarse("aws_v100", model, 4);
    const double arPerGpu =
        ar2node.throughputSamplesPerSec / ar2node.workers;
    const double coarsePerGpu =
        coarse1node.throughputSamplesPerSec / coarse1node.workers;
    EXPECT_GT(coarsePerGpu, arPerGpu);
}

TEST(Integration, DeterministicAcrossIdenticalRuns)
{
    const auto model = coarse::dl::makeBertBase();
    const auto a = runCoarse("aws_v100", model, 2);
    const auto b = runCoarse("aws_v100", model, 2);
    EXPECT_DOUBLE_EQ(a.iterationSeconds, b.iterationSeconds);
    EXPECT_DOUBLE_EQ(a.blockedCommSeconds, b.blockedCommSeconds);
}

TEST(Integration, UtilizationOrderingMatchesPaper)
{
    // GPU utilization: COARSE >= AllReduce > DENSE on P2P machines.
    const auto model = coarse::dl::makeBertBase();
    const auto dense = runDense("aws_v100", model, 2);
    const auto ar = runAllReduce("aws_v100", model, 2);
    const auto c = runCoarse("aws_v100", model, 2);
    EXPECT_GT(c.gpuUtilization, ar.gpuUtilization);
    EXPECT_GT(ar.gpuUtilization, dense.gpuUtilization);
}

} // namespace
