/**
 * @file
 * Unit tests for the fabric: links, routing, transport timing,
 * duplex behaviour, pair efficiency.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "fabric/topology.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace {

using namespace coarse::fabric;
using coarse::sim::FatalError;
using coarse::sim::Simulation;

/** A linear chain: gpu -- sw -- cpu with flat 10 GB/s links. */
struct ChainFixture : public ::testing::Test
{
    ChainFixture() : topo(sim)
    {
        gpu = topo.addNode(NodeKind::Gpu, "gpu");
        sw = topo.addNode(NodeKind::PcieSwitch, "sw");
        cpu = topo.addNode(NodeKind::HostCpu, "cpu");
        LinkParams params;
        params.bandwidth = BandwidthCurve::flat(gbps(10.0));
        params.latency = coarse::sim::fromNanoseconds(500);
        topo.addLink(gpu, sw, params);
        topo.addLink(sw, cpu, params);
    }

    Simulation sim;
    Topology topo;
    NodeId gpu = 0, sw = 0, cpu = 0;
};

TEST_F(ChainFixture, RouteFollowsChain)
{
    const auto &path = topo.route(gpu, cpu);
    ASSERT_EQ(path.size(), 2u);
    EXPECT_EQ(topo.link(path[0]).peerOf(gpu), sw);
    EXPECT_EQ(topo.link(path[1]).peerOf(sw), cpu);
    EXPECT_TRUE(topo.route(gpu, gpu).empty());
}

TEST_F(ChainFixture, PathLatencySumsHops)
{
    EXPECT_EQ(topo.pathLatency(gpu, cpu),
              coarse::sim::fromNanoseconds(1000));
}

TEST_F(ChainFixture, PathBandwidthIsBottleneck)
{
    EXPECT_DOUBLE_EQ(topo.pathBandwidth(gpu, cpu, 1 << 20), gbps(10.0));
}

TEST_F(ChainFixture, TransferTimeMatchesAnalytic)
{
    const std::uint64_t bytes = 100 << 20; // 100 MiB
    bool delivered = false;
    Message msg;
    msg.src = gpu;
    msg.dst = cpu;
    msg.bytes = bytes;
    msg.onDelivered = [&] { delivered = true; };
    topo.send(std::move(msg));
    sim.run();
    EXPECT_TRUE(delivered);
    // Pipelined store-and-forward: ~bytes/bw + 2 hops latency
    // (+ one chunk of serialization skew).
    const double expected = double(bytes) / gbps(10.0);
    const double actual = coarse::sim::toSeconds(sim.now());
    EXPECT_NEAR(actual, expected, expected * 0.02);
}

TEST_F(ChainFixture, ZeroByteMessageTakesLatencyOnly)
{
    Message msg;
    msg.src = gpu;
    msg.dst = cpu;
    msg.bytes = 0;
    topo.send(std::move(msg));
    sim.run();
    EXPECT_EQ(sim.now(), coarse::sim::fromNanoseconds(1000));
}

TEST_F(ChainFixture, FifoContentionSerializesSameDirection)
{
    // Two 50 MiB transfers in the same direction take ~2x one.
    const std::uint64_t bytes = 50 << 20;
    int delivered = 0;
    for (int i = 0; i < 2; ++i) {
        Message msg;
        msg.src = gpu;
        msg.dst = cpu;
        msg.bytes = bytes;
        msg.onDelivered = [&] { ++delivered; };
        topo.send(std::move(msg));
    }
    sim.run();
    EXPECT_EQ(delivered, 2);
    const double expected = 2.0 * double(bytes) / gbps(10.0);
    EXPECT_NEAR(coarse::sim::toSeconds(sim.now()), expected,
                expected * 0.02);
}

TEST_F(ChainFixture, OppositeDirectionsDoNotContend)
{
    // A gpu->cpu transfer and a cpu->gpu transfer overlap fully.
    const std::uint64_t bytes = 50 << 20;
    int delivered = 0;
    Message a;
    a.src = gpu;
    a.dst = cpu;
    a.bytes = bytes;
    a.onDelivered = [&] { ++delivered; };
    topo.send(std::move(a));
    Message b;
    b.src = cpu;
    b.dst = gpu;
    b.bytes = bytes;
    b.onDelivered = [&] { ++delivered; };
    topo.send(std::move(b));
    sim.run();
    EXPECT_EQ(delivered, 2);
    const double oneWay = double(bytes) / gbps(10.0);
    EXPECT_NEAR(coarse::sim::toSeconds(sim.now()), oneWay,
                oneWay * 0.02);
}

TEST_F(ChainFixture, RateCapLimitsThroughput)
{
    const std::uint64_t bytes = 10 << 20;
    Message msg;
    msg.src = gpu;
    msg.dst = cpu;
    msg.bytes = bytes;
    msg.rateCap = gbps(1.0);
    topo.send(std::move(msg));
    sim.run();
    // Two store-and-forward hops add one chunk of pipeline skew.
    const double expected =
        double(bytes + topo.chunkBytes()) / gbps(1.0);
    EXPECT_NEAR(coarse::sim::toSeconds(sim.now()), expected,
                expected * 0.02);
}

TEST_F(ChainFixture, PairEfficiencyScalesSerialHops)
{
    topo.setPairEfficiency(gpu, cpu, 0.5);
    const std::uint64_t bytes = 10 << 20;
    Message msg;
    msg.src = gpu;
    msg.dst = cpu;
    msg.bytes = bytes;
    topo.send(std::move(msg));
    sim.run();
    const double expected =
        double(bytes + topo.chunkBytes()) / gbps(5.0);
    EXPECT_NEAR(coarse::sim::toSeconds(sim.now()), expected,
                expected * 0.02);
}

TEST_F(ChainFixture, ReceiverFiresOnDelivery)
{
    int received = 0;
    topo.setReceiver(cpu, [&](const Message &m) {
        EXPECT_EQ(m.src, gpu);
        ++received;
    });
    Message msg;
    msg.src = gpu;
    msg.dst = cpu;
    msg.bytes = 4096;
    topo.send(std::move(msg));
    sim.run();
    EXPECT_EQ(received, 1);
}

TEST_F(ChainFixture, FlowBytesControlsEffectiveRate)
{
    // With a ramped link, a small message moving as part of a large
    // flow gets the large-flow bandwidth.
    Simulation sim2;
    Topology t2(sim2);
    const NodeId a = t2.addNode(NodeKind::Gpu, "a");
    const NodeId b = t2.addNode(NodeKind::Gpu, "b");
    LinkParams params;
    params.bandwidth = BandwidthCurve::ramp(gbps(10.0), 4096, 2 << 20,
                                            0.1);
    params.latency = 0;
    t2.addLink(a, b, params);

    auto timeFor = [&](std::uint64_t flow) {
        Simulation s;
        Topology t(s);
        const NodeId x = t.addNode(NodeKind::Gpu, "x");
        const NodeId y = t.addNode(NodeKind::Gpu, "y");
        t.addLink(x, y, params);
        Message msg;
        msg.src = x;
        msg.dst = y;
        msg.bytes = 64 << 10;
        msg.flowBytes = flow;
        t.send(std::move(msg));
        s.run();
        return coarse::sim::toSeconds(s.now());
    };
    EXPECT_LT(timeFor(16 << 20), timeFor(64 << 10));
}

TEST(Topology, RoutePrefersFewestHops)
{
    Simulation sim;
    Topology topo(sim);
    const NodeId a = topo.addNode(NodeKind::Gpu, "a");
    const NodeId b = topo.addNode(NodeKind::Gpu, "b");
    const NodeId c = topo.addNode(NodeKind::PcieSwitch, "c");
    LinkParams slow;
    slow.bandwidth = BandwidthCurve::flat(gbps(1.0));
    topo.addLink(a, c, slow);
    topo.addLink(c, b, slow);
    const LinkId direct = topo.addLink(a, b, slow);
    const auto &path = topo.route(a, b);
    ASSERT_EQ(path.size(), 1u);
    EXPECT_EQ(path[0], direct);
}

TEST(Topology, RouteTieBreaksOnBottleneckBandwidth)
{
    Simulation sim;
    Topology topo(sim);
    const NodeId a = topo.addNode(NodeKind::Gpu, "a");
    const NodeId m1 = topo.addNode(NodeKind::PcieSwitch, "m1");
    const NodeId m2 = topo.addNode(NodeKind::PcieSwitch, "m2");
    const NodeId b = topo.addNode(NodeKind::Gpu, "b");
    LinkParams slow, fast;
    slow.bandwidth = BandwidthCurve::flat(gbps(1.0));
    fast.bandwidth = BandwidthCurve::flat(gbps(10.0));
    topo.addLink(a, m1, slow);
    topo.addLink(m1, b, slow);
    const LinkId f1 = topo.addLink(a, m2, fast);
    const LinkId f2 = topo.addLink(m2, b, fast);
    const auto &path = topo.route(a, b);
    ASSERT_EQ(path.size(), 2u);
    EXPECT_EQ(path[0], f1);
    EXPECT_EQ(path[1], f2);
}

TEST(Topology, MaskExcludesLinkKinds)
{
    Simulation sim;
    Topology topo(sim);
    const NodeId a = topo.addNode(NodeKind::Gpu, "a");
    const NodeId b = topo.addNode(NodeKind::Gpu, "b");
    const NodeId sw = topo.addNode(NodeKind::PcieSwitch, "sw");
    LinkParams nvl;
    nvl.kind = LinkKind::NvLink;
    nvl.bandwidth = BandwidthCurve::flat(gbps(25.0));
    LinkParams bus;
    bus.bandwidth = BandwidthCurve::flat(gbps(13.0));
    topo.addLink(a, b, nvl);
    topo.addLink(a, sw, bus);
    topo.addLink(sw, b, bus);

    EXPECT_EQ(topo.route(a, b, kAllLinks).size(), 1u);
    EXPECT_EQ(topo.route(a, b, kNoNvLink).size(), 2u);
    EXPECT_THROW(topo.route(a, b, linkBit(LinkKind::Network)),
                 FatalError);
}

TEST(Topology, RejectsBadConstruction)
{
    Simulation sim;
    Topology topo(sim);
    const NodeId a = topo.addNode(NodeKind::Gpu, "a");
    EXPECT_THROW(topo.addLink(a, 99, LinkParams{}), FatalError);
    EXPECT_THROW(topo.setPairEfficiency(a, a, 1.5), FatalError);
    EXPECT_THROW(topo.setChunkBytes(0), FatalError);
}

TEST(Link, UtilizationAndByteAccounting)
{
    Simulation sim;
    Topology topo(sim);
    const NodeId a = topo.addNode(NodeKind::Gpu, "a");
    const NodeId b = topo.addNode(NodeKind::Gpu, "b");
    LinkParams params;
    params.bandwidth = BandwidthCurve::flat(gbps(10.0));
    params.latency = 0;
    const LinkId l = topo.addLink(a, b, params);

    Message msg;
    msg.src = a;
    msg.dst = b;
    msg.bytes = 10 << 20;
    topo.send(std::move(msg));
    sim.run();

    EXPECT_EQ(topo.link(l).totalBytes(), std::uint64_t(10 << 20));
    EXPECT_NEAR(topo.link(l).utilization(sim.now()), 1.0, 0.05);
}

/** Chunk-size sweep: delivery time is insensitive to chunking. */
class ChunkSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ChunkSweep, DeliveryTimeStable)
{
    Simulation sim;
    Topology topo(sim);
    const NodeId a = topo.addNode(NodeKind::Gpu, "a");
    const NodeId sw = topo.addNode(NodeKind::PcieSwitch, "sw");
    const NodeId b = topo.addNode(NodeKind::Gpu, "b");
    LinkParams params;
    params.bandwidth = BandwidthCurve::flat(gbps(10.0));
    params.latency = coarse::sim::fromNanoseconds(500);
    topo.addLink(a, sw, params);
    topo.addLink(sw, b, params);
    topo.setChunkBytes(GetParam());

    Message msg;
    msg.src = a;
    msg.dst = b;
    msg.bytes = 32 << 20;
    topo.send(std::move(msg));
    sim.run();
    const double expected = double(32 << 20) / gbps(10.0);
    EXPECT_NEAR(coarse::sim::toSeconds(sim.now()), expected,
                expected * 0.10);
}

INSTANTIATE_TEST_SUITE_P(Chunks, ChunkSweep,
                         ::testing::Values(64 << 10, 256 << 10,
                                           512 << 10, 2 << 20));

} // namespace
