/**
 * @file
 * Tests for the hierarchical multi-node allreduce.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "baselines/allreduce.hh"
#include "collective/hierarchical.hh"
#include "dl/model_zoo.hh"
#include "fabric/machine.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace {

using namespace coarse::coll;
using namespace coarse::fabric;
using coarse::sim::FatalError;
using coarse::sim::Simulation;

struct TwoNodeFixture
{
    TwoNodeFixture()
    {
        MachineOptions mo;
        mo.nodes = 2;
        machine = makeAwsV100(sim, mo);
        for (NodeId worker : machine->workers())
            groups[machine->serverNodeOf(worker)].push_back(worker);
    }

    Simulation sim;
    std::unique_ptr<Machine> machine;
    std::vector<std::vector<NodeId>> groups =
        std::vector<std::vector<NodeId>>(2);
};

TEST(Hierarchical, FunctionalSumsAcrossNodes)
{
    TwoNodeFixture f;
    HierarchicalAllReduce hier(f.machine->topology(), f.groups);
    ASSERT_EQ(hier.groupCount(), 2u);
    ASSERT_EQ(hier.totalRanks(), 8u);

    const std::size_t n = 5000;
    std::vector<std::vector<float>> buffers(8);
    float expected = 0.0f;
    for (std::size_t i = 0; i < 8; ++i) {
        buffers[i].assign(n, static_cast<float>(i + 1));
        expected += static_cast<float>(i + 1);
    }
    std::vector<std::span<float>> spans;
    for (auto &b : buffers)
        spans.emplace_back(b);

    bool done = false;
    hier.allReduce(spans, HierarchicalOptions{}, [&] { done = true; });
    f.sim.run();
    ASSERT_TRUE(done);
    for (const auto &b : buffers) {
        EXPECT_NEAR(b.front(), expected, 1e-3);
        EXPECT_NEAR(b.back(), expected, 1e-3);
    }
}

/**
 * The latency/bandwidth crossover: a flat ring pays 2(p-1) network
 * round-trips but moves fewer bytes over the NIC, so it wins for
 * large transfers; the hierarchical schedule has only a couple of
 * network rounds and wins for small, latency-bound synchronizations.
 */
TEST(Hierarchical, WinsSmallTransfersFlatWinsLarge)
{
    auto timedFlat = [](std::uint64_t bytes) {
        TwoNodeFixture f;
        Communicator comm(f.machine->topology(),
                          f.machine->workers());
        comm.allReduceTimed(bytes, RingOptions{}, [] {});
        f.sim.run();
        return coarse::sim::toSeconds(f.sim.now());
    };
    auto timedHier = [](std::uint64_t bytes) {
        TwoNodeFixture f;
        HierarchicalAllReduce hier(f.machine->topology(), f.groups);
        hier.allReduceTimed(bytes, HierarchicalOptions{}, [] {});
        f.sim.run();
        return coarse::sim::toSeconds(f.sim.now());
    };
    EXPECT_LT(timedHier(4 << 10), timedFlat(4 << 10));
    EXPECT_GT(timedHier(256 << 20), timedFlat(256 << 20));
}

TEST(Hierarchical, SingleMemberGroupsDegenerate)
{
    Simulation sim;
    auto machine = makeSdscP100(sim);
    std::vector<std::vector<NodeId>> groups{
        {machine->workers()[0]}, {machine->workers()[1]}};
    HierarchicalAllReduce hier(machine->topology(), groups);
    std::vector<std::vector<float>> buffers{{1.0f, 2.0f},
                                            {3.0f, 4.0f}};
    std::vector<std::span<float>> spans;
    for (auto &b : buffers)
        spans.emplace_back(b);
    bool done = false;
    hier.allReduce(spans, HierarchicalOptions{}, [&] { done = true; });
    sim.run();
    ASSERT_TRUE(done);
    EXPECT_EQ(buffers[0], (std::vector<float>{4.0f, 6.0f}));
    EXPECT_EQ(buffers[1], (std::vector<float>{4.0f, 6.0f}));
}

TEST(Hierarchical, TimedCompletesAndEstimates)
{
    TwoNodeFixture f;
    HierarchicalAllReduce hier(f.machine->topology(), f.groups);
    const std::uint64_t bytes = 64 << 20;
    const double estimate =
        hier.estimateSeconds(bytes, HierarchicalOptions{});
    bool done = false;
    hier.allReduceTimed(bytes, HierarchicalOptions{},
                        [&] { done = true; });
    f.sim.run();
    ASSERT_TRUE(done);
    const double measured = coarse::sim::toSeconds(f.sim.now());
    EXPECT_GT(estimate, 0.0);
    EXPECT_NEAR(estimate, measured, measured); // same order
}

TEST(Hierarchical, RejectsBadConfig)
{
    TwoNodeFixture f;
    EXPECT_THROW(HierarchicalAllReduce(f.machine->topology(), {}),
                 FatalError);
    EXPECT_THROW(HierarchicalAllReduce(f.machine->topology(),
                                       {{f.machine->workers()[0]}, {}}),
                 FatalError);
    HierarchicalAllReduce hier(f.machine->topology(), f.groups);
    std::vector<float> one(8);
    std::vector<std::span<float>> tooFew{std::span<float>(one)};
    EXPECT_THROW(
        hier.allReduce(tooFew, HierarchicalOptions{}, [] {}),
        FatalError);
}

TEST(Hierarchical, TrainerDefaultsToFlat)
{
    Simulation sim;
    MachineOptions mo;
    mo.nodes = 2;
    auto machine = makeAwsV100(sim, mo);
    coarse::baselines::AllReduceTrainer trainer(
        *machine, coarse::dl::makeBertBase(), 2);
    EXPECT_FALSE(trainer.hierarchical());

    Simulation sim2;
    auto machine2 = makeAwsV100(sim2, mo);
    coarse::baselines::AllReduceOptions options;
    options.topology = coarse::baselines::AllReduceTopology::Hierarchical;
    coarse::baselines::AllReduceTrainer hier(
        *machine2, coarse::dl::makeBertBase(), 2, options);
    EXPECT_TRUE(hier.hierarchical());
}

TEST(Hierarchical, FlatWinsBandwidthBoundTraining)
{
    // BERT-Large gradients are large: the bandwidth-optimal flat
    // ring must beat the three-phase schedule.
    const auto model = coarse::dl::makeBertLarge();
    auto blockedFor = [&](coarse::baselines::AllReduceTopology topo) {
        Simulation sim;
        MachineOptions mo;
        mo.nodes = 2;
        auto machine = makeAwsV100(sim, mo);
        coarse::baselines::AllReduceOptions options;
        options.topology = topo;
        coarse::baselines::AllReduceTrainer trainer(*machine, model, 2,
                                                    options);
        return trainer.run(2, 1).blockedCommSeconds;
    };
    EXPECT_LT(blockedFor(coarse::baselines::AllReduceTopology::Flat),
              blockedFor(
                  coarse::baselines::AllReduceTopology::Hierarchical));
}

} // namespace
