/**
 * @file
 * Tests for the proxy synchronization service, including the Fig. 10
 * FCFS deadlock and its queue-based avoidance.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "coarse/proxy_sync.hh"
#include "fabric/machine.hh"
#include "memdev/memory_device.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace {

using namespace coarse::core;
using namespace coarse::fabric;
using coarse::sim::Simulation;

struct ServiceFixture
{
    explicit ServiceFixture(SchedulingPolicy policy,
                            bool functional = true)
        : machine(makeSdscP100(sim))
    {
        for (auto node : machine->memDevices()) {
            devices.push_back(
                std::make_unique<coarse::memdev::MemoryDevice>(node));
        }
        std::vector<coarse::memdev::MemoryDevice *> raw;
        for (auto &d : devices)
            raw.push_back(d.get());
        service = std::make_unique<ProxySyncService>(
            machine->topology(), raw,
            coarse::memdev::SyncScheduleOptions{}, policy, functional);
        service->setOnSynced([this](const ShardKey &key,
                                    const std::vector<float> &data) {
            results[key] = data;
        });
    }

    Simulation sim;
    std::unique_ptr<Machine> machine;
    std::vector<std::unique_ptr<coarse::memdev::MemoryDevice>> devices;
    std::unique_ptr<ProxySyncService> service;
    std::map<ShardKey, std::vector<float>> results;
};

TEST(ProxySync, SingleShardSumsContributions)
{
    ServiceFixture f(SchedulingPolicy::Queued);
    const ShardKey key{0, 0, 0};
    const auto &workers = f.machine->workers();
    const auto &proxies = f.machine->memDevices();

    f.service->push(workers[0], proxies[0], key, 16,
                    {1.0f, 2.0f, 3.0f, 4.0f}, 2);
    f.service->push(workers[1], proxies[1], key, 16,
                    {10.0f, 20.0f, 30.0f, 40.0f}, 2);
    f.sim.run();

    EXPECT_TRUE(f.service->idle());
    ASSERT_TRUE(f.results.count(key));
    EXPECT_EQ(f.results[key],
              (std::vector<float>{11.0f, 22.0f, 33.0f, 44.0f}));
    EXPECT_EQ(f.service->shardsSynced().value(), 1u);
}

TEST(ProxySync, SharedProxyAccumulatesLocally)
{
    // Both workers push to the SAME proxy (the 2:1 sharing case); the
    // proxy must locally accumulate before the ring.
    ServiceFixture f(SchedulingPolicy::Queued);
    const ShardKey key{0, 1, 0};
    const auto &workers = f.machine->workers();
    const auto proxy = f.machine->memDevices()[0];

    f.service->push(workers[0], proxy, key, 8, {1.0f, 2.0f}, 2);
    f.service->push(workers[1], proxy, key, 8, {5.0f, 7.0f}, 2);
    f.sim.run();

    ASSERT_TRUE(f.results.count(key));
    EXPECT_EQ(f.results[key], (std::vector<float>{6.0f, 9.0f}));
}

TEST(ProxySync, ManyShardsAllComplete)
{
    ServiceFixture f(SchedulingPolicy::Queued);
    const auto &workers = f.machine->workers();
    const auto &proxies = f.machine->memDevices();
    const int shards = 20;
    for (int s = 0; s < shards; ++s) {
        const ShardKey key{0, 0, static_cast<std::uint32_t>(s)};
        for (std::size_t w = 0; w < workers.size(); ++w) {
            f.service->push(workers[w], proxies[w % proxies.size()],
                            key, 8,
                            {float(s), float(w)},
                            static_cast<std::uint32_t>(workers.size()));
        }
    }
    f.sim.run();
    EXPECT_TRUE(f.service->idle());
    EXPECT_EQ(f.results.size(), std::size_t(shards));
}

TEST(ProxySync, TimedModeMovesNoData)
{
    ServiceFixture f(SchedulingPolicy::Queued, /*functional=*/false);
    const ShardKey key{0, 0, 0};
    const auto &workers = f.machine->workers();
    const auto &proxies = f.machine->memDevices();
    f.service->push(workers[0], proxies[0], key, 1 << 20, {}, 2);
    f.service->push(workers[1], proxies[1], key, 1 << 20, {}, 2);
    f.sim.run();
    EXPECT_TRUE(f.service->idle());
    ASSERT_TRUE(f.results.count(key));
    EXPECT_TRUE(f.results[key].empty());
}

/**
 * The Fig. 10 scenario: tensor1 reaches proxy0 early and proxy1
 * late; tensor2 reaches proxy1 early and proxy0 late. Under FCFS
 * proxy0's queue head is tensor1 while proxy1's is tensor2, and the
 * ring collective for either tensor needs both proxies — deadlock.
 */
void
pushCrossOrdered(ServiceFixture &f)
{
    const auto &workers = f.machine->workers();
    const auto &proxies = f.machine->memDevices();
    const ShardKey t1{0, 1, 0};
    const ShardKey t2{0, 2, 0};
    auto &events = f.sim.events();

    // Early arrivals: t1 at proxy0, t2 at proxy1.
    f.service->push(workers[0], proxies[0], t1, 8, {1.0f, 1.0f}, 2);
    f.service->push(workers[1], proxies[1], t2, 8, {2.0f, 2.0f}, 2);
    // Late arrivals (well after the first pair landed): t2 at
    // proxy0, t1 at proxy1.
    events.schedule(coarse::sim::fromSeconds(0.01), [&f] {
        const auto &w = f.machine->workers();
        const auto &p = f.machine->memDevices();
        f.service->push(w[1], p[0], ShardKey{0, 2, 0}, 8,
                        {3.0f, 3.0f}, 2);
        f.service->push(w[0], p[1], ShardKey{0, 1, 0}, 8,
                        {4.0f, 4.0f}, 2);
    });
}

TEST(ProxySync, FcfsDeadlocksOnCrossOrderedPushes)
{
    ServiceFixture f(SchedulingPolicy::Fcfs);
    pushCrossOrdered(f);
    f.sim.run();

    EXPECT_FALSE(f.service->idle());
    EXPECT_EQ(f.service->pendingCount(), 2u);
    EXPECT_TRUE(f.results.empty());
}

TEST(ProxySync, QueuedPolicyAvoidsTheSameDeadlock)
{
    ServiceFixture f(SchedulingPolicy::Queued);
    pushCrossOrdered(f);
    f.sim.run();

    EXPECT_TRUE(f.service->idle());
    EXPECT_EQ(f.results.size(), 2u);
    const ShardKey t1{0, 1, 0};
    const ShardKey t2{0, 2, 0};
    EXPECT_EQ(f.results[t1], (std::vector<float>{5.0f, 5.0f}));
    EXPECT_EQ(f.results[t2], (std::vector<float>{5.0f, 5.0f}));
}

TEST(ProxySync, FcfsCompletesWhenOrdersAgree)
{
    // FCFS is only deadlock-prone on conflicting orders; a consistent
    // order drains fine.
    ServiceFixture f(SchedulingPolicy::Fcfs);
    const auto &workers = f.machine->workers();
    const auto &proxies = f.machine->memDevices();
    const ShardKey t1{0, 1, 0};
    const ShardKey t2{0, 2, 0};

    f.service->push(workers[0], proxies[0], t1, 8, {1.0f, 1.0f}, 2);
    f.service->push(workers[1], proxies[1], t1, 8, {4.0f, 4.0f}, 2);
    f.sim.run();
    f.service->push(workers[0], proxies[0], t2, 8, {1.0f, 1.0f}, 2);
    f.service->push(workers[1], proxies[1], t2, 8, {4.0f, 4.0f}, 2);
    f.sim.run();

    EXPECT_TRUE(f.service->idle());
    EXPECT_EQ(f.results.size(), 2u);
}

TEST(ProxySync, RejectsInconsistentPushes)
{
    ServiceFixture f(SchedulingPolicy::Queued);
    const auto &workers = f.machine->workers();
    const auto &proxies = f.machine->memDevices();
    const ShardKey key{0, 0, 0};
    f.service->push(workers[0], proxies[0], key, 8, {1.0f, 1.0f}, 2);
    std::vector<float> four(4, 1.0f);
    std::vector<float> none;
    EXPECT_THROW(
        f.service->push(workers[1], proxies[1], key, 16, four, 2),
        coarse::sim::FatalError);
    EXPECT_THROW(
        f.service->push(workers[1], proxies[1], key, 8, none, 2),
        coarse::sim::FatalError);
}

} // namespace
