/**
 * @file
 * Fault-injection subsystem tests: schedule parsing, the injector's
 * event-queue behaviour, link degradation in the fabric, heartbeat
 * detection, and the engine's proxy-crash recovery loop.
 */

#include <gtest/gtest.h>

#include <vector>

#include "coarse/engine.hh"
#include "dl/model_zoo.hh"
#include "fabric/machine.hh"
#include "fault/fault.hh"
#include "fault/heartbeat.hh"
#include "fault/injector.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"

namespace {

using namespace coarse;
using namespace coarse::fault;
using coarse::sim::FatalError;
using coarse::sim::Simulation;

TEST(FaultSchedule, ParsesDeclarativeSyntax)
{
    const auto schedule = parseFaultSchedule(
        "link-degrade@1ms+4ms:target=2,factor=0.25;"
        "proxy-crash@6ms:target=1;"
        "gpu-straggler@2.5ms+1ms:target=0,factor=2.0;"
        "link-flap@500us+2ms:target=3,factor=0.5,period=200us");
    ASSERT_EQ(schedule.size(), 4u);

    const FaultSpec &degrade = schedule.faults[0];
    EXPECT_EQ(degrade.kind, FaultKind::LinkDegrade);
    EXPECT_EQ(degrade.at, sim::fromSeconds(1e-3));
    EXPECT_EQ(degrade.duration, sim::fromSeconds(4e-3));
    EXPECT_EQ(degrade.target, 2u);
    EXPECT_DOUBLE_EQ(degrade.severity, 0.25);

    const FaultSpec &crash = schedule.faults[1];
    EXPECT_EQ(crash.kind, FaultKind::ProxyCrash);
    EXPECT_EQ(crash.at, sim::fromSeconds(6e-3));
    EXPECT_EQ(crash.duration, 0u);
    EXPECT_EQ(crash.target, 1u);

    const FaultSpec &straggler = schedule.faults[2];
    EXPECT_EQ(straggler.kind, FaultKind::GpuStraggler);
    EXPECT_DOUBLE_EQ(straggler.severity, 2.0);

    const FaultSpec &flap = schedule.faults[3];
    EXPECT_EQ(flap.kind, FaultKind::LinkFlap);
    EXPECT_EQ(flap.flapPeriod, sim::fromSeconds(200e-6));
}

TEST(FaultSchedule, MalformedEntriesAreFatal)
{
    // Missing @TIME.
    EXPECT_THROW(parseFaultSchedule("link-degrade:target=0"),
                 FatalError);
    // Unknown kind.
    EXPECT_THROW(parseFaultSchedule("gpu-melt@1ms:target=0"),
                 FatalError);
    // Time without a unit.
    EXPECT_THROW(parseFaultSchedule("proxy-crash@12:target=0"),
                 FatalError);
    // Missing the required target.
    EXPECT_THROW(parseFaultSchedule("proxy-crash@1ms"), FatalError);
    // Degrade factor outside (0, 1).
    EXPECT_THROW(
        parseFaultSchedule("link-degrade@1ms:target=0,factor=1.5"),
        FatalError);
    // Flap without a period.
    EXPECT_THROW(
        parseFaultSchedule("link-flap@1ms+2ms:target=0,factor=0.5"),
        FatalError);
    // Proxy crash is fail-stop: a duration is a contradiction.
    EXPECT_THROW(parseFaultSchedule("proxy-crash@1ms+2ms:target=0"),
                 FatalError);
    // Empty schedule.
    EXPECT_THROW(parseFaultSchedule(";;"), FatalError);
}

TEST(FaultSchedule, RandomStormIsDeterministic)
{
    RandomFaultOptions options;
    options.horizon = sim::fromSeconds(10e-3);
    options.faults = 12;
    options.links = 6;
    options.proxies = 4;
    options.workers = 4;
    options.maxProxyCrashes = 2;

    sim::Random rngA(42);
    sim::Random rngB(42);
    const auto a = randomFaultSchedule(rngA, options);
    const auto b = randomFaultSchedule(rngB, options);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a.size(), options.faults + 2);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.faults[i].kind, b.faults[i].kind) << i;
        EXPECT_EQ(a.faults[i].at, b.faults[i].at) << i;
        EXPECT_EQ(a.faults[i].duration, b.faults[i].duration) << i;
        EXPECT_EQ(a.faults[i].target, b.faults[i].target) << i;
        EXPECT_DOUBLE_EQ(a.faults[i].severity, b.faults[i].severity)
            << i;
    }

    // A different seed draws a different storm.
    sim::Random rngC(43);
    const auto c = randomFaultSchedule(rngC, options);
    bool anyDiffers = false;
    for (std::size_t i = 0; i < a.size(); ++i)
        anyDiffers = anyDiffers || a.faults[i].at != c.faults[i].at;
    EXPECT_TRUE(anyDiffers);

    // Proxy crashes never hit the same device twice and leave at
    // least one alive.
    std::vector<std::uint32_t> crashed;
    for (const FaultSpec &f : a.faults) {
        if (f.kind == FaultKind::ProxyCrash)
            crashed.push_back(f.target);
    }
    ASSERT_EQ(crashed.size(), 2u);
    EXPECT_NE(crashed[0], crashed[1]);
}

TEST(FaultInjector, FiresHooksAtScheduledTicks)
{
    Simulation sim;
    struct Call
    {
        std::string what;
        sim::Tick at;
        std::uint32_t target;
    };
    std::vector<Call> calls;

    FaultHooks hooks;
    hooks.degradeLink = [&](std::uint32_t link, double) {
        calls.push_back({"degrade", sim.now(), link});
    };
    hooks.restoreLink = [&](std::uint32_t link) {
        calls.push_back({"restore", sim.now(), link});
    };
    hooks.crashProxy = [&](std::uint32_t proxy) {
        calls.push_back({"crash", sim.now(), proxy});
    };
    hooks.slowWorker = [&](std::uint32_t worker, double) {
        calls.push_back({"slow", sim.now(), worker});
    };
    hooks.restoreWorker = [&](std::uint32_t worker) {
        calls.push_back({"unslow", sim.now(), worker});
    };

    FaultInjector injector(
        sim,
        parseFaultSchedule("link-degrade@1ms+2ms:target=5,factor=0.5;"
                           "gpu-straggler@2ms+2ms:target=1,factor=3;"
                           "proxy-crash@5ms:target=0"),
        std::move(hooks));
    injector.arm();
    sim.run();

    ASSERT_EQ(calls.size(), 5u);
    EXPECT_EQ(calls[0].what, "degrade");
    EXPECT_EQ(calls[0].at, sim::fromSeconds(1e-3));
    EXPECT_EQ(calls[0].target, 5u);
    EXPECT_EQ(calls[1].what, "slow");
    EXPECT_EQ(calls[1].at, sim::fromSeconds(2e-3));
    EXPECT_EQ(calls[2].what, "restore");
    EXPECT_EQ(calls[2].at, sim::fromSeconds(3e-3));
    EXPECT_EQ(calls[3].what, "unslow");
    EXPECT_EQ(calls[3].at, sim::fromSeconds(4e-3));
    EXPECT_EQ(calls[4].what, "crash");
    EXPECT_EQ(calls[4].at, sim::fromSeconds(5e-3));

    EXPECT_EQ(injector.faultsInjected().value(), 3u);
    EXPECT_EQ(injector.linkDegrades().value(), 1u);
    EXPECT_EQ(injector.gpuStragglers().value(), 1u);
    EXPECT_EQ(injector.proxyCrashes().value(), 1u);

    EXPECT_THROW(injector.arm(), FatalError); // arm() is one-shot
}

TEST(FaultInjector, FlapTogglesTheLinkAndEndsRestored)
{
    Simulation sim;
    int downs = 0;
    int ups = 0;
    bool degraded = false;

    FaultHooks hooks;
    hooks.degradeLink = [&](std::uint32_t, double) {
        ++downs;
        degraded = true;
    };
    hooks.restoreLink = [&](std::uint32_t) {
        ++ups;
        degraded = false;
    };

    // 2 ms window, 1 ms period: two full down/up cycles.
    FaultInjector injector(
        sim,
        parseFaultSchedule(
            "link-flap@1ms+2ms:target=0,factor=0.5,period=1ms"),
        std::move(hooks));
    injector.arm();
    sim.run();

    EXPECT_EQ(downs, 2);
    EXPECT_EQ(ups, 2);
    EXPECT_FALSE(degraded); // the window always ends healthy
    EXPECT_EQ(injector.faultsInjected().value(), 1u);
    EXPECT_EQ(injector.linkFlaps().value(), 1u);
}

TEST(FaultInjector, MissingHookIsFatal)
{
    Simulation sim;
    FaultHooks hooks; // all empty
    FaultInjector injector(
        sim, parseFaultSchedule("proxy-crash@1ms:target=0"),
        std::move(hooks));
    EXPECT_THROW(injector.arm(), FatalError);
}

TEST(LinkDegrade, SlowsTransfersAndPathBandwidth)
{
    Simulation sim;
    fabric::Topology topo(sim);
    const auto a = topo.addNode(fabric::NodeKind::Gpu, "a");
    const auto b = topo.addNode(fabric::NodeKind::MemoryDevice, "b");
    fabric::LinkParams params;
    params.bandwidth = fabric::BandwidthCurve::flat(fabric::gbps(10.0));
    const auto link = topo.addLink(a, b, params);

    const std::uint64_t bytes = 10 << 20;
    const double healthy = topo.pathBandwidth(a, b, bytes);

    sim::Tick healthyArrival = 0;
    {
        fabric::Message msg;
        msg.src = a;
        msg.dst = b;
        msg.bytes = bytes;
        msg.onDelivered = [&] { healthyArrival = sim.now(); };
        topo.send(msg);
        sim.run();
    }

    topo.link(link).setDegradeFactor(0.5);
    EXPECT_DOUBLE_EQ(topo.pathBandwidth(a, b, bytes), healthy * 0.5);

    const sim::Tick degradeStart = sim.now();
    sim::Tick degradedArrival = 0;
    {
        fabric::Message msg;
        msg.src = a;
        msg.dst = b;
        msg.bytes = bytes;
        msg.onDelivered = [&] { degradedArrival = sim.now(); };
        topo.send(msg);
        sim.run();
    }

    // Serialization dominates at 10 MiB, so halving the bandwidth
    // roughly doubles the delivery time.
    const double healthySeconds = sim::toSeconds(healthyArrival);
    const double degradedSeconds =
        sim::toSeconds(degradedArrival - degradeStart);
    EXPECT_GT(degradedSeconds, 1.9 * healthySeconds);
    EXPECT_LT(degradedSeconds, 2.1 * healthySeconds);

    // Restore heals the link completely.
    topo.link(link).setDegradeFactor(1.0);
    EXPECT_DOUBLE_EQ(topo.pathBandwidth(a, b, bytes), healthy);

    // Out-of-range factors are rejected.
    EXPECT_THROW(topo.link(link).setDegradeFactor(0.0), FatalError);
    EXPECT_THROW(topo.link(link).setDegradeFactor(1.5), FatalError);
}

TEST(Heartbeat, DetectsACrashWithoutFalsePositives)
{
    Simulation sim;
    auto machine = fabric::makeSdscP100(sim);
    auto &topo = machine->topology();

    std::vector<bool> dead(machine->memDevices().size(), false);
    std::vector<std::size_t> declared;
    sim::Tick detectedAt = 0;

    HeartbeatMonitor::Params params;
    params.interval = sim::fromMicroseconds(50);
    params.timeout = sim::fromMicroseconds(25);
    HeartbeatMonitor monitor(
        topo, machine->workers().front(), machine->memDevices(), params,
        [&](std::size_t i) { return !dead[i]; },
        [&](std::size_t i) {
            declared.push_back(i);
            detectedAt = sim.now();
        });

    const sim::Tick crashTick = sim::fromMicroseconds(400);
    sim.events().post(crashTick, [&] { dead[1] = true; });

    monitor.start();
    sim.run(sim::fromMicroseconds(1000));
    monitor.stop();
    sim.run(); // drain the leftover probe events

    ASSERT_EQ(declared.size(), 1u);
    EXPECT_EQ(declared[0], 1u);
    EXPECT_FALSE(monitor.watching(1));
    EXPECT_TRUE(monitor.watching(0));
    EXPECT_EQ(monitor.timeoutsFired().value(), 1u);

    // Detection happens after the crash, within one probe interval
    // plus the timeout (plus the probe's own flight time).
    EXPECT_GT(detectedAt, crashTick);
    EXPECT_LE(detectedAt,
              crashTick + params.interval + params.timeout
                  + sim::fromMicroseconds(10));

    EXPECT_GT(monitor.beatsSent().value(), 0u);
    EXPECT_GT(monitor.acksReceived().value(), 0u);
}

TEST(Heartbeat, RejectsSubRoundTripTimeout)
{
    Simulation sim;
    auto machine = fabric::makeSdscP100(sim);
    HeartbeatMonitor::Params params;
    params.interval = sim::fromMicroseconds(50);
    params.timeout = 1; // one picosecond: below any round trip
    EXPECT_THROW(HeartbeatMonitor(machine->topology(),
                                  machine->workers().front(),
                                  machine->memDevices(), params,
                                  [](std::size_t) { return true; },
                                  [](std::size_t) {}),
                 FatalError);
}

TEST(Heartbeat, ProbeInFlightAtCrashTimeDetectsOnce)
{
    Simulation sim;
    auto machine = fabric::makeSdscP100(sim);
    auto &topo = machine->topology();

    std::vector<bool> dead(machine->memDevices().size(), false);
    std::vector<std::size_t> declared;

    HeartbeatMonitor::Params params;
    params.interval = sim::fromMicroseconds(50);
    params.timeout = sim::fromMicroseconds(25);
    HeartbeatMonitor monitor(
        topo, machine->workers().front(), machine->memDevices(), params,
        [&](std::size_t i) { return !dead[i]; },
        [&](std::size_t i) { declared.push_back(i); });

    // Crash one tick after the 400us probe leaves: the probe is in
    // flight at crash time, reaches dead hardware, and its timeout is
    // the first (and only) chance to notice. The next probe's timeout
    // must not double-report.
    const sim::Tick crashTick = sim::fromMicroseconds(400) + 1;
    sim.events().post(crashTick, [&] { dead[1] = true; });

    monitor.start();
    sim.run(sim::fromMicroseconds(1000));
    monitor.stop();
    sim.run();

    ASSERT_EQ(declared.size(), 1u);
    EXPECT_EQ(declared[0], 1u);
    EXPECT_EQ(monitor.timeoutsFired().value(), 1u);
    EXPECT_FALSE(monitor.watching(1));
}

TEST(Heartbeat, MarkDeadSuppressesDetection)
{
    Simulation sim;
    auto machine = fabric::makeSdscP100(sim);
    auto &topo = machine->topology();

    std::vector<bool> dead(machine->memDevices().size(), false);
    std::vector<std::size_t> declared;

    HeartbeatMonitor::Params params;
    params.interval = sim::fromMicroseconds(50);
    params.timeout = sim::fromMicroseconds(25);
    HeartbeatMonitor monitor(
        topo, machine->workers().front(), machine->memDevices(), params,
        [&](std::size_t i) { return !dead[i]; },
        [&](std::size_t i) { declared.push_back(i); });

    // Recovery learns of proxy 0's death out of band, with the 400us
    // probe already in flight; that probe's armed timeout must drain
    // as a no-op rather than enqueue a second detection.
    sim.events().post(sim::fromMicroseconds(400) + 1, [&] {
        dead[0] = true;
        monitor.markDead(0);
    });

    monitor.start();
    sim.run(sim::fromMicroseconds(1000));
    monitor.stop();
    sim.run();

    EXPECT_TRUE(declared.empty());
    EXPECT_EQ(monitor.timeoutsFired().value(), 0u);
    EXPECT_FALSE(monitor.watching(0));
    EXPECT_TRUE(monitor.watching(1));
}

coarse::dl::ModelSpec
tinyModel()
{
    return coarse::dl::makeSynthetic(
        "tiny", {512, 1 << 20, 2048, (3 << 20) / 4, 256}, 2e9,
        1 << 20);
}

core::CoarseOptions
faultTolerantOptions()
{
    core::CoarseOptions options;
    options.functionalData = true;
    options.learningRate = 0.5;
    options.checkpointEveryIters = 2;
    return options;
}

TEST(EngineFaults, RecoversFromProxyCrashWithIdenticalWeights)
{
    const std::uint32_t iters = 6;

    // Fault-free reference run (same checkpoint cadence, no monitor).
    Simulation cleanSim;
    auto cleanMachine = fabric::makeSdscP100(cleanSim);
    core::CoarseEngine clean(*cleanMachine, tinyModel(), 4,
                             faultTolerantOptions());
    const auto cleanReport = clean.run(iters, 0);
    ASSERT_FALSE(cleanReport.deadlocked);
    const sim::Tick cleanEnd = cleanSim.now();

    // Faulty run: proxy 1 fail-stops ~40% into training.
    Simulation sim;
    auto machine = fabric::makeSdscP100(sim);
    auto options = faultTolerantOptions();
    options.heartbeats = true;
    options.heartbeatIntervalSeconds = 20e-6;
    options.heartbeatTimeoutSeconds = 10e-6;
    core::CoarseEngine engine(*machine, tinyModel(), 4, options);

    FaultSchedule schedule;
    FaultSpec crash;
    crash.kind = FaultKind::ProxyCrash;
    crash.at = cleanEnd * 2 / 5;
    crash.target = 1;
    schedule.faults.push_back(crash);
    FaultInjector injector(sim, schedule, engine.faultHooks());
    injector.arm();

    const auto report = engine.run(iters, 0);
    ASSERT_FALSE(report.deadlocked);

    // The crash was detected, recovered from, and accounted.
    EXPECT_EQ(injector.proxyCrashes().value(), 1u);
    EXPECT_EQ(engine.failuresRecovered(), 1u);
    EXPECT_GT(engine.iterationsReplayed(), 0u);
    EXPECT_EQ(engine.aliveProxyCount(), 1u);
    EXPECT_TRUE(engine.proxyAlive(0));
    EXPECT_FALSE(engine.proxyAlive(1));
    ASSERT_EQ(engine.detectionLatency().count(), 1u);
    EXPECT_GT(engine.detectionLatency().mean(), 0.0);
    ASSERT_EQ(engine.recoveryTime().count(), 1u);
    EXPECT_GT(engine.recoveryTime().mean(), 0.0);
    EXPECT_GT(engine.rollbackBytes().value(), 0u);

    // Exactly one recovery episode ran, cleanly classified, with no
    // duplicate detections and no pull-deadline escalation.
    const auto &recovery = engine.recovery();
    EXPECT_EQ(recovery.partialRollbacks().value()
                  + recovery.fullRollbacks().value(),
              1u);
    EXPECT_EQ(recovery.duplicateDetections().value(), 0u);
    EXPECT_EQ(recovery.escalations().value(), 0u);
    EXPECT_EQ(recovery.state(),
              core::RecoveryManager::State::Idle);

    // Routing was rebuilt around the dead device: no worker may route
    // any tensor size to proxy 1.
    const auto deadNode = machine->memDevices()[1];
    for (std::size_t w = 0; w < machine->workers().size(); ++w) {
        const auto &table = engine.routingTableOf(w);
        EXPECT_NE(table.latProxy, deadNode) << "worker " << w;
        EXPECT_NE(table.bwProxy, deadNode) << "worker " << w;
    }

    // Recovery is exact: the final parameter state matches the
    // fault-free run bit for bit (two-worker sums are order-proof).
    const auto model = tinyModel();
    for (std::size_t t = 0; t < model.tensors.size(); ++t) {
        const auto &expect = clean.weights(0, t);
        const auto &got = engine.weights(0, t);
        ASSERT_EQ(expect.size(), got.size());
        for (std::size_t e = 0; e < expect.size(); e += 61)
            ASSERT_EQ(expect[e], got[e]) << "tensor " << t << " elem "
                                         << e;
    }
}

TEST(EngineFaults, FaultHistoryShrinksSuspectProxyAllotment)
{
    Simulation sim;
    auto machine = fabric::makeSdscP100(sim);
    core::CoarseEngine engine(*machine, tinyModel(), 4, {});

    const std::uint64_t before = engine.plannedProxyBytes(1);
    ASSERT_GT(before, 0u);

    // Heavy suspicion lands on proxy 1 (score 10 caps the penalty at
    // 2x), and the fabric-fault flag forces a re-profile at the next
    // iteration boundary: the planner prices proxy 1's paths twice as
    // slow and routes the bulk of the bytes to proxy 0 instead.
    engine.faultHistory().record(1, 10.0);
    engine.noteFabricFault();
    engine.run(2, 0);

    EXPECT_GE(engine.profileRuns(), 2u);
    EXPECT_GE(engine.faultHistory().eventsRecorded().value(), 1u);
    const std::uint64_t after = engine.plannedProxyBytes(1);
    EXPECT_LT(after, before);
    EXPECT_GT(engine.plannedProxyBytes(0), 0u);

    // The score decays on every re-profile, so a proxy that stays
    // healthy earns its traffic back instead of being exiled forever.
    EXPECT_LT(engine.faultHistory().score(1), 10.0);
    EXPECT_GT(engine.faultHistory().score(1), 0.0);
}

TEST(EngineFaults, StragglerStretchesIterations)
{
    Simulation baseSim;
    auto baseMachine = fabric::makeSdscP100(baseSim);
    core::CoarseEngine base(*baseMachine, tinyModel(), 4, {});
    const auto baseReport = base.run(4, 0);

    Simulation sim;
    auto machine = fabric::makeSdscP100(sim);
    core::CoarseEngine engine(*machine, tinyModel(), 4, {});
    engine.setWorkerSlowdown(0, 2.0);
    const auto report = engine.run(4, 0);

    // Twice-as-slow compute on one worker paces the whole data-
    // parallel step: iterations get strictly slower, and at least
    // compute-bound portions double.
    EXPECT_GT(report.iterationSeconds, baseReport.iterationSeconds);
    EXPECT_GE(report.iterationSeconds,
              2.0 * baseReport.computeSeconds);
}

TEST(EngineFaults, LinkFaultTriggersReprofile)
{
    Simulation sim;
    auto machine = fabric::makeSdscP100(sim);
    core::CoarseEngine engine(*machine, tinyModel(), 4, {});
    EXPECT_EQ(engine.profileRuns(), 1u);

    FaultInjector injector(
        sim,
        parseFaultSchedule("link-degrade@1us:target=0,factor=0.5"),
        engine.faultHooks());
    injector.arm();
    engine.run(3, 0);

    // The degrade landed before iteration 1, so the engine re-ran the
    // profiler at the next iteration boundary.
    EXPECT_GE(engine.profileRuns(), 2u);
}

TEST(EngineFaults, ProxyCrashWithoutHeartbeatsIsFatal)
{
    Simulation sim;
    auto machine = fabric::makeSdscP100(sim);
    core::CoarseEngine engine(*machine, tinyModel(), 4, {});
    EXPECT_THROW(engine.crashProxy(1), FatalError);
}

TEST(EngineFaults, CrashingTheLastProxyIsFatal)
{
    Simulation sim;
    auto machine = fabric::makeSdscP100(sim);
    auto options = faultTolerantOptions();
    options.heartbeats = true;
    options.heartbeatIntervalSeconds = 20e-6;
    options.heartbeatTimeoutSeconds = 10e-6;
    core::CoarseEngine engine(*machine, tinyModel(), 4, options);
    engine.crashProxy(0);
    EXPECT_THROW(engine.crashProxy(1), FatalError);
}

} // namespace
