/**
 * @file
 * Tests for the sharded and asynchronous parameter-server baselines.
 */

#include <gtest/gtest.h>

#include <memory>

#include "baselines/async_ps.hh"
#include "baselines/dense.hh"
#include "baselines/sharded_ps.hh"
#include "dl/model_zoo.hh"
#include "fabric/machine.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace {

using namespace coarse::baselines;
using coarse::sim::FatalError;
using coarse::sim::Simulation;

coarse::dl::ModelSpec
smallModel()
{
    return coarse::dl::makeSynthetic("small", {1 << 20, 4 << 20}, 5e9,
                                     1 << 20);
}

TEST(ShardedPs, ShardsAcrossAllDevices)
{
    Simulation sim;
    auto machine = coarse::fabric::makeAwsV100(sim);
    ShardedPsTrainer trainer(*machine, smallModel(), 8);
    EXPECT_EQ(trainer.shardCount(), machine->memDevices().size());
    std::uint64_t total = 0;
    for (std::size_t s = 0; s < trainer.shardCount(); ++s)
        total += trainer.shardBytes(s);
    EXPECT_EQ(total, smallModel().parameterBytes());
}

TEST(ShardedPs, FasterThanDenseOnTheSameMachine)
{
    // Spreading the parameter traffic over four device attachments
    // must beat funnelling it all through one.
    Simulation simA;
    auto machineA = coarse::fabric::makeAwsV100(simA);
    DenseTrainer dense(*machineA, smallModel(), 8);
    const auto denseReport = dense.run(3, 1);

    Simulation simB;
    auto machineB = coarse::fabric::makeAwsV100(simB);
    ShardedPsTrainer sharded(*machineB, smallModel(), 8);
    const auto shardedReport = sharded.run(3, 1);

    EXPECT_LT(shardedReport.blockedCommSeconds,
              denseReport.blockedCommSeconds);
}

TEST(ShardedPs, GpuDirectBeatsCciLoadStore)
{
    auto blockedFor = [](bool direct) {
        Simulation sim;
        auto machine = coarse::fabric::makeAwsV100(sim);
        ShardedPsOptions options;
        options.gpuDirect = direct;
        ShardedPsTrainer trainer(*machine, smallModel(), 8, options);
        return trainer.run(2, 1).blockedCommSeconds;
    };
    EXPECT_LT(blockedFor(true), blockedFor(false) / 2.0);
}

TEST(ShardedPs, ReportIsSane)
{
    Simulation sim;
    auto machine = coarse::fabric::makeSdscP100(sim);
    ShardedPsTrainer trainer(*machine, smallModel(), 8);
    const auto report = trainer.run(3, 1);
    EXPECT_EQ(report.scheme, "Sharded-PS");
    EXPECT_EQ(report.iterations, 3u);
    EXPECT_GT(report.blockedCommSeconds, 0.0);
}

TEST(AsyncPs, CompletesAndReports)
{
    Simulation sim;
    auto machine = coarse::fabric::makeSdscP100(sim);
    AsyncPsTrainer trainer(*machine, smallModel(), 8);
    const auto report = trainer.run(4, 1);
    EXPECT_EQ(report.scheme, "Async-PS");
    EXPECT_FALSE(report.deadlocked);
    EXPECT_EQ(report.iterations, 4u);
    EXPECT_GT(report.iterationSeconds, 0.0);
}

TEST(AsyncPs, StalenessStaysWithinBound)
{
    Simulation sim;
    auto machine = coarse::fabric::makeAwsV100(sim);
    AsyncPsOptions options;
    options.stalenessBound = 3;
    AsyncPsTrainer trainer(*machine, smallModel(), 8, options);
    trainer.run(6, 0);
    EXPECT_LE(trainer.maxObservedStaleness(), 3u);
}

TEST(AsyncPs, LooserBoundHidesMoreCommunication)
{
    auto blockedFor = [](std::uint32_t bound) {
        Simulation sim;
        auto machine = coarse::fabric::makeSdscP100(sim);
        AsyncPsOptions options;
        options.stalenessBound = bound;
        // Big model so the server apply time dominates.
        AsyncPsTrainer trainer(
            *machine,
            coarse::dl::makeSynthetic("big", {64 << 20}, 5e9, 1 << 20),
            8, options);
        return trainer.run(4, 1).blockedCommSeconds;
    };
    EXPECT_LT(blockedFor(4), blockedFor(1));
}

TEST(AsyncPs, RejectsBadConfig)
{
    Simulation sim;
    auto machine = coarse::fabric::makeSdscP100(sim);
    AsyncPsOptions options;
    options.stalenessBound = 0;
    EXPECT_THROW(AsyncPsTrainer(*machine, smallModel(), 8, options),
                 FatalError);
}

TEST(AsyncPs, OutOfMemoryBatchIsFatal)
{
    Simulation sim;
    auto machine = coarse::fabric::makeAwsV100(sim);
    AsyncPsTrainer trainer(*machine, coarse::dl::makeBertLarge(), 64);
    EXPECT_THROW(trainer.run(1), FatalError);
}

} // namespace
