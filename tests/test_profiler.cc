/**
 * @file
 * Tests for the COARSE profiler and routing tables.
 */

#include <gtest/gtest.h>

#include "coarse/profiler.hh"
#include "fabric/machine.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace {

using namespace coarse::core;
using namespace coarse::fabric;
using coarse::sim::FatalError;
using coarse::sim::Simulation;

TEST(Profiler, PathProfileIsMonotone)
{
    Simulation sim;
    auto m = makeSdscP100(sim);
    Profiler profiler(m->topology());
    const auto profile = profiler.profilePath(
        m->workers()[0], m->pairedMemDevice(m->workers()[0]));
    EXPECT_GT(profile.latencySeconds, 0.0);
    EXPECT_GT(profile.peakBytesPerSec, 0.0);
    double lastBw = 0.0;
    for (const auto &point : profile.points) {
        EXPECT_GE(point.bytesPerSec, lastBw);
        lastBw = point.bytesPerSec;
        EXPECT_GT(point.seconds, profile.latencySeconds);
    }
}

TEST(Profiler, LocalMachinePicksSameProxyForBoth)
{
    // SDSC has conventional locality: the paired (local) proxy is
    // both latency- and bandwidth-optimal, so everything routes there
    // and the threshold is zero.
    Simulation sim;
    auto m = makeSdscP100(sim);
    Profiler profiler(m->topology());
    const auto profile =
        profiler.profileClient(m->workers()[0], m->memDevices());
    EXPECT_EQ(profile.routing.latProxy,
              m->pairedMemDevice(m->workers()[0]));
    EXPECT_EQ(profile.routing.bwProxy, profile.routing.latProxy);
    EXPECT_EQ(profile.routing.thresholdBytes, 0u);
}

TEST(Profiler, AntiLocalMachineSplitsProxies)
{
    // AWS V100 is anti-local: the local proxy has the lowest latency
    // but a *remote* proxy has the highest bandwidth.
    Simulation sim;
    auto m = makeAwsV100(sim);
    Profiler profiler(m->topology());
    const auto profile =
        profiler.profileClient(m->workers()[0], m->memDevices());
    EXPECT_EQ(profile.routing.latProxy,
              m->pairedMemDevice(m->workers()[0]));
    EXPECT_NE(profile.routing.bwProxy, profile.routing.latProxy);
    EXPECT_GT(profile.routing.thresholdBytes, 0u);
}

TEST(Profiler, ThresholdRoutesBySize)
{
    Simulation sim;
    auto m = makeAwsV100(sim);
    Profiler profiler(m->topology());
    const auto profile =
        profiler.profileClient(m->workers()[0], m->memDevices());
    const auto &routing = profile.routing;
    EXPECT_EQ(routing.route(64), routing.latProxy);
    EXPECT_EQ(routing.route(64 << 20), routing.bwProxy);
    EXPECT_EQ(routing.route(routing.thresholdBytes), routing.bwProxy);
}

TEST(Profiler, CrossoverIsConsistentWithTransferTimes)
{
    // Below the threshold the LatProxy path must be at least as fast;
    // above it the BwProxy path must be. Verify against the
    // topology's analytic path model.
    Simulation sim;
    auto m = makeAwsV100(sim);
    auto &topo = m->topology();
    Profiler profiler(topo);
    const NodeId client = m->workers()[0];
    const auto profile =
        profiler.profileClient(client, m->memDevices());
    const auto &r = profile.routing;
    ASSERT_GT(r.thresholdBytes, 0u);

    auto seconds = [&](NodeId proxy, std::uint64_t bytes) {
        return coarse::sim::toSeconds(
                   topo.pathLatency(client, proxy, kNoNvLink))
            + double(bytes)
            / topo.pathBandwidth(client, proxy, bytes, kNoNvLink);
    };
    const std::uint64_t below = r.thresholdBytes / 4;
    const std::uint64_t above = r.thresholdBytes * 4;
    EXPECT_LE(seconds(r.latProxy, below), seconds(r.bwProxy, below));
    EXPECT_LE(seconds(r.bwProxy, above), seconds(r.latProxy, above));
}

TEST(Profiler, ShardSizeSaturatesBandwidth)
{
    Simulation sim;
    auto m = makeSdscP100(sim);
    auto &topo = m->topology();
    Profiler profiler(topo);
    const NodeId client = m->workers()[0];
    const auto profile =
        profiler.profileClient(client, m->memDevices());
    const NodeId proxy = profile.routing.bwProxy;
    const double atShard =
        topo.pathBandwidth(client, proxy, profile.shardBytes, kNoNvLink);
    const double atHuge =
        topo.pathBandwidth(client, proxy, 64 << 20, kNoNvLink);
    EXPECT_GE(atShard, 0.95 * atHuge);
    // And it is the *smallest* probed size that does so.
    EXPECT_LT(topo.pathBandwidth(client, proxy, profile.shardBytes / 2,
                                 kNoNvLink),
              0.95 * atHuge);
}

TEST(Profiler, ShardSizeMatchesDmaSaturationPoint)
{
    // The machine presets saturate at 2 MiB (Fig. 14), so the
    // profiled shard size lands there.
    Simulation sim;
    auto m = makeSdscP100(sim);
    Profiler profiler(m->topology());
    const auto profile =
        profiler.profileClient(m->workers()[0], m->memDevices());
    EXPECT_EQ(profile.shardBytes, std::uint64_t(2) << 20);
}

TEST(Profiler, MeasuredProfileMatchesAnalyticOnIdleFabric)
{
    // Probing an idle fabric must find the same routing table the
    // analytic model predicts.
    Simulation sim;
    auto m = makeAwsV100(sim);
    Profiler profiler(m->topology());
    const NodeId client = m->workers()[0];
    const NodeId preferred = m->pairedMemDevice(client);

    const auto analytic =
        profiler.profileClient(client, m->memDevices(), preferred);

    bool done = false;
    ClientProfile measured;
    profiler.profileClientMeasured(client, m->memDevices(), preferred,
                                   [&](ClientProfile profile) {
                                       measured = std::move(profile);
                                       done = true;
                                   });
    sim.run();
    ASSERT_TRUE(done);
    EXPECT_EQ(measured.routing.latProxy, analytic.routing.latProxy);
    EXPECT_EQ(measured.routing.bwProxy, analytic.routing.bwProxy);
    // Real probes see store-and-forward skew the analytic model
    // excludes, so the measured saturation knee can land a step or
    // two later — but never earlier, and within a small factor.
    EXPECT_GE(measured.shardBytes, analytic.shardBytes);
    EXPECT_LE(measured.shardBytes, analytic.shardBytes * 4);
    // Measured bandwidths track the analytic curve within the
    // store-and-forward pipeline skew.
    ASSERT_EQ(measured.paths.size(), analytic.paths.size());
    const auto &mp = measured.paths.front();
    const auto &ap = analytic.paths.front();
    EXPECT_NEAR(mp.peakBytesPerSec, ap.peakBytesPerSec,
                ap.peakBytesPerSec * 0.15);
}

TEST(Profiler, MeasuredProfilingTakesSimulatedTime)
{
    Simulation sim;
    auto m = makeSdscP100(sim);
    Profiler profiler(m->topology());
    bool done = false;
    profiler.profileClientMeasured(
        m->workers()[0], m->memDevices(),
        m->pairedMemDevice(m->workers()[0]),
        [&](ClientProfile) { done = true; });
    EXPECT_FALSE(done); // asynchronous
    sim.run();
    EXPECT_TRUE(done);
    EXPECT_GT(sim.now(), 0u); // the probes cost simulated time
}

TEST(Profiler, RejectsBadConfig)
{
    Simulation sim;
    auto m = makeSdscP100(sim);
    ProfilerOptions bad;
    bad.maxProbeBytes = bad.minProbeBytes;
    EXPECT_THROW(Profiler(m->topology(), bad), FatalError);
    Profiler profiler(m->topology());
    EXPECT_THROW(profiler.profileClient(m->workers()[0], {}),
                 FatalError);
}

} // namespace
