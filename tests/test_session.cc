/**
 * @file
 * Tests for the framework-facing push/pull session API.
 */

#include <gtest/gtest.h>

#include <memory>

#include "coarse/session.hh"
#include "dl/model_zoo.hh"
#include "fabric/machine.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace {

using namespace coarse::core;
using coarse::sim::FatalError;
using coarse::sim::Simulation;

coarse::dl::ModelSpec
tinyModel()
{
    return coarse::dl::makeSynthetic("tiny", {64, 4096}, 1e9, 1 << 20);
}

struct SessionFixture : public ::testing::Test
{
    SessionFixture()
        : machine(coarse::fabric::makeSdscP100(sim)),
          session(std::make_unique<CoarseSession>(*machine,
                                                  tinyModel(), opts()))
    {
    }

    static SessionOptions
    opts()
    {
        SessionOptions options;
        options.optimizer.learningRate = 0.5;
        return options;
    }

    std::vector<float>
    grad(std::size_t tensorIdx, float value)
    {
        return std::vector<float>(
            tinyModel().tensors[tensorIdx].elements, value);
    }

    Simulation sim;
    std::unique_ptr<coarse::fabric::Machine> machine;
    std::unique_ptr<CoarseSession> session;
};

TEST_F(SessionFixture, PushFromAllClientsAppliesAveragedUpdate)
{
    const float w0 = session->weights(0)[0];
    int synced = 0;
    session->client(0).push(0, grad(0, 1.0f), [&] { ++synced; });
    session->client(1).push(0, grad(0, 3.0f), [&] { ++synced; });
    sim.run();

    EXPECT_EQ(synced, 2);
    EXPECT_EQ(session->roundsCompleted(0), 1u);
    // avg grad = 2.0, lr = 0.5 -> w -= 1.0
    EXPECT_NEAR(session->weights(0)[0], w0 - 1.0f, 1e-5);
}

TEST_F(SessionFixture, PullDeliversCurrentWeights)
{
    session->client(0).push(1, grad(1, 2.0f));
    session->client(1).push(1, grad(1, 2.0f));
    sim.run();

    bool pulled = false;
    session->client(0).pull(1, [&](const std::vector<float> &data) {
        pulled = true;
        EXPECT_EQ(data.size(), tinyModel().tensors[1].elements);
        EXPECT_NEAR(data[0], session->weights(1)[0], 1e-6);
    });
    sim.run();
    EXPECT_TRUE(pulled);
}

TEST_F(SessionFixture, PullTakesSimulatedTime)
{
    const auto before = sim.now();
    session->client(0).pull(1, [](const std::vector<float> &) {});
    sim.run();
    EXPECT_GT(sim.now(), before);
}

TEST_F(SessionFixture, MultipleRoundsAccumulate)
{
    for (int round = 0; round < 3; ++round) {
        session->client(0).push(0, grad(0, 1.0f));
        session->client(1).push(0, grad(0, 1.0f));
        sim.run();
    }
    EXPECT_EQ(session->roundsCompleted(0), 3u);
    // Three rounds of avg grad 1.0 at lr 0.5.
    const float initial = 1.0f; // element 0 of tensor 0
    EXPECT_NEAR(session->weights(0)[0], initial - 1.5f, 1e-5);
}

TEST_F(SessionFixture, TensorsAreIndependent)
{
    session->client(0).push(0, grad(0, 1.0f));
    session->client(1).push(0, grad(0, 1.0f));
    sim.run();
    EXPECT_EQ(session->roundsCompleted(0), 1u);
    EXPECT_EQ(session->roundsCompleted(1), 0u);
}

TEST_F(SessionFixture, DoublePushIsFatal)
{
    session->client(0).push(0, grad(0, 1.0f));
    EXPECT_THROW(session->client(0).push(0, grad(0, 1.0f)),
                 FatalError);
}

TEST_F(SessionFixture, WrongGradientSizeIsFatal)
{
    std::vector<float> bad(3, 1.0f);
    EXPECT_THROW(session->client(0).push(0, bad), FatalError);
    EXPECT_THROW(session->client(0).push(99, bad), FatalError);
}

TEST_F(SessionFixture, RoutingIsExposed)
{
    const auto &table = session->client(0).routing();
    EXPECT_NE(table.latProxy, coarse::fabric::kInvalidNode);
}

TEST_F(SessionFixture, CheckpointSnapshotsStorage)
{
    session->client(0).push(0, grad(0, 1.0f));
    session->client(1).push(0, grad(0, 1.0f));
    sim.run();
    const auto id = session->checkpoint();
    EXPECT_GT(id, 0u);
}

TEST(Session, LargeTensorIsPartitionedTransparently)
{
    Simulation sim;
    auto machine = coarse::fabric::makeAwsV100(sim);
    const auto model = coarse::dl::makeSynthetic(
        "big", {(8 << 20) / 4}, 1e9, 1 << 20); // 8 MiB tensor
    CoarseSession session(*machine, model);

    std::vector<float> gradient(model.tensors[0].elements, 4.0f);
    for (std::size_t w = 0; w < session.clientCount(); ++w)
        session.client(w).push(0, gradient);
    sim.run();
    EXPECT_EQ(session.roundsCompleted(0), 1u);
    // 4 workers x avg grad 4.0 at default lr 0.1 -> w -= 0.4.
    EXPECT_NEAR(session.weights(0)[0], 1.0f - 0.4f, 1e-4);
    // More than one shard was synchronized.
    EXPECT_GT(session.proxyService().shardsSynced().value(), 1u);
}

TEST(Session, AdamOptimizerOption)
{
    Simulation sim;
    auto machine = coarse::fabric::makeSdscP100(sim);
    SessionOptions options;
    options.optimizer.kind = coarse::dl::OptimizerKind::Adam;
    options.optimizer.learningRate = 0.1;
    const auto model =
        coarse::dl::makeSynthetic("adam", {128}, 1e9, 1 << 20);
    CoarseSession session(*machine, model, options);
    const float before = session.weights(0)[0];
    std::vector<float> gradient(128, 0.7f);
    session.client(0).push(0, gradient);
    session.client(1).push(0, gradient);
    sim.run();
    // First Adam step magnitude ~ lr.
    EXPECT_NEAR(before - session.weights(0)[0], 0.1f, 1e-3);
}

} // namespace
