/**
 * @file
 * Tests for the DL workload model: model zoo parameter counts,
 * memory footprints, batch-size limits, iteration timing.
 */

#include <gtest/gtest.h>

#include "dl/gpu.hh"
#include "dl/iteration.hh"
#include "dl/model.hh"
#include "dl/model_zoo.hh"
#include "sim/logging.hh"

namespace {

using namespace coarse::dl;
using coarse::sim::FatalError;

TEST(ModelZoo, ResNet50ParameterCount)
{
    const auto model = makeResNet50();
    // 25.557M in the canonical torchvision weights.
    EXPECT_NEAR(static_cast<double>(model.parameterCount()), 25.56e6,
                0.15e6);
    // 53 conv layers + their BN tensors + the fc head.
    EXPECT_GT(model.tensors.size(), 100u);
}

TEST(ModelZoo, BertBaseParameterCount)
{
    const auto model = makeBertBase();
    EXPECT_NEAR(static_cast<double>(model.parameterCount()), 109.5e6,
                2e6);
}

TEST(ModelZoo, BertLargeParameterCount)
{
    const auto model = makeBertLarge();
    EXPECT_NEAR(static_cast<double>(model.parameterCount()), 335e6,
                6e6);
}

TEST(ModelZoo, Vgg16ParameterCount)
{
    const auto model = makeVgg16();
    EXPECT_NEAR(static_cast<double>(model.parameterCount()), 138.4e6,
                1e6);
}

TEST(ModelZoo, LookupByName)
{
    EXPECT_EQ(makeModel("resnet50").name, "resnet50");
    EXPECT_EQ(makeModel("bert_large").name, "bert_large");
    EXPECT_THROW(makeModel("gpt3"), FatalError);
}

TEST(ModelZoo, SyntheticModelIsExact)
{
    const auto model = makeSynthetic("tiny", {10, 20, 30});
    EXPECT_EQ(model.tensors.size(), 3u);
    EXPECT_EQ(model.parameterCount(), 60u);
    EXPECT_EQ(model.parameterBytes(), 240u);
}

TEST(ModelSpec, PrefixFractionIsMonotone)
{
    const auto model = makeResNet50();
    double last = 0.0;
    for (std::size_t i = 0; i < model.tensors.size(); ++i) {
        const double f = model.prefixBytesFraction(i);
        EXPECT_GE(f, last);
        last = f;
    }
    EXPECT_DOUBLE_EQ(last, 1.0);
    EXPECT_THROW(model.prefixBytesFraction(model.tensors.size()),
                 FatalError);
}

TEST(Gpu, SpecsExist)
{
    EXPECT_EQ(gpuSpec("T4").name, "T4");
    EXPECT_EQ(gpuSpec("P100").memBytes, std::uint64_t(16) << 30);
    EXPECT_GT(gpuSpec("V100").fp32Tflops, gpuSpec("P100").fp32Tflops);
    EXPECT_THROW(gpuSpec("A100"), FatalError);
}

TEST(Footprint, ScalesWithBatch)
{
    const auto model = makeResNet50();
    const auto state = residentStateModel();
    EXPECT_LT(gpuMemoryNeeded(model, 1, state),
              gpuMemoryNeeded(model, 64, state));
}

TEST(Footprint, OffloadingShrinksState)
{
    const auto model = makeBertLarge();
    EXPECT_LT(gpuMemoryNeeded(model, 2, offloadedStateModel()),
              gpuMemoryNeeded(model, 2, residentStateModel()));
}

TEST(Footprint, BertLargeBatchLimitsMatchFig16e)
{
    // The paper's single-node result: AllReduce fits batch 2 but not
    // 4 on a 16 GB V100; COARSE's offloaded state fits batch 4.
    const auto model = makeBertLarge();
    const auto v100 = gpuSpec("V100");
    EXPECT_GE(maxBatchSize(model, v100.memBytes, residentStateModel()),
              2u);
    EXPECT_LT(maxBatchSize(model, v100.memBytes, residentStateModel()),
              4u);
    EXPECT_GE(maxBatchSize(model, v100.memBytes, offloadedStateModel()),
              4u);
}

TEST(Footprint, MaxBatchZeroWhenNothingFits)
{
    const auto model = makeBertLarge();
    EXPECT_EQ(maxBatchSize(model, 1 << 20, residentStateModel()), 0u);
}

TEST(IterationModel, BackwardLongerThanForward)
{
    const auto model = makeResNet50();
    const auto gpu = gpuSpec("V100");
    IterationModel iter(model, gpu, 64);
    EXPECT_GT(iter.forwardSeconds(), 0.0);
    EXPECT_NEAR(iter.backwardSeconds(),
                2.0 * iter.forwardSeconds(), 1e-9);
}

TEST(IterationModel, TimeScalesWithBatch)
{
    const auto model = makeResNet50();
    const auto gpu = gpuSpec("V100");
    IterationModel small(model, gpu, 16);
    IterationModel large(model, gpu, 64);
    // Slightly sublinear: the bigger batch fills the SMs better.
    EXPECT_LT(large.forwardSeconds(), 4.0 * small.forwardSeconds());
    EXPECT_GT(large.forwardSeconds(), 3.8 * small.forwardSeconds());
}

TEST(IterationModel, LargerBatchHasBetterPerSampleThroughput)
{
    const auto model = makeBertLarge();
    const auto gpu = gpuSpec("V100");
    IterationModel bs2(model, gpu, 2);
    IterationModel bs4(model, gpu, 4);
    const double perSample2 = bs2.forwardSeconds() / 2.0;
    const double perSample4 = bs4.forwardSeconds() / 4.0;
    EXPECT_LT(perSample4, perSample2);
}

TEST(IterationModel, FasterGpuIsFaster)
{
    const auto model = makeBertBase();
    IterationModel v100(model, gpuSpec("V100"), 2);
    IterationModel t4(model, gpuSpec("T4"), 2);
    EXPECT_LT(v100.forwardSeconds(), t4.forwardSeconds());
}

TEST(IterationModel, GradReadyIsReverseLayerOrder)
{
    const auto model = makeResNet50();
    IterationModel iter(model, gpuSpec("V100"), 32);
    // Output-side tensors become ready before input-side ones.
    const double lastTensor =
        iter.gradReadySeconds(model.tensors.size() - 1);
    const double firstTensor = iter.gradReadySeconds(0);
    EXPECT_LT(lastTensor, firstTensor);
    EXPECT_NEAR(firstTensor, iter.backwardSeconds(), 1e-12);
    for (std::size_t t = 1; t < model.tensors.size(); ++t) {
        EXPECT_GE(iter.gradReadySeconds(t - 1),
                  iter.gradReadySeconds(t));
    }
    EXPECT_THROW(iter.gradReadySeconds(model.tensors.size()),
                 FatalError);
}

TEST(IterationModel, ZeroBatchIsFatal)
{
    const auto model = makeResNet50();
    const auto gpu = gpuSpec("V100");
    EXPECT_THROW(IterationModel(model, gpu, 0), FatalError);
}

/** Parameter sweep: every zoo model has sane invariants. */
class ZooSweep : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ZooSweep, ModelInvariants)
{
    const auto model = makeModel(GetParam());
    EXPECT_FALSE(model.tensors.empty());
    EXPECT_GT(model.parameterCount(), 0u);
    EXPECT_GT(model.flopsPerSampleFwd, 0.0);
    EXPECT_GT(model.activationBytesPerSample, 0u);
    for (const auto &t : model.tensors) {
        EXPECT_GT(t.elements, 0u);
        EXPECT_FALSE(t.name.empty());
    }
}

INSTANTIATE_TEST_SUITE_P(Zoo, ZooSweep,
                         ::testing::Values("resnet50", "bert_base",
                                           "bert_large", "vgg16",
                                           "gpt2_medium"));

TEST(ModelZoo, Gpt2MediumParameterCount)
{
    const auto model = makeGpt2Medium();
    EXPECT_NEAR(static_cast<double>(model.parameterCount()), 353e6,
                10e6);
}

TEST(ModelZoo, TransformerLmScalesWithConfig)
{
    const auto small = makeTransformerLm(256, 4, 128);
    const auto big = makeTransformerLm(1024, 24, 1024);
    EXPECT_LT(small.parameterCount(), big.parameterCount());
    EXPECT_LT(small.flopsPerSampleFwd, big.flopsPerSampleFwd);
    EXPECT_LT(small.activationBytesPerSample,
              big.activationBytesPerSample);
}

} // namespace
