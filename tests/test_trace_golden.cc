/**
 * @file
 * Golden-trace regression tests: capture full simulation runs with an
 * in-memory TraceSession and assert span ordering/nesting invariants
 * (not byte equality, which would churn on every timing tweak).
 *
 *  - A 4-GPU ResNet-class iteration: per-link-direction busy spans
 *    never overlap, FP/BP/sync phases abut and nest inside the
 *    iteration span, and the dual-sync GPU ring drains before the
 *    proxy path completes.
 *  - A single-proxy-crash run: the recovery track records exactly one
 *    episode with the strict Idle -> Draining -> Repulling -> Idle
 *    state sequence.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "coarse/engine.hh"
#include "dl/model_zoo.hh"
#include "fabric/machine.hh"
#include "fault/fault.hh"
#include "fault/injector.hh"
#include "sim/simulation.hh"
#include "sim/trace.hh"

namespace {

using namespace coarse;
using sim::Tick;
using sim::TraceCategory;
using sim::TraceEvent;
using sim::TraceEventKind;
using sim::TraceSession;

/** Snapshot events bucketed per track, preserving snapshot order. */
std::map<std::uint32_t, std::vector<TraceEvent>>
byTrack(const std::vector<TraceEvent> &events)
{
    std::map<std::uint32_t, std::vector<TraceEvent>> tracks;
    for (const TraceEvent &e : events)
        tracks[e.track].push_back(e);
    return tracks;
}

std::vector<TraceEvent>
spansNamed(const std::vector<TraceEvent> &events, const char *name)
{
    std::vector<TraceEvent> out;
    for (const TraceEvent &e : events) {
        if (e.kind == TraceEventKind::Span
            && std::string(e.name) == name)
            out.push_back(e);
    }
    return out;
}

TEST(GoldenTrace, FourGpuResnetIterationInvariants)
{
    // The session precedes the machine so construction-time events
    // (the recovery Idle marker) are captured.
    TraceSession::Options traceOptions;
    traceOptions.capacity = std::size_t(1) << 20;
    TraceSession session(traceOptions);

    sim::Simulation simulation;
    auto machine = fabric::makeMachine("aws_v100", simulation);
    ASSERT_EQ(machine->workers().size(), 4u);

    core::CoarseOptions options;
    // Split the sync load so BOTH the GPU ring and the proxy path are
    // active — on aws_v100 the planner would otherwise give the
    // proxies everything and leave no gpu_sync spans to check. The
    // proxy-heavy split plus a small batch (short compute) keeps the
    // proxy drain the long pole, so the dual-sync ordering invariant
    // below is meaningful rather than vacuous.
    options.proxyShareOverride = 0.9;
    core::CoarseEngine engine(*machine, dl::makeModel("resnet50"), 4,
                              options);
    const auto report = engine.run(2, 0);
    ASSERT_FALSE(report.deadlocked);
    ASSERT_EQ(session.dropped(), 0u);

    const auto events = session.snapshot();
    const auto tracks = byTrack(events);

    // Map track names back to ids.
    std::map<std::string, std::uint32_t> trackIds;
    for (std::uint32_t t = 0; t < session.trackCount(); ++t)
        trackIds[session.trackName(t)] = t;

    // --- Invariant 1: FIFO link pipes never carry overlapping spans.
    std::size_t linkTracks = 0;
    std::size_t linkSpans = 0;
    for (const auto &[id, trackEvents] : tracks) {
        if (session.trackCategory(id) != TraceCategory::Link)
            continue;
        ++linkTracks;
        Tick prevEnd = 0;
        for (const TraceEvent &e : trackEvents) {
            if (e.kind != TraceEventKind::Span)
                continue;
            ++linkSpans;
            EXPECT_GE(e.start, prevEnd)
                << "overlapping busy spans on link track "
                << session.trackName(id);
            EXPECT_GE(e.end, e.start);
            prevEnd = e.end;
        }
    }
    EXPECT_GT(linkTracks, 0u);
    EXPECT_GT(linkSpans, 0u);

    // --- Invariant 2: per-GPU phases. FP ends exactly where BP
    // begins, and the GPU ring sync launches at the end of BP.
    std::size_t gpus = 0;
    for (const auto &[id, trackEvents] : tracks) {
        const std::string &name = session.trackName(id);
        if (name.rfind("gpu/", 0) != 0)
            continue;
        ++gpus;
        const auto fp = spansNamed(trackEvents, "fp");
        const auto bp = spansNamed(trackEvents, "bp");
        const auto gpuSync = spansNamed(trackEvents, "gpu_sync");
        ASSERT_EQ(fp.size(), 2u) << name;
        ASSERT_EQ(bp.size(), 2u) << name;
        ASSERT_EQ(gpuSync.size(), 2u) << name;
        for (std::size_t i = 0; i < fp.size(); ++i) {
            EXPECT_EQ(fp[i].arg0, i) << name;
            EXPECT_EQ(fp[i].end, bp[i].start) << name;
            EXPECT_EQ(bp[i].end, gpuSync[i].start) << name;
            EXPECT_GT(gpuSync[i].end, gpuSync[i].start) << name;
        }
    }
    EXPECT_EQ(gpus, 4u);

    // --- Invariant 3: engine phase spans nest inside the iteration
    // span, and pushes cannot precede the first gradient (FP end).
    const auto engineIt = trackIds.find("coarse/engine");
    ASSERT_NE(engineIt, trackIds.end());
    const auto &engineEvents = tracks.at(engineIt->second);
    const auto iterations = spansNamed(engineEvents, "iteration");
    const auto pushes = spansNamed(engineEvents, "push");
    const auto syncs = spansNamed(engineEvents, "sync");
    const auto pulls = spansNamed(engineEvents, "pull");
    ASSERT_EQ(iterations.size(), 2u);
    ASSERT_EQ(pushes.size(), 2u);
    ASSERT_EQ(syncs.size(), 2u);
    ASSERT_EQ(pulls.size(), 2u);

    const auto gpuTrack = trackIds.find("gpu/gpu0");
    ASSERT_NE(gpuTrack, trackIds.end());
    const auto fp0 = spansNamed(tracks.at(gpuTrack->second), "fp");
    const auto sync0 =
        spansNamed(tracks.at(gpuTrack->second), "gpu_sync");

    for (std::size_t i = 0; i < iterations.size(); ++i) {
        const TraceEvent &iter = iterations[i];
        EXPECT_EQ(iter.arg0, i);
        for (const auto *phase : {&pushes[i], &syncs[i], &pulls[i]}) {
            EXPECT_GE(phase->start, iter.start) << "iteration " << i;
            EXPECT_LE(phase->end, iter.end) << "iteration " << i;
        }
        // Push -> reduce -> pull is a pipeline: stage starts are
        // monotone even though the stages overlap.
        EXPECT_LE(pushes[i].start, syncs[i].start);
        EXPECT_LE(syncs[i].start, pulls[i].start);
        EXPECT_GE(pushes[i].start, fp0[i].end)
            << "a gradient was pushed before FP finished";
        // Iterations close when their last drain does.
        EXPECT_EQ(iter.end, std::max(pulls[i].end, sync0[i].end));

        // --- Invariant 4 (dual sync): the planner splits so the GPU
        // ring hides under the proxy pipeline; its spans must end no
        // later than the proxy drain.
        EXPECT_LE(sync0[i].end, pulls[i].end) << "iteration " << i;
    }

    // The trace agrees with the engine's own timeline introspection.
    const auto &tl = engine.lastTimeline();
    EXPECT_EQ(iterations.back().start, tl.start);
    EXPECT_EQ(iterations.back().end, tl.end);
    EXPECT_EQ(pulls.back().end, tl.lastPull);
    EXPECT_EQ(sync0.back().end, tl.gpuSyncEnd);

    // Default-config captures must include every headline category.
    for (auto cat :
         {TraceCategory::Link, TraceCategory::SyncCore,
          TraceCategory::Proxy, TraceCategory::Iteration,
          TraceCategory::Partition, TraceCategory::Recovery}) {
        const bool present =
            std::any_of(events.begin(), events.end(),
                        [cat](const TraceEvent &e) {
                            return e.category == cat;
                        });
        EXPECT_TRUE(present)
            << "no events in category " << traceCategoryName(cat);
    }
}

TEST(GoldenTrace, ProxyCrashRecoveryEpisode)
{
    const std::uint32_t iters = 6;
    const auto model = dl::makeSynthetic(
        "tiny", {512, 1 << 20, 2048, (3 << 20) / 4, 256}, 2e9,
        1 << 20);

    core::CoarseOptions options;
    options.functionalData = true;
    options.learningRate = 0.5;
    options.checkpointEveryIters = 2;

    // Fault-free reference run (untraced) to time the crash.
    Tick cleanEnd = 0;
    {
        sim::Simulation cleanSim;
        auto cleanMachine = fabric::makeSdscP100(cleanSim);
        core::CoarseEngine clean(*cleanMachine, model, 4, options);
        ASSERT_FALSE(clean.run(iters, 0).deadlocked);
        cleanEnd = cleanSim.now();
    }

    TraceSession::Options traceOptions;
    traceOptions.capacity = std::size_t(1) << 20;
    TraceSession session(traceOptions);

    sim::Simulation simulation;
    auto machine = fabric::makeSdscP100(simulation);
    options.heartbeats = true;
    options.heartbeatIntervalSeconds = 20e-6;
    options.heartbeatTimeoutSeconds = 10e-6;
    core::CoarseEngine engine(*machine, model, 4, options);

    fault::FaultSchedule schedule;
    fault::FaultSpec crash;
    crash.kind = fault::FaultKind::ProxyCrash;
    crash.at = cleanEnd * 2 / 5;
    crash.target = 1;
    schedule.faults.push_back(crash);
    fault::FaultInjector injector(simulation, schedule,
                                  engine.faultHooks());
    injector.arm();

    ASSERT_FALSE(engine.run(iters, 0).deadlocked);
    ASSERT_EQ(engine.failuresRecovered(), 1u);
    ASSERT_EQ(session.dropped(), 0u);

    // Isolate the recovery state track.
    std::vector<TraceEvent> instants;
    std::vector<TraceEvent> spans;
    for (const TraceEvent &e : session.snapshot()) {
        if (e.category != TraceCategory::Recovery)
            continue;
        EXPECT_EQ(session.trackName(e.track), "recovery/state");
        if (e.kind == TraceEventKind::Instant)
            instants.push_back(e);
        else if (e.kind == TraceEventKind::Span)
            spans.push_back(e);
    }

    // Strict single-episode sequence: the construction-time Idle
    // marker, one detection, and the two phase transitions back to
    // Idle — in this exact order, no duplicates.
    std::vector<std::string> instantNames;
    for (const TraceEvent &e : instants)
        instantNames.push_back(e.name);
    const std::vector<std::string> expected = {
        "Idle", "detect", "Draining", "Repulling", "Idle"};
    ASSERT_EQ(instantNames, expected);

    EXPECT_EQ(instants[0].start, Tick(0));
    // Detection and the Draining transition are the same tick.
    EXPECT_EQ(instants[1].start, instants[2].start);
    EXPECT_GT(instants[1].start, crash.at)
        << "detected before the crash happened";
    // The state is strictly ordered in time.
    EXPECT_LT(instants[2].start, instants[3].start);
    EXPECT_LT(instants[3].start, instants[4].start);

    // The phase spans tile the episode: Draining covers detection to
    // the iteration boundary, Repulling from there to resume, with no
    // gap and no overlap.
    ASSERT_EQ(spans.size(), 2u);
    const TraceEvent &draining = spans[0];
    const TraceEvent &repulling = spans[1];
    EXPECT_EQ(draining.name, std::string("Draining"));
    EXPECT_EQ(repulling.name, std::string("Repulling"));
    EXPECT_EQ(draining.start, instants[1].start);
    EXPECT_EQ(draining.end, repulling.start);
    EXPECT_EQ(repulling.start, instants[3].start);
    EXPECT_EQ(repulling.end, instants[4].start);
    EXPECT_LT(draining.start, draining.end);
    EXPECT_LT(repulling.start, repulling.end);
}

} // namespace
