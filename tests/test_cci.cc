/**
 * @file
 * Tests for the CCI layer: address space, directory coherence,
 * access port, prototype performance model.
 */

#include <gtest/gtest.h>

#include "cci/address_space.hh"
#include "cci/directory.hh"
#include "cci/port.hh"
#include "cci/prototype_model.hh"
#include "fabric/machine.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace {

using namespace coarse::cci;
using namespace coarse::fabric;
using coarse::sim::FatalError;
using coarse::sim::Simulation;

TEST(AddressSpace, AllocateAndRelease)
{
    AddressSpace space;
    space.addDevice(7, 1 << 20);
    EXPECT_TRUE(space.hasDevice(7));
    EXPECT_FALSE(space.hasDevice(8));
    EXPECT_EQ(space.capacity(7), std::uint64_t(1 << 20));

    const RegionId r = space.allocate(7, 512 << 10, "params");
    EXPECT_EQ(space.region(r).home, 7u);
    EXPECT_EQ(space.region(r).bytes, std::uint64_t(512 << 10));
    EXPECT_EQ(space.region(r).name, "params");
    EXPECT_EQ(space.freeBytes(7), std::uint64_t(512 << 10));

    space.release(r);
    EXPECT_EQ(space.freeBytes(7), std::uint64_t(1 << 20));
    EXPECT_THROW(space.region(r), FatalError);
}

TEST(AddressSpace, RegionsGetDisjointAddresses)
{
    AddressSpace space;
    space.addDevice(1, 1 << 20);
    space.addDevice(2, 1 << 20);
    const RegionId a = space.allocate(1, 4096, "a");
    const RegionId b = space.allocate(1, 4096, "b");
    const RegionId c = space.allocate(2, 4096, "c");
    EXPECT_NE(space.region(a).base, space.region(b).base);
    EXPECT_NE(space.region(a).base, space.region(c).base);
}

TEST(AddressSpace, OutOfMemoryIsFatal)
{
    AddressSpace space;
    space.addDevice(1, 8192);
    space.allocate(1, 8192, "all");
    EXPECT_THROW(space.allocate(1, 1, "more"), FatalError);
}

TEST(AddressSpace, RejectsBadUsage)
{
    AddressSpace space;
    EXPECT_THROW(space.allocate(9, 1, "x"), FatalError);
    space.addDevice(1, 4096);
    EXPECT_THROW(space.addDevice(1, 4096), FatalError);
    EXPECT_THROW(space.allocate(1, 0, "zero"), FatalError);
}

TEST(PrototypeModel, ReadSpeedupMatchesPaper)
{
    PrototypeModel model;
    const auto large = std::uint64_t(16) << 20;
    const auto small = std::uint64_t(4) << 10;
    const double cciR =
        model.bandwidth(AccessPath::Cci, AccessDirection::Read, large);
    const double directLarge = model.bandwidth(
        AccessPath::GpuDirect, AccessDirection::Read, large);
    const double directSmall = model.bandwidth(
        AccessPath::GpuDirect, AccessDirection::Read, small);
    EXPECT_NEAR(directLarge / cciR, 17.0, 0.5);
    EXPECT_NEAR(directSmall / cciR, 9.0, 0.5);
}

TEST(PrototypeModel, WriteSpeedupMatchesPaper)
{
    PrototypeModel model;
    const auto large = std::uint64_t(16) << 20;
    const auto small = std::uint64_t(4) << 10;
    const double cciW =
        model.bandwidth(AccessPath::Cci, AccessDirection::Write, large);
    EXPECT_NEAR(model.bandwidth(AccessPath::GpuDirect,
                                AccessDirection::Write, large)
                    / cciW,
                4.0, 0.2);
    EXPECT_NEAR(model.bandwidth(AccessPath::GpuDirect,
                                AccessDirection::Write, small)
                    / cciW,
                1.25, 0.1);
}

TEST(PrototypeModel, CciReadIsFlat)
{
    PrototypeModel model;
    const double a =
        model.bandwidth(AccessPath::Cci, AccessDirection::Read, 4096);
    const double b = model.bandwidth(AccessPath::Cci,
                                     AccessDirection::Read, 64 << 20);
    EXPECT_DOUBLE_EQ(a, b);
}

TEST(PrototypeModel, IndirectReadBoundedByCci)
{
    PrototypeModel model;
    for (std::uint64_t size = 4096; size <= (64 << 20); size *= 4) {
        EXPECT_LE(model.bandwidth(AccessPath::GpuIndirect,
                                  AccessDirection::Read, size),
                  model.bandwidth(AccessPath::Cci,
                                  AccessDirection::Read, size)
                      * 1.0001);
    }
}

TEST(PrototypeModel, DmaSaturatesAtTwoMegabytes)
{
    PrototypeModel model;
    const auto &dma = model.dmaCurve();
    EXPECT_LT(dma.at(64 << 10), dma.peak());
    EXPECT_DOUBLE_EQ(dma.at(2 << 20), dma.peak());
    EXPECT_DOUBLE_EQ(dma.at(32 << 20), dma.peak());
}

/** Directory + port over a small two-GPU machine. */
struct CciFixture : public ::testing::Test
{
    CciFixture()
        : machine(makeSdscP100(sim)), space(),
          directory(machine->topology(), space), model(),
          port(machine->topology(), directory, space, model)
    {
        dev = machine->memDevices()[0];
        space.addDevice(dev, std::uint64_t(1) << 30);
        region = space.allocate(dev, 64 << 20, "params");
    }

    Simulation sim;
    std::unique_ptr<Machine> machine;
    AddressSpace space;
    Directory directory;
    PrototypeModel model;
    CciPort port;
    NodeId dev = kInvalidNode;
    RegionId region = 0;
};

TEST_F(CciFixture, ReadRegistersSharer)
{
    const NodeId w0 = machine->workers()[0];
    bool done = false;
    port.read(w0, region, 0, 1 << 20, AccessOptions{},
              [&] { done = true; });
    sim.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(directory.sharerCount(region, 0), 1u);
}

TEST_F(CciFixture, WriteInvalidatesSharers)
{
    const NodeId w0 = machine->workers()[0];
    const NodeId w1 = machine->workers()[1];
    port.read(w0, region, 0, 1 << 20, AccessOptions{}, [] {});
    port.read(w1, region, 0, 1 << 20, AccessOptions{}, [] {});
    sim.run();
    EXPECT_EQ(directory.sharerCount(region, 0), 2u);

    const auto invBefore = directory.invalidations().value();
    port.write(w0, region, 0, 1 << 20, AccessOptions{}, [] {});
    sim.run();
    EXPECT_EQ(directory.invalidations().value(), invBefore + 1);
    EXPECT_EQ(directory.sharerCount(region, 0), 1u); // w0 owns
}

TEST_F(CciFixture, InvalidationTrafficScalesWithSharers)
{
    // More sharers -> more invalidations on a write.
    const auto &workers = machine->workers();
    for (NodeId w : workers)
        port.read(w, region, 0, 1 << 20, AccessOptions{}, [] {});
    sim.run();
    const auto before = directory.invalidations().value();
    port.write(workers[0], region, 0, 1 << 20, AccessOptions{}, [] {});
    sim.run();
    EXPECT_EQ(directory.invalidations().value(),
              before + workers.size() - 1);
}

TEST_F(CciFixture, EvictDropsState)
{
    const NodeId w0 = machine->workers()[0];
    port.read(w0, region, 0, 1 << 20, AccessOptions{}, [] {});
    sim.run();
    directory.evict(w0, region);
    EXPECT_EQ(directory.sharerCount(region, 0), 0u);
}

TEST_F(CciFixture, OutOfRangeAccessIsFatal)
{
    EXPECT_THROW(directory.acquireRead(machine->workers()[0], region,
                                       64 << 20, 1, [] {}),
                 FatalError);
}

TEST_F(CciFixture, GpuDirectFasterThanCciPath)
{
    const NodeId w0 = machine->workers()[0];
    const std::uint64_t bytes = 32 << 20;

    auto timeFor = [&](AccessPath path) {
        Simulation s;
        auto m = makeSdscP100(s);
        AddressSpace sp;
        sp.addDevice(m->memDevices()[0], std::uint64_t(1) << 30);
        const RegionId r =
            sp.allocate(m->memDevices()[0], bytes, "probe");
        Directory dir(m->topology(), sp);
        PrototypeModel pm;
        CciPort p(m->topology(), dir, sp, pm);
        AccessOptions options;
        options.path = path;
        options.coherent = false;
        options.via = m->hostCpus()[0];
        p.read(m->workers()[0], r, 0, bytes, options, [] {});
        s.run();
        return coarse::sim::toSeconds(s.now());
    };
    (void)w0;

    EXPECT_LT(timeFor(AccessPath::GpuDirect),
              timeFor(AccessPath::Cci) / 5.0);
    EXPECT_LT(timeFor(AccessPath::GpuDirect),
              timeFor(AccessPath::GpuIndirect) / 5.0);
}

TEST_F(CciFixture, PortCountsBytes)
{
    const NodeId w0 = machine->workers()[0];
    port.read(w0, region, 0, 4096, AccessOptions{}, [] {});
    port.write(w0, region, 0, 8192, AccessOptions{}, [] {});
    sim.run();
    EXPECT_EQ(port.bytesRead().value(), 4096u);
    EXPECT_EQ(port.bytesWritten().value(), 8192u);

    coarse::sim::StatGroup group("port");
    port.attachStats(group);
    EXPECT_EQ(group.lookup("bytes_read"), 4096.0);
    EXPECT_EQ(group.lookup("bytes_written"), 8192.0);
    coarse::sim::StatGroup dir("dir");
    directory.attachStats(dir);
    EXPECT_GT(dir.lookup("control_messages"), 0.0);
}

} // namespace
