/**
 * @file
 * Tests for the parallel experiment harness (sim/parallel.hh) and the
 * sweep driver (app/sweep.hh): the work-stealing pool runs and steals
 * correctly, SweepRunner keeps results in job-index order whatever
 * the thread schedule, sweeps are byte-identical at --jobs=1 and
 * --jobs=8, every replica matches a standalone run of the same point,
 * trace sessions are thread-local, and the transmit-rate memoization
 * in LinkDirection never returns a stale rate.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "app/options.hh"
#include "app/runner.hh"
#include "app/sweep.hh"
#include "fabric/bandwidth.hh"
#include "fabric/link.hh"
#include "sim/parallel.hh"
#include "sim/ticks.hh"
#include "sim/trace.hh"

namespace {

using namespace coarse;
using app::Options;
using app::parseOptions;
using app::parseSweepSpec;
using app::runSweep;
using app::sweepResultJson;
using sim::SweepRunner;
using sim::ThreadPool;

TEST(ThreadPool, RunsEveryTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4u);
    std::atomic<int> ran{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, ResolveThreadsNeverReturnsZero)
{
    EXPECT_GE(ThreadPool::resolveThreads(0), 1u);
    EXPECT_EQ(ThreadPool::resolveThreads(3), 3u);
    EXPECT_EQ(ThreadPool::resolveThreads(1), 1u);
}

TEST(ThreadPool, WaitIsReusableAcrossBatches)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    for (int batch = 0; batch < 3; ++batch) {
        for (int i = 0; i < 10; ++i)
            pool.submit([&] { ran.fetch_add(1); });
        pool.wait();
        EXPECT_EQ(ran.load(), (batch + 1) * 10);
    }
}

TEST(ThreadPool, SubmitFromInsideTask)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    pool.submit([&] {
        ran.fetch_add(1);
        pool.submit([&] { ran.fetch_add(1); });
    });
    pool.wait();
    EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPool, WaitWithNothingPendingReturnsImmediately)
{
    ThreadPool pool(2);
    pool.wait();
    EXPECT_EQ(pool.stealCount(), 0u);
}

TEST(SweepRunner, SingleJobRunsInlineWithoutAPool)
{
    SweepRunner runner(1);
    EXPECT_EQ(runner.jobs(), 1u);
    std::thread::id mainThread = std::this_thread::get_id();
    const auto threads = runner.map<std::thread::id>(
        4, [](std::size_t) { return std::this_thread::get_id(); });
    for (const auto &id : threads)
        EXPECT_EQ(id, mainThread);
    EXPECT_EQ(runner.stealCount(), 0u);
}

TEST(SweepRunner, ResultsLandInIndexOrderUnderJitter)
{
    SweepRunner runner(8);
    // Early indices sleep longest, so a schedule-dependent collection
    // would come back reversed; index slots must not care.
    const auto results =
        runner.map<std::size_t>(32, [](std::size_t i) {
            std::this_thread::sleep_for(
                std::chrono::microseconds((32 - i) * 50));
            return i * i;
        });
    ASSERT_EQ(results.size(), 32u);
    for (std::size_t i = 0; i < results.size(); ++i)
        EXPECT_EQ(results[i], i * i);
}

TEST(SweepRunner, RethrowsLowestIndexFailure)
{
    SweepRunner runner(4);
    std::atomic<int> completed{0};
    try {
        runner.forEach(8, [&](std::size_t i) {
            if (i == 5)
                throw std::runtime_error("job five failed");
            if (i == 2)
                throw std::runtime_error("job two failed");
            completed.fetch_add(1);
        });
        FAIL() << "forEach() should have rethrown";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "job two failed");
    }
    // Failures don't cancel siblings: the other six all ran.
    EXPECT_EQ(completed.load(), 6);
}

TEST(SweepRunner, ZeroJobsIsANoOp)
{
    SweepRunner runner(8);
    runner.forEach(0, [](std::size_t) { FAIL() << "ran a job"; });
}

TEST(Trace, SessionsAreThreadLocal)
{
    using sim::TraceSession;
    ASSERT_EQ(TraceSession::active(), nullptr);
    TraceSession mine;
    EXPECT_EQ(TraceSession::active(), &mine);

    // A second session on *another* thread is fine — each thread has
    // its own attach point — and never disturbs this thread's.
    std::thread other([&] {
        EXPECT_EQ(TraceSession::active(), nullptr);
        TraceSession theirs;
        EXPECT_EQ(TraceSession::active(), &theirs);
        EXPECT_NE(TraceSession::active(), &mine);
    });
    other.join();
    EXPECT_EQ(TraceSession::active(), &mine);
}

/** Reference serialization mirroring LinkDirection::transmit. */
sim::Tick
expectedTransmit(sim::Tick now, sim::Tick &busyUntil,
                 std::uint64_t bytes, std::uint64_t flowBytes,
                 const fabric::BandwidthCurve &curve, double efficiency)
{
    const std::uint64_t lookup = flowBytes == 0 ? bytes : flowBytes;
    const double seconds =
        static_cast<double>(bytes) / (curve.at(lookup) * efficiency);
    const auto serialization =
        std::max<sim::Tick>(1, sim::fromSeconds(seconds));
    busyUntil = std::max(now, busyUntil) + serialization;
    return busyUntil;
}

TEST(Link, TransmitMemoizationNeverGoesStale)
{
    using fabric::BandwidthCurve;
    const auto curveA =
        BandwidthCurve::ramp(fabric::gbps(12.0), 4096, 2 << 20, 0.1);
    const auto curveB = BandwidthCurve::flat(fabric::gbps(25.0));

    // Interleave repeated sizes (cache hits), size changes, curve
    // switches, flow-size overrides, and efficiency changes; every
    // transmit must match the uncached reference exactly.
    struct Step
    {
        std::uint64_t bytes;
        std::uint64_t flowBytes;
        const BandwidthCurve *curve;
        double efficiency;
    };
    const std::vector<Step> steps = {
        {4096, 0, &curveA, 1.0},       {4096, 0, &curveA, 1.0},
        {4096, 0, &curveA, 0.5},       {65536, 0, &curveA, 1.0},
        {4096, 0, &curveA, 1.0},       {4096, 0, &curveB, 1.0},
        {4096, 0, &curveA, 1.0},       {4096, 1 << 20, &curveA, 1.0},
        {4096, 1 << 20, &curveA, 1.0}, {4096, 0, &curveA, 1.0},
        {1 << 20, 0, &curveB, 0.9},    {1 << 20, 0, &curveB, 0.9},
    };

    fabric::LinkDirection direction;
    sim::Tick referenceBusy = 0;
    sim::Tick now = 0;
    for (const Step &step : steps) {
        const sim::Tick expected =
            expectedTransmit(now, referenceBusy, step.bytes,
                             step.flowBytes, *step.curve,
                             step.efficiency);
        EXPECT_EQ(direction.transmit(now, step.bytes, step.flowBytes,
                                     *step.curve, step.efficiency),
                  expected);
        now += sim::fromNanoseconds(100);
    }
}

TEST(SweepSpec, CartesianProductLeftmostSlowest)
{
    const auto base = parseOptions({"--model", "bert_base"});
    const auto points =
        parseSweepSpec(base, "nodes=1,2;seed=1..3");
    ASSERT_EQ(points.size(), 6u);
    EXPECT_EQ(points[0].nodes, 1u);
    EXPECT_EQ(points[0].seed, 1u);
    EXPECT_EQ(points[2].nodes, 1u);
    EXPECT_EQ(points[2].seed, 3u);
    EXPECT_EQ(points[3].nodes, 2u);
    EXPECT_EQ(points[3].seed, 1u);
    EXPECT_EQ(points[5].nodes, 2u);
    EXPECT_EQ(points[5].seed, 3u);
    for (const Options &point : points)
        EXPECT_EQ(point.model, "bert_base"); // base fields inherited
}

TEST(SweepSpec, SteppedRangeAndExplicitBatch)
{
    const auto base = parseOptions({});
    const auto points = parseSweepSpec(base, "batch=2..8..2");
    ASSERT_EQ(points.size(), 4u);
    EXPECT_EQ(points[0].batch, 2u);
    EXPECT_EQ(points[3].batch, 8u);
}

TEST(SweepSpec, SweptModelRederivesDefaultBatch)
{
    const auto base = parseOptions({"--model", "resnet50"});
    EXPECT_EQ(base.batch, 64u);
    const auto points =
        parseSweepSpec(base, "model=resnet50,bert_base");
    ASSERT_EQ(points.size(), 2u);
    EXPECT_EQ(points[0].batch, 64u);
    EXPECT_EQ(points[1].batch, 2u); // bert default, not resnet's 64

    // ...unless the spec pins the batch explicitly.
    const auto pinned =
        parseSweepSpec(base, "model=resnet50,bert_base;batch=8");
    ASSERT_EQ(pinned.size(), 2u);
    EXPECT_EQ(pinned[1].batch, 8u);
}

TEST(SweepSpec, RejectsMalformedSpecs)
{
    const auto base = parseOptions({});
    EXPECT_THROW(parseSweepSpec(base, "bogus=1"), sim::FatalError);
    EXPECT_THROW(parseSweepSpec(base, "seed="), sim::FatalError);
    EXPECT_THROW(parseSweepSpec(base, ""), sim::FatalError);
    EXPECT_THROW(parseSweepSpec(base, "seed=8..1"), sim::FatalError);
    // String keys validate eagerly, at parse time, not mid-sweep.
    EXPECT_THROW(parseSweepSpec(base, "model=1..4"), sim::FatalError);
    EXPECT_THROW(parseSweepSpec(base, "model=resnet51"),
                 sim::FatalError);
    EXPECT_THROW(parseSweepSpec(base, "scheme=Coarse"),
                 sim::FatalError);
}

/** Run options.sweep and return the aggregated JSON-lines output. */
std::string
sweepOutput(Options options, unsigned jobs)
{
    options.jobs = jobs;
    std::ostringstream out;
    std::ostringstream diag;
    EXPECT_EQ(runSweep(options, out, diag), 0);
    return out.str();
}

TEST(Sweep, ByteIdenticalAcrossJobsLevels)
{
    const auto options = parseOptions(
        {"--sweep", "seed=1..4;scheme=COARSE,AllReduce", "--model",
         "resnet50", "--iters", "2"});
    const std::string serial = sweepOutput(options, 1);
    const std::string parallel = sweepOutput(options, 8);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
    EXPECT_EQ(std::count(serial.begin(), serial.end(), '\n'), 8);
}

TEST(Sweep, EachReplicaMatchesAStandaloneRun)
{
    const auto options = parseOptions({"--sweep",
                                       "seed=1..3;scheme=COARSE",
                                       "--model", "bert_base",
                                       "--iters", "2"});
    const std::string aggregate = sweepOutput(options, 8);

    std::vector<std::string> lines;
    std::istringstream stream(aggregate);
    for (std::string line; std::getline(stream, line);)
        lines.push_back(line);

    const auto points = parseSweepSpec(options, options.sweep);
    ASSERT_EQ(lines.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        // A fresh single run of the same (config, seed) point must
        // reproduce the sweep replica exactly — the sweep adds no
        // hidden state.
        const auto outcome = app::runOne(points[i], points[i].scheme);
        EXPECT_EQ(lines[i], sweepResultJson(i, points[i],
                                            points[i].scheme, outcome));
    }
}

TEST(Sweep, ParallelSpeedupOnManyCores)
{
    if (std::thread::hardware_concurrency() < 4)
        GTEST_SKIP() << "needs >= 4 hardware threads, have "
                     << std::thread::hardware_concurrency();

    const auto options = parseOptions(
        {"--sweep", "seed=1..8;scheme=COARSE", "--model", "bert_base",
         "--iters", "4"});
    const auto timed = [&](unsigned jobs) {
        const auto began = std::chrono::steady_clock::now();
        const std::string output = sweepOutput(options, jobs);
        const double seconds = std::chrono::duration<double>(
                                   std::chrono::steady_clock::now()
                                   - began)
                                   .count();
        return std::pair<std::string, double>(output, seconds);
    };
    const auto [serialOut, serialS] = timed(1);
    const auto [parallelOut, parallelS] = timed(0);
    EXPECT_EQ(serialOut, parallelOut);
    EXPECT_GE(serialS / parallelS, 3.0)
        << "8 replicas across "
        << std::thread::hardware_concurrency()
        << " threads: serial " << serialS << " s, parallel "
        << parallelS << " s";
}

} // namespace
