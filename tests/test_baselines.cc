/**
 * @file
 * Tests for the baseline trainers (DENSE, AllReduce, CPU-PS).
 */

#include <gtest/gtest.h>

#include <memory>

#include "baselines/allreduce.hh"
#include "baselines/cpu_ps.hh"
#include "baselines/dense.hh"
#include "dl/model_zoo.hh"
#include "fabric/machine.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace {

using namespace coarse::baselines;
using coarse::sim::FatalError;
using coarse::sim::Simulation;

coarse::dl::ModelSpec
smallModel()
{
    return coarse::dl::makeSynthetic("small", {1 << 20, 4 << 20}, 5e9,
                                     1 << 20);
}

TEST(AllReduce, ReportIsSane)
{
    Simulation sim;
    auto machine = coarse::fabric::makeSdscP100(sim);
    AllReduceTrainer trainer(*machine, smallModel(), 8);
    const auto report = trainer.run(4, 1);
    EXPECT_EQ(report.scheme, "AllReduce");
    EXPECT_EQ(report.iterations, 4u);
    EXPECT_GT(report.blockedCommSeconds, 0.0);
    EXPECT_GT(report.iterationSeconds, report.computeSeconds);
    EXPECT_LE(report.gpuUtilization, 1.0);
}

TEST(AllReduce, NvlinkHelpsOnV100)
{
    auto timeFor = [](bool nvlink) {
        Simulation sim;
        auto machine = coarse::fabric::makeAwsV100(sim);
        AllReduceOptions options;
        options.useNvlink = nvlink;
        AllReduceTrainer trainer(*machine, smallModel(), 8, options);
        return trainer.run(3, 1).blockedCommSeconds;
    };
    EXPECT_LT(timeFor(true), timeFor(false));
}

TEST(AllReduce, CommScalesWithModelSize)
{
    auto blockedFor = [](std::uint64_t elems) {
        Simulation sim;
        auto machine = coarse::fabric::makeSdscP100(sim);
        AllReduceTrainer trainer(
            *machine,
            coarse::dl::makeSynthetic("m", {elems}, 5e9, 1 << 20), 8);
        return trainer.run(2, 1).blockedCommSeconds;
    };
    EXPECT_GT(blockedFor(32 << 20), blockedFor(1 << 20) * 4);
}

TEST(Dense, SlowerThanAllReduce)
{
    Simulation sim;
    auto machine = coarse::fabric::makeSdscP100(sim);
    DenseTrainer dense(*machine, smallModel(), 8);
    const auto denseReport = dense.run(3, 1);

    Simulation sim2;
    auto machine2 = coarse::fabric::makeSdscP100(sim2);
    AllReduceTrainer ar(*machine2, smallModel(), 8);
    const auto arReport = ar.run(3, 1);

    EXPECT_GT(denseReport.blockedCommSeconds,
              arReport.blockedCommSeconds * 2);
}

TEST(Dense, CoherenceTrafficGrows)
{
    Simulation sim;
    auto machine = coarse::fabric::makeAwsV100(sim);
    DenseTrainer trainer(*machine, smallModel(), 8);
    trainer.run(3, 0);
    // Reads register all workers as sharers; subsequent writes must
    // invalidate them.
    EXPECT_GT(trainer.directory().invalidations().value(), 0u);
    EXPECT_GT(trainer.directory().controlMessages().value(), 0u);
}

TEST(Dense, OutOfMemoryBatchIsFatal)
{
    Simulation sim;
    auto machine = coarse::fabric::makeAwsV100(sim);
    DenseTrainer trainer(*machine, coarse::dl::makeBertLarge(), 4);
    // Batch 4 of BERT-Large does not fit a 16 GB V100 with resident
    // optimizer state (the Fig. 16e constraint).
    EXPECT_THROW(trainer.run(1), FatalError);
}

TEST(CpuPs, ReportIsSane)
{
    Simulation sim;
    auto machine = coarse::fabric::makeAwsT4(sim);
    CpuPsTrainer trainer(*machine, smallModel(), 8);
    const auto report = trainer.run(3, 1);
    EXPECT_EQ(report.scheme, "CPU-PS");
    EXPECT_GT(report.blockedCommSeconds, 0.0);
}

TEST(CpuPs, LaneSharingSlowsLargerFleets)
{
    // Same aggregate CPU lanes, more workers -> more blocked time.
    auto blockedFor = [](std::uint32_t sharing) {
        Simulation sim;
        coarse::fabric::MachineOptions mo;
        mo.workersPerMemDevice = sharing;
        auto machine = coarse::fabric::makeAwsT4(sim, mo);
        CpuPsTrainer trainer(*machine, smallModel(), 8);
        return trainer.run(2, 1).blockedCommSeconds;
    };
    // 4 workers vs 4 workers is identical here, so instead compare
    // t4 (4 workers) against sdsc (2 workers).
    Simulation simA;
    auto mA = coarse::fabric::makeAwsT4(simA);
    CpuPsTrainer tA(*mA, smallModel(), 8);
    const double fourWorkers = tA.run(2, 1).blockedCommSeconds;

    Simulation simB;
    auto mB = coarse::fabric::makeSdscP100(simB);
    CpuPsTrainer tB(*mB, smallModel(), 8);
    const double twoWorkers = tB.run(2, 1).blockedCommSeconds;

    EXPECT_GT(fourWorkers, twoWorkers);
    (void)blockedFor;
}

TEST(PhasedTrainer, ZeroIterationsIsFatal)
{
    Simulation sim;
    auto machine = coarse::fabric::makeSdscP100(sim);
    AllReduceTrainer trainer(*machine, smallModel(), 8);
    EXPECT_THROW(trainer.run(0), FatalError);
}

TEST(PhasedTrainer, WarmupIsExcluded)
{
    Simulation sim;
    auto machine = coarse::fabric::makeSdscP100(sim);
    AllReduceTrainer trainer(*machine, smallModel(), 8);
    const auto report = trainer.run(5, 3);
    EXPECT_EQ(report.iterations, 5u);
}

} // namespace
