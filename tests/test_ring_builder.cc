/**
 * @file
 * Tests for the ring-order optimizer and the fp16 quantizer.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "coarse/engine.hh"
#include "collective/ring_builder.hh"
#include "dl/model_zoo.hh"
#include "dl/quantize.hh"
#include "fabric/machine.hh"
#include "memdev/sync_group.hh"
#include "sim/simulation.hh"

namespace {

using namespace coarse::coll;
using namespace coarse::fabric;
using coarse::sim::Simulation;

TEST(RingBuilder, RecoversPhysicalCciRingFromShuffledOrder)
{
    Simulation sim;
    auto machine = makeAwsV100(sim);
    auto devices = machine->memDevices();
    // Shuffle deterministically: 0,2,1,3 breaks ring adjacency.
    std::vector<NodeId> shuffled{devices[0], devices[2], devices[1],
                                 devices[3]};
    RingBuildOptions options;
    options.mask = kCciPath;

    const double shuffledBw =
        ringBottleneck(machine->topology(), shuffled, options);
    const auto optimized =
        buildRing(machine->topology(), shuffled, options);
    const double optimizedBw =
        ringBottleneck(machine->topology(), optimized, options);

    EXPECT_GT(optimizedBw, shuffledBw);
    // Physical order's bottleneck is the dedicated CCI link rate.
    const double physicalBw =
        ringBottleneck(machine->topology(), devices, options);
    EXPECT_NEAR(optimizedBw, physicalBw, physicalBw * 1e-9);
}

TEST(RingBuilder, MultiNodeOrderGroupsByServerNode)
{
    Simulation sim;
    MachineOptions mo;
    mo.nodes = 2;
    auto machine = makeAwsV100(sim, mo);
    // Interleave nodes pathologically.
    std::vector<NodeId> interleaved;
    const auto &w = machine->workers();
    for (std::size_t i = 0; i < 4; ++i) {
        interleaved.push_back(w[i]);
        interleaved.push_back(w[i + 4]);
    }
    RingBuildOptions options;
    const double before =
        ringBottleneck(machine->topology(), interleaved, options);
    const auto optimized =
        buildRing(machine->topology(), interleaved, options);
    const double after =
        ringBottleneck(machine->topology(), optimized, options);
    // Interleaving crosses the NIC 8 times; grouping crosses twice.
    EXPECT_GE(after, before);
    // Count node transitions in the optimized ring.
    int transitions = 0;
    for (std::size_t i = 0; i < optimized.size(); ++i) {
        const auto a = machine->serverNodeOf(optimized[i]);
        const auto b = machine->serverNodeOf(
            optimized[(i + 1) % optimized.size()]);
        if (a != b)
            ++transitions;
    }
    EXPECT_EQ(transitions, 2);
}

TEST(RingBuilder, SmallRingsPassThrough)
{
    Simulation sim;
    auto machine = makeSdscP100(sim);
    const auto two = buildRing(machine->topology(),
                               machine->workers(), {});
    EXPECT_EQ(two, machine->workers());
}

TEST(RingBuilder, SchedulerOptionRestoresShuffledDevices)
{
    Simulation sim;
    auto machine = makeAwsV100(sim);
    std::vector<std::unique_ptr<coarse::memdev::MemoryDevice>> owned;
    for (auto node : machine->memDevices())
        owned.push_back(
            std::make_unique<coarse::memdev::MemoryDevice>(node));
    // Shuffled order.
    std::vector<coarse::memdev::MemoryDevice *> shuffled{
        owned[0].get(), owned[2].get(), owned[1].get(),
        owned[3].get()};

    auto timeFor = [&](bool optimize) {
        Simulation s;
        auto m = makeAwsV100(s);
        std::vector<std::unique_ptr<coarse::memdev::MemoryDevice>> o;
        for (auto node : m->memDevices())
            o.push_back(
                std::make_unique<coarse::memdev::MemoryDevice>(node));
        std::vector<coarse::memdev::MemoryDevice *> shuf{
            o[0].get(), o[2].get(), o[1].get(), o[3].get()};
        coarse::memdev::SyncScheduleOptions options;
        options.optimizeRingOrder = optimize;
        coarse::memdev::SyncGroupScheduler scheduler(m->topology(),
                                                     shuf, options);
        scheduler.allReduceTimed(64 << 20, [] {});
        s.run();
        return coarse::sim::toSeconds(s.now());
    };
    EXPECT_LT(timeFor(true), timeFor(false));
    (void)shuffled;
}

TEST(Quantize, HalfRoundTripKnownValues)
{
    using coarse::dl::floatToHalf;
    using coarse::dl::halfToFloat;
    EXPECT_EQ(halfToFloat(floatToHalf(0.0f)), 0.0f);
    EXPECT_EQ(halfToFloat(floatToHalf(1.0f)), 1.0f);
    EXPECT_EQ(halfToFloat(floatToHalf(-2.0f)), -2.0f);
    EXPECT_EQ(halfToFloat(floatToHalf(0.5f)), 0.5f);
    EXPECT_EQ(halfToFloat(floatToHalf(65504.0f)), 65504.0f); // max
    // Overflow becomes infinity.
    EXPECT_TRUE(std::isinf(halfToFloat(floatToHalf(1e6f))));
    // Subnormals survive.
    EXPECT_NEAR(halfToFloat(floatToHalf(1e-5f)), 1e-5f, 1e-7f);
    // NaN stays NaN.
    EXPECT_TRUE(std::isnan(halfToFloat(
        floatToHalf(std::numeric_limits<float>::quiet_NaN()))));
}

TEST(Quantize, RelativeErrorBounded)
{
    using coarse::dl::halfToFloat;
    using coarse::dl::floatToHalf;
    for (float value : {0.001f, 0.123f, 1.7f, 42.42f, 999.9f}) {
        const float rt = halfToFloat(floatToHalf(value));
        EXPECT_NEAR(rt, value,
                    value * coarse::dl::kFp16RelativeError)
            << value;
    }
}

TEST(Quantize, InPlaceQuantizeIsIdempotent)
{
    std::vector<float> data{0.1f, -3.7f, 128.5f};
    coarse::dl::quantizeFp16(data);
    auto once = data;
    coarse::dl::quantizeFp16(data);
    EXPECT_EQ(data, once);
}

TEST(Compression, HalvesWireTimeOnCommBoundModel)
{
    auto blockedFor = [](bool compress) {
        Simulation sim;
        auto machine = makeSdscP100(sim);
        coarse::core::CoarseOptions options;
        options.compressGradients = compress;
        coarse::core::CoarseEngine engine(
            *machine, coarse::dl::makeBertBase(), 2, options);
        return engine.run(3, 1).blockedCommSeconds;
    };
    EXPECT_LT(blockedFor(true), blockedFor(false));
}

TEST(Compression, FunctionalAccuracyWithinFp16Bounds)
{
    // Train compressed and uncompressed; final weights must differ
    // by no more than the fp16 relative error times the update
    // magnitudes (loose bound: 1%).
    auto runWith = [](bool compress) {
        Simulation sim;
        auto machine = makeSdscP100(sim);
        coarse::core::CoarseOptions options;
        options.functionalData = true;
        options.compressGradients = compress;
        auto engine = std::make_unique<coarse::core::CoarseEngine>(
            *machine,
            coarse::dl::makeSynthetic("cmp", {4096, 1 << 16}, 1e9,
                                      1 << 20),
            4, options);
        engine->run(3, 0);
        std::vector<float> result = engine->weights(0, 1);
        return result;
    };
    const auto exact = runWith(false);
    const auto compressed = runWith(true);
    ASSERT_EQ(exact.size(), compressed.size());
    for (std::size_t e = 0; e < exact.size(); e += 331) {
        EXPECT_NEAR(compressed[e], exact[e],
                    std::abs(exact[e]) * 0.01 + 1e-4);
    }
}

TEST(Compression, WorkersStillConvergeIdentically)
{
    Simulation sim;
    auto machine = makeAwsV100(sim);
    coarse::core::CoarseOptions options;
    options.functionalData = true;
    options.compressGradients = true;
    coarse::core::CoarseEngine engine(
        *machine,
        coarse::dl::makeSynthetic("cmp", {512, 1 << 18}, 1e9, 1 << 20),
        4, options);
    engine.run(2, 0);
    EXPECT_EQ(engine.weights(0, 1), engine.weights(3, 1));
}

} // namespace
