/**
 * @file
 * Tests for the coherent parameter cache (DENSE's Fig. 5 cache).
 */

#include <gtest/gtest.h>

#include <memory>

#include "baselines/dense.hh"
#include "cci/coherent_cache.hh"
#include "dl/model_zoo.hh"
#include "fabric/machine.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace {

using namespace coarse::cci;
using namespace coarse::fabric;
using coarse::sim::Simulation;

struct CacheFixture : public ::testing::Test
{
    CacheFixture()
        : machine(makeSdscP100(sim)),
          directory(machine->topology(), space,
                    CoherenceParams{/*granuleBytes=*/1 << 20, 128}),
          model()
    {
        home = machine->memDevices()[0];
        space.addDevice(home, std::uint64_t(1) << 30);
        region = space.allocate(home, 16 << 20, "params");
        port = std::make_unique<CciPort>(machine->topology(),
                                         directory, space, model);
        worker = machine->workers()[0];
        cache = std::make_unique<CoherentCache>(worker, directory,
                                                *port);
    }

    void
    readAll()
    {
        AccessOptions options;
        options.coherent = true;
        cache->read(region, 0, 16 << 20, options, [] {});
        sim.run();
    }

    Simulation sim;
    AddressSpace space;
    std::unique_ptr<Machine> machine;
    Directory directory;
    PrototypeModel model;
    std::unique_ptr<CciPort> port;
    std::unique_ptr<CoherentCache> cache;
    NodeId home = kInvalidNode;
    NodeId worker = kInvalidNode;
    RegionId region = 0;
};

TEST_F(CacheFixture, ColdReadMissesEverything)
{
    readAll();
    EXPECT_EQ(cache->misses().value(), 16u); // 16 x 1 MiB granules
    EXPECT_EQ(cache->hits().value(), 0u);
    EXPECT_EQ(cache->bytesFetched().value(),
              std::uint64_t(16) << 20);
}

TEST_F(CacheFixture, WarmReadHitsEverything)
{
    readAll();
    const auto fetched = cache->bytesFetched().value();
    readAll();
    EXPECT_EQ(cache->hits().value(), 16u);
    EXPECT_EQ(cache->misses().value(), 16u); // unchanged
    EXPECT_EQ(cache->bytesFetched().value(), fetched);
}

TEST_F(CacheFixture, RemoteWriteInvalidatesAndRefetches)
{
    readAll();
    // The home (parameter server) updates the parameters.
    directory.acquireWrite(home, region, 0, 16 << 20, [] {});
    sim.run();
    readAll();
    EXPECT_EQ(cache->misses().value(), 32u); // full refetch
}

TEST_F(CacheFixture, PartialWriteInvalidatesOnlyTouchedGranules)
{
    readAll();
    // Writer touches only the first 2 MiB = 2 granules.
    directory.acquireWrite(home, region, 0, 2 << 20, [] {});
    sim.run();
    readAll();
    EXPECT_EQ(cache->misses().value(), 18u);
    EXPECT_EQ(cache->hits().value(), 14u);
}

TEST_F(CacheFixture, WarmReadIsFasterThanColdRead)
{
    readAll();
    const auto coldEnd = sim.now();
    readAll();
    const auto warmTime = sim.now() - coldEnd;
    EXPECT_LT(warmTime, coldEnd / 10);
}

TEST_F(CacheFixture, FlushDropsResidency)
{
    readAll();
    EXPECT_EQ(cache->residentBytes(), std::uint64_t(16) << 20);
    cache->flush(region);
    EXPECT_EQ(cache->residentBytes(), 0u);
    EXPECT_FALSE(directory.isSharer(worker, region, 0));
    readAll();
    EXPECT_EQ(cache->misses().value(), 32u);
}

TEST_F(CacheFixture, CapacityEvictsLru)
{
    CacheParams params;
    params.capacityBytes = 4 << 20; // 4 of 16 granules
    CoherentCache small(worker, directory, *port, params);
    AccessOptions options;
    small.read(region, 0, 16 << 20, options, [] {});
    sim.run();
    EXPECT_LE(small.residentBytes(), std::uint64_t(4) << 20);
    EXPECT_EQ(small.evictions().value(), 12u);
    // Evicted granules are no longer sharers in the directory.
    EXPECT_FALSE(directory.isSharer(worker, region, 0));
    EXPECT_TRUE(directory.isSharer(worker, region, 15 << 20));
}

TEST_F(CacheFixture, StatsAttach)
{
    coarse::sim::StatGroup group("cache");
    cache->attachStats(group);
    readAll();
    EXPECT_EQ(group.lookup("misses"), 16.0);
    EXPECT_EQ(group.lookup("hits"), 0.0);
}

TEST(DenseCache, PullsGoThroughTheCache)
{
    Simulation sim;
    auto machine = makeSdscP100(sim);
    const auto model = coarse::dl::makeSynthetic(
        "small", {4 << 20}, 5e9, 1 << 20);
    coarse::baselines::DenseTrainer trainer(*machine, model, 8);
    trainer.run(3, 0);
    // Every iteration's PS update invalidates the worker caches, so
    // each iteration refetches: misses grow with iterations and no
    // steady-state hits appear on the updated parameters.
    EXPECT_GT(trainer.workerCache(0).misses().value(), 0u);
    EXPECT_GT(trainer.workerCache(0).bytesFetched().value(), 0u);
    EXPECT_EQ(trainer.workerCache(0).hits().value(), 0u);
}

TEST(DirectoryGranules, EvictGranuleIsScoped)
{
    Simulation sim;
    auto machine = makeSdscP100(sim);
    AddressSpace space;
    space.addDevice(machine->memDevices()[0], 1 << 30);
    const RegionId region =
        space.allocate(machine->memDevices()[0], 8 << 20, "r");
    Directory directory(machine->topology(), space);
    const NodeId w = machine->workers()[0];
    directory.acquireRead(w, region, 0, 8 << 20, [] {});
    sim.run();
    EXPECT_TRUE(directory.isSharer(w, region, 0));
    EXPECT_TRUE(directory.isSharer(w, region, 4 << 20));
    directory.evictGranule(w, region, 0);
    EXPECT_FALSE(directory.isSharer(w, region, 0));
    EXPECT_TRUE(directory.isSharer(w, region, 4 << 20));
}

} // namespace
