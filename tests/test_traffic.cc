/**
 * @file
 * Tests for the synthetic traffic generator and dataset descriptors.
 */

#include <gtest/gtest.h>

#include "dl/dataset.hh"
#include "fabric/machine.hh"
#include "fabric/traffic.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace {

using namespace coarse::fabric;
using coarse::sim::FatalError;
using coarse::sim::Simulation;

std::vector<NodeId>
gpusOf(const Machine &machine)
{
    std::vector<NodeId> gpus = machine.workers();
    gpus.insert(gpus.end(), machine.memDevices().begin(),
                machine.memDevices().end());
    return gpus;
}

TEST(Traffic, AllPatternsDeliverEverything)
{
    for (TrafficPattern pattern :
         {TrafficPattern::UniformRandom, TrafficPattern::Hotspot,
          TrafficPattern::Transpose,
          TrafficPattern::NearestNeighbor}) {
        Simulation sim;
        auto machine = makeAwsV100(sim);
        TrafficParams params;
        params.pattern = pattern;
        params.messagesPerEndpoint = 4;
        const auto result =
            runTraffic(machine->topology(), gpusOf(*machine), params);
        EXPECT_EQ(result.messages, 8u * 4u)
            << trafficPatternName(pattern);
        EXPECT_GT(result.aggregateBytesPerSec, 0.0);
        EXPECT_GT(result.meanLatencySeconds, 0.0);
        EXPECT_GE(result.maxLatencySeconds,
                  result.meanLatencySeconds);
    }
}

TEST(Traffic, HotspotIsSlowestAggregate)
{
    auto aggregateFor = [](TrafficPattern pattern) {
        Simulation sim;
        auto machine = makeAwsV100(sim);
        TrafficParams params;
        params.pattern = pattern;
        params.messagesPerEndpoint = 8;
        params.messageBytes = 4 << 20;
        return runTraffic(machine->topology(), gpusOf(*machine),
                          params)
            .aggregateBytesPerSec;
    };
    // Everyone hammering one endpoint serializes on its link.
    EXPECT_LT(aggregateFor(TrafficPattern::Hotspot),
              aggregateFor(TrafficPattern::NearestNeighbor));
    EXPECT_LT(aggregateFor(TrafficPattern::Hotspot),
              aggregateFor(TrafficPattern::UniformRandom));
}

TEST(Traffic, DeterministicForSameSeed)
{
    auto once = [] {
        Simulation sim;
        auto machine = makeSdscP100(sim);
        TrafficParams params;
        params.seed = 99;
        return runTraffic(machine->topology(), gpusOf(*machine),
                          params)
            .seconds;
    };
    EXPECT_DOUBLE_EQ(once(), once());
}

TEST(Traffic, RejectsBadLoad)
{
    Simulation sim;
    auto machine = makeSdscP100(sim);
    TrafficParams params;
    EXPECT_THROW(
        runTraffic(machine->topology(), {machine->workers()[0]},
                   params),
        FatalError);
    params.messageBytes = 0;
    EXPECT_THROW(runTraffic(machine->topology(), gpusOf(*machine),
                            params),
                 FatalError);
    params.messageBytes = 1024;
    params.hotspot = 99;
    EXPECT_THROW(runTraffic(machine->topology(), gpusOf(*machine),
                            params),
                 FatalError);
}

TEST(Dataset, DescriptorsAreSane)
{
    using namespace coarse::dl;
    EXPECT_EQ(imagenet().samples, 1281167u);
    EXPECT_EQ(datasetFor("resnet50").name, "imagenet");
    EXPECT_EQ(datasetFor("bert_large").name, "squad_v1.1");
    EXPECT_THROW(datasetFor("alexnet"), FatalError);
}

TEST(Dataset, EpochMathFollowsThroughput)
{
    using namespace coarse::dl;
    TrainingReport report;
    report.throughputSamplesPerSec = 1000.0;
    const auto data = imagenet();
    EXPECT_NEAR(epochSeconds(report, data), 1281.167, 1e-6);
    EXPECT_NEAR(timeToTrainSeconds(report, data), 1281.167 * 90,
                1e-3);
    report.throughputSamplesPerSec = 0.0;
    EXPECT_THROW(epochSeconds(report, data), FatalError);
}

} // namespace
